(* Interpreter-only wall-clock smoke benchmark.

   Runs every registered workload under the interpreter (no JIT compiler)
   on three backends — the reference IR walker, the prepared dispatch-
   match engine, and the closure-threaded engine with profile-guided
   superinstructions — verifies per workload that the runs are
   observationally identical (output, simulated cycles and steps), and
   reports real steps/second for all three plus the per-workload and
   aggregate speedup, the dispatch strategy, the mined superinstruction
   counts and the inline-cache hit rates. Each workload's timed section
   is best-of-3 after one warmup pass, so a stray scheduler hiccup on one
   pass cannot sink the gate. A JIT'd run of one workload with an
   attached telemetry trace contributes compile-timeline data. Results
   land in BENCH_interp.json in the working directory.

   This measures the harness itself, not the simulation: simulated cycles
   are identical by construction; wall-clock throughput is the win. The
   gated speedup is reference vs threaded — the production path. *)

let interp_config : Jit.Engine.config =
  {
    name = "interp";
    compiler = None;
    hotness_threshold = Common.hotness_threshold;
    compile_cost_per_node = Common.compile_cost_per_node;
    verify = false;
  }

let timed_passes = 3 (* best-of, after one untimed warmup pass *)

(* One full workload execution on one backend: a fresh engine every
   pass, so caches, profiles and the mined fusion table rebuild from
   scratch and every pass observes identical simulated behavior. *)
let one_pass (backend : Runtime.Interp.backend) (w : Workloads.Defs.t) :
    Jit.Engine.t * Jit.Harness.run * float =
  let prog = Workloads.Registry.compile w in
  let engine = Jit.Engine.create prog interp_config in
  engine.vm.backend <- backend;
  (* metrics recording stays on here (enabled-but-unread): it costs
     nothing on the step loop, so the speedup gate holds. Attribution is
     NOT enabled on the gated runs — its per-invocation enter/leave
     brackets are a deliberate opt-in profiling cost; the traced JIT run
     below exercises it instead. *)
  let t0 = Unix.gettimeofday () in
  let run =
    Jit.Harness.run_benchmark ~iters:w.iters engine ~entry:"bench" ~label:w.name
  in
  let seconds = Unix.gettimeofday () -. t0 in
  (engine, run, seconds)

(* Warmup + best-of-N timed section; keeps the last pass's engine and
   run for equality checks and stats (all passes are deterministic, so
   any pass would do). *)
let run_workload (backend : Runtime.Interp.backend) (w : Workloads.Defs.t) :
    Jit.Engine.t * Jit.Harness.run * float =
  ignore (one_pass backend w);
  let best = ref infinity and last = ref None in
  for _ = 1 to timed_passes do
    let engine, run, seconds = one_pass backend w in
    if seconds < !best then best := seconds;
    last := Some (engine, run)
  done;
  match !last with
  | Some (engine, run) -> (engine, run, !best)
  | None -> assert false

(* Per-workload comparison of the three backends, checked for
   observational equality on the spot. *)
type comparison = {
  c_name : string;
  c_steps : int;
  c_cycles : int;
  c_ref_seconds : float;
  c_prep_seconds : float;
  c_thr_seconds : float;
  c_thr_run : Jit.Harness.run;
}

let check_equal (w : Workloads.Defs.t) ~(what : string)
    (ref_engine : Jit.Engine.t) (ref_run : Jit.Harness.run)
    (engine : Jit.Engine.t) (run : Jit.Harness.run) : unit =
  if ref_engine.vm.cycles <> engine.vm.cycles then
    Fmt.failwith "%s: backend divergence: %d reference cycles vs %d %s" w.name
      ref_engine.vm.cycles engine.vm.cycles what;
  if ref_run.output <> run.output then
    Fmt.failwith "%s: backend divergence: outputs differ (%s)" w.name what;
  if ref_engine.vm.steps <> engine.vm.steps then
    Fmt.failwith "%s: backend divergence: %d reference steps vs %d %s" w.name
      ref_engine.vm.steps engine.vm.steps what

let compare_workload (w : Workloads.Defs.t) : comparison =
  let ref_engine, ref_run, ref_seconds =
    run_workload Runtime.Interp.Reference w
  in
  let prep_engine, prep_run, prep_seconds =
    run_workload Runtime.Interp.Prepared w
  in
  let thr_engine, thr_run, thr_seconds =
    run_workload Runtime.Interp.Threaded w
  in
  check_equal w ~what:"prepared" ref_engine ref_run prep_engine prep_run;
  check_equal w ~what:"threaded" ref_engine ref_run thr_engine thr_run;
  {
    c_name = w.name;
    c_steps = thr_engine.vm.steps;
    c_cycles = thr_engine.vm.cycles;
    c_ref_seconds = ref_seconds;
    c_prep_seconds = prep_seconds;
    c_thr_seconds = thr_seconds;
    c_thr_run = thr_run;
  }

let workload_speedup (c : comparison) : float = c.c_ref_seconds /. c.c_thr_seconds

let fused_sites (c : comparison) : int =
  List.fold_left
    (fun a (s : Runtime.Interp.sstat) -> a + s.ss_sites)
    0 c.c_thr_run.superinst

(* One workload under the incremental JIT with an in-memory trace sink
   attached: the trace is digested back through [Obs.Summary] (a built-in
   self-check that the emitted JSONL parses) and its compile timeline is
   embedded in the result file. *)
let traced_jit_run () =
  let w = List.hd Workloads.Registry.all in
  let sink, lines = Obs.Trace.memory_sink () in
  let run, attrib, prog =
    Obs.Trace.scoped sink (fun () ->
        let prog = Workloads.Registry.compile w in
        let engine =
          Jit.Engine.create prog
            {
              name = "incremental";
              compiler = Some (Common.incremental ());
              hotness_threshold = Common.hotness_threshold;
              compile_cost_per_node = Common.compile_cost_per_node;
              verify = false;
            }
        in
        (* per-method cycle attribution rides the traced run: the hot
           methods land in BENCH_interp.json as a determinism anchor *)
        let attrib = Runtime.Interp.enable_attribution engine.vm in
        let run =
          Jit.Harness.run_benchmark ~iters:w.iters engine ~entry:"bench"
            ~label:w.name
        in
        (run, attrib, prog))
  in
  let summary =
    match Obs.Summary.of_lines (lines ()) with
    | Ok s -> s
    | Error e -> Fmt.failwith "trace self-check failed: %s" e
  in
  (w.name, run, summary, attrib, prog)

(* Time-to-peak: the simulated cycle at which a long-running loop first
   executes as compiled code. With OSR armed the running invocation
   transfers at the loop header — the first [osr_enter] event for the
   method. With OSR off the method only runs compiled from its next
   invocation, after the backedge-driven promotion installs it — the
   first [install] event. Both marks come off the same deterministic
   clock, so the collapse ratio (no-OSR over OSR) is stable and gateable
   in CI. *)
type ttp = { t_name : string; t_osr : int; t_no_osr : int }

let collapse (t : ttp) : float = float_of_int t.t_no_osr /. float_of_int t.t_osr

let osr_workload_names = [ "long-loop"; "nested-loop" ]

let time_to_peak (w : Workloads.Defs.t) : ttp =
  let run_one ~(osr : bool) : string list =
    (* a fresh compiler (and trial cache) per engine: each run compiles
       its own program instance *)
    let jit_config : Jit.Engine.config =
      {
        name = "incremental";
        compiler = Some (Common.incremental ());
        hotness_threshold = Common.hotness_threshold;
        compile_cost_per_node = Common.compile_cost_per_node;
        verify = false;
      }
    in
    let sink, lines = Obs.Trace.memory_sink () in
    Obs.Trace.scoped sink (fun () ->
        let prog = Workloads.Registry.compile w in
        let engine = Jit.Engine.create ~osr prog jit_config in
        ignore
          (Jit.Harness.run_benchmark ~iters:w.iters engine ~entry:"bench"
             ~label:w.name));
    lines ()
  in
  let first_cycles ~(kind : string) (lines : string list) : int =
    let mark l =
      match Support.Json.of_string l with
      | Error _ -> None
      | Ok j ->
          let str k = Option.bind (Support.Json.member k j) Support.Json.to_string_opt in
          let int k = Option.bind (Support.Json.member k j) Support.Json.to_int_opt in
          if str "ev" = Some kind && str "meth" = Some "bench" then int "cycles"
          else None
    in
    match List.filter_map mark lines with
    | c :: _ -> c
    | [] -> Fmt.failwith "%s: no %s event for method bench" w.name kind
  in
  {
    t_name = w.name;
    t_osr = first_cycles ~kind:"osr_enter" (run_one ~osr:true);
    t_no_osr = first_cycles ~kind:"install" (run_one ~osr:false);
  }

(* Fleet soak: 8 tenants multiplexed on bounded serving budgets with
   deterministic fault injection. The cache bound is sized at 25% of the
   demand an unbounded fleet measures, so eviction pressure is real, and
   every tenant is re-run solo under identical limits and asserted
   byte-identical — the serving layer may only degrade *when* a tenant
   reaches peak, never *what* it computes. Everything reported is
   simulated (steps, cycles, digests, percentiles), so the fleet section
   of BENCH_interp.json is byte-identical across same-seed runs. *)
let fleet_size = 8

let fleet_chaos_rate = 0.2

let fleet_chaos_seed = 0xC0FFEE

let fleet_tenants () : Jit.Serve.tenant list =
  let all = Workloads.Registry.all in
  List.init fleet_size (fun i ->
      let w = List.nth all (i mod List.length all) in
      {
        Jit.Serve.tn_id =
          Printf.sprintf "%s#%d" w.Workloads.Defs.name (i / List.length all);
        tn_make =
          (fun () ->
            ( Workloads.Registry.compile w,
              {
                Jit.Engine.name = "incremental";
                compiler = Some (Common.incremental ());
                hotness_threshold = Common.hotness_threshold;
                compile_cost_per_node = Common.compile_cost_per_node;
                verify = false;
              } ));
        tn_iters = w.iters;
      })

let fleet_soak () :
    int * int * Jit.Serve.limits * Jit.Serve.tenant_report list * string list
    * Obs.Slo.violation list =
  let tenants = fleet_tenants () in
  (* demand: the largest per-tenant resident code when nothing evicts *)
  let unbounded =
    Jit.Serve.run
      ~limits:{ Jit.Serve.default_limits with queue_capacity = Some 4 }
      tenants
  in
  let demand =
    List.fold_left
      (fun a (r : Jit.Serve.tenant_report) -> max a r.tr_cache_used)
      0 unbounded
  in
  let cap = max 1 (demand / 4) in
  let limits =
    {
      Jit.Serve.queue_capacity = Some 4;
      queue_age_unit = 1024;
      cache_capacity = Some cap;
      compile_deadline = None;
      chaos_rate = fleet_chaos_rate;
      chaos_seed = fleet_chaos_seed;
    }
  in
  (* the soak run doubles as the timeline/SLO exemplar: gauge samples and
     monitor state ride the simulated clock, so the rows (and their
     digest below) are byte-identical across same-seed runs *)
  let tl, read_rows = Obs.Timeline.memory () in
  let mon = Obs.Slo.monitor Obs.Slo.default_specs in
  let fleet = Jit.Serve.run ~limits ~timeline:tl ~slo:mon tenants in
  List.iter2
    (fun (f : Jit.Serve.tenant_report) tn ->
      match Jit.Serve.run ~limits [ tn ] with
      | [ s ] ->
          if
            f.tr_output <> s.tr_output || f.tr_steps <> s.tr_steps
            || f.tr_cycles <> s.tr_cycles || f.tr_checksum <> s.tr_checksum
          then
            Fmt.failwith
              "fleet soak: tenant %s diverges from its solo run (fleet \
               steps=%d cycles=%d vs solo steps=%d cycles=%d)"
              f.tr_id f.tr_steps f.tr_cycles s.tr_steps s.tr_cycles
      | _ -> assert false)
    fleet tenants;
  (demand, cap, limits, fleet, read_rows (), Obs.Slo.violations mon)

let run () =
  let nworkloads = List.length Workloads.Registry.all in
  Common.print_header
    (Printf.sprintf
       "interp smoke: %d workloads, interpreter only, wall clock, best of %d"
       nworkloads timed_passes);
  (* metrics recording on for the whole smoke — enabled-but-unread during
     the measured runs, then exported into the results file *)
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  let comparisons = List.map compare_workload Workloads.Registry.all in
  let sum f = List.fold_left (fun acc c -> acc + f c) 0 comparisons in
  let sumf f = List.fold_left (fun acc c -> acc +. f c) 0.0 comparisons in
  let steps = sum (fun c -> c.c_steps) in
  let ref_seconds = sumf (fun c -> c.c_ref_seconds) in
  let prep_seconds = sumf (fun c -> c.c_prep_seconds) in
  let thr_seconds = sumf (fun c -> c.c_thr_seconds) in
  let speedup = ref_seconds /. thr_seconds in
  let speedup_match = ref_seconds /. prep_seconds in
  let ic_sites = sum (fun c -> c.c_thr_run.ic_sites) in
  let ic_hits = sum (fun c -> c.c_thr_run.ic_hits) in
  let ic_misses = sum (fun c -> c.c_thr_run.ic_misses) in
  let ic_mega = sum (fun c -> c.c_thr_run.ic_megamorphic) in
  let ic_dispatches = ic_hits + ic_misses + ic_mega in
  let ic_hit_rate =
    if ic_dispatches = 0 then 0.0
    else float_of_int ic_hits /. float_of_int ic_dispatches
  in
  Common.print_table
    ~columns:
      [ "workload"; "steps"; "ref s"; "prep s"; "thr s"; "speedup"; "fused" ]
    ~rows:
      (List.map
         (fun c ->
           [
             c.c_name;
             string_of_int c.c_steps;
             Printf.sprintf "%.3f" c.c_ref_seconds;
             Printf.sprintf "%.3f" c.c_prep_seconds;
             Printf.sprintf "%.3f" c.c_thr_seconds;
             Printf.sprintf "%.2fx" (workload_speedup c);
             string_of_int (fused_sites c);
           ])
         comparisons);
  Common.note
    "threaded engine speedup: %.2fx (dispatch-match: %.2fx; outputs, cycles \
     and steps identical per workload)"
    speedup speedup_match;
  Common.note "inline caches: %d sites, %d dispatches, %.1f%% hit rate" ic_sites
    ic_dispatches
    (100.0 *. ic_hit_rate);
  let backend_json (dispatch : string) (seconds : float) =
    Support.Json.Obj
      [
        ("dispatch", Support.Json.String dispatch);
        ("steps", Support.Json.Int steps);
        ("simulated_cycles", Support.Json.Int (sum (fun c -> c.c_cycles)));
        ("seconds", Support.Json.Float seconds);
        ("steps_per_sec", Support.Json.Float (float_of_int steps /. seconds));
      ]
  in
  let per_workload_json =
    Support.Json.List
      (List.map
         (fun c ->
           Support.Json.Obj
             [
               ("name", Support.Json.String c.c_name);
               ("steps", Support.Json.Int c.c_steps);
               ("reference_seconds", Support.Json.Float c.c_ref_seconds);
               ("prepared_seconds", Support.Json.Float c.c_prep_seconds);
               ("threaded_seconds", Support.Json.Float c.c_thr_seconds);
               ("speedup", Support.Json.Float (workload_speedup c));
               ( "speedup_match",
                 Support.Json.Float (c.c_ref_seconds /. c.c_prep_seconds) );
               ("dispatch", Support.Json.String c.c_thr_run.dispatch);
               ("superinst", Jit.Harness.superinst_json c.c_thr_run);
               ("ic_sites", Support.Json.Int c.c_thr_run.ic_sites);
               ( "ic_hit_rate",
                 match Jit.Harness.ic_hit_rate_opt c.c_thr_run with
                 | Some rate -> Support.Json.Float rate
                 | None -> Support.Json.Null );
             ])
         comparisons)
  in
  let traced_name, traced, summary, attrib, traced_prog = traced_jit_run () in
  Common.note "trace smoke: %s under incremental — %d events, %d installs, %d IR nodes"
    traced_name summary.Obs.Summary.total
    (List.length traced.Jit.Harness.timeline)
    traced.Jit.Harness.code_size;
  (* compile-latency distribution of the traced JIT run, off the metrics
     registry's log2 histogram (simulated cycles, so deterministic) *)
  let ttps =
    List.map
      (fun name ->
        match Workloads.Registry.find name with
        | Some w -> time_to_peak w
        | None -> Fmt.failwith "unknown OSR workload %s" name)
      osr_workload_names
  in
  Common.print_table
    ~columns:[ "workload"; "peak w/ OSR"; "peak w/o OSR"; "collapse" ]
    ~rows:
      (List.map
         (fun t ->
           [
             t.t_name;
             string_of_int t.t_osr;
             string_of_int t.t_no_osr;
             Printf.sprintf "%.1fx" (collapse t);
           ])
         ttps);
  Common.note
    "OSR time-to-peak: cycles until the hot loop runs compiled, \
     mid-invocation transfer vs next-invocation promotion";
  let ttp_json =
    Support.Json.List
      (List.map
         (fun t ->
           Support.Json.Obj
             [
               ("name", Support.Json.String t.t_name);
               ("osr_cycles", Support.Json.Int t.t_osr);
               ("no_osr_cycles", Support.Json.Int t.t_no_osr);
               ("collapse", Support.Json.Float (collapse t));
             ])
         ttps)
  in
  let fleet_demand, fleet_cap, fleet_limits, fleet, fleet_rows, fleet_viols =
    fleet_soak ()
  in
  Common.print_table
    ~columns:
      [ "tenant"; "iters"; "steps"; "installs"; "evict"; "shed"; "qwait p99";
        "ttp p99" ]
    ~rows:
      (List.map
         (fun (r : Jit.Serve.tenant_report) ->
           [
             r.tr_id;
             string_of_int r.tr_iters;
             string_of_int r.tr_steps;
             string_of_int r.tr_installs;
             string_of_int r.tr_evictions;
             string_of_int r.tr_sheds;
             string_of_int r.tr_queue_wait_p99;
             string_of_int r.tr_ttp_p99;
           ])
         fleet);
  Common.note
    "fleet soak: %d tenants, cache %d nodes (25%% of %d demand), chaos %.2f \
     — every tenant byte-identical to its solo run"
    fleet_size fleet_cap fleet_demand fleet_chaos_rate;
  let timeline_rows =
    match Obs.Timeline.rows_of_lines fleet_rows with
    | Ok rs -> rs
    | Error e -> Fmt.failwith "fleet soak: malformed timeline row: %s" e
  in
  let count_kind k =
    List.length
      (List.filter (fun (r : Obs.Timeline.row) -> r.r_kind = k) timeline_rows)
  in
  let slo_counts =
    List.map
      (fun (s : Obs.Slo.spec) ->
        ( s.sp_name,
          List.length
            (List.filter
               (fun (v : Obs.Slo.violation) -> v.v_slo = s.sp_name)
               fleet_viols) ))
      Obs.Slo.default_specs
  in
  Common.note
    "fleet timeline: %d rows (%d samples, %d fleet), SLO firings: %s"
    (List.length fleet_rows)
    (count_kind "timeline_sample")
    (count_kind "timeline_fleet")
    (String.concat ", "
       (List.map (fun (n, c) -> Printf.sprintf "%s=%d" n c) slo_counts));
  let fleet_json =
    Support.Json.Obj
      [
        ("tenants", Support.Json.Int fleet_size);
        ( "queue_capacity",
          Support.Json.Int
            (match fleet_limits.Jit.Serve.queue_capacity with
            | Some c -> c
            | None -> -1) );
        ("cache_capacity", Support.Json.Int fleet_cap);
        ("demand", Support.Json.Int fleet_demand);
        ("chaos_rate", Support.Json.Float fleet_chaos_rate);
        ("chaos_seed", Support.Json.Int fleet_chaos_seed);
        ("solo_identical", Support.Json.Bool true);
        ("report", Jit.Serve.report_json fleet);
        ( "timeline",
          Support.Json.Obj
            [
              ("interval", Support.Json.Int Obs.Timeline.default_interval);
              ("rows", Support.Json.Int (List.length fleet_rows));
              ("samples", Support.Json.Int (count_kind "timeline_sample"));
              ("fleet_rows", Support.Json.Int (count_kind "timeline_fleet"));
              ( "digest",
                Support.Json.String
                  (Digest.to_hex
                     (Digest.string (String.concat "\n" fleet_rows))) );
            ] );
        ( "slo",
          Support.Json.Obj
            (List.map (fun (n, c) -> (n, Support.Json.Int c)) slo_counts) );
      ]
  in
  let latency = Obs.Metrics.histogram "jit.compile_latency_cycles" in
  let lat_p50 = Obs.Metrics.percentile latency 0.5 in
  let lat_p90 = Obs.Metrics.percentile latency 0.9 in
  let lat_max = Obs.Metrics.percentile latency 1.0 in
  Common.note "compile latency (cycles): p50=%d p90=%d max=%d" lat_p50 lat_p90
    lat_max;
  let json =
    Support.Json.Obj
      [
        ("benchmark", Support.Json.String "interp-smoke");
        ("workloads", Support.Json.Int nworkloads);
        ("timed_passes", Support.Json.Int timed_passes);
        ("identical_output", Support.Json.Bool true);
        ("reference", backend_json "walker" ref_seconds);
        ("prepared", backend_json "match" prep_seconds);
        ("threaded", backend_json "threaded" thr_seconds);
        ("speedup", Support.Json.Float speedup);
        ("speedup_match", Support.Json.Float speedup_match);
        ( "ic",
          Support.Json.Obj
            [
              ("sites", Support.Json.Int ic_sites);
              ("hits", Support.Json.Int ic_hits);
              ("misses", Support.Json.Int ic_misses);
              ("megamorphic", Support.Json.Int ic_mega);
              ( "hit_rate",
                if ic_dispatches = 0 then Support.Json.Null
                else Support.Json.Float ic_hit_rate );
            ] );
        ("per_workload", per_workload_json);
        ("osr_time_to_peak", ttp_json);
        ("fleet", fleet_json);
        ( "trace",
          Support.Json.Obj
            [
              ("workload", Support.Json.String traced_name);
              ("config", Support.Json.String "incremental");
              ("events", Support.Json.Int summary.Obs.Summary.total);
              ( "events_by_kind",
                Support.Json.Obj
                  (List.map
                     (fun (k, n) -> (k, Support.Json.Int n))
                     summary.Obs.Summary.kinds) );
              ("dispatch", Support.Json.String traced.Jit.Harness.dispatch);
              ("ic", Jit.Harness.ic_json traced);
              ("superinst", Jit.Harness.superinst_json traced);
              ("timeline", Jit.Harness.timeline_json traced);
              ( "compile_latency",
                Support.Json.Obj
                  [
                    ("p50", Support.Json.Int lat_p50);
                    ("p90", Support.Json.Int lat_p90);
                    ("max", Support.Json.Int lat_max);
                  ] );
              ( "hot_methods",
                (* top of the traced run's attribution table — simulated
                   cycles, so stable across runs *)
                let name m = (Ir.Program.meth traced_prog m).Ir.Types.m_name in
                Support.Json.List
                  (List.filteri (fun i _ -> i < 5) (Runtime.Attribution.rows attrib)
                  |> List.map (fun (r : Runtime.Attribution.row) ->
                         Support.Json.Obj
                           [
                             ("meth", Support.Json.String (name r.r_meth));
                             ("self_cycles", Support.Json.Int r.r_self);
                             ("total_cycles", Support.Json.Int r.r_total);
                             ("invocations", Support.Json.Int r.r_invocations);
                           ])) );
            ] );
        ("metrics", Obs.Metrics.to_json ());
      ]
  in
  Obs.Metrics.set_enabled false;
  (* atomic: an interrupted run never leaves a truncated results file *)
  Support.Io.write_atomic "BENCH_interp.json" (Support.Json.to_string json ^ "\n");
  Common.note "wrote BENCH_interp.json"
