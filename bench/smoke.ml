(* Interpreter-only wall-clock smoke benchmark.

   Runs every registered workload under the interpreter (no JIT compiler)
   twice — once on the reference IR walker, once on the prepared execution
   engine — verifies the two runs are observationally identical (output
   and simulated cycles), and reports real steps/second for both plus the
   speedup. A JIT'd run of one workload with an attached telemetry trace
   contributes compile-timeline data. Results land in BENCH_interp.json
   in the working directory.

   This measures the harness itself, not the simulation: simulated cycles
   are identical by construction; wall-clock throughput is the win. *)

let interp_config : Jit.Engine.config =
  {
    name = "interp";
    compiler = None;
    hotness_threshold = Common.hotness_threshold;
    compile_cost_per_node = Common.compile_cost_per_node;
    verify = false;
  }

type backend_run = {
  steps : int;
  cycles : int;
  digest : string;     (* of concatenated workload outputs *)
  seconds : float;
}

let run_backend (backend : Runtime.Interp.backend) : backend_run =
  let steps = ref 0 and cycles = ref 0 in
  let outputs = Buffer.create 4096 in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (w : Workloads.Defs.t) ->
      let prog = Workloads.Registry.compile w in
      let engine = Jit.Engine.create prog interp_config in
      engine.vm.backend <- backend;
      let run =
        Jit.Harness.run_benchmark ~iters:w.iters engine ~entry:"bench" ~label:w.name
      in
      steps := !steps + engine.vm.steps;
      cycles := !cycles + engine.vm.cycles;
      Buffer.add_string outputs run.output)
    Workloads.Registry.all;
  let seconds = Unix.gettimeofday () -. t0 in
  {
    steps = !steps;
    cycles = !cycles;
    digest = Digest.to_hex (Digest.string (Buffer.contents outputs));
    seconds;
  }

(* One workload under the incremental JIT with an in-memory trace sink
   attached: the trace is digested back through [Obs.Summary] (a built-in
   self-check that the emitted JSONL parses) and its compile timeline is
   embedded in the result file. *)
let traced_jit_run () =
  let w = List.hd Workloads.Registry.all in
  let sink, lines = Obs.Trace.memory_sink () in
  let run =
    Obs.Trace.scoped sink (fun () ->
        let prog = Workloads.Registry.compile w in
        let engine =
          Jit.Engine.create prog
            {
              name = "incremental";
              compiler = Some (Common.incremental ());
              hotness_threshold = Common.hotness_threshold;
              compile_cost_per_node = Common.compile_cost_per_node;
              verify = false;
            }
        in
        Jit.Harness.run_benchmark ~iters:w.iters engine ~entry:"bench" ~label:w.name)
  in
  let summary =
    match Obs.Summary.of_lines (lines ()) with
    | Ok s -> s
    | Error e -> Fmt.failwith "trace self-check failed: %s" e
  in
  (w.name, run, summary)

let run () =
  let nworkloads = List.length Workloads.Registry.all in
  Common.print_header
    (Printf.sprintf "interp smoke: %d workloads, interpreter only, wall clock"
       nworkloads);
  let reference = run_backend Runtime.Interp.Reference in
  let prepared = run_backend Runtime.Interp.Prepared in
  if reference.cycles <> prepared.cycles then
    Fmt.failwith "backend divergence: %d reference cycles vs %d prepared"
      reference.cycles prepared.cycles;
  if reference.digest <> prepared.digest then
    Fmt.failwith "backend divergence: outputs differ";
  if reference.steps <> prepared.steps then
    Fmt.failwith "backend divergence: %d reference steps vs %d prepared"
      reference.steps prepared.steps;
  let sps (r : backend_run) = float_of_int r.steps /. r.seconds in
  let speedup = sps prepared /. sps reference in
  Common.print_table
    ~columns:[ "backend"; "steps"; "seconds"; "steps/sec" ]
    ~rows:
      (List.map
         (fun (label, r) ->
           [
             label;
             string_of_int r.steps;
             Printf.sprintf "%.3f" r.seconds;
             Printf.sprintf "%.3e" (sps r);
           ])
         [ ("reference", reference); ("prepared", prepared) ]);
  Common.note "prepared engine speedup: %.2fx (outputs and cycles identical)"
    speedup;
  let backend_json (r : backend_run) =
    Support.Json.Obj
      [
        ("steps", Support.Json.Int r.steps);
        ("simulated_cycles", Support.Json.Int r.cycles);
        ("seconds", Support.Json.Float r.seconds);
        ("steps_per_sec", Support.Json.Float (sps r));
      ]
  in
  let traced_name, traced, summary = traced_jit_run () in
  Common.note "trace smoke: %s under incremental — %d events, %d installs, %d IR nodes"
    traced_name summary.Obs.Summary.total
    (List.length traced.Jit.Harness.timeline)
    traced.Jit.Harness.code_size;
  let json =
    Support.Json.Obj
      [
        ("benchmark", Support.Json.String "interp-smoke");
        ("workloads", Support.Json.Int nworkloads);
        ("identical_output", Support.Json.Bool true);
        ("reference", backend_json reference);
        ("prepared", backend_json prepared);
        ("speedup", Support.Json.Float speedup);
        ( "trace",
          Support.Json.Obj
            [
              ("workload", Support.Json.String traced_name);
              ("config", Support.Json.String "incremental");
              ("events", Support.Json.Int summary.Obs.Summary.total);
              ( "events_by_kind",
                Support.Json.Obj
                  (List.map
                     (fun (k, n) -> (k, Support.Json.Int n))
                     summary.Obs.Summary.kinds) );
              ("timeline", Jit.Harness.timeline_json traced);
            ] );
      ]
  in
  let oc = open_out "BENCH_interp.json" in
  output_string oc (Support.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Common.note "wrote BENCH_interp.json"
