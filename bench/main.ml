(* Benchmark harness entry point.

     dune exec bench/main.exe              # regenerate every figure/table
     dune exec bench/main.exe -- fig9      # a single experiment
     dune exec bench/main.exe -- bechamel  # wall-clock harness benchmarks

   Output is plain text, designed to be tee'd into bench_output.txt and
   compared against the paper's Section V (see EXPERIMENTS.md). *)

open Cmdliner

let banner () =
  print_endline "SelVM incremental-inlining reproduction harness";
  Printf.printf "workloads: %s\n" (String.concat ", " (Workloads.Registry.names ()));
  Printf.printf
    "method: up to %d iterations per run, peak = mean of the last 40%% (max 20); \
     fresh engine per (workload, config); hotness threshold %d; simulated cycles\n"
    (List.fold_left (fun acc (w : Workloads.Defs.t) -> max acc w.iters) 0
       Workloads.Registry.all)
    Common.hotness_threshold

let run_named = function
  | "fig5" -> Experiments.fig5 ()
  | "fig6" -> Experiments.fig6 ()
  | "fig7" -> Experiments.fig7 ()
  | "fig8" -> Experiments.fig8 ()
  | "fig9" -> Experiments.fig9 ()
  | "fig10" -> ignore (Experiments.fig10 ())
  | "table1" -> Experiments.table1 ()
  | "warmup" -> Experiments.warmup ()
  | "opts-ablation" -> Experiments.opts_ablation ()
  | "scaling" -> Experiments.scaling ()
  | "bechamel" -> Bechamel_suite.run ()
  | "smoke" -> Smoke.run ()
  | "all" ->
      Experiments.all ();
      Bechamel_suite.run ()
  | other -> Fmt.failwith "unknown experiment %s" other

let experiment =
  let doc =
    "Experiment to run: fig5, fig6, fig7, fig8, fig9, fig10, table1, warmup, \
     opts-ablation, scaling, bechamel, smoke, or all (default)."
  in
  Arg.(value & pos 0 string "all" & info [] ~docv:"EXPERIMENT" ~doc)

let cmd =
  let doc = "regenerate the paper's evaluation figures and tables on SelVM" in
  Cmd.v
    (Cmd.info "bench" ~doc)
    Term.(
      const (fun name ->
          banner ();
          run_named name)
      $ experiment)

let () = exit (Cmd.eval cmd)
