(* On-stack replacement tests: loop extraction (Ir.Osr), the engine's
   loop-entry OSR transfer, OSR-exit deoptimization, the trap unwind
   path, the backedge-driven entry trigger, the exponential-backoff
   clamp, and the differential exactness properties (OSR on = OSR off =
   reference interpreter, bit for bit). *)

open Util

(* An engine over [src] with the incremental inliner and OSR knobs. *)
let osr_engine ?osr ?osr_threshold ?spec_miss_threshold ?(hotness = 4)
    ?(backend : Runtime.Interp.backend option) (src : string) : Jit.Engine.t =
  let prog = compile src in
  let e =
    Jit.Engine.create ?osr ?osr_threshold ?spec_miss_threshold prog
      {
        name = "osr-test";
        compiler = Some (incremental ());
        hotness_threshold = hotness;
        compile_cost_per_node = 50;
        verify = true;
      }
  in
  (match backend with Some b -> e.vm.backend <- b | None -> ());
  e

(* Pure reference interpretation of [src]'s main. *)
let reference_output (src : string) : string =
  let prog = compile src in
  Opt.Driver.prepare_program prog;
  let vm = Runtime.Interp.create ~backend:Runtime.Interp.Reference prog in
  ignore (Runtime.Interp.run_main vm);
  Runtime.Interp.output vm

(* ---------- loop extraction ---------- *)

let loop_src =
  {|def f(n: Int): Int = {
      var s = 1;
      var i = 0;
      while (i < n) { s = s + i * i; i = i + 1 };
      s + n
    }
    def main(): Unit = println(f(25))|}

let header_of (fn : Ir.Types.fn) : Ir.Types.bid =
  match (Ir.Loops.compute fn).Ir.Loops.loops with
  | l :: _ -> l.Ir.Loops.header
  | [] -> Alcotest.fail "function has no loop"

let extraction_tests =
  [
    test "extracted continuation is verifier-clean and shape-correct" (fun () ->
        let fn = body_of (compile loop_src) "f" in
        let header = header_of fn in
        let x = Ir.Osr.extract_loop fn ~header in
        check_verifies x.Ir.Osr.x_fn;
        (* parameters are the live-ins followed by the header phis *)
        Alcotest.(check int) "param count"
          (Array.length x.Ir.Osr.x_live_ins + Array.length x.Ir.Osr.x_phis)
          (Array.length x.Ir.Osr.x_fn.Ir.Types.param_tys);
        Alcotest.(check bool) "carries loop state" true
          (Array.length x.Ir.Osr.x_phis > 0);
        (* live-in vids are ascending (the frame-mapping contract) *)
        let sorted a =
          let l = Array.to_list a in
          List.sort compare l = l
        in
        Alcotest.(check bool) "live-ins ascending" true
          (sorted x.Ir.Osr.x_live_ins);
        (* result type is the source function's: the transfer is one-way *)
        Alcotest.(check bool) "result type inherited" true
          (x.Ir.Osr.x_fn.Ir.Types.rty = fn.Ir.Types.rty);
        (* the phi mapping names real phis of the source header *)
        let fn2 = x.Ir.Osr.x_fn in
        ignore fn2;
        Array.iter
          (fun v ->
            match Ir.Fn.kind fn v with
            | Ir.Types.Phi _ -> ()
            | _ -> Alcotest.failf "v%d in x_phis is not a phi" v)
          x.Ir.Osr.x_phis);
    test "extraction does not mutate the source function" (fun () ->
        let fn = body_of (compile loop_src) "f" in
        let before = Ir.Printer.fn_to_string fn in
        let header = header_of fn in
        ignore (Ir.Osr.extract_loop fn ~header);
        Alcotest.(check string) "source unchanged" before
          (Ir.Printer.fn_to_string fn));
    test "a dead header is refused" (fun () ->
        let fn = body_of (compile loop_src) "f" in
        match Ir.Osr.extract_loop fn ~header:9999 with
        | _ -> Alcotest.fail "extracted at a non-existent header"
        | exception Ir.Osr.Not_extractable _ -> ());
  ]

(* ---------- loop-entry OSR: enter + exactness ---------- *)

let enter_tests =
  [
    test "long-loop enters compiled code mid-invocation" (fun () ->
        let w = Option.get (Workloads.Registry.find "long-loop") in
        let e = osr_engine ~hotness:4 w.Workloads.Defs.source in
        ignore (Jit.Engine.run_main e);
        Alcotest.(check bool) "osr_enters > 0" true (e.osr_enters > 0);
        Alcotest.(check bool) "continuation registered" true
          (Hashtbl.length e.osr_meta > 0);
        Alcotest.(check string) "output exact" w.Workloads.Defs.expected
          (Jit.Engine.output e));
    test "nested-loop enters and stays exact" (fun () ->
        let w = Option.get (Workloads.Registry.find "nested-loop") in
        let e = osr_engine ~hotness:4 w.Workloads.Defs.source in
        ignore (Jit.Engine.run_main e);
        Alcotest.(check bool) "osr_enters > 0" true (e.osr_enters > 0);
        Alcotest.(check string) "output exact" w.Workloads.Defs.expected
          (Jit.Engine.output e));
    test "OSR = no-OSR = reference, bit for bit" (fun () ->
        List.iter
          (fun name ->
            let w = Option.get (Workloads.Registry.find name) in
            let src = w.Workloads.Defs.source in
            let run osr =
              let e = osr_engine ~osr ~hotness:4 src in
              ignore (Jit.Engine.run_main e);
              (Jit.Engine.output e, e.osr_enters)
            in
            let out_on, enters = run true in
            let out_off, no_enters = run false in
            Alcotest.(check bool) (name ^ ": OSR fired") true (enters > 0);
            Alcotest.(check int) (name ^ ": kill switch inert") 0 no_enters;
            Alcotest.(check string) (name ^ ": on = off") out_off out_on;
            Alcotest.(check string) (name ^ ": on = reference")
              (reference_output src) out_on)
          [ "long-loop"; "nested-loop" ]);
    test "all three backends agree under OSR" (fun () ->
        let w = Option.get (Workloads.Registry.find "long-loop") in
        let run backend =
          let e = osr_engine ~hotness:4 ~backend w.Workloads.Defs.source in
          ignore (Jit.Engine.run_main e);
          for _ = 1 to 2 do
            ignore (Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ])
          done;
          (Jit.Engine.output e, e.vm.cycles, e.vm.steps, e.osr_enters)
        in
        let ot, ct, st, et = run Runtime.Interp.Threaded in
        let op, cp, sp, ep = run Runtime.Interp.Prepared in
        let or_, cr, sr, er = run Runtime.Interp.Reference in
        Alcotest.(check string) "threaded = prepared output" ot op;
        Alcotest.(check string) "threaded = reference output" ot or_;
        Alcotest.(check int) "threaded = prepared cycles" ct cp;
        Alcotest.(check int) "threaded = reference cycles" ct cr;
        Alcotest.(check int) "threaded = prepared steps" st sp;
        Alcotest.(check int) "threaded = reference steps" st sr;
        Alcotest.(check bool) "all entered" true (et > 0 && ep > 0 && er > 0));
  ]

(* ---------- OSR-exit: invalidation and trap deopt ---------- *)

let shift_src =
  {|abstract class A { def m(x: Int): Int }
    class B() extends A { def m(x: Int): Int = x + 1 }
    class C() extends A { def m(x: Int): Int = x * 2 }
    def pick(i: Int, k: Int): A = {
      if (i < k) { new B() } else { new C() }
    }
    def bench(n: Int, k: Int): Int = {
      var s = 0;
      var i = 0;
      while (i < n) { s = s + pick(i, k).m(i); i = i + 1 };
      s
    }
    def main(): Unit = println(bench(4000, 2000))|}

let trap_src =
  {|def bench(n: Int): Int = {
      var s = 0;
      var i = 0 - 400;
      while (i < n) { s = s + 1000 / i; i = i + 1 };
      s
    }
    def main(): Unit = println(bench(100))|}

let exit_tests =
  [
    test "mid-loop invalidation OSR-exits and stays exact" (fun () ->
        (* the phase shift at i = 2000 invalidates the speculated OSR
           continuation while its compiled frame is running: the frame
           must exit to an interpreted continuation at the next header *)
        let e = osr_engine ~hotness:4 ~spec_miss_threshold:50 shift_src in
        ignore (Jit.Engine.run_main e);
        Alcotest.(check bool) "entered" true (e.osr_enters > 0);
        Alcotest.(check bool) "exited" true (e.osr_exits > 0);
        let off = osr_engine ~osr:false ~hotness:4 ~spec_miss_threshold:50 shift_src in
        ignore (Jit.Engine.run_main off);
        Alcotest.(check string) "output = no-OSR" (Jit.Engine.output off)
          (Jit.Engine.output e);
        Alcotest.(check string) "output = reference" (reference_output shift_src)
          (Jit.Engine.output e));
    test "a trap inside an OSR continuation unwinds exactly" (fun () ->
        let run osr =
          let e = osr_engine ~osr ~hotness:3 trap_src in
          match Jit.Engine.run_main e with
          | _ -> Alcotest.fail "expected a trap"
          | exception Runtime.Values.Trap msg ->
              (msg, Jit.Engine.output e, e.osr_enters, e.osr_exits)
        in
        let msg_on, out_on, enters, exits = run true in
        let msg_off, out_off, _, _ = run false in
        Alcotest.(check bool) "entered before trapping" true (enters > 0);
        Alcotest.(check bool) "trap recorded as an exit" true (exits > 0);
        Alcotest.(check string) "same trap message" msg_off msg_on;
        Alcotest.(check string) "same partial output" out_off out_on);
  ]

(* ---------- backedge-driven entry trigger (the bugfix) ---------- *)

let hot_loop_src =
  {|def hotloop(): Int = {
      var s = 0;
      var i = 0;
      while (i < 400) { s = s + i; i = i + 1 };
      s
    }
    def main(): Unit = println(hotloop())|}

let trigger_tests =
  [
    test "single-invocation hot loop promotes at its next call" (fun () ->
        (* hotness 50 would keep hotloop interpreted for 50 calls; the
           profiled backedge count (400 >= 100) promotes it at call 2 —
           with OSR killed, so this is the entry trigger alone *)
        let e =
          osr_engine ~osr:false ~osr_threshold:100 ~hotness:50 hot_loop_src
        in
        ignore (Jit.Engine.run_meth e "hotloop" [ Runtime.Values.Vunit ]);
        Alcotest.(check bool) "interpreted on first call" true
          (Jit.Engine.compiled_body e "hotloop" = None);
        ignore (Jit.Engine.run_meth e "hotloop" [ Runtime.Values.Vunit ]);
        Alcotest.(check bool) "compiled at second call" true
          (Jit.Engine.compiled_body e "hotloop" <> None));
    test "a cold loop does not promote early" (fun () ->
        (* counts accumulate across invocations: 5 x 400 backedges stay
           under the 10000 threshold, so only invocation hotness applies *)
        let e =
          osr_engine ~osr:false ~osr_threshold:10000 ~hotness:50 hot_loop_src
        in
        for _ = 1 to 5 do
          ignore (Jit.Engine.run_meth e "hotloop" [ Runtime.Values.Vunit ])
        done;
        Alcotest.(check bool) "still interpreted" true
          (Jit.Engine.compiled_body e "hotloop" = None));
  ]

(* ---------- exponential backoff clamp (satellite bugfix) ---------- *)

let backoff_tests =
  [
    test "backoff doubles from the hotness threshold" (fun () ->
        Alcotest.(check int) "f=1" 8 (Jit.Engine.backoff_cooldown ~hotness:8 ~failures:1);
        Alcotest.(check int) "f=2" 16 (Jit.Engine.backoff_cooldown ~hotness:8 ~failures:2);
        Alcotest.(check int) "f=5" 128 (Jit.Engine.backoff_cooldown ~hotness:8 ~failures:5));
    test "backoff never overflows to a negative gate" (fun () ->
        (* the old formula [hotness * (1 lsl (failures - 1))] went
           negative past 62 failures, silently un-gating recompilation *)
        List.iter
          (fun failures ->
            let d = Jit.Engine.backoff_cooldown ~hotness:8 ~failures in
            Alcotest.(check bool)
              (Printf.sprintf "positive at %d failures" failures)
              true (d > 0))
          [ 40; 62; 63; 64; 100; 10_000; max_int ];
        (* huge hotness saturates instead of wrapping *)
        let d = Jit.Engine.backoff_cooldown ~hotness:(max_int / 2) ~failures:30 in
        Alcotest.(check bool) "huge hotness still positive" true (d > 0);
        (* saturation is monotone: more failures never shrink the gate *)
        let prev = ref 0 in
        for f = 1 to 80 do
          let d = Jit.Engine.backoff_cooldown ~hotness:8 ~failures:f in
          Alcotest.(check bool) "monotone" true (d >= !prev);
          prev := d
        done);
  ]

(* ---------- continuation failure-state inheritance (satellite) ---------- *)

let inheritance_tests =
  [
    test "a blacklisted parent burns no compile fuel through continuations"
      (fun () ->
        (* every compile crashes: the parent exhausts its failure budget
           and is blacklisted. Its synthetic @osr continuations inherit
           that state instead of getting a fresh budget, so continued
           hot-loop pressure must not record a single further bailout *)
        let crashing : Jit.Engine.compiler = fun _ _ _ -> failwith "boom" in
        let prog = compile hot_loop_src in
        let e =
          Jit.Engine.create ~osr:true ~osr_threshold:8 prog
            {
              name = "osr-inherit";
              compiler = Some crashing;
              hotness_threshold = 2;
              compile_cost_per_node = 50;
              verify = false;
            }
        in
        let drive n =
          for _ = 1 to n do
            ignore (Jit.Engine.run_meth e "hotloop" [ Runtime.Values.Vunit ])
          done
        in
        drive 60;
        let bs = Jit.Engine.bailout_stats e in
        let hotloop = Option.get (Ir.Program.find_meth prog "hotloop") in
        Alcotest.(check bool) "parent blacklisted" true
          (List.mem hotloop bs.Jit.Engine.blacklisted_methods);
        let before = bs.Jit.Engine.failed_attempts in
        drive 60;
        Alcotest.(check int) "no fuel burned through continuations" before
          (Jit.Engine.bailout_stats e).Jit.Engine.failed_attempts);
  ]

(* ---------- differential properties (qcheck) ---------- *)

(* Small synthetic call graphs with real loops: leaf work and hot
   callsites both lower to whiles, so a low OSR threshold makes the
   transfer fire constantly. *)
let synth_config_gen : Workloads.Synth.config QCheck.Gen.t =
  QCheck.Gen.(
    let* seed = int_range 0 1000 in
    let* depth = int_range 1 3 in
    let* fanout = int_range 1 2 in
    let* poly = int_range 1 3 in
    let* leaf = int_range 4 40 in
    return
      {
        Workloads.Synth.seed;
        depth;
        fanout;
        poly_degree = poly;
        leaf_work = leaf;
        hot_fraction = 0.5;
      })

let synth_arbitrary =
  QCheck.make
    ~print:(fun c -> Workloads.Synth.source_of c)
    synth_config_gen

let engine_over (w : Workloads.Defs.t) ~osr ~backend =
  let prog = Workloads.Registry.compile w in
  let e =
    Jit.Engine.create ~osr ~osr_threshold:8 ~spec_miss_threshold:40 prog
      {
        name = "osr-prop";
        compiler = Some (incremental ());
        hotness_threshold = 3;
        compile_cost_per_node = 50;
        verify = false;
      }
  in
  e.vm.backend <- backend;
  ignore (Jit.Engine.run_main e);
  for _ = 1 to 3 do
    ignore (Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ])
  done;
  e

let prop_tests =
  [
    QCheck.Test.make ~count:12 ~name:"random programs: OSR = no-OSR = pinned output"
      synth_arbitrary (fun cfg ->
        let w = Workloads.Synth.generate cfg in
        let on = engine_over w ~osr:true ~backend:Runtime.Interp.Threaded in
        let off = engine_over w ~osr:false ~backend:Runtime.Interp.Threaded in
        Jit.Engine.output on = Jit.Engine.output off
        && String.length (Jit.Engine.output on) > 0
        &&
        (* main's expected output is a prefix of the run's (main + bench) *)
        String.sub (Jit.Engine.output on) 0
          (String.length w.Workloads.Defs.expected)
          = w.Workloads.Defs.expected);
    QCheck.Test.make ~count:8 ~name:"random programs: backends agree under OSR"
      synth_arbitrary (fun cfg ->
        let w = Workloads.Synth.generate cfg in
        let t = engine_over w ~osr:true ~backend:Runtime.Interp.Threaded in
        let p = engine_over w ~osr:true ~backend:Runtime.Interp.Prepared in
        let r = engine_over w ~osr:true ~backend:Runtime.Interp.Reference in
        Jit.Engine.output t = Jit.Engine.output p
        && Jit.Engine.output t = Jit.Engine.output r
        && t.vm.cycles = p.vm.cycles
        && t.vm.cycles = r.vm.cycles
        && t.vm.steps = p.vm.steps
        && t.vm.steps = r.vm.steps);
  ]

let () =
  Alcotest.run "osr"
    [
      ("extraction", extraction_tests);
      ("enter", enter_tests);
      ("exit", exit_tests);
      ("trigger", trigger_tests);
      ("backoff", backoff_tests);
      ("inheritance", inheritance_tests);
      ("properties", List.map QCheck_alcotest.to_alcotest prop_tests);
    ]
