(* Tests for the tiered engine: hotness-triggered compilation, code-cache
   installation, the compile-cycle meter, and the benchmark harness. *)

open Util

let counting_compiler (counter : int ref) : Jit.Engine.compiler =
 fun prog _profiles m ->
  incr counter;
  match (Ir.Program.meth prog m).body with
  | Some fn -> Ir.Fn.copy fn
  | None -> Alcotest.fail "compiling a method without a body"

let hot_src =
  {|def work(n: Int): Int = { var i = 0; var s = 0; while (i < n) { s = s + i; i = i + 1 }; s }
    def bench(): Int = work(20)
    def main(): Unit = println(bench())|}

let engine_tests =
  [
    test "methods compile when crossing the hotness threshold" (fun () ->
        let counter = ref 0 in
        let e = engine ~hotness:5 hot_src (Some (counting_compiler counter)) "count" in
        for _ = 1 to 4 do
          ignore (Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ])
        done;
        Alcotest.(check int) "nothing compiled below threshold" 0 !counter;
        ignore (Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ]);
        Alcotest.(check int) "bench and work compiled at threshold" 2 !counter);
    test "each method compiles exactly once" (fun () ->
        let counter = ref 0 in
        let e = engine ~hotness:3 hot_src (Some (counting_compiler counter)) "once" in
        for _ = 1 to 50 do
          ignore (Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ])
        done;
        Alcotest.(check int) "bench + work" 2 !counter);
    test "installed code is actually used" (fun () ->
        (* install a stub that returns a constant and observe the change *)
        let prog = compile hot_src in
        let e =
          Jit.Engine.create prog
            {
              name = "stub";
              compiler =
                Some
                  (fun _ _ _ ->
                    let open Ir.Types in
                    let fn = Ir.Fn.create ~fname:"stub" ~param_tys:[| Tunit |] ~rty:Tint in
                    let b = Ir.Fn.add_block fn in
                    fn.entry <- b;
                    let c = Ir.Fn.append fn b (Const (Cint 777)) in
                    Ir.Fn.set_term fn b (Return c);
                    fn);
              hotness_threshold = 3;
              compile_cost_per_node = 1;
              verify = true;
            }
        in
        let last = ref Runtime.Values.Vunit in
        for _ = 1 to 5 do
          last := Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ]
        done;
        Alcotest.(check int) "stub result" 777 (Runtime.Values.as_int !last));
    test "interpreter config never compiles" (fun () ->
        let e = engine hot_src None "interp" in
        for _ = 1 to 50 do
          ignore (Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ])
        done;
        Alcotest.(check int) "no code" 0 (Jit.Engine.installed_methods e));
    test "compile cycles metered per installed node" (fun () ->
        let e = engine ~hotness:2 hot_src (Some (incremental ())) "meter" in
        for _ = 1 to 10 do
          ignore (Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ])
        done;
        Alcotest.(check bool) "compile cycles > 0" true (e.compile_cycles > 0);
        Alcotest.(check int) "cycles = 50 * size" (50 * Jit.Engine.installed_code_size e)
          e.compile_cycles);
    test "code size accounts installed bodies" (fun () ->
        let e = engine ~hotness:2 hot_src (Some (incremental ())) "size" in
        for _ = 1 to 10 do
          ignore (Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ])
        done;
        Alcotest.(check bool) "some code" true (Jit.Engine.installed_code_size e > 0);
        match Jit.Engine.compiled_body e "bench" with
        | Some fn -> check_verifies fn
        | None -> Alcotest.fail "bench not in cache");
  ]

(* Regression: an exception escaping the pluggable compiler (or the
   verify step) used to propagate out of [Interp] through [on_entry] and
   abort the whole run. The engine must contain it, record a bailout,
   and keep interpreting. *)
let bailout_tests =
  [
    test "a crashing compiler does not abort the run" (fun () ->
        let crashes = ref 0 in
        let e =
          engine ~hotness:3 hot_src
            (Some
               (fun _ _ _ ->
                 incr crashes;
                 failwith "boom: injected compiler bug"))
            "crash"
        in
        let last = ref Runtime.Values.Vunit in
        for _ = 1 to 20 do
          last := Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ]
        done;
        Alcotest.(check int) "program result unaffected" 190
          (Runtime.Values.as_int !last);
        Alcotest.(check bool) "compiler was invoked" true (!crashes > 0);
        Alcotest.(check int) "nothing installed" 0 (Jit.Engine.installed_methods e);
        Alcotest.(check bool) "bailouts recorded" true (e.bailouts <> []);
        Alcotest.(check bool) "reason captured" true
          (List.for_all
             (fun (b : Jit.Engine.bailout) ->
               contains_substring ~needle:"boom" b.reason)
             e.bailouts));
    test "a verifier reject does not abort the run" (fun () ->
        (* a compiler producing ill-formed IR: the verify step throws *)
        let bogus : Jit.Engine.compiler =
         fun _ _ _ ->
          let open Ir.Types in
          let fn = Ir.Fn.create ~fname:"bogus" ~param_tys:[| Tunit |] ~rty:Tint in
          let b = Ir.Fn.add_block fn in
          fn.entry <- b;
          Ir.Fn.set_term fn b (Return 9999);  (* undefined value id *)
          fn
        in
        let e = engine ~hotness:3 hot_src (Some bogus) "bogus" in
        let last = ref Runtime.Values.Vunit in
        for _ = 1 to 10 do
          last := Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ]
        done;
        Alcotest.(check int) "result correct" 190 (Runtime.Values.as_int !last);
        Alcotest.(check int) "ill-formed body never installed" 0
          (Jit.Engine.installed_methods e);
        Alcotest.(check bool) "bailout names the verifier" true
          (List.exists
             (fun (b : Jit.Engine.bailout) ->
               contains_substring ~needle:"verify" b.reason)
             e.bailouts));
    test "host-process conditions are not contained" (fun () ->
        Alcotest.(check bool) "Out_of_memory fatal" false
          (Jit.Engine.containable Out_of_memory);
        Alcotest.(check bool) "Sys.Break fatal" false
          (Jit.Engine.containable Sys.Break);
        Alcotest.(check bool) "Failure contained" true
          (Jit.Engine.containable (Failure "x"));
        Alcotest.(check bool) "Stack_overflow contained" true
          (Jit.Engine.containable Stack_overflow));
  ]

let harness_tests =
  [
    test "harness iterations speed up after compilation" (fun () ->
        let e = engine ~hotness:5 hot_src (Some (incremental ())) "warm" in
        let run = Jit.Harness.run_benchmark ~iters:30 e ~entry:"bench" ~label:"warm" in
        let first = (List.hd run.iterations).cycles in
        Alcotest.(check bool) "peak below first" true (run.peak_cycles < float_of_int first);
        Alcotest.(check int) "30 iterations" 30 (List.length run.iterations));
    test "harness peak uses the steady-state window" (fun () ->
        let e = engine hot_src None "flat" in
        let run = Jit.Harness.run_benchmark ~iters:10 e ~entry:"bench" ~label:"flat" in
        (* interpreter-only: every iteration costs the same *)
        Alcotest.(check (float 0.5)) "stddev 0" 0.0 run.peak_stddev);
    test "harness records code growth" (fun () ->
        let e = engine ~hotness:3 hot_src (Some (incremental ())) "growth" in
        let run = Jit.Harness.run_benchmark ~iters:10 e ~entry:"bench" ~label:"g" in
        let first = List.hd run.iterations in
        let last = List.nth run.iterations 9 in
        Alcotest.(check bool) "methods appear" true
          (last.compiled_methods > first.compiled_methods || first.compiled_methods > 0));
  ]

(* Phase shift: the receiver distribution at a shared callsite changes
   after the method compiles — the paper's Section II "noisy estimates /
   phase shifts" difficulty. With speculation management on, the stale
   typeswitch is invalidated and the method recompiles against the new
   profile. *)
let phase_shift_src =
  {|abstract class A { def m(): Int }
    class B() extends A { def m(): Int = 1 }
    class C() extends A { def m(): Int = 2 }
    def call(a: A): Int = a.m() + a.m() + a.m()
    def main(): Unit = println(call(new B()) + call(new C()))|}

(* [call] is driven directly with receivers built from the host side, so
   its own compiled code (and its typeswitch speculation) stays live —
   no caller ever inlines it. *)
let spec_engine ?spec_miss_threshold () =
  let prog = compile phase_shift_src in
  let e =
    Jit.Engine.create ?spec_miss_threshold prog
      {
        name = "spec";
        compiler = Some (incremental ());
        hotness_threshold = 4;
        compile_cost_per_node = 50;
        verify = true;
      }
  in
  let mk name =
    let cls =
      let r = ref (-1) in
      Ir.Program.iter_classes
        (fun (c : Ir.Types.cls) -> if c.c_name = name then r := c.c_id)
        prog;
      !r
    in
    Runtime.Values.alloc_obj prog cls
  in
  (e, mk "B", mk "C")

let drive e receiver n =
  let last = ref 0 in
  for _ = 1 to n do
    last :=
      Runtime.Values.as_int
        (Jit.Engine.run_meth e "call" [ Runtime.Values.Vunit; receiver ])
  done;
  !last

let speculation_tests =
  [
    test "phase shift invalidates and recompiles" (fun () ->
        let e, b, c = spec_engine ~spec_miss_threshold:50 () in
        (* phase 1: train the speculation on B receivers *)
        Alcotest.(check int) "phase 1 result" 3 (drive e b 30);
        Alcotest.(check int) "no invalidations yet" 0 (List.length e.invalidations);
        (* phase 2: only C receivers — every dispatch misses the typeswitch *)
        Alcotest.(check int) "phase 2 result" 6 (drive e c 60);
        Alcotest.(check bool) "call invalidated" true (List.length e.invalidations >= 1);
        let call_m = Option.get (Ir.Program.find_meth e.vm.prog "call") in
        Alcotest.(check bool) "call recompiled" true (Hashtbl.mem e.code_cache call_m);
        Alcotest.(check int) "still correct" 6 (drive e c 1));
    test "recompilation improves post-shift performance" (fun () ->
        let measure ?spec_miss_threshold () =
          let e, b, c = spec_engine ?spec_miss_threshold () in
          ignore (drive e b 30);
          ignore (drive e c 60);
          let c0 = e.vm.cycles in
          ignore (drive e c 20);
          e.vm.cycles - c0
        in
        let with_inval = measure ~spec_miss_threshold:50 () in
        let without = measure () in
        if with_inval >= without then
          Alcotest.failf "recompilation did not help: %d vs %d" with_inval without);
    test "invalidations are bounded by max_recompiles" (fun () ->
        let e, b, c = spec_engine ~spec_miss_threshold:20 () in
        ignore (drive e b 10);
        (* alternate phases to provoke repeated misses *)
        for _ = 1 to 40 do
          ignore (drive e c 3);
          ignore (drive e b 3)
        done;
        Alcotest.(check bool) "bounded" true (List.length e.invalidations <= 2));
    test "disabled by default" (fun () ->
        let e, b, c = spec_engine () in
        ignore (drive e b 30);
        ignore (drive e c 100);
        Alcotest.(check int) "no invalidations" 0 (List.length e.invalidations));
    test "install resets stale miss counts" (fun () ->
        (* regression: misses accumulated against a previous code version
           must not count toward invalidating the freshly installed body.
           Seed a stale counter just below the threshold before the method
           compiles; installation must clear it, so a burst of misses
           smaller than the threshold cannot invalidate. *)
        let e, b, c = spec_engine ~spec_miss_threshold:50 () in
        let call_m = Option.get (Ir.Program.find_meth e.vm.prog "call") in
        Hashtbl.replace e.miss_counts call_m (ref 49);
        (* train and install on B receivers *)
        Alcotest.(check int) "trained" 3 (drive e b 30);
        Alcotest.(check bool) "installed" true (Hashtbl.mem e.code_cache call_m);
        (* 16 C calls -> 48 fresh misses: below threshold, so the stale 49
           is the only thing that could tip it over *)
        Alcotest.(check int) "shifted" 6 (drive e c 16);
        Alcotest.(check int) "stale misses did not invalidate" 0
          (List.length e.invalidations);
        (* the threshold itself still works: one more call crosses 50 *)
        ignore (drive e c 1);
        Alcotest.(check bool) "genuine misses still invalidate" true
          (List.length e.invalidations >= 1));
  ]

let async_tests =
  [
    test "async compilation delays installation by the compile latency" (fun () ->
        let prog = compile hot_src in
        let e =
          Jit.Engine.create ~async_compile:true prog
            { name = "async"; compiler = Some (incremental ()); hotness_threshold = 3;
              compile_cost_per_node = 1000 (* long latency *); verify = true }
        in
        (* cross the threshold: code is produced but pending *)
        for _ = 1 to 3 do
          ignore (Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ])
        done;
        Alcotest.(check bool) "pending" true (Hashtbl.length e.pending > 0);
        Alcotest.(check int) "nothing installed yet" 0 (Jit.Engine.installed_methods e);
        (* keep running: the simulated latency elapses and code installs *)
        for _ = 1 to 200 do
          ignore (Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ])
        done;
        Alcotest.(check bool) "installed eventually" true
          (Jit.Engine.installed_methods e > 0));
    test "async and sync converge to the same steady state" (fun () ->
        let peak async =
          let prog = compile hot_src in
          let e =
            Jit.Engine.create ~async_compile:async prog
              { name = "x"; compiler = Some (incremental ()); hotness_threshold = 3;
                compile_cost_per_node = 50; verify = false }
          in
          let run = Jit.Harness.run_benchmark ~iters:60 e ~entry:"bench" ~label:"x" in
          run.peak_cycles
        in
        Alcotest.(check (float 0.5)) "same peak" (peak false) (peak true));
    test "async warmup is slower than sync warmup" (fun () ->
        let cycles_first_k async =
          let prog = compile hot_src in
          let e =
            Jit.Engine.create ~async_compile:async prog
              { name = "x"; compiler = Some (incremental ()); hotness_threshold = 3;
                compile_cost_per_node = 500; verify = false }
          in
          let run = Jit.Harness.run_benchmark ~iters:25 e ~entry:"bench" ~label:"x" in
          List.fold_left (fun acc (it : Jit.Harness.iteration) -> acc + it.cycles) 0
            run.iterations
        in
        Alcotest.(check bool) "async pays warmup" true
          (cycles_first_k true >= cycles_first_k false));
    test "pending code still profiles (interpreted meanwhile)" (fun () ->
        let prog = compile hot_src in
        let e =
          Jit.Engine.create ~async_compile:true prog
            { name = "async"; compiler = Some (incremental ()); hotness_threshold = 3;
              compile_cost_per_node = 100000; verify = false }
        in
        for _ = 1 to 10 do
          ignore (Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ])
        done;
        let m = Option.get (Ir.Program.find_meth prog "bench") in
        Alcotest.(check bool) "profile keeps growing" true
          (Runtime.Profile.invocation_count e.vm.profiles m >= 10));
    test "flush_pending surfaces never-re-entered compilations" (fun () ->
        (* regression: a method that crosses the threshold on its *last*
           entry compiles into [pending] and, with no further entries, the
           install check never runs — the paid-for code was invisible to
           installed_code_size and compilations. *)
        let prog = compile hot_src in
        let e =
          Jit.Engine.create ~async_compile:true prog
            { name = "async"; compiler = Some (incremental ()); hotness_threshold = 3;
              compile_cost_per_node = 1; verify = true }
        in
        for _ = 1 to 3 do
          ignore (Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ])
        done;
        (* bench and work both became hot on the final iteration *)
        Alcotest.(check int) "nothing installed" 0 (Jit.Engine.installed_methods e);
        Alcotest.(check bool) "pending visible" true (Jit.Engine.pending_methods e > 0);
        Alcotest.(check bool) "pending size visible" true
          (Jit.Engine.pending_code_size e > 0);
        let n = Jit.Engine.flush_pending ~force:true e in
        Alcotest.(check bool) "flush installed them" true (n > 0);
        Alcotest.(check int) "pending drained" 0 (Jit.Engine.pending_methods e);
        Alcotest.(check int) "accounted" n (Jit.Engine.installed_methods e);
        Alcotest.(check bool) "code size now visible" true
          (Jit.Engine.installed_code_size e > 0);
        Alcotest.(check int) "compilations recorded" n
          (List.length e.compilations));
    test "flush_pending without force honours the latency" (fun () ->
        let prog = compile hot_src in
        let e =
          Jit.Engine.create ~async_compile:true prog
            { name = "async"; compiler = Some (incremental ()); hotness_threshold = 3;
              compile_cost_per_node = 1000000 (* never elapses *); verify = false }
        in
        for _ = 1 to 3 do
          ignore (Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ])
        done;
        Alcotest.(check bool) "pending" true (Jit.Engine.pending_methods e > 0);
        Alcotest.(check int) "latency not elapsed: nothing installs" 0
          (Jit.Engine.flush_pending e);
        Alcotest.(check bool) "still pending" true (Jit.Engine.pending_methods e > 0));
    test "harness end-of-run accounting includes elapsed pending code" (fun () ->
        (* same scenario through the harness: with a tiny per-node cost the
           latency elapses during the final iteration, so the end-of-run
           flush installs the bodies and the run reports their size. *)
        let prog = compile hot_src in
        let e =
          Jit.Engine.create ~async_compile:true prog
            { name = "async"; compiler = Some (incremental ()); hotness_threshold = 3;
              compile_cost_per_node = 1; verify = false }
        in
        let run = Jit.Harness.run_benchmark ~iters:3 e ~entry:"bench" ~label:"a" in
        Alcotest.(check bool) "code size reported" true (run.code_size > 0);
        Alcotest.(check bool) "timeline non-empty" true (run.timeline <> []);
        (* anything still latent is reported separately, never dropped *)
        Alcotest.(check int) "nothing left behind" 0
          (Jit.Engine.pending_methods e - run.pending_methods));
  ]

let () =
  Alcotest.run "jit"
    [
      ("engine", engine_tests);
      ("bailout", bailout_tests);
      ("harness", harness_tests);
      ("speculation", speculation_tests);
      ("async", async_tests);
    ]
