(* Tests for the telemetry subsystem: the ambient trace sink, event
   emission from the engine/inliner/optimizer, trace determinism, and the
   [selvm events] summary aggregation. *)

open Util

(* Runs [hot_src] under the incremental JIT with a memory sink installed;
   returns the collected JSONL lines. *)
let traced_run ?(iters = 20) () =
  let sink, lines = Obs.Trace.memory_sink () in
  Obs.Trace.scoped sink (fun () ->
      let e =
        engine ~hotness:3
          {|def work(n: Int): Int = { var i = 0; var s = 0; while (i < n) { s = s + i; i = i + 1 }; s }
            def bench(): Int = work(20)
            def main(): Unit = println(bench())|}
          (Some (incremental ())) "traced"
      in
      for _ = 1 to iters do
        ignore (Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ])
      done;
      (e, lines ()))

let kind_of line =
  match Support.Json.of_string line with
  | Ok j -> Option.bind (Support.Json.member "ev" j) Support.Json.to_string_opt
  | Error _ -> None

let has_kind k lines = List.exists (fun l -> kind_of l = Some k) lines

let trace_tests =
  [
    test "disabled tracing emits nothing and costs nothing" (fun () ->
        Alcotest.(check bool) "not enabled" false (Obs.Trace.enabled ());
        (* the fields closure must never be forced without a sink *)
        Obs.Trace.emit "boom" (fun () -> Alcotest.fail "fields forced while disabled");
        let _, lines = traced_run () in
        Alcotest.(check bool) "sink collected events" true (lines <> []);
        (* after the scoped run the ambient sink is restored to nothing *)
        Alcotest.(check bool) "disabled again" false (Obs.Trace.enabled ()));
    test "every line is valid single-object JSON with ev and cycles" (fun () ->
        let _, lines = traced_run () in
        List.iter
          (fun line ->
            match Support.Json.of_string line with
            | Error e -> Alcotest.failf "bad JSONL line %S: %s" line e
            | Ok j ->
                Alcotest.(check bool) "has ev" true
                  (Support.Json.member "ev" j <> None);
                (match Option.bind (Support.Json.member "cycles" j)
                         Support.Json.to_int_opt with
                | Some c -> Alcotest.(check bool) "cycles >= 0" true (c >= 0)
                | None -> Alcotest.failf "no cycles in %S" line))
          lines);
    test "engine and compiler pipeline events all appear" (fun () ->
        let _, lines = traced_run () in
        List.iter
          (fun k ->
            Alcotest.(check bool) (k ^ " present") true (has_kind k lines))
          [
            "compile_start"; "compile_done"; "install";
            "inline_round"; "expand_decision"; "inline_decision"; "opt_round";
          ]);
    test "identical runs produce byte-identical traces" (fun () ->
        let _, a = traced_run () in
        let _, b = traced_run () in
        Alcotest.(check (list string)) "deterministic" a b);
    test "cycle stamps are monotonically non-decreasing" (fun () ->
        let _, lines = traced_run () in
        let cycles =
          List.filter_map
            (fun l ->
              match Support.Json.of_string l with
              | Ok j -> Option.bind (Support.Json.member "cycles" j)
                          Support.Json.to_int_opt
              | Error _ -> None)
            lines
        in
        let rec mono = function
          | a :: (b :: _ as rest) -> a <= b && mono rest
          | _ -> true
        in
        Alcotest.(check bool) "monotone" true (mono cycles));
    test "scoped nests and restores the previous sink" (fun () ->
        let outer, outer_lines = Obs.Trace.memory_sink () in
        let inner, inner_lines = Obs.Trace.memory_sink () in
        Obs.Trace.scoped outer (fun () ->
            Obs.Trace.emit "a" (fun () -> []);
            Obs.Trace.scoped inner (fun () -> Obs.Trace.emit "b" (fun () -> []));
            Obs.Trace.emit "c" (fun () -> []));
        Alcotest.(check int) "outer got a and c" 2 (List.length (outer_lines ()));
        Alcotest.(check int) "inner got b" 1 (List.length (inner_lines ()));
        Alcotest.(check bool) "uninstalled at exit" false (Obs.Trace.enabled ()));
    test "tracing does not perturb execution" (fun () ->
        let run traced =
          let body () =
            let e =
              engine ~hotness:3
                {|def work(n: Int): Int = { var i = 0; var s = 0; while (i < n) { s = s + i; i = i + 1 }; s }
                  def bench(): Int = work(20)
                  def main(): Unit = println(bench())|}
                (Some (incremental ())) "x"
            in
            for _ = 1 to 20 do
              ignore (Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ])
            done;
            (e.vm.cycles, e.vm.steps, Jit.Engine.installed_code_size e)
          in
          if traced then
            let sink, _ = Obs.Trace.memory_sink () in
            Obs.Trace.scoped sink body
          else body ()
        in
        let c1, s1, z1 = run false and c2, s2, z2 = run true in
        Alcotest.(check int) "cycles identical" c1 c2;
        Alcotest.(check int) "steps identical" s1 s2;
        Alcotest.(check int) "code size identical" z1 z2);
  ]

let summary_tests =
  [
    test "summary aggregates match the engine" (fun () ->
        let e, lines = traced_run () in
        match Obs.Summary.of_lines lines with
        | Error err -> Alcotest.failf "summary rejected the trace: %s" err
        | Ok s ->
            Alcotest.(check int) "event total" (List.length lines) s.Obs.Summary.total;
            Alcotest.(check int) "installs" (Jit.Engine.installed_methods e)
              (List.length s.Obs.Summary.installs);
            Alcotest.(check int) "installed size"
              (Jit.Engine.installed_code_size e)
              (Obs.Summary.installed_code_size s);
            Alcotest.(check bool) "inliner decisions seen" true
              (s.Obs.Summary.inline_yes + s.Obs.Summary.inline_no > 0);
            Alcotest.(check bool) "render is non-empty" true
              (String.length (Obs.Summary.render s) > 0));
    test "of_lines skips blanks and reports the bad line" (fun () ->
        let good = {|{"ev": "install", "cycles": 1, "meth": "f", "size": 3}|} in
        (match Obs.Summary.of_lines [ ""; good; "  " ] with
        | Ok s -> Alcotest.(check int) "one event" 1 s.Obs.Summary.total
        | Error e -> Alcotest.failf "rejected blanks: %s" e);
        match Obs.Summary.of_lines [ good; "{oops" ] with
        | Ok _ -> Alcotest.fail "accepted a malformed line"
        | Error e ->
            Alcotest.(check bool) "names the line" true
              (contains_substring ~needle:"line 2" e));
    test "unknown event kinds still count" (fun () ->
        match
          Obs.Summary.of_lines
            [ {|{"ev": "mystery", "cycles": 5}|}; {|{"ev": "mystery", "cycles": 6}|} ]
        with
        | Error e -> Alcotest.failf "rejected: %s" e
        | Ok s ->
            Alcotest.(check int) "total" 2 s.Obs.Summary.total;
            Alcotest.(check (option int)) "kind count" (Some 2)
              (List.assoc_opt "mystery" s.Obs.Summary.kinds);
            Alcotest.(check int) "last cycles" 6 s.Obs.Summary.last_cycles);
    test "ic_site events aggregate" (fun () ->
        match
          Obs.Summary.of_lines
            [
              {|{"ev": "ic_site", "cycles": 10, "m": 0, "meth": "f", "sidx": 2, "selector": "m", "ic_hit": 98, "ic_miss": 2, "ic_megamorphic": 0}|};
              {|{"ev": "ic_site", "cycles": 11, "m": 1, "meth": "g", "sidx": 0, "selector": "m", "ic_hit": 5, "ic_miss": 4, "ic_megamorphic": 7}|};
            ]
        with
        | Error e -> Alcotest.failf "rejected: %s" e
        | Ok s ->
            Alcotest.(check int) "sites" 2 s.Obs.Summary.ic_sites;
            Alcotest.(check int) "hits" 103 s.Obs.Summary.ic_hits;
            Alcotest.(check int) "misses" 6 s.Obs.Summary.ic_misses;
            Alcotest.(check int) "megamorphic" 7 s.Obs.Summary.ic_megamorphic;
            Alcotest.(check bool) "render reports the caches" true
              (contains_substring ~needle:"inline caches"
                 (Obs.Summary.render s)));
    test "harness emits ic_site events matching the run totals" (fun () ->
        let sink, lines = Obs.Trace.memory_sink () in
        let run =
          Obs.Trace.scoped sink (fun () ->
              let e =
                engine ~hotness:max_int
                  {|abstract class A { def m(x: Int): Int }
                    class A1() extends A { def m(x: Int): Int = x + 1 }
                    class A2() extends A { def m(x: Int): Int = x * 2 }
                    def pick(i: Int): A = {
                      var p: A = new A1();
                      if (i % 2 == 1) { p = new A2() };
                      p
                    }
                    def bench(): Int = {
                      var acc = 0;
                      var i = 0;
                      while (i < 20) { acc = acc + pick(i).m(i); i = i + 1; };
                      acc
                    }
                    def main(): Unit = println(bench())|}
                  None "ic-trace"
              in
              Jit.Harness.run_benchmark ~iters:5 e ~entry:"bench"
                ~label:"ic-trace")
        in
        Alcotest.(check bool) "run counted hits" true (run.Jit.Harness.ic_hits > 0);
        match Obs.Summary.of_lines (lines ()) with
        | Error e -> Alcotest.failf "summary rejected the trace: %s" e
        | Ok s ->
            Alcotest.(check int) "sites" run.Jit.Harness.ic_sites
              s.Obs.Summary.ic_sites;
            Alcotest.(check int) "hits" run.Jit.Harness.ic_hits s.Obs.Summary.ic_hits;
            Alcotest.(check int) "misses" run.Jit.Harness.ic_misses
              s.Obs.Summary.ic_misses;
            Alcotest.(check int) "megamorphic" run.Jit.Harness.ic_megamorphic
              s.Obs.Summary.ic_megamorphic);
    test "file round trip via with_file" (fun () ->
        let path = Filename.temp_file "selvm_trace" ".jsonl" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Obs.Trace.with_file path (fun () ->
                Obs.Trace.emit "install" (fun () ->
                    Support.Json.
                      [ ("m", Int 0); ("meth", String "f"); ("size", Int 4) ]);
                Obs.Trace.emit "invalidate" (fun () ->
                    Support.Json.
                      [ ("m", Int 0); ("meth", String "f"); ("misses", Int 9);
                        ("recompiles", Int 1) ]));
            match Obs.Summary.of_file path with
            | Error e -> Alcotest.failf "of_file: %s" e
            | Ok s ->
                Alcotest.(check int) "two events" 2 s.Obs.Summary.total;
                Alcotest.(check int) "one install" 1
                  (List.length s.Obs.Summary.installs);
                Alcotest.(check int) "one invalidation" 1
                  (List.length s.Obs.Summary.invalidations)));
    test "bailout and chaos events aggregate" (fun () ->
        let lines =
          [
            {|{"ev":"compile_bailout","cycles":10,"m":1,"meth":"f","reason":"boom","failures":1,"charged":200,"blacklisted":false}|};
            {|{"ev":"chaos","cycles":12,"fault":"compiler_crash","m":1,"meth":"f"}|};
            {|{"ev":"chaos","cycles":13,"fault":"compiler_crash","m":1,"meth":"f"}|};
            {|{"ev":"chaos","cycles":14,"fault":"invalidation_storm","m":2,"meth":"g"}|};
            {|{"ev":"compile_bailout","cycles":20,"m":1,"meth":"f","reason":"verify: bad","failures":2,"charged":200,"blacklisted":true}|};
          ]
        in
        match Obs.Summary.of_lines lines with
        | Error e -> Alcotest.failf "summary rejected: %s" e
        | Ok s ->
            Alcotest.(check int) "bailouts" 2 (List.length s.Obs.Summary.bailouts);
            Alcotest.(check (list string)) "blacklisted" [ "f" ]
              s.Obs.Summary.blacklisted;
            Alcotest.(check bool) "chaos faults counted" true
              (s.Obs.Summary.chaos_faults
              = [ ("compiler_crash", 2); ("invalidation_storm", 1) ]);
            let rendered = Obs.Summary.render s in
            Alcotest.(check bool) "render reports bailouts" true
              (Util.contains_substring ~needle:"compile bailouts" rendered);
            Alcotest.(check bool) "render reports the blacklist" true
              (Util.contains_substring ~needle:"blacklisted" rendered);
            Alcotest.(check bool) "render reports chaos faults" true
              (Util.contains_substring ~needle:"chaos faults injected" rendered));
    test "engine bailouts land in the trace end-to-end" (fun () ->
        let sink, lines = Obs.Trace.memory_sink () in
        Obs.Trace.scoped sink (fun () ->
            let crashing : Jit.Engine.compiler = fun _ _ _ -> failwith "boom" in
            let e =
              Util.engine ~hotness:3
                {|def f(x: Int): Int = x + 1
def main(): Unit = {
  var i = 0;
  while (i < 30) { println(f(i)); i = i + 1; }
}|}
                (Some crashing) "bailout-trace"
            in
            ignore (Jit.Engine.run_main e);
            match Obs.Summary.of_lines (lines ()) with
            | Error err -> Alcotest.failf "summary rejected the trace: %s" err
            | Ok s ->
                Alcotest.(check int) "trace sees every bailout"
                  (Jit.Engine.bailout_stats e).failed_attempts
                  (List.length s.Obs.Summary.bailouts);
                Alcotest.(check (list string)) "trace sees the blacklist" [ "f" ]
                  s.Obs.Summary.blacklisted));
  ]

let () =
  Alcotest.run "obs" [ ("trace", trace_tests); ("summary", summary_tests) ]
