(* Tests for the telemetry subsystem: the ambient trace sink, event
   emission from the engine/inliner/optimizer, trace determinism, and the
   [selvm events] summary aggregation. *)

open Util

(* Runs [hot_src] under the incremental JIT with a memory sink installed;
   returns the collected JSONL lines. *)
let traced_run ?(iters = 20) () =
  let sink, lines = Obs.Trace.memory_sink () in
  Obs.Trace.scoped sink (fun () ->
      let e =
        engine ~hotness:3
          {|def work(n: Int): Int = { var i = 0; var s = 0; while (i < n) { s = s + i; i = i + 1 }; s }
            def bench(): Int = work(20)
            def main(): Unit = println(bench())|}
          (Some (incremental ())) "traced"
      in
      for _ = 1 to iters do
        ignore (Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ])
      done;
      (e, lines ()))

let kind_of line =
  match Support.Json.of_string line with
  | Ok j -> Option.bind (Support.Json.member "ev" j) Support.Json.to_string_opt
  | Error _ -> None

let has_kind k lines = List.exists (fun l -> kind_of l = Some k) lines

let trace_tests =
  [
    test "disabled tracing emits nothing and costs nothing" (fun () ->
        Alcotest.(check bool) "not enabled" false (Obs.Trace.enabled ());
        (* the fields closure must never be forced without a sink *)
        Obs.Trace.emit "boom" (fun () -> Alcotest.fail "fields forced while disabled");
        let _, lines = traced_run () in
        Alcotest.(check bool) "sink collected events" true (lines <> []);
        (* after the scoped run the ambient sink is restored to nothing *)
        Alcotest.(check bool) "disabled again" false (Obs.Trace.enabled ()));
    test "every line is valid single-object JSON with ev and cycles" (fun () ->
        let _, lines = traced_run () in
        List.iter
          (fun line ->
            match Support.Json.of_string line with
            | Error e -> Alcotest.failf "bad JSONL line %S: %s" line e
            | Ok j ->
                Alcotest.(check bool) "has ev" true
                  (Support.Json.member "ev" j <> None);
                (match Option.bind (Support.Json.member "cycles" j)
                         Support.Json.to_int_opt with
                | Some c -> Alcotest.(check bool) "cycles >= 0" true (c >= 0)
                | None -> Alcotest.failf "no cycles in %S" line))
          lines);
    test "engine and compiler pipeline events all appear" (fun () ->
        let _, lines = traced_run () in
        List.iter
          (fun k ->
            Alcotest.(check bool) (k ^ " present") true (has_kind k lines))
          [
            "compile_start"; "compile_done"; "install";
            "inline_round"; "expand_decision"; "inline_decision"; "opt_round";
          ]);
    test "identical runs produce byte-identical traces" (fun () ->
        let _, a = traced_run () in
        let _, b = traced_run () in
        Alcotest.(check (list string)) "deterministic" a b);
    test "cycle stamps are monotonically non-decreasing" (fun () ->
        let _, lines = traced_run () in
        let cycles =
          List.filter_map
            (fun l ->
              match Support.Json.of_string l with
              | Ok j -> Option.bind (Support.Json.member "cycles" j)
                          Support.Json.to_int_opt
              | Error _ -> None)
            lines
        in
        let rec mono = function
          | a :: (b :: _ as rest) -> a <= b && mono rest
          | _ -> true
        in
        Alcotest.(check bool) "monotone" true (mono cycles));
    test "scoped nests and restores the previous sink" (fun () ->
        let outer, outer_lines = Obs.Trace.memory_sink () in
        let inner, inner_lines = Obs.Trace.memory_sink () in
        Obs.Trace.scoped outer (fun () ->
            Obs.Trace.emit "a" (fun () -> []);
            Obs.Trace.scoped inner (fun () -> Obs.Trace.emit "b" (fun () -> []));
            Obs.Trace.emit "c" (fun () -> []));
        Alcotest.(check int) "outer got a and c" 2 (List.length (outer_lines ()));
        Alcotest.(check int) "inner got b" 1 (List.length (inner_lines ()));
        Alcotest.(check bool) "uninstalled at exit" false (Obs.Trace.enabled ()));
    test "tracing does not perturb execution" (fun () ->
        let run traced =
          let body () =
            let e =
              engine ~hotness:3
                {|def work(n: Int): Int = { var i = 0; var s = 0; while (i < n) { s = s + i; i = i + 1 }; s }
                  def bench(): Int = work(20)
                  def main(): Unit = println(bench())|}
                (Some (incremental ())) "x"
            in
            for _ = 1 to 20 do
              ignore (Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ])
            done;
            (e.vm.cycles, e.vm.steps, Jit.Engine.installed_code_size e)
          in
          if traced then
            let sink, _ = Obs.Trace.memory_sink () in
            Obs.Trace.scoped sink body
          else body ()
        in
        let c1, s1, z1 = run false and c2, s2, z2 = run true in
        Alcotest.(check int) "cycles identical" c1 c2;
        Alcotest.(check int) "steps identical" s1 s2;
        Alcotest.(check int) "code size identical" z1 z2);
  ]

let summary_tests =
  [
    test "summary aggregates match the engine" (fun () ->
        let e, lines = traced_run () in
        match Obs.Summary.of_lines lines with
        | Error err -> Alcotest.failf "summary rejected the trace: %s" err
        | Ok s ->
            Alcotest.(check int) "event total" (List.length lines) s.Obs.Summary.total;
            Alcotest.(check int) "installs" (Jit.Engine.installed_methods e)
              (List.length s.Obs.Summary.installs);
            Alcotest.(check int) "installed size"
              (Jit.Engine.installed_code_size e)
              (Obs.Summary.installed_code_size s);
            Alcotest.(check bool) "inliner decisions seen" true
              (s.Obs.Summary.inline_yes + s.Obs.Summary.inline_no > 0);
            Alcotest.(check bool) "render is non-empty" true
              (String.length (Obs.Summary.render s) > 0));
    test "of_lines skips blanks and reports the bad line" (fun () ->
        let good = {|{"ev": "install", "cycles": 1, "meth": "f", "size": 3}|} in
        (match Obs.Summary.of_lines [ ""; good; "  " ] with
        | Ok s -> Alcotest.(check int) "one event" 1 s.Obs.Summary.total
        | Error e -> Alcotest.failf "rejected blanks: %s" e);
        match Obs.Summary.of_lines [ good; "{oops" ] with
        | Ok _ -> Alcotest.fail "accepted a malformed line"
        | Error e ->
            Alcotest.(check bool) "names the line" true
              (contains_substring ~needle:"line 2" e));
    test "unknown event kinds still count" (fun () ->
        match
          Obs.Summary.of_lines
            [ {|{"ev": "mystery", "cycles": 5}|}; {|{"ev": "mystery", "cycles": 6}|} ]
        with
        | Error e -> Alcotest.failf "rejected: %s" e
        | Ok s ->
            Alcotest.(check int) "total" 2 s.Obs.Summary.total;
            Alcotest.(check (option int)) "kind count" (Some 2)
              (List.assoc_opt "mystery" s.Obs.Summary.kinds);
            Alcotest.(check int) "last cycles" 6 s.Obs.Summary.last_cycles);
    test "ic_site events aggregate" (fun () ->
        match
          Obs.Summary.of_lines
            [
              {|{"ev": "ic_site", "cycles": 10, "m": 0, "meth": "f", "sidx": 2, "selector": "m", "ic_hit": 98, "ic_miss": 2, "ic_megamorphic": 0}|};
              {|{"ev": "ic_site", "cycles": 11, "m": 1, "meth": "g", "sidx": 0, "selector": "m", "ic_hit": 5, "ic_miss": 4, "ic_megamorphic": 7}|};
            ]
        with
        | Error e -> Alcotest.failf "rejected: %s" e
        | Ok s ->
            Alcotest.(check int) "sites" 2 s.Obs.Summary.ic_sites;
            Alcotest.(check int) "hits" 103 s.Obs.Summary.ic_hits;
            Alcotest.(check int) "misses" 6 s.Obs.Summary.ic_misses;
            Alcotest.(check int) "megamorphic" 7 s.Obs.Summary.ic_megamorphic;
            Alcotest.(check bool) "render reports the caches" true
              (contains_substring ~needle:"inline caches"
                 (Obs.Summary.render s)));
    test "harness emits ic_site events matching the run totals" (fun () ->
        let sink, lines = Obs.Trace.memory_sink () in
        let run =
          Obs.Trace.scoped sink (fun () ->
              let e =
                engine ~hotness:max_int
                  {|abstract class A { def m(x: Int): Int }
                    class A1() extends A { def m(x: Int): Int = x + 1 }
                    class A2() extends A { def m(x: Int): Int = x * 2 }
                    def pick(i: Int): A = {
                      var p: A = new A1();
                      if (i % 2 == 1) { p = new A2() };
                      p
                    }
                    def bench(): Int = {
                      var acc = 0;
                      var i = 0;
                      while (i < 20) { acc = acc + pick(i).m(i); i = i + 1; };
                      acc
                    }
                    def main(): Unit = println(bench())|}
                  None "ic-trace"
              in
              Jit.Harness.run_benchmark ~iters:5 e ~entry:"bench"
                ~label:"ic-trace")
        in
        Alcotest.(check bool) "run counted hits" true (run.Jit.Harness.ic_hits > 0);
        match Obs.Summary.of_lines (lines ()) with
        | Error e -> Alcotest.failf "summary rejected the trace: %s" e
        | Ok s ->
            Alcotest.(check int) "sites" run.Jit.Harness.ic_sites
              s.Obs.Summary.ic_sites;
            Alcotest.(check int) "hits" run.Jit.Harness.ic_hits s.Obs.Summary.ic_hits;
            Alcotest.(check int) "misses" run.Jit.Harness.ic_misses
              s.Obs.Summary.ic_misses;
            Alcotest.(check int) "megamorphic" run.Jit.Harness.ic_megamorphic
              s.Obs.Summary.ic_megamorphic);
    test "file round trip via with_file" (fun () ->
        let path = Filename.temp_file "selvm_trace" ".jsonl" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Obs.Trace.with_file path (fun () ->
                Obs.Trace.emit "install" (fun () ->
                    Support.Json.
                      [ ("m", Int 0); ("meth", String "f"); ("size", Int 4) ]);
                Obs.Trace.emit "invalidate" (fun () ->
                    Support.Json.
                      [ ("m", Int 0); ("meth", String "f"); ("misses", Int 9);
                        ("recompiles", Int 1) ]));
            match Obs.Summary.of_file path with
            | Error e -> Alcotest.failf "of_file: %s" e
            | Ok s ->
                Alcotest.(check int) "two events" 2 s.Obs.Summary.total;
                Alcotest.(check int) "one install" 1
                  (List.length s.Obs.Summary.installs);
                Alcotest.(check int) "one invalidation" 1
                  (List.length s.Obs.Summary.invalidations)));
    test "bailout and chaos events aggregate" (fun () ->
        let lines =
          [
            {|{"ev":"compile_bailout","cycles":10,"m":1,"meth":"f","reason":"boom","failures":1,"charged":200,"blacklisted":false}|};
            {|{"ev":"chaos","cycles":12,"fault":"compiler_crash","m":1,"meth":"f"}|};
            {|{"ev":"chaos","cycles":13,"fault":"compiler_crash","m":1,"meth":"f"}|};
            {|{"ev":"chaos","cycles":14,"fault":"invalidation_storm","m":2,"meth":"g"}|};
            {|{"ev":"compile_bailout","cycles":20,"m":1,"meth":"f","reason":"verify: bad","failures":2,"charged":200,"blacklisted":true}|};
          ]
        in
        match Obs.Summary.of_lines lines with
        | Error e -> Alcotest.failf "summary rejected: %s" e
        | Ok s ->
            Alcotest.(check int) "bailouts" 2 (List.length s.Obs.Summary.bailouts);
            Alcotest.(check (list string)) "blacklisted" [ "f" ]
              s.Obs.Summary.blacklisted;
            Alcotest.(check bool) "chaos faults counted" true
              (s.Obs.Summary.chaos_faults
              = [ ("compiler_crash", 2); ("invalidation_storm", 1) ]);
            let rendered = Obs.Summary.render s in
            Alcotest.(check bool) "render reports bailouts" true
              (Util.contains_substring ~needle:"compile bailouts" rendered);
            Alcotest.(check bool) "render reports the blacklist" true
              (Util.contains_substring ~needle:"blacklisted" rendered);
            Alcotest.(check bool) "render reports chaos faults" true
              (Util.contains_substring ~needle:"chaos faults injected" rendered));
    test "engine bailouts land in the trace end-to-end" (fun () ->
        let sink, lines = Obs.Trace.memory_sink () in
        Obs.Trace.scoped sink (fun () ->
            let crashing : Jit.Engine.compiler = fun _ _ _ -> failwith "boom" in
            let e =
              Util.engine ~hotness:3
                {|def f(x: Int): Int = x + 1
def main(): Unit = {
  var i = 0;
  while (i < 30) { println(f(i)); i = i + 1; }
}|}
                (Some crashing) "bailout-trace"
            in
            ignore (Jit.Engine.run_main e);
            match Obs.Summary.of_lines (lines ()) with
            | Error err -> Alcotest.failf "summary rejected the trace: %s" err
            | Ok s ->
                Alcotest.(check int) "trace sees every bailout"
                  (Jit.Engine.bailout_stats e).failed_attempts
                  (List.length s.Obs.Summary.bailouts);
                Alcotest.(check (list string)) "trace sees the blacklist" [ "f" ]
                  s.Obs.Summary.blacklisted));
  ]

(* ---------- per-run splitting and tolerant parsing ---------- *)

let multirun_tests =
  [
    test "parse_lines keeps good events and numbers the bad ones" (fun () ->
        let lines =
          [
            {|{"ev": "install", "cycles": 1, "meth": "f", "size": 3}|};
            "{oops";
            "";
            {|{"ev": "install", "cycles": 2, "meth": "g", "size": 4}|};
            "also not json";
          ]
        in
        let events, errors = Obs.Summary.parse_lines lines in
        Alcotest.(check (list int)) "event lines" [ 1; 4 ] (List.map fst events);
        Alcotest.(check (list int)) "error lines" [ 2; 5 ] (List.map fst errors));
    test "split_runs keys aggregates per run_start marker" (fun () ->
        let ev s = Result.get_ok (Support.Json.of_string s) in
        let events =
          List.map ev
            [
              {|{"ev": "install", "cycles": 1, "meth": "pre", "size": 1}|};
              {|{"ev": "run_start", "cycles": 2, "label": "first"}|};
              {|{"ev": "install", "cycles": 3, "meth": "a", "size": 2}|};
              {|{"ev": "install", "cycles": 4, "meth": "b", "size": 3}|};
              {|{"ev": "run_start", "cycles": 5, "label": "second"}|};
              {|{"ev": "install", "cycles": 6, "meth": "c", "size": 4}|};
            ]
        in
        match Obs.Summary.split_runs events with
        | [ (l0, s0); (l1, s1); (l2, s2) ] ->
            Alcotest.(check string) "preamble" "(preamble)" l0;
            Alcotest.(check int) "preamble installs" 1 (List.length s0.Obs.Summary.installs);
            Alcotest.(check string) "first label" "first" l1;
            Alcotest.(check int) "first installs" 2 (List.length s1.Obs.Summary.installs);
            Alcotest.(check string) "second label" "second" l2;
            Alcotest.(check int) "second installs" 1 (List.length s2.Obs.Summary.installs)
        | runs -> Alcotest.failf "expected 3 runs, got %d" (List.length runs));
    test "split_runs is empty for a markerless trace" (fun () ->
        let ev s = Result.get_ok (Support.Json.of_string s) in
        let events = [ ev {|{"ev": "install", "cycles": 1, "meth": "f", "size": 3}|} ] in
        Alcotest.(check int) "no runs" 0 (List.length (Obs.Summary.split_runs events)));
    test "the harness emits one run_start per benchmark run" (fun () ->
        let sink, lines = Obs.Trace.memory_sink () in
        Obs.Trace.scoped sink (fun () ->
            let e =
              engine ~hotness:3
                {|def bench(): Int = 7
                  def main(): Unit = println(bench())|}
                None "runs"
            in
            ignore (Jit.Harness.run_benchmark ~iters:2 e ~entry:"bench" ~label:"lbl"));
        let events, errors = Obs.Summary.parse_lines (lines ()) in
        Alcotest.(check int) "no parse errors" 0 (List.length errors);
        let markers =
          List.filter (fun (_, j) -> kind_of (Support.Json.to_string j) = Some "run_start")
            events
        in
        Alcotest.(check int) "one marker" 1 (List.length markers));
  ]

(* ---------- metrics registry ---------- *)

let metrics_tests =
  [
    test "recording is a no-op while disabled" (fun () ->
        Obs.Metrics.reset ();
        let c = Obs.Metrics.counter "test.noop_counter" in
        let h = Obs.Metrics.histogram "test.noop_hist" in
        Obs.Metrics.incr c;
        Obs.Metrics.observe h 42;
        let j = Obs.Metrics.to_json () in
        let counter_val =
          Option.bind (Support.Json.member "counters" j) (Support.Json.member "test.noop_counter")
        in
        Alcotest.(check (option int)) "counter untouched" (Some 0)
          (Option.bind counter_val Support.Json.to_int_opt));
    test "counters, gauges and histograms round-trip through to_json" (fun () ->
        Obs.Metrics.reset ();
        let c = Obs.Metrics.counter "test.c" in
        let g = Obs.Metrics.gauge "test.g" in
        let h = Obs.Metrics.histogram "test.h" in
        Obs.Metrics.scoped (fun () ->
            Obs.Metrics.incr c;
            Obs.Metrics.add c 4;
            Obs.Metrics.set g 17;
            List.iter (Obs.Metrics.observe h) [ 1; 2; 3; 100 ]);
        let j = Obs.Metrics.to_json () in
        let get section name =
          Option.bind (Support.Json.member section j) (Support.Json.member name)
        in
        Alcotest.(check (option int)) "counter" (Some 5)
          (Option.bind (get "counters" "test.c") Support.Json.to_int_opt);
        Alcotest.(check (option int)) "gauge" (Some 17)
          (Option.bind (get "gauges" "test.g") Support.Json.to_int_opt);
        let hist = get "histograms" "test.h" in
        let hfield k =
          Option.bind (Option.bind hist (Support.Json.member k)) Support.Json.to_int_opt
        in
        Alcotest.(check (option int)) "count" (Some 4) (hfield "count");
        Alcotest.(check (option int)) "sum" (Some 106) (hfield "sum");
        Alcotest.(check (option int)) "min" (Some 1) (hfield "min");
        Alcotest.(check (option int)) "max" (Some 100) (hfield "max");
        (* bucket populations must sum back to the count *)
        match Option.bind hist (Support.Json.member "buckets") with
        | Some (Support.Json.List buckets) ->
            let n =
              List.fold_left
                (fun acc b ->
                  acc
                  + Option.value ~default:0
                      (Option.bind (Support.Json.member "n" b) Support.Json.to_int_opt))
                0 buckets
            in
            Alcotest.(check int) "buckets sum to count" 4 n
        | _ -> Alcotest.fail "no buckets list");
    test "percentiles bracket the observations and p100 is the max" (fun () ->
        Obs.Metrics.reset ();
        let h = Obs.Metrics.histogram "test.pct" in
        Obs.Metrics.scoped (fun () ->
            for v = 1 to 1000 do
              Obs.Metrics.observe h v
            done);
        let p50 = Obs.Metrics.percentile h 0.5 in
        let p90 = Obs.Metrics.percentile h 0.9 in
        (* log2 buckets: the estimate is the bucket's upper bound *)
        Alcotest.(check bool) "p50 in range" true (p50 >= 500 && p50 <= 1023);
        Alcotest.(check bool) "p90 in range" true (p90 >= 900 && p90 <= 1023);
        Alcotest.(check bool) "monotone" true (p50 <= p90);
        Alcotest.(check int) "p100 is exact max" 1000 (Obs.Metrics.percentile h 1.0));
    test "registration is idempotent and kind-checked" (fun () ->
        Obs.Metrics.reset ();
        let a = Obs.Metrics.counter "test.same" in
        let b = Obs.Metrics.counter "test.same" in
        Obs.Metrics.scoped (fun () ->
            Obs.Metrics.incr a;
            Obs.Metrics.incr b);
        let j = Obs.Metrics.to_json () in
        Alcotest.(check (option int)) "same handle" (Some 2)
          (Option.bind
             (Option.bind (Support.Json.member "counters" j)
                (Support.Json.member "test.same"))
             Support.Json.to_int_opt);
        match Obs.Metrics.gauge "test.same" with
        | _ -> Alcotest.fail "kind mismatch accepted"
        | exception Invalid_argument _ -> ());
    test "a JIT run records compile metrics" (fun () ->
        Obs.Metrics.reset ();
        Obs.Metrics.scoped (fun () ->
            let e =
              engine ~hotness:3
                {|def work(n: Int): Int = n + 1
                  def bench(): Int = work(20)
                  def main(): Unit = println(bench())|}
                (Some (incremental ())) "metrics"
            in
            for _ = 1 to 20 do
              ignore (Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ])
            done;
            Jit.Engine.snapshot_metrics e);
        let j = Obs.Metrics.to_json () in
        let get section name =
          Option.bind
            (Option.bind (Support.Json.member section j) (Support.Json.member name))
            Support.Json.to_int_opt
        in
        Alcotest.(check bool) "compiles counted" true
          (Option.value ~default:0 (get "counters" "jit.compiles") > 0);
        Alcotest.(check bool) "installs counted" true
          (Option.value ~default:0 (get "counters" "jit.installs") > 0);
        Alcotest.(check bool) "code size gauge set" true
          (Option.value ~default:0 (get "gauges" "jit.code_size") > 0);
        let lat =
          Option.bind (Support.Json.member "histograms" j)
            (Support.Json.member "jit.compile_latency_cycles")
        in
        Alcotest.(check bool) "latency histogram populated" true
          (Option.value ~default:0
             (Option.bind (Option.bind lat (Support.Json.member "count"))
                Support.Json.to_int_opt)
          > 0));
    test "exports are deterministic across identical runs" (fun () ->
        let snap () =
          Obs.Metrics.reset ();
          Obs.Metrics.scoped (fun () ->
              let e =
                engine ~hotness:3
                  {|def work(n: Int): Int = n * 2
                    def bench(): Int = work(21)
                    def main(): Unit = println(bench())|}
                  (Some (incremental ())) "det"
              in
              for _ = 1 to 15 do
                ignore (Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ])
              done;
              Jit.Engine.snapshot_metrics e);
          Support.Json.to_string (Obs.Metrics.to_json ())
        in
        Alcotest.(check string) "byte-identical" (snap ()) (snap ()));
  ]

(* ---------- explain: inline-tree reconstruction ---------- *)

let explain_tests =
  [
    test "explain reconstructs the inline tree with the inliner's own terms"
      (fun () ->
        let e, lines = traced_run () in
        match Obs.Explain.of_lines lines with
        | Error err -> Alcotest.failf "explain rejected the trace: %s" err
        | Ok comps -> (
            let bench =
              List.filter (fun c -> c.Obs.Explain.c_meth = "bench") comps
            in
            Alcotest.(check bool) "bench compiled" true (bench <> []);
            let c = List.hd bench in
            Alcotest.(check bool) "outcome is compiled" true
              (contains_substring ~needle:"compiled" c.Obs.Explain.c_outcome);
            match
              List.find_opt
                (fun n -> n.Obs.Explain.x_target = "work")
                c.Obs.Explain.c_roots
            with
            | None -> Alcotest.fail "no callsite for work in bench's tree"
            | Some n ->
                let inl =
                  List.filter
                    (fun d -> d.Obs.Explain.d_phase = Obs.Explain.Inline)
                    n.Obs.Explain.x_decisions
                in
                Alcotest.(check bool) "inline decision recorded" true (inl <> []);
                let d = List.nth inl (List.length inl - 1) in
                Alcotest.(check string) "verdict" "inline" d.Obs.Explain.d_verdict;
                (* the tree's terms are exactly what the inliner emitted *)
                let raw =
                  List.filter_map
                    (fun l ->
                      match Support.Json.of_string l with
                      | Ok j
                        when Option.bind (Support.Json.member "ev" j)
                               Support.Json.to_string_opt
                             = Some "inline_decision"
                             && Option.bind (Support.Json.member "target" j)
                                  Support.Json.to_string_opt
                                = Some "work" -> Some j
                      | _ -> None)
                    lines
                in
                Alcotest.(check bool) "raw event exists" true (raw <> []);
                let rawd = List.nth raw (List.length raw - 1) in
                let num k =
                  match Support.Json.member k rawd with
                  | Some (Support.Json.Float f) -> f
                  | Some (Support.Json.Int i) -> float_of_int i
                  | _ -> nan
                in
                Alcotest.(check (float 1e-9)) "benefit" (num "benefit")
                  d.Obs.Explain.d_benefit;
                Alcotest.(check (float 1e-9)) "cost" (num "cost") d.Obs.Explain.d_cost;
                Alcotest.(check (float 1e-9)) "threshold" (num "threshold")
                  d.Obs.Explain.d_threshold;
                Alcotest.(check (float 1e-9)) "priority" (num "priority")
                  d.Obs.Explain.d_priority;
                (* and the decision really happened: the installed body of
                   bench has no calls left *)
                let m = Option.get (Ir.Program.find_meth e.vm.prog "bench") in
                let body = Hashtbl.find e.code_cache m in
                Alcotest.(check int) "work was truly inlined" 0 (count_calls body)));
    test "render and render_why are deterministic and name the terms" (fun () ->
        let _, lines = traced_run () in
        let _, lines2 = traced_run () in
        let render l =
          match Obs.Explain.of_lines l with
          | Ok comps -> Obs.Explain.render comps
          | Error e -> Alcotest.failf "explain: %s" e
        in
        let r = render lines in
        Alcotest.(check string) "byte-identical" r (render lines2);
        Alcotest.(check bool) "tree shows the callsite" true
          (contains_substring ~needle:"work" r);
        let why =
          match Obs.Explain.of_lines lines with
          | Ok comps -> Obs.Explain.render_why comps ~meth:"work" ~site:None
          | Error e -> Alcotest.failf "explain: %s" e
        in
        List.iter
          (fun needle ->
            Alcotest.(check bool) (needle ^ " in why") true
              (contains_substring ~needle why))
          [ "expand"; "inline"; "B="; "psi="; "thr=" ]);
    test "malformed lines fail of_lines with the line number" (fun () ->
        match Obs.Explain.of_lines [ {|{"ev": "compile_start", "cycles": 1}|}; "{bad" ] with
        | Ok _ -> Alcotest.fail "accepted a malformed line"
        | Error e ->
            Alcotest.(check bool) "names line 2" true
              (contains_substring ~needle:"line 2" e));
  ]

(* ---------- per-method cycle attribution ---------- *)

let attribution_tests =
  [
    test "self and total follow the stack discipline" (fun () ->
        let a = Runtime.Attribution.create () in
        Runtime.Attribution.enter a ~meth:0 ~tier:Runtime.Attribution.Interp ~now:0;
        Runtime.Attribution.enter a ~meth:1 ~tier:Runtime.Attribution.Jit ~now:10;
        Runtime.Attribution.leave a ~now:30;
        Runtime.Attribution.leave a ~now:50;
        match Runtime.Attribution.rows a with
        | [ r0; r1 ] ->
            (* hottest-first: meth 0 has self 30, meth 1 has self 20 *)
            Alcotest.(check int) "caller meth" 0 r0.Runtime.Attribution.r_meth;
            Alcotest.(check int) "caller self" 30 r0.Runtime.Attribution.r_self;
            Alcotest.(check int) "caller total" 50 r0.Runtime.Attribution.r_total;
            Alcotest.(check int) "callee self" 20 r1.Runtime.Attribution.r_self;
            Alcotest.(check int) "callee total" 20 r1.Runtime.Attribution.r_total;
            let _, _, jit = r1.Runtime.Attribution.r_self_by_tier in
            Alcotest.(check int) "callee self is jit-tier" 20 jit
        | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows));
    test "recursion counts total once per method" (fun () ->
        let a = Runtime.Attribution.create () in
        Runtime.Attribution.enter a ~meth:5 ~tier:Runtime.Attribution.Interp ~now:0;
        Runtime.Attribution.enter a ~meth:5 ~tier:Runtime.Attribution.Interp ~now:10;
        Runtime.Attribution.leave a ~now:20;
        Runtime.Attribution.leave a ~now:40;
        match Runtime.Attribution.rows a with
        | [ r ] ->
            Alcotest.(check int) "invocations" 2 r.Runtime.Attribution.r_invocations;
            Alcotest.(check int) "self covers both frames" 40
              r.Runtime.Attribution.r_self;
            Alcotest.(check int) "total not double-counted" 40
              r.Runtime.Attribution.r_total
        | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows));
    test "folded stacks spell the full path from the root" (fun () ->
        let a = Runtime.Attribution.create () in
        Runtime.Attribution.enter a ~meth:0 ~tier:Runtime.Attribution.Interp ~now:0;
        Runtime.Attribution.enter a ~meth:1 ~tier:Runtime.Attribution.Interp ~now:5;
        Runtime.Attribution.leave a ~now:15;
        Runtime.Attribution.enter a ~meth:2 ~tier:Runtime.Attribution.Interp ~now:20;
        Runtime.Attribution.leave a ~now:26;
        Runtime.Attribution.leave a ~now:30;
        let name = function 0 -> "main" | 1 -> "a" | 2 -> "b" | _ -> "?" in
        Alcotest.(check (list string)) "folded lines"
          [ "main 14"; "main;a 10"; "main;b 6" ]
          (Runtime.Attribution.folded a ~name));
    test "an attributed VM run matches the engine's clocks" (fun () ->
        let observe () =
          let e =
            engine ~hotness:3
              {|def work(n: Int): Int = { var i = 0; var s = 0; while (i < n) { s = s + i; i = i + 1 }; s }
                def bench(): Int = work(20)
                def main(): Unit = println(bench())|}
              (Some (incremental ())) "attr"
          in
          let a = Runtime.Interp.enable_attribution e.vm in
          for _ = 1 to 20 do
            ignore (Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ])
          done;
          (e, a)
        in
        let e, a = observe () in
        let rows = Runtime.Attribution.rows a in
        let self_sum =
          List.fold_left (fun acc r -> acc + r.Runtime.Attribution.r_self) 0 rows
        in
        let bench_row =
          List.find
            (fun (r : Runtime.Attribution.row) ->
              (Ir.Program.meth e.vm.prog r.r_meth).m_name = "bench")
            rows
        in
        (* every attributed cycle sits inside the entry frames *)
        Alcotest.(check int) "self cycles sum to bench's total" self_sum
          bench_row.Runtime.Attribution.r_total;
        Alcotest.(check bool) "bench ran in more than one tier" true
          (bench_row.Runtime.Attribution.r_invocations = 20);
        (* deterministic: a second identical run attributes identically *)
        let _, a2 = observe () in
        Alcotest.(check bool) "rows identical across runs" true
          (rows = Runtime.Attribution.rows a2));
    test "attribution does not perturb the simulated clocks" (fun () ->
        let run attributed =
          let e =
            engine ~hotness:3
              {|def work(n: Int): Int = n + 3
                def bench(): Int = work(20)
                def main(): Unit = println(bench())|}
              (Some (incremental ())) "attr-clock"
          in
          if attributed then ignore (Runtime.Interp.enable_attribution e.vm);
          for _ = 1 to 12 do
            ignore (Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ])
          done;
          (e.vm.cycles, e.vm.steps, Jit.Engine.installed_code_size e)
        in
        let c1, s1, z1 = run false and c2, s2, z2 = run true in
        Alcotest.(check int) "cycles identical" c1 c2;
        Alcotest.(check int) "steps identical" s1 s2;
        Alcotest.(check int) "code size identical" z1 z2);
  ]

(* ---------- golden trace-event schema ---------- *)

(* The trace is a public interface ([selvm events]/[explain], CI jq
   scripts, OBSERVABILITY.md): this pins every event kind's field names
   and JSON types so schema drift fails the suite loudly. *)

(* ---------- timeline ---------- *)

let timeline_tests =
  [
    test "rows carry ev/cycles/seq and round-trip through the reader" (fun () ->
        let tl, read = Obs.Timeline.memory ~interval:5 () in
        Alcotest.(check int) "interval" 5 (Obs.Timeline.interval tl);
        Obs.Timeline.sample tl ~source:"t#0" ~cycles:10
          [ ("steps", Support.Json.Int 3) ];
        Obs.Timeline.fleet tl ~cycles:12 [ ("tenants", Support.Json.Int 1) ];
        Alcotest.(check int) "two rows" 2 (Obs.Timeline.rows tl);
        match Obs.Timeline.rows_of_lines (read ()) with
        | Error e -> Alcotest.fail e
        | Ok [ a; b ] ->
            Alcotest.(check string) "sample kind" "timeline_sample"
              a.Obs.Timeline.r_kind;
            Alcotest.(check string) "source" "t#0" a.Obs.Timeline.r_source;
            Alcotest.(check int) "cycles" 10 a.Obs.Timeline.r_cycles;
            Alcotest.(check int) "seq 0" 0 a.Obs.Timeline.r_seq;
            Alcotest.(check (option int))
              "gauge field" (Some 3)
              (Obs.Timeline.field a "steps");
            Alcotest.(check bool) "metrics snapshot embedded" true
              (Support.Json.member "metrics" a.Obs.Timeline.r_fields <> None);
            Alcotest.(check string) "fleet kind" "timeline_fleet"
              b.Obs.Timeline.r_kind;
            Alcotest.(check string) "fleet rows have no tenant" ""
              b.Obs.Timeline.r_source;
            Alcotest.(check int) "seq 1" 1 b.Obs.Timeline.r_seq
        | Ok rs -> Alcotest.failf "expected 2 rows, got %d" (List.length rs));
    test "reader is strict: the first malformed line is the error" (fun () ->
        match
          Obs.Timeline.rows_of_lines
            [ {|{"ev": "timeline_sample", "cycles": 1, "seq": 0}|}; "{bad" ]
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted a malformed line");
    test "interval clamps to at least one cycle" (fun () ->
        let tl, _ = Obs.Timeline.memory ~interval:(-3) () in
        Alcotest.(check int) "clamped" 1 (Obs.Timeline.interval tl));
  ]

(* ---------- slo ---------- *)

let inv n = [ ("invalidations", Support.Json.Int n) ]

let slo_tests =
  [
    test "window-rate fires on growth past the limit, once per incident"
      (fun () ->
        let mon = Obs.Slo.monitor [ Obs.Slo.deopt_storm ~window:100 ~limit:5 () ] in
        let feed cycles n = Obs.Slo.feed mon ~source:"t" ~cycles (inv n) in
        Alcotest.(check int) "quiet at zero" 0 (List.length (feed 0 0));
        Alcotest.(check int) "slow growth stays quiet" 0
          (List.length (feed 50 4));
        (match feed 90 10 with
        | [ v ] ->
            Alcotest.(check string) "slo" "deopt-storm" v.Obs.Slo.v_slo;
            Alcotest.(check string) "source" "t" v.Obs.Slo.v_source;
            Alcotest.(check string) "field" "invalidations" v.Obs.Slo.v_field;
            Alcotest.(check int) "observed growth" 10 v.Obs.Slo.v_value;
            Alcotest.(check int) "limit" 5 v.Obs.Slo.v_limit;
            Alcotest.(check int) "window" 100 v.Obs.Slo.v_window
        | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs));
        (* the storm persists: edge-triggered, no second firing *)
        Alcotest.(check int) "no re-fire while active" 0
          (List.length (feed 120 16));
        (* the window slides past the storm: the detector re-arms... *)
        Alcotest.(check int) "clears once growth stops" 0
          (List.length (feed 400 16));
        (* ...and a second storm is a second incident *)
        Alcotest.(check int) "re-fires after clearing" 1
          (List.length (feed 450 30));
        Alcotest.(check int) "two incidents recorded" 2
          (List.length (Obs.Slo.violations mon)));
    test "level detector fires above the limit and re-arms below it" (fun () ->
        let mon = Obs.Slo.monitor [ Obs.Slo.cache_thrash ~limit:2 () ] in
        let feed cycles n =
          Obs.Slo.feed mon ~source:"t" ~cycles
            [ ("evict_max", Support.Json.Int n) ]
        in
        Alcotest.(check int) "fires" 1 (List.length (feed 10 3));
        Alcotest.(check int) "holds" 0 (List.length (feed 20 4));
        Alcotest.(check int) "clears" 0 (List.length (feed 30 2));
        match feed 40 5 with
        | [ v ] ->
            Alcotest.(check int) "level reported" 5 v.Obs.Slo.v_value;
            Alcotest.(check int) "window 0 on level" 0 v.Obs.Slo.v_window
        | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs));
    test "detector state is per source: one tenant's storm is invisible to \
          another"
      (fun () ->
        let mon = Obs.Slo.monitor [ Obs.Slo.deopt_storm ~window:100 ~limit:2 () ] in
        ignore (Obs.Slo.feed mon ~source:"a" ~cycles:0 (inv 0));
        Alcotest.(check int) "a fires" 1
          (List.length (Obs.Slo.feed mon ~source:"a" ~cycles:50 (inv 10)));
        Alcotest.(check int) "b unaffected" 0
          (List.length (Obs.Slo.feed mon ~source:"b" ~cycles:60 (inv 1)));
        match Obs.Slo.violations mon with
        | [ v ] -> Alcotest.(check string) "attributed to a" "a" v.Obs.Slo.v_source
        | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs));
    test "missing fields are skipped, not zeroes" (fun () ->
        let mon = Obs.Slo.monitor [ Obs.Slo.cache_thrash ~limit:0 () ] in
        Alcotest.(check int) "no field, no firing" 0
          (List.length (Obs.Slo.feed mon ~source:"t" ~cycles:10 (inv 5))));
    test "offline check replays a timeline stream and ignores fleet rows"
      (fun () ->
        let tl, read = Obs.Timeline.memory ~interval:1 () in
        Obs.Timeline.sample tl ~source:"t#0" ~cycles:0 (inv 0);
        Obs.Timeline.fleet tl ~cycles:5 (inv 1000);
        Obs.Timeline.sample tl ~source:"t#0" ~cycles:10 (inv 9);
        let specs = [ Obs.Slo.deopt_storm ~window:100 ~limit:5 () ] in
        match Obs.Slo.check_lines ~specs (read ()) with
        | Error e -> Alcotest.fail e
        | Ok [ v ] ->
            Alcotest.(check string) "tenant" "t#0" v.Obs.Slo.v_source;
            Alcotest.(check int) "cycles" 10 v.Obs.Slo.v_cycles;
            Alcotest.(check bool) "render is one line" true
              (String.split_on_char '\n' (Obs.Slo.render [ v ]) |> List.length
              = 2)
        | Ok vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs));
    test "violation_fields carries the slo_violation event schema" (fun () ->
        let v =
          {
            Obs.Slo.v_slo = "deopt-storm"; v_source = "t#0"; v_cycles = 7;
            v_field = "invalidations"; v_value = 9; v_limit = 5; v_window = 100;
          }
        in
        Alcotest.(check (list string))
          "field names"
          [ "slo"; "tenant"; "field"; "value"; "limit"; "window" ]
          (List.map fst (Obs.Slo.violation_fields v)));
    test "find_spec resolves the default monitors by name" (fun () ->
        List.iter
          (fun n ->
            match Obs.Slo.find_spec n with
            | Some s -> Alcotest.(check string) n n s.Obs.Slo.sp_name
            | None -> Alcotest.failf "no spec %s" n)
          [ "deopt-storm"; "queue-saturation"; "cache-thrash" ];
        Alcotest.(check bool) "unknown name" true
          (Obs.Slo.find_spec "nope" = None));
  ]

(* ---------- diff ---------- *)

(* A small two-level call graph traced under the incremental inliner;
   [params] perturbs the trial thresholds to manufacture decision drift. *)
let drift_trace ?(params = Inliner.Params.default) () : string list =
  let sink, lines = Obs.Trace.memory_sink () in
  Obs.Trace.scoped sink (fun () ->
      let e =
        engine ~hotness:3
          {|def leaf(x: Int): Int = x + 1
            def work(n: Int): Int = { var i = 0; var s = 0; while (i < n) { s = s + leaf(i); i = i + 1 }; s }
            def bench(): Int = work(20)
            def main(): Unit = println(bench())|}
          (Some (incremental ~params ())) "drift"
      in
      for _ = 1 to 20 do
        ignore (Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ])
      done);
  lines ()

let comps_of lines =
  match Obs.Explain.of_lines lines with
  | Ok cs -> cs
  | Error e -> Alcotest.failf "bad trace: %s" e

let diff_tests =
  [
    test "diff_json: identical documents diff to nothing" (fun () ->
        let j =
          Support.Json.(Obj [ ("x", Int 1); ("l", List [ Int 1; Int 2 ]) ])
        in
        Alcotest.(check int) "no deltas" 0 (List.length (Obs.Diff.diff_json j j)));
    test "diff_json: scalar, absent and nested deltas with dotted paths"
      (fun () ->
        let a =
          Support.Json.(
            Obj [ ("nest", Obj [ ("y", Int 2) ]); ("only_a", Int 3); ("x", Int 1) ])
        in
        let b = Support.Json.(Obj [ ("nest", Obj [ ("y", Int 5) ]); ("x", Int 9) ]) in
        let ds = Obs.Diff.diff_json a b in
        Alcotest.(check (list string))
          "paths in sorted key order"
          [ "nest.y"; "only_a"; "x" ]
          (List.map (fun (d : Obs.Diff.delta) -> d.dl_path) ds);
        let abs = List.nth ds 1 in
        Alcotest.(check string) "absent marker" "(absent)" abs.Obs.Diff.dl_b);
    test "diff_json: list length and per-index deltas" (fun () ->
        let a = Support.Json.(List [ Int 1; Int 2 ]) in
        let b = Support.Json.(List [ Int 1; Int 7; Int 8 ]) in
        Alcotest.(check (list string))
          "length then indexes" [ "length"; "1" ]
          (List.map (fun (d : Obs.Diff.delta) -> d.dl_path) (Obs.Diff.diff_json a b)));
    test "diff_lines: per-line deltas plus a tail-length delta" (fun () ->
        let ds = Obs.Diff.diff_lines [ "a"; "b" ] [ "a"; "c"; "d" ] in
        Alcotest.(check (list string))
          "paths" [ "line 2"; "length" ]
          (List.map (fun (d : Obs.Diff.delta) -> d.dl_path) ds);
        Alcotest.(check int) "identical streams diff to nothing" 0
          (List.length (Obs.Diff.diff_lines [ "a"; "b" ] [ "a"; "b" ])));
    test "diff_decisions: same build, same seed — zero drift" (fun () ->
        let a = comps_of (drift_trace ()) in
        let b = comps_of (drift_trace ()) in
        Alcotest.(check int) "no drift" 0
          (List.length (Obs.Diff.diff_decisions a b)));
    test "diff_decisions: a perturbed threshold surfaces as per-callsite \
          deltas, not an opaque mismatch"
      (fun () ->
        let a = comps_of (drift_trace ()) in
        let b =
          comps_of
            (drift_trace
               ~params:(Inliner.Params.with_fixed ~te:300 ~ti:600
                          Inliner.Params.default)
               ())
        in
        let ds = Obs.Diff.diff_decisions a b in
        Alcotest.(check bool) "non-empty drift report" true (ds <> []);
        Alcotest.(check bool) "threshold deltas attributed to callsites" true
          (List.exists
             (fun (d : Obs.Diff.drift) ->
               d.df_node <> ""
               && (d.df_kind = "expand-threshold" || d.df_kind = "inline-threshold"))
             ds);
        (* every drift is anchored to a stable compilation identity *)
        List.iter
          (fun (d : Obs.Diff.drift) ->
            Alcotest.(check bool) "has compilation" true (d.df_comp <> ""))
          ds);
  ]

let json_type_name : Support.Json.t -> string = function
  | Support.Json.Null -> "null"
  | Support.Json.Bool _ -> "bool"
  | Support.Json.Int _ -> "int"
  | Support.Json.Float _ -> "float"
  | Support.Json.String _ -> "string"
  | Support.Json.List _ -> "list"
  | Support.Json.Obj _ -> "obj"

(* One schema line per event kind: "kind field:type field:type ..." with
   fields sorted; the types of a field are unioned across instances. *)
let schema_of_lines (lines : string list) : string list =
  let kinds : (string, (string, string list) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun line ->
      match Support.Json.of_string line with
      | Error e -> Alcotest.failf "schema scan: bad line %S: %s" line e
      | Ok (Support.Json.Obj fields as j) ->
          let kind =
            match Option.bind (Support.Json.member "ev" j) Support.Json.to_string_opt with
            | Some k -> k
            | None -> Alcotest.failf "event without ev: %S" line
          in
          let table =
            match Hashtbl.find_opt kinds kind with
            | Some t -> t
            | None ->
                let t = Hashtbl.create 8 in
                Hashtbl.replace kinds kind t;
                t
          in
          List.iter
            (fun (name, v) ->
              let ty = json_type_name v in
              let seen = Option.value ~default:[] (Hashtbl.find_opt table name) in
              if not (List.mem ty seen) then Hashtbl.replace table name (seen @ [ ty ]))
            fields
      | Ok _ -> Alcotest.failf "non-object event line: %S" line)
    lines;
  Hashtbl.fold
    (fun kind table acc ->
      let fields =
        Hashtbl.fold (fun name tys acc -> (name, tys) :: acc) table []
        |> List.sort compare
        |> List.map (fun (name, tys) ->
               Printf.sprintf "%s:%s" name (String.concat "|" (List.sort compare tys)))
      in
      Printf.sprintf "%s %s" kind (String.concat " " fields) :: acc)
    kinds []
  |> List.sort compare

(* Deterministically produces every event kind the tracer knows: a JIT'd
   harness run with virtual dispatch (run_start, ic_site, compile_start,
   compile_done, install, inline_round, expand_decision, inline_decision,
   opt_round), an async engine (pending_install), a phase-shifted
   speculation (invalidate), a crashing compiler (compile_bailout), a
   chaos-injected run (chaos), a long loop that OSR-enters compiled
   code and then traps (osr_enter, osr_exit), and a starved serve fleet
   with a timeline and zero-limit SLO monitors (serve_*, shed, evict,
   slo_violation, plus the timeline_sample / timeline_fleet rows that
   share the event shape). *)
let all_kind_lines () : string list =
  let collect f =
    let sink, lines = Obs.Trace.memory_sink () in
    Obs.Trace.scoped sink f;
    lines ()
  in
  let harness =
    collect (fun () ->
        let e =
          engine ~hotness:3
            {|abstract class A { def m(x: Int): Int }
              class A1() extends A { def m(x: Int): Int = x + 1 }
              class A2() extends A { def m(x: Int): Int = x * 2 }
              def pick(i: Int): A = {
                var p: A = new A1();
                if (i % 2 == 1) { p = new A2() };
                p
              }
              def work(n: Int): Int = { var i = 0; var s = 0; while (i < n) { s = s + pick(i).m(i); i = i + 1 }; s }
              def bench(): Int = work(20)
              def main(): Unit = println(bench())|}
            (Some (incremental ())) "schema"
        in
        ignore (Jit.Harness.run_benchmark ~iters:20 e ~entry:"bench" ~label:"schema"))
  in
  let async =
    collect (fun () ->
        let prog =
          compile
            {|def work(n: Int): Int = n + 1
              def bench(): Int = work(20)
              def main(): Unit = println(bench())|}
        in
        let e =
          Jit.Engine.create ~async_compile:true prog
            { name = "schema-async"; compiler = Some (incremental ());
              hotness_threshold = 3; compile_cost_per_node = 50; verify = false }
        in
        for _ = 1 to 10 do
          ignore (Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ])
        done)
  in
  let invalidation =
    collect (fun () ->
        let prog =
          compile
            {|abstract class A { def m(): Int }
              class B() extends A { def m(): Int = 1 }
              class C() extends A { def m(): Int = 2 }
              def call(a: A): Int = a.m() + a.m() + a.m()
              def main(): Unit = println(call(new B()) + call(new C()))|}
        in
        let e =
          Jit.Engine.create ~spec_miss_threshold:50 prog
            { name = "schema-spec"; compiler = Some (incremental ());
              hotness_threshold = 4; compile_cost_per_node = 50; verify = true }
        in
        let mk name =
          let cls =
            let r = ref (-1) in
            Ir.Program.iter_classes
              (fun (c : Ir.Types.cls) -> if c.c_name = name then r := c.c_id)
              prog;
            !r
          in
          Runtime.Values.alloc_obj prog cls
        in
        let drive recv n =
          for _ = 1 to n do
            ignore (Jit.Engine.run_meth e "call" [ Runtime.Values.Vunit; recv ])
          done
        in
        drive (mk "B") 30;
        drive (mk "C") 60)
  in
  let bailouts =
    collect (fun () ->
        let crashing : Jit.Engine.compiler = fun _ _ _ -> failwith "boom" in
        let e =
          engine ~hotness:3
            {|def f(x: Int): Int = x + 1
              def main(): Unit = { var i = 0; while (i < 30) { println(f(i)); i = i + 1; } }|}
            (Some crashing) "schema-bailout"
        in
        ignore (Jit.Engine.run_main e))
  in
  let chaos =
    collect (fun () ->
        Support.Chaos.scoped ~seed:7 ~rate:1.0 (fun () ->
            let e =
              engine ~hotness:3 ~verify:false
                {|def f(x: Int): Int = x + 1
                  def main(): Unit = { var i = 0; while (i < 30) { println(f(i)); i = i + 1; } }|}
                (Some (incremental ())) "schema-chaos"
            in
            ignore (Jit.Engine.run_main e)))
  in
  let osr =
    collect (fun () ->
        let e =
          engine ~hotness:3
            {|def bench(n: Int): Int = {
                var acc = 0;
                var i = 0 - 300;
                while (i < n) { acc = acc + 1000 / i; i = i + 1 };
                acc
              }
              def main(): Unit = println(bench(400))|}
            (Some (incremental ())) "schema-osr"
        in
        (* the loop OSR-enters compiled code around i = -108 (backedge
           count 192 = hotness * 64) and traps at i = 0: osr_enter, then
           osr_exit with reason "trap" *)
        try ignore (Jit.Engine.run_main e)
        with Runtime.Values.Trap _ -> ())
  in
  let timeline_lines = ref [] in
  let serve =
    collect (fun () ->
        (* two tenants under a one-slot queue and a one-node cache: the
           first hot method dequeues and compiles (serve_enqueue,
           serve_dequeue), later ones are shed against the full queue
           (shed), and every install immediately overflows the cache
           (evict); the driver brackets it all with serve_start /
           serve_slice / serve_tenant_done *)
        let src =
          {|def a(n: Int): Int = { var i = 0; var s = 0; while (i < n) { s = s + i; i = i + 1 }; s }
            def b(n: Int): Int = { var i = 0; var s = 1; while (i < n) { s = s + i * i; i = i + 1 }; s }
            def c(n: Int): Int = a(n) + b(n)
            def bench(): Int = a(12) + b(12) + c(12)
            def main(): Unit = println(bench())|}
        in
        let tn id =
          {
            Jit.Serve.tn_id = id;
            tn_make =
              (fun () ->
                ( compile src,
                  {
                    Jit.Engine.name = "schema-serve";
                    compiler = Some (incremental ());
                    hotness_threshold = 3;
                    compile_cost_per_node = 50;
                    verify = false;
                  } ));
            tn_iters = 30;
          }
        in
        let limits =
          {
            Jit.Serve.queue_capacity = Some 1;
            queue_age_unit = 64;
            cache_capacity = Some 1;
            compile_deadline = None;
            chaos_rate = 0.0;
            chaos_seed = 0;
          }
        in
        (* a one-cycle timeline plus zero-limit SLO monitors: every shed
           and eviction trips a detector, so the slo_violation trace
           event is exercised, and the timeline rows — which share the
           trace-event shape — are pinned in the same golden schema *)
        let tl, read = Obs.Timeline.memory ~interval:1 () in
        let mon =
          Obs.Slo.monitor
            [
              Obs.Slo.deopt_storm ~limit:0 ();
              Obs.Slo.queue_saturation ~limit:0 ();
              Obs.Slo.cache_thrash ~limit:0 ();
            ]
        in
        ignore
          (Jit.Serve.run ~limits ~timeline:tl ~slo:mon [ tn "t#0"; tn "t#1" ]);
        if Obs.Slo.violations mon = [] then
          Alcotest.fail "schema serve run fired no SLO violations";
        timeline_lines := read ())
  in
  harness @ async @ invalidation @ bailouts @ chaos @ osr @ serve
  @ !timeline_lines

let schema_tests =
  [
    test "trace event schema matches the golden file" (fun () ->
        let actual = schema_of_lines (all_kind_lines ()) in
        let golden_path = "golden/trace_schema.golden" in
        let golden =
          match open_in golden_path with
          | ic ->
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () ->
                  let lines = ref [] in
                  (try
                     while true do
                       lines := input_line ic :: !lines
                     done
                   with End_of_file -> ());
                  List.rev !lines)
          | exception Sys_error _ ->
              Alcotest.failf
                "missing %s — expected schema:\n%s" golden_path
                (String.concat "\n" actual)
        in
        if actual <> golden then
          Alcotest.failf
            "trace schema drifted from %s.\n\n--- expected ---\n%s\n\n--- actual \
             ---\n%s\n\nIf the change is intentional, update the golden file and \
             document it in docs/OBSERVABILITY.md."
            golden_path
            (String.concat "\n" golden)
            (String.concat "\n" actual));
  ]

let () =
  Alcotest.run "obs"
    [
      ("trace", trace_tests);
      ("summary", summary_tests);
      ("multirun", multirun_tests);
      ("metrics", metrics_tests);
      ("explain", explain_tests);
      ("attribution", attribution_tests);
      ("timeline", timeline_tests);
      ("slo", slo_tests);
      ("diff", diff_tests);
      ("schema", schema_tests);
    ]
