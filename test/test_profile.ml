(* Tests for profile collection: invocation counts, block counts, branch
   probabilities and receiver histograms — the inputs of the inliner. *)

open Util

let profiled src =
  let prog = compile src in
  Opt.Driver.prepare_program prog;
  let vm = Runtime.Interp.create prog in
  ignore (Runtime.Interp.run_main vm);
  (prog, vm)

let meth prog name = Option.get (Ir.Program.find_meth prog name)

let tests =
  [
    test "invocation counts" (fun () ->
        let prog, vm =
          profiled
            {|def g(): Int = 1
              def main(): Unit = { var i = 0; while (i < 10) { println(g()); i = i + 1 } }|}
        in
        Alcotest.(check int) "g invoked 10x" 10
          (Runtime.Profile.invocation_count vm.profiles (meth prog "g"));
        Alcotest.(check int) "main invoked once" 1
          (Runtime.Profile.invocation_count vm.profiles (meth prog "main")));
    test "block counts reflect loop trips" (fun () ->
        let prog, vm =
          profiled
            {|def f(): Int = { var i = 0; var s = 0; while (i < 25) { s = s + i; i = i + 1 }; s }
              def main(): Unit = println(f())|}
        in
        let f = meth prog "f" in
        let fn = body_of prog "f" in
        let entry_count = Runtime.Profile.block_count vm.profiles f fn.entry in
        Alcotest.(check int) "entry once" 1 entry_count;
        let max_count =
          Ir.Fn.fold_blocks
            (fun acc blk -> max acc (Runtime.Profile.block_count vm.profiles f blk.b_id))
            0 fn
        in
        Alcotest.(check bool) "loop block ran 25x" true (max_count >= 25));
    test "branch probabilities" (fun () ->
        let prog, vm =
          profiled
            {|def f(x: Int): Int = if (x % 4 == 0) { 1 } else { 0 }
              def main(): Unit = {
                var i = 0;
                var s = 0;
                while (i < 100) { s = s + f(i); i = i + 1 }
                println(s)
              }|}
        in
        let f = meth prog "f" in
        let fn = body_of prog "f" in
        let probs = ref [] in
        Ir.Fn.iter_blocks
          (fun blk ->
            match blk.term with
            | Ir.Types.If { site; _ } when site.sm = f -> (
                match Runtime.Profile.branch_prob vm.profiles site with
                | Some p -> probs := p :: !probs
                | None -> ())
            | _ -> ())
          fn;
        match !probs with
        | [ p ] ->
            Alcotest.(check bool) "~25% taken" true (p > 0.2 && p < 0.3)
        | ps -> Alcotest.failf "expected 1 profiled branch, got %d" (List.length ps));
    test "receiver histogram orders by frequency" (fun () ->
        let prog, vm =
          profiled
            {|abstract class A { def m(): Int }
              class B() extends A { def m(): Int = 1 }
              class C() extends A { def m(): Int = 2 }
              def call(a: A): Int = a.m()
              def main(): Unit = {
                val b = new B();
                val c = new C();
                var i = 0;
                var s = 0;
                while (i < 10) {
                  s = s + call(b);
                  if (i % 5 == 0) { s = s + call(c) };
                  i = i + 1;
                }
                println(s)
              }|}
        in
        let call = meth prog "call" in
        let fn = body_of prog "call" in
        let site =
          match Ir.Fn.calls fn with
          | [ { kind = Ir.Types.Call { site; _ }; _ } ] -> site
          | _ -> Alcotest.fail "one call expected"
        in
        ignore call;
        match Runtime.Profile.receiver_profile vm.profiles site with
        | (c1, p1) :: (c2, p2) :: [] ->
            Alcotest.(check string) "most frequent first" "B"
              (Ir.Program.cls prog c1).c_name;
            Alcotest.(check string) "second" "C" (Ir.Program.cls prog c2).c_name;
            Alcotest.(check bool) "ordered" true (p1 > p2);
            Alcotest.(check (float 1e-9)) "sums to 1" 1.0 (p1 +. p2)
        | l -> Alcotest.failf "expected 2 receivers, got %d" (List.length l));
    test "branch prob is None for never-executed sites" (fun () ->
        let prog, vm =
          profiled
            {|def f(x: Int): Int = if (x > 0) { 1 } else { 0 }
              def main(): Unit = println(0)|}
        in
        let f = meth prog "f" in
        let fn = body_of prog "f" in
        Ir.Fn.iter_blocks
          (fun blk ->
            match blk.term with
            | Ir.Types.If { site; _ } ->
                Alcotest.(check (option (float 0.))) "none" None
                  (Runtime.Profile.branch_prob vm.profiles site)
            | _ -> ())
          fn;
        ignore f);
    test "clear resets everything" (fun () ->
        let prog, vm = profiled "def g(): Int = 1\ndef main(): Unit = println(g())" in
        Runtime.Profile.clear vm.profiles;
        Alcotest.(check int) "zero" 0
          (Runtime.Profile.invocation_count vm.profiles (meth prog "g")));
    test "text round trip preserves every query" (fun () ->
        let prog, vm =
          profiled
            {|abstract class A { def m(): Int }
              class B() extends A { def m(): Int = 1 }
              class C() extends A { def m(): Int = 2 }
              def call(a: A): Int = a.m()
              def f(x: Int): Int = if (x % 3 == 0) { call(new B()) } else { call(new C()) }
              def main(): Unit = {
                var i = 0;
                var s = 0;
                while (i < 30) { s = s + f(i); i = i + 1 }
                println(s)
              }|}
        in
        let text = Runtime.Profile.to_text vm.profiles in
        let reloaded = Runtime.Profile.of_text text in
        (* identical text after a second round trip *)
        Alcotest.(check string) "idempotent" text (Runtime.Profile.to_text reloaded);
        (* spot-check the queries the inliner uses *)
        Ir.Program.iter_meths
          (fun (m : Ir.Types.meth) ->
            Alcotest.(check int) ("invocations " ^ m.m_name)
              (Runtime.Profile.invocation_count vm.profiles m.m_id)
              (Runtime.Profile.invocation_count reloaded m.m_id))
          prog;
        let call_m = meth prog "call" in
        let fn = body_of prog "call" in
        List.iter
          (fun (c : Ir.Types.instr) ->
            match c.kind with
            | Ir.Types.Call { site; _ } ->
                Alcotest.(check (list (pair int (float 1e-9))))
                  "receiver histogram"
                  (Runtime.Profile.receiver_profile vm.profiles site)
                  (Runtime.Profile.receiver_profile reloaded site)
            | _ -> ())
          (Ir.Fn.calls fn);
        ignore call_m);
    test "loading malformed text raises Bad_profile" (fun () ->
        List.iter
          (fun bad ->
            match Runtime.Profile.of_text bad with
            | _ -> Alcotest.failf "accepted %S" bad
            | exception Runtime.Profile.Bad_profile _ -> ())
          [ "x 1 2"; "i one 2"; "b 1"; "r 1 2 3" ]);
    test "duplicate records accumulate (merge semantics)" (fun () ->
        (* the concatenation of two dumps must load as their sum, not as
           whichever record came last *)
        let _, vm =
          profiled
            {|abstract class A { def m(): Int }
              class B() extends A { def m(): Int = 1 }
              class C() extends A { def m(): Int = 2 }
              def call(a: A): Int = a.m()
              def f(x: Int): Int = if (x % 3 == 0) { call(new B()) } else { call(new C()) }
              def main(): Unit = {
                var i = 0;
                var s = 0;
                while (i < 30) { s = s + f(i); i = i + 1 }
                println(s)
              }|}
        in
        let text = Runtime.Profile.to_text vm.profiles in
        let once = Runtime.Profile.of_text text in
        let twice = Runtime.Profile.of_text (text ^ text) in
        (* every line doubled: reserialize and compare against doubling the
           counts of the single load. The sorted text format makes the
           comparison exhaustive over all four record kinds. *)
        let doubled_lines =
          String.split_on_char '\n' (Runtime.Profile.to_text once)
          |> List.filter (fun l -> String.trim l <> "")
          |> List.map (fun l ->
                 match String.split_on_char ' ' l with
                 | [ "i"; m; n ] ->
                     Printf.sprintf "i %s %d" m (2 * int_of_string n)
                 | [ "b"; m; b; n ] ->
                     Printf.sprintf "b %s %s %d" m b (2 * int_of_string n)
                 | [ "r"; m; s; c; n ] ->
                     Printf.sprintf "r %s %s %s %d" m s c (2 * int_of_string n)
                 | [ "c"; m; s; tk; ntk ] ->
                     Printf.sprintf "c %s %s %d %d" m s
                       (2 * int_of_string tk)
                       (2 * int_of_string ntk)
                 | _ -> Alcotest.failf "unexpected record %S" l)
          |> List.sort compare
        in
        let expected = String.concat "\n" doubled_lines ^ "\n" in
        Alcotest.(check string) "concatenated dump sums every count" expected
          (Runtime.Profile.to_text twice));
    test "merged profiles preserve derived queries" (fun () ->
        let prog, vm =
          profiled
            {|def f(x: Int): Int = if (x % 4 == 0) { 1 } else { 0 }
              def main(): Unit = {
                var i = 0;
                var s = 0;
                while (i < 100) { s = s + f(i); i = i + 1 }
                println(s)
              }|}
        in
        let text = Runtime.Profile.to_text vm.profiles in
        let merged = Runtime.Profile.of_text (text ^ "\n" ^ text) in
        let f = meth prog "f" in
        (* absolute counts double... *)
        Alcotest.(check int) "invocations doubled"
          (2 * Runtime.Profile.invocation_count vm.profiles f)
          (Runtime.Profile.invocation_count merged f);
        (* ...while ratios (branch probability) are unchanged *)
        let fn = body_of prog "f" in
        Ir.Fn.iter_blocks
          (fun blk ->
            match blk.term with
            | Ir.Types.If { site; _ } when site.sm = f ->
                Alcotest.(check (option (float 1e-9)))
                  "branch prob invariant under merge"
                  (Runtime.Profile.branch_prob vm.profiles site)
                  (Runtime.Profile.branch_prob merged site)
            | _ -> ())
          fn);
    test "negative counts are rejected" (fun () ->
        List.iter
          (fun bad ->
            match Runtime.Profile.of_text bad with
            | _ -> Alcotest.failf "accepted %S" bad
            | exception Runtime.Profile.Bad_profile _ -> ())
          [ "i 1 -2"; "b 0 1 -5"; "r 2 0 3 -1"; "c 0 1 -3 4"; "c 0 1 3 -4" ]);
    test "compiled code does not profile" (fun () ->
        let src =
          {|def g(): Int = 1
            def bench(): Int = g()
            def main(): Unit = println(bench())|}
        in
        let e = engine ~hotness:3 src (Some (incremental ())) "incr" in
        for _ = 1 to 20 do
          ignore (Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ])
        done;
        let prog = e.vm.prog in
        let bench_m = meth prog "bench" in
        (* bench compiles after 3 invocations; interpreter profiling stops *)
        let inv = Runtime.Profile.invocation_count e.vm.profiles bench_m in
        Alcotest.(check bool) "counts frozen below 20" true (inv < 20));
  ]

let () = Alcotest.run "profile" [ ("profile", tests) ]
