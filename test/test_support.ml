(* Unit tests for the support library: Vec, Rng, Stats, Json. *)

open Util

let vec_tests =
  [
    test "push/get/length" (fun () ->
        let v = Support.Vec.create ~dummy:0 in
        Alcotest.(check int) "empty" 0 (Support.Vec.length v);
        Support.Vec.push v 10;
        Support.Vec.push v 20;
        Alcotest.(check int) "len" 2 (Support.Vec.length v);
        Alcotest.(check int) "get0" 10 (Support.Vec.get v 0);
        Alcotest.(check int) "get1" 20 (Support.Vec.get v 1));
    test "set" (fun () ->
        let v = Support.Vec.of_list ~dummy:0 [ 1; 2; 3 ] in
        Support.Vec.set v 1 99;
        Alcotest.(check (list int)) "list" [ 1; 99; 3 ] (Support.Vec.to_list v));
    test "growth beyond initial capacity" (fun () ->
        let v = Support.Vec.create ~dummy:(-1) in
        for i = 0 to 99 do
          Support.Vec.push v i
        done;
        Alcotest.(check int) "len" 100 (Support.Vec.length v);
        Alcotest.(check int) "last" 99 (Support.Vec.get v 99);
        Alcotest.(check int) "first" 0 (Support.Vec.get v 0));
    test "pop" (fun () ->
        let v = Support.Vec.of_list ~dummy:0 [ 1; 2 ] in
        Alcotest.(check int) "pop" 2 (Support.Vec.pop v);
        Alcotest.(check int) "len" 1 (Support.Vec.length v));
    test "out-of-bounds get raises" (fun () ->
        let v = Support.Vec.of_list ~dummy:0 [ 1 ] in
        Alcotest.check_raises "get 1" (Invalid_argument "Vec.get: index out of bounds")
          (fun () -> ignore (Support.Vec.get v 1)));
    test "pop empty raises" (fun () ->
        let v = Support.Vec.create ~dummy:0 in
        Alcotest.check_raises "pop" (Invalid_argument "Vec.pop: empty") (fun () ->
            ignore (Support.Vec.pop v)));
    test "iteri order" (fun () ->
        let v = Support.Vec.of_list ~dummy:0 [ 5; 6; 7 ] in
        let acc = ref [] in
        Support.Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
        Alcotest.(check (list (pair int int)))
          "pairs" [ (0, 5); (1, 6); (2, 7) ] (List.rev !acc));
    test "fold_left" (fun () ->
        let v = Support.Vec.of_list ~dummy:0 [ 1; 2; 3; 4 ] in
        Alcotest.(check int) "sum" 10 (Support.Vec.fold_left ( + ) 0 v));
    test "exists" (fun () ->
        let v = Support.Vec.of_list ~dummy:0 [ 1; 2; 3 ] in
        Alcotest.(check bool) "has 2" true (Support.Vec.exists (( = ) 2) v);
        Alcotest.(check bool) "no 9" false (Support.Vec.exists (( = ) 9) v));
    test "copy is independent" (fun () ->
        let v = Support.Vec.of_list ~dummy:0 [ 1; 2 ] in
        let w = Support.Vec.copy v in
        Support.Vec.set w 0 42;
        Alcotest.(check int) "original intact" 1 (Support.Vec.get v 0));
    test "clear" (fun () ->
        let v = Support.Vec.of_list ~dummy:0 [ 1; 2 ] in
        Support.Vec.clear v;
        Alcotest.(check bool) "empty" true (Support.Vec.is_empty v));
  ]

let rng_tests =
  [
    test "deterministic for equal seeds" (fun () ->
        let a = Support.Rng.create 42 and b = Support.Rng.create 42 in
        for _ = 1 to 10 do
          Alcotest.(check int) "same" (Support.Rng.int a 1000) (Support.Rng.int b 1000)
        done);
    test "different seeds differ" (fun () ->
        let a = Support.Rng.create 1 and b = Support.Rng.create 2 in
        let xs = List.init 8 (fun _ -> Support.Rng.int a 1_000_000) in
        let ys = List.init 8 (fun _ -> Support.Rng.int b 1_000_000) in
        Alcotest.(check bool) "sequences differ" true (xs <> ys));
    test "int respects bound" (fun () ->
        let g = Support.Rng.create 7 in
        for _ = 1 to 1000 do
          let x = Support.Rng.int g 17 in
          if x < 0 || x >= 17 then Alcotest.failf "out of range: %d" x
        done);
    test "int rejects non-positive bound" (fun () ->
        let g = Support.Rng.create 7 in
        Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
          (fun () -> ignore (Support.Rng.int g 0)));
    test "float in [0,1)" (fun () ->
        let g = Support.Rng.create 13 in
        for _ = 1 to 1000 do
          let x = Support.Rng.float g in
          if x < 0.0 || x >= 1.0 then Alcotest.failf "out of range: %f" x
        done);
    test "pick from singleton" (fun () ->
        let g = Support.Rng.create 3 in
        Alcotest.(check int) "only" 5 (Support.Rng.pick g [ 5 ]));
    test "shuffle preserves elements" (fun () ->
        let g = Support.Rng.create 11 in
        let xs = [ 1; 2; 3; 4; 5; 6 ] in
        Alcotest.(check (list int))
          "sorted" xs
          (List.sort compare (Support.Rng.shuffle g xs)));
    test "copy forks the stream" (fun () ->
        let a = Support.Rng.create 9 in
        ignore (Support.Rng.int a 10);
        let b = Support.Rng.copy a in
        Alcotest.(check int) "same next" (Support.Rng.int a 1000) (Support.Rng.int b 1000));
  ]

let stats_tests =
  [
    test "mean" (fun () ->
        Alcotest.(check (float 1e-9)) "mean" 2.0 (Support.Stats.mean [ 1.0; 2.0; 3.0 ]));
    test "stddev of constant series is 0" (fun () ->
        Alcotest.(check (float 1e-9)) "std" 0.0 (Support.Stats.stddev [ 5.0; 5.0; 5.0 ]));
    test "stddev simple" (fun () ->
        (* sample stddev of [2,4] = sqrt(2) *)
        Alcotest.(check (float 1e-9)) "std" (sqrt 2.0) (Support.Stats.stddev [ 2.0; 4.0 ]));
    test "geomean" (fun () ->
        Alcotest.(check (float 1e-9)) "geo" 2.0 (Support.Stats.geomean [ 1.0; 4.0 ]));
    test "geomean rejects non-positive" (fun () ->
        Alcotest.check_raises "neg" (Invalid_argument "Stats.geomean: non-positive value")
          (fun () -> ignore (Support.Stats.geomean [ 1.0; -1.0 ])));
    test "min_max" (fun () ->
        let lo, hi = Support.Stats.min_max [ 3.0; 1.0; 2.0 ] in
        Alcotest.(check (float 0.0)) "lo" 1.0 lo;
        Alcotest.(check (float 0.0)) "hi" 3.0 hi);
    test "steady-state window takes last 40%" (fun () ->
        let xs = List.init 10 float_of_int in
        Alcotest.(check (list (float 0.0)))
          "window" [ 6.0; 7.0; 8.0; 9.0 ]
          (Support.Stats.steady_state_window xs));
    test "steady-state window caps at 20" (fun () ->
        let xs = List.init 100 float_of_int in
        Alcotest.(check int) "len" 20
          (List.length (Support.Stats.steady_state_window xs)));
    test "steady-state of single sample" (fun () ->
        Alcotest.(check (list (float 0.0))) "one" [ 7.0 ]
          (Support.Stats.steady_state_window [ 7.0 ]));
    test "steady-state of two samples keeps the last" (fun () ->
        (* 40% of 2 rounds down to 0; the window floor is 1 sample *)
        Alcotest.(check (list (float 0.0))) "two" [ 9.0 ]
          (Support.Stats.steady_state_window [ 3.0; 9.0 ]));
    test "steady-state window beyond the cap is the last 20" (fun () ->
        let xs = List.init 60 float_of_int in
        let w = Support.Stats.steady_state_window xs in
        Alcotest.(check int) "len" 20 (List.length w);
        Alcotest.(check (float 0.0)) "starts at 40" 40.0 (List.hd w);
        Alcotest.(check (float 0.0)) "ends at 59" 59.0 (List.nth w 19));
    test "steady-state at the cap boundary" (fun () ->
        (* n=50: 40% = 20 exactly; n=51: 40% rounds down to 20 *)
        Alcotest.(check int) "n=50" 20
          (List.length (Support.Stats.steady_state_window (List.init 50 float_of_int)));
        Alcotest.(check int) "n=51" 20
          (List.length (Support.Stats.steady_state_window (List.init 51 float_of_int))));
    test "steady-state of empty raises" (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Stats.steady_state_window: empty") (fun () ->
            ignore (Support.Stats.steady_state_window [])));
    test "mean of empty raises" (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty") (fun () ->
            ignore (Support.Stats.mean [])));
  ]

(* ---------- Json: the emitter the trace sink depends on ---------- *)

let json_str j = Support.Json.to_string j

let json_tests =
  let open Support.Json in
  [
    test "scalars render" (fun () ->
        Alcotest.(check string) "null" "null" (json_str Null);
        Alcotest.(check string) "true" "true" (json_str (Bool true));
        Alcotest.(check string) "int" "-42" (json_str (Int (-42)));
        Alcotest.(check string) "string" "\"hi\"" (json_str (String "hi")));
    test "control characters escape" (fun () ->
        Alcotest.(check string) "newline/tab/cr" "\"a\\nb\\tc\\rd\""
          (json_str (String "a\nb\tc\rd"));
        Alcotest.(check string) "quote and backslash" "\"q\\\"b\\\\e\""
          (json_str (String "q\"b\\e"));
        (* other control chars take the \u form *)
        Alcotest.(check string) "\\u0001" "\"\\u0001\"" (json_str (String "\001"));
        Alcotest.(check string) "\\u001f" "\"\\u001f\"" (json_str (String "\031")));
    test "non-finite floats become null" (fun () ->
        Alcotest.(check string) "nan" "null" (json_str (Float Float.nan));
        Alcotest.(check string) "inf" "null" (json_str (Float Float.infinity));
        Alcotest.(check string) "-inf" "null" (json_str (Float Float.neg_infinity));
        Alcotest.(check bool) "finite stays numeric" true
          (json_str (Float 1.5) = "1.5"));
    test "nested rendering" (fun () ->
        Alcotest.(check string) "obj"
          "{\"a\": [1, 2], \"b\": {\"c\": null}}"
          (json_str (Obj [ ("a", List [ Int 1; Int 2 ]); ("b", Obj [ ("c", Null) ]) ])));
    test "parse round-trips what we emit" (fun () ->
        let samples =
          [
            Null;
            Bool false;
            Int 123;
            Int (-7);
            Float 3.25;
            String "control \001 and \"quotes\" and \\slashes\n";
            List [ Int 1; String "x"; Obj [] ];
            Obj [ ("ev", String "install"); ("cycles", Int 99); ("xs", List [ Null ]) ];
          ]
        in
        List.iter
          (fun j ->
            match of_string (json_str j) with
            | Ok j' -> Alcotest.(check string) "round trip" (json_str j) (json_str j')
            | Error e -> Alcotest.failf "did not parse %s: %s" (json_str j) e)
          samples);
    test "parse handles whitespace and empty containers" (fun () ->
        Alcotest.(check bool) "empty obj" true (of_string " { } " = Ok (Obj []));
        Alcotest.(check bool) "empty list" true (of_string "[]" = Ok (List []));
        Alcotest.(check bool) "spaced" true
          (of_string "{ \"a\" : [ 1 , 2 ] }" = Ok (Obj [ ("a", List [ Int 1; Int 2 ]) ])));
    test "parse rejects malformed input" (fun () ->
        List.iter
          (fun bad ->
            match of_string bad with
            | Ok _ -> Alcotest.failf "accepted %S" bad
            | Error _ -> ())
          [ ""; "{"; "[1,]"; "nul"; "\"unterminated"; "{\"a\" 1}"; "1 2"; "{}}" ]);
    test "member and accessors" (fun () ->
        let j = Obj [ ("ev", String "install"); ("size", Int 9) ] in
        Alcotest.(check (option int)) "size" (Some 9)
          (Option.bind (member "size" j) to_int_opt);
        Alcotest.(check (option string)) "ev" (Some "install")
          (Option.bind (member "ev" j) to_string_opt);
        Alcotest.(check bool) "missing" true (member "nope" j = None);
        Alcotest.(check bool) "non-object" true (member "x" (Int 1) = None));
  ]

let fuel_tests =
  [
    test "disabled: spend is free, remaining is None" (fun () ->
        Alcotest.(check bool) "disabled" false (Support.Fuel.enabled ());
        Support.Fuel.spend 1_000_000;
        Alcotest.(check bool) "no budget" true (Support.Fuel.remaining () = None));
    test "budget exhausts exactly past its limit" (fun () ->
        let spent = ref 0 in
        (match
           Support.Fuel.with_budget 3 (fun () ->
               for _ = 1 to 10 do
                 Support.Fuel.spend 1;
                 incr spent
               done)
         with
        | () -> Alcotest.fail "expected exhaustion"
        | exception Support.Fuel.Exhausted -> ());
        (* 3 paid checkpoints pass; the 4th drives remaining below zero *)
        Alcotest.(check int) "checkpoints before abort" 3 !spent;
        Alcotest.(check bool) "uninstalled after scope" false
          (Support.Fuel.enabled ()));
    test "nested budgets restore the outer one" (fun () ->
        Support.Fuel.with_budget 100 (fun () ->
            (match
               Support.Fuel.with_budget 1 (fun () ->
                   Support.Fuel.spend 5)
             with
            | () -> Alcotest.fail "inner should exhaust"
            | exception Support.Fuel.Exhausted -> ());
            Alcotest.(check bool) "outer budget intact" true
              (Support.Fuel.remaining () = Some 100)));
    test "sufficient budget returns the result" (fun () ->
        let r = Support.Fuel.with_budget 5 (fun () -> Support.Fuel.spend 5; 42) in
        Alcotest.(check int) "result" 42 r);
  ]

let chaos_plan_tests =
  [
    test "disabled: roll never fires" (fun () ->
        Alcotest.(check bool) "disabled" false (Support.Chaos.enabled ());
        for _ = 1 to 100 do
          Alcotest.(check bool) "no fault" false
            (Support.Chaos.roll Support.Chaos.Compiler_crash)
        done;
        Alcotest.(check int) "starved fuel is 0 when disabled" 0
          (Support.Chaos.starved_fuel ()));
    test "rate bounds are validated" (fun () ->
        List.iter
          (fun rate ->
            match Support.Chaos.install ~seed:1 ~rate with
            | () -> Alcotest.failf "accepted rate %f" rate
            | exception Invalid_argument _ -> ())
          [ -0.1; 1.5; Float.nan ]);
    test "same seed replays the same roll sequence" (fun () ->
        let draws seed =
          Support.Chaos.scoped ~seed ~rate:0.5 (fun () ->
              List.init 64 (fun _ -> Support.Chaos.roll Support.Chaos.Verifier_reject))
        in
        Alcotest.(check (list bool)) "deterministic" (draws 9) (draws 9);
        Alcotest.(check bool) "rate 0 never fires" true
          (Support.Chaos.scoped ~seed:9 ~rate:0.0 (fun () ->
               List.for_all not
                 (List.init 64 (fun _ ->
                      Support.Chaos.roll Support.Chaos.Compiler_crash))));
        Alcotest.(check bool) "rate 1 always fires" true
          (Support.Chaos.scoped ~seed:9 ~rate:1.0 (fun () ->
               List.for_all Fun.id
                 (List.init 64 (fun _ ->
                      Support.Chaos.roll Support.Chaos.Fuel_exhaustion)))));
    test "plan counts rolls and injections" (fun () ->
        Support.Chaos.scoped ~seed:3 ~rate:0.5 (fun () ->
            for _ = 1 to 50 do
              ignore (Support.Chaos.roll Support.Chaos.Invalidation_storm)
            done;
            match Support.Chaos.plan () with
            | None -> Alcotest.fail "plan missing"
            | Some p ->
                Alcotest.(check int) "rolls" 50 p.rolls;
                Alcotest.(check bool) "some injected" true (p.injected > 0);
                Alcotest.(check bool) "not all injected" true (p.injected < 50)))
  ]

let io_tests =
  [
    test "write_atomic writes contents and leaves no temp" (fun () ->
        let path = Filename.temp_file "selvm_io" ".json" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
          (fun () ->
            Support.Io.write_atomic path "{\"ok\":true}\n";
            let ic = open_in path in
            let line = input_line ic in
            close_in ic;
            Alcotest.(check string) "contents" "{\"ok\":true}" line;
            Alcotest.(check bool) "no temp file left" false
              (Sys.file_exists (Support.Io.tmp_path path))));
    test "a failing writer preserves the previous contents" (fun () ->
        let path = Filename.temp_file "selvm_io" ".json" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
          (fun () ->
            Support.Io.write_atomic path "old contents";
            (match
               Support.Io.with_atomic_out path (fun oc ->
                   output_string oc "partial garbage";
                   failwith "interrupted")
             with
            | () -> Alcotest.fail "expected failure"
            | exception Failure _ -> ());
            let ic = open_in path in
            let line = input_line ic in
            close_in ic;
            Alcotest.(check string) "old contents intact" "old contents" line;
            Alcotest.(check bool) "no temp file left" false
              (Sys.file_exists (Support.Io.tmp_path path))));
    test "a failing writer creates nothing when no file existed" (fun () ->
        let dir = Filename.get_temp_dir_name () in
        let path = Filename.concat dir "selvm_io_absent.json" in
        (try Sys.remove path with Sys_error _ -> ());
        (match
           Support.Io.with_atomic_out path (fun _ -> failwith "interrupted")
         with
        | () -> Alcotest.fail "expected failure"
        | exception Failure _ -> ());
        Alcotest.(check bool) "target absent" false (Sys.file_exists path);
        Alcotest.(check bool) "temp absent" false
          (Sys.file_exists (Support.Io.tmp_path path)));
  ]

let () =
  Alcotest.run "support"
    [
      ("vec", vec_tests);
      ("rng", rng_tests);
      ("stats", stats_tests);
      ("json", json_tests);
      ("fuel", fuel_tests);
      ("chaos", chaos_plan_tests);
      ("io", io_tests);
    ]
