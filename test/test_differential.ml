(* Differential tests for the prepared execution engine: the [Prepared]
   backend must be observationally identical to the [Reference] IR walker
   — same output, same results, same simulated cycles, same step counts,
   same recorded profiles — on every registered workload, on random
   programs, across the tiered engine (where compiled-code installation
   exercises prepared-cache invalidation), and on trapping programs.

   The reference backend is the seed interpreter kept verbatim; these
   tests are the proof that preparation changed *when* work happens, not
   *what* the program observes. *)

open Util

(* Everything one execution observes. [epoch] is the prepared-cache
   version counter: it must advance on every code install/invalidation
   and stay at zero interpreter-only. *)
type snap = {
  output : string;
  results : string list;  (* rendered values of each entry call *)
  cycles : int;
  steps : int;
  profile : string;
  installed : int;        (* compiled methods at the end *)
  epoch : int;
}

let check_same what (ref_ : snap) (pre : snap) =
  let s = Alcotest.(check string) and i = Alcotest.(check int) in
  s (what ^ ": output") ref_.output pre.output;
  Alcotest.(check (list string)) (what ^ ": results") ref_.results pre.results;
  i (what ^ ": cycles") ref_.cycles pre.cycles;
  i (what ^ ": steps") ref_.steps pre.steps;
  s (what ^ ": profiles") ref_.profile pre.profile;
  i (what ^ ": installed methods") ref_.installed pre.installed

(* One engine run over a freshly compiled workload: main once, then the
   bench entry [iters] times. *)
let run_workload ?compiler ?spec_miss_threshold ~(hotness : int) ~(iters : int)
    (backend : Runtime.Interp.backend) (w : Workloads.Defs.t) : snap =
  let prog = Workloads.Registry.compile w in
  let engine =
    Jit.Engine.create ?spec_miss_threshold prog
      {
        name = "diff";
        compiler;
        hotness_threshold = hotness;
        compile_cost_per_node = 50;
        verify = false;
      }
  in
  engine.vm.backend <- backend;
  let results = ref [] in
  let record v = results := Runtime.Values.to_string v :: !results in
  record (Jit.Engine.run_main engine);
  for _ = 1 to iters do
    record (Jit.Engine.run_meth engine "bench" [ Runtime.Values.Vunit ])
  done;
  {
    output = Jit.Engine.output engine;
    results = List.rev !results;
    cycles = engine.vm.cycles;
    steps = engine.vm.steps;
    profile = Runtime.Profile.to_text engine.vm.profiles;
    installed = Jit.Engine.installed_methods engine;
    epoch = engine.vm.code_epoch;
  }

(* ---------- every workload, interpreter only ---------- *)

let test_workloads_interp () =
  List.iter
    (fun (w : Workloads.Defs.t) ->
      let run b = run_workload ~hotness:max_int ~iters:2 b w in
      let ref_ = run Runtime.Interp.Reference in
      let pre = run Runtime.Interp.Prepared in
      check_same w.name ref_ pre;
      Alcotest.(check int) (w.name ^ ": no installs, epoch stays 0") 0 pre.epoch)
    Workloads.Registry.all

(* ---------- tiered engine: compile, install, invalidate ---------- *)

(* The incremental inliner compiles hot methods mid-run, so installed code
   replaces interpreted execution while cycles keep accumulating — any
   stale prepared code or accounting drift diverges the clock instantly.
   A low spec-miss threshold also exercises code invalidation. *)
let test_workloads_tiered () =
  let subset =
    List.filteri (fun i _ -> i mod 3 = 0) Workloads.Registry.all (* every 3rd *)
  in
  List.iter
    (fun (w : Workloads.Defs.t) ->
      let run b =
        run_workload
          ~compiler:(Util.incremental ())
          ~spec_miss_threshold:4 ~hotness:3 ~iters:(min w.iters 12) b w
      in
      let ref_ = run Runtime.Interp.Reference in
      let pre = run Runtime.Interp.Prepared in
      check_same (w.name ^ " (tiered)") ref_ pre;
      if pre.installed > 0 then
        Alcotest.(check bool)
          (w.name ^ ": installs bumped the code epoch")
          true (pre.epoch > 0))
    subset

(* ---------- cache invalidation drops stale prepared code ---------- *)

let test_invalidation () =
  let src =
    {|def f(x: Int): Int = x * 2 + 1
def main(): Unit = {
  var i = 0;
  while (i < 20) { println(f(i)); i = i + 1; }
}|}
  in
  let c1 : Jit.Engine.compiler =
   fun prog _ m ->
    match (Ir.Program.meth prog m).body with
    | Some fn -> Ir.Fn.copy fn
    | None -> Alcotest.fail "no body"
  in
  let engine = Util.engine ~hotness:3 src (Some c1) "inv" in
  ignore (Jit.Engine.run_main engine);
  Alcotest.(check bool) "something compiled" true
    (Jit.Engine.installed_methods engine > 0);
  Alcotest.(check bool) "install invalidated prepared code" true
    (engine.vm.code_epoch > 0);
  (* the cache must hold no entry translated from a body that is no longer
     what the tier dispatch would execute *)
  Array.iteri
    (fun key entry ->
      match entry with
      | None -> ()
      | Some (e : Runtime.Interp.prepared_entry) -> (
          let m = key / 2 in
          let current =
            match Hashtbl.find_opt engine.code_cache m with
            | Some fn -> Some fn
            | None -> (Ir.Program.meth engine.vm.prog m).body
          in
          match current with
          | Some fn when key mod 2 = 1 || not (Hashtbl.mem engine.code_cache m)
            ->
              Alcotest.(check bool) "cached entry matches live body" true
                (e.src == fn)
          | _ -> ()))
    engine.vm.prepared_cache;
  let expected =
    String.concat "" (List.init 20 (fun i -> string_of_int (i * 2 + 1) ^ "\n"))
  in
  Alcotest.(check string) "output survives recompilation" expected
    (Jit.Engine.output engine)

(* ---------- random programs ---------- *)

(* A compact source generator: arithmetic with safe divisors, if/while
   with constant bounds, heap cells, arrays indexed modulo their length,
   and virtual dispatch through a small class hierarchy — deterministic by
   construction, trap-free, phi-heavy. *)

let prelude =
  {|class Cell(v: Int) {}
abstract class P { def m(x: Int): Int }
class P1() extends P { def m(x: Int): Int = x + 1 }
class P2() extends P { def m(x: Int): Int = x * 2 }
class P3() extends P { def m(x: Int): Int = x - 3 }
def poly(i: Int, x: Int): Int = {
  val k = if (i % 3 == 0) { 0 } else { if (i % 3 == 1) { 1 } else { 2 } };
  var p: P = new P1();
  if (k == 1) { p = new P2() };
  if (k == 2) { p = new P3() };
  p.m(x)
}
|}

let rec gen_expr ~vars ~depth : string QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map string_of_int (int_range 0 9);
        (if vars = [] then return "5" else oneofl vars);
      ]
  in
  if depth = 0 then leaf
  else
    frequency
      [
        (2, leaf);
        ( 3,
          let* op = oneofl [ "+"; "-"; "*" ] in
          let* a = gen_expr ~vars ~depth:(depth - 1) in
          let* b = gen_expr ~vars ~depth:(depth - 1) in
          return (Printf.sprintf "(%s %s %s)" a op b) );
        ( 1,
          let* a = gen_expr ~vars ~depth:(depth - 1) in
          let* d = oneofl [ "2"; "3"; "5" ] in
          return (Printf.sprintf "(%s / %s)" a d) );
        ( 1,
          let* a = gen_expr ~vars ~depth:(depth - 1) in
          let* b = gen_expr ~vars ~depth:(depth - 1) in
          let* op = oneofl [ "<"; "=="; ">=" ] in
          let* t = gen_expr ~vars ~depth:(depth - 1) in
          let* f = gen_expr ~vars ~depth:(depth - 1) in
          return (Printf.sprintf "(if (%s %s %s) { %s } else { %s })" a op b t f) );
        ( 1,
          let* i = gen_expr ~vars ~depth:0 in
          let* x = gen_expr ~vars ~depth:(depth - 1) in
          return (Printf.sprintf "poly(%s, %s)" i x) );
      ]

let gen_stmts : string QCheck.Gen.t =
  let open QCheck.Gen in
  let* n = int_range 2 6 in
  let rec go k vars cells arrays acc fresh =
    if k = 0 then return (List.rev acc)
    else
      let* choice = int_range 0 5 in
      match choice with
      | 0 ->
          let name = Printf.sprintf "x%d" fresh in
          let* e = gen_expr ~vars ~depth:2 in
          go (k - 1) (name :: vars) cells arrays
            (Printf.sprintf "var %s = %s;" name e :: acc)
            (fresh + 1)
      | 1 ->
          let i = Printf.sprintf "i%d" fresh in
          let* bound = int_range 1 5 in
          let* e = gen_expr ~vars:(i :: vars) ~depth:2 in
          go (k - 1) vars cells arrays
            (Printf.sprintf
               "var %s = 0; while (%s < %d) { acc = acc + (%s); %s = %s + 1; };" i
               i bound e i i
            :: acc)
            (fresh + 1)
      | 2 ->
          let name = Printf.sprintf "c%d" fresh in
          let* e = gen_expr ~vars ~depth:1 in
          go (k - 1)
            (Printf.sprintf "%s.v" name :: vars)
            (name :: cells) arrays
            (Printf.sprintf "val %s = new Cell(%s);" name e :: acc)
            (fresh + 1)
      | 3 when cells <> [] ->
          let* cell = oneofl cells in
          let* e = gen_expr ~vars ~depth:2 in
          go (k - 1) vars cells arrays
            (Printf.sprintf "%s.v = %s;" cell e :: acc)
            fresh
      | 4 ->
          let name = Printf.sprintf "ar%d" fresh in
          let* len = int_range 1 6 in
          go (k - 1)
            (Printf.sprintf "%s[abs(acc) %% %d]" name len :: vars)
            cells
            ((name, len) :: arrays)
            (Printf.sprintf "val %s = new Array[Int](%d);" name len :: acc)
            (fresh + 1)
      | _ when arrays <> [] ->
          let* arr, len = oneofl arrays in
          let* idx = gen_expr ~vars ~depth:1 in
          let* e = gen_expr ~vars ~depth:2 in
          go (k - 1) vars cells arrays
            (Printf.sprintf "%s[abs(%s) %% %d] = %s;" arr idx len e :: acc)
            fresh
      | _ ->
          let* e = gen_expr ~vars ~depth:2 in
          go (k - 1) vars cells arrays
            (Printf.sprintf "acc = acc + (%s);" e :: acc)
            fresh
  in
  let* stmts = go n [ "a"; "b"; "acc" ] [] [] [] 0 in
  return (String.concat "\n  " stmts)

let gen_program : string QCheck.Gen.t =
  let open QCheck.Gen in
  let* block = gen_stmts in
  let f =
    Printf.sprintf "def f(a: Int, b: Int): Int = {\n  var acc = 0;\n  %s\n  acc\n}"
      block
  in
  let main =
    {|def main(): Unit = {
  var i = 0;
  while (i < 8) { println(f(i, i * 2 - 3)); i = i + 1; }
}|}
  in
  return (prelude ^ f ^ "\n" ^ main)

let program_arbitrary = QCheck.make ~print:(fun s -> s) gen_program

let compile_ok src =
  match Frontend.Pipeline.compile src with
  | Ok prog -> prog
  | Error e ->
      QCheck.Test.fail_reportf "generated program does not compile: %s@.%s"
        (Frontend.Pipeline.error_to_string e)
        src

(* Interpreter-only differential on a raw VM (no engine, no opts). *)
let vm_snap (backend : Runtime.Interp.backend) (src : string) : snap =
  let prog = compile_ok src in
  let vm = Runtime.Interp.create ~backend prog in
  let v = Runtime.Interp.run_main vm in
  {
    output = Runtime.Interp.output vm;
    results = [ Runtime.Values.to_string v ];
    cycles = vm.cycles;
    steps = vm.steps;
    profile = Runtime.Profile.to_text vm.profiles;
    installed = 0;
    epoch = vm.code_epoch;
  }

let same what (ref_ : snap) (pre : snap) =
  if ref_ <> pre then
    QCheck.Test.fail_reportf
      "%s diverged:@.cycles %d vs %d, steps %d vs %d@.output %S vs %S" what
      ref_.cycles pre.cycles ref_.steps pre.steps ref_.output pre.output;
  true

let prop_interp_differential =
  QCheck.Test.make ~name:"prepared = reference on random programs (interp)"
    ~count:50 program_arbitrary (fun src ->
      same "interp" (vm_snap Runtime.Interp.Reference src)
        (vm_snap Runtime.Interp.Prepared src))

(* Tiered differential: hot methods compile mid-run under both backends. *)
let engine_snap (backend : Runtime.Interp.backend) (src : string) : snap =
  let prog = compile_ok src in
  let engine =
    Jit.Engine.create prog
      {
        name = "diff";
        compiler = Some (Util.incremental ());
        hotness_threshold = 2;
        compile_cost_per_node = 50;
        verify = false;
      }
  in
  engine.vm.backend <- backend;
  let v = Jit.Engine.run_main engine in
  {
    output = Jit.Engine.output engine;
    results = [ Runtime.Values.to_string v ];
    cycles = engine.vm.cycles;
    steps = engine.vm.steps;
    profile = Runtime.Profile.to_text engine.vm.profiles;
    installed = Jit.Engine.installed_methods engine;
    epoch = 0;  (* epochs may legitimately differ only via cache warmth; fixed *)
  }

let prop_tiered_differential =
  QCheck.Test.make ~name:"prepared = reference on random programs (tiered)"
    ~count:30 program_arbitrary (fun src ->
      same "tiered" (engine_snap Runtime.Interp.Reference src)
        (engine_snap Runtime.Interp.Prepared src))

(* ---------- inline caches ---------- *)

(* Inline caches must be observably transparent: disabling them changes
   nothing the program (or the profile fold) can see. *)
let vm_snap_ic ~(ic : bool) (src : string) : snap =
  let prog = compile_ok src in
  let vm = Runtime.Interp.create ~backend:Runtime.Interp.Prepared prog in
  vm.ic_enabled <- ic;
  let v = Runtime.Interp.run_main vm in
  {
    output = Runtime.Interp.output vm;
    results = [ Runtime.Values.to_string v ];
    cycles = vm.cycles;
    steps = vm.steps;
    profile = Runtime.Profile.to_text vm.profiles;
    installed = 0;
    epoch = vm.code_epoch;
  }

let prop_ic_differential =
  QCheck.Test.make ~name:"ic-enabled = ic-disabled on random programs (interp)"
    ~count:40 program_arbitrary (fun src ->
      same "ic" (vm_snap_ic ~ic:false src) (vm_snap_ic ~ic:true src))

let engine_snap_ic ~(ic : bool) (src : string) : snap =
  let prog = compile_ok src in
  let engine =
    Jit.Engine.create prog
      {
        name = "diff-ic";
        compiler = Some (Util.incremental ());
        hotness_threshold = 2;
        compile_cost_per_node = 50;
        verify = false;
      }
  in
  engine.vm.ic_enabled <- ic;
  let v = Jit.Engine.run_main engine in
  {
    output = Jit.Engine.output engine;
    results = [ Runtime.Values.to_string v ];
    cycles = engine.vm.cycles;
    steps = engine.vm.steps;
    profile = Runtime.Profile.to_text engine.vm.profiles;
    installed = Jit.Engine.installed_methods engine;
    epoch = 0;
  }

let prop_ic_tiered_differential =
  QCheck.Test.make ~name:"ic-enabled = ic-disabled on random programs (tiered)"
    ~count:20 program_arbitrary (fun src ->
      same "ic tiered" (engine_snap_ic ~ic:false src) (engine_snap_ic ~ic:true src))

let ic_src =
  {|abstract class A { def m(x: Int): Int }
class A1() extends A { def m(x: Int): Int = x + 1 }
class A2() extends A { def m(x: Int): Int = x * 2 }
class A3() extends A { def m(x: Int): Int = x - 3 }
def pick(i: Int): A = {
  val k = i % 3;
  var p: A = new A1();
  if (k == 1) { p = new A2() };
  if (k == 2) { p = new A3() };
  p
}
def bench(): Int = {
  var acc = 0;
  var i = 0;
  while (i < 30) { acc = acc + pick(i).m(i); i = i + 1; };
  acc
}
def main(): Unit = { println(bench()) }|}

let ic_totals (stats : Runtime.Interp.ic_stat list) : int * int * int =
  List.fold_left
    (fun (h, m, g) (st : Runtime.Interp.ic_stat) ->
      (h + st.st_hits, m + st.st_misses, g + st.st_mega))
    (0, 0, 0) stats

(* Installs and invalidations drop prepared code; the inline-cache
   counters inside must be retired — never lost, never double-counted —
   and fresh code must rebuild its caches from scratch. *)
let test_ic_flush () =
  let c1 : Jit.Engine.compiler =
   fun prog _ m ->
    match (Ir.Program.meth prog m).body with
    | Some fn -> Ir.Fn.copy fn
    | None -> Alcotest.fail "no body"
  in
  let engine = Util.engine ~hotness:3 ~verify:false ic_src (Some c1) "ic-flush" in
  ignore (Jit.Engine.run_main engine);
  for _ = 1 to 10 do
    ignore (Jit.Engine.run_meth engine "bench" [ Runtime.Values.Vunit ])
  done;
  Alcotest.(check bool) "something compiled" true
    (Jit.Engine.installed_methods engine > 0);
  Alcotest.(check bool) "installs retired inline caches" true
    (Hashtbl.length engine.vm.ic_retired > 0);
  let stats = Jit.Engine.ic_stats engine in
  Alcotest.(check bool) "ic stats nonempty" true (stats <> []);
  let h0, m0, g0 = ic_totals stats in
  Alcotest.(check bool) "hits dominate misses" true (h0 > m0);
  (* flush everything: the prepared cache must empty and every live
     counter must survive into the retired table, exactly once *)
  Ir.Program.iter_meths
    (fun (m : Ir.Types.meth) -> Runtime.Interp.invalidate_code engine.vm m.m_id)
    engine.vm.prog;
  Alcotest.(check int) "prepared cache flushed" 0
    (Array.fold_left
       (fun acc e -> match e with Some _ -> acc + 1 | None -> acc)
       0 engine.vm.prepared_cache);
  let h1, m1, g1 = ic_totals (Jit.Engine.ic_stats engine) in
  Alcotest.(check int) "hits preserved across flush" h0 h1;
  Alcotest.(check int) "misses preserved across flush" m0 m1;
  Alcotest.(check int) "megamorphic preserved across flush" g0 g1;
  (* fresh prepared code rebuilds its caches and keeps counting *)
  for _ = 1 to 5 do
    ignore (Jit.Engine.run_meth engine "bench" [ Runtime.Values.Vunit ])
  done;
  let h2, _, _ = ic_totals (Jit.Engine.ic_stats engine) in
  Alcotest.(check bool) "totals grow after re-prepare" true (h2 > h1)

(* A site seeing more receiver classes than the cache depth must go
   megamorphic — new classes fall through to the slow path — while the
   classes already cached keep hitting. *)
let test_ic_megamorphic () =
  let src =
    {|abstract class K { def m(x: Int): Int }
class K1() extends K { def m(x: Int): Int = x + 1 }
class K2() extends K { def m(x: Int): Int = x * 2 }
class K3() extends K { def m(x: Int): Int = x - 3 }
class K4() extends K { def m(x: Int): Int = x * x }
class K5() extends K { def m(x: Int): Int = 0 - x }
def pick(i: Int): K = {
  val k = i % 5;
  var p: K = new K1();
  if (k == 1) { p = new K2() };
  if (k == 2) { p = new K3() };
  if (k == 3) { p = new K4() };
  if (k == 4) { p = new K5() };
  p
}
def main(): Unit = {
  var acc = 0;
  var i = 0;
  while (i < 40) { acc = acc + pick(i).m(i); i = i + 1; };
  println(acc)
}|}
  in
  let prog = Util.compile src in
  let vm = Runtime.Interp.create ~backend:Runtime.Interp.Prepared prog in
  ignore (Runtime.Interp.run_main vm);
  let _, _, mega = ic_totals (Runtime.Interp.ic_stats vm) in
  let hits, _, _ = ic_totals (Runtime.Interp.ic_stats vm) in
  Alcotest.(check bool) "megamorphic fallbacks counted" true (mega > 0);
  Alcotest.(check bool) "cached classes keep hitting" true (hits > 0);
  (* and transparency still holds on the megamorphic program *)
  ignore (same "megamorphic" (vm_snap_ic ~ic:false src) (vm_snap_ic ~ic:true src))

(* ---------- traps ---------- *)

(* Trapping executions must diverge identically: same message, same
   output, cycles and steps at the moment of the trap. *)
let trap_snap ?max_steps (backend : Runtime.Interp.backend) (src : string) :
    string * snap =
  let prog = Util.compile src in
  let vm = Runtime.Interp.create ~backend prog in
  (match max_steps with Some n -> vm.max_steps <- n | None -> ());
  let msg =
    match Runtime.Interp.run_main vm with
    | v -> "no trap: " ^ Runtime.Values.to_string v
    | exception Runtime.Values.Trap m -> m
  in
  ( msg,
    {
      output = Runtime.Interp.output vm;
      results = [];
      cycles = vm.cycles;
      steps = vm.steps;
      profile = Runtime.Profile.to_text vm.profiles;
      installed = 0;
      epoch = 0;
    } )

let trap_cases =
  [
    ("division by zero", None,
     "def main(): Unit = { var d = 0; println(1 / d) }");
    ("remainder by zero", None,
     "def main(): Unit = { var d = 0; println(1 % d) }");
    ("array index out of bounds", None,
     "def main(): Unit = { val a = new Array[Int](3); var i = 5; println(a[i]) }");
    ("step budget exceeded", Some 100,
     "def main(): Unit = { var i = 0; while (i < 100000) { i = i + 1; }; println(i) }");
  ]

let test_traps () =
  List.iter
    (fun (name, max_steps, src) ->
      let rmsg, rsnap = trap_snap ?max_steps Runtime.Interp.Reference src in
      let pmsg, psnap = trap_snap ?max_steps Runtime.Interp.Prepared src in
      Alcotest.(check string) (name ^ ": message") rmsg pmsg;
      check_same name rsnap psnap)
    trap_cases

let () =
  Alcotest.run "differential"
    [
      ( "workloads",
        [
          test "all workloads, interpreter only" test_workloads_interp;
          test "workload subset, tiered with invalidation" test_workloads_tiered;
          test "installs drop stale prepared code" test_invalidation;
        ] );
      ( "random",
        [
          QCheck_alcotest.to_alcotest prop_interp_differential;
          QCheck_alcotest.to_alcotest prop_tiered_differential;
        ] );
      ( "inline caches",
        [
          QCheck_alcotest.to_alcotest prop_ic_differential;
          QCheck_alcotest.to_alcotest prop_ic_tiered_differential;
          test "installs and invalidations retire ic counters" test_ic_flush;
          test "megamorphic sites fall back, cached classes hit" test_ic_megamorphic;
        ] );
      ("traps", [ test "trapping programs trap identically" test_traps ]);
    ]
