(* Differential tests for the threaded execution tier: the [Threaded]
   backend — subroutine-threaded handler closures with profile-guided
   superinstruction fusion — must be observationally identical to both
   the [Reference] IR walker and the [Prepared] dispatch-match walker:
   same output, same results, same simulated cycles, same step counts,
   same folded profiles. Fusion batches the bookkeeping of a linear run
   of ops into one handler, so these tests deliberately push methods
   across the fusion thresholds and then look for drift at every
   observable point, including traps landing mid-segment. *)

open Util

type snap = {
  output : string;
  results : string list;
  cycles : int;
  steps : int;
  profile : string;
  installed : int;
}

let check_same what (ref_ : snap) (thr : snap) =
  let s = Alcotest.(check string) and i = Alcotest.(check int) in
  s (what ^ ": output") ref_.output thr.output;
  Alcotest.(check (list string)) (what ^ ": results") ref_.results thr.results;
  i (what ^ ": cycles") ref_.cycles thr.cycles;
  i (what ^ ": steps") ref_.steps thr.steps;
  s (what ^ ": profiles") ref_.profile thr.profile;
  i (what ^ ": installed methods") ref_.installed thr.installed

(* Aggressive thresholds: fuse after a handful of invocations so short
   test runs exercise the stage-0 -> stage-1 re-lowering and the fused
   fast path, not just the cold lowering. Fusion is threshold-transparent
   by design, so any thresholds must produce identical observables. *)
let eager : Runtime.Prepared.fusion_config =
  { fuse_invocations = 3; min_block_count = 2; max_fused_len = 8 }

let run_workload ?compiler ?spec_miss_threshold ?fusion ~(hotness : int)
    ~(iters : int) (backend : Runtime.Interp.backend) (w : Workloads.Defs.t) :
    snap =
  let prog = Workloads.Registry.compile w in
  let engine =
    Jit.Engine.create ?spec_miss_threshold prog
      {
        name = "thr-diff";
        compiler;
        hotness_threshold = hotness;
        compile_cost_per_node = 50;
        verify = false;
      }
  in
  engine.vm.backend <- backend;
  (match fusion with Some f -> engine.vm.fusion <- f | None -> ());
  let results = ref [] in
  let record v = results := Runtime.Values.to_string v :: !results in
  record (Jit.Engine.run_main engine);
  for _ = 1 to iters do
    record (Jit.Engine.run_meth engine "bench" [ Runtime.Values.Vunit ])
  done;
  {
    output = Jit.Engine.output engine;
    results = List.rev !results;
    cycles = engine.vm.cycles;
    steps = engine.vm.steps;
    profile = Runtime.Profile.to_text engine.vm.profiles;
    installed = Jit.Engine.installed_methods engine;
  }

(* ---------- every workload, three-way, interpreter only ---------- *)

let test_workloads_threaded () =
  List.iter
    (fun (w : Workloads.Defs.t) ->
      (* enough bench invocations to cross [eager.fuse_invocations] *)
      let run ?fusion b = run_workload ?fusion ~hotness:max_int ~iters:6 b w in
      let ref_ = run Runtime.Interp.Reference in
      let pre = run Runtime.Interp.Prepared in
      let thr = run ~fusion:eager Runtime.Interp.Threaded in
      check_same (w.name ^ " ref=thr") ref_ thr;
      check_same (w.name ^ " pre=thr") pre thr)
    Workloads.Registry.all

(* ---------- tiered: compile, install, invalidate under threading ---------- *)

let test_workloads_tiered_threaded () =
  let subset =
    List.filteri (fun i _ -> i mod 3 = 0) Workloads.Registry.all
  in
  List.iter
    (fun (w : Workloads.Defs.t) ->
      let run ?fusion b =
        run_workload ?fusion
          ~compiler:(Util.incremental ())
          ~spec_miss_threshold:4 ~hotness:3 ~iters:(min w.iters 12) b w
      in
      let ref_ = run Runtime.Interp.Reference in
      let thr = run ~fusion:eager Runtime.Interp.Threaded in
      check_same (w.name ^ " (tiered)") ref_ thr)
    subset

(* ---------- random programs ---------- *)

(* A compact generator biased toward what the threaded tier specializes:
   straight-line fusable runs inside hot loops, phi-carrying loop headers,
   heap and array traffic, and virtual dispatch (which breaks fusable
   runs at the call). Deterministic and trap-free by construction. *)

let prelude =
  {|class Cell(v: Int) {}
abstract class P { def m(x: Int): Int }
class P1() extends P { def m(x: Int): Int = x + 1 }
class P2() extends P { def m(x: Int): Int = x * 2 }
def poly(i: Int, x: Int): Int = {
  var p: P = new P1();
  if (i % 2 == 1) { p = new P2() };
  p.m(x)
}
|}

let gen_line ~vars : string QCheck.Gen.t =
  let open QCheck.Gen in
  let atom =
    oneof
      [ map string_of_int (int_range 0 9);
        (if vars = [] then return "1" else oneofl vars) ]
  in
  frequency
    [
      ( 4,
        (* a straight fusable run: chained arithmetic *)
        let* a = atom and* b = atom and* c = atom in
        let* o1 = oneofl [ "+"; "-"; "*" ] and* o2 = oneofl [ "+"; "*" ] in
        return (Printf.sprintf "acc = acc + ((%s %s %s) %s (%s / 3));" a o1 b o2 c) );
      ( 2,
        let* a = atom and* b = atom in
        return (Printf.sprintf "acc = acc + (if (%s < %s) { 1 } else { 2 });" a b) );
      ( 1,
        let* a = atom and* x = atom in
        return (Printf.sprintf "acc = acc + poly(%s, %s);" a x) );
      ( 1,
        let* e = atom in
        return (Printf.sprintf "cell.v = cell.v + %s; acc = acc + cell.v;" e) );
      ( 1,
        let* e = atom and* i = atom in
        return
          (Printf.sprintf "ar[abs(%s) %% 4] = %s; acc = acc + ar[abs(acc) %% 4];" i e)
      );
    ]

let gen_program : string QCheck.Gen.t =
  let open QCheck.Gen in
  let* n = int_range 2 6 in
  let* lines = list_repeat n (gen_line ~vars:[ "a"; "i"; "acc" ]) in
  let* bound = int_range 3 9 in
  let f =
    Printf.sprintf
      {|def f(a: Int): Int = {
  var acc = 0;
  val cell = new Cell(a);
  val ar = new Array[Int](4);
  var i = 0;
  while (i < %d) {
    %s
    i = i + 1;
  };
  acc
}|}
      bound
      (String.concat "\n    " lines)
  in
  let main =
    {|def main(): Unit = {
  var i = 0;
  while (i < 10) { println(f(i)); i = i + 1; }
}|}
  in
  return (prelude ^ f ^ "\n" ^ main)

let program_arbitrary = QCheck.make ~print:(fun s -> s) gen_program

let compile_ok src =
  match Frontend.Pipeline.compile src with
  | Ok prog -> prog
  | Error e ->
      QCheck.Test.fail_reportf "generated program does not compile: %s@.%s"
        (Frontend.Pipeline.error_to_string e)
        src

let vm_snap ?fusion (backend : Runtime.Interp.backend) (src : string) : snap =
  let prog = compile_ok src in
  let vm = Runtime.Interp.create ~backend prog in
  (match fusion with Some f -> vm.fusion <- f | None -> ());
  let v = Runtime.Interp.run_main vm in
  {
    output = Runtime.Interp.output vm;
    results = [ Runtime.Values.to_string v ];
    cycles = vm.cycles;
    steps = vm.steps;
    profile = Runtime.Profile.to_text vm.profiles;
    installed = 0;
  }

let same what (ref_ : snap) (thr : snap) =
  if ref_ <> thr then
    QCheck.Test.fail_reportf
      "%s diverged:@.cycles %d vs %d, steps %d vs %d@.output %S vs %S" what
      ref_.cycles thr.cycles ref_.steps thr.steps ref_.output thr.output;
  true

let prop_threaded_interp =
  QCheck.Test.make ~name:"threaded = reference on random programs (interp)"
    ~count:50 program_arbitrary (fun src ->
      let thr = vm_snap ~fusion:eager Runtime.Interp.Threaded src in
      ignore (same "thr=ref" (vm_snap Runtime.Interp.Reference src) thr);
      same "thr=pre" (vm_snap Runtime.Interp.Prepared src) thr)

let engine_snap ?fusion (backend : Runtime.Interp.backend) (src : string) : snap =
  let prog = compile_ok src in
  let engine =
    Jit.Engine.create prog
      {
        name = "thr-diff";
        compiler = Some (Util.incremental ());
        hotness_threshold = 2;
        compile_cost_per_node = 50;
        verify = false;
      }
  in
  engine.vm.backend <- backend;
  (match fusion with Some f -> engine.vm.fusion <- f | None -> ());
  let v = Jit.Engine.run_main engine in
  {
    output = Jit.Engine.output engine;
    results = [ Runtime.Values.to_string v ];
    cycles = engine.vm.cycles;
    steps = engine.vm.steps;
    profile = Runtime.Profile.to_text engine.vm.profiles;
    installed = Jit.Engine.installed_methods engine;
  }

let prop_threaded_tiered =
  QCheck.Test.make ~name:"threaded = reference on random programs (tiered)"
    ~count:25 program_arbitrary (fun src ->
      same "tiered"
        (engine_snap Runtime.Interp.Reference src)
        (engine_snap ~fusion:eager Runtime.Interp.Threaded src))

(* ---------- fusion regression: block-entry profile cells ---------- *)

(* A hot loop whose body is one long fusable run. Once past the fusion
   thresholds the whole run lowers to a single fused handler sitting
   right behind the block-entry profile cell. The regression this pins:
   the fused segment must still count every constituent op (steps), must
   charge exactly [Cost.fused_cost] (= the unfused sum, so the clock
   agrees with the reference at every call boundary), and the block
   profile counts must keep ticking identically. *)

let hot_src =
  {|def bench(): Int = {
  var acc = 0;
  var i = 0;
  while (i < 25) {
    acc = acc + i * 3 - (i / 2) + (acc % 7);
    acc = acc + (i - 1) * 2;
    i = i + 1;
  };
  acc
}
def main(): Unit = { println(bench()) }|}

let warm_vm (backend : Runtime.Interp.backend) ~(calls : int) :
    Runtime.Interp.vm * int list =
  let prog = Util.compile hot_src in
  let vm = Runtime.Interp.create ~backend prog in
  ignore (Runtime.Interp.run_main vm);
  let deltas = ref [] in
  for _ = 1 to calls do
    let c0 = vm.cycles in
    ignore (Runtime.Interp.run_meth vm "bench" [ Runtime.Values.Vunit ]);
    deltas := (vm.cycles - c0) :: !deltas
  done;
  (vm, List.rev !deltas)

let test_fused_block_profile () =
  (* default thresholds: fuse_invocations = 32, so the first ~31 calls run
     the cold (unfused) lowering and the rest run fused — the per-call
     cycle delta must not move across that boundary, and must equal the
     reference walker's delta for every call *)
  let calls = 50 in
  let rvm, rdeltas = warm_vm Runtime.Interp.Reference ~calls in
  let tvm, tdeltas = warm_vm Runtime.Interp.Threaded ~calls in
  Alcotest.(check (list int))
    "per-call cycle deltas identical across the fusion boundary" rdeltas tdeltas;
  Alcotest.(check int) "steps" rvm.steps tvm.steps;
  Alcotest.(check int) "cycles" rvm.cycles tvm.cycles;
  Alcotest.(check string) "folded profiles"
    (Runtime.Profile.to_text rvm.profiles)
    (Runtime.Profile.to_text tvm.profiles);
  let stats = Runtime.Interp.superinst_stats tvm in
  Alcotest.(check bool) "superinstructions were mined" true (stats <> []);
  Alcotest.(check bool) "some fused pattern has >= 2 constituents" true
    (List.exists
       (fun (s : Runtime.Interp.sstat) -> String.contains s.ss_pattern ';')
       stats);
  Alcotest.(check bool) "reference mines nothing" true
    (Runtime.Interp.superinst_stats rvm = [])

(* The fused total is definitionally the unfused sum — pin the arithmetic
   the handler's trap fix-up path relies on (prefix sums over this). *)
let test_fused_cost_identity () =
  let dispatch = 7 and costs = [ 3; 0; 11; 2 ] in
  Alcotest.(check int) "fused_cost = sum of dispatch + static"
    (List.fold_left (fun a c -> a + dispatch + c) 0 costs)
    (Runtime.Cost.fused_cost ~dispatch costs)

(* ---------- traps landing mid-segment ---------- *)

(* The fused handler batches its step/cycle bookkeeping, then unwinds it
   when a constituent traps. Sweep the step budget across a window that
   straddles fused segments: every landing point must report the same
   message, steps, cycles and output as the reference walker. *)

let budget_snap (backend : Runtime.Interp.backend) (extra : int) :
    string * int * int * string =
  let prog = Util.compile hot_src in
  let vm = Runtime.Interp.create ~backend prog in
  if backend = Runtime.Interp.Threaded then
    vm.fusion <- { eager with fuse_invocations = 2 };
  ignore (Runtime.Interp.run_main vm);
  (* warm past the (eager) threshold so the next call runs fused *)
  for _ = 1 to 4 do
    ignore (Runtime.Interp.run_meth vm "bench" [ Runtime.Values.Vunit ])
  done;
  vm.max_steps <- vm.steps + extra;
  let msg =
    match Runtime.Interp.run_meth vm "bench" [ Runtime.Values.Vunit ] with
    | v -> "no trap: " ^ Runtime.Values.to_string v
    | exception Runtime.Values.Trap m -> m
  in
  (msg, vm.steps, vm.cycles, Runtime.Interp.output vm)

let test_budget_mid_segment () =
  for extra = 1 to 40 do
    let rmsg, rsteps, rcycles, rout = budget_snap Runtime.Interp.Reference extra in
    let tmsg, tsteps, tcycles, tout = budget_snap Runtime.Interp.Threaded extra in
    let what = Printf.sprintf "budget +%d" extra in
    Alcotest.(check string) (what ^ ": message") rmsg tmsg;
    Alcotest.(check int) (what ^ ": steps") rsteps tsteps;
    Alcotest.(check int) (what ^ ": cycles") rcycles tcycles;
    Alcotest.(check string) (what ^ ": output") rout tout
  done

(* Division by zero inside what fuses into a segment: the trap must
   surface at the exact same steps/cycles as stepwise execution. *)
let test_trap_mid_segment () =
  let src =
    {|def bench(d: Int): Int = {
  var acc = 0;
  var i = 0;
  while (i < 6) {
    acc = acc + i * 2;
    acc = acc + 100 / (d - i);
    acc = acc - 1;
    i = i + 1;
  };
  acc
}
def main(): Unit = { println(bench(100)) }|}
  in
  let snap backend =
    let prog = Util.compile src in
    let vm = Runtime.Interp.create ~backend prog in
    if backend = Runtime.Interp.Threaded then
      vm.fusion <- { eager with fuse_invocations = 2 };
    ignore (Runtime.Interp.run_main vm);
    for _ = 1 to 4 do
      ignore
        (Runtime.Interp.run_meth vm "bench"
           [ Runtime.Values.Vunit; Runtime.Values.Vint 100 ])
    done;
    (* now trap mid-loop: d = 3 divides by zero on iteration i = 3 *)
    let msg =
      match
        Runtime.Interp.run_meth vm "bench"
          [ Runtime.Values.Vunit; Runtime.Values.Vint 3 ]
      with
      | v -> "no trap: " ^ Runtime.Values.to_string v
      | exception Runtime.Values.Trap m -> m
    in
    (msg, vm.steps, vm.cycles, Runtime.Profile.to_text vm.profiles)
  in
  let rmsg, rsteps, rcycles, rprof = snap Runtime.Interp.Reference in
  let tmsg, tsteps, tcycles, tprof = snap Runtime.Interp.Threaded in
  Alcotest.(check string) "message" rmsg tmsg;
  Alcotest.(check int) "steps at trap" rsteps tsteps;
  Alcotest.(check int) "cycles at trap" rcycles tcycles;
  Alcotest.(check string) "profiles at trap" rprof tprof

(* ---------- mined-table determinism ---------- *)

let table_text (stats : Runtime.Interp.sstat list) : string =
  String.concat "\n"
    (List.map
       (fun (s : Runtime.Interp.sstat) ->
         Printf.sprintf "%s sites=%d weight=%d" s.ss_pattern s.ss_sites
           s.ss_weight)
       stats)

let test_superinst_determinism () =
  let mine () =
    let vm, _ = warm_vm Runtime.Interp.Threaded ~calls:50 in
    table_text (Runtime.Interp.superinst_stats vm)
  in
  let t1 = mine () and t2 = mine () in
  Alcotest.(check bool) "table nonempty" true (t1 <> "");
  Alcotest.(check string) "same run, same mined table" t1 t2

let () =
  Alcotest.run "threaded"
    [
      ( "workloads",
        [
          test "all workloads, three-way, interpreter only" test_workloads_threaded;
          test "workload subset, tiered with invalidation"
            test_workloads_tiered_threaded;
        ] );
      ( "random",
        [
          QCheck_alcotest.to_alcotest prop_threaded_interp;
          QCheck_alcotest.to_alcotest prop_threaded_tiered;
        ] );
      ( "fusion",
        [
          test "fused segments keep block profiles and costs exact"
            test_fused_block_profile;
          test "fused_cost is the unfused sum" test_fused_cost_identity;
        ] );
      ( "traps",
        [
          test "step budget lands identically mid-segment" test_budget_mid_segment;
          test "constituent traps unwind batched bookkeeping" test_trap_mid_segment;
        ] );
      ( "determinism",
        [ test "mined superinstruction table is deterministic" test_superinst_determinism ] );
    ]
