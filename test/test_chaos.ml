(* Robustness suite: compilation bailouts, exponential backoff,
   blacklisting, the compile-fuel watchdog, and the deterministic chaos
   fault plan.

   The contract under test is the engine's graceful-degradation
   guarantee: under ANY fault sequence the program's observable behavior
   is bit-identical to the pure interpreter, and the engine converges —
   a method whose compilations keep failing is blacklisted after the cap
   and never consumes compile cycles again. *)

open Util

(* A method hot enough to cross any small threshold many times over. *)
let hot_src =
  {|def f(x: Int): Int = x * 2 + 1
def main(): Unit = {
  var i = 0;
  var acc = 0;
  while (i < 40) { acc = acc + f(i); i = i + 1; }
  println(acc);
}|}

let make ?(hotness = 4) ?max_compile_failures ?compile_fuel ?spec_miss_threshold
    (src : string) (compiler : Jit.Engine.compiler option) : Jit.Engine.t =
  let prog = Util.compile src in
  Jit.Engine.create ?max_compile_failures ?compile_fuel ?spec_miss_threshold prog
    {
      name = "chaos-test";
      compiler;
      hotness_threshold = hotness;
      compile_cost_per_node = 50;
      verify = true;
    }

(* ---------- backoff and blacklist ---------- *)

(* A compiler that always dies records at which invocation counts the
   engine retried it. With hotness 4 and the doubling cooldown the
   attempts must land exactly at pre-increment counts 3, 6 and 13 —
   calls #4, #7 and #14 — and then never again: the method is
   blacklisted at the third failure. *)
let test_backoff_doubling () =
  let attempts = ref [] in
  let crashing : Jit.Engine.compiler =
   fun _ profiles m ->
    attempts := (m, Runtime.Profile.invocation_count profiles m) :: !attempts;
    failwith "deliberate compiler crash"
  in
  let e = make hot_src (Some crashing) in
  ignore (Jit.Engine.run_main e);
  let f_id =
    match Ir.Program.find_meth e.vm.prog "f" with
    | Some m -> m
    | None -> Alcotest.fail "no f"
  in
  let f_attempts =
    List.rev_map snd (List.filter (fun (m, _) -> m = f_id) !attempts)
  in
  Alcotest.(check (list int)) "attempts at doubling cooldowns" [ 3; 6; 13 ] f_attempts;
  let stats = Jit.Engine.bailout_stats e in
  Alcotest.(check int) "three failed attempts" 3 stats.failed_attempts;
  Alcotest.(check bool) "f blacklisted" true (Jit.Engine.blacklisted e f_id);
  Alcotest.(check (list int)) "blacklist lists f" [ f_id ] stats.blacklisted_methods;
  (* failure metadata on the recorded bailouts: failures count up and only
     the final one blacklists *)
  let by_time = List.rev e.bailouts in
  Alcotest.(check (list int)) "failure counts" [ 1; 2; 3 ]
    (List.map (fun (b : Jit.Engine.bailout) -> b.failures) by_time);
  Alcotest.(check (list bool)) "only the last blacklists" [ false; false; true ]
    (List.map (fun (b : Jit.Engine.bailout) -> b.blacklisted) by_time);
  (* each dead attempt charged the cycles it burned *)
  Alcotest.(check bool) "compile cycles charged" true (e.compile_cycles > 0);
  List.iter
    (fun (b : Jit.Engine.bailout) ->
      Alcotest.(check bool) "per-attempt charge positive" true (b.charged > 0))
    by_time;
  (* and the program still ran to completion on the interpreter *)
  Alcotest.(check int) "nothing installed" 0 (Jit.Engine.installed_methods e);
  Alcotest.(check string) "output intact" "1600\n" (Jit.Engine.output e)

(* Convergence: once blacklisted, the compiler is never called again no
   matter how many further invocations arrive. *)
let test_blacklist_converges () =
  let calls = ref 0 in
  let crashing : Jit.Engine.compiler = fun _ _ _ -> incr calls; failwith "boom" in
  let e = make ~hotness:2 ~max_compile_failures:2 hot_src (Some crashing) in
  ignore (Jit.Engine.run_main e);
  Alcotest.(check bool) "attempts capped" true (!calls <= 4);
  (* keep invoking until every hot method has exhausted its cap; the
     bound covers three compile subjects, two attempts each: main, f,
     and the OSR continuation of main's loop (its header crosses the
     backedge threshold across these invocations) *)
  for _ = 1 to 10 do
    ignore (Jit.Engine.run_meth e "main" [ Runtime.Values.Vunit ])
  done;
  let after_loop = !calls in
  Alcotest.(check bool) "attempts capped after cooldowns" true (after_loop <= 6);
  (* ... then nothing may ever re-enter compilation *)
  for _ = 1 to 5 do
    ignore (Jit.Engine.run_meth e "main" [ Runtime.Values.Vunit ])
  done;
  Alcotest.(check int) "no attempts after blacklist" after_loop !calls;
  let stats = Jit.Engine.bailout_stats e in
  Alcotest.(check bool) "methods blacklisted" true
    (stats.blacklisted_methods <> [])

(* The failure cap is per method: a method that succeeds after one
   failure is *not* blacklisted and installs normally. *)
let test_transient_failure_recovers () =
  let attempt = ref 0 in
  let flaky : Jit.Engine.compiler =
   fun prog _ m ->
    incr attempt;
    if !attempt = 1 then failwith "transient";
    match (Ir.Program.meth prog m).body with
    | Some fn -> Ir.Fn.copy fn
    | None -> Alcotest.fail "no body"
  in
  let e = make hot_src (Some flaky) in
  ignore (Jit.Engine.run_main e);
  Alcotest.(check bool) "recovered and installed" true
    (Jit.Engine.installed_methods e > 0);
  let stats = Jit.Engine.bailout_stats e in
  Alcotest.(check int) "one bailout recorded" 1 stats.failed_attempts;
  Alcotest.(check (list int)) "nothing blacklisted" [] stats.blacklisted_methods;
  Alcotest.(check string) "output intact" "1600\n" (Jit.Engine.output e)

(* ---------- the compile-fuel watchdog ---------- *)

(* A call chain deep enough for several inlining rounds. *)
let deep_src =
  {|def leaf(x: Int): Int = x + 1
def mid(x: Int): Int = leaf(x) + leaf(x + 1)
def top(x: Int): Int = mid(x) + mid(x + 2)
def bench(): Int = {
  var acc = 0;
  var i = 0;
  while (i < 30) { acc = acc + top(i); i = i + 1; }
  acc
}
def main(): Unit = { println(bench()) }|}

(* Budget scan: under every budget the watchdog either aborts the
   compilation entirely (Fuel.Exhausted escapes: not even one round
   finished) or returns a body that passes the verifier. Tiny budgets
   must abort; generous ones must complete with the same result as an
   unbounded compile. *)
let test_watchdog_budget_scan () =
  let prog = Util.compile deep_src in
  Opt.Driver.prepare_program prog;
  let vm = Runtime.Interp.create prog in
  for _ = 1 to 5 do
    ignore (Runtime.Interp.run_main vm)
  done;
  let m =
    match Ir.Program.find_meth prog "bench" with
    | Some m -> m
    | None -> Alcotest.fail "no bench"
  in
  let unbounded =
    Inliner.Algorithm.compile prog vm.profiles Inliner.Params.default m
  in
  Util.check_verifies unbounded.body;
  let aborted = ref 0 and partial = ref 0 and complete = ref 0 in
  for budget = 1 to 80 do
    match
      Support.Fuel.with_budget budget (fun () ->
          Inliner.Algorithm.compile prog vm.profiles Inliner.Params.default m)
    with
    | exception Support.Fuel.Exhausted -> incr aborted
    | result ->
        Util.check_verifies result.body;
        Alcotest.(check bool) "at least one round completed" true
          (result.stats.rounds >= 1);
        if result.stats.rounds < unbounded.stats.rounds then incr partial
        else incr complete
  done;
  Alcotest.(check bool) "tiny budgets abort entirely" true (!aborted > 0);
  Alcotest.(check bool) "generous budgets complete" true (!complete > 0);
  Alcotest.(check bool) "watchdog exercised across the scan" true
    (!aborted + !partial + !complete = 80)

(* Through the engine: a starved per-compilation budget must degrade to
   bailouts (soft failures feeding the backoff path), never break the
   program, and a generous one must compile normally. *)
let test_engine_compile_fuel () =
  let interp = make hot_src None in
  ignore (Jit.Engine.run_main interp);
  let starved = make ~compile_fuel:1 hot_src (Some (Util.incremental ())) in
  ignore (Jit.Engine.run_main starved);
  Alcotest.(check string) "starved output = interp output"
    (Jit.Engine.output interp) (Jit.Engine.output starved);
  Alcotest.(check bool) "fuel exhaustion recorded as bailouts" true
    ((Jit.Engine.bailout_stats starved).failed_attempts > 0);
  List.iter
    (fun (b : Jit.Engine.bailout) ->
      Alcotest.(check string) "bailout reason" "fuel exhausted" b.reason)
    starved.bailouts;
  let roomy = make ~compile_fuel:100_000 hot_src (Some (Util.incremental ())) in
  ignore (Jit.Engine.run_main roomy);
  Alcotest.(check int) "generous budget: no bailouts" 0
    (Jit.Engine.bailout_stats roomy).failed_attempts;
  Alcotest.(check bool) "generous budget compiles" true
    (Jit.Engine.installed_methods roomy > 0)

(* ---------- chaos: determinism ---------- *)

let chaos_trace ~seed ~rate (src : string) : string list * string =
  let sink, lines = Obs.Trace.memory_sink () in
  let out =
    Obs.Trace.scoped sink (fun () ->
        Support.Chaos.scoped ~seed ~rate (fun () ->
            let e = make ~hotness:3 src (Some (Util.incremental ())) in
            ignore (Jit.Engine.run_main e);
            Jit.Engine.output e))
  in
  (lines (), out)

(* Same (seed, rate) → byte-identical trace, fault for fault. A different
   seed must eventually produce a different fault plan. *)
let test_chaos_deterministic () =
  let t1, o1 = chaos_trace ~seed:42 ~rate:0.5 deep_src in
  let t2, o2 = chaos_trace ~seed:42 ~rate:0.5 deep_src in
  Alcotest.(check (list string)) "same seed: identical traces" t1 t2;
  Alcotest.(check string) "same seed: identical output" o1 o2;
  let different =
    List.exists
      (fun seed -> fst (chaos_trace ~seed ~rate:0.5 deep_src) <> t1)
      [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check bool) "some other seed diverges the fault plan" true different

(* ---------- chaos: invalidation storms ---------- *)

(* Storms throw away installed code but are bounded by max_recompiles, so
   even rate 1.0 converges: after the cap the code stays installed. *)
let test_invalidation_storm_bounded () =
  let interp = make hot_src None in
  ignore (Jit.Engine.run_main interp);
  for _ = 1 to 3 do
    ignore (Jit.Engine.run_meth interp "main" [ Runtime.Values.Vunit ])
  done;
  let copying : Jit.Engine.compiler =
   fun prog _ m ->
    match (Ir.Program.meth prog m).body with
    | Some fn -> Ir.Fn.copy fn
    | None -> Alcotest.fail "no body"
  in
  let e = make hot_src (Some copying) in
  (* install code before the fault plan goes live: at rate 1.0 every
     in-plan compile attempt is killed, so nothing would install *)
  ignore (Jit.Engine.run_main e);
  Alcotest.(check bool) "installed before the storm" true
    (Jit.Engine.installed_methods e > 0);
  Support.Chaos.scoped ~seed:7 ~rate:1.0 (fun () ->
      for _ = 1 to 3 do
        ignore (Jit.Engine.run_meth e "main" [ Runtime.Values.Vunit ])
      done);
  Alcotest.(check string) "output survives the storm" (Jit.Engine.output interp)
    (Jit.Engine.output e);
  Alcotest.(check bool) "storms invalidated code" true
    (List.length e.invalidations > 0);
  (* boundedness: no method is invalidated more than max_recompiles *)
  let per_meth = Hashtbl.create 8 in
  List.iter
    (fun (m, _) ->
      Hashtbl.replace per_meth m
        (1 + Option.value ~default:0 (Hashtbl.find_opt per_meth m)))
    e.invalidations;
  Hashtbl.iter
    (fun _ n ->
      Alcotest.(check bool) "invalidations bounded by max_recompiles" true
        (n <= e.max_recompiles))
    per_meth

(* ---------- chaos: the differential property ---------- *)

(* Observable behavior one run exposes to the program. *)
type obs = { output : string; results : string list }

let interp_obs (src : string) ~(extra : int) : obs =
  let e = make src None in
  let results = ref [ Runtime.Values.to_string (Jit.Engine.run_main e) ] in
  for _ = 1 to extra do
    results :=
      Runtime.Values.to_string (Jit.Engine.run_meth e "main" [ Runtime.Values.Vunit ])
      :: !results
  done;
  { output = Jit.Engine.output e; results = List.rev !results }

let chaos_obs ~seed ~rate (src : string) ~(extra : int) : obs * Jit.Engine.t =
  Support.Chaos.scoped ~seed ~rate (fun () ->
      let e = make ~hotness:3 src (Some (Util.incremental ())) in
      let results = ref [ Runtime.Values.to_string (Jit.Engine.run_main e) ] in
      for _ = 1 to extra do
        results :=
          Runtime.Values.to_string
            (Jit.Engine.run_meth e "main" [ Runtime.Values.Vunit ])
          :: !results
      done;
      ({ output = Jit.Engine.output e; results = List.rev !results }, e))

(* Workload sources for the property: distinct shapes — straight-line
   hot loop, deep call chain, polymorphic dispatch. *)
let poly_src =
  {|abstract class Shape { def area(): Int }
class Sq(s: Int) extends Shape { def area(): Int = this.s * this.s }
class Rect(w: Int, h: Int) extends Shape { def area(): Int = this.w * this.h }
def pick(i: Int): Shape = if (i % 2 == 0) { new Sq(i) } else { new Rect(i, i + 1) }
def main(): Unit = {
  var i = 0;
  var acc = 0;
  while (i < 40) { acc = acc + pick(i).area(); i = i + 1; }
  println(acc);
}|}

let property_sources = [ hot_src; deep_src; poly_src ]

(* Under ANY fault plan (seed × rate × program), the tiered engine with
   chaos must be output- and result-identical to the pure interpreter,
   no exception may escape, and no method may fail more often than the
   blacklist cap allows (blacklisted methods stop retrying). *)
let prop_chaos_differential =
  let gen =
    QCheck.Gen.(
      triple (int_bound 99_999)
        (oneofl [ 0.1; 0.3; 0.5; 0.8; 1.0 ])
        (int_bound (List.length property_sources - 1)))
  in
  let arb =
    QCheck.make
      ~print:(fun (seed, rate, i) ->
        Printf.sprintf "seed=%d rate=%.1f program=%d" seed rate i)
      gen
  in
  QCheck.Test.make ~name:"tiered-with-faults = pure interpreter" ~count:60 arb
    (fun (seed, rate, i) ->
      let src = List.nth property_sources i in
      let reference = interp_obs src ~extra:2 in
      let faulted, e = chaos_obs ~seed ~rate src ~extra:2 in
      if reference.output <> faulted.output then
        QCheck.Test.fail_reportf "output diverged under faults: %S vs %S"
          reference.output faulted.output;
      if reference.results <> faulted.results then
        QCheck.Test.fail_reportf "results diverged under faults";
      (* convergence: nobody fails past the cap, and every blacklisted
         method's failure count is exactly the cap *)
      Hashtbl.iter
        (fun m n ->
          if n > e.max_compile_failures then
            QCheck.Test.fail_reportf "method %d failed %d > cap" m n;
          if Jit.Engine.blacklisted e m && n <> e.max_compile_failures then
            QCheck.Test.fail_reportf "method %d blacklisted at %d failures" m n)
        e.failure_counts;
      true)

(* At rate 1.0 every compilation fails, so the faulted engine must match
   the interpreter not just observably but on the execution clock: same
   cycles, same steps — proof that bailouts leave zero residue on the
   mutator. *)
let prop_chaos_rate1_exact =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 99_999) in
  QCheck.Test.make ~name:"rate 1.0: cycles and steps equal interpreter" ~count:20
    arb (fun seed ->
      List.for_all
        (fun src ->
          let interp = make src None in
          ignore (Jit.Engine.run_main interp);
          Support.Chaos.scoped ~seed ~rate:1.0 (fun () ->
              let e = make ~hotness:3 src (Some (Util.incremental ())) in
              ignore (Jit.Engine.run_main e);
              if Jit.Engine.installed_methods e <> 0 then
                QCheck.Test.fail_reportf "rate 1.0 installed code";
              if Jit.Engine.output e <> Jit.Engine.output interp then
                QCheck.Test.fail_reportf "output diverged";
              if e.vm.cycles <> interp.vm.cycles then
                QCheck.Test.fail_reportf "cycles diverged: %d vs %d" e.vm.cycles
                  interp.vm.cycles;
              if e.vm.steps <> interp.vm.steps then
                QCheck.Test.fail_reportf "steps diverged";
              true))
        property_sources)

let () =
  Alcotest.run "chaos"
    [
      ( "bailout",
        [
          test "backoff doubles and blacklists at the cap" test_backoff_doubling;
          test "blacklisted methods stop retrying" test_blacklist_converges;
          test "transient failure recovers" test_transient_failure_recovers;
        ] );
      ( "watchdog",
        [
          test "budget scan: abort or verifiable body" test_watchdog_budget_scan;
          test "engine compile-fuel degrades gracefully" test_engine_compile_fuel;
        ] );
      ( "chaos",
        [
          test "fault plan is seed-deterministic" test_chaos_deterministic;
          test "invalidation storms are bounded" test_invalidation_storm_bounded;
          QCheck_alcotest.to_alcotest prop_chaos_differential;
          QCheck_alcotest.to_alcotest prop_chaos_rate1_exact;
        ] );
    ]
