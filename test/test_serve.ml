(* Tests for the serving subsystem: the bounded prioritized compile
   queue (Jit.Scheduler), the bounded code cache (Jit.Codecache), their
   integration in the engine (eviction exactness across backends,
   evicted-then-rehot recompilation, queue-mode and deadline
   degradation), and the multi-tenant driver (Jit.Serve) — spec parsing,
   id-derived seeding, and the solo-vs-fleet isolation invariant,
   including a pathological tenant that cannot perturb its neighbors. *)

open Util

(* ---------- compile-queue scheduler ---------- *)

let scheduler_tests =
  [
    test "score grows with hotness and age and clamps negatives" (fun () ->
        Alcotest.(check int) "age 0" 5
          (Jit.Scheduler.score ~hotness:5 ~age:0 ~age_unit:64);
        Alcotest.(check int) "one age unit adds one hotness" 10
          (Jit.Scheduler.score ~hotness:5 ~age:64 ~age_unit:64);
        Alcotest.(check int) "negative age clamps" 5
          (Jit.Scheduler.score ~hotness:5 ~age:(-1000) ~age_unit:64);
        Alcotest.(check int) "negative hotness clamps" 0
          (Jit.Scheduler.score ~hotness:(-3) ~age:500 ~age_unit:64));
    test "score saturates instead of wrapping negative" (fun () ->
        (* the PR 7 overflow class: a wrapped product would rank an
           ancient request below a fresh one, inverting anti-starvation *)
        Alcotest.(check int) "max x max saturates" max_int
          (Jit.Scheduler.score ~hotness:max_int ~age:max_int ~age_unit:1);
        List.iter
          (fun (h, a) ->
            Alcotest.(check bool)
              (Printf.sprintf "non-negative at %d/%d" h a)
              true
              (Jit.Scheduler.score ~hotness:h ~age:a ~age_unit:1 >= 0))
          [ (max_int / 2, max_int / 2); (max_int, 1); (3, max_int) ]);
    test "a waiting request eventually outscores any fixed hotness" (fun () ->
        Alcotest.(check bool) "age beats hotness" true
          (Jit.Scheduler.score ~hotness:1 ~age:(1000 * 64) ~age_unit:64
          > Jit.Scheduler.score ~hotness:1000 ~age:0 ~age_unit:64));
    test "admission: admit, bump, reject, displace" (fun () ->
        let q = Jit.Scheduler.create ~capacity:2 ~age_unit:64 in
        Alcotest.(check bool) "a admitted" true
          (Jit.Scheduler.enqueue q ~meth:"a" ~hotness:5 ~now:0
          = Jit.Scheduler.Admitted);
        Alcotest.(check bool) "a bumped on re-offer" true
          (Jit.Scheduler.enqueue q ~meth:"a" ~hotness:9 ~now:0
          = Jit.Scheduler.Bumped);
        Alcotest.(check bool) "b admitted" true
          (Jit.Scheduler.enqueue q ~meth:"b" ~hotness:3 ~now:0
          = Jit.Scheduler.Admitted);
        (* full: a cheap request is rejected on arrival *)
        Alcotest.(check bool) "c rejected" true
          (Jit.Scheduler.enqueue q ~meth:"c" ~hotness:1 ~now:0
          = Jit.Scheduler.Rejected);
        (* full: a hot request displaces the cheapest waiting one *)
        Alcotest.(check bool) "d displaces b" true
          (Jit.Scheduler.enqueue q ~meth:"d" ~hotness:50 ~now:0
          = Jit.Scheduler.Displaced "b");
        Alcotest.(check bool) "b gone" false (Jit.Scheduler.mem q "b");
        (* an exact tie loses: the incumbents have waited longer *)
        Alcotest.(check bool) "tie rejected" true
          (Jit.Scheduler.enqueue q ~meth:"e" ~hotness:9 ~now:0
          = Jit.Scheduler.Rejected);
        Alcotest.(check int) "still two waiting" 2 (Jit.Scheduler.length q));
    test "pop: priority order, busy window, wait accounting" (fun () ->
        let q = Jit.Scheduler.create ~capacity:4 ~age_unit:64 in
        ignore (Jit.Scheduler.enqueue q ~meth:"cold" ~hotness:2 ~now:0);
        ignore (Jit.Scheduler.enqueue q ~meth:"hot" ~hotness:5 ~now:10);
        (match Jit.Scheduler.pop q ~now:20 with
        | Some (m, wait) ->
            Alcotest.(check string) "hottest first" "hot" m;
            Alcotest.(check int) "waited since enqueue" 10 wait
        | None -> Alcotest.fail "idle compiler refused a pop");
        Jit.Scheduler.occupy q ~until:100;
        Alcotest.(check bool) "busy compiler pops nothing" true
          (Jit.Scheduler.pop q ~now:50 = None);
        (* occupy is monotone: a shorter horizon never frees it early *)
        Jit.Scheduler.occupy q ~until:60;
        Alcotest.(check bool) "horizon kept" true
          (Jit.Scheduler.pop q ~now:90 = None);
        (match Jit.Scheduler.pop q ~now:100 with
        | Some (m, wait) ->
            Alcotest.(check string) "backlog drains" "cold" m;
            Alcotest.(check int) "full wait" 100 wait
        | None -> Alcotest.fail "free compiler refused the backlog");
        Alcotest.(check bool) "empty queue pops nothing" true
          (Jit.Scheduler.pop q ~now:200 = None));
    test "pop ties go to the longest-waiting request" (fun () ->
        let q = Jit.Scheduler.create ~capacity:4 ~age_unit:64 in
        ignore (Jit.Scheduler.enqueue q ~meth:"first" ~hotness:5 ~now:0);
        ignore (Jit.Scheduler.enqueue q ~meth:"second" ~hotness:5 ~now:0);
        match Jit.Scheduler.pop q ~now:0 with
        | Some (m, _) -> Alcotest.(check string) "oldest wins" "first" m
        | None -> Alcotest.fail "no pop");
    test "capacity 0 sheds every request" (fun () ->
        let q = Jit.Scheduler.create ~capacity:0 ~age_unit:64 in
        Alcotest.(check bool) "rejected" true
          (Jit.Scheduler.enqueue q ~meth:"a" ~hotness:1000 ~now:0
          = Jit.Scheduler.Rejected);
        Alcotest.(check int) "nothing waits" 0 (Jit.Scheduler.length q));
    test "remove drops a waiting request" (fun () ->
        let q = Jit.Scheduler.create ~capacity:4 ~age_unit:64 in
        ignore (Jit.Scheduler.enqueue q ~meth:"a" ~hotness:5 ~now:0);
        Jit.Scheduler.remove q "a";
        Alcotest.(check bool) "gone" false (Jit.Scheduler.mem q "a");
        Alcotest.(check bool) "nothing to pop" true
          (Jit.Scheduler.pop q ~now:10 = None));
  ]

(* ---------- code cache ---------- *)

let codecache_tests =
  [
    test "retain_score: cost-benefit shape, saturating, non-negative" (fun () ->
        Alcotest.(check int) "recency + uses - size" 200
          (Jit.Codecache.retain_score ~last_used:100 ~uses:2 ~size:28);
        Alcotest.(check int) "big bodies clamp to 0, not negative" 0
          (Jit.Codecache.retain_score ~last_used:10 ~uses:0 ~size:10_000);
        Alcotest.(check int) "saturates at max_int" max_int
          (Jit.Codecache.retain_score ~last_used:max_int ~uses:max_int ~size:0);
        Alcotest.(check bool) "never negative" true
          (Jit.Codecache.retain_score ~last_used:max_int ~uses:1 ~size:max_int
          >= 0));
    test "capacity 0 evicts every install immediately" (fun () ->
        let c = Jit.Codecache.create ~capacity:0 in
        Alcotest.(check (list string)) "self-eviction" [ "m" ]
          (Jit.Codecache.install c ~meth:"m" ~size:5 ~now:0);
        Alcotest.(check int) "nothing resident" 0 (Jit.Codecache.resident c);
        Alcotest.(check int) "nothing used" 0 (Jit.Codecache.used c));
    test "capacity 1 with a bigger body behaves like capacity 0" (fun () ->
        let c = Jit.Codecache.create ~capacity:1 in
        Alcotest.(check (list string)) "self-eviction" [ "m" ]
          (Jit.Codecache.install c ~meth:"m" ~size:2 ~now:0);
        (* a body that fits stays *)
        Alcotest.(check (list string)) "exact fit stays" []
          (Jit.Codecache.install c ~meth:"tiny" ~size:1 ~now:1);
        Alcotest.(check bool) "resident" true (Jit.Codecache.mem c "tiny"));
    test "install evicts the lowest-retention entry first" (fun () ->
        let c = Jit.Codecache.create ~capacity:10 in
        Alcotest.(check (list string)) "a fits" []
          (Jit.Codecache.install c ~meth:"a" ~size:6 ~now:0);
        Alcotest.(check (list string)) "b fits" []
          (Jit.Codecache.install c ~meth:"b" ~size:4 ~now:100);
        Alcotest.(check int) "full" 10 (Jit.Codecache.used c);
        (* a (stale, big) scores below b (fresh): a goes *)
        Alcotest.(check (list string)) "a evicted" [ "a" ]
          (Jit.Codecache.install c ~meth:"c" ~size:1 ~now:200);
        Alcotest.(check bool) "b survived" true (Jit.Codecache.mem c "b");
        Alcotest.(check int) "accounting" 5 (Jit.Codecache.used c));
    test "touch refreshes retention and protects hot code" (fun () ->
        let c = Jit.Codecache.create ~capacity:10 in
        ignore (Jit.Codecache.install c ~meth:"a" ~size:5 ~now:0);
        ignore (Jit.Codecache.install c ~meth:"b" ~size:5 ~now:10);
        (* without the touch, a (older) would be the victim *)
        Jit.Codecache.touch c "a" ~now:500;
        Alcotest.(check (list string)) "b evicted instead" [ "b" ]
          (Jit.Codecache.install c ~meth:"d" ~size:5 ~now:600);
        Alcotest.(check bool) "a survived" true (Jit.Codecache.mem c "a"));
    test "reinstalling a method replaces, not double-counts" (fun () ->
        let c = Jit.Codecache.create ~capacity:10 in
        ignore (Jit.Codecache.install c ~meth:"a" ~size:6 ~now:0);
        Alcotest.(check (list string)) "no eviction" []
          (Jit.Codecache.install c ~meth:"a" ~size:8 ~now:10);
        Alcotest.(check int) "new size only" 8 (Jit.Codecache.used c);
        Alcotest.(check int) "one entry" 1 (Jit.Codecache.resident c));
    test "retention ties evict the oldest install" (fun () ->
        let c = Jit.Codecache.create ~capacity:4 in
        ignore (Jit.Codecache.install c ~meth:"a" ~size:2 ~now:0);
        ignore (Jit.Codecache.install c ~meth:"b" ~size:2 ~now:0);
        Alcotest.(check (list string)) "oldest goes" [ "a" ]
          (Jit.Codecache.install c ~meth:"c" ~size:2 ~now:0));
    test "remove drops residency without an eviction" (fun () ->
        let c = Jit.Codecache.create ~capacity:10 in
        ignore (Jit.Codecache.install c ~meth:"a" ~size:6 ~now:0);
        Jit.Codecache.remove c "a";
        Alcotest.(check bool) "gone" false (Jit.Codecache.mem c "a");
        Alcotest.(check int) "freed" 0 (Jit.Codecache.used c));
  ]

(* Random install/touch sequences never break the residency budget, and
   every reported victim is really gone. *)
let cache_invariant_prop =
  QCheck.Test.make ~count:200 ~name:"random installs never exceed capacity"
    QCheck.(
      pair (int_range 0 15)
        (small_list (pair (int_range 0 5) (int_range 0 10))))
    (fun (cap, ops) ->
      let c = Jit.Codecache.create ~capacity:cap in
      List.for_all
        (fun (i, (meth, size)) ->
          let victims = Jit.Codecache.install c ~meth ~size ~now:i in
          Jit.Codecache.used c <= cap
          && List.for_all (fun v -> not (Jit.Codecache.mem c v)) victims)
        (List.mapi (fun i op -> (i, op)) ops))

(* ---------- engine integration: eviction exactness ---------- *)

let jit_config name compiler : Jit.Engine.config =
  {
    Jit.Engine.name;
    compiler;
    hotness_threshold = 3;
    compile_cost_per_node = 50;
    verify = false;
  }

(* Runs [w] under the JIT with an optional cache bound; returns the full
   output (main once, then 3 bench iterations). *)
let cached_output (w : Workloads.Defs.t) ~(cap : int option)
    ~(backend : Runtime.Interp.backend) : string =
  let prog = Workloads.Registry.compile w in
  let e =
    Jit.Engine.create ?cache_capacity:cap prog
      (jit_config "serve-prop" (Some (incremental ())))
  in
  e.vm.backend <- backend;
  ignore (Jit.Engine.run_main e);
  for _ = 1 to 3 do
    ignore (Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ])
  done;
  Jit.Engine.output e

let synth_gen : (Workloads.Synth.config * int option) QCheck.Gen.t =
  QCheck.Gen.(
    let* seed = int_range 0 1000 in
    let* depth = int_range 1 3 in
    let* fanout = int_range 1 2 in
    let* leaf = int_range 4 40 in
    let* cap = oneof [ return 0; return 1; int_range 2 400 ] in
    return
      ( {
          Workloads.Synth.seed;
          depth;
          fanout;
          poly_degree = 2;
          leaf_work = leaf;
          hot_fraction = 0.5;
        },
        Some cap ))

let eviction_exactness_prop =
  QCheck.Test.make ~count:10
    ~name:"eviction exactness: every backend = unbounded = reference"
    (QCheck.make
       ~print:(fun (c, cap) ->
         Printf.sprintf "cap=%s\n%s"
           (match cap with Some c -> string_of_int c | None -> "unbounded")
           (Workloads.Synth.source_of c))
       synth_gen)
    (fun (cfg, cap) ->
      let w = Workloads.Synth.generate cfg in
      let unbounded = cached_output w ~cap:None ~backend:Runtime.Interp.Threaded in
      (* main's pinned expected output leads the unbounded run *)
      String.sub unbounded 0 (String.length w.Workloads.Defs.expected)
      = w.Workloads.Defs.expected
      && List.for_all
           (fun backend -> cached_output w ~cap ~backend = unbounded)
           [
             Runtime.Interp.Threaded; Runtime.Interp.Prepared;
             Runtime.Interp.Reference;
           ])

let rehot_src =
  {|def work(n: Int): Int = { var i = 0; var s = 0; while (i < n) { s = s + i * i; i = i + 1 }; s }
    def bench(): Int = work(40)
    def main(): Unit = println(bench())|}

let engine_tests =
  [
    test "an evicted-then-rehot method recompiles and re-installs" (fun () ->
        (* capacity 0: every install is immediately evicted, the method
           re-heats through the cooldown and compiles again — churn is
           bounded by the evict-count backoff, not by max_recompiles *)
        let e =
          Jit.Engine.create ~cache_capacity:0 (compile rehot_src)
            (jit_config "rehot" (Some (incremental ())))
        in
        ignore (Jit.Engine.run_main e);
        for _ = 1 to 200 do
          ignore (Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ])
        done;
        let installs_of name =
          List.length
            (List.filter
               (fun (c : Jit.Engine.compilation) ->
                 (Ir.Program.meth e.vm.prog c.cm).Ir.Types.m_name = name)
               e.compilations)
        in
        Alcotest.(check bool) "work re-installed after eviction" true
          (installs_of "work" >= 2);
        Alcotest.(check bool) "evictions recorded" true
          (List.length e.evictions >= 2);
        Alcotest.(check int) "serve_stats agrees"
          (List.length e.evictions)
          (Jit.Engine.serve_stats e).Jit.Engine.sv_evictions;
        (* eviction consumed no failure budget: nothing blacklisted *)
        Alcotest.(check int) "no blacklist" 0
          (List.length (Jit.Engine.bailout_stats e).blacklisted_methods);
        (* and the churn was semantically invisible *)
        let r =
          Jit.Engine.create (compile rehot_src) (jit_config "rehot-ref" None)
        in
        r.vm.backend <- Runtime.Interp.Reference;
        ignore (Jit.Engine.run_main r);
        for _ = 1 to 200 do
          ignore (Jit.Engine.run_meth r "bench" [ Runtime.Values.Vunit ])
        done;
        Alcotest.(check string) "output = reference" (Jit.Engine.output r)
          (Jit.Engine.output e));
    test "queue capacity 0 sheds every compile yet stays exact" (fun () ->
        (* OSR off: loop-transfer compiles legitimately bypass the queue,
           so only the hot-entry trigger (the queued path) remains *)
        let run cap =
          let e =
            Jit.Engine.create ~osr:false ?queue_capacity:cap (compile rehot_src)
              (jit_config "shed-all" (Some (incremental ())))
          in
          ignore (Jit.Engine.run_main e);
          for _ = 1 to 30 do
            ignore (Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ])
          done;
          e
        in
        let shed = run (Some 0) and direct = run None in
        Alcotest.(check int) "nothing ever installs" 0
          (List.length shed.compilations);
        Alcotest.(check bool) "sheds counted" true
          ((Jit.Engine.serve_stats shed).sv_sheds > 0);
        Alcotest.(check string) "output unchanged" (Jit.Engine.output direct)
          (Jit.Engine.output shed));
    test "a working queue compiles in the background and records waits"
      (fun () ->
        let e =
          Jit.Engine.create ~queue_capacity:4 (compile rehot_src)
            (jit_config "queued" (Some (incremental ())))
        in
        ignore (Jit.Engine.run_main e);
        for _ = 1 to 30 do
          ignore (Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ])
        done;
        Alcotest.(check bool) "installs happened" true
          (List.length e.compilations > 0);
        let st = Jit.Engine.serve_stats e in
        Alcotest.(check bool) "queue waits recorded" true
          (st.sv_queue_waits <> []);
        Alcotest.(check bool) "waits are sorted ascending" true
          (List.sort compare st.sv_queue_waits = st.sv_queue_waits);
        Alcotest.(check bool) "time-to-peak recorded" true (st.sv_ttp <> []));
    test "a starved compile deadline bails out but stays exact" (fun () ->
        let run deadline =
          let e =
            Jit.Engine.create ?compile_deadline:deadline (compile rehot_src)
              (jit_config "deadline" (Some (incremental ())))
          in
          ignore (Jit.Engine.run_main e);
          for _ = 1 to 30 do
            ignore (Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ])
          done;
          e
        in
        let starved = run (Some 1) and free = run None in
        Alcotest.(check bool) "deadline misses are contained bailouts" true
          ((Jit.Engine.bailout_stats starved).failed_attempts > 0);
        Alcotest.(check int) "nothing installed under a 1-credit deadline" 0
          (List.length starved.compilations);
        Alcotest.(check string) "output unchanged" (Jit.Engine.output free)
          (Jit.Engine.output starved));
  ]

(* ---------- multi-tenant driver ---------- *)

let serve_config () = jit_config "serve-test" (Some (incremental ()))

let tenant id ?(iters = 10) src : Jit.Serve.tenant =
  {
    Jit.Serve.tn_id = id;
    tn_make = (fun () -> (compile src, serve_config ()));
    tn_iters = iters;
  }

let tenant_a_src =
  {|def work(n: Int): Int = { var i = 0; var s = 0; while (i < n) { s = s + i * i; i = i + 1 }; s }
    def bench(): Int = work(50)
    def main(): Unit = println(bench())|}

let tenant_b_src =
  {|def f(n: Int): Int = { var i = 1; var s = 1; while (i < n) { s = s * i % 1000003; i = i + 1 }; s }
    def g(n: Int): Int = f(n) + f(n + 1)
    def bench(): Int = g(30)
    def main(): Unit = println(bench())|}

let soak_limits : Jit.Serve.limits =
  {
    Jit.Serve.queue_capacity = Some 2;
    queue_age_unit = 64;
    cache_capacity = Some 20;
    compile_deadline = None;
    chaos_rate = 0.5;
    chaos_seed = 11;
  }

let check_tenant_equal what (f : Jit.Serve.tenant_report)
    (s : Jit.Serve.tenant_report) =
  Alcotest.(check string) (what ^ ": output") s.tr_output f.tr_output;
  Alcotest.(check int) (what ^ ": steps") s.tr_steps f.tr_steps;
  Alcotest.(check int) (what ^ ": cycles") s.tr_cycles f.tr_cycles;
  Alcotest.(check int) (what ^ ": checksum") s.tr_checksum f.tr_checksum

let serve_tests =
  [
    test "parse_tenants: names, counts, whitespace" (fun () ->
        match Jit.Serve.parse_tenants " a , b*3,c*2 " with
        | Ok pairs ->
            Alcotest.(check (list (pair string int)))
              "pairs"
              [ ("a", 1); ("b", 3); ("c", 2) ]
              pairs
        | Error e -> Alcotest.failf "rejected a good spec: %s" e);
    test "parse_tenants: malformed specs get one-line diagnostics" (fun () ->
        List.iter
          (fun spec ->
            match Jit.Serve.parse_tenants spec with
            | Ok _ -> Alcotest.failf "accepted %S" spec
            | Error e ->
                Alcotest.(check bool)
                  (Printf.sprintf "%S: single line" spec)
                  false
                  (String.contains e '\n'))
          [ ""; "  "; "a*0"; "a*-1"; "*3"; "a*"; "a*x"; "a,,b" ]);
    test "seed_for is a pure function of (base, id)" (fun () ->
        Alcotest.(check int) "stable"
          (Jit.Serve.seed_for ~base:7 "long-loop#0")
          (Jit.Serve.seed_for ~base:7 "long-loop#0");
        Alcotest.(check bool) "base matters" true
          (Jit.Serve.seed_for ~base:7 "x" <> Jit.Serve.seed_for ~base:8 "x");
        Alcotest.(check bool) "id matters" true
          (Jit.Serve.seed_for ~base:7 "x#0" <> Jit.Serve.seed_for ~base:7 "x#1");
        Alcotest.(check bool) "non-negative" true
          (Jit.Serve.seed_for ~base:min_int "x" >= 0));
    test "percentile: exact ranks on ascending lists" (fun () ->
        Alcotest.(check int) "empty" 0 (Jit.Serve.percentile [] 0.5);
        Alcotest.(check int) "singleton" 5 (Jit.Serve.percentile [ 5 ] 0.99);
        Alcotest.(check int) "p50 of 4" 2
          (Jit.Serve.percentile [ 1; 2; 3; 4 ] 0.5);
        Alcotest.(check int) "p99 of 4" 4
          (Jit.Serve.percentile [ 1; 2; 3; 4 ] 0.99);
        Alcotest.(check int) "p100 is max" 4
          (Jit.Serve.percentile [ 1; 2; 3; 4 ] 1.0));
    test "fleet = solo, byte for byte, under pressure and chaos" (fun () ->
        let tenants =
          [
            tenant "a#0" tenant_a_src; tenant "b#0" tenant_b_src;
            tenant "a#1" tenant_a_src;
          ]
        in
        let fleet = Jit.Serve.run ~limits:soak_limits tenants in
        Alcotest.(check int) "all reported" 3 (List.length fleet);
        List.iter2
          (fun f tn ->
            match Jit.Serve.run ~limits:soak_limits [ tn ] with
            | [ s ] -> check_tenant_equal f.Jit.Serve.tr_id f s
            | rs -> Alcotest.failf "solo run returned %d reports" (List.length rs))
          fleet tenants;
        (* replicas of the same workload diverge only through their seeds *)
        let a0 = List.nth fleet 0 and a1 = List.nth fleet 2 in
        Alcotest.(check bool) "distinct seeds per replica" true
          (a0.Jit.Serve.tr_seed <> a1.Jit.Serve.tr_seed);
        Alcotest.(check int) "same program, same checksum"
          a0.Jit.Serve.tr_checksum a1.Jit.Serve.tr_checksum);
    test "same-seed serve runs are fully deterministic" (fun () ->
        let mk () = [ tenant "a#0" tenant_a_src; tenant "b#0" tenant_b_src ] in
        let r1 = Jit.Serve.run ~limits:soak_limits (mk ()) in
        let r2 = Jit.Serve.run ~limits:soak_limits (mk ()) in
        Alcotest.(check bool) "reports identical" true (r1 = r2);
        Alcotest.(check string) "report JSON byte-identical"
          (Support.Json.to_string (Jit.Serve.report_json r1))
          (Support.Json.to_string (Jit.Serve.report_json r2)));
    test "a pathological tenant cannot perturb or blacklist a neighbor"
      (fun () ->
        let crashing : Jit.Engine.compiler = fun _ _ _ -> failwith "boom" in
        let bad =
          {
            Jit.Serve.tn_id = "bad#0";
            tn_make =
              (fun () -> (compile tenant_b_src, jit_config "bad" (Some crashing)));
            tn_iters = 10;
          }
        in
        let good = tenant "good#0" tenant_a_src in
        let fleet = Jit.Serve.run ~limits:soak_limits [ good; bad ] in
        let fg = List.nth fleet 0 and fb = List.nth fleet 1 in
        Alcotest.(check bool) "bad tenant got blacklisted" true
          (fb.Jit.Serve.tr_blacklisted > 0);
        Alcotest.(check int) "good tenant blacklisted nothing" 0
          fg.Jit.Serve.tr_blacklisted;
        (* the neighbor's numbers are those of its solo run *)
        match Jit.Serve.run ~limits:soak_limits [ good ] with
        | [ sg ] -> check_tenant_equal "good beside bad" fg sg
        | rs -> Alcotest.failf "solo run returned %d reports" (List.length rs));
  ]

(* ---------- fleet timeline + SLO ---------- *)

(* The ISSUE-10 soak shape: chaos 0.2, bounded queue and cache, a fast
   sampling cadence so short test programs still produce many rows. *)
let timeline_limits : Jit.Serve.limits =
  { soak_limits with chaos_rate = 0.2 }

let timeline_run ?slo () : string list * Jit.Serve.tenant_report list =
  let tl, read = Obs.Timeline.memory ~interval:50 () in
  let tenants =
    [ tenant "a#0" tenant_a_src; tenant "b#0" tenant_b_src;
      tenant "a#1" tenant_a_src ]
  in
  let reports = Jit.Serve.run ~limits:timeline_limits ~timeline:tl ?slo tenants in
  (read (), reports)

let timeline_tests =
  [
    test "same-seed timelines under chaos are byte-identical; diff reports \
          zero drift"
      (fun () ->
        let l1, _ = timeline_run () in
        let l2, _ = timeline_run () in
        Alcotest.(check bool) "rows collected" true (List.length l1 > 10);
        Alcotest.(check (list string)) "byte-identical" l1 l2;
        Alcotest.(check int) "diff_lines agrees: zero drift" 0
          (List.length (Obs.Diff.diff_lines l1 l2)));
    test "sampling is passive: tenant reports identical with and without a \
          timeline"
      (fun () ->
        let _, with_tl = timeline_run () in
        let bare =
          Jit.Serve.run ~limits:timeline_limits
            [ tenant "a#0" tenant_a_src; tenant "b#0" tenant_b_src;
              tenant "a#1" tenant_a_src ]
        in
        List.iter2
          (fun (f : Jit.Serve.tenant_report) s ->
            check_tenant_equal (f.tr_id ^ " with timeline") f s)
          with_tl bare);
    test "sample rows carry per-tenant gauges; fleet rows carry ordered \
          percentiles"
      (fun () ->
        let lines, reports = timeline_run () in
        match Obs.Timeline.rows_of_lines lines with
        | Error e -> Alcotest.fail e
        | Ok rows ->
            let samples, rest =
              List.partition
                (fun (r : Obs.Timeline.row) -> r.r_kind = "timeline_sample")
                rows
            in
            let fleets =
              List.filter
                (fun (r : Obs.Timeline.row) -> r.r_kind = "timeline_fleet")
                rest
            in
            Alcotest.(check bool) "has samples" true (samples <> []);
            Alcotest.(check bool) "has fleet rows" true (fleets <> []);
            (* every tenant sampled at least once, under its own id *)
            List.iter
              (fun (r : Jit.Serve.tenant_report) ->
                Alcotest.(check bool) (r.tr_id ^ " sampled") true
                  (List.exists
                     (fun (s : Obs.Timeline.row) -> s.r_source = r.tr_id)
                     samples))
              reports;
            (* seq is the dense global emission order *)
            List.iteri
              (fun i (r : Obs.Timeline.row) ->
                Alcotest.(check int) "dense seq" i r.r_seq)
              rows;
            let last = List.nth fleets (List.length fleets - 1) in
            let g n =
              match Obs.Timeline.field last n with
              | Some v -> v
              | None -> Alcotest.failf "fleet row lacks %s" n
            in
            Alcotest.(check int) "tenant count" 3 (g "tenants");
            let p50 = g "queue_wait_p50" and p90 = g "queue_wait_p90" in
            let p99 = g "queue_wait_p99" and pmax = g "queue_wait_max" in
            Alcotest.(check bool) "p50<=p90<=p99<=max" true
              (p50 <= p90 && p90 <= p99 && p99 <= pmax));
    test "tight SLO specs fire deterministically over the live fleet"
      (fun () ->
        let fire () =
          let mon =
            Obs.Slo.monitor
              [
                Obs.Slo.queue_saturation ~window:1_000_000 ~limit:0 ();
                Obs.Slo.cache_thrash ~limit:0 ();
              ]
          in
          let _, _ = timeline_run ~slo:mon () in
          Obs.Slo.violations mon
        in
        let v1 = fire () in
        Alcotest.(check bool) "starved fleet trips the monitors" true
          (v1 <> []);
        Alcotest.(check bool) "violations are byte-identical across reruns"
          true
          (v1 = fire ());
        (* the default thresholds stay quiet on this small soak *)
        let quiet = Obs.Slo.monitor Obs.Slo.default_specs in
        let _, _ = timeline_run ~slo:quiet () in
        Alcotest.(check int) "defaults quiet" 0
          (List.length (Obs.Slo.violations quiet)));
    test "offline replay of the stream matches the live monitor" (fun () ->
        let specs = [ Obs.Slo.cache_thrash ~limit:0 () ] in
        let mon = Obs.Slo.monitor specs in
        let lines, _ = timeline_run ~slo:mon () in
        match Obs.Slo.check_lines ~specs lines with
        | Error e -> Alcotest.fail e
        | Ok offline ->
            Alcotest.(check bool) "same violations" true
              (offline = Obs.Slo.violations mon));
    test "p90 and max percentiles are exact ranks" (fun () ->
        let xs = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] in
        let p50, p90, p99, pmax = Support.Stats.percentiles xs in
        Alcotest.(check int) "p50" 5 p50;
        Alcotest.(check int) "p90" 9 p90;
        Alcotest.(check int) "p99" 10 p99;
        Alcotest.(check int) "max" 10 pmax);
  ]

let () =
  Alcotest.run "serve"
    [
      ("scheduler", scheduler_tests);
      ("codecache", codecache_tests);
      ( "codecache-properties",
        List.map QCheck_alcotest.to_alcotest [ cache_invariant_prop ] );
      ("engine", engine_tests);
      ( "engine-properties",
        List.map QCheck_alcotest.to_alcotest [ eviction_exactness_prop ] );
      ("serve", serve_tests);
      ("timeline", timeline_tests);
    ]
