bench/bechamel_suite.ml: Analyze Bechamel Benchmark Common Hashtbl Inliner Instance Ir List Measure Opt Option Printf Runtime Staged Test Time Toolkit Workloads
