bench/common.ml: Baselines Inliner Ir Jit List Printf String Workloads
