bench/main.mli:
