bench/main.ml: Arg Bechamel_suite Cmd Cmdliner Common Experiments Fmt List Printf String Term Workloads
