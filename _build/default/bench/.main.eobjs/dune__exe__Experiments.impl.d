bench/experiments.ml: Common Inliner Ir Jit List Opt Option Printf Runtime Support Unix Workloads
