(* The experiments: one function per figure/table of the paper's evaluation
   (Section V). Each prints the same rows/series the paper reports, over
   the Sel workload suite and the simulated-cycle clock. See DESIGN.md for
   the experiment index and EXPERIMENTS.md for paper-vs-measured notes. *)

open Common

let all_workloads = Workloads.Registry.all

let find name = Option.get (Workloads.Registry.find name)

(* ---------- Figure 5: warmup curves ---------- *)

(* The paper shows per-iteration running time during warmup for prominent
   benchmarks, for the new inliner vs. the alternatives. *)
let fig5 () =
  print_header
    "Figure 5 — warmup curves: per-iteration simulated cycles (prominent workloads)";
  let configs = [ cfg_incremental; cfg_greedy; cfg_c2 ] in
  List.iter
    (fun wname ->
      let w = find wname in
      let runs = List.map (fun c -> measure ~iters:30 w c) configs in
      Printf.printf "\n%s (compiled methods in brackets)\n" w.name;
      let columns = "iter" :: List.map (fun (c : config) -> c.label) configs in
      let rows =
        List.init 30 (fun i ->
            string_of_int (i + 1)
            :: List.map
                 (fun (m : measurement) ->
                   let it = List.nth m.run.iterations i in
                   Printf.sprintf "%d [%d]" it.cycles it.compiled_methods)
                 runs)
      in
      print_table ~columns ~rows)
    [ "foreach-poly"; "factorie-gm"; "jython-loop"; "gauss-mix" ];
  note
    "Expected shape: all configurations start at the interpreter's cost and drop as\n\
     methods compile; steady state is reached after a similar number of iterations,\n\
     with the incremental inliner's plateau lowest on the Scala-shaped workloads."

(* ---------- Figures 6 and 7: adaptive vs fixed thresholds ---------- *)

(* Constants are rescaled to the substrate: Sel bodies are ~10x smaller
   than Graal IR, so the paper's T_e in {500..7k} / T_i in {1k..6k} map to
   {50..700} / {100..600} here. *)
let te_values = [ 50; 100; 300; 500; 700 ]
let ti_values = [ 100; 300; 600 ]
let fixed_ti_for_fig6 = 600
let fixed_te_for_fig7 = 300

let sweep_table ~title ~configs ~workloads =
  print_header title;
  let columns =
    "workload" :: List.concat_map (fun (c : config) -> [ c.label; "code" ]) configs
  in
  let rows =
    List.map
      (fun (w : Workloads.Defs.t) ->
        let ms = List.map (fun c -> measure w c) configs in
        w.name
        :: List.concat_map
             (fun (m : measurement) ->
               [ fmt_cycles m.run.peak_cycles; string_of_int m.code_size ])
             ms)
      workloads
  in
  print_table ~columns ~rows

let fig6 () =
  let configs =
    cfg_incremental
    :: List.map
         (fun te ->
           cfg_params
             (Printf.sprintf "Te=%d" te)
             (Inliner.Params.with_fixed ~te ~ti:fixed_ti_for_fig6 Inliner.Params.default))
         te_values
  in
  sweep_table
    ~title:
      (Printf.sprintf
         "Figure 6 — adaptive vs fixed EXPANSION threshold (peak cycles; Ti=%d for all \
          fixed variants)"
         fixed_ti_for_fig6)
    ~configs ~workloads:all_workloads;
  note
    "Expected shape: no single Te is best everywhere — small Te wins on some\n\
     workloads and loses badly on others; the adaptive policy tracks the best fixed\n\
     value on most workloads without per-benchmark tuning (paper, Fig. 6)."

let fig7 () =
  let configs =
    cfg_incremental
    :: List.map
         (fun ti ->
           cfg_params
             (Printf.sprintf "Ti=%d" ti)
             (Inliner.Params.with_fixed ~te:fixed_te_for_fig7 ~ti Inliner.Params.default))
         ti_values
  in
  sweep_table
    ~title:
      (Printf.sprintf
         "Figure 7 — adaptive vs fixed INLINING threshold (peak cycles; Te=%d for all \
          fixed variants)"
         fixed_te_for_fig7)
    ~configs ~workloads:all_workloads;
  note
    "Expected shape: as in the paper, large Ti helps a few benchmarks and is an\n\
     extremely bad choice for others (code-size blowup); adaptive needs no tuning."

(* ---------- Figure 8: clustering vs 1-by-1 ---------- *)

let fig8_grid =
  [ (0.0005, 60.0); (0.005, 60.0); (0.05, 60.0); (0.3, 60.0); (0.005, 30.0);
    (0.005, 120.0) ]

let fig8_workloads =
  [ "foreach-poly"; "actors-msg"; "scalac-visitor"; "stm-bench"; "factorie-gm";
    "neo4j-query"; "sunflow-vec"; "gauss-mix" ]

let fig8 () =
  print_header
    "Figure 8 — callsite clustering vs 1-by-1 inlining across (t1, t2) parameters";
  let variants =
    List.concat_map
      (fun (t1, t2) ->
        let base = { Inliner.Params.default with t1; t2 } in
        [
          cfg_params (Printf.sprintf "cl(%g,%.0f)" t1 t2) base;
          cfg_params
            (Printf.sprintf "1x1(%g,%.0f)" t1 t2)
            (Inliner.Params.without_clustering base);
        ])
      fig8_grid
  in
  let columns = "workload" :: List.map (fun (c : config) -> c.label) variants in
  let rows =
    List.map
      (fun wname ->
        let w = find wname in
        wname
        :: List.map (fun c -> fmt_cycles (measure w c).run.peak_cycles) variants)
      fig8_workloads
  in
  print_table ~columns ~rows;
  note
    "Expected shape: 1-by-1 is sensitive to (t1, t2) — its best setting differs per\n\
     workload — while clustering is comparatively flat and matches or beats the best\n\
     1-by-1 variant (paper, Fig. 8)."

(* ---------- Figure 9: comparison against alternatives ---------- *)

let fig9 () =
  print_header
    "Figure 9 — peak performance: incremental vs greedy (open-source-Graal-like) vs \
     C2-like";
  let configs =
    [
      interp;
      cfg_greedy;
      cfg_c2;
      cfg_params "incr-shallow" (Inliner.Params.without_deep_trials Inliner.Params.default);
      cfg_incremental;
    ]
  in
  let columns =
    [ "workload"; "flavor"; "interp"; "greedy"; "c2-like"; "incr-shallow";
      "incremental"; "±std"; "vs greedy"; "vs c2" ]
  in
  let speedups_greedy = ref [] and speedups_c2 = ref [] in
  let rows =
    List.map
      (fun (w : Workloads.Defs.t) ->
        let ms = List.map (fun c -> measure w c) configs in
        let peak i = (List.nth ms i).run.peak_cycles in
        let vs_greedy = peak 1 /. peak 4 in
        let vs_c2 = peak 2 /. peak 4 in
        speedups_greedy := vs_greedy :: !speedups_greedy;
        speedups_c2 := vs_c2 :: !speedups_c2;
        [
          w.name;
          Workloads.Defs.flavor_to_string w.flavor;
          fmt_cycles (peak 0);
          fmt_cycles (peak 1);
          fmt_cycles (peak 2);
          fmt_cycles (peak 3);
          fmt_cycles (peak 4);
          Printf.sprintf "%.0f" (List.nth ms 4).run.peak_stddev;
          fmt_ratio vs_greedy;
          fmt_ratio vs_c2;
        ])
      all_workloads
  in
  print_table ~columns ~rows;
  note
    "geomean speedup: %.2fx vs greedy, %.2fx vs C2-like\n\
     Expected shape: the incremental inliner beats the greedy inliner everywhere\n\
     (up to multiples on Scala-shaped workloads) and beats C2-like on most; C2-like\n\
     may win narrowly on a Java-shaped workload or two. Deep trials (incremental vs\n\
     incr-shallow) matter mainly on abstraction-heavy code (paper, Fig. 9)."
    (Support.Stats.geomean !speedups_greedy)
    (Support.Stats.geomean !speedups_c2)

(* ---------- Figure 10 and Table I: code size ---------- *)

let code_size_data () =
  let configs = [ cfg_incremental; cfg_greedy; cfg_c2; cfg_c1 ] in
  List.map (fun (w : Workloads.Defs.t) -> (w, List.map (fun c -> measure w c) configs))
    all_workloads

let fig10 () =
  print_header
    "Figure 10 — installed code size (IR nodes) and compiled method counts";
  let data = code_size_data () in
  let columns =
    [ "workload"; "incr"; "(methods)"; "greedy"; "(methods)"; "c2-like"; "(methods)";
      "c1-all"; "(methods)" ]
  in
  let rows =
    List.map
      (fun ((w : Workloads.Defs.t), ms) ->
        w.name
        :: List.concat_map
             (fun (m : measurement) ->
               [ string_of_int m.code_size; string_of_int m.compiled_methods ])
             ms)
      data
  in
  print_table ~columns ~rows;
  note
    "Expected shape: the incremental inliner installs more code than greedy/C2-like\n\
     but far less than a compile-everything first tier; on some workloads (as in the\n\
     paper) its code is not larger at all because optimization-driven simplification\n\
     deletes what inlining duplicated.";
  data

let table1 ?(data : (Workloads.Defs.t * measurement list) list option) () =
  let data = match data with Some d -> d | None -> code_size_data () in
  print_header
    "Table I — total installed code size: incremental vs greedy vs C2-like";
  let ratios_greedy = ref [] and ratios_c2 = ref [] in
  let rows =
    List.map
      (fun ((w : Workloads.Defs.t), ms) ->
        let size i = (List.nth ms i).code_size in
        ratios_greedy := (float_of_int (size 0) /. float_of_int (max 1 (size 1))) :: !ratios_greedy;
        ratios_c2 := (float_of_int (size 0) /. float_of_int (max 1 (size 2))) :: !ratios_c2;
        [
          w.name;
          string_of_int (size 0);
          string_of_int (size 1);
          string_of_int (size 2);
          fmt_ratio (float_of_int (size 0) /. float_of_int (max 1 (size 1)));
          fmt_ratio (float_of_int (size 0) /. float_of_int (max 1 (size 2)));
        ])
      data
  in
  print_table
    ~columns:[ "workload"; "incr"; "greedy"; "c2-like"; "incr/greedy"; "incr/c2" ]
    ~rows;
  note
    "geomean code-size ratio: %.2fx vs greedy, %.2fx vs C2-like\n\
     (paper: =2.37x more code than the greedy inliner and =1.88x more than C2 on\n\
     average — more code, much faster; see Fig. 9)"
    (Support.Stats.geomean !ratios_greedy)
    (Support.Stats.geomean !ratios_c2)

(* ---------- warmup / compile budget (paper, Section IV "Parameter
   tuning": "another constraint was not to increase the warmup time by
   more than 20%") ---------- *)

let warmup () =
  print_header
    "Warmup — iterations to steady state and compile cycles (tuning constraint)";
  let configs = [ cfg_incremental; cfg_greedy; cfg_c2 ] in
  let columns =
    "workload"
    :: List.concat_map
         (fun (c : config) -> [ c.label ^ " iters"; "compile" ]) configs
  in
  let rows =
    List.map
      (fun (w : Workloads.Defs.t) ->
        w.name
        :: List.concat_map
             (fun c ->
               let m = measure w c in
               (* first iteration within 10% of peak *)
               let steady =
                 List.find_opt
                   (fun (it : Jit.Harness.iteration) ->
                     float_of_int it.cycles <= m.run.peak_cycles *. 1.1)
                   m.run.iterations
               in
               [
                 (match steady with
                 | Some it -> string_of_int it.index
                 | None -> "-");
                 string_of_int m.compile_cycles;
               ])
             configs)
      all_workloads
  in
  print_table ~columns ~rows;
  note
    "Expected shape (paper, Section IV parameter tuning): the incremental inliner\n\
     reaches steady state after a similar number of iterations as the baselines —\n\
     its extra exploration shows up as compile cycles, not as extra warmup\n\
     iterations."

(* ---------- substrate ablation: the per-round root optimizations
   (DESIGN.md design choices beyond the paper's own heuristics) ---------- *)

let opts_ablation () =
  print_header
    "Opts ablation — per-round root optimizations, each disabled in turn (peak cycles)";
  let p = Inliner.Params.default in
  let configs =
    [
      cfg_incremental;
      cfg_params "-rwelim" { p with opt_rwelim = false };
      cfg_params "-scalar" { p with opt_scalar = false };
      cfg_params "-licm" { p with opt_licm = false };
      cfg_params "-peel" { p with opt_peel = false };
      cfg_params "-all4"
        { p with opt_rwelim = false; opt_scalar = false; opt_licm = false; opt_peel = false };
    ]
  in
  let columns = "workload" :: List.map (fun (c : config) -> c.label) configs in
  let rows =
    List.map
      (fun (w : Workloads.Defs.t) ->
        w.name :: List.map (fun c -> fmt_cycles (measure w c).run.peak_cycles) configs)
      all_workloads
  in
  print_table ~columns ~rows;
  note
    "Reading: 'incremental' runs the full per-round pipeline; each column drops one\n\
     pass. Scalar replacement carries lambda-heavy workloads (it is what makes\n\
     cluster inlining pay, the Graal-EE partial-escape-analysis effect); read-write\n\
     elimination and LICM contribute broadly smaller amounts; peeling is niche."

(* ---------- scaling: compile effort vs. call-graph size (Synth) ------- *)

let scaling () =
  print_header
    "Scaling — inliner effort vs. synthetic call-graph size (Workloads.Synth)";
  let columns =
    [ "shape"; "methods"; "peak"; "vs greedy"; "rounds"; "expanded"; "inlined";
      "root size"; "compile ms" ]
  in
  let rows =
    List.map
      (fun (depth, fanout, poly) ->
        let cfgen =
          { Workloads.Synth.default with depth; fanout; poly_degree = poly; seed = 7 }
        in
        let w = Workloads.Synth.generate cfgen in
        (* peak under the packaged configs *)
        let m_incr = measure w cfg_incremental in
        let m_greedy = measure w cfg_greedy in
        (* one direct compilation of bench, instrumented *)
        let prog = Workloads.Registry.compile w in
        Opt.Driver.prepare_program prog;
        let vm = Runtime.Interp.create prog in
        ignore (Runtime.Interp.run_meth vm "bench" [ Runtime.Values.Vunit ]);
        let root = Option.get (Ir.Program.find_meth prog "bench") in
        let t0 = Unix.gettimeofday () in
        let result = Inliner.Algorithm.compile prog vm.profiles Inliner.Params.default root in
        let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
        [
          Printf.sprintf "d%d f%d p%d" depth fanout poly;
          string_of_int (Ir.Program.num_meths prog);
          fmt_cycles m_incr.run.peak_cycles;
          fmt_ratio (m_greedy.run.peak_cycles /. m_incr.run.peak_cycles);
          string_of_int result.stats.rounds;
          string_of_int result.stats.expanded;
          string_of_int result.stats.inlined;
          string_of_int result.stats.final_size;
          Printf.sprintf "%.1f" ms;
        ])
      [ (2, 2, 3); (3, 2, 3); (4, 2, 3); (5, 2, 3); (6, 2, 3); (4, 3, 3); (4, 3, 6) ]
  in
  print_table ~columns ~rows;
  note
    "Expected shape: effort grows with the explorable graph but stays bounded by\n\
     the adaptive thresholds, the per-round expansion cap and the root size cap —\n\
     the compile-time discipline the paper's online setting demands (Section II).\n\
     Observed limitation, reported honestly: on deep *uniformly cold* towers the\n\
     cluster tuple (benefit minus children's benefits, Listing 6) telescopes the\n\
     interior heat away, so the incremental inliner can decline towers that the\n\
     greedy baseline's purely local rule inlines — it trails greedy by up to ~10%%\n\
     at depth 6. The paper's benchmarks (and the Sel suite) have skewed heat,\n\
     where cluster analysis wins; perfectly uniform towers are its adversary."

let all () =
  fig5 ();
  fig6 ();
  fig7 ();
  fig8 ();
  fig9 ();
  let data = fig10 () in
  table1 ~data ();
  warmup ();
  opts_ablation ();
  scaling ()
