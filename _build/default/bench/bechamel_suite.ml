(* Wall-clock microbenchmarks (Bechamel): one Test.make per paper
   table/figure, measuring the real cost of regenerating a representative
   slice of that experiment (the simulated-cycle numbers themselves are
   printed by the Experiments module; these measure the harness itself,
   e.g. to track compiler-pipeline performance regressions). *)

open Bechamel
open Toolkit

let slice_workload name = Option.get (Workloads.Registry.find name)

let run_slice (c : Common.config) name () =
  ignore (Common.measure ~iters:10 (slice_workload name) c)

let compile_only ~params name () =
  let w = slice_workload name in
  let prog = Workloads.Registry.compile w in
  Opt.Driver.prepare_program prog;
  let vm = Runtime.Interp.create prog in
  ignore (Runtime.Interp.run_meth vm "bench" [ Runtime.Values.Vunit ]);
  let m = Option.get (Ir.Program.find_meth prog "bench") in
  ignore (Inliner.Algorithm.compile prog vm.profiles params m)

let tests =
  [
    Test.make ~name:"fig5-warmup-slice (incremental, foreach-poly)"
      (Staged.stage (run_slice Common.cfg_incremental "foreach-poly"));
    Test.make ~name:"fig6-fixed-te-slice (Te=300, gauss-mix)"
      (Staged.stage
         (run_slice
            (Common.cfg_params "Te300"
               (Inliner.Params.with_fixed ~te:300 ~ti:600 Inliner.Params.default))
            "gauss-mix"));
    Test.make ~name:"fig7-fixed-ti-slice (Ti=300, stm-bench)"
      (Staged.stage
         (run_slice
            (Common.cfg_params "Ti300"
               (Inliner.Params.with_fixed ~te:300 ~ti:300 Inliner.Params.default))
            "stm-bench"));
    Test.make ~name:"fig8-1by1-slice (scalac-visitor)"
      (Staged.stage
         (run_slice
            (Common.cfg_params "1x1"
               (Inliner.Params.without_clustering Inliner.Params.default))
            "scalac-visitor"));
    Test.make ~name:"fig9-compiler-pipeline (incremental, factorie-gm)"
      (Staged.stage (compile_only ~params:Inliner.Params.default "factorie-gm"));
    Test.make ~name:"fig10-code-size-slice (c1-all, jython-loop)"
      (Staged.stage (run_slice Common.cfg_c1 "jython-loop"));
    Test.make ~name:"table1-greedy-pipeline (greedy, actors-msg)"
      (Staged.stage (run_slice Common.cfg_greedy "actors-msg"));
  ]

let run () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) ()
  in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"experiments" tests)
  in
  let results =
    List.map (fun instance -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) instance raw)
      instances
  in
  let results = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) instances results in
  print_endline "\nBechamel wall-clock results (monotonic clock, ns/run):";
  Hashtbl.iter
    (fun _instance tbl ->
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-55s %12.0f ns/run\n" name est
          | _ -> Printf.printf "  %-55s (no estimate)\n" name)
        tbl)
    results
