(* Shared machinery for the experiment harness: JIT configurations, one
   measured run per (workload, configuration), and plain-text table
   rendering for the tee'd bench output. *)

let hotness_threshold = 8
let compile_cost_per_node = 50

(* One trial cache per compiler instance (and engines get one program
   each, so the cache never spans programs). *)
let incremental ?(params = Inliner.Params.default) () : Jit.Engine.compiler =
  let trial_cache = Inliner.Trial_cache.create () in
  fun prog profiles m ->
    (Inliner.Algorithm.compile ~trial_cache prog profiles params m).body

let greedy : Jit.Engine.compiler = fun p pr m -> Baselines.Greedy.compile p pr m
let c2like : Jit.Engine.compiler = fun p pr m -> Baselines.C2like.compile p pr m

(* First-tier-style "compile everything, inline nothing": used for the C1
   bars of Figure 10. *)
let c1_copy : Jit.Engine.compiler =
 fun prog _profiles m ->
  match (Ir.Program.meth prog m).body with
  | Some fn -> Ir.Fn.copy fn
  | None -> invalid_arg "c1: no body"

(* A configuration holds a compiler *factory*: every measurement gets a
   fresh compiler instance, because stateful compilers (the incremental
   inliner's trial cache) must never span programs. *)
type config = {
  label : string;
  compiler : unit -> Jit.Engine.compiler option;
  hotness : int;
}

let cfg ?(hotness = hotness_threshold) label compiler = { label; compiler; hotness }

let interp = cfg "interp" (fun () -> None)
let cfg_incremental = cfg "incremental" (fun () -> Some (incremental ()))
let cfg_greedy = cfg "greedy" (fun () -> Some greedy)
let cfg_c2 = cfg "c2-like" (fun () -> Some c2like)
let cfg_c1 = cfg ~hotness:1 "c1-all" (fun () -> Some c1_copy)

let cfg_params label params = cfg label (fun () -> Some (incremental ~params ()))

type measurement = {
  workload : string;
  config : string;
  run : Jit.Harness.run;
  code_size : int;
  compiled_methods : int;
  compile_cycles : int;
}

(* One fresh engine per measurement; deterministic end to end. *)
let measure ?(iters = 0) (w : Workloads.Defs.t) (c : config) : measurement =
  let iters = if iters > 0 then iters else w.iters in
  let prog = Workloads.Registry.compile w in
  let engine =
    Jit.Engine.create prog
      {
        name = c.label;
        compiler = c.compiler ();
        hotness_threshold = c.hotness;
        compile_cost_per_node;
        verify = false;
      }
  in
  let run = Jit.Harness.run_benchmark ~iters engine ~entry:"bench" ~label:c.label in
  {
    workload = w.name;
    config = c.label;
    run;
    code_size = Jit.Engine.installed_code_size engine;
    compiled_methods = Jit.Engine.installed_methods engine;
    compile_cycles = engine.compile_cycles;
  }

(* ---------- table rendering ---------- *)

let hr width = print_endline (String.make width '-')

let print_header title =
  print_newline ();
  print_endline (String.make 78 '=');
  print_endline title;
  print_endline (String.make 78 '=')

(* A simple aligned table: first column left-aligned, rest right-aligned. *)
let print_table ~(columns : string list) ~(rows : string list list) : unit =
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length col) rows)
      columns
  in
  let render_row cells =
    String.concat "  "
      (List.mapi
         (fun i cell ->
           let w = List.nth widths i in
           if i = 0 then Printf.sprintf "%-*s" w cell else Printf.sprintf "%*s" w cell)
         cells)
  in
  let total = List.fold_left ( + ) 0 widths + (2 * (List.length widths - 1)) in
  print_endline (render_row columns);
  hr total;
  List.iter (fun row -> print_endline (render_row row)) rows

let fmt_cycles (x : float) = Printf.sprintf "%.0f" x
let fmt_ratio (x : float) = Printf.sprintf "%.2fx" x

let note fmt = Printf.printf ("\n" ^^ fmt ^^ "\n")
