(** A HotSpot-C2-style baseline (paper, Section V): trivial methods inline
    exhaustively during a parse-time-like phase; larger methods inline in
    a later greedy phase under fixed size/frequency thresholds, with
    profile-guided monomorphic speculation. Single method at a time. *)

open Ir.Types

type params = {
  trivial_size : int;
  max_inline_size : int;
  freq_threshold : float;
  max_root_size : int;
  max_depth : int;
  mono_min_prob : float;
}

val default : params

val compile : ?params:params -> program -> Runtime.Profile.t -> meth_id -> fn
