(** Shared machinery for the baseline inliners: a working root copy,
    candidate scanning, inlining-depth tracking across splices, and
    monomorphic speculation. *)

open Ir.Types

type state = {
  prog : program;
  profiles : Runtime.Profile.t;
  body : fn;
  depth : (vid, int) Hashtbl.t;
  mutable next_syn_site : int;
  root_meth : meth_id;
}

val create : program -> Runtime.Profile.t -> meth_id -> state
val fresh_site : state -> site
val depth_of : state -> vid -> int

val inline_at : state -> call_vid:vid -> callee:meth_id -> unit
(** Splices the callee's prepared body and records the new calls' depth. *)

val speculate_mono : state -> min_prob:float -> instr -> vid option
(** Turns a profile-monomorphic virtual call into a single-test typeswitch;
    returns the direct call's vid. Synthetic sites are never re-speculated. *)

val callee_size : state -> meth_id -> int
val freqs : state -> (bid, float) Hashtbl.t
val call_freq : state -> (bid, float) Hashtbl.t -> vid -> float
