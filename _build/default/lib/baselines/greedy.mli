(** The greedy priority baseline, modeled on the open-source Graal inliner
    as the paper characterizes it (akin to Steiner et al.):
    priority-ordered (frequency/size), fixed thresholds, monomorphic
    speculation, and no alternation between exploration, optimization and
    inlining — the optimizer runs once at the end. *)

open Ir.Types

type params = {
  max_root_size : int;
  max_callee_size : int;
  trivial_size : int;
  max_depth : int;
  min_freq : float;
  mono_min_prob : float;
}

val default : params

val compile : ?params:params -> program -> Runtime.Profile.t -> meth_id -> fn
