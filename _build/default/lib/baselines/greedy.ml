(* The greedy priority-based baseline, modeled on the open-source Graal
   inliner as the paper describes it (Section V, "Comparison against
   alternatives"): akin to Steiner et al. — priority-ordered, single pass,
   fixed thresholds, and crucially *no* alternation between exploration,
   optimization and inlining. Decisions are made from profile frequencies
   and static sizes only; optimizations run once, at the end. *)

open Ir.Types

type params = {
  max_root_size : int;    (* stop inlining once the root reaches this *)
  max_callee_size : int;  (* never inline anything larger *)
  trivial_size : int;     (* trivial callees inline regardless of frequency *)
  max_depth : int;
  min_freq : float;
  mono_min_prob : float;  (* receiver-profile share for monomorphic speculation *)
}

let default =
  {
    max_root_size = 700;
    max_callee_size = 120;
    trivial_size = 18;
    max_depth = 12;
    min_freq = 0.05;
    mono_min_prob = 0.9;
  }

let compile ?(params = default) (prog : program) (profiles : Runtime.Profile.t)
    (root : meth_id) : fn =
  let st = Common.create prog profiles root in
  let continue_ = ref true in
  while !continue_ && Ir.Fn.size st.body < params.max_root_size do
    (* speculate monomorphic virtual calls so they become direct candidates *)
    List.iter
      (fun (c : instr) ->
        match c.kind with
        | Call { callee = Virtual _; _ } when Common.depth_of st c.id <= params.max_depth ->
            ignore (Common.speculate_mono st ~min_prob:params.mono_min_prob c)
        | _ -> ())
      (Ir.Fn.calls st.body);
    let fr = Common.freqs st in
    let candidates =
      List.filter_map
        (fun (c : instr) ->
          match c.kind with
          | Call { callee = Direct m; _ } when (Ir.Program.meth prog m).body <> None ->
              let size = Common.callee_size st m in
              let depth = Common.depth_of st c.id in
              let freq = Common.call_freq st fr c.id in
              let trivial = size <= params.trivial_size in
              if
                depth <= params.max_depth
                && size <= params.max_callee_size
                && (trivial || freq >= params.min_freq)
              then Some (c.id, m, freq /. float_of_int (max 1 size))
              else None
          | _ -> None)
        (Ir.Fn.calls st.body)
    in
    match candidates with
    | [] -> continue_ := false
    | _ ->
        let best_vid, best_m, _ =
          List.fold_left
            (fun ((_, _, bp) as acc) ((_, _, p) as cand) -> if p > bp then cand else acc)
            (List.hd candidates) (List.tl candidates)
        in
        Common.inline_at st ~call_vid:best_vid ~callee:best_m
  done;
  (* The full optimizer runs once at the end — same passes as the
     incremental inliner's rounds (the paper swaps only the inliner inside
     the same compiler), but with no alternation between inlining and
     optimization. *)
  ignore (Opt.Driver.round_root_opts prog st.body);
  st.body
