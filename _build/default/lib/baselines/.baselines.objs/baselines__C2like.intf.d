lib/baselines/c2like.mli: Ir Runtime
