lib/baselines/greedy.mli: Ir Runtime
