lib/baselines/common.ml: Hashtbl Inliner Ir List Runtime
