lib/baselines/greedy.ml: Common Ir List Opt Runtime
