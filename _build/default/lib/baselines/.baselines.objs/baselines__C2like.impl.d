lib/baselines/c2like.ml: Common Ir List Opt Runtime
