lib/baselines/common.mli: Hashtbl Ir Runtime
