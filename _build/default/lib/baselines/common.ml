(* Shared machinery for the baseline inliners: candidate scanning, depth
   tracking across splices, and monomorphic speculation. *)

open Ir.Types

type state = {
  prog : program;
  profiles : Runtime.Profile.t;
  body : fn;                            (* working copy of the root *)
  depth : (vid, int) Hashtbl.t;         (* inlining depth per call instr *)
  mutable next_syn_site : int;
  root_meth : meth_id;
}

let create (prog : program) (profiles : Runtime.Profile.t) (root_meth : meth_id) : state =
  let body =
    match (Ir.Program.meth prog root_meth).body with
    | Some fn -> Ir.Fn.copy fn
    | None -> invalid_arg "baseline: compiling an abstract method"
  in
  let st = { prog; profiles; body; depth = Hashtbl.create 32; next_syn_site = -1; root_meth } in
  List.iter (fun (c : instr) -> Hashtbl.replace st.depth c.id 0) (Ir.Fn.calls body);
  st

let fresh_site (st : state) : site =
  st.next_syn_site <- st.next_syn_site - 1;
  { sm = st.root_meth; sidx = st.next_syn_site }

let depth_of (st : state) (v : vid) : int =
  match Hashtbl.find_opt st.depth v with Some d -> d | None -> 0

(* Splices [callee]'s prepared body into the root at [call_vid] and records
   the new calls' depth. *)
let inline_at (st : state) ~(call_vid : vid) ~(callee : meth_id) : unit =
  let body =
    match (Ir.Program.meth st.prog callee).body with
    | Some fn -> Ir.Fn.copy fn
    | None -> invalid_arg "baseline: inlining an abstract method"
  in
  let d = depth_of st call_vid in
  let callee_calls = List.map (fun (c : instr) -> c.id) (Ir.Fn.calls body) in
  let remap = Ir.Splice.inline_call ~caller:st.body ~call_vid ~callee:body in
  List.iter
    (fun v ->
      match Hashtbl.find_opt remap.vmap v with
      | Some v' -> Hashtbl.replace st.depth v' (d + 1)
      | None -> ())
    callee_calls

(* Monomorphic speculation: a virtual call whose receiver profile is
   dominated (>= [min_prob]) by one class becomes a typeswitch with a
   single test; returns the direct call vid. Synthetic (negative) sites
   are never re-speculated. *)
let speculate_mono (st : state) ~(min_prob : float) (call : instr) : vid option =
  match call.kind with
  | Call { callee = Virtual sel; site; _ } when site.sidx >= 0 -> (
      match Runtime.Profile.receiver_profile st.profiles site with
      | (cls, p) :: _ when p >= min_prob -> (
          match Ir.Program.resolve st.prog cls sel with
          | Some m when (Ir.Program.meth st.prog m).body <> None ->
              let d = depth_of st call.id in
              let direct =
                Inliner.Typeswitch.build st.prog st.body ~call_vid:call.id
                  ~targets:[ (cls, m) ]
                  ~fresh_site:(fun () -> fresh_site st)
              in
              (match direct with
              | [ (_, dcall) ] ->
                  Hashtbl.replace st.depth dcall d;
                  Some dcall
              | _ -> None)
          | _ -> None)
      | _ -> None)
  | _ -> None

let callee_size (st : state) (m : meth_id) : int =
  match (Ir.Program.meth st.prog m).body with
  | Some fn -> Ir.Fn.size fn
  | None -> max_int

(* Static block frequencies of the current working body. Baselines
   recompute them after every splice (cheap at Sel sizes). *)
let freqs (st : state) : (bid, float) Hashtbl.t = Ir.Freq.static st.body

let call_freq (st : state) (fr : (bid, float) Hashtbl.t) (v : vid) : float =
  Ir.Freq.of_instr st.body fr v
