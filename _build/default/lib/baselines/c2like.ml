(* A HotSpot-C2-style baseline, as characterized in the paper (Section V):
   "inlines a single method at a time (first only trivial methods during
   bytecode parsing, and larger methods in a separate, later phase), with a
   greedy heuristic".

   Phase 1 (parse-time): exhaustively inline trivial direct callees.
   Phase 2: greedy frequency-guided inlining with fixed size thresholds,
   plus profile-guided monomorphic speculation (C2's class check). The
   optimizer runs once, after inlining — like C2's separate optimization
   phases. *)

open Ir.Types

type params = {
  trivial_size : int;       (* parse-time inline cap (C2: MaxTrivialSize) *)
  max_inline_size : int;    (* phase-2 cap (C2: MaxInlineSize-ish) *)
  freq_threshold : float;   (* phase-2 minimum callsite frequency *)
  max_root_size : int;
  max_depth : int;
  mono_min_prob : float;
}

let default =
  {
    trivial_size = 14;
    max_inline_size = 70;
    freq_threshold = 0.4;
    max_root_size = 500;
    max_depth = 9;
    mono_min_prob = 0.95;
  }

let compile ?(params = default) (prog : program) (profiles : Runtime.Profile.t)
    (root : meth_id) : fn =
  let st = Common.create prog profiles root in
  (* phase 1: trivial inlining, to a fixpoint *)
  let progress = ref true in
  while !progress && Ir.Fn.size st.body < params.max_root_size do
    progress := false;
    let next =
      List.find_map
        (fun (c : instr) ->
          match c.kind with
          | Call { callee = Direct m; _ }
            when (Ir.Program.meth prog m).body <> None
                 && Common.callee_size st m <= params.trivial_size
                 && Common.depth_of st c.id <= params.max_depth ->
              Some (c.id, m)
          | _ -> None)
        (Ir.Fn.calls st.body)
    in
    match next with
    | Some (v, m) ->
        Common.inline_at st ~call_vid:v ~callee:m;
        progress := true
    | None -> ()
  done;
  (* phase 2: greedy frequency-guided inlining of larger methods *)
  let continue_ = ref true in
  while !continue_ && Ir.Fn.size st.body < params.max_root_size do
    List.iter
      (fun (c : instr) ->
        match c.kind with
        | Call { callee = Virtual _; _ } when Common.depth_of st c.id <= params.max_depth ->
            ignore (Common.speculate_mono st ~min_prob:params.mono_min_prob c)
        | _ -> ())
      (Ir.Fn.calls st.body);
    let fr = Common.freqs st in
    let candidates =
      List.filter_map
        (fun (c : instr) ->
          match c.kind with
          | Call { callee = Direct m; _ } when (Ir.Program.meth prog m).body <> None ->
              let size = Common.callee_size st m in
              let freq = Common.call_freq st fr c.id in
              if
                Common.depth_of st c.id <= params.max_depth
                && size <= params.max_inline_size
                && (freq >= params.freq_threshold || size <= params.trivial_size)
              then Some (c.id, m, freq)
              else None
          | _ -> None)
        (Ir.Fn.calls st.body)
    in
    match candidates with
    | [] -> continue_ := false
    | _ ->
        let best_vid, best_m, _ =
          List.fold_left
            (fun ((_, _, bf) as acc) ((_, _, f) as cand) -> if f > bf then cand else acc)
            (List.hd candidates) (List.tl candidates)
        in
        Common.inline_at st ~call_vid:best_vid ~callee:best_m
  done;
  (* one full optimization pass after inlining, as with the other
     compilers — the comparison varies only the inlining decisions *)
  ignore (Opt.Driver.round_root_opts prog st.body);
  st.body
