(* Front-end driver: source text -> verified IR program. *)

type error = { msg : string; pos : Ast.pos option }

let error_to_string { msg; pos } =
  match pos with
  | Some p -> Fmt.str "%a: %s" Ast.pp_pos p msg
  | None -> msg

let compile (src : string) : (Ir.Types.program, error) result =
  match
    let toks = Lexer.tokenize src in
    let ast = Parser.parse_program toks in
    let prog, tms = Typecheck.check_program ast in
    Lower.lower_program prog tms;
    prog
  with
  | prog -> (
      match Ir.Verify.check_program prog with
      | Ok () -> Ok prog
      | Error msg -> Error { msg = "internal error: lowering produced ill-formed IR: " ^ msg; pos = None })
  | exception Lexer.Lex_error (msg, pos) -> Error { msg; pos = Some pos }
  | exception Parser.Parse_error (msg, pos) -> Error { msg; pos = Some pos }
  | exception Typecheck.Type_error (msg, pos) -> Error { msg; pos = Some pos }

let compile_exn src =
  match compile src with
  | Ok prog -> prog
  | Error e -> failwith (error_to_string e)
