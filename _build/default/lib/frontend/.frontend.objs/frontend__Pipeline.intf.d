lib/frontend/pipeline.mli: Ast Ir
