lib/frontend/lower.mli: Ir Tast
