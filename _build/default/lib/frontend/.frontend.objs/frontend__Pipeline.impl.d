lib/frontend/pipeline.ml: Ast Fmt Ir Lexer Lower Parser Typecheck
