lib/frontend/lexer.ml: Ast Buffer List Printf String
