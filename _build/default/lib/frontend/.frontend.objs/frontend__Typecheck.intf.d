lib/frontend/typecheck.mli: Ast Ir Tast
