lib/frontend/ast.ml: Fmt
