lib/frontend/lower.ml: Array Hashtbl Ir List Printf Tast
