lib/frontend/typecheck.ml: Array Ast Fmt Hashtbl Ir List Option Printf Support Tast
