lib/frontend/parser.mli: Ast Lexer
