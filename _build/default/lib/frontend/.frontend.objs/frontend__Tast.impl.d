lib/frontend/tast.ml: Ast Ir
