(* Surface syntax of Sel, the small Scala-like language the VM executes.

   Sel deliberately includes the features that make JIT inlining
   interesting: classes with single inheritance and virtual dispatch,
   first-class functions (desugared to classes with an [apply] method, as
   scalac does), arrays, and mutable locals. *)

type pos = { line : int; col : int }

let pp_pos ppf { line; col } = Fmt.pf ppf "%d:%d" line col

(* Surface types; resolved against the class table during checking. *)
type tyx =
  | Tx_int
  | Tx_bool
  | Tx_unit
  | Tx_string
  | Tx_array of tyx
  | Tx_named of string
  | Tx_fun of tyx list * tyx

type expr = { e : expr_kind; pos : pos }

and expr_kind =
  | Eint of int
  | Ebool of bool
  | Estr of string
  | Eunit
  | Enull
  | Ethis
  | Evar of string
  | Efield of expr * string             (* e.f — also array/string .length *)
  | Emethod of expr * string * expr list  (* e.m(args) *)
  | Einvoke of string * expr list       (* f(args): top-level fn, closure var, or intrinsic *)
  | Eapply of expr * expr list          (* e(args) on a non-identifier callee: closure call *)
  | Enew of string * expr list
  | Enewarr of tyx * expr
  | Elambda of (string * tyx) list * expr
  | Eif of expr * expr * expr option
  | Ewhile of expr * expr
  | Eblock of stmt list
  | Eassign of lvalue * expr
  | Ebin of string * expr * expr
  | Eun of string * expr
  | Eindex of expr * expr               (* a[i] *)

and lvalue =
  | Lvar of string
  | Lfield of expr * string
  | Lindex of expr * expr

and stmt =
  | Sexpr of expr
  | Slet of { name : string; mutbl : bool; ty : tyx option; init : expr; pos : pos }

type member =
  | Mfield of { name : string; ty : tyx; pos : pos }
  | Mmethod of {
      name : string;
      params : (string * tyx) list;
      rty : tyx;
      body : expr option;  (* None: abstract *)
      pos : pos;
    }

type classdecl = {
  cname : string;
  abstract : bool;
  ctor_params : (string * tyx) list;
  parent : (string * expr list) option;
  members : member list;
  cpos : pos;
}

type fundef = {
  fname : string;
  params : (string * tyx) list;
  rty : tyx;
  body : expr;
  fpos : pos;
}

type topdecl = Dclass of classdecl | Dfun of fundef

type prog = topdecl list

let rec pp_tyx ppf = function
  | Tx_int -> Fmt.string ppf "Int"
  | Tx_bool -> Fmt.string ppf "Bool"
  | Tx_unit -> Fmt.string ppf "Unit"
  | Tx_string -> Fmt.string ppf "String"
  | Tx_array t -> Fmt.pf ppf "Array[%a]" pp_tyx t
  | Tx_named n -> Fmt.string ppf n
  | Tx_fun (args, r) ->
      Fmt.pf ppf "(%a) => %a" (Fmt.list ~sep:Fmt.comma pp_tyx) args pp_tyx r

let tyx_to_string t = Fmt.str "%a" pp_tyx t
