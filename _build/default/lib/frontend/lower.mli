(** SSA lowering from the typed AST, using Braun et al.'s on-the-fly SSA
    construction (mutable locals become per-block definition tables; phis
    are created on demand and completed when blocks seal; trivial phis are
    removed as discovered).

    Assigns every Call and If its stable profile site key. *)

val lower_method : Ir.Types.program -> Tast.tmethod -> unit
(** Lowers one checked method and installs the body in the program. *)

val lower_program : Ir.Types.program -> Tast.tmethod list -> unit
