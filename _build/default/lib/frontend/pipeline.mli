(** Front-end driver: Sel source text to a verified IR program. *)

type error = { msg : string; pos : Ast.pos option }

val error_to_string : error -> string

val compile : string -> (Ir.Types.program, error) result
(** Lex, parse, check, lower, verify. The produced program's method bodies
    are *unoptimized*; run {!Opt.Driver.prepare_program} (the JIT engine
    does this automatically) before profiling or inlining. *)

val compile_exn : string -> Ir.Types.program
(** @raise Failure with a rendered error. *)
