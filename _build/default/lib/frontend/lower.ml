(* Lowering from the typed AST to SSA IR, using Braun et al.'s on-the-fly
   SSA construction (CC 2013): mutable locals are numbered slots; reads
   resolve through per-block definition tables; phis are created on demand
   in join blocks, incomplete phis are completed when a block is sealed
   (i.e., when all its predecessors are known), and trivial phis are
   removed as they are discovered.

   Every Call and If receives a site key (method id, ordinal) here, exactly
   once per source-level callsite/branch; all later copies of the IR keep
   the keys, which is what lets profiles survive inlining. *)

open Ir.Types
open Tast

type state = {
  fn : fn;
  mid : meth_id;
  mutable site_counter : int;
  mutable cur : bid;                       (* block under construction *)
  defs : (int * bid, vid) Hashtbl.t;       (* (slot, block) -> value *)
  sealed : (bid, unit) Hashtbl.t;
  incomplete : (bid, (int * vid) list ref) Hashtbl.t;
  preds : (bid, bid list ref) Hashtbl.t;   (* maintained as edges are added *)
  slot_ty : (int, ty) Hashtbl.t;
  mutable next_slot : int;
}

let next_site st =
  let s = { sm = st.mid; sidx = st.site_counter } in
  st.site_counter <- st.site_counter + 1;
  s

let fresh_slot st ty =
  let s = st.next_slot in
  st.next_slot <- s + 1;
  Hashtbl.replace st.slot_ty s ty;
  s

let preds_of st b = match Hashtbl.find_opt st.preds b with Some r -> !r | None -> []

let link st ~pred ~succ =
  let r =
    match Hashtbl.find_opt st.preds succ with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.replace st.preds succ r;
        r
  in
  r := !r @ [ pred ]

let new_block st = Ir.Fn.add_block st.fn

let emit st k = Ir.Fn.append st.fn st.cur k

let terminate st (t : terminator) =
  Ir.Fn.set_term st.fn st.cur t;
  List.iter (fun s -> link st ~pred:st.cur ~succ:s) (Ir.Fn.succs_of_term t)

(* ---- Braun construction ---- *)

let write_var st slot v = Hashtbl.replace st.defs (slot, st.cur) v

let write_var_in st slot b v = Hashtbl.replace st.defs (slot, b) v

let rec read_var_in st slot b : vid =
  match Hashtbl.find_opt st.defs (slot, b) with
  | Some v -> v
  | None -> read_var_recursive st slot b

and read_var_recursive st slot b : vid =
  let ty =
    match Hashtbl.find_opt st.slot_ty slot with
    | Some t -> t
    | None -> invalid_arg (Printf.sprintf "Lower: read of undeclared slot %d" slot)
  in
  if not (Hashtbl.mem st.sealed b) then begin
    (* incomplete phi: operands filled at seal time *)
    let phi = Ir.Fn.prepend st.fn b (Phi { ty; inputs = [] }) in
    let r =
      match Hashtbl.find_opt st.incomplete b with
      | Some r -> r
      | None ->
          let r = ref [] in
          Hashtbl.replace st.incomplete b r;
          r
    in
    r := (slot, phi) :: !r;
    write_var_in st slot b phi;
    phi
  end
  else
    match preds_of st b with
    | [ p ] ->
        let v = read_var_in st slot p in
        write_var_in st slot b v;
        v
    | ps ->
        let phi = Ir.Fn.prepend st.fn b (Phi { ty; inputs = [] }) in
        write_var_in st slot b phi;
        add_phi_operands st slot phi ps

and add_phi_operands st slot phi ps : vid =
  let inputs = List.map (fun p -> (p, read_var_in st slot p)) ps in
  (match Ir.Fn.kind st.fn phi with
  | Phi p -> p.inputs <- inputs
  | _ -> assert false);
  try_remove_trivial st phi

(* A phi whose operands are all equal (ignoring self-references) is a copy;
   replace it and its uses with the unique operand. *)
and try_remove_trivial st phi : vid =
  match Ir.Fn.kind st.fn phi with
  | Phi { inputs; _ } -> (
      let ops =
        List.map snd inputs |> List.filter (fun v -> v <> phi) |> List.sort_uniq compare
      in
      match ops with
      | [ v ] ->
          Ir.Fn.replace_uses st.fn ~old_v:phi ~new_v:v;
          Hashtbl.iter
            (fun key dv -> if dv = phi then Hashtbl.replace st.defs key v)
            (Hashtbl.copy st.defs);
          Ir.Fn.delete_instr st.fn phi;
          v
      | _ -> phi)
  | _ -> phi

let read_var st slot = read_var_in st slot st.cur

let seal st b =
  if not (Hashtbl.mem st.sealed b) then begin
    Hashtbl.replace st.sealed b ();
    match Hashtbl.find_opt st.incomplete b with
    | None -> ()
    | Some r ->
        List.iter (fun (slot, phi) -> ignore (add_phi_operands st slot phi (preds_of st b))) !r;
        Hashtbl.remove st.incomplete b
  end

(* ---- expression lowering ---- *)

let rec lower_expr st (e : texpr) : vid =
  match e.k with
  | Tconst c -> emit st (Const c)
  | Tlocal slot -> read_var st slot
  | Tgetfield (obj, slot, fname, fty) ->
      let o = lower_expr st obj in
      emit st (GetField { obj = o; slot; fname; fty })
  | Tstatic (m, args) ->
      let args = List.map (lower_expr st) args in
      emit st (Call { callee = Direct m; args; site = next_site st; rty = e.ty })
  | Tvirtual (recv, sel, args, rty) ->
      let r = lower_expr st recv in
      let args = List.map (lower_expr st) args in
      emit st (Call { callee = Virtual sel; args = r :: args; site = next_site st; rty })
  | Tintrinsic (i, args) ->
      let args = List.map (lower_expr st) args in
      emit st (Intrinsic (i, args))
  | Tnew (c, init, args) ->
      let obj = emit st (New c) in
      let args = List.map (lower_expr st) args in
      let _ =
        emit st
          (Call { callee = Direct init; args = obj :: args; site = next_site st; rty = Tunit })
      in
      obj
  | Tnewarr (ety, len) ->
      let l = lower_expr st len in
      emit st (NewArray { ety; len = l })
  | Tif (cond, then_, else_) -> lower_if st e.ty cond then_ else_
  | Twhile (cond, body) -> lower_while st cond body
  | Tblock stmts ->
      let last = ref None in
      List.iter
        (fun s ->
          match s with
          | TSexpr te -> last := Some (lower_expr st te)
          | TSlet (slot, init) ->
              Hashtbl.replace st.slot_ty slot init.ty;
              st.next_slot <- max st.next_slot (slot + 1);
              let v = lower_expr st init in
              write_var st slot v;
              last := None)
        stmts;
      (match !last with Some v -> v | None -> emit st (Const Cunit))
  | Tassignlocal (slot, rhs) ->
      let v = lower_expr st rhs in
      write_var st slot v;
      emit st (Const Cunit)
  | Tassignfield (obj, slot, fname, rhs) ->
      let o = lower_expr st obj in
      let v = lower_expr st rhs in
      ignore (emit st (SetField { obj = o; slot; fname; value = v }));
      emit st (Const Cunit)
  | Tassignindex (arr, idx, rhs) ->
      let a = lower_expr st arr in
      let i = lower_expr st idx in
      let v = lower_expr st rhs in
      ignore (emit st (ArraySet { arr = a; idx = i; value = v }));
      emit st (Const Cunit)
  | Tbinop (op, a, b) ->
      let va = lower_expr st a in
      let vb = lower_expr st b in
      emit st (Binop (op, va, vb))
  | Tunop (op, a) ->
      let va = lower_expr st a in
      emit st (Unop (op, va))
  | Tindex (arr, idx, ety) ->
      let a = lower_expr st arr in
      let i = lower_expr st idx in
      emit st (ArrayGet { arr = a; idx = i; ety })
  | Tarraylen a ->
      let va = lower_expr st a in
      emit st (ArrayLen va)

and lower_if st (ty : ty) cond then_ else_ : vid =
  let cv = lower_expr st cond in
  let bt = new_block st in
  let join = new_block st in
  let has_value = ty <> Tunit && else_ <> None in
  let tmp = if has_value then Some (fresh_slot st ty) else None in
  (match else_ with
  | None ->
      terminate st (If { cond = cv; site = next_site st; tb = bt; fb = join });
      seal st bt;
      st.cur <- bt;
      let _ = lower_expr st then_ in
      terminate st (Goto join);
      seal st join
  | Some else_e ->
      let bf = new_block st in
      terminate st (If { cond = cv; site = next_site st; tb = bt; fb = bf });
      seal st bt;
      seal st bf;
      st.cur <- bt;
      let tv = lower_expr st then_ in
      (match tmp with Some s -> write_var st s tv | None -> ());
      terminate st (Goto join);
      st.cur <- bf;
      let ev = lower_expr st else_e in
      (match tmp with Some s -> write_var st s ev | None -> ());
      terminate st (Goto join);
      seal st join);
  st.cur <- join;
  match tmp with Some s -> read_var st s | None -> emit st (Const Cunit)

and lower_while st cond body : vid =
  let header = new_block st in
  terminate st (Goto header);
  st.cur <- header;
  (* the header is sealed only after the back edge exists *)
  let cv = lower_expr st cond in
  let bbody = new_block st in
  let exit = new_block st in
  terminate st (If { cond = cv; site = next_site st; tb = bbody; fb = exit });
  seal st bbody;
  seal st exit;
  st.cur <- bbody;
  let _ = lower_expr st body in
  terminate st (Goto header);
  seal st header;
  st.cur <- exit;
  emit st (Const Cunit)

(* ---- method lowering ---- *)

let lower_method (prog : program) (tm : tmethod) : unit =
  let m = Ir.Program.meth prog tm.tm_id in
  let fn = Ir.Fn.create ~fname:m.m_name ~param_tys:(Array.copy m.m_param_tys) ~rty:m.m_rty in
  let entry = Ir.Fn.add_block fn in
  fn.entry <- entry;
  let st =
    {
      fn;
      mid = tm.tm_id;
      site_counter = 0;
      cur = entry;
      defs = Hashtbl.create 64;
      sealed = Hashtbl.create 16;
      incomplete = Hashtbl.create 8;
      preds = Hashtbl.create 16;
      slot_ty = Hashtbl.create 16;
      next_slot = tm.nslots;
    }
  in
  Hashtbl.replace st.sealed entry ();
  Array.iteri
    (fun i ty ->
      Hashtbl.replace st.slot_ty i ty;
      let v = emit st (Param i) in
      write_var st i v)
    m.m_param_tys;
  let rv = lower_expr st tm.body in
  let rv = if m.m_rty = Tunit then emit st (Const Cunit) else rv in
  terminate st (Return rv);
  Ir.Program.set_body prog tm.tm_id fn

let lower_program (prog : program) (tms : tmethod list) : unit =
  List.iter (lower_method prog) tms
