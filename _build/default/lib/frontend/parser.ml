(* Recursive-descent parser for Sel with precedence climbing for binary
   operators. The grammar is LL(k) with one real ambiguity — `(` can open a
   parenthesized expression or a lambda parameter list — resolved by
   scanning ahead for `=>` after the matching `)`. *)

open Ast
open Lexer

exception Parse_error of string * Ast.pos

type state = { toks : tok array; mutable k : int }

let cur st = st.toks.(st.k)
let peek st n = if st.k + n < Array.length st.toks then st.toks.(st.k + n).t else EOF
let advance st = if st.k < Array.length st.toks - 1 then st.k <- st.k + 1

let error st msg = raise (Parse_error (msg, (cur st).pos))

let expect_punct st s =
  match (cur st).t with
  | PUNCT p when p = s -> advance st
  | t -> error st (Printf.sprintf "expected '%s' but found '%s'" s (token_to_string t))

let expect_kw st s =
  match (cur st).t with
  | KW p when p = s -> advance st
  | t -> error st (Printf.sprintf "expected '%s' but found '%s'" s (token_to_string t))

let expect_ident st =
  match (cur st).t with
  | IDENT name -> advance st; name
  | t -> error st (Printf.sprintf "expected identifier but found '%s'" (token_to_string t))

let at_punct st s = match (cur st).t with PUNCT p -> p = s | _ -> false
let at_kw st s = match (cur st).t with KW p -> p = s | _ -> false

(* ---- types ---- *)

let rec parse_ty st : tyx =
  let base = parse_ty_atom st in
  (* arrow type: T => R *)
  if at_punct st "=>" then begin
    advance st;
    let r = parse_ty st in
    match base with
    | Tx_fun _ -> error st "parenthesize the argument list of a function type"
    | _ -> Tx_fun ([ base ], r)
  end
  else base

and parse_ty_atom st : tyx =
  match (cur st).t with
  | IDENT "Int" -> advance st; Tx_int
  | IDENT "Bool" -> advance st; Tx_bool
  | IDENT "Unit" -> advance st; Tx_unit
  | IDENT "String" -> advance st; Tx_string
  | IDENT "Array" ->
      advance st;
      expect_punct st "[";
      let t = parse_ty st in
      expect_punct st "]";
      Tx_array t
  | IDENT name -> advance st; Tx_named name
  | PUNCT "(" ->
      (* (T1, T2) => R  or parenthesized type *)
      advance st;
      if at_punct st ")" then begin
        advance st;
        expect_punct st "=>";
        let r = parse_ty st in
        Tx_fun ([], r)
      end
      else begin
        let first = parse_ty st in
        let args = ref [ first ] in
        while at_punct st "," do
          advance st;
          args := parse_ty st :: !args
        done;
        expect_punct st ")";
        if at_punct st "=>" then begin
          advance st;
          let r = parse_ty st in
          Tx_fun (List.rev !args, r)
        end
        else
          match !args with
          | [ only ] -> only
          | _ -> error st "tuple types are not supported"
      end
  | t -> error st (Printf.sprintf "expected a type but found '%s'" (token_to_string t))

let parse_params st : (string * tyx) list =
  expect_punct st "(";
  let params = ref [] in
  if not (at_punct st ")") then begin
    let one () =
      let name = expect_ident st in
      expect_punct st ":";
      let ty = parse_ty st in
      params := (name, ty) :: !params
    in
    one ();
    while at_punct st "," do
      advance st;
      one ()
    done
  end;
  expect_punct st ")";
  List.rev !params

(* ---- expressions ---- *)

(* Binary precedence: larger binds tighter. *)
let prec = function
  | "||" -> 1
  | "&&" -> 2
  | "|" -> 3
  | "^" -> 4
  | "&" -> 5
  | "==" | "!=" -> 6
  | "<" | "<=" | ">" | ">=" -> 7
  | "<<" | ">>" -> 8
  | "+" | "-" -> 9
  | "*" | "/" | "%" -> 10
  | _ -> -1

(* Is the `(` at index [k] the start of a lambda parameter list?
   Scan to the matching `)` and look for `=>`. *)
let lambda_ahead st =
  let n = Array.length st.toks in
  let rec scan k depth =
    if k >= n then false
    else
      match st.toks.(k).t with
      | PUNCT "(" -> scan (k + 1) (depth + 1)
      | PUNCT ")" ->
          if depth = 1 then k + 1 < n && st.toks.(k + 1).t = PUNCT "=>"
          else scan (k + 1) (depth - 1)
      | EOF -> false
      | _ -> scan (k + 1) depth
  in
  at_punct st "(" && scan st.k 0

let rec parse_expr st : expr = parse_assign st

and parse_assign st : expr =
  let pos = (cur st).pos in
  let lhs = parse_binary st 0 in
  if at_punct st "=" then begin
    advance st;
    let rhs = parse_assign st in
    let lv =
      match lhs.e with
      | Evar name -> Lvar name
      | Efield (obj, f) -> Lfield (obj, f)
      | Eindex (arr, idx) -> Lindex (arr, idx)
      | _ -> error st "invalid assignment target"
    in
    { e = Eassign (lv, rhs); pos }
  end
  else lhs

and parse_binary st min_prec : expr =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match (cur st).t with
    | PUNCT op when prec op >= 1 && prec op >= min_prec ->
        let pos = (cur st).pos in
        advance st;
        let rhs = parse_binary st (prec op + 1) in
        lhs := { e = Ebin (op, !lhs, rhs); pos }
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st : expr =
  let pos = (cur st).pos in
  match (cur st).t with
  | PUNCT "!" ->
      advance st;
      { e = Eun ("!", parse_unary st); pos }
  | PUNCT "-" ->
      advance st;
      { e = Eun ("-", parse_unary st); pos }
  | _ -> parse_postfix st

and parse_postfix st : expr =
  let e = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    let pos = (cur st).pos in
    if at_punct st "." then begin
      advance st;
      let name = expect_ident st in
      if at_punct st "(" then
        let args = parse_args st in
        e := { e = Emethod (!e, name, args); pos }
      else e := { e = Efield (!e, name); pos }
    end
    else if at_punct st "[" then begin
      advance st;
      let idx = parse_expr st in
      expect_punct st "]";
      e := { e = Eindex (!e, idx); pos }
    end
    else if at_punct st "(" then begin
      let args = parse_args st in
      match !e with
      | { e = Evar name; pos = vpos } -> e := { e = Einvoke (name, args); pos = vpos }
      | callee -> e := { e = Eapply (callee, args); pos }
    end
    else continue_ := false
  done;
  !e

and parse_args st : expr list =
  expect_punct st "(";
  let args = ref [] in
  if not (at_punct st ")") then begin
    args := [ parse_expr st ];
    while at_punct st "," do
      advance st;
      args := parse_expr st :: !args
    done
  end;
  expect_punct st ")";
  List.rev !args

and parse_primary st : expr =
  let pos = (cur st).pos in
  match (cur st).t with
  | INT n -> advance st; { e = Eint n; pos }
  | STRING s -> advance st; { e = Estr s; pos }
  | KW "true" -> advance st; { e = Ebool true; pos }
  | KW "false" -> advance st; { e = Ebool false; pos }
  | KW "null" -> advance st; { e = Enull; pos }
  | KW "this" -> advance st; { e = Ethis; pos }
  | KW "new" ->
      advance st;
      if (match (cur st).t with IDENT "Array" -> true | _ -> false)
         && peek st 1 = PUNCT "["
      then begin
        advance st;
        expect_punct st "[";
        let ety = parse_ty st in
        expect_punct st "]";
        expect_punct st "(";
        let len = parse_expr st in
        expect_punct st ")";
        { e = Enewarr (ety, len); pos }
      end
      else begin
        let name = expect_ident st in
        let args = parse_args st in
        { e = Enew (name, args); pos }
      end
  | KW "if" ->
      advance st;
      expect_punct st "(";
      let cond = parse_expr st in
      expect_punct st ")";
      let then_ = parse_expr st in
      if at_kw st "else" then begin
        advance st;
        let else_ = parse_expr st in
        { e = Eif (cond, then_, Some else_); pos }
      end
      else { e = Eif (cond, then_, None); pos }
  | KW "while" ->
      advance st;
      expect_punct st "(";
      let cond = parse_expr st in
      expect_punct st ")";
      let body = parse_expr st in
      { e = Ewhile (cond, body); pos }
  | PUNCT "{" -> parse_block st
  | PUNCT "(" when lambda_ahead st ->
      let params = parse_params st in
      expect_punct st "=>";
      let body = parse_expr st in
      { e = Elambda (params, body); pos }
  | PUNCT "(" ->
      advance st;
      if at_punct st ")" then begin
        advance st;
        { e = Eunit; pos }
      end
      else begin
        let e = parse_expr st in
        expect_punct st ")";
        e
      end
  | IDENT name -> advance st; { e = Evar name; pos }
  | t -> error st (Printf.sprintf "expected an expression but found '%s'" (token_to_string t))

and parse_block st : expr =
  let pos = (cur st).pos in
  expect_punct st "{";
  let stmts = ref [] in
  while not (at_punct st "}") do
    let spos = (cur st).pos in
    (match (cur st).t with
    | KW (("val" | "var") as kw) ->
        advance st;
        let name = expect_ident st in
        let ty =
          if at_punct st ":" then begin
            advance st;
            Some (parse_ty st)
          end
          else None
        in
        expect_punct st "=";
        let init = parse_expr st in
        stmts := Slet { name; mutbl = kw = "var"; ty; init; pos = spos } :: !stmts
    | _ -> stmts := Sexpr (parse_expr st) :: !stmts);
    while at_punct st ";" do
      advance st
    done
  done;
  expect_punct st "}";
  { e = Eblock (List.rev !stmts); pos }

(* ---- declarations ---- *)

let parse_member st : member =
  let pos = (cur st).pos in
  match (cur st).t with
  | KW "var" ->
      advance st;
      let name = expect_ident st in
      expect_punct st ":";
      let ty = parse_ty st in
      (if at_punct st ";" then advance st);
      Mfield { name; ty; pos }
  | KW "def" ->
      advance st;
      let name = expect_ident st in
      let params = parse_params st in
      expect_punct st ":";
      let rty = parse_ty st in
      let body =
        if at_punct st "=" then begin
          advance st;
          Some (parse_expr st)
        end
        else None
      in
      (if at_punct st ";" then advance st);
      Mmethod { name; params; rty; body; pos }
  | t -> error st (Printf.sprintf "expected a class member but found '%s'" (token_to_string t))

let parse_classdecl st ~abstract : classdecl =
  let cpos = (cur st).pos in
  expect_kw st "class";
  let cname = expect_ident st in
  let ctor_params = if at_punct st "(" then parse_params st else [] in
  let parent =
    if at_kw st "extends" then begin
      advance st;
      let pname = expect_ident st in
      let args = if at_punct st "(" then parse_args st else [] in
      Some (pname, args)
    end
    else None
  in
  expect_punct st "{";
  let members = ref [] in
  while not (at_punct st "}") do
    members := parse_member st :: !members
  done;
  expect_punct st "}";
  { cname; abstract; ctor_params; parent; members = List.rev !members; cpos }

let parse_fundef st : fundef =
  let fpos = (cur st).pos in
  expect_kw st "def";
  let fname = expect_ident st in
  let params = parse_params st in
  expect_punct st ":";
  let rty = parse_ty st in
  expect_punct st "=";
  let body = parse_expr st in
  { fname; params; rty; body; fpos }

let parse_program (toks : tok list) : prog =
  let st = { toks = Array.of_list toks; k = 0 } in
  let decls = ref [] in
  let rec go () =
    match (cur st).t with
    | EOF -> ()
    | KW "abstract" ->
        advance st;
        decls := Dclass (parse_classdecl st ~abstract:true) :: !decls;
        go ()
    | KW "class" ->
        decls := Dclass (parse_classdecl st ~abstract:false) :: !decls;
        go ()
    | KW "def" ->
        decls := Dfun (parse_fundef st) :: !decls;
        go ()
    | t -> error st (Printf.sprintf "expected a declaration but found '%s'" (token_to_string t))
  in
  go ();
  List.rev !decls

let parse_string (src : string) : prog = parse_program (Lexer.tokenize src)
