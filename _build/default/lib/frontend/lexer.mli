(** Hand-written lexer for Sel. *)

type token =
  | INT of int
  | STRING of string
  | IDENT of string
  | KW of string     (** class abstract extends def val var new if else while true false null this *)
  | PUNCT of string
  | EOF

type tok = { t : token; pos : Ast.pos }

exception Lex_error of string * Ast.pos

val keywords : string list
val token_to_string : token -> string

val tokenize : string -> tok list
(** The returned list always ends with [EOF]. Line ([//]) and nesting block
    ([/* */]) comments are skipped.
    @raise Lex_error on malformed input. *)
