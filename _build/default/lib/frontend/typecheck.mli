(** Name resolution, type checking and lambda lifting.

    Builds the program's class and method tables (an {!Ir.Types.program})
    and produces one checked {!Tast.tmethod} per concrete method body,
    ready for SSA lowering. Lambdas are lifted to fresh classes extending
    a synthetic per-signature function base class, with captured values as
    constructor parameters and fields; capturing a mutable local is
    rejected. *)

exception Type_error of string * Ast.pos

val check_program : Ast.prog -> Ir.Types.program * Tast.tmethod list
(** @raise Type_error on any static error (unknown names, type mismatches,
    abstract instantiation, missing overrides, inheritance cycles,
    missing [main], ...). *)
