(* Typed AST: the output of the checker and input to SSA lowering.

   Names are resolved (locals to slots, fields to layout slots, calls to
   static targets / virtual selectors / intrinsics), lambdas are lifted to
   classes, and every node carries its type. *)

open Ir.Types

type texpr = { ty : ty; k : tkind; pos : Ast.pos }

and tkind =
  | Tconst of const
  | Tlocal of int                                   (* slot; params come first *)
  | Tgetfield of texpr * int * string * ty          (* obj, slot, name, field ty *)
  | Tstatic of meth_id * texpr list
  | Tvirtual of texpr * string * texpr list * ty    (* receiver, selector, args, return *)
  | Tintrinsic of intrinsic * texpr list
  | Tnew of class_id * meth_id * texpr list         (* class, <init>, ctor args *)
  | Tnewarr of ty * texpr
  | Tif of texpr * texpr * texpr option
  | Twhile of texpr * texpr
  | Tblock of tstmt list
  | Tassignlocal of int * texpr
  | Tassignfield of texpr * int * string * texpr
  | Tassignindex of texpr * texpr * texpr
  | Tbinop of binop * texpr * texpr
  | Tunop of unop * texpr
  | Tindex of texpr * texpr * ty                    (* array, index, element ty *)
  | Tarraylen of texpr

and tstmt = TSexpr of texpr | TSlet of int * texpr

(* A checked method body, ready for lowering. [nslots] counts all locals
   including parameters; parameter [i] lives in slot [i]. *)
type tmethod = {
  tm_id : meth_id;
  nslots : int;
  body : texpr;
}

let unit_e pos : texpr = { ty = Tunit; k = Tconst Cunit; pos }
