(* Name resolution, type checking and lambda lifting.

   Produces the program's class/method tables (an [Ir.Types.program]) plus a
   checked [Tast.tmethod] per concrete method, ready for SSA lowering.

   Lambdas are lifted the way scalac lifts closures: each lambda becomes a
   fresh class extending a synthetic, signature-specific function base class
   (with one abstract [apply] method); captured variables become constructor
   parameters and fields. Captures are by reference for objects and by value
   for immutable primitives; capturing a *mutable* local is rejected (use a
   one-field box class instead), which keeps capture semantics exact. *)

open Ir.Types
open Tast

exception Type_error of string * Ast.pos

let err pos fmt = Fmt.kstr (fun s -> raise (Type_error (s, pos))) fmt

type local = { slot : int; lty : ty; mutbl : bool }

type capture = {
  cap_name : string;          (* "$this" for the enclosing receiver *)
  cap_ty : ty;
  cap_init : Tast.texpr;      (* evaluated in the enclosing frame *)
}

type ctx = {
  prog : program;
  cenv : (string, class_id) Hashtbl.t;
  (* signature-mangled name -> function base class; plus the reverse so we
     can recognize "callable" object types. *)
  fnbases : (string, class_id) Hashtbl.t;
  fnsigs : (class_id, ty list * ty) Hashtbl.t;
  mutable lambda_count : int;
  mutable tmethods : Tast.tmethod list;
}

type mkind =
  | Mplain
  | Mlambda of { outer : mctx; mutable caps : capture list }

and mctx = {
  c : ctx;
  mutable locals : (string * local) list;  (* innermost first *)
  mutable nslots : int;
  this_cls : class_id option;
  kind : mkind;
}

(* ---------- type utilities ---------- *)

let null_cls = -1

let rec resolve_ty ctx pos (t : Ast.tyx) : ty =
  match t with
  | Tx_int -> Tint
  | Tx_bool -> Tbool
  | Tx_unit -> Tunit
  | Tx_string -> Tstring
  | Tx_array t -> Tarray (resolve_ty ctx pos t)
  | Tx_named n -> (
      match Hashtbl.find_opt ctx.cenv n with
      | Some c -> Tobj c
      | None -> err pos "unknown type %s" n)
  | Tx_fun (args, r) ->
      let ptys = List.map (resolve_ty ctx pos) args in
      let rty = resolve_ty ctx pos r in
      Tobj (fnbase ctx ptys rty)

(* The synthetic base class for function values of a given signature. *)
and fnbase ctx (ptys : ty list) (rty : ty) : class_id =
  let key =
    Fmt.str "Fn[(%a)=>%a]"
      (Fmt.list ~sep:Fmt.comma Ir.Printer.pp_ty) ptys
      Ir.Printer.pp_ty rty
  in
  match Hashtbl.find_opt ctx.fnbases key with
  | Some c -> c
  | None ->
      let c = Ir.Program.add_class ctx.prog ~name:key ~parent:None ~own_fields:[] in
      (Ir.Program.cls ctx.prog c).is_abstract <- true;
      let apply =
        Ir.Program.add_meth ctx.prog
          ~name:(key ^ ".apply") ~selector:"apply" ~owner:(Some c)
          ~param_tys:(Array.of_list (Tobj c :: ptys)) ~rty
      in
      Ir.Program.register_in_vtable ctx.prog apply;
      Hashtbl.replace ctx.fnbases key c;
      Hashtbl.replace ctx.fnsigs c (ptys, rty);
      c

let assignable prog ~(from : ty) ~(to_ : ty) : bool =
  from = to_
  ||
  match (from, to_) with
  | Tobj f, (Tobj _ | Tarray _) when f = null_cls -> true
  | Tobj a, Tobj b -> Ir.Program.is_subclass prog ~sub:a ~sup:b
  | _ -> false

(* Least common supertype for if-join purposes; [None] when unrelated. *)
let join_ty prog t1 t2 : ty option =
  if t1 = t2 then Some t1
  else
    match (t1, t2) with
    | Tobj f, other when f = null_cls -> if assignable prog ~from:t1 ~to_:other then Some other else None
    | other, Tobj f when f = null_cls -> if assignable prog ~from:t2 ~to_:other then Some other else None
    | Tobj a, Tobj b ->
        let rec ancestors c acc =
          let acc = c :: acc in
          match (Ir.Program.cls prog c).parent with
          | Some p -> ancestors p acc
          | None -> acc
        in
        let bs = ancestors b [] in
        let rec up c =
          if List.mem c bs then Some (Tobj c)
          else
            match (Ir.Program.cls prog c).parent with
            | Some p -> up p
            | None -> None
        in
        up a
    | _ -> None

(* ---------- name resolution with lambda capture ---------- *)

let this_ty mctx pos : ty =
  match mctx.this_cls with
  | Some c -> Tobj c
  | None -> err pos "'this' used outside of a class"

(* Adds a capture (or returns the existing one) and yields its field slot.
   Lambda classes have no inherited fields, so the slot is the capture
   index. *)
let add_capture (l : mkind) (cap_name : string) (cap_ty : ty) (cap_init : Tast.texpr) : int =
  match l with
  | Mplain -> invalid_arg "add_capture: not a lambda context"
  | Mlambda lam -> (
      let rec find i = function
        | [] -> None
        | c :: _ when c.cap_name = cap_name -> Some i
        | _ :: rest -> find (i + 1) rest
      in
      match find 0 lam.caps with
      | Some i -> i
      | None ->
          lam.caps <- lam.caps @ [ { cap_name; cap_ty; cap_init } ];
          List.length lam.caps - 1)

let lambda_this (mctx : mctx) pos : Tast.texpr =
  { ty = this_ty mctx pos; k = Tlocal 0; pos }

(* Resolves 'this' in the current frame, capturing through lambdas. *)
let rec resolve_this (mctx : mctx) pos : Tast.texpr =
  match mctx.kind with
  | Mplain -> (
      match mctx.this_cls with
      | Some c -> { ty = Tobj c; k = Tlocal 0; pos }
      | None -> err pos "'this' used outside of a class")
  | Mlambda { outer; _ } ->
      let outer_this = resolve_this outer pos in
      let slot = add_capture mctx.kind "$this" outer_this.ty outer_this in
      { ty = outer_this.ty; k = Tgetfield (lambda_this mctx pos, slot, "$this", outer_this.ty); pos }

(* Looks a variable up in the current frame. Returns the access expression
   plus whether it denotes a mutable location (for assignment checking). *)
let rec resolve_var (mctx : mctx) (name : string) pos : (Tast.texpr * bool) option =
  match List.assoc_opt name mctx.locals with
  | Some { slot; lty; mutbl } -> Some ({ ty = lty; k = Tlocal slot; pos }, mutbl)
  | None -> (
      match mctx.kind with
      | Mplain -> (
          (* a bare name inside a class body may be a field of [this] *)
          match mctx.this_cls with
          | Some c -> (
              match Ir.Program.field_slot mctx.c.prog c name with
              | Some slot ->
                  let fty = snd (Ir.Program.cls mctx.c.prog c).layout.(slot) in
                  Some
                    ( { ty = fty; k = Tgetfield ({ ty = Tobj c; k = Tlocal 0; pos }, slot, name, fty); pos },
                      true )
              | None -> None)
          | None -> None)
      | Mlambda { outer; _ } -> (
          match resolve_var outer name pos with
          | None -> None
          | Some (outer_expr, mutbl) -> (
              match outer_expr.k with
              | Tgetfield (base, slot, fname, fty) ->
                  (* capture the receiver object; field mutation stays visible *)
                  let base_slot = add_capture mctx.kind ("$recv_" ^ name) base.ty base in
                  let base_access : Tast.texpr =
                    { ty = base.ty;
                      k = Tgetfield (lambda_this mctx pos, base_slot, "$recv_" ^ name, base.ty);
                      pos }
                  in
                  Some ({ ty = fty; k = Tgetfield (base_access, slot, fname, fty); pos }, true)
              | Tlocal _ when mutbl ->
                  err pos
                    "cannot capture mutable variable %s in a lambda; wrap it in a one-field box class"
                    name
              | _ ->
                  let slot = add_capture mctx.kind name outer_expr.ty outer_expr in
                  Some
                    ( { ty = outer_expr.ty;
                        k = Tgetfield (lambda_this mctx pos, slot, name, outer_expr.ty);
                        pos },
                      false ))))

(* ---------- expression checking ---------- *)

let intrinsic_names = [ "print"; "println"; "strget"; "streq"; "abs"; "min"; "max" ]

let rec check_expr ?(expect : ty option) (mctx : mctx) (e : Ast.expr) : Tast.texpr =
  let ctx = mctx.c in
  let prog = ctx.prog in
  let pos = e.pos in
  match e.e with
  | Eint n -> { ty = Tint; k = Tconst (Cint n); pos }
  | Ebool b -> { ty = Tbool; k = Tconst (Cbool b); pos }
  | Estr s -> { ty = Tstring; k = Tconst (Cstring s); pos }
  | Eunit -> { ty = Tunit; k = Tconst Cunit; pos }
  | Enull -> { ty = Tobj null_cls; k = Tconst Cnull; pos }
  | Ethis -> resolve_this mctx pos
  | Evar name -> (
      match resolve_var mctx name pos with
      | Some (te, _) -> te
      | None -> err pos "unbound variable %s" name)
  | Efield (recv, fname) -> (
      let trecv = check_expr mctx recv in
      match (trecv.ty, fname) with
      | Tarray _, "length" -> { ty = Tint; k = Tarraylen trecv; pos }
      | Tstring, "length" -> { ty = Tint; k = Tintrinsic (Istr_len, [ trecv ]); pos }
      | Tobj c, _ when c <> null_cls -> (
          match Ir.Program.field_slot prog c fname with
          | Some slot ->
              let fty = snd (Ir.Program.cls prog c).layout.(slot) in
              { ty = fty; k = Tgetfield (trecv, slot, fname, fty); pos }
          | None -> err pos "class %s has no field %s" (Ir.Program.cls prog c).c_name fname)
      | t, _ -> err pos "type %s has no field %s" (Ir.Printer.ty_to_string t) fname)
  | Emethod (recv, m, args) -> (
      let trecv = check_expr mctx recv in
      match trecv.ty with
      | Tobj c when c <> null_cls -> check_virtual mctx pos trecv c m args
      | t -> err pos "type %s has no method %s" (Ir.Printer.ty_to_string t) m)
  | Einvoke (name, args) -> (
      (* locals / captures / fields holding a function value *)
      match resolve_var mctx name pos with
      | Some (te, _) -> (
          match te.ty with
          | Tobj c when Hashtbl.mem ctx.fnsigs c -> check_apply mctx pos te c args
          | t ->
              err pos "%s has type %s and cannot be called" name (Ir.Printer.ty_to_string t))
      | None -> (
          (* member method of the (possibly captured) receiver *)
          let member =
            match enclosing_this_cls mctx with
            | Some c -> Ir.Program.resolve prog c name
            | None -> None
          in
          match member with
          | Some _ ->
              let tthis = resolve_this mctx pos in
              let c = (match tthis.ty with Tobj c -> c | _ -> assert false) in
              check_virtual mctx pos tthis c name args
          | None -> (
              match Ir.Program.find_meth prog name with
              | Some m ->
                  let mm = Ir.Program.meth prog m in
                  let targs = check_args mctx pos name args (Array.to_list mm.m_param_tys) in
                  (* top-level functions carry a dummy Unit receiver slot *)
                  let unit_arg : Tast.texpr = { ty = Tunit; k = Tconst Cunit; pos } in
                  { ty = mm.m_rty; k = Tast.Tstatic (m, unit_arg :: targs); pos }
              | None ->
                  if List.mem name intrinsic_names then check_intrinsic mctx pos name args
                  else err pos "unknown function %s" name)))
  | Eapply (callee, args) -> (
      let tc = check_expr mctx callee in
      match tc.ty with
      | Tobj c when Hashtbl.mem ctx.fnsigs c -> check_apply mctx pos tc c args
      | t -> err pos "value of type %s cannot be called" (Ir.Printer.ty_to_string t))
  | Enew (cname, args) -> (
      match Hashtbl.find_opt ctx.cenv cname with
      | None -> err pos "unknown class %s" cname
      | Some c ->
          if (Ir.Program.cls prog c).is_abstract then
            err pos "cannot instantiate abstract class %s" cname;
          let init =
            match Ir.Program.find_meth prog (cname ^ ".<init>") with
            | Some m -> m
            | None -> err pos "class %s has no constructor" cname
          in
          let mm = Ir.Program.meth prog init in
          let targs =
            check_args mctx pos ("new " ^ cname) args (Array.to_list mm.m_param_tys)
          in
          { ty = Tobj c; k = Tnew (c, init, targs); pos })
  | Enewarr (ety, len) ->
      let ety = resolve_ty ctx pos ety in
      let tlen = check_expr mctx len in
      require pos prog ~what:"array length" ~from:tlen.ty ~to_:Tint;
      { ty = Tarray ety; k = Tnewarr (ety, tlen); pos }
  | Elambda (params, body) -> check_lambda ?expect mctx pos params body
  | Eif (cond, then_, else_) -> (
      let tc = check_expr mctx cond in
      require pos prog ~what:"if condition" ~from:tc.ty ~to_:Tbool;
      let tt = check_expr ?expect mctx then_ in
      match else_ with
      | None -> { ty = Tunit; k = Tif (tc, tt, None); pos }
      | Some else_ ->
          let te = check_expr ?expect mctx else_ in
          let ty = match join_ty prog tt.ty te.ty with Some t -> t | None -> Tunit in
          { ty; k = Tif (tc, tt, Some te); pos })
  | Ewhile (cond, body) ->
      let tc = check_expr mctx cond in
      require pos prog ~what:"while condition" ~from:tc.ty ~to_:Tbool;
      let tb = check_expr mctx body in
      { ty = Tunit; k = Twhile (tc, tb); pos }
  | Eblock stmts ->
      let saved = mctx.locals in
      let tstmts = List.mapi (fun i s -> check_stmt ?expect ~last:(i = List.length stmts - 1) mctx s) stmts in
      mctx.locals <- saved;
      let ty =
        match List.rev tstmts with
        | Tast.TSexpr te :: _ -> te.ty
        | _ -> Tunit
      in
      { ty; k = Tblock tstmts; pos }
  | Eassign (lv, rhs) -> check_assign mctx pos lv rhs
  | Ebin (op, a, b) -> check_bin mctx pos op a b
  | Eun (op, a) -> (
      let ta = check_expr mctx a in
      match op with
      | "!" ->
          require pos prog ~what:"operand of !" ~from:ta.ty ~to_:Tbool;
          { ty = Tbool; k = Tunop (Not, ta); pos }
      | "-" ->
          require pos prog ~what:"operand of unary -" ~from:ta.ty ~to_:Tint;
          { ty = Tint; k = Tunop (Neg, ta); pos }
      | _ -> err pos "unknown unary operator %s" op)
  | Eindex (arr, idx) -> (
      let ta = check_expr mctx arr in
      let ti = check_expr mctx idx in
      require pos prog ~what:"array index" ~from:ti.ty ~to_:Tint;
      match ta.ty with
      | Tarray ety -> { ty = ety; k = Tindex (ta, ti, ety); pos }
      | Tstring -> { ty = Tint; k = Tintrinsic (Istr_get, [ ta; ti ]); pos }
      | t -> err pos "type %s cannot be indexed" (Ir.Printer.ty_to_string t))

and enclosing_this_cls (mctx : mctx) : class_id option =
  match mctx.kind with
  | Mplain -> mctx.this_cls
  | Mlambda { outer; _ } -> enclosing_this_cls outer

and require pos prog ~what ~from ~to_ =
  if not (assignable prog ~from ~to_) then
    err pos "%s: expected %s but found %s" what
      (Ir.Printer.ty_to_string to_) (Ir.Printer.ty_to_string from)

(* [ptys] is the full signature including the receiver/this slot, which is
   not supplied syntactically and gets dropped here. *)
and check_args mctx pos what (args : Ast.expr list) (ptys : ty list) =
  match ptys with
  | [] -> invalid_arg "check_args: empty signature"
  | _this :: expected ->
      if List.length args <> List.length expected then
        err pos "%s expects %d argument(s) but got %d" what (List.length expected)
          (List.length args);
      List.map2
        (fun a pty ->
          let ta = check_expr ~expect:pty mctx a in
          require a.Ast.pos mctx.c.prog ~what ~from:ta.ty ~to_:pty;
          ta)
        args expected

and check_virtual mctx pos recv c m args : Tast.texpr =
  let prog = mctx.c.prog in
  match Ir.Program.resolve prog c m with
  | None -> err pos "class %s has no method %s" (Ir.Program.cls prog c).c_name m
  | Some mid ->
      let mm = Ir.Program.meth prog mid in
      let targs = check_args mctx pos m args (Array.to_list mm.m_param_tys) in
      { ty = mm.m_rty; k = Tvirtual (recv, m, targs, mm.m_rty); pos }

and check_apply mctx pos (f : Tast.texpr) (fnb : class_id) args : Tast.texpr =
  let ptys, rty = Hashtbl.find mctx.c.fnsigs fnb in
  if List.length args <> List.length ptys then
    err pos "function expects %d argument(s) but got %d" (List.length ptys) (List.length args);
  let targs =
    List.map2
      (fun a pty ->
        let ta = check_expr ~expect:pty mctx a in
        require a.Ast.pos mctx.c.prog ~what:"function argument" ~from:ta.ty ~to_:pty;
        ta)
      args ptys
  in
  { ty = rty; k = Tvirtual (f, "apply", targs, rty); pos }

and check_intrinsic mctx pos name args : Tast.texpr =
  let targs = List.map (check_expr mctx) args in
  let arity n =
    if List.length targs <> n then err pos "%s expects %d argument(s)" name n
  in
  let arg i = List.nth targs i in
  let prog = mctx.c.prog in
  match name with
  | "print" | "println" -> (
      arity 1;
      let a = arg 0 in
      let prim =
        match a.ty with
        | Tint -> Iprint_int
        | Tbool -> Iprint_bool
        | Tstring -> Iprint_str
        | t -> err pos "cannot print a value of type %s" (Ir.Printer.ty_to_string t)
      in
      let p : Tast.texpr = { ty = Tunit; k = Tintrinsic (prim, [ a ]); pos } in
      match name with
      | "print" -> p
      | _ ->
          let nl : Tast.texpr =
            { ty = Tunit;
              k = Tintrinsic (Iprint_str, [ { ty = Tstring; k = Tconst (Cstring "\n"); pos } ]);
              pos }
          in
          { ty = Tunit; k = Tblock [ TSexpr p; TSexpr nl ]; pos })
  | "strget" ->
      arity 2;
      require pos prog ~what:"strget string" ~from:(arg 0).ty ~to_:Tstring;
      require pos prog ~what:"strget index" ~from:(arg 1).ty ~to_:Tint;
      { ty = Tint; k = Tintrinsic (Istr_get, targs); pos }
  | "streq" ->
      arity 2;
      require pos prog ~what:"streq operand" ~from:(arg 0).ty ~to_:Tstring;
      require pos prog ~what:"streq operand" ~from:(arg 1).ty ~to_:Tstring;
      { ty = Tbool; k = Tintrinsic (Istr_eq, targs); pos }
  | "abs" ->
      arity 1;
      require pos prog ~what:"abs operand" ~from:(arg 0).ty ~to_:Tint;
      { ty = Tint; k = Tintrinsic (Iabs, targs); pos }
  | "min" | "max" ->
      arity 2;
      require pos prog ~what:(name ^ " operand") ~from:(arg 0).ty ~to_:Tint;
      require pos prog ~what:(name ^ " operand") ~from:(arg 1).ty ~to_:Tint;
      { ty = Tint; k = Tintrinsic ((if name = "min" then Imin else Imax), targs); pos }
  | _ -> err pos "unknown function %s" name

and check_bin mctx pos op a b : Tast.texpr =
  let prog = mctx.c.prog in
  match op with
  | "&&" ->
      let ta = check_expr mctx a and tb = check_expr mctx b in
      require pos prog ~what:"operand of &&" ~from:ta.ty ~to_:Tbool;
      require pos prog ~what:"operand of &&" ~from:tb.ty ~to_:Tbool;
      { ty = Tbool; k = Tif (ta, tb, Some { ty = Tbool; k = Tconst (Cbool false); pos }); pos }
  | "||" ->
      let ta = check_expr mctx a and tb = check_expr mctx b in
      require pos prog ~what:"operand of ||" ~from:ta.ty ~to_:Tbool;
      require pos prog ~what:"operand of ||" ~from:tb.ty ~to_:Tbool;
      { ty = Tbool; k = Tif (ta, { ty = Tbool; k = Tconst (Cbool true); pos }, Some tb); pos }
  | "==" | "!=" -> (
      let ta = check_expr mctx a and tb = check_expr mctx b in
      let eq : Tast.texpr =
        match (ta.ty, tb.ty) with
        | Tint, Tint -> { ty = Tbool; k = Tbinop (Eq, ta, tb); pos }
        | Tbool, Tbool -> { ty = Tbool; k = Tbinop (Eqb, ta, tb); pos }
        | Tstring, Tstring -> { ty = Tbool; k = Tintrinsic (Istr_eq, [ ta; tb ]); pos }
        | (Tobj _ | Tarray _), (Tobj _ | Tarray _) -> { ty = Tbool; k = Tbinop (Eq, ta, tb); pos }
        | t1, t2 ->
            err pos "cannot compare %s with %s" (Ir.Printer.ty_to_string t1)
              (Ir.Printer.ty_to_string t2)
      in
      match op with
      | "==" -> eq
      | _ -> { ty = Tbool; k = Tunop (Not, eq); pos })
  | "<" | "<=" | ">" | ">=" ->
      let ta = check_expr mctx a and tb = check_expr mctx b in
      require pos prog ~what:("operand of " ^ op) ~from:ta.ty ~to_:Tint;
      require pos prog ~what:("operand of " ^ op) ~from:tb.ty ~to_:Tint;
      let bop = match op with "<" -> Lt | "<=" -> Le | ">" -> Gt | _ -> Ge in
      { ty = Tbool; k = Tbinop (bop, ta, tb); pos }
  | "+" | "-" | "*" | "/" | "%" | "<<" | ">>" ->
      let ta = check_expr mctx a and tb = check_expr mctx b in
      require pos prog ~what:("operand of " ^ op) ~from:ta.ty ~to_:Tint;
      require pos prog ~what:("operand of " ^ op) ~from:tb.ty ~to_:Tint;
      let bop =
        match op with
        | "+" -> Add | "-" -> Sub | "*" -> Mul | "/" -> Div | "%" -> Rem
        | "<<" -> Shl | _ -> Shr
      in
      { ty = Tint; k = Tbinop (bop, ta, tb); pos }
  | "&" | "|" | "^" -> (
      let ta = check_expr mctx a and tb = check_expr mctx b in
      match (ta.ty, tb.ty) with
      | Tint, Tint ->
          let bop = match op with "&" -> Band | "|" -> Bor | _ -> Bxor in
          { ty = Tint; k = Tbinop (bop, ta, tb); pos }
      | Tbool, Tbool ->
          let bop = match op with "&" -> Andb | "|" -> Orb | _ -> Xorb in
          { ty = Tbool; k = Tbinop (bop, ta, tb); pos }
      | t1, t2 ->
          err pos "operator %s expects Int or Bool operands, found %s and %s" op
            (Ir.Printer.ty_to_string t1) (Ir.Printer.ty_to_string t2))
  | _ -> err pos "unknown operator %s" op

and check_assign mctx pos (lv : Ast.lvalue) (rhs : Ast.expr) : Tast.texpr =
  let prog = mctx.c.prog in
  match lv with
  | Lvar name -> (
      match resolve_var mctx name pos with
      | None -> err pos "unbound variable %s" name
      | Some (te, mutbl) -> (
          if not mutbl then err pos "%s is not assignable (declare it with var)" name;
          let trhs = check_expr ~expect:te.ty mctx rhs in
          require pos prog ~what:("assignment to " ^ name) ~from:trhs.ty ~to_:te.ty;
          match te.k with
          | Tlocal slot -> { ty = Tunit; k = Tassignlocal (slot, trhs); pos }
          | Tgetfield (base, slot, fname, _) ->
              { ty = Tunit; k = Tassignfield (base, slot, fname, trhs); pos }
          | _ -> err pos "%s is not assignable" name))
  | Lfield (obj, fname) -> (
      let tobj = check_expr mctx obj in
      match tobj.ty with
      | Tobj c when c <> null_cls -> (
          match Ir.Program.field_slot prog c fname with
          | None -> err pos "class %s has no field %s" (Ir.Program.cls prog c).c_name fname
          | Some slot ->
              let fty = snd (Ir.Program.cls prog c).layout.(slot) in
              let trhs = check_expr ~expect:fty mctx rhs in
              require pos prog ~what:("assignment to field " ^ fname) ~from:trhs.ty ~to_:fty;
              { ty = Tunit; k = Tassignfield (tobj, slot, fname, trhs); pos })
      | t -> err pos "type %s has no field %s" (Ir.Printer.ty_to_string t) fname)
  | Lindex (arr, idx) -> (
      let ta = check_expr mctx arr in
      let ti = check_expr mctx idx in
      require pos prog ~what:"array index" ~from:ti.ty ~to_:Tint;
      match ta.ty with
      | Tarray ety ->
          let trhs = check_expr ~expect:ety mctx rhs in
          require pos prog ~what:"array element assignment" ~from:trhs.ty ~to_:ety;
          { ty = Tunit; k = Tassignindex (ta, ti, trhs); pos }
      | t -> err pos "type %s cannot be indexed" (Ir.Printer.ty_to_string t))

and check_stmt ?expect ~last (mctx : mctx) (s : Ast.stmt) : Tast.tstmt =
  match s with
  | Sexpr e ->
      let expect = if last then expect else None in
      TSexpr (check_expr ?expect mctx e)
  | Slet { name; mutbl; ty; init; pos } ->
      let ann = Option.map (resolve_ty mctx.c pos) ty in
      let tinit = check_expr ?expect:ann mctx init in
      let lty =
        match ann with
        | Some t ->
            require pos mctx.c.prog ~what:("initializer of " ^ name) ~from:tinit.ty ~to_:t;
            t
        | None ->
            if tinit.ty = Tobj null_cls then
              err pos "cannot infer the type of %s from null; add a type annotation" name;
            tinit.ty
      in
      let slot = mctx.nslots in
      mctx.nslots <- mctx.nslots + 1;
      mctx.locals <- (name, { slot; lty; mutbl }) :: mctx.locals;
      TSlet (slot, tinit)

and check_lambda ?expect mctx pos (params : (string * Ast.tyx) list) (body : Ast.expr) :
    Tast.texpr =
  let ctx = mctx.c in
  let prog = ctx.prog in
  let ptys = List.map (fun (_, t) -> resolve_ty ctx pos t) params in
  (* An expected function type fixes the return type, so that a lambda whose
     body has a more specific type still implements the expected base. *)
  let expected_rty =
    match expect with
    | Some (Tobj c) -> (
        match Hashtbl.find_opt ctx.fnsigs c with
        | Some (eptys, erty) when eptys = ptys -> Some erty
        | _ -> None)
    | _ -> None
  in
  let inner =
    {
      c = ctx;
      locals =
        List.mapi (fun i (name, _) -> (name, { slot = i + 1; lty = List.nth ptys i; mutbl = false }))
          params;
      nslots = List.length params + 1;
      this_cls = None (* patched below; only reachable through [lambda_this] typing *);
      kind = Mlambda { outer = mctx; caps = [] };
    }
  in
  (* [lambda_this] needs a class id before the class exists; reserve it by
     creating the class eagerly with an empty layout and patch the layout
     after the body is checked. *)
  let lam_name = Printf.sprintf "Lambda$%d" ctx.lambda_count in
  ctx.lambda_count <- ctx.lambda_count + 1;
  let lam_cls = Ir.Program.add_class prog ~name:lam_name ~parent:None ~own_fields:[] in
  let inner = { inner with this_cls = Some lam_cls } in
  let tbody = check_expr ?expect:expected_rty inner body in
  let rty =
    match expected_rty with
    | Some erty ->
        require pos prog ~what:"lambda body" ~from:tbody.ty ~to_:erty;
        erty
    | None -> tbody.ty
  in
  let fnb = fnbase ctx ptys rty in
  let caps = match inner.kind with Mlambda { caps; _ } -> caps | Mplain -> [] in
  (* finalize the class: parent = fnbase, fields = captures *)
  let klass = Ir.Program.cls prog lam_cls in
  let klass = { klass with parent = Some fnb } in
  Support.Vec.set prog.classes lam_cls klass;
  klass.layout <- Array.of_list (List.map (fun c -> (c.cap_name, c.cap_ty)) caps);
  (* constructor: stores each capture *)
  let init =
    Ir.Program.add_meth prog ~name:(lam_name ^ ".<init>") ~selector:"<init>"
      ~owner:(Some lam_cls)
      ~param_tys:(Array.of_list (Tobj lam_cls :: List.map (fun c -> c.cap_ty) caps))
      ~rty:Tunit
  in
  let init_body : Tast.texpr =
    let stores =
      List.mapi
        (fun i c ->
          Tast.TSexpr
            {
              ty = Tunit;
              k =
                Tassignfield
                  ( { ty = Tobj lam_cls; k = Tlocal 0; pos },
                    i,
                    c.cap_name,
                    { ty = c.cap_ty; k = Tlocal (i + 1); pos } );
              pos;
            })
        caps
    in
    { ty = Tunit; k = Tblock stores; pos }
  in
  ctx.tmethods <-
    { tm_id = init; nslots = List.length caps + 1; body = init_body } :: ctx.tmethods;
  (* the apply method *)
  let apply =
    Ir.Program.add_meth prog ~name:(lam_name ^ ".apply") ~selector:"apply"
      ~owner:(Some lam_cls)
      ~param_tys:(Array.of_list (Tobj lam_cls :: ptys))
      ~rty
  in
  Ir.Program.register_in_vtable prog apply;
  ctx.tmethods <- { tm_id = apply; nslots = inner.nslots; body = tbody } :: ctx.tmethods;
  (* the lambda expression evaluates to: new Lambda$n(cap inits...) *)
  { ty = Tobj fnb; k = Tnew (lam_cls, init, List.map (fun c -> c.cap_init) caps); pos }

(* ---------- program checking ---------- *)

type source_class = { decl : Ast.classdecl; mutable cid : class_id }

let check_program (prog_ast : Ast.prog) : program * Tast.tmethod list =
  let prog = Ir.Program.create () in
  let ctx =
    {
      prog;
      cenv = Hashtbl.create 32;
      fnbases = Hashtbl.create 8;
      fnsigs = Hashtbl.create 8;
      lambda_count = 0;
      tmethods = [];
    }
  in
  let classes = List.filter_map (function Ast.Dclass c -> Some c | _ -> None) prog_ast in
  let funs = List.filter_map (function Ast.Dfun f -> Some f | _ -> None) prog_ast in
  (* duplicate detection *)
  let seen = Hashtbl.create 32 in
  List.iter
    (fun (c : Ast.classdecl) ->
      if Hashtbl.mem seen c.cname then err c.cpos "duplicate class %s" c.cname;
      if List.mem c.cname [ "Int"; "Bool"; "Unit"; "String"; "Array" ] then
        err c.cpos "class name %s shadows a builtin type" c.cname;
      Hashtbl.add seen c.cname c)
    classes;
  (* create class ids in inheritance (topological) order *)
  let srcs = Hashtbl.create 32 in
  List.iter (fun c -> Hashtbl.add srcs c.Ast.cname { decl = c; cid = -1 }) classes;
  let rec materialize (c : Ast.classdecl) : class_id =
    let src = Hashtbl.find srcs c.cname in
    if src.cid >= 0 then src.cid
    else begin
      if src.cid = -2 then err c.cpos "inheritance cycle involving class %s" c.cname;
      src.cid <- -2;
      let parent =
        match c.parent with
        | None -> None
        | Some (pname, _) -> (
            match Hashtbl.find_opt srcs pname with
            | Some psrc -> Some (materialize psrc.decl)
            | None -> err c.cpos "unknown parent class %s" pname)
      in
      let cid = Ir.Program.add_class prog ~name:c.cname ~parent ~own_fields:[] in
      (Ir.Program.cls prog cid).is_abstract <- c.abstract;
      Hashtbl.replace ctx.cenv c.cname cid;
      src.cid <- cid;
      cid
    end
  in
  List.iter (fun c -> ignore (materialize c)) classes;
  (* layouts: parent first (ids were assigned in topo order) *)
  List.iter
    (fun (c : Ast.classdecl) ->
      let cid = Hashtbl.find ctx.cenv c.cname in
      let klass = Ir.Program.cls prog cid in
      let inherited =
        match klass.parent with Some p -> (Ir.Program.cls prog p).layout | None -> [||]
      in
      let own =
        List.map (fun (n, t) -> (n, resolve_ty ctx c.cpos t)) c.ctor_params
        @ List.filter_map
            (function
              | Ast.Mfield { name; ty; pos } -> Some (name, resolve_ty ctx pos ty)
              | Ast.Mmethod _ -> None)
            c.members
      in
      (* duplicate field check along the chain *)
      List.iter
        (fun (n, _) ->
          if Array.exists (fun (n', _) -> n' = n) inherited then
            err c.cpos "field %s of class %s shadows an inherited field" n c.cname;
          if List.length (List.filter (fun (n', _) -> n' = n) own) > 1 then
            err c.cpos "duplicate field %s in class %s" n c.cname)
        own;
      klass.layout <- Array.append inherited (Array.of_list own))
    (List.sort
       (fun a b ->
         compare (Hashtbl.find ctx.cenv a.Ast.cname) (Hashtbl.find ctx.cenv b.Ast.cname))
       classes);
  (* register methods (signatures only) *)
  List.iter
    (fun (c : Ast.classdecl) ->
      let cid = Hashtbl.find ctx.cenv c.cname in
      (* constructor *)
      let ctor_ptys = List.map (fun (_, t) -> resolve_ty ctx c.cpos t) c.ctor_params in
      ignore
        (Ir.Program.add_meth prog ~name:(c.cname ^ ".<init>") ~selector:"<init>"
           ~owner:(Some cid)
           ~param_tys:(Array.of_list (Tobj cid :: ctor_ptys))
           ~rty:Tunit);
      List.iter
        (function
          | Ast.Mmethod { name; params; rty; pos; _ } ->
              let ptys = List.map (fun (_, t) -> resolve_ty ctx pos t) params in
              let rty = resolve_ty ctx pos rty in
              let mid =
                Ir.Program.add_meth prog
                  ~name:(c.cname ^ "." ^ name)
                  ~selector:name ~owner:(Some cid)
                  ~param_tys:(Array.of_list (Tobj cid :: ptys))
                  ~rty
              in
              (* override compatibility *)
              (match (Ir.Program.cls prog cid).parent with
              | Some p -> (
                  match Ir.Program.resolve prog p name with
                  | Some sup_mid ->
                      let sup = Ir.Program.meth prog sup_mid in
                      let sup_ptys = Array.to_list sup.m_param_tys |> List.tl in
                      if sup_ptys <> ptys || sup.m_rty <> rty then
                        err pos "method %s.%s overrides with an incompatible signature"
                          c.cname name
                  | None -> ())
              | None -> ());
              Ir.Program.register_in_vtable prog mid
          | Ast.Mfield _ -> ())
        c.members)
    classes;
  List.iter
    (fun (f : Ast.fundef) ->
      if Hashtbl.mem prog.meth_by_name f.fname then
        err f.fpos "duplicate function %s" f.fname;
      if List.mem f.fname intrinsic_names then
        err f.fpos "function %s shadows a builtin" f.fname;
      let ptys = List.map (fun (_, t) -> resolve_ty ctx f.fpos t) f.params in
      let rty = resolve_ty ctx f.fpos f.rty in
      (* top-level functions have a dummy Unit "this" slot so that every
         method's parameter list is uniform (slot 0 = receiver). *)
      ignore
        (Ir.Program.add_meth prog ~name:f.fname ~selector:f.fname ~owner:None
           ~param_tys:(Array.of_list (Tunit :: ptys))
           ~rty))
    funs;
  (* check bodies *)
  let check_body ~this_cls ~mid ~params ~rty ~(body : Ast.expr) =
    let ptys =
      List.map (fun (_, t) -> resolve_ty ctx body.Ast.pos t) params
    in
    let mctx =
      {
        c = ctx;
        locals =
          List.mapi
            (fun i (name, _) -> (name, { slot = i + 1; lty = List.nth ptys i; mutbl = false }))
            params;
        nslots = List.length params + 1;
        this_cls;
        kind = Mplain;
      }
    in
    let tbody = check_expr ~expect:rty mctx body in
    if rty <> Tunit then
      require body.Ast.pos prog ~what:"method result" ~from:tbody.ty ~to_:rty;
    ctx.tmethods <- { tm_id = mid; nslots = mctx.nslots; body = tbody } :: ctx.tmethods
  in
  (* constructors *)
  List.iter
    (fun (c : Ast.classdecl) ->
      let cid = Hashtbl.find ctx.cenv c.cname in
      let init = Option.get (Ir.Program.find_meth prog (c.cname ^ ".<init>")) in
      let klass = Ir.Program.cls prog cid in
      let this_e : Tast.texpr = { ty = Tobj cid; k = Tlocal 0; pos = c.cpos } in
      let mctx =
        {
          c = ctx;
          locals =
            List.mapi
              (fun i (name, t) ->
                (name, { slot = i + 1; lty = resolve_ty ctx c.cpos t; mutbl = false }))
              c.ctor_params;
          nslots = List.length c.ctor_params + 1;
          this_cls = Some cid;
          kind = Mplain;
        }
      in
      let parent_call =
        match c.parent with
        | Some (pname, args) ->
            let pcid = Hashtbl.find ctx.cenv pname in
            let pinit = Option.get (Ir.Program.find_meth prog (pname ^ ".<init>")) in
            let pm = Ir.Program.meth prog pinit in
            let expected = Array.to_list pm.m_param_tys |> List.tl in
            if List.length args <> List.length expected then
              err c.cpos "parent constructor %s expects %d argument(s)" pname
                (List.length expected);
            let targs =
              List.map2
                (fun a pty ->
                  let ta = check_expr ~expect:pty mctx a in
                  require a.Ast.pos prog ~what:"parent constructor argument" ~from:ta.ty
                    ~to_:pty;
                  ta)
                args expected
            in
            ignore pcid;
            [ Tast.TSexpr { ty = Tunit; k = Tstatic (pinit, this_e :: targs); pos = c.cpos } ]
        | None -> []
      in
      let own_offset =
        match klass.parent with Some p -> Array.length (Ir.Program.cls prog p).layout | None -> 0
      in
      let stores =
        List.mapi
          (fun i (name, t) ->
            let fty = resolve_ty ctx c.cpos t in
            Tast.TSexpr
              {
                ty = Tunit;
                k =
                  Tassignfield
                    (this_e, own_offset + i, name, { ty = fty; k = Tlocal (i + 1); pos = c.cpos });
                pos = c.cpos;
              })
          c.ctor_params
      in
      let body : Tast.texpr =
        { ty = Tunit; k = Tblock (parent_call @ stores); pos = c.cpos }
      in
      ctx.tmethods <- { tm_id = init; nslots = mctx.nslots; body } :: ctx.tmethods)
    classes;
  (* methods *)
  List.iter
    (fun (c : Ast.classdecl) ->
      let cid = Hashtbl.find ctx.cenv c.cname in
      List.iter
        (function
          | Ast.Mmethod { name; params; rty; body = Some body; pos } ->
              let mid = Option.get (Ir.Program.find_meth prog (c.cname ^ "." ^ name)) in
              check_body ~this_cls:(Some cid) ~mid
                ~params
                ~rty:(resolve_ty ctx pos rty)
                ~body
          | Ast.Mmethod { body = None; _ } | Ast.Mfield _ -> ())
        c.members)
    classes;
  (* A concrete class must implement every abstract method it inherits.
     Bodies are installed later by lowering, so test the declarations, not
     the (still-None) registered bodies. *)
  let declared_abstract = Hashtbl.create 16 in
  List.iter
    (fun (c : Ast.classdecl) ->
      List.iter
        (function
          | Ast.Mmethod { name; body = None; _ } ->
              Hashtbl.replace declared_abstract (c.cname ^ "." ^ name) ()
          | _ -> ())
        c.members)
    classes;
  List.iter
    (fun (c : Ast.classdecl) ->
      if not c.abstract then begin
        let cid = Hashtbl.find ctx.cenv c.cname in
        (* every selector mentioned anywhere up the chain must resolve to a
           concrete implementation *)
        let rec selectors co acc =
          match co with
          | None -> acc
          | Some cc ->
              let kk = Ir.Program.cls prog cc in
              selectors kk.parent (List.map fst kk.vtable @ acc)
        in
        List.iter
          (fun sel ->
            match Ir.Program.resolve prog cid sel with
            | Some mid ->
                let mm = Ir.Program.meth prog mid in
                if Hashtbl.mem declared_abstract mm.m_name then
                  err c.cpos "class %s does not implement abstract method %s" c.cname sel
            | None -> ())
          (List.sort_uniq compare (selectors (Some cid) []))
      end)
    classes;
  (* top-level functions *)
  List.iter
    (fun (f : Ast.fundef) ->
      let mid = Option.get (Ir.Program.find_meth prog f.fname) in
      check_body ~this_cls:None ~mid ~params:f.params
        ~rty:(resolve_ty ctx f.fpos f.rty)
        ~body:f.body)
    funs;
  (* entry point *)
  let start : Ast.pos = { line = 0; col = 0 } in
  (match Ir.Program.find_meth prog "main" with
  | Some m ->
      let mm = Ir.Program.meth prog m in
      if Array.length mm.m_param_tys <> 1 then err start "main must take no parameters";
      prog.main <- m
  | None -> err start "program has no main function");
  (prog, List.rev ctx.tmethods)
