(* Hand-written lexer for Sel. Produces a token array in one pass; the
   parser indexes into it. Line comments (//) and nesting block comments
   are skipped. *)

type token =
  | INT of int
  | STRING of string
  | IDENT of string
  | KW of string      (* class abstract extends def val var new if else while true false null this *)
  | PUNCT of string   (* ( ) { } [ ] , ; : . => = == != < <= > >= + - * / % << >> & && | || ^ ! *)
  | EOF

type tok = { t : token; pos : Ast.pos }

exception Lex_error of string * Ast.pos

let keywords =
  [ "class"; "abstract"; "extends"; "def"; "val"; "var"; "new"; "if"; "else";
    "while"; "true"; "false"; "null"; "this" ]

let token_to_string = function
  | INT n -> string_of_int n
  | STRING s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> s
  | EOF -> "<eof>"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '$'
let is_digit c = c >= '0' && c <= '9'

let tokenize (src : string) : tok list =
  let n = String.length src in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let toks = ref [] in
  let pos () : Ast.pos = { line = !line; col = !col } in
  let advance () =
    (if !i < n then
       if src.[!i] = '\n' then begin
         incr line;
         col := 1
       end
       else incr col);
    incr i
  in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let cur () = peek 0 in
  let emit t p = toks := { t; pos = p } :: !toks in
  let error msg = raise (Lex_error (msg, pos ())) in
  let rec skip_block_comment depth p0 =
    if depth = 0 then ()
    else
      match cur () with
      | None -> raise (Lex_error ("unterminated block comment", p0))
      | Some '*' when peek 1 = Some '/' ->
          advance (); advance ();
          skip_block_comment (depth - 1) p0
      | Some '/' when peek 1 = Some '*' ->
          advance (); advance ();
          skip_block_comment (depth + 1) p0
      | Some _ ->
          advance ();
          skip_block_comment depth p0
  in
  let lex_string p0 =
    advance () (* opening quote *);
    let buf = Buffer.create 16 in
    let rec go () =
      match cur () with
      | None -> raise (Lex_error ("unterminated string literal", p0))
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match cur () with
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
          | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
          | _ -> error "invalid escape sequence")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    emit (STRING (Buffer.contents buf)) p0
  in
  while !i < n do
    let p = pos () in
    match src.[!i] with
    | ' ' | '\t' | '\r' | '\n' -> advance ()
    | '/' when peek 1 = Some '/' ->
        while cur () <> None && cur () <> Some '\n' do advance () done
    | '/' when peek 1 = Some '*' ->
        advance (); advance ();
        skip_block_comment 1 p
    | '"' -> lex_string p
    | c when is_digit c ->
        let start = !i in
        while (match cur () with Some d -> is_digit d | None -> false) do advance () done;
        let text = String.sub src start (!i - start) in
        (match int_of_string_opt text with
        | Some v -> emit (INT v) p
        | None -> error (Printf.sprintf "integer literal out of range: %s" text))
    | c when is_ident_start c ->
        let start = !i in
        while (match cur () with Some d -> is_ident_char d | None -> false) do advance () done;
        let text = String.sub src start (!i - start) in
        if List.mem text keywords then emit (KW text) p else emit (IDENT text) p
    | _ ->
        let two =
          if !i + 1 < n then Some (String.sub src !i 2) else None
        in
        (match two with
        | Some (("=>" | "==" | "!=" | "<=" | ">=" | "<<" | ">>" | "&&" | "||") as op) ->
            advance (); advance ();
            emit (PUNCT op) p
        | _ -> (
            match src.[!i] with
            | ( '(' | ')' | '{' | '}' | '[' | ']' | ',' | ';' | ':' | '.' | '='
              | '<' | '>' | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^' | '!' ) as c ->
                advance ();
                emit (PUNCT (String.make 1 c)) p
            | c -> error (Printf.sprintf "unexpected character %C" c)))
  done;
  emit EOF (pos ());
  List.rev !toks
