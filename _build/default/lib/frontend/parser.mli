(** Recursive-descent parser for Sel (precedence climbing for binary
    operators). *)

exception Parse_error of string * Ast.pos

val parse_program : Lexer.tok list -> Ast.prog
(** @raise Parse_error on syntax errors, with the position of the
    offending token. *)

val parse_string : string -> Ast.prog
(** [parse_program] composed with {!Lexer.tokenize}.
    @raise Lexer.Lex_error
    @raise Parse_error *)
