(** Growable array, the backing store for IR instruction and block tables. *)

type 'a t

val create : dummy:'a -> 'a t
(** [create ~dummy] makes an empty vector. [dummy] fills unreached slots and
    is never observable through the API. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** @raise Invalid_argument when out of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument when out of bounds. *)

val pop : 'a t -> 'a
(** Removes and returns the last element.
    @raise Invalid_argument when empty. *)

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val of_list : dummy:'a -> 'a list -> 'a t
val copy : 'a t -> 'a t
