(* Growable array. OCaml 5.1 lacks Stdlib.Dynarray, so we roll a minimal
   version with the operations the IR stores need. *)

type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a; (* used to fill unreached slots *)
}

let create ~dummy = { data = Array.make 8 dummy; len = 0; dummy }

let length v = v.len

let is_empty v = v.len = 0

let ensure_capacity v n =
  if n > Array.length v.data then begin
    let cap = ref (max 8 (Array.length v.data)) in
    while !cap < n do
      cap := !cap * 2
    done;
    let data = Array.make !cap v.dummy in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let push v x =
  ensure_capacity v (v.len + 1);
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get: index out of bounds";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set: index out of bounds";
  v.data.(i) <- x

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  let x = v.data.(v.len) in
  v.data.(v.len) <- v.dummy;
  x

let clear v =
  Array.fill v.data 0 v.len v.dummy;
  v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let to_list v = List.init v.len (fun i -> v.data.(i))

let of_list ~dummy xs =
  let v = create ~dummy in
  List.iter (push v) xs;
  v

let copy v = { data = Array.sub v.data 0 (Array.length v.data); len = v.len; dummy = v.dummy }
