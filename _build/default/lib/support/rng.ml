(* Deterministic splitmix64 generator. Workload generators and simulated
   nondeterminism must be reproducible across runs, so we avoid
   Stdlib.Random's global state. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t =
  (* 53 random bits scaled to [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0

let pick t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
