(** Statistics helpers for the benchmark harness. *)

val mean : float list -> float
(** @raise Invalid_argument on an empty list. *)

val stddev : float list -> float
(** Sample standard deviation; 0 for fewer than two samples. *)

val geomean : float list -> float
(** Geometric mean.
    @raise Invalid_argument on empty input or non-positive values. *)

val min_max : float list -> float * float
(** @raise Invalid_argument on an empty list. *)

val steady_state_window : float list -> float list
(** The last 40% of the samples capped at 20, mirroring the paper's
    peak-performance methodology ("average of the last 40%, but at most 20,
    repetitions").
    @raise Invalid_argument on an empty list. *)

val steady_state_mean : float list -> float
