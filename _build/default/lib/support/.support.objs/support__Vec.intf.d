lib/support/vec.mli:
