lib/support/rng.mli:
