lib/support/stats.mli:
