lib/support/stats.ml: List
