(** Deterministic splitmix64 pseudo-random generator.

    All randomness in the system (workload generation, simulated arrival
    jitter) flows through explicitly seeded instances of this generator so
    that every experiment is bit-reproducible. *)

type t

val create : int -> t
(** [create seed] returns an independent generator. *)

val copy : t -> t

val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] draws from [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool

val float : t -> float
(** Draws from [0, 1). *)

val pick : t -> 'a list -> 'a
(** @raise Invalid_argument on an empty list. *)

val shuffle : t -> 'a list -> 'a list
