(** The cost-benefit analysis phase (paper, Listing 6): benefit|cost
    tuples and callsite-cluster detection by greedy ratio-improving
    merges. Under the 1-by-1 ablation every node stays its own cluster. *)

open Calltree

val ratio : float * float -> float
(** ⟨b|c⟩ = b / max(1, c)  (Eq. 11). *)

val merge : float * float -> float * float -> float * float
(** ⊕ (Eq. 9). *)

val inlinable : node -> bool
(** Can the node ever be spliced? (Expanded, Poly, or a direct-target
    cutoff.) *)

val analyze_node : t -> node -> unit
(** Listing 6 for one node whose children were already analyzed: initial
    benefit = B_L(n) − Σ B_L(children) (inlining alone forfeits the
    children's optimizations), then greedy cluster merging over the
    front. *)

val run : t -> unit
(** Bottom-up over the whole tree. *)
