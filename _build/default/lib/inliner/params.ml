(* All tunables of the inlining algorithm in one record, mirroring the
   constants of Section IV of the paper.

   The paper's values (p1=1e-3, p2=1e-4, b1=0.5, b2=10, r1≈3000, r2≈500,
   t1=0.005, t2=120, root cap 50000) are calibrated to Graal IR node
   counts, where typical method bodies run into the hundreds or thousands
   of nodes. Sel bodies are an order of magnitude smaller, so the
   size-denominated constants (r1, r2, t2, size_cap and the threshold
   scale) are retuned; each field notes the paper's original. The policy
   toggles at the bottom select the ablation variants evaluated in
   Figures 6–9. *)

type threshold_policy =
  | Adaptive
  (* Fixed expansion/inlining budgets, the paper's T_e and T_i:
     expansion stops when the call-tree size S_ir(root) exceeds [te];
     inlining stops when the root IR size exceeds [ti]. *)
  | Fixed of { te : int; ti : int }

type t = {
  (* exploration penalty ψ (Eq. 7): ψ = p1*S_ir + p2*S_b − b1*max(0, b2 − N_c²) *)
  p1 : float;         (* paper: 1e-3 *)
  p2 : float;         (* paper: 1e-4 *)
  b1 : float;         (* paper: 0.5 *)
  b2 : float;         (* paper: 10 *)
  (* adaptive expansion threshold (Eq. 8): B_L/|ir| >= e^((S_ir(root)−r1)/r2) *)
  r1 : float;         (* paper: ~3000; ours: ~600 (smaller bodies) *)
  r2 : float;         (* paper: ~500; ours: ~120 *)
  (* adaptive inlining threshold (Eq. 12, reconstructed — see DESIGN.md):
     ⟨tuple⟩ >= t1 * 2^((|ir(root)| + |ir(n)| − t2) / tscale) *)
  t1 : float;         (* paper: 0.005 *)
  t2 : float;         (* paper: 120 *)
  tscale : float;     (* substrate scale constant σ *)
  (* polymorphic inlining *)
  poly_max_targets : int;   (* paper: 3 *)
  poly_min_prob : float;    (* paper: 0.10 *)
  (* recursion *)
  rec_hard_limit : int;     (* beyond this depth a recursive cutoff is Generic *)
  (* termination *)
  root_size_cap : int;      (* paper: 50000 *)
  max_rounds : int;
  max_expansions_per_round : int;
  (* ablation toggles *)
  threshold_policy : threshold_policy;
  clustering : bool;        (* false = each node is its own cluster (1-by-1) *)
  deep_trials : bool;       (* false = no argument specialization below the root *)
  (* per-round root-optimization toggles (the substrate's own ablation) *)
  opt_rwelim : bool;
  opt_scalar : bool;
  opt_licm : bool;
  opt_peel : bool;
}

let default =
  {
    p1 = 1e-3;
    p2 = 1e-4;
    b1 = 0.5;
    b2 = 10.0;
    r1 = 600.0;
    r2 = 120.0;
    t1 = 0.005;  (* the paper's value *)
    t2 = 180.0;
    tscale = 80.0;
    poly_max_targets = 3;
    poly_min_prob = 0.10;
    rec_hard_limit = 6;
    root_size_cap = 10_000;
    max_rounds = 12;
    max_expansions_per_round = 64;
    threshold_policy = Adaptive;
    clustering = true;
    deep_trials = true;
    opt_rwelim = true;
    opt_scalar = true;
    opt_licm = true;
    opt_peel = true;
  }

let with_fixed ~te ~ti p = { p with threshold_policy = Fixed { te; ti } }
let without_clustering p = { p with clustering = false }
let without_deep_trials p = { p with deep_trials = false }

let pp ppf (p : t) =
  Fmt.pf ppf "{policy=%s; clustering=%b; deep_trials=%b}"
    (match p.threshold_policy with
    | Adaptive -> "adaptive"
    | Fixed { te; ti } -> Printf.sprintf "fixed(te=%d,ti=%d)" te ti)
    p.clustering p.deep_trials
