(** The expansion phase (paper, Section III-B and IV): descend from the
    root by priority P(n) = P_I(n) − ψ(n) to the most promising cutoff and
    expand it if it passes the (adaptive or fixed) expansion threshold. *)

open Calltree

val psi_r : node -> float
(** Recursion penalty ψ_r (Eq. 14). *)

val psi : t -> node -> float
(** Exploration penalty ψ (Eq. 7): grows with the subtree's attached and
    prospective size, softened when few cutoffs remain. *)

val intrinsic_priority : t -> node -> float
(** P_I (Eq. 5): benefit per node for cutoffs, max over children for
    expanded/poly nodes (ignoring exhausted subtrees). *)

val priority : t -> node -> float
(** P = P_I − ψ (Eq. 6). *)

val best_cutoff : t -> node option
(** The cutoff the descent reaches, or [None] when the tree is exhausted
    for this phase. *)

val may_expand : t -> node -> bool
(** Adaptive: B_L/|ir| ≥ e^((S_ir(root) − r1)/r2) (Eq. 8). Fixed policy:
    the total call-tree size is still below T_e. *)

val run : t -> int
(** One expansion phase; returns the number of nodes expanded. Bounded by
    [max_expansions_per_round]. *)
