(* The cost-benefit analysis phase (paper, Listing 6 and Section IV
   "Analysis"): assigns each node a benefit|cost tuple and detects callsite
   clusters — connected groups of nodes that are inlined together or not
   at all.

   Tuple algebra:
     b1|c1 ⊕ b2|c2 = (b1+b2)|(c1+c2)        merge            (Eq. 9)
     b1|c1 ⊘ b2|c2 ⇔ b1/c1 ≥ b2/c2          comparison       (Eq. 10)
     ⟨b|c⟩ = b/c                             ratio            (Eq. 11)

   A node's initial benefit is its local benefit minus its children's local
   benefits — inlining a method alone forfeits the optimizations its own
   callees would have enjoyed — and its cost is its IR size. Adjacent child
   clusters are merged greedily while the merge improves the cluster's
   benefit-to-cost ratio.

   Under the 1-by-1 ablation (clustering=false) every node stays in its own
   cluster, reproducing classic method-at-a-time inlining. *)

open Calltree

let ratio (b, c) = b /. max 1.0 c

let merge (b1, c1) (b2, c2) = (b1 +. b2, c1 +. c2)

(* Can this node ever be spliced into the root? *)
let inlinable (n : node) : bool =
  match n.kind with
  | Expanded _ | Poly _ | Cutoff (Known _) -> true
  | Cutoff (Unknown _) | Generic _ | Deleted -> false

let analyze_node (t : t) (n : node) : unit =
  n.in_parent_cluster <- false;
  let children_benefit =
    match n.kind with
    | Poly _ ->
        (* poly children are alternative targets; B_L(poly) already weights
           them by dispatch probability (Eq. 13) *)
        List.fold_left (fun acc c -> acc +. (c.prob *. local_benefit t c)) 0.0 n.children
    | _ -> List.fold_left (fun acc c -> acc +. local_benefit t c) 0.0 n.children
  in
  let b = local_benefit t n -. children_benefit in
  let c = float_of_int (max 1 (node_size t n)) in
  n.tuple <- (b, c);
  n.front <- List.filter inlinable n.children;
  if t.params.clustering then begin
    let continue_ = ref true in
    while !continue_ && n.front <> [] do
      let best =
        List.fold_left
          (fun acc m ->
            match acc with
            | None -> Some m
            | Some b' -> if ratio m.tuple > ratio b'.tuple then Some m else acc)
          None n.front
      in
      match best with
      | None -> continue_ := false
      | Some best ->
          let merged = merge n.tuple best.tuple in
          if ratio merged >= ratio n.tuple then begin
            n.tuple <- merged;
            best.in_parent_cluster <- true;
            n.front <-
              List.filter (fun m -> m.nid <> best.nid) n.front @ best.front
          end
          else continue_ := false
    done
  end

(* Bottom-up traversal: children first. *)
let rec analyze_subtree (t : t) (n : node) : unit =
  List.iter (analyze_subtree t) n.children;
  analyze_node t n

let run (t : t) : unit = List.iter (analyze_subtree t) t.children
