(* Typeswitch materialization for polymorphic inlining (paper, Section IV
   "Polymorphic inlining", after Hölzle & Ungar).

   A virtual callsite `v = call virtual sel(recv, ...)` becomes:

       pre:  ...                       (instructions before the call)
             t1 = typetest recv, C1
             if t1 then D1 else T2
       D1:   r1 = call direct M1(...)  ; goto post
       T2:   t2 = typetest recv, C2
             if t2 then D2 else F
       D2:   r2 = call direct M2(...)  ; goto post
       F:    rf = call virtual sel(...) ; goto post    (fallback)
       post: v = phi [(D1,r1); (D2,r2); (F,rf)]
             ...                       (instructions after the call)

   Tests are emitted most-specific-class-first so a subtype-aware type test
   cannot capture a receiver that belongs to a more specific profiled
   class. The fallback keeps the virtual dispatch — the paper's
   alternative to ending the typeswitch with a deoptimization.

   [build] is the generic transformation (also used by the baseline
   inliners for monomorphic speculation); [materialize] applies it to a
   Poly call-tree node and re-anchors the node's children at the direct
   calls. *)

open Ir.Types

(* Sorts speculation targets so no class appears after one of its
   subclasses; ties keep the higher-probability class first. *)
let order_targets (prog : program) (targets : (class_id * 'a) list) : (class_id * 'a) list =
  let cmp (ca, _) (cb, _) =
    if ca = cb then 0
    else if Ir.Program.is_subclass prog ~sub:ca ~sup:cb then -1
    else if Ir.Program.is_subclass prog ~sub:cb ~sup:ca then 1
    else 0
  in
  List.stable_sort cmp targets

(* Rewrites [call_vid] (a virtual call in [fn]) into a typeswitch over
   [targets]; the input order is preserved, so the caller must order
   specific-first (see [order_targets]). Returns the direct-call vid
   created for each target class. *)
let build (prog : program) (fn : fn) ~(call_vid : vid)
    ~(targets : (class_id * meth_id) list) ~(fresh_site : unit -> site) :
    (class_id * vid) list =
  ignore prog;
  if targets = [] then invalid_arg "Typeswitch.build: no targets";
  let sel, args, site, rty =
    match Ir.Fn.kind fn call_vid with
    | Call { callee = Virtual sel; args; site; rty } -> (sel, args, site, rty)
    | Call { callee = Direct _; _ } ->
        invalid_arg "Typeswitch.build: callsite already devirtualized"
    | _ -> invalid_arg "Typeswitch.build: not a call"
  in
  let recv = List.hd args in
  (* split the containing block, as Splice does *)
  let call_block =
    let r = ref None in
    Ir.Fn.iter_blocks (fun b -> if List.mem call_vid b.instrs then r := Some b) fn;
    match !r with
    | Some b -> b
    | None -> invalid_arg "Typeswitch.build: call not found in any block"
  in
  let post = Ir.Fn.add_block fn in
  let rec split acc = function
    | [] -> invalid_arg "Typeswitch.build: call vanished"
    | v :: rest when v = call_vid -> (List.rev acc, rest)
    | v :: rest -> split (v :: acc) rest
  in
  let before, after = split [] call_block.instrs in
  call_block.instrs <- before;
  let post_block = Ir.Fn.block fn post in
  post_block.instrs <- after;
  post_block.term <- call_block.term;
  List.iter
    (fun s ->
      List.iter
        (fun v ->
          match Ir.Fn.kind fn v with
          | Phi p ->
              p.inputs <-
                List.map
                  (fun (pb, pv) -> if pb = call_block.b_id then (post, pv) else (pb, pv))
                  p.inputs
          | _ -> ())
        (Ir.Fn.block fn s).instrs)
    (Ir.Fn.succs_of_term post_block.term);
  let phi_inputs = ref [] in
  let direct_calls = ref [] in
  let rec cascade (cur : bid) = function
    | [] ->
        (* fallback: residual virtual call under a synthetic site so later
           rounds do not re-speculate it *)
        let fb =
          Ir.Fn.append fn cur
            (Call { callee = Virtual sel; args; site = fresh_site (); rty })
        in
        Ir.Fn.set_term fn cur (Goto post);
        phi_inputs := (cur, fb) :: !phi_inputs
    | (cls, m) :: rest ->
        let test = Ir.Fn.append fn cur (TypeTest { obj = recv; cls }) in
        let dcall_block = Ir.Fn.add_block fn in
        let next_block = Ir.Fn.add_block fn in
        Ir.Fn.set_term fn cur
          (If { cond = test; site = fresh_site (); tb = dcall_block; fb = next_block });
        let dcall =
          Ir.Fn.append fn dcall_block (Call { callee = Direct m; args; site; rty })
        in
        Ir.Fn.set_term fn dcall_block (Goto post);
        phi_inputs := (dcall_block, dcall) :: !phi_inputs;
        direct_calls := (cls, dcall) :: !direct_calls;
        cascade next_block rest
  in
  cascade call_block.b_id targets;
  (Ir.Fn.instr fn call_vid).kind <- Phi { ty = rty; inputs = List.rev !phi_inputs };
  post_block.instrs <- call_vid :: post_block.instrs;
  List.rev !direct_calls

(* Applies [build] to a Poly call-tree node in the root IR and re-anchors
   its children at the new direct calls. Returns false (leaving the
   callsite untouched and marking the node Generic) when no viable target
   remains — e.g. every speculated child hit the recursion limit. *)
let materialize (t : Calltree.t) (n : Calltree.node) : bool =
  let open Calltree in
  let sel = match n.kind with Poly sel -> sel | _ -> invalid_arg "Typeswitch.materialize" in
  let targets =
    List.filter_map
      (fun (c : node) ->
        match (c.recv_cls, c.kind) with
        | Some cls, Cutoff (Known m) -> Some (cls, (m, c))
        | Some cls, Expanded _ -> (
            match Ir.Program.resolve t.prog cls sel with
            | Some m -> Some (cls, (m, c))
            | None -> None)
        | _ -> None)
      n.children
    |> order_targets t.prog
  in
  if targets = [] then begin
    n.kind <- Generic "no viable speculation targets";
    n.children <- [];
    false
  end
  else begin
    let direct =
      build t.prog t.root_fn ~call_vid:n.call_vid
        ~targets:(List.map (fun (cls, (m, _)) -> (cls, m)) targets)
        ~fresh_site:(fun () -> fresh_syn_site t)
    in
    List.iter
      (fun (cls, (_, (child : node))) ->
        match List.assoc_opt cls direct with
        | Some dcall ->
            child.call_vid <- dcall;
            child.owner <- t.root_fn
        | None -> child.kind <- Deleted)
      targets;
    (* children that were not viable targets can no longer be anchored *)
    List.iter
      (fun (c : node) ->
        if not (List.exists (fun (_, (_, c')) -> c'.nid = c.nid) targets) then begin
          c.kind <- Deleted;
          c.children <- []
        end)
      n.children;
    true
  end
