(** The inlining phase (paper, Listing 5): best cluster first, gated by
    the adaptive threshold (Eq. 12, reconstruction in DESIGN.md) or the
    fixed T_i budget; a cluster splices together with every member, and
    its front becomes new root children. *)

open Calltree

val log_src : Logs.src
(** Per-decision debug logging. *)

val can_inline : t -> node -> bool
(** ⟨tuple(n)⟩ ≥ t1 · 2^((|ir(root)| + cost(n) − t2)/tscale), and the root
    is below the hard size cap. *)

val inline_node : t -> node -> int
(** Splices a root-anchored node (and, recursively, its cluster members)
    into the root; returns the number of callsites inlined. *)

val run : t -> int
(** One full inlining phase over the root's children. *)
