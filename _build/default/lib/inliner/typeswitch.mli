(** Typeswitch materialization for polymorphic inlining (paper, Section
    IV, after Hölzle & Ungar): a virtual callsite becomes a most-specific-
    first cascade of subtype tests dispatching to direct calls, ending in
    a residual virtual call (the paper's alternative to deoptimization). *)

open Ir.Types

val order_targets : program -> (class_id * 'a) list -> (class_id * 'a) list
(** Sorts so no class follows one of its subclasses. *)

val build :
  program -> fn -> call_vid:vid -> targets:(class_id * meth_id) list ->
  fresh_site:(unit -> site) -> (class_id * vid) list
(** Rewrites the callsite in place; returns the direct-call vid per target
    class. The caller orders targets (see {!order_targets}).
    @raise Invalid_argument on an empty target list, a non-virtual or
    missing callsite. *)

val materialize : Calltree.t -> Calltree.node -> bool
(** Applies [build] to a Poly node in the root IR and re-anchors its
    children at the direct calls. False (node becomes Generic) when no
    viable target remains. *)
