(** Cross-compilation memoization of deep inlining trials: (callee,
    specialization signature) keys an immutable specialized-body template,
    copied on use, so repeated expansion of the same helper under the same
    argument shapes pays the canonicalization fixpoint once. Results are
    bit-identical with and without a cache; one cache must never span
    programs. *)

open Ir.Types

type t

val create : unit -> t

val bind : t -> Ir.Types.program -> unit
(** Binds the cache to a program on first use.
    @raise Invalid_argument when the cache is later used with a different
    program — templates are meaningless under another program's tables. *)

val find : t -> meth_id -> enabled:bool -> sg:Sigs.spec -> (fn * int * int) option
(** A fresh copy of the template plus (N_s, N_a), or [None] on a miss. *)

val store : t -> meth_id -> enabled:bool -> sg:Sigs.spec -> body:fn -> n_opts:int ->
  n_a:int -> unit

val stats : t -> int * int * int
(** (hits, misses, entries). *)
