(* Specialization signatures: what a callsite would propagate into its
   callee — per parameter, an optional constant and an optional refined
   type. Shared by the call tree (deep inlining trials, re-specialization
   guards) and the trial cache (memoization keys). *)

open Ir.Types

type spec = (const option * ty option) array

let strictly_more_precise (prog : program) ~(refined : ty) ~(declared : ty) : bool =
  refined <> declared
  &&
  match (refined, declared) with
  | Tobj a, Tobj b -> Ir.Program.is_subclass prog ~sub:a ~sup:b
  | _ -> false

let digest (sg : spec) : string =
  let part (cst, ty) =
    Fmt.str "%a/%a"
      (Fmt.option Ir.Printer.pp_const) cst
      (Fmt.option Ir.Printer.pp_ty) ty
  in
  String.concat ";" (Array.to_list (Array.map part sg))

(* Strictly better information: some parameter gained a constant or a more
   precise type, and none lost one. *)
let improves (prog : program) ~(old_sig : spec) ~(new_sig : spec) : bool =
  if Array.length old_sig <> Array.length new_sig then true
  else begin
    let improved = ref false and regressed = ref false in
    Array.iteri
      (fun i (oc, oty) ->
        let nc, nty = new_sig.(i) in
        (match (oc, nc) with
        | None, Some _ -> improved := true
        | Some _, None -> regressed := true
        | Some a, Some b when a <> b -> regressed := true
        | _ -> ());
        match (oty, nty) with
        | None, Some _ -> improved := true
        | Some _, None -> regressed := true
        | Some a, Some b when a <> b ->
            if strictly_more_precise prog ~refined:b ~declared:a then improved := true
            else regressed := true
        | _ -> ())
      old_sig;
    !improved && not !regressed
  end
