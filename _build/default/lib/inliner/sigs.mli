(** Specialization signatures: what a callsite would propagate into its
    callee — per parameter, an optional constant and an optional refined
    type. Shared by the call tree (deep inlining trials, re-specialization
    guards) and the trial cache (memoization keys). *)

open Ir.Types

type spec = (const option * ty option) array

val strictly_more_precise : program -> refined:ty -> declared:ty -> bool

val digest : spec -> string
(** A stable printable key. *)

val improves : program -> old_sig:spec -> new_sig:spec -> bool
(** Strictly better information: some parameter gained a constant or a
    more precise type, and none lost one. *)
