(* Cross-compilation memoization of deep inlining trials.

   Specializing a callee (copy + argument propagation + canonicalization
   to a fixpoint) is the expensive part of expansion, and the same
   (method, specialization signature) pair recurs constantly: every caller
   of a hot helper sees the same argument shapes, and every compilation of
   a caller re-expands the same subtree. The paper lists compilation cost
   as a core constraint of online inlining (Section III-A: "creating the
   complete call graph is expensive"); this cache bounds the cost without
   changing any result — entries are immutable templates, copied on use.

   Keys include the shallow/deep flag because the ablation variants
   specialize differently. Sharing a cache across programs is invalid
   (prepared bodies differ); the engine/benchmark layer creates one per
   compiler instance. *)

open Ir.Types

type entry = { template : fn; n_opts : int; n_a : int }

type t = {
  entries : (meth_id * string, entry) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  (* the cache binds to the first program it serves; templates from one
     program are meaningless (and type-unsafe) under another's class and
     method tables *)
  mutable owner : program option;
}

let create () = { entries = Hashtbl.create 64; hits = 0; misses = 0; owner = None }

(* @raise Invalid_argument when the cache is used across programs. *)
let bind (t : t) (prog : program) : unit =
  match t.owner with
  | None -> t.owner <- Some prog
  | Some p when p == prog -> ()
  | Some _ ->
      invalid_arg
        "Trial_cache: one cache must not span programs (create one per compiled \
         program)"

(* A disabled trial ignores the signature entirely, so all signatures
   share one entry. *)
let key (m : meth_id) ~(enabled : bool) ~(sg : Sigs.spec) : meth_id * string =
  (m, if enabled then "d:" ^ Sigs.digest sg else "s:")

let find (t : t) (m : meth_id) ~enabled ~sg : (fn * int * int) option =
  match Hashtbl.find_opt t.entries (key m ~enabled ~sg) with
  | Some { template; n_opts; n_a } ->
      t.hits <- t.hits + 1;
      Some (Ir.Fn.copy template, n_opts, n_a)
  | None ->
      t.misses <- t.misses + 1;
      None

let store (t : t) (m : meth_id) ~enabled ~sg ~(body : fn) ~(n_opts : int) ~(n_a : int) :
    unit =
  Hashtbl.replace t.entries (key m ~enabled ~sg)
    { template = Ir.Fn.copy body; n_opts; n_a }

let stats (t : t) = (t.hits, t.misses, Hashtbl.length t.entries)
