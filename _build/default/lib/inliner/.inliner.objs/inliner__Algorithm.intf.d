lib/inliner/algorithm.mli: Format Ir Logs Params Runtime Trial_cache
