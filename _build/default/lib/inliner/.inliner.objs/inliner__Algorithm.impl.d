lib/inliner/algorithm.ml: Analysis Calltree Expansion Fmt Inline_phase Ir Logs Opt Params Runtime
