lib/inliner/typeswitch.mli: Calltree Ir
