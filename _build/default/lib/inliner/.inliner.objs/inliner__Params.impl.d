lib/inliner/params.ml: Fmt Printf
