lib/inliner/inline_phase.mli: Calltree Logs
