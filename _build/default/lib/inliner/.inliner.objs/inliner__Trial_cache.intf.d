lib/inliner/trial_cache.mli: Ir Sigs
