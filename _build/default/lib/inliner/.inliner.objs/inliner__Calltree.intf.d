lib/inliner/calltree.mli: Format Ir Params Runtime Trial_cache
