lib/inliner/trial_cache.ml: Hashtbl Ir Sigs
