lib/inliner/typeswitch.ml: Calltree Ir List
