lib/inliner/expansion.mli: Calltree
