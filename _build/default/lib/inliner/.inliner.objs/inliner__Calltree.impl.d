lib/inliner/calltree.ml: Array Fmt Hashtbl Ir Lazy List Opt Option Params Runtime Sigs Trial_cache
