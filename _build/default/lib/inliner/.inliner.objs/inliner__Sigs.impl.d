lib/inliner/sigs.ml: Array Fmt Ir String
