lib/inliner/inline_phase.ml: Analysis Calltree Hashtbl Ir List Logs Params Typeswitch
