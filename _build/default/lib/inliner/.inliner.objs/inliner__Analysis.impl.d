lib/inliner/analysis.ml: Calltree List
