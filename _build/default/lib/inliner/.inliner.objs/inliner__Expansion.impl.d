lib/inliner/expansion.ml: Calltree List Option Params
