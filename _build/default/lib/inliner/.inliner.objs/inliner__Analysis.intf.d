lib/inliner/analysis.mli: Calltree
