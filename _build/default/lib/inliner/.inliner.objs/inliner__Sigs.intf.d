lib/inliner/sigs.mli: Ir
