(** The top-level incremental inlining algorithm (paper, Listing 1):
    alternate expand / analyze / inline, re-optimize the root
    (canonicalization, read-write elimination, loop peeling) and refresh
    the call tree each round, until nothing changes, the round budget is
    spent, or the root hits the size cap. *)

type stats = {
  mutable rounds : int;
  mutable expanded : int;
  mutable inlined : int;
  mutable initial_size : int;
  mutable final_size : int;
  mutable opt_events : int;
}

val pp_stats : Format.formatter -> stats -> unit

type result = { body : Ir.Types.fn; stats : stats }

val log_src : Logs.src
(** Per-round debug logging ([Logs.Src.set_level]). *)

val compile :
  ?trial_cache:Trial_cache.t -> Ir.Types.program -> Runtime.Profile.t -> Params.t ->
  Ir.Types.meth_id -> result
(** Compiles one root method; the method's interpreter body is left
    untouched — the caller installs [result.body].
    @raise Invalid_argument when the method has no body. *)
