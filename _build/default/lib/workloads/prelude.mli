(** Shared Sel library code prepended to workloads. *)

val collections : string
(** A small Scala-like collections layer (IntSeq with foreach/fold/
    mapInto/count over ArraySeq/RangeSeq/StridedSeq), a one-field box
    class, and a deterministic xorshift PRNG — the generic, polymorphic
    traversal code whose inlining the paper's Figure 1 motivates. *)
