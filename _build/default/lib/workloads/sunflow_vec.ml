(* The sunflow shape (ray tracing): tight loops of small vector-math
   methods plus an abstract Shape.hit with a handful of implementations.
   Mostly-monomorphic small-method inlining; gains come from deleting call
   overhead rather than devirtualization. *)

let workload : Defs.t =
  {
    name = "sunflow-vec";
    description = "fixed-point ray/shape intersection with small vector methods";
    flavor = Java;
    iters = 60;
    expected = "21544\n";
    source =
      Prelude.collections
      ^ {|
class Vec(x: Int, y: Int, z: Int) {
  def dot(o: Vec): Int = (x * o.x + y * o.y + z * o.z) / 1024
  def sub(o: Vec): Vec = new Vec(x - o.x, y - o.y, z - o.z)
  def scale(k: Int): Vec = new Vec(x * k / 1024, y * k / 1024, z * k / 1024)
  def norm2(): Int = this.dot(this)
}

abstract class Shape {
  def hit(orig: Vec, dir: Vec): Int   /* distance*1024, or -1 */
}
class Sphere(center: Vec, r2: Int) extends Shape {
  def hit(orig: Vec, dir: Vec): Int = {
    val oc = center.sub(orig);
    val b = oc.dot(dir);
    val disc = b * b / 1024 - oc.norm2() + r2;
    if (disc < 0) { 0 - 1 } else { b - disc / 2048 }
  }
}
class Plane(normal: Vec, d: Int) extends Shape {
  def hit(orig: Vec, dir: Vec): Int = {
    val denom = normal.dot(dir);
    if (abs(denom) < 8) { 0 - 1 } else { (d - normal.dot(orig)) * 1024 / denom }
  }
}

def bench(): Int = {
  val g = rng(99);
  val shapes = new Array[Shape](6);
  var i = 0;
  while (i < 6) {
    if (i % 2 == 0) {
      shapes[i] = new Sphere(new Vec(g.below(2048), g.below(2048), g.below(2048)), 1024 + g.below(4096));
    } else {
      shapes[i] = new Plane(new Vec(1024, g.below(512), g.below(512)), g.below(4096));
    };
    i = i + 1;
  }
  var check = 0;
  var ray = 0;
  while (ray < 40) {
    val orig = new Vec(g.below(1024), g.below(1024), 0);
    val dir = new Vec(724, 724, g.below(128));
    var s = 0;
    var nearest = 1073741824;
    while (s < 6) {
      val t = shapes[s].hit(orig, dir);
      if (t > 0 & t < nearest) { nearest = t };
      s = s + 1;
    }
    check = (check + nearest) % 1000000007;
    ray = ray + 1;
  }
  check
}

def main(): Unit = println(bench())
|};
  }
