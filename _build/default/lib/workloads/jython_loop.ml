(* An interpreter-dispatch workload in the spirit of jython: a small
   expression-tree interpreter whose [eval] is a hot polymorphic call with
   many receiver classes (megamorphic at the root, monomorphic per node
   type). The paper reports C2-competitive gains here only with enough
   budget — a "Java-like" workload. *)

let workload : Defs.t =
  {
    name = "jython-loop";
    description = "expression-tree interpreter with megamorphic eval dispatch";
    flavor = Java;
    iters = 60;
    expected = "149166\n";
    source =
      Prelude.collections
      ^ {|
abstract class Expr {
  def eval(env: Array[Int]): Int
}
class Lit(v: Int) extends Expr {
  def eval(env: Array[Int]): Int = v
}
class Var(idx: Int) extends Expr {
  def eval(env: Array[Int]): Int = env[idx]
}
class Add(l: Expr, r: Expr) extends Expr {
  def eval(env: Array[Int]): Int = l.eval(env) + r.eval(env)
}
class Mul(l: Expr, r: Expr) extends Expr {
  def eval(env: Array[Int]): Int = l.eval(env) * r.eval(env)
}
class Ifpos(c: Expr, t: Expr, e: Expr) extends Expr {
  def eval(env: Array[Int]): Int = {
    if (c.eval(env) > 0) { t.eval(env) } else { e.eval(env) }
  }
}

/* while (x > 0) { acc = acc + x*x + y; x = x - 1 } encoded as a tree */
def buildBody(): Expr = {
  val x = new Var(0);
  val y = new Var(1);
  new Add(new Add(new Mul(x, x), y), new Var(2))
}

def bench(): Int = {
  val body = buildBody();
  val guard = new Ifpos(new Var(0), buildBody(), new Lit(0));
  val env = new Array[Int](3);
  env[1] = 7;
  var acc = 0;
  var x = 60;
  while (x > 0) {
    env[0] = x;
    env[2] = acc % 13;
    acc = acc + body.eval(env) + guard.eval(env);
    x = x - 1;
  }
  acc
}

def main(): Unit = println(bench())
|};
  }
