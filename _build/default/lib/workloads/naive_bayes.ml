(* The naive-bayes shape (Spark MLlib multinomial naive Bayes): per-class
   per-feature log-likelihood accumulation written with fold/foreach over
   the shared collections layer (paper: ≈1.8x over C2). *)

let workload : Defs.t =
  {
    name = "naive-bayes";
    description = "per-class feature accumulation with collection folds";
    flavor = Numeric;
    iters = 60;
    expected = "1429447\n";
    source =
      Prelude.collections
      ^ {|
/* log2-ish fixed-point approximation: floor(log2(x)) * 1024 + remainder */
def logApprox(x: Int): Int = {
  var v = max(x, 1);
  var l = 0;
  while (v > 1) { v = v >> 1; l = l + 1; }
  l * 1024 + (max(x, 1) - (1 << l))
}

def scoreClass(counts: IntSeq, total: Int, doc: IntSeq): Int = {
  val acc = box(0);
  var i = 0;
  while (i < doc.length()) {
    val f = doc.get(i);
    acc.v = acc.v + logApprox((counts.get(f) + 1) * 4096 / (total + counts.length()));
    i = i + 1;
  }
  acc.v
}

def bench(): Int = {
  val g = rng(271828);
  val vocab = 48;
  val classes = 4;
  /* training counts per class */
  val counts = new Array[IntSeq](classes);
  val totals = new Array[Int](classes);
  var c = 0;
  while (c < classes) {
    val seed = c;
    counts[c] = fillSeq(vocab, (i: Int) => (i * (seed + 3)) % 37);
    totals[c] = counts[c].fold(0, (a: Int, b: Int) => a + b);
    c = c + 1;
  }
  var check = 0;
  var d = 0;
  while (d < 20) {
    val doc = fillSeq(12, (i: Int) => g.below(vocab));
    /* argmax over class scores */
    var bestClass = 0;
    var bestScore = 0 - 1073741824;
    c = 0;
    while (c < classes) {
      val s = scoreClass(counts[c], totals[c], doc);
      if (s > bestScore) { bestScore = s; bestClass = c };
      c = c + 1;
    }
    check = (check + bestClass + bestScore) % 1000000007;
    d = d + 1;
  }
  check
}

def main(): Unit = println(bench())
|};
  }
