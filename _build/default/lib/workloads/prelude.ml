(* Shared Sel library code prepended to workloads: a small Scala-like
   collections layer whose generality is exactly what makes inlining hard —
   every traversal goes through polymorphic [length]/[get]/[apply] calls,
   as in the paper's Figure 1. *)

let collections =
  {|
abstract class IntSeq {
  def get(i: Int): Int
  def length(): Int
  def set(i: Int, v: Int): Unit
  def foreach(f: Int => Unit): Unit = {
    var i = 0;
    while (i < this.length()) { f(this.get(i)); i = i + 1; }
  }
  def fold(z: Int, f: (Int, Int) => Int): Int = {
    var acc = z;
    var i = 0;
    while (i < this.length()) { acc = f(acc, this.get(i)); i = i + 1; }
    acc
  }
  def mapInto(out: IntSeq, f: Int => Int): Unit = {
    var i = 0;
    while (i < this.length()) { out.set(i, f(this.get(i))); i = i + 1; }
  }
  def count(p: Int => Bool): Int = {
    var n = 0;
    var i = 0;
    while (i < this.length()) { if (p(this.get(i))) { n = n + 1 }; i = i + 1; }
    n
  }
}

class ArraySeq(data: Array[Int]) extends IntSeq {
  def get(i: Int): Int = data[i]
  def length(): Int = data.length
  def set(i: Int, v: Int): Unit = data[i] = v
}

class RangeSeq(n: Int) extends IntSeq {
  def get(i: Int): Int = i
  def length(): Int = n
  def set(i: Int, v: Int): Unit = {}
}

class StridedSeq(data: Array[Int], stride: Int) extends IntSeq {
  def get(i: Int): Int = data[i * stride]
  def length(): Int = data.length / stride
  def set(i: Int, v: Int): Unit = data[i * stride] = v
}

/* Constructor parameters become (mutable) fields. */
class IntBox(v: Int) {}

def box(v: Int): IntBox = new IntBox(v)

def fillSeq(n: Int, f: Int => Int): IntSeq = {
  val a = new Array[Int](n);
  var i = 0;
  while (i < n) { a[i] = f(i); i = i + 1; }
  new ArraySeq(a)
}

/* A deterministic xorshift-style PRNG. */
class Rng(state: Int) {
  def next(): Int = {
    var x = this.state;
    x = x ^ (x << 13);
    x = x ^ (x >> 17);
    x = x ^ (x << 5);
    this.state = x;
    if (x < 0) { 0 - x } else { x }
  }
  def below(n: Int): Int = this.next() % n
}

def rng(seed: Int): Rng = new Rng(seed + 2463534242)
|}
