(** Synthetic call-graph generator for controlled inliner studies:
    deterministic Sel programs with tunable call-chain depth, fanout,
    polymorphism degree, leaf work and hotness skew. *)

type config = {
  seed : int;
  depth : int;          (** layers of functions above the Op dispatch *)
  fanout : int;         (** callees per layer function (>= 1) *)
  poly_degree : int;    (** concrete Op implementations (>= 1) *)
  leaf_work : int;      (** loop trips inside each Op implementation *)
  hot_fraction : float; (** fraction of layer callsites inside a loop *)
}

val default : config

val source_of : config -> string
(** The generated Sel program (same config, same text). *)

val generate : config -> Defs.t
(** A full workload descriptor; the pinned expected output is computed by
    interpreting the program once.
    @raise Invalid_argument if the generated program fails to compile (a
    generator bug). *)
