(* The luindex shape (text indexing): scanning strings, hashing terms into
   buckets, small hot helpers (hash step, bucket probe). Plain Java-like
   code — the paper reports ≈13% over C2 on luindex. *)

let workload : Defs.t =
  {
    name = "luindex-text";
    description = "word hashing and frequency counting over generated text";
    flavor = Java;
    iters = 60;
    expected = "1037\n";
    source =
      Prelude.collections
      ^ {|
def hashStep(h: Int, c: Int): Int = (h * 31 + c) % 1048576

def hashRange(s: String, from: Int, to: Int): Int = {
  var h = 7;
  var i = from;
  while (i < to) { h = hashStep(h, strget(s, i)); i = i + 1; }
  h
}

def isSpace(c: Int): Bool = c == 32

class Index(buckets: Array[Int], counts: Array[Int]) {
  def add(h: Int): Int = {
    var slot = h % buckets.length;
    var probes = 0;
    var placed = 0 - 1;
    while (placed < 0 & probes < buckets.length) {
      if (buckets[slot] == 0 | buckets[slot] == h + 1) {
        buckets[slot] = h + 1;
        counts[slot] = counts[slot] + 1;
        placed = slot;
      } else {
        slot = (slot + 1) % buckets.length;
        probes = probes + 1;
      }
    }
    placed
  }
  def totalWeighted(): Int = {
    var acc = 0;
    var i = 0;
    while (i < counts.length) { acc = acc + counts[i] * (i + 1); i = i + 1; }
    acc
  }
}

def indexText(idx: Index, text: String): Int = {
  var start = 0;
  var i = 0;
  var words = 0;
  while (i <= text.length) {
    val boundary = if (i == text.length) { true } else { isSpace(strget(text, i)) };
    if (boundary) {
      if (i > start) {
        idx.add(hashRange(text, start, i));
        words = words + 1;
      };
      start = i + 1;
    };
    i = i + 1;
  }
  words
}

def bench(): Int = {
  val idx = new Index(new Array[Int](64), new Array[Int](64));
  var check = 0;
  check = check + indexText(idx, "the quick brown fox jumps over the lazy dog");
  check = check + indexText(idx, "pack my box with five dozen liquor jugs");
  check = check + indexText(idx, "how vexingly quick daft zebras jump");
  check = check + indexText(idx, "the five boxing wizards jump quickly over the dog");
  check + idx.totalWeighted()
}

def main(): Unit = println(bench())
|};
  }
