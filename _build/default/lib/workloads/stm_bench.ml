(* The stmbench7/ScalaSTM shape: reads and writes of an object graph routed
   through a transactional-reference abstraction — every access is a
   virtual call through a Ref wrapper, so inlining the access layer is the
   whole game (the paper reports ≈3x over the greedy inliner here). *)

let workload : Defs.t =
  {
    name = "stm-bench";
    description = "object-graph updates through a transactional Ref abstraction";
    flavor = Scala;
    iters = 60;
    expected = "400686\n";
    source =
      Prelude.collections
      ^ {|
abstract class Ref {
  def get(tx: Tx): Int
  def set(tx: Tx, v: Int): Unit
}
class Tx(log: Array[Int]) {
  def record(id: Int): Unit = log[id % log.length] = log[id % log.length] + 1
  def reads(): Int = log[0]
}
class PlainRef(id: Int, value: Int) extends Ref {
  def get(tx: Tx): Int = { tx.record(id); value }
  def set(tx: Tx, v: Int): Unit = { tx.record(id); this.value = v }
}
class VersionedRef(id: Int, value: Int, version: Int) extends Ref {
  def get(tx: Tx): Int = { tx.record(id); value }
  def set(tx: Tx, v: Int): Unit = {
    tx.record(id);
    this.value = v;
    this.version = this.version + 1;
  }
}

class Account(balance: Ref, reserved: Ref) {
  def transferIn(tx: Tx, amount: Int): Unit =
    balance.set(tx, balance.get(tx) + amount)
  def reserve(tx: Tx, amount: Int): Bool = {
    if (balance.get(tx) >= amount) {
      balance.set(tx, balance.get(tx) - amount);
      reserved.set(tx, reserved.get(tx) + amount);
      true
    } else { false }
  }
  def total(tx: Tx): Int = balance.get(tx) + reserved.get(tx)
}

def bench(): Int = {
  val g = rng(31337);
  val tx = new Tx(new Array[Int](16));
  val accounts = new Array[Account](12);
  var i = 0;
  while (i < accounts.length) {
    accounts[i] = new Account(
      new VersionedRef(i * 2, 1000 + g.below(1000), 0),
      new PlainRef(i * 2 + 1, 0));
    i = i + 1;
  }
  var check = 0;
  var op = 0;
  while (op < 120) {
    val a = accounts[g.below(accounts.length)];
    val b = accounts[g.below(accounts.length)];
    val amount = 1 + g.below(50);
    if (a.reserve(tx, amount)) { b.transferIn(tx, amount) };
    check = (check + a.total(tx) + b.total(tx)) % 1000000007;
    op = op + 1;
  }
  check + tx.reads()
}

def main(): Unit = println(bench())
|};
  }
