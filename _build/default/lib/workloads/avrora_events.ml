(* The avrora shape (microcontroller simulation): a cyclic scheduler
   stepping heterogeneous device models, each step a small state-machine
   update. Virtual dispatch over a stable set of device classes; mostly
   cheap bodies, so call overhead dominates. *)

let workload : Defs.t =
  {
    name = "avrora-events";
    description = "event-driven device simulation with small step methods";
    flavor = Java;
    iters = 60;
    expected = "1201\n";
    source =
      Prelude.collections
      ^ {|
abstract class Device {
  def step(clock: Int): Int    /* returns signal contribution */
}
class Timer(period: Int, phase: Int) extends Device {
  def step(clock: Int): Int = {
    if ((clock + phase) % period == 0) { 1 } else { 0 }
  }
}
class Uart(divisor: Int, buffered: Int) extends Device {
  def step(clock: Int): Int = {
    if (clock % divisor == 0 & this.buffered > 0) {
      this.buffered = this.buffered - 1;
      2
    } else { 0 }
  }
}
class Adc(noise: Rng) extends Device {
  def step(clock: Int): Int = noise.below(3)
}

def bench(): Int = {
  val devices = new Array[Device](9);
  devices[0] = new Timer(3, 0);
  devices[1] = new Timer(7, 2);
  devices[2] = new Timer(13, 5);
  devices[3] = new Uart(5, 500);
  devices[4] = new Uart(11, 300);
  devices[5] = new Adc(rng(1));
  devices[6] = new Timer(17, 1);
  devices[7] = new Uart(3, 800);
  devices[8] = new Adc(rng(2));
  var signal = 0;
  var clock = 0;
  while (clock < 300) {
    var d = 0;
    while (d < devices.length) {
      signal = signal + devices[d].step(clock);
      d = d + 1;
    }
    clock = clock + 1;
  }
  signal
}

def main(): Unit = println(bench())
|};
  }
