(* The scalap shape (Scala DaCapo: classfile signature decoding): a
   byte-stream reader with per-tag decode dispatch and varint decoding —
   small stateful reader methods called very frequently. The paper reports
   ≈2.5x over the greedy inliner on scalap. *)

let workload : Defs.t =
  {
    name = "scalap-decode";
    description = "tagged byte-stream decoding through a stateful reader";
    flavor = Scala;
    iters = 50;
    expected = "40668\n";
    source =
      Prelude.collections
      ^ {|
class Reader(data: Array[Int], pos: Int) {
  def eof(): Bool = this.pos >= data.length
  def byte(): Int = {
    /* reading past the end yields padding zeros, like a real decoder's
       guard page */
    if (this.eof()) { 0 }
    else {
      val b = data[this.pos];
      this.pos = this.pos + 1;
      b
    }
  }
  def varint(): Int = {
    /* 7-bit groups, high bit continues */
    var acc = 0;
    var sh = 0;
    var go = true;
    while (go & !this.eof()) {
      val b = this.byte();
      acc = acc | ((b & 127) << sh);
      sh = sh + 7;
      if (b < 128) { go = false };
    }
    acc
  }
}

abstract class Entry {
  def weight(): Int
}
class TermEntry(id: Int) extends Entry {
  def weight(): Int = id % 97
}
class TypeEntry(id: Int, arity: Int) extends Entry {
  def weight(): Int = id % 89 + arity * 3
}
class RefEntry(target: Int) extends Entry {
  def weight(): Int = target % 83 * 2
}

def decodeOne(r: Reader): Entry = {
  val tag = r.byte() % 3;
  if (tag == 0) { new TermEntry(r.varint()) }
  else { if (tag == 1) { new TypeEntry(r.varint(), r.byte() % 8) }
  else { new RefEntry(r.varint()) } }
}

def bench(): Int = {
  val g = rng(271);
  val data = new Array[Int](400);
  var i = 0;
  while (i < data.length) { data[i] = g.below(256); i = i + 1; }
  var check = 0;
  var pass = 0;
  while (pass < 6) {
    val r = new Reader(data, 0);
    while (!r.eof()) {
      val e = decodeOne(r);
      check = (check + e.weight()) % 1000000007;
    }
    pass = pass + 1;
  }
  check
}

def main(): Unit = println(bench())
|};
  }
