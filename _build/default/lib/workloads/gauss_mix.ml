(* The gauss-mix shape (Spark MLlib Gaussian mixture model): numeric
   kernels — dot products, row updates, normalization — reached through an
   abstract Matrix/Vector interface with exactly one concrete
   implementation at runtime. Deep inlining trials shine here (the paper
   reports ≈59% from deep trials and ≈1.9x over C2): propagating the
   concrete receiver type down the call tree devirtualizes the whole
   kernel. Fixed-point arithmetic (scale 1024) substitutes for floats. *)

let workload : Defs.t =
  {
    name = "gauss-mix";
    description = "fixed-point mixture-model kernels behind an abstract Matrix interface";
    flavor = Numeric;
    iters = 60;
    expected = "37150\n";
    source =
      Prelude.collections
      ^ {|
abstract class Matrix {
  def rows(): Int
  def cols(): Int
  def get(r: Int, c: Int): Int
  def set(r: Int, c: Int, v: Int): Unit
  def rowDot(r: Int, v: Array[Int]): Int = {
    var acc = 0;
    var c = 0;
    while (c < this.cols()) { acc = acc + this.get(r, c) * v[c] / 1024; c = c + 1; }
    acc
  }
  def scaleRow(r: Int, k: Int): Unit = {
    var c = 0;
    while (c < this.cols()) { this.set(r, c, this.get(r, c) * k / 1024); c = c + 1; }
  }
}

class Dense(nr: Int, nc: Int, data: Array[Int]) extends Matrix {
  def rows(): Int = nr
  def cols(): Int = nc
  def get(r: Int, c: Int): Int = data[r * nc + c]
  def set(r: Int, c: Int, v: Int): Unit = data[r * nc + c] = v
}

def makeDense(nr: Int, nc: Int, seed: Int): Matrix = {
  val g = rng(seed);
  val data = new Array[Int](nr * nc);
  var i = 0;
  while (i < data.length) { data[i] = g.below(2048) + 1; i = i + 1; }
  new Dense(nr, nc, data)
}

/* one EM-flavored sweep: responsibilities from dots, then row rescale */
def sweep(m: Matrix, point: Array[Int], resp: Array[Int]): Int = {
  var r = 0;
  var total = 0;
  while (r < m.rows()) {
    val d = m.rowDot(r, point);
    val w = 1024 * 1024 / (1024 + abs(d - 512));
    resp[r] = w;
    total = total + w;
    r = r + 1;
  }
  r = 0;
  while (r < m.rows()) {
    m.scaleRow(r, 512 + resp[r] * 512 / max(total, 1));
    r = r + 1;
  }
  total
}

def bench(): Int = {
  val m = makeDense(8, 24, 42);
  val g = rng(7);
  val point = new Array[Int](24);
  var i = 0;
  while (i < 24) { point[i] = g.below(2048); i = i + 1; }
  val resp = new Array[Int](8);
  var check = 0;
  var it = 0;
  while (it < 10) {
    check = (check + sweep(m, point, resp)) % 1000000007;
    it = it + 1;
  }
  check
}

def main(): Unit = println(bench())
|};
  }
