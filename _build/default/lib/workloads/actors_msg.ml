(* The actors shape (Scala actors benchmark): mailbox-style message
   processing where each actor's behavior is a handler closure and
   messages are dispatched through a small class hierarchy. Closure-heavy
   control flow with a hot, shared dispatch loop. *)

let workload : Defs.t =
  {
    name = "actors-msg";
    description = "mailbox message dispatch through handler closures";
    flavor = Scala;
    iters = 60;
    expected = "244772\n";
    source =
      Prelude.collections
      ^ {|
class Message(kind: Int, payload: Int, sender: Int) {}

class Mailbox(slots: Array[Message], head: Int, tail: Int) {
  def post(m: Message): Bool = {
    val next = (this.tail + 1) % slots.length;
    if (next == this.head) { false }
    else {
      slots[this.tail] = m;
      this.tail = next;
      true
    }
  }
  def drain(handler: Message => Int): Int = {
    var acc = 0;
    while (this.head != this.tail) {
      acc = acc + handler(slots[this.head]);
      this.head = (this.head + 1) % slots.length;
    }
    acc
  }
}

class Actor(id: Int, state: Int) {
  def behavior(): Message => Int = {
    (m: Message) => {
      if (m.kind == 0) { this.state = this.state + m.payload; this.state }
      else {
        if (m.kind == 1) { this.state = max(this.state - m.payload, 0); this.state }
        else { this.state * 2 % 8191 }
      }
    }
  }
}

def bench(): Int = {
  val g = rng(777);
  val actors = new Array[Actor](8);
  var i = 0;
  while (i < actors.length) { actors[i] = new Actor(i, g.below(100)); i = i + 1; }
  val mbox = new Mailbox(new Array[Message](64), 0, 0);
  var check = 0;
  var round = 0;
  while (round < 25) {
    var k = 0;
    while (k < 20) {
      mbox.post(new Message(g.below(3), g.below(50), g.below(actors.length)));
      k = k + 1;
    }
    var a = 0;
    while (a < actors.length) {
      check = (check + mbox.drain(actors[a].behavior())) % 1000000007;
      a = a + 1;
    }
    /* refill so every actor's drain sees work */
    round = round + 1;
  }
  check
}

def main(): Unit = println(bench())
|};
  }
