(* The scalac/pmd shape: visitor-pattern traversal of an AST — double
   dispatch (accept -> visit) makes every step two virtual calls, and
   different visitors share the same accept callsites (type-profile
   pollution). Clustering must inline accept and visit together to win. *)

let workload : Defs.t =
  {
    name = "scalac-visitor";
    description = "double-dispatch visitor traversal over a generated AST";
    flavor = Scala;
    iters = 60;
    expected = "38784\n";
    source =
      Prelude.collections
      ^ {|
abstract class Tree {
  def accept(v: Visitor): Int
}
abstract class Visitor {
  def visitNum(n: Num): Int
  def visitBin(b: Bin): Int
  def visitLet(l: Let): Int
}
class Num(value: Int) extends Tree {
  def accept(v: Visitor): Int = v.visitNum(this)
}
class Bin(op: Int, l: Tree, r: Tree) extends Tree {
  def accept(v: Visitor): Int = v.visitBin(this)
}
class Let(idx: Int, bound: Tree, body: Tree) extends Tree {
  def accept(v: Visitor): Int = v.visitLet(this)
}

class SumVisitor() extends Visitor {
  def visitNum(n: Num): Int = n.value
  def visitBin(b: Bin): Int = b.l.accept(this) + b.r.accept(this) + b.op
  def visitLet(l: Let): Int = l.bound.accept(this) + l.body.accept(this)
}
class DepthVisitor() extends Visitor {
  def visitNum(n: Num): Int = 1
  def visitBin(b: Bin): Int = 1 + max(b.l.accept(this), b.r.accept(this))
  def visitLet(l: Let): Int = 1 + max(l.bound.accept(this), l.body.accept(this))
}
class CountVisitor(kind: Int) extends Visitor {
  def visitNum(n: Num): Int = if (kind == 0) { 1 } else { 0 }
  def visitBin(b: Bin): Int = {
    val here = if (kind == 1) { 1 } else { 0 };
    here + b.l.accept(this) + b.r.accept(this)
  }
  def visitLet(l: Let): Int = {
    val here = if (kind == 2) { 1 } else { 0 };
    here + l.bound.accept(this) + l.body.accept(this)
  }
}

def buildAst(depth: Int, g: Rng): Tree = {
  if (depth == 0) { new Num(g.below(100)) }
  else {
    val k = g.below(4);
    if (k < 3) { new Bin(g.below(3), buildAst(depth - 1, g), buildAst(depth - 1, g)) }
    else { new Let(g.below(8), buildAst(depth - 1, g), buildAst(depth - 1, g)) }
  }
}

def bench(): Int = {
  val g = rng(5150);
  val ast = buildAst(7, g);
  val sum = new SumVisitor();
  val depthV = new DepthVisitor();
  var check = 0;
  var pass = 0;
  while (pass < 6) {
    check = (check + ast.accept(sum)) % 1000000007;
    check = check + ast.accept(depthV);
    check = check + ast.accept(new CountVisitor(pass % 3));
    pass = pass + 1;
  }
  check
}

def main(): Unit = println(bench())
|};
  }
