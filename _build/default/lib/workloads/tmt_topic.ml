(* The tmt shape (Scala DaCapo: the Stanford Topic Modeling Toolbox):
   Gibbs-style topic reassignment — nested numeric loops over documents ×
   topics with division-heavy scoring behind small accessor methods. The
   paper reports ≈1.5x over C2 on tmt. *)

let workload : Defs.t =
  {
    name = "tmt-topic";
    description = "Gibbs-flavored topic reassignment with fixed-point scoring";
    flavor = Scala;
    iters = 50;
    expected = "1142\n";
    source =
      Prelude.collections
      ^ {|
class Model(topics: Int, vocab: Int, wordTopic: Array[Int], topicTotal: Array[Int]) {
  def score(w: Int, t: Int): Int = {
    /* (count(w,t)+1) / (total(t)+V), fixed point at 4096 */
    (wordTopic[w * topics + t] + 1) * 4096 / (topicTotal[t] + vocab)
  }
  def assignDelta(w: Int, t: Int, d: Int): Unit = {
    wordTopic[w * topics + t] = wordTopic[w * topics + t] + d;
    topicTotal[t] = topicTotal[t] + d;
  }
  def best(w: Int): Int = {
    var t = 0;
    var bestT = 0;
    var bestS = 0 - 1;
    while (t < topics) {
      val s = this.score(w, t);
      if (s > bestS) { bestS = s; bestT = t };
      t = t + 1;
    }
    bestT
  }
}

def bench(): Int = {
  val g = rng(42424);
  val topics = 6;
  val vocab = 40;
  val m = new Model(topics, vocab, new Array[Int](vocab * topics), new Array[Int](topics));
  /* documents: word ids with current topic assignments */
  val words = new Array[Int](120);
  val assign = new Array[Int](120);
  var i = 0;
  while (i < words.length) {
    words[i] = g.below(vocab);
    assign[i] = g.below(topics);
    m.assignDelta(words[i], assign[i], 1);
    i = i + 1;
  }
  var check = 0;
  var sweepN = 0;
  while (sweepN < 4) {
    i = 0;
    while (i < words.length) {
      val w = words[i];
      m.assignDelta(w, assign[i], 0 - 1);
      val t = m.best(w);
      assign[i] = t;
      m.assignDelta(w, t, 1);
      check = (check + t) % 1000000007;
      i = i + 1;
    }
    sweepN = sweepN + 1;
  }
  check
}

def main(): Unit = println(bench())
|};
  }
