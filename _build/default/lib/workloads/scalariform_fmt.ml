(* The scalariform shape (Scala DaCapo: a source formatter): a token
   stream rewritten by formatting decisions expressed as predicate and
   action closures over a sliding window. Lambda-dense decision code over
   arrays; the paper reports ≈7% over C2 and ≈2.6x over greedy. *)

let workload : Defs.t =
  {
    name = "scalariform-fmt";
    description = "token-stream formatting with closure-based decisions";
    flavor = Scala;
    iters = 50;
    expected = "2612\n";
    source =
      Prelude.collections
      ^ {|
/* token encoding: kind * 64 + width */
class Stream(toks: Array[Int], len: Int) {
  def length(): Int = len
  def kind(i: Int): Int = toks[i] / 64
  def width(i: Int): Int = toks[i] % 64
}

/* a formatting rule: when [applies] at position i, add [cost] spaces */
class FmtRule(applies: Int => Bool, cost: Int => Int) {
  def run(s: Stream): Int = {
    var i = 0;
    var total = 0;
    while (i < s.length()) {
      if (applies(i)) { total = total + cost(i) };
      i = i + 1;
    }
    total
  }
}

def bench(): Int = {
  val g = rng(1618);
  val raw = new Array[Int](300);
  var i = 0;
  while (i < raw.length) { raw[i] = g.below(8) * 64 + g.below(40); i = i + 1; }
  val s = new Stream(raw, raw.length);
  val rules = new Array[FmtRule](5);
  /* indent after open-brace-like tokens */
  rules[0] = new FmtRule((i: Int) => s.kind(i) == 1, (i: Int) => 2);
  /* align wide tokens */
  rules[1] = new FmtRule((i: Int) => s.width(i) > 30, (i: Int) => 40 - s.width(i) + 2);
  /* space around operator-like tokens */
  rules[2] = new FmtRule((i: Int) => s.kind(i) == 4 | s.kind(i) == 5, (i: Int) => 2);
  /* compress runs of separators */
  rules[3] = new FmtRule(
    (i: Int) => i > 0 && s.kind(i) == 2 && s.kind(i - 1) == 2,
    (i: Int) => 0 - 1);
  /* long-line penalty from running width */
  rules[4] = new FmtRule((i: Int) => s.width(i) + i % 17 > 40, (i: Int) => 1);
  var check = 0;
  var pass = 0;
  while (pass < 4) {
    var r = 0;
    while (r < rules.length) {
      check = (check + rules[r].run(s)) % 1000000007;
      r = r + 1;
    }
    pass = pass + 1;
  }
  check
}

def main(): Unit = println(bench())
|};
  }
