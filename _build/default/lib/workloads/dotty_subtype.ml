(* The dotty shape (a compiler's type checker): nominal subtype queries
   over an encoded class hierarchy, with memoization and virtual dispatch
   over type-representation classes (named / applied / intersection). The
   paper reports ≈2.5% on dotty — a modest-gain workload. *)

let workload : Defs.t =
  {
    name = "dotty-subtype";
    description = "nominal subtype checking over encoded type representations";
    flavor = Scala;
    iters = 50;
    expected = "61\n";
    source =
      Prelude.collections
      ^ {|
class Hierarchy(parents: Array[Int]) {
  def isSub(a: Int, b: Int): Bool = {
    var cur = a;
    var found = cur == b;
    while (!found & parents[cur] != cur) {
      cur = parents[cur];
      found = cur == b;
    }
    found
  }
}

abstract class TypeRep {
  def conforms(h: Hierarchy, other: TypeRep): Bool
  def classId(): Int
}
class NamedType(id: Int) extends TypeRep {
  def conforms(h: Hierarchy, other: TypeRep): Bool = h.isSub(id, other.classId())
  def classId(): Int = id
}
class AppliedType(base: Int, arg: TypeRep) extends TypeRep {
  /* invariant type argument: base must conform and args must be mutual */
  def conforms(h: Hierarchy, other: TypeRep): Bool = {
    h.isSub(base, other.classId()) & arg.conforms(h, arg)
  }
  def classId(): Int = base
}
class AndType(l: TypeRep, r: TypeRep) extends TypeRep {
  def conforms(h: Hierarchy, other: TypeRep): Bool =
    l.conforms(h, other) | r.conforms(h, other)
  def classId(): Int = l.classId()
}

def buildHierarchy(n: Int, g: Rng): Hierarchy = {
  val parents = new Array[Int](n);
  var i = 1;
  parents[0] = 0;
  while (i < n) { parents[i] = g.below(i); i = i + 1; }
  new Hierarchy(parents)
}

def bench(): Int = {
  val g = rng(60035);
  val n = 48;
  val h = buildHierarchy(n, g);
  val reps = new Array[TypeRep](24);
  var i = 0;
  while (i < reps.length) {
    val k = i % 4;
    if (k < 2) { reps[i] = new NamedType(g.below(n)) }
    else { if (k == 2) { reps[i] = new AppliedType(g.below(n), new NamedType(g.below(n))) }
    else { reps[i] = new AndType(new NamedType(g.below(n)), new NamedType(g.below(n))) } };
    i = i + 1;
  }
  var check = 0;
  var a = 0;
  while (a < reps.length) {
    var b = 0;
    while (b < reps.length) {
      if (reps[a].conforms(h, reps[b])) { check = check + 1 };
      b = b + 1;
    }
    a = a + 1;
  }
  check
}

def main(): Unit = println(bench())
|};
  }
