(* A mode-dispatched numeric kernel, the canonical deep-inlining-trials
   case (optimization prediction back to Ball'79, and the paper's gauss-mix
   59% claim): each pipeline stage calls a large shared kernel with a
   *constant* mode argument that selects one of many branches.

   - With deep trials, specializing the kernel at each callsite folds the
     mode tests, prunes the other branches, and the residual body is small
     enough to join the stage's cluster: everything inlines, no dispatch
     remains.
   - Without deep trials the kernel looks like one big method with a
     context-polluted profile (every mode is hot globally); its
     benefit-to-size ratio stays below the threshold, so stages keep paying
     the call overhead plus the mode-test cascade on every element. *)

let workload : Defs.t =
  {
    name = "blas-modes";
    description = "pipeline stages over a shared mode-dispatched kernel";
    flavor = Numeric;
    iters = 60;
    expected = "581975\n";
    source =
      Prelude.collections
      ^ {|
/* one big kernel, eight modes; every branch is real work */
def kernel(mode: Int, a: Array[Int], b: Array[Int], i: Int, k: Int): Int = {
  if (mode == 0) {
    /* axpy */
    val r = a[i] * k / 1024 + b[i];
    b[i] = r;
    r
  } else { if (mode == 1) {
    /* scale and clamp */
    val s = a[i] * k / 1024;
    val c = min(max(s, 0 - 4096), 4096);
    b[i] = c;
    c
  } else { if (mode == 2) {
    /* squared difference */
    val d = a[i] - b[i];
    val q = d * d / 1024;
    b[i] = q;
    q
  } else { if (mode == 3) {
    /* shifted blend */
    val hi = a[i] >> 3;
    val lo = b[i] & 1023;
    val r = (hi << 2) | (lo >> 1);
    b[i] = r;
    r
  } else { if (mode == 4) {
    /* running average */
    val r = (a[i] + b[i]) / 2 + k;
    b[i] = r;
    r
  } else { if (mode == 5) {
    /* threshold count */
    val t = if (a[i] > k) { 1 } else { 0 };
    b[i] = b[i] + t;
    t
  } else { if (mode == 6) {
    /* 3-point stencil (clamped edges) */
    val left = a[max(i - 1, 0)];
    val right = a[min(i + 1, a.length - 1)];
    val r = (left + 2 * a[i] + right) / 4;
    b[i] = r;
    r
  } else {
    /* modular mix */
    val r = (a[i] * 31 + b[i] * 17 + k) % 8191;
    b[i] = r;
    r
  } } } } } } }
}

/* each stage uses ONE mode over the whole vector */
def stage(mode: Int, a: Array[Int], b: Array[Int], k: Int): Int = {
  var i = 0;
  var acc = 0;
  while (i < a.length) { acc = acc + kernel(mode, a, b, i, k); i = i + 1; }
  acc % 1000000007
}

def bench(): Int = {
  val g = rng(4242);
  val n = 48;
  val a = new Array[Int](n);
  val b = new Array[Int](n);
  var i = 0;
  while (i < n) { a[i] = g.below(4096); b[i] = g.below(4096); i = i + 1; }
  var check = 0;
  check = (check + stage(0, a, b, 512)) % 1000000007;
  check = (check + stage(2, a, b, 100)) % 1000000007;
  check = (check + stage(3, a, b, 7)) % 1000000007;
  check = (check + stage(5, a, b, 2048)) % 1000000007;
  check = (check + stage(6, a, b, 0)) % 1000000007;
  check = (check + stage(7, a, b, 99)) % 1000000007;
  check
}

def main(): Unit = println(bench())
|};
  }
