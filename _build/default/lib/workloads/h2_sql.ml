(* The h2 shape (DaCapo's in-memory SQL database): table scans with
   row predicates, index probes and aggregate folds. Mostly-monomorphic
   Java-style code with comparator indirection — the paper reports ≈5%
   C2-relative differences on h2, a low-headroom workload. *)

let workload : Defs.t =
  {
    name = "h2-sql";
    description = "in-memory table scans, index probes and aggregates";
    flavor = Java;
    iters = 50;
    expected = "108274\n";
    source =
      Prelude.collections
      ^ {|
/* a table of (id, dept, salary) rows in column arrays */
class Table(ids: Array[Int], depts: Array[Int], salaries: Array[Int], size: Int) {
  def rows(): Int = size
  def id(r: Int): Int = ids[r]
  def dept(r: Int): Int = depts[r]
  def salary(r: Int): Int = salaries[r]
  def scanWhere(p: Int => Bool, agg: (Int, Int) => Int, z: Int): Int = {
    var r = 0;
    var acc = z;
    while (r < size) {
      if (p(r)) { acc = agg(acc, r) };
      r = r + 1;
    }
    acc
  }
}

/* a sorted index over ids supporting binary search */
class Index(keys: Array[Int], rows: Array[Int], size: Int) {
  def lookup(key: Int): Int = {
    var lo = 0;
    var hi = size;
    var found = 0 - 1;
    while (lo < hi) {
      val mid = (lo + hi) / 2;
      if (keys[mid] == key) { found = rows[mid]; lo = hi }
      else { if (keys[mid] < key) { lo = mid + 1 } else { hi = mid } }
    }
    found
  }
}

def buildTable(n: Int, g: Rng): Table = {
  val ids = new Array[Int](n);
  val depts = new Array[Int](n);
  val salaries = new Array[Int](n);
  var r = 0;
  while (r < n) {
    ids[r] = r * 2 + 1;               /* sorted, odd */
    depts[r] = g.below(8);
    salaries[r] = 30000 + g.below(70000);
    r = r + 1;
  }
  new Table(ids, depts, salaries, n)
}

def buildIndex(t: Table): Index = {
  val keys = new Array[Int](t.rows());
  val rows = new Array[Int](t.rows());
  var r = 0;
  while (r < t.rows()) { keys[r] = t.id(r); rows[r] = r; r = r + 1; }
  new Index(keys, rows, t.rows())
}

def bench(): Int = {
  val g = rng(1003);
  val t = buildTable(120, g);
  val idx = buildIndex(t);
  var check = 0;
  /* Q1: sum of salaries in dept 3 */
  check = check + t.scanWhere((r: Int) => t.dept(r) == 3,
                              (acc: Int, r: Int) => acc + t.salary(r), 0) % 1000003;
  /* Q2: count of salaries above 60k */
  check = check + t.scanWhere((r: Int) => t.salary(r) > 60000,
                              (acc: Int, r: Int) => acc + 1, 0);
  /* Q3: max salary in an id range */
  check = check + t.scanWhere((r: Int) => t.id(r) >= 21 & t.id(r) < 121,
                              (acc: Int, r: Int) => max(acc, t.salary(r)), 0) % 1000003;
  /* Q4: point lookups through the index */
  var k = 0;
  while (k < 60) {
    val row = idx.lookup(k * 4 + 1);
    if (row >= 0) { check = check + t.dept(row) };
    k = k + 1;
  }
  check
}

def main(): Unit = println(bench())
|};
  }
