(* The lusearch shape (DaCapo: Lucene query search): inverted-index
   lookups and sorted posting-list intersection/union — tight array-merge
   loops with small monomorphic helpers. Call-overhead-bound Java code;
   the paper reports C2 *winning* lusearch, so this is a low-headroom
   (or negative) workload for the incremental inliner. *)

let workload : Defs.t =
  {
    name = "lusearch-q";
    description = "posting-list intersection and union over an inverted index";
    flavor = Java;
    iters = 50;
    expected = "2880\n";
    source =
      Prelude.collections
      ^ {|
/* a term's posting list: sorted doc ids */
class Postings(docs: Array[Int], size: Int) {
  def len(): Int = size
  def doc(i: Int): Int = docs[i]
}

def intersectCount(a: Postings, b: Postings): Int = {
  var i = 0;
  var j = 0;
  var hits = 0;
  while (i < a.len() & j < b.len()) {
    val da = a.doc(i);
    val db = b.doc(j);
    if (da == db) { hits = hits + 1; i = i + 1; j = j + 1 }
    else { if (da < db) { i = i + 1 } else { j = j + 1 } };
  }
  hits
}

def unionCount(a: Postings, b: Postings): Int = {
  var i = 0;
  var j = 0;
  var n = 0;
  while (i < a.len() | j < b.len()) {
    val da = if (i < a.len()) { a.doc(i) } else { 1073741824 };
    val db = if (j < b.len()) { b.doc(j) } else { 1073741824 };
    if (da == db) { i = i + 1; j = j + 1 }
    else { if (da < db) { i = i + 1 } else { j = j + 1 } };
    n = n + 1;
  }
  n
}

def makePostings(seed: Int, density: Int, universe: Int): Postings = {
  val g = rng(seed);
  val docs = new Array[Int](universe);
  var d = 0;
  var count = 0;
  while (d < universe) {
    if (g.below(density) == 0) { docs[count] = d; count = count + 1 };
    d = d + 1;
  }
  new Postings(docs, count)
}

def bench(): Int = {
  val terms = new Array[Postings](6);
  terms[0] = makePostings(11, 2, 150);
  terms[1] = makePostings(22, 3, 150);
  terms[2] = makePostings(33, 4, 150);
  terms[3] = makePostings(44, 2, 150);
  terms[4] = makePostings(55, 5, 150);
  terms[5] = makePostings(66, 3, 150);
  var check = 0;
  var qa = 0;
  while (qa < terms.length) {
    var qb = 0;
    while (qb < terms.length) {
      if (qa != qb) {
        check = check + intersectCount(terms[qa], terms[qb]);
        check = check + unionCount(terms[qa], terms[qb]);
      };
      qb = qb + 1;
    }
    qa = qa + 1;
  }
  check
}

def main(): Unit = println(bench())
|};
  }
