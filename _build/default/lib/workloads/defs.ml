(* Workload descriptor. Each workload is a self-contained Sel program with
   a [bench(): Int] entry returning a checksum (run repeatedly by the
   harness) and a [main(): Unit] printing that checksum once (used by the
   differential tests). *)

type flavor =
  | Java     (* plain, mostly monomorphic code: paper's DaCapo-like shape *)
  | Scala    (* abstraction-heavy, polymorphic: Scala-DaCapo-like shape *)
  | Numeric  (* kernels behind abstract interfaces: Spark-MLlib-like shape *)

type t = {
  name : string;
  description : string;
  flavor : flavor;
  source : string;
  iters : int;         (* default repetitions for steady-state measurement *)
  expected : string;   (* expected main() output *)
}

let flavor_to_string = function
  | Java -> "java"
  | Scala -> "scala"
  | Numeric -> "numeric"
