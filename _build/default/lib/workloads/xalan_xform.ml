(* The xalan shape (DaCapo: XSLT transformation): walking a DOM-like tree
   while building an output token stream, with per-node-type dispatch and
   attribute filtering. The paper reports C2 winning xalan — another
   workload where the incremental inliner should at best tie. *)

let workload : Defs.t =
  {
    name = "xalan-xform";
    description = "DOM-style tree transformation into an output token stream";
    flavor = Java;
    iters = 50;
    expected = "258437791\n";
    source =
      Prelude.collections
      ^ {|
abstract class XNode {
  def transform(out: Array[Int], pos: Int): Int   /* returns new pos */
}
class XText(value: Int) extends XNode {
  def transform(out: Array[Int], pos: Int): Int = {
    if (pos < out.length) { out[pos] = value };
    pos + 1
  }
}
class XElem(tag: Int, l: XNode, r: XNode) extends XNode {
  def transform(out: Array[Int], pos: Int): Int = {
    var p = pos;
    if (p < out.length) { out[p] = 1000 + tag };
    p = l.transform(out, p + 1);
    p = r.transform(out, p);
    if (p < out.length) { out[p] = 2000 + tag };
    p + 1
  }
}
class XFilter(keepIfEven: Bool, child: XNode) extends XNode {
  def transform(out: Array[Int], pos: Int): Int = {
    /* filters drop their subtree based on position parity */
    val even = pos % 2 == 0;
    if (even == keepIfEven) { child.transform(out, pos) } else { pos }
  }
}

def buildDoc(depth: Int, g: Rng): XNode = {
  if (depth == 0) { new XText(g.below(1000)) }
  else {
    val k = g.below(5);
    if (k == 0) { new XFilter(g.below(2) == 0, buildDoc(depth - 1, g)) }
    else { new XElem(g.below(32), buildDoc(depth - 1, g), buildDoc(depth - 1, g)) }
  }
}

def bench(): Int = {
  val g = rng(90125);
  val doc = buildDoc(7, g);
  val out = new Array[Int](600);
  var check = 0;
  var pass = 0;
  while (pass < 8) {
    val len = min(doc.transform(out, 0), out.length);
    var i = 0;
    var h = 7;
    while (i < len) { h = (h * 31 + out[i]) % 1000000007; i = i + 1; }
    check = (check + h) % 1000000007;
    pass = pass + 1;
  }
  check
}

def main(): Unit = println(bench())
|};
  }
