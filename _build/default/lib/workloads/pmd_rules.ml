(* The pmd shape (DaCapo: a source-code rule checker): MANY small rule
   classes applied at every node of a tree — a callsite with more receiver
   types than the typeswitch budget (the paper caps speculation at 3
   targets), so the inliner must pick the hot few and eat a megamorphic
   fallback. pmd is the one benchmark where the paper's inliner loses to
   its greedy baseline, making this the designated hard case. *)

let workload : Defs.t =
  {
    name = "pmd-rules";
    description = "six-way megamorphic rule checking over an AST";
    flavor = Scala;
    iters = 50;
    expected = "820\n";
    source =
      Prelude.collections
      ^ {|
abstract class Rule {
  def check(kind: Int, depth: Int, size: Int): Int  /* violations found */
}
class DeepNesting() extends Rule {
  def check(kind: Int, depth: Int, size: Int): Int = if (depth > 5) { 1 } else { 0 }
}
class LongMethod() extends Rule {
  def check(kind: Int, depth: Int, size: Int): Int = if (size > 40) { 1 } else { 0 }
}
class EmptyBlock() extends Rule {
  def check(kind: Int, depth: Int, size: Int): Int =
    if (kind == 2 & size == 0) { 1 } else { 0 }
}
class MagicNumber() extends Rule {
  def check(kind: Int, depth: Int, size: Int): Int =
    if (kind == 3 & size % 7 == 0) { 1 } else { 0 }
}
class TooManyKids() extends Rule {
  def check(kind: Int, depth: Int, size: Int): Int = if (size > 60) { 1 } else { 0 }
}
class BadName() extends Rule {
  def check(kind: Int, depth: Int, size: Int): Int =
    if ((kind ^ size) % 11 == 0) { 1 } else { 0 }
}

class AstNode(kind: Int, size: Int, l: AstNode, r: AstNode) {
  def walk(rules: Array[Rule], depth: Int): Int = {
    var v = 0;
    var i = 0;
    while (i < rules.length) {
      v = v + rules[i].check(this.kind, depth, this.size);
      i = i + 1;
    }
    if (this.l != null) { v = v + this.l.walk(rules, depth + 1) };
    if (this.r != null) { v = v + this.r.walk(rules, depth + 1) };
    v
  }
}

def buildAst(depth: Int, g: Rng): AstNode = {
  if (depth == 0) { new AstNode(g.below(5), g.below(80), null, null) }
  else {
    new AstNode(g.below(5), g.below(80), buildAst(depth - 1, g), buildAst(depth - 1, g))
  }
}

def bench(): Int = {
  val g = rng(31415);
  val ast = buildAst(6, g);
  val rules = new Array[Rule](6);
  rules[0] = new DeepNesting();
  rules[1] = new LongMethod();
  rules[2] = new EmptyBlock();
  rules[3] = new MagicNumber();
  rules[4] = new TooManyKids();
  rules[5] = new BadName();
  var check = 0;
  var pass = 0;
  while (pass < 5) {
    check = (check + ast.walk(rules, 0)) % 1000000007;
    pass = pass + 1;
  }
  check
}

def main(): Unit = println(bench())
|};
  }
