(* The paper's Figure 1 shape: generic collection traversal where every hot
   operation ([length]/[get]/[apply]) is a polymorphic call. The payoff of
   cluster inlining is that [foreach] is only worth inlining together with
   its callees — exactly the motivating example of the paper. *)

let workload : Defs.t =
  {
    name = "foreach-poly";
    description = "polymorphic collection traversal with lambdas (paper Fig. 1 shape)";
    flavor = Scala;
    iters = 60;
    expected = "258067\n";
    source =
      Prelude.collections
      ^ {|
def sumWith(s: IntSeq, f: Int => Int): Int = {
  val acc = box(0);
  s.foreach((x: Int) => { acc.v = acc.v + f(x) });
  acc.v
}

def bench(): Int = {
  val xs = fillSeq(120, (i: Int) => i * 3);
  val ys = new RangeSeq(80);
  val zs = new StridedSeq(
    { val a = new Array[Int](120); var i = 0; while (i < 120) { a[i] = i + 1; i = i + 1; }; a },
    3);
  var check = 0;
  check = check + sumWith(xs, (x: Int) => x + 1);
  check = check + sumWith(ys, (x: Int) => x * x);
  check = check + sumWith(zs, (x: Int) => x * 2);
  check = check + xs.fold(0, (a: Int, b: Int) => a + b);
  check = check + ys.count((x: Int) => x % 3 == 0) ;
  val doubled = fillSeq(120, (i: Int) => 0);
  xs.mapInto(doubled, (x: Int) => x * 2);
  check = check + doubled.fold(0, (a: Int, b: Int) => a + b);
  check
}

def main(): Unit = println(bench())
|};
  }
