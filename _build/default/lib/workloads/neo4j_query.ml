(* The neo4j shape (graph queries): breadth-limited traversals over an
   adjacency structure with node-predicate closures; a mix of array
   processing and lambda dispatch (paper: ≈6.5% over C2). *)

let workload : Defs.t =
  {
    name = "neo4j-query";
    description = "graph-pattern counting with predicate closures";
    flavor = Scala;
    iters = 50;
    expected = "256\n";
    source =
      Prelude.collections
      ^ {|
class Graph(offsets: Array[Int], edges: Array[Int], labels: Array[Int]) {
  def nodeCount(): Int = offsets.length - 1
  def degree(v: Int): Int = offsets[v + 1] - offsets[v]
  def neighbor(v: Int, i: Int): Int = edges[offsets[v] + i]
  def label(v: Int): Int = labels[v]
  def countNeighbors(v: Int, p: Int => Bool): Int = {
    var n = 0;
    var i = 0;
    while (i < this.degree(v)) {
      if (p(this.neighbor(v, i))) { n = n + 1 };
      i = i + 1;
    }
    n
  }
}

def buildGraph(n: Int, degree: Int, g: Rng): Graph = {
  val offsets = new Array[Int](n + 1);
  val edges = new Array[Int](n * degree);
  val labels = new Array[Int](n);
  var v = 0;
  while (v < n) {
    offsets[v] = v * degree;
    labels[v] = g.below(4);
    var e = 0;
    while (e < degree) { edges[v * degree + e] = g.below(n); e = e + 1; }
    v = v + 1;
  }
  offsets[n] = n * degree;
  new Graph(offsets, edges, labels)
}

/* count paths v -> w -> u where label(w)=1 and label(u)=2 */
def twoHopCount(gr: Graph, v: Int): Int = {
  val acc = box(0);
  gr.countNeighbors(v, (w: Int) => {
    if (gr.label(w) == 1) {
      acc.v = acc.v + gr.countNeighbors(w, (u: Int) => gr.label(u) == 2);
    };
    true
  });
  acc.v
}

def bench(): Int = {
  val g = rng(40490);
  val gr = buildGraph(64, 6, g);
  var check = 0;
  var v = 0;
  while (v < gr.nodeCount()) {
    val here = v;
    check = check + twoHopCount(gr, here);
    check = check + gr.countNeighbors(here, (w: Int) => gr.label(w) == gr.label(here));
    v = v + 1;
  }
  check
}

def main(): Unit = println(bench())
|};
  }
