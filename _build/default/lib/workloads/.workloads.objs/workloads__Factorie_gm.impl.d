lib/workloads/factorie_gm.ml: Defs Prelude
