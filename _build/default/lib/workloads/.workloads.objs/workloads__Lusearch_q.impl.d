lib/workloads/lusearch_q.ml: Defs Prelude
