lib/workloads/scalac_visitor.ml: Defs Prelude
