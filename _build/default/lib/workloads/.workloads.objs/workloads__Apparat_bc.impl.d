lib/workloads/apparat_bc.ml: Defs Prelude
