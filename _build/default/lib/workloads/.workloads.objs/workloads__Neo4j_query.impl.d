lib/workloads/neo4j_query.ml: Defs Prelude
