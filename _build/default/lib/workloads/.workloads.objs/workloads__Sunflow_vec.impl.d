lib/workloads/sunflow_vec.ml: Defs Prelude
