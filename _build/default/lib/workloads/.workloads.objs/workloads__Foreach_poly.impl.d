lib/workloads/foreach_poly.ml: Defs Prelude
