lib/workloads/tmt_topic.ml: Defs Prelude
