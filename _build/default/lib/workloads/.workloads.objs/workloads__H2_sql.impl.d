lib/workloads/h2_sql.ml: Defs Prelude
