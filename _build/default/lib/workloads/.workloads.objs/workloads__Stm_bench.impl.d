lib/workloads/stm_bench.ml: Defs Prelude
