lib/workloads/prelude.ml:
