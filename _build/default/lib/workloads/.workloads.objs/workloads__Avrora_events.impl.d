lib/workloads/avrora_events.ml: Defs Prelude
