lib/workloads/xalan_xform.ml: Defs Prelude
