lib/workloads/synth.mli: Defs
