lib/workloads/prelude.mli:
