lib/workloads/scalariform_fmt.ml: Defs Prelude
