lib/workloads/dotty_subtype.ml: Defs Prelude
