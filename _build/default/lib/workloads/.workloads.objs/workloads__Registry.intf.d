lib/workloads/registry.mli: Defs Ir
