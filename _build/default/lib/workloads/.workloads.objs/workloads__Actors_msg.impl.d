lib/workloads/actors_msg.ml: Defs Prelude
