lib/workloads/jython_loop.ml: Defs Prelude
