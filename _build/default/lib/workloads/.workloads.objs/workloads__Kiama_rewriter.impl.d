lib/workloads/kiama_rewriter.ml: Defs Prelude
