lib/workloads/specs_test.ml: Defs Prelude
