lib/workloads/gauss_mix.ml: Defs Prelude
