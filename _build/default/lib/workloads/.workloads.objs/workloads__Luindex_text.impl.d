lib/workloads/luindex_text.ml: Defs Prelude
