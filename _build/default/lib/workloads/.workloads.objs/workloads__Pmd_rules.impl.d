lib/workloads/pmd_rules.ml: Defs Prelude
