lib/workloads/scalap_decode.ml: Defs Prelude
