lib/workloads/defs.ml:
