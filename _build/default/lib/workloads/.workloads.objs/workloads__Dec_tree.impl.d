lib/workloads/dec_tree.ml: Defs Prelude
