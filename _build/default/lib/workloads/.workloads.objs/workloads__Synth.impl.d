lib/workloads/synth.ml: Buffer Defs Frontend List Printf Runtime String Support
