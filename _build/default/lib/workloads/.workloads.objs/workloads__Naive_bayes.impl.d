lib/workloads/naive_bayes.ml: Defs Prelude
