lib/workloads/blas_modes.ml: Defs Prelude
