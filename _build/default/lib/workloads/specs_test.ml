(* The specs/scalatest shape (BDD test frameworks): matcher combinators —
   small predicate objects composed with and/or/not wrappers — applied to
   many values. Towers of tiny virtual calls; the paper reports ≈6% over
   C2 on scalatest and large wins over the greedy inliner on specs. *)

let workload : Defs.t =
  {
    name = "specs-test";
    description = "matcher-combinator evaluation over generated values";
    flavor = Scala;
    iters = 50;
    expected = "80\n";
    source =
      Prelude.collections
      ^ {|
abstract class Matcher {
  def matches(x: Int): Bool
}
class GreaterThan(k: Int) extends Matcher {
  def matches(x: Int): Bool = x > k
}
class Divides(d: Int) extends Matcher {
  def matches(x: Int): Bool = x % d == 0
}
class InRange(lo: Int, hi: Int) extends Matcher {
  def matches(x: Int): Bool = x >= lo & x < hi
}
class AndM(l: Matcher, r: Matcher) extends Matcher {
  def matches(x: Int): Bool = l.matches(x) && r.matches(x)
}
class OrM(l: Matcher, r: Matcher) extends Matcher {
  def matches(x: Int): Bool = l.matches(x) || r.matches(x)
}
class NotM(m: Matcher) extends Matcher {
  def matches(x: Int): Bool = !m.matches(x)
}

/* a "spec" is a matcher plus the count it expects over the sample */
class Spec(m: Matcher, expectLo: Int, expectHi: Int) {
  def check(sample: Array[Int]): Int = {
    var i = 0;
    var hits = 0;
    while (i < sample.length) {
      if (m.matches(sample[i])) { hits = hits + 1 };
      i = i + 1;
    }
    if (hits >= expectLo & hits <= expectHi) { 1 } else { 0 }
  }
}

def bench(): Int = {
  val g = rng(5555);
  val sample = new Array[Int](64);
  var i = 0;
  while (i < sample.length) { sample[i] = g.below(1000); i = i + 1; }
  val specs = new Array[Spec](8);
  specs[0] = new Spec(new GreaterThan(500), 0, 64);
  specs[1] = new Spec(new AndM(new GreaterThan(100), new Divides(2)), 0, 64);
  specs[2] = new Spec(new OrM(new Divides(3), new Divides(5)), 0, 64);
  specs[3] = new Spec(new NotM(new InRange(200, 800)), 0, 64);
  specs[4] = new Spec(new AndM(new InRange(0, 1000), new NotM(new Divides(7))), 0, 64);
  specs[5] = new Spec(new OrM(new AndM(new GreaterThan(900), new Divides(2)),
                              new InRange(10, 20)), 0, 64);
  specs[6] = new Spec(new NotM(new NotM(new GreaterThan(0))), 64, 64);
  specs[7] = new Spec(new AndM(new Divides(4), new AndM(new Divides(3), new Divides(2))), 0, 64);
  var check = 0;
  var round = 0;
  while (round < 10) {
    var s = 0;
    while (s < specs.length) {
      check = check + specs[s].check(sample);
      s = s + 1;
    }
    /* mutate the sample between rounds so results vary */
    sample[round % sample.length] = g.below(1000);
    round = round + 1;
  }
  check
}

def main(): Unit = println(bench())
|};
  }
