(* The dec-tree shape (Spark MLlib decision tree): recursive descent over a
   binary tree of Split/Leaf nodes for many rows. The hot path is a short
   virtual-call chain per level — profitable to inline a couple of levels
   deep, and a case where the paper's fixed thresholds do reasonably well
   (dec-tree was one of the few fixed-beats-adaptive benchmarks). *)

let workload : Defs.t =
  {
    name = "dec-tree";
    description = "decision-tree evaluation over generated feature rows";
    flavor = Numeric;
    iters = 60;
    expected = "1261\n";
    source =
      Prelude.collections
      ^ {|
abstract class Node {
  def classify(row: Array[Int]): Int
  def depth(): Int
}
class Leaf(label: Int) extends Node {
  def classify(row: Array[Int]): Int = label
  def depth(): Int = 1
}
class Split(feature: Int, threshold: Int, lo: Node, hi: Node) extends Node {
  def classify(row: Array[Int]): Int = {
    if (row[feature] < threshold) { lo.classify(row) } else { hi.classify(row) }
  }
  def depth(): Int = 1 + max(lo.depth(), hi.depth())
}

def buildTree(levels: Int, g: Rng): Node = {
  if (levels == 0) { new Leaf(g.below(16)) }
  else {
    new Split(g.below(8), g.below(1024), buildTree(levels - 1, g), buildTree(levels - 1, g))
  }
}

def bench(): Int = {
  val g = rng(1234);
  val tree = buildTree(6, g);
  val row = new Array[Int](8);
  var check = tree.depth();
  var r = 0;
  while (r < 150) {
    var f = 0;
    while (f < 8) { row[f] = g.below(1024); f = f + 1; }
    check = check + tree.classify(row);
    r = r + 1;
  }
  check
}

def main(): Unit = println(bench())
|};
  }
