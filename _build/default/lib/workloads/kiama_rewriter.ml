(* The kiama shape (strategy-based term rewriting in Scala): rewrite rules
   are closures combined by strategy combinators; applying a strategy walks
   a term tree calling rule lambdas at every node. Lambda-dense Scala code
   where the paper reports ≈1.45x over C2. *)

let workload : Defs.t =
  {
    name = "kiama-rewriter";
    description = "strategy-combinator term rewriting with rule lambdas";
    flavor = Scala;
    iters = 50;
    expected = "17060\n";
    source =
      Prelude.collections
      ^ {|
/* terms: Op(code, l, r) | Atom(v). encoded with a class hierarchy */
abstract class Term {
  def isAtom(): Bool
  def value(): Int
  def left(): Term
  def right(): Term
  def code(): Int
}
class Atom(v: Int) extends Term {
  def isAtom(): Bool = true
  def value(): Int = v
  def left(): Term = this
  def right(): Term = this
  def code(): Int = 0 - 1
}
class Op(c: Int, l: Term, r: Term) extends Term {
  def isAtom(): Bool = false
  def value(): Int = 0
  def left(): Term = l
  def right(): Term = r
  def code(): Int = c
}

/* a rule maps a term to a replacement, or returns the same term */
def applyRule(rule: Term => Term, t: Term): Term = rule(t)

/* bottom-up application of a rule over the whole term */
def everywhere(rule: Term => Term, t: Term): Term = {
  if (t.isAtom()) { applyRule(rule, t) }
  else {
    applyRule(rule, new Op(t.code(), everywhere(rule, t.left()), everywhere(rule, t.right())))
  }
}

def termSum(t: Term): Int = {
  if (t.isAtom()) { t.value() }
  else { t.code() + termSum(t.left()) + termSum(t.right()) }
}

def buildTerm(depth: Int, g: Rng): Term = {
  if (depth == 0) { new Atom(g.below(64)) }
  else { new Op(g.below(3), buildTerm(depth - 1, g), buildTerm(depth - 1, g)) }
}

def bench(): Int = {
  val g = rng(8086);
  var t = buildTerm(7, g);
  /* constant folding rule: Op(0, Atom a, Atom b) -> Atom(a+b) */
  val fold = (x: Term) => {
    if (!x.isAtom() & x.code() == 0 & x.left().isAtom() & x.right().isAtom()) {
      new Atom(x.left().value() + x.right().value())
    } else { x }
  };
  /* strength rule: Op(2, a, Atom 1) -> a */
  val strength = (x: Term) => {
    if (!x.isAtom() & x.code() == 2 & x.right().isAtom()) {
      if (x.right().value() == 1) { x.left() } else { x }
    } else { x }
  };
  var check = 0;
  var pass = 0;
  while (pass < 4) {
    t = everywhere(fold, t);
    t = everywhere(strength, t);
    check = (check + termSum(t)) % 1000000007;
    pass = pass + 1;
  }
  check
}

def main(): Unit = println(bench())
|};
  }
