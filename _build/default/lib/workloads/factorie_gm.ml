(* The factorie shape (probabilistic graphical models in Scala): scoring a
   configuration sums over heterogeneous factor objects — a megamorphic
   [score] callsite with more receiver types than the typeswitch budget
   (paper: 3 targets max), so the inliner must pick the hot targets and
   leave a virtual fallback. The paper reports its largest speedups on
   factorie (≈2.9x over C2). *)

let workload : Defs.t =
  {
    name = "factorie-gm";
    description = "factor-graph scoring with megamorphic factor dispatch";
    flavor = Scala;
    iters = 60;
    expected = "6704\n";
    source =
      Prelude.collections
      ^ {|
abstract class Factor {
  def score(assign: Array[Int]): Int
}
class UnaryFactor(v: Int, weight: Int) extends Factor {
  def score(assign: Array[Int]): Int = weight * assign[v]
}
class PairFactor(a: Int, b: Int, weight: Int) extends Factor {
  def score(assign: Array[Int]): Int = {
    if (assign[a] == assign[b]) { weight } else { 0 - weight }
  }
}
class BiasFactor(weight: Int) extends Factor {
  def score(assign: Array[Int]): Int = weight
}
class TripleFactor(a: Int, b: Int, c: Int, weight: Int) extends Factor {
  def score(assign: Array[Int]): Int = weight * (assign[a] + assign[b] + assign[c]) / 3
}

def totalScore(factors: Array[Factor], assign: Array[Int]): Int = {
  var acc = 0;
  var i = 0;
  while (i < factors.length) { acc = acc + factors[i].score(assign); i = i + 1; }
  acc
}

def bench(): Int = {
  val g = rng(2718);
  val vars = 16;
  val assign = new Array[Int](vars);
  val factors = new Array[Factor](40);
  var i = 0;
  while (i < factors.length) {
    val k = i % 10;
    /* skew: unary and pair factors dominate, triples and bias are rare */
    if (k < 5) { factors[i] = new UnaryFactor(g.below(vars), g.below(64)) }
    else { if (k < 8) { factors[i] = new PairFactor(g.below(vars), g.below(vars), g.below(64)) }
    else { if (k < 9) { factors[i] = new TripleFactor(g.below(vars), g.below(vars), g.below(vars), g.below(64)) }
    else { factors[i] = new BiasFactor(g.below(16)) } } };
    i = i + 1;
  }
  var check = 0;
  var sweepIdx = 0;
  while (sweepIdx < 8) {
    /* Gibbs-flavored sweep: flip each variable if it improves the score */
    var v = 0;
    while (v < vars) {
      val before = totalScore(factors, assign);
      assign[v] = 1 - assign[v];
      val after = totalScore(factors, assign);
      if (after < before) { assign[v] = 1 - assign[v] };
      v = v + 1;
    }
    check = (check + totalScore(factors, assign)) % 1000000007;
    sweepIdx = sweepIdx + 1;
  }
  check
}

def main(): Unit = println(bench())
|};
  }
