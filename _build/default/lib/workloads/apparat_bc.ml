(* The apparat shape (Scala DaCapo: an ActionScript bytecode optimization
   framework): passes over int-coded instruction arrays, each pass an
   object with a rewrite method, chained through an abstract Pass type.
   The paper reports ≈1.7x over C2 on apparat. *)

let workload : Defs.t =
  {
    name = "apparat-bc";
    description = "peephole passes over int-coded bytecode arrays";
    flavor = Scala;
    iters = 50;
    expected = "507857788\n";
    source =
      Prelude.collections
      ^ {|
/* opcode encoding: op*256 + operand */
abstract class Pass {
  def rewrite(code: Array[Int], n: Int): Int   /* returns new length */
}

/* push k; push 0; add  ->  push k */
class FoldAddZero() extends Pass {
  def rewrite(code: Array[Int], n: Int): Int = {
    var r = 0;
    var w = 0;
    while (r < n) {
      val fits = r + 2 < n;
      val isPattern =
        if (fits) { code[r] / 256 == 1 & code[r + 1] == 256 & code[r + 2] == 512 }
        else { false };
      if (isPattern) { code[w] = code[r]; w = w + 1; r = r + 3 }
      else { code[w] = code[r]; w = w + 1; r = r + 1 };
    }
    w
  }
}
/* mul by power-of-two constant -> shift */
class StrengthPass() extends Pass {
  def rewrite(code: Array[Int], n: Int): Int = {
    var i = 0;
    while (i + 1 < n) {
      val isMul = code[i + 1] == 768;  /* mul */
      val k = code[i] % 256;
      if (isMul & code[i] / 256 == 1 & (k == 2 | k == 4 | k == 8)) {
        val sh = if (k == 2) { 1 } else { if (k == 4) { 2 } else { 3 } };
        code[i] = 256 + sh;
        code[i + 1] = 1024;            /* shl */
      };
      i = i + 1;
    }
    n
  }
}
/* dead store elimination: store x; store x -> store x */
class DeadStorePass() extends Pass {
  def rewrite(code: Array[Int], n: Int): Int = {
    var r = 0;
    var w = 0;
    while (r < n) {
      val dead =
        if (r + 1 < n) { code[r] / 256 == 5 & code[r + 1] == code[r] }
        else { false };
      if (!dead) { code[w] = code[r]; w = w + 1 };
      r = r + 1;
    }
    w
  }
}

def runPipeline(passes: Array[Pass], code: Array[Int], n0: Int): Int = {
  var n = n0;
  var p = 0;
  while (p < passes.length) { n = passes[p].rewrite(code, n); p = p + 1; }
  n
}

def checksum(code: Array[Int], n: Int): Int = {
  var i = 0;
  var h = 7;
  while (i < n) { h = (h * 31 + code[i]) % 1000000007; i = i + 1; }
  h
}

def bench(): Int = {
  val g = rng(7777);
  val passes = new Array[Pass](3);
  passes[0] = new FoldAddZero();
  passes[1] = new StrengthPass();
  passes[2] = new DeadStorePass();
  var check = 0;
  var meth = 0;
  while (meth < 6) {
    val code = new Array[Int](80);
    var i = 0;
    while (i < code.length) {
      val op = g.below(6);
      code[i] = op * 256 + g.below(16);
      i = i + 1;
    }
    val n = runPipeline(passes, code, code.length);
    check = (check + checksum(code, n)) % 1000000007;
    meth = meth + 1;
  }
  check
}

def main(): Unit = println(bench())
|};
  }
