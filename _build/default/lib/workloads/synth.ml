(* Synthetic call-graph generator: parameterized Sel programs for
   controlled inliner studies beyond the fixed suite — call-chain depth,
   fanout, polymorphism degree and hotness skew are all tunable, and
   generation is deterministic in the seed.

   Shape: a polymorphic Op hierarchy at the bottom (the dispatch problem),
   a tower of layer functions above it (the budget problem: each layer
   calls [fanout] functions of the next layer, some from inside loops),
   and a [bench] driving the top layer over an Op array. *)

type config = {
  seed : int;
  depth : int;          (* layers of functions above the Op dispatch *)
  fanout : int;         (* callees per layer function *)
  poly_degree : int;    (* concrete Op implementations *)
  leaf_work : int;      (* loop trips inside each Op implementation *)
  hot_fraction : float; (* fraction of layer callsites inside a loop *)
}

let default =
  { seed = 1; depth = 3; fanout = 2; poly_degree = 3; leaf_work = 8; hot_fraction = 0.5 }

let op_body (rng : Support.Rng.t) ~leaf_work ~index : string =
  let variants =
    [
      Printf.sprintf
        "var i = 0; var s = x; while (i < %d) { s = s + (s >> 3) + %d; i = i + 1; }; s"
        leaf_work (index + 1);
      Printf.sprintf
        "var i = 0; var s = x + %d; while (i < %d) { s = s * 3 %% 65521; i = i + 1; }; s"
        (index * 7) leaf_work;
      Printf.sprintf
        "var i = 0; var s = 0; while (i < %d) { s = s + abs(x - i * %d); i = i + 1; }; s"
        leaf_work (index + 2);
      Printf.sprintf
        "var i = 0; var s = x; while (i < %d) { s = (s ^ (s << 2)) & 1048575; i = i + 1; }; s + %d"
        leaf_work index;
    ]
  in
  List.nth variants (Support.Rng.int rng (List.length variants))

(* The layer functions: layer d function j calls [fanout] functions of
   layer d+1 (or dispatches through the Op array at the last layer). *)
let layer_fun (rng : Support.Rng.t) (cfg : config) ~d ~j : string =
  let callee k =
    if d + 1 < cfg.depth then
      Printf.sprintf "l%d_%d(ops, x + %d)" (d + 1)
        (Support.Rng.int rng (max 1 cfg.fanout))
        k
    else
      Printf.sprintf "ops[%d %% ops.length].eval(x + %d)" (Support.Rng.int rng 97) k
  in
  let calls =
    List.init cfg.fanout (fun k ->
        if Support.Rng.float rng < cfg.hot_fraction then
          Printf.sprintf
            "var i%d = 0; while (i%d < 4) { acc = acc + %s; i%d = i%d + 1; };" k k
            (callee k) k k
        else Printf.sprintf "acc = acc + %s;" (callee k))
  in
  Printf.sprintf "def l%d_%d(ops: Array[Op], x: Int): Int = {\n  var acc = 0;\n  %s\n  acc %% 1000000007\n}"
    d j
    (String.concat "\n  " calls)

let source_of (cfg : config) : string =
  let rng = Support.Rng.create cfg.seed in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "abstract class Op {\n  def eval(x: Int): Int\n}\n";
  for i = 0 to cfg.poly_degree - 1 do
    Buffer.add_string buf
      (Printf.sprintf "class Op%d() extends Op {\n  def eval(x: Int): Int = { %s }\n}\n" i
         (op_body rng ~leaf_work:cfg.leaf_work ~index:i))
  done;
  (* layers from the bottom up so calls are to already-declared functions
     (declaration order does not matter in Sel, but it reads better) *)
  for d = cfg.depth - 1 downto 0 do
    let n_funs = if d = 0 then 1 else cfg.fanout in
    for j = 0 to n_funs - 1 do
      Buffer.add_string buf (layer_fun rng cfg ~d ~j);
      Buffer.add_char buf '\n'
    done
  done;
  Buffer.add_string buf
    (Printf.sprintf
       {|def bench(): Int = {
  val ops = new Array[Op](%d);
  var i = 0;
  while (i < ops.length) {
    %s;
    i = i + 1;
  }
  var check = 0;
  var r = 0;
  while (r < 3) { check = (check + l0_0(ops, r * 31)) %% 1000000007; r = r + 1; }
  check
}
def main(): Unit = println(bench())
|}
       (cfg.poly_degree * 2)
       (String.concat "\n    else "
          (List.init cfg.poly_degree (fun i ->
               if i = cfg.poly_degree - 1 then
                 Printf.sprintf "{ ops[i] = new Op%d() }" i
               else Printf.sprintf "if (i %% %d == %d) { ops[i] = new Op%d() }" cfg.poly_degree i i))));
  Buffer.contents buf

(* Generates a full workload descriptor; the expected output is computed
   by interpreting the generated program once. *)
let generate (cfg : config) : Defs.t =
  let source = source_of cfg in
  let name =
    Printf.sprintf "synth-d%d-f%d-p%d-s%d" cfg.depth cfg.fanout cfg.poly_degree cfg.seed
  in
  let expected =
    match Frontend.Pipeline.compile source with
    | Ok prog ->
        let vm = Runtime.Interp.create prog in
        ignore (Runtime.Interp.run_main vm);
        Runtime.Interp.output vm
    | Error e ->
        invalid_arg
          (Printf.sprintf "Synth.generate: %s does not compile: %s\n%s" name
             (Frontend.Pipeline.error_to_string e)
             source)
  in
  {
    Defs.name;
    description =
      Printf.sprintf
        "synthetic call graph: depth %d, fanout %d, %d Op implementations, seed %d"
        cfg.depth cfg.fanout cfg.poly_degree cfg.seed;
    flavor = Defs.Scala;
    source;
    iters = 30;
    expected;
  }
