(** The workload registry: every benchmark program the harness and the
    test suite iterate over (DESIGN.md maps each to the paper benchmark
    whose shape it reproduces). *)

val all : Defs.t list
val find : string -> Defs.t option
val names : unit -> string list

val compile : Defs.t -> Ir.Types.program
(** A fresh program per call — engines own their profiles and code caches
    but share prepared bodies within one program value.
    @raise Invalid_argument if the workload source does not compile (a
    bug; the test suite compiles all of them). *)
