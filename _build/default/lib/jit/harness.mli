(** The paper's benchmarking methodology (Section V): repeat an entry
    method, record per-iteration simulated cycles, report peak performance
    as the mean of the last 40% (at most 20) iterations plus installed
    code size. *)

type iteration = {
  index : int;
  cycles : int;
  compiled_methods : int;  (** code-cache population after the iteration *)
}

type run = {
  name : string;
  iterations : iteration list;
  peak_cycles : float;
  peak_stddev : float;
  code_size : int;
  compile_cycles : int;
  output : string;
}

val run_benchmark :
  ?setup:string -> iters:int -> Engine.t -> entry:string -> label:string -> run
(** Runs [entry] (a 0-argument function) [iters] times; [setup] runs once
    beforehand when given. *)
