(* Benchmark methodology from the paper's evaluation (Section V):
   repeat a benchmark's entry method, record per-iteration simulated
   cycles, and report peak performance as the mean of the last 40% (at
   most 20) iterations, plus the installed code size. *)

type iteration = {
  index : int;
  cycles : int;             (* simulated execution cycles of this iteration *)
  compiled_methods : int;   (* code-cache size after the iteration *)
}

type run = {
  name : string;            (* benchmark + configuration label *)
  iterations : iteration list;
  peak_cycles : float;      (* steady-state mean *)
  peak_stddev : float;
  code_size : int;          (* installed code size at the end *)
  compile_cycles : int;
  output : string;          (* program output, for differential checking *)
}

(* Runs [entry] (a 0-argument Sel function returning Int or Unit) [iters]
   times on a fresh engine. A [setup] entry, when present, runs once
   beforehand (workload initialization). *)
let run_benchmark ?(setup : string option) ~(iters : int) (engine : Engine.t)
    ~(entry : string) ~(label : string) : run =
  (match setup with
  | Some s -> ignore (Engine.run_meth engine s [ Runtime.Values.Vunit ])
  | None -> ());
  let iterations = ref [] in
  for index = 1 to iters do
    let c0 = engine.vm.cycles in
    ignore (Engine.run_meth engine entry [ Runtime.Values.Vunit ]);
    iterations :=
      {
        index;
        cycles = engine.vm.cycles - c0;
        compiled_methods = Engine.installed_methods engine;
      }
      :: !iterations
  done;
  let iterations = List.rev !iterations in
  let series = List.map (fun i -> float_of_int i.cycles) iterations in
  let window = Support.Stats.steady_state_window series in
  {
    name = label;
    iterations;
    peak_cycles = Support.Stats.mean window;
    peak_stddev = Support.Stats.stddev window;
    code_size = Engine.installed_code_size engine;
    compile_cycles = engine.compile_cycles;
    output = Engine.output engine;
  }
