lib/jit/harness.ml: Engine List Runtime Support
