lib/jit/engine.mli: Hashtbl Ir Runtime
