lib/jit/engine.ml: Fun Hashtbl Ir Opt Runtime
