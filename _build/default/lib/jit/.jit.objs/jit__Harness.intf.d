lib/jit/harness.mli: Engine
