(** Block-local read/write elimination for object fields: store-to-load
    forwarding, redundant-load elimination, dead-store removal, and
    default-value folding for fresh unescaped allocations. Conservative
    aliasing: same slot through different bases may alias unless one base
    is a fresh allocation that has not escaped; calls kill everything.

    The paper applies this to the root between inlining rounds because it
    restores receiver type information lost through memory (e.g. a lambda
    stored into a field by an inlined constructor and loaded back). *)

val run : Ir.Types.program -> Ir.Types.fn -> int
(** Returns the number of loads/stores eliminated or folded. *)
