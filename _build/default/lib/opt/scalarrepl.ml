(* Scalar replacement of non-escaping allocations (escape analysis lite).

   The paper's algorithm lives in Graal Enterprise Edition, where partial
   escape analysis runs after inlining and is a large part of why inlining
   clusters pays: once `foreach` and the lambda's `apply` are inlined
   together, the lambda object no longer escapes and its allocation and
   field traffic dissolve into SSA values. This pass reproduces the
   non-partial core of that effect:

   - an allocation escapes if its value is used anywhere except as the
     *receiver* of GetField/SetField: call arguments, stored values,
     array elements, phi inputs, comparisons, returns, type tests,
     terminators;
   - a non-escaping allocation has no aliases, so its field cells behave
     like mutable locals: we rerun SSA construction over them (the New
     defines every field to its type's default, SetField defines,
     GetField uses) and delete the allocation and all its field traffic.

   Runs between inlining rounds (Driver.round_root_opts), by which time
   the constructor call — which would otherwise count as an escape — has
   been inlined into the caller. *)

open Ir.Types

let default_const (t : ty) : const =
  match t with
  | Tint -> Cint 0
  | Tbool -> Cbool false
  | Tstring -> Cstring ""
  | Tunit -> Cunit
  | Tarray _ | Tobj _ -> Cnull

(* Does [obj] escape? Any use outside GetField/SetField receiver position. *)
let escapes (fn : fn) (obj : vid) : bool =
  let escaped = ref false in
  Ir.Fn.iter_instrs
    (fun i ->
      if i.id <> obj then
        match i.kind with
        | GetField { obj = o; _ } when o = obj -> ()
        | SetField { obj = o; value; _ } when o = obj ->
            if value = obj then escaped := true
        | k -> if List.mem obj (Ir.Instr.operands k) then escaped := true)
    fn;
  Ir.Fn.iter_blocks
    (fun blk ->
      match blk.term with
      | If { cond; _ } when cond = obj -> escaped := true
      | Return v when v = obj -> escaped := true
      | _ -> ())
    fn;
  !escaped

(* Per-slot value resolution across blocks: Braun-style on-demand phi
   placement over a complete CFG. [exit_val] is pre-populated by the local
   scan for every block that defines a slot; [entry_val] memoizes (and
   breaks cycles through placed-then-filled phis). *)
type state = {
  fn : fn;
  preds : (bid, bid list) Hashtbl.t;
  entry_val : (int * bid, vid) Hashtbl.t;
  exit_val : (int * bid, vid) Hashtbl.t;
  slot_ty : int -> ty;
}

let rec entry_value (st : state) (slot : int) (b : bid) : vid =
  match Hashtbl.find_opt st.entry_val (slot, b) with
  | Some v -> v
  | None -> (
      match (try Hashtbl.find st.preds b with Not_found -> []) with
      | [] ->
          (* a path that does not pass the New: SSA dominance guarantees no
             real load observes this value, but a phi on a sibling path may
             demand an input — any well-typed constant will do *)
          let c = Ir.Fn.prepend st.fn b (Const (default_const (st.slot_ty slot))) in
          Hashtbl.replace st.entry_val (slot, b) c;
          c
      | [ p ] ->
          let v = exit_value st slot p in
          Hashtbl.replace st.entry_val (slot, b) v;
          v
      | ps ->
          (* place the phi before recursing so loops terminate *)
          let phi = Ir.Fn.prepend st.fn b (Phi { ty = st.slot_ty slot; inputs = [] }) in
          Hashtbl.replace st.entry_val (slot, b) phi;
          let inputs = List.map (fun p -> (p, exit_value st slot p)) ps in
          (match Ir.Fn.kind st.fn phi with
          | Phi pr -> pr.inputs <- inputs
          | _ -> assert false);
          let ops =
            List.map snd inputs |> List.filter (fun v -> v <> phi) |> List.sort_uniq compare
          in
          (match ops with
          | [ only ] ->
              (* trivial phi: redirect the tables and drop it *)
              Ir.Fn.replace_uses st.fn ~old_v:phi ~new_v:only;
              let redirect tbl =
                Hashtbl.iter
                  (fun key v -> if v = phi then Hashtbl.replace tbl key only)
                  (Hashtbl.copy tbl)
              in
              redirect st.entry_val;
              redirect st.exit_val;
              Ir.Fn.delete_instr st.fn phi;
              only
          | _ -> phi))

and exit_value (st : state) (slot : int) (b : bid) : vid =
  match Hashtbl.find_opt st.exit_val (slot, b) with
  | Some v -> v
  | None -> entry_value st slot b

(* Scalar-replaces one non-escaping allocation. *)
let replace_one (prog : program) (fn : fn) (obj : instr) : unit =
  let cls = match obj.kind with New c -> c | _ -> assert false in
  let layout = (Ir.Program.cls prog cls).layout in
  let st =
    {
      fn;
      preds = Ir.Fn.preds fn;
      entry_val = Hashtbl.create 16;
      exit_val = Hashtbl.create 16;
      slot_ty = (fun slot -> snd layout.(slot));
    }
  in
  (* the New defines every slot to its default; materialize the constants
     once, right before the allocation, so they dominate every use *)
  let defaults =
    Array.map
      (fun (_, ty) -> Ir.Fn.insert_before fn ~before:obj.id (Const (default_const ty)))
      layout
  in
  (* local scan: record each block's slot exits, resolve in-block loads *)
  let loads = ref [] in
  let deletions : vid list ref = ref [] in
  Ir.Fn.iter_blocks
    (fun blk ->
      let current : (int, vid) Hashtbl.t = Hashtbl.create 4 in
      List.iter
        (fun v ->
          match Ir.Fn.kind fn v with
          | New _ when v = obj.id ->
              Array.iteri (fun slot c -> Hashtbl.replace current slot c) defaults;
              deletions := v :: !deletions
          | SetField { obj = o; slot; value; _ } when o = obj.id ->
              Hashtbl.replace current slot value;
              deletions := v :: !deletions
          | GetField { obj = o; slot; _ } when o = obj.id ->
              (match Hashtbl.find_opt current slot with
              | Some value -> loads := (v, `Value value) :: !loads
              | None -> loads := (v, `Entry (slot, blk.b_id)) :: !loads)
          | _ -> ())
        blk.instrs;
      Hashtbl.iter (fun slot v -> Hashtbl.replace st.exit_val (slot, blk.b_id) v) current)
    fn;
  (* resolve cross-block loads only after all exits are recorded *)
  List.iter
    (fun (load, source) ->
      let replacement =
        match source with
        | `Value v -> v
        | `Entry (slot, b) -> entry_value st slot b
      in
      Ir.Fn.replace_uses fn ~old_v:load ~new_v:replacement;
      Ir.Fn.delete_instr fn load)
    (List.rev !loads);
  List.iter (fun v -> Ir.Fn.delete_instr fn v) !deletions

(* Replaces every non-escaping allocation; returns how many. *)
let run (prog : program) (fn : fn) : int =
  let candidates = ref [] in
  Ir.Fn.iter_instrs
    (fun i -> match i.kind with New _ -> candidates := i :: !candidates | _ -> ())
    fn;
  let replaced = ref 0 in
  List.iter
    (fun (i : instr) ->
      if Ir.Fn.instr_live fn i.id && not (escapes fn i.id) then begin
        replace_one prog fn i;
        incr replaced
      end)
    !candidates;
  if !replaced > 0 then ignore (Simplify.cleanup fn);
  !replaced
