(* Loop-invariant code motion.

   Hoists pure computations whose operands are defined outside a natural
   loop (or are themselves invariant) into a preheader block, so hot loop
   bodies — the place the inliner deliberately grows — shrink back. The
   flagship case in this substrate is the `i < arr.length` bound of every
   collection loop: array lengths are immutable, so the ArrayLen hoists.

   Safety:
   - only pure, non-phi instructions move; loads/stores/calls never do;
   - ArrayLen additionally requires its array operand to be invariant
     (lengths are immutable, and a dead hoisted length of a null array
     only removes a trap, consistent with DCE's treatment of dead loads);
   - trapping arithmetic (Div/Rem) and trapping intrinsics (Istr_get) are
     excluded: hoisting would execute them on iterations (or zero
     iterations) that never reached them;
   - a fresh preheader is created per processed loop: entry edges are
     redirected to it, and header phis over multiple entry predecessors
     are split into a preheader phi plus a two-source header phi. *)

open Ir.Types

let hoistable (k : instr_kind) : bool =
  match k with
  | Binop ((Div | Rem), _, _) -> false
  | Unop _ | Binop _ | Const _ | TypeTest _ -> true
  | ArrayLen _ -> true
  | Intrinsic ((Istr_len | Istr_eq | Iabs | Imin | Imax), _) -> true
  | _ -> false

(* Creates a preheader for [l]: a new block between the entry predecessors
   and the header. Returns its id, or None when the header has no entry
   predecessors (unreachable loop). *)
let make_preheader (fn : fn) (l : Ir.Loops.loop) : bid option =
  let preds = Ir.Fn.preds fn in
  let header_preds = try Hashtbl.find preds l.header with Not_found -> [] in
  let entry_preds = List.filter (fun p -> not (Hashtbl.mem l.body p)) header_preds in
  match entry_preds with
  | [] -> None
  | _ ->
      let ph = Ir.Fn.add_block fn in
      Ir.Fn.set_term fn ph (Goto l.header);
      (* redirect entry edges *)
      List.iter
        (fun p ->
          let blk = Ir.Fn.block fn p in
          let redirect b = if b = l.header then ph else b in
          blk.term <-
            (match blk.term with
            | Goto t -> Goto (redirect t)
            | If ({ tb; fb; _ } as r) -> If { r with tb = redirect tb; fb = redirect fb }
            | t -> t))
        entry_preds;
      (* split header phis: entry inputs merge in the preheader *)
      List.iter
        (fun v ->
          match Ir.Fn.kind fn v with
          | Phi p -> (
              let entry_inputs, latch_inputs =
                List.partition (fun (pb, _) -> List.mem pb entry_preds) p.inputs
              in
              match entry_inputs with
              | [] -> ()
              | [ (_, only) ] -> p.inputs <- (ph, only) :: latch_inputs
              | _ ->
                  let ty =
                    match Ir.Fn.kind fn v with
                    | Phi { ty; _ } -> ty
                    | _ -> assert false
                  in
                  let merged = Ir.Fn.prepend fn ph (Phi { ty; inputs = entry_inputs }) in
                  p.inputs <- (ph, merged) :: latch_inputs)
          | _ -> ())
        (Ir.Fn.block fn l.header).instrs;
      Some ph

(* Hoists invariant instructions of one loop; returns how many moved. *)
let hoist_loop (fn : fn) (l : Ir.Loops.loop) : int =
  (* defined-in-loop set *)
  let in_loop_def : (vid, unit) Hashtbl.t = Hashtbl.create 32 in
  Hashtbl.iter
    (fun b () ->
      List.iter (fun v -> Hashtbl.replace in_loop_def v ()) (Ir.Fn.block fn b).instrs)
    l.body;
  (* fixpoint: invariant = hoistable and all operands defined outside or
     invariant *)
  let invariant : (vid, unit) Hashtbl.t = Hashtbl.create 8 in
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun b () ->
        List.iter
          (fun v ->
            if not (Hashtbl.mem invariant v) then
              let k = Ir.Fn.kind fn v in
              if
                hoistable k
                && List.for_all
                     (fun o -> (not (Hashtbl.mem in_loop_def o)) || Hashtbl.mem invariant o)
                     (Ir.Instr.operands k)
              then begin
                Hashtbl.replace invariant v ();
                changed := true
              end)
          (Ir.Fn.block fn b).instrs)
      l.body
  done;
  if Hashtbl.length invariant = 0 then 0
  else
    match make_preheader fn l with
    | None -> 0
    | Some ph ->
        (* move in an order where operands precede users: repeatedly take
           instructions whose invariant operands have already moved *)
        let moved : (vid, unit) Hashtbl.t = Hashtbl.create 8 in
        let ph_blk = Ir.Fn.block fn ph in
        let progress = ref true in
        while !progress do
          progress := false;
          Hashtbl.iter
            (fun b () ->
              let blk = Ir.Fn.block fn b in
              List.iter
                (fun v ->
                  if Hashtbl.mem invariant v && not (Hashtbl.mem moved v) then
                    let k = Ir.Fn.kind fn v in
                    if
                      List.for_all
                        (fun o -> (not (Hashtbl.mem invariant o)) || Hashtbl.mem moved o)
                        (Ir.Instr.operands k)
                    then begin
                      blk.instrs <- List.filter (fun x -> x <> v) blk.instrs;
                      ph_blk.instrs <- ph_blk.instrs @ [ v ];
                      Hashtbl.replace moved v ();
                      progress := true
                    end)
                blk.instrs)
            l.body
        done;
        Hashtbl.length moved

let run (fn : fn) : int =
  (* loop set is recomputed per hoisted loop: preheaders change the CFG *)
  let total = ref 0 in
  let continue_ = ref true in
  let processed : (bid, unit) Hashtbl.t = Hashtbl.create 8 in
  while !continue_ do
    let loops = (Ir.Loops.compute fn).loops in
    match
      List.find_opt (fun (l : Ir.Loops.loop) -> not (Hashtbl.mem processed l.header)) loops
    with
    | None -> continue_ := false
    | Some l ->
        Hashtbl.replace processed l.header ();
        total := !total + hoist_loop fn l
  done;
  !total
