(** Canonicalization: the "simple optimizations" counted by deep inlining
    trials — constant folding, algebraic simplification, strength
    reduction, branch pruning, type-check folding and type-driven
    devirtualization. Rewrites in place; [stats] counts applied rewrites
    per category (the inliner's N_s input). *)

open Ir.Types

type stats = {
  mutable const_folds : int;
  mutable algebraic : int;
  mutable strength : int;
  mutable branch_prunes : int;
  mutable devirts : int;
  mutable typetest_folds : int;
}

val empty_stats : unit -> stats
val total : stats -> int
val add_into : into:stats -> stats -> unit
val pp_stats : Format.formatter -> stats -> unit

val fold_binop : binop -> const -> const -> const option
(** Pure constant folding; [None] when not foldable (e.g. division by a
    zero constant, which must keep its runtime trap). *)

val fold_unop : unop -> const -> const option
val fold_intrinsic : intrinsic -> const option list -> const option

val run_once : program -> fn -> stats -> bool
(** One sweep over all instructions plus branch pruning; true when
    anything changed. Drive to a fixpoint via {!Driver.simplify}. *)
