(** Pass orchestration. *)

open Ir.Types

type stats = {
  canon : Canonicalize.stats;
  mutable gvn_hits : int;
  mutable dce_removed : int;
  mutable rw_eliminated : int;
  mutable loops_peeled : int;
  mutable scalar_replaced : int;
  mutable licm_hoisted : int;
}

val empty_stats : unit -> stats

val simple_opt_count : stats -> int
(** The paper's "simple optimizations triggered" metric N_s:
    canonicalization events plus value-numbering hits. *)

val pp_stats : Format.formatter -> stats -> unit

val simplify : ?max_rounds:int -> program -> fn -> stats
(** Canonicalize + GVN + DCE + CFG cleanup to a (bounded) fixpoint. Used
    to prepare freshly lowered bodies, inside deep inlining trials, and on
    the root between rounds. *)

val round_root_opts :
  ?rwelim:bool -> ?scalar:bool -> ?licm:bool -> ?peel:bool -> program -> fn -> stats
(** The per-round root treatment: [simplify], then read-write elimination
    (per the paper), scalar replacement of non-escaping allocations (per
    the Graal EE context the paper's inliner ships in), loop-invariant
    hoisting and profitable loop peeling (per the paper), then [simplify]
    again. The flags (all default true) feed the optimization-ablation
    bench. *)

val prepare_program : program -> unit
(** Baseline (parse-time-style) canonicalization of every method body.
    Must run before profiling so profile block ids match the IR every
    later consumer sees; idempotent. *)
