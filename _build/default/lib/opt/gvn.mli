(** Global value numbering over the dominator tree (scoped hashing): pure
    instructions (and array lengths, which are immutable) with identical
    operation and operands collapse to the first dominating occurrence.
    Commutative operands are normalized; loads from mutable memory never
    participate. *)

val key_of : Ir.Types.instr_kind -> string option
(** The structural key, or [None] for non-numberable instructions. *)

val run : Ir.Types.fn -> int
(** Returns the number of instructions replaced. *)
