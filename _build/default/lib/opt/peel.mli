(** First-iteration loop peeling (paper, Section IV "Other
    optimizations"): peel when a header phi's entry-edge type is strictly
    more precise than its merged type, so canonicalization can
    devirtualize the first iteration. Restricted to loops with a single
    exit block whose predecessors are all inside the loop — the shape of
    every structured Sel [while]. *)

open Ir.Types

type loop_info = {
  header : bid;
  body : (bid, unit) Hashtbl.t;
  exit_block : bid;
  exit_preds : bid list;
}

val eligible_loops : fn -> loop_info list
val worth_peeling : program -> fn -> loop_info -> bool
val peel : fn -> loop_info -> unit

val run : program -> fn -> int
(** Peels every profitable eligible loop once; returns how many. *)
