(* Global value numbering over the dominator tree (Briggs-style scoped
   hashing): pure instructions with identical operation and operands are
   collapsed to the first dominating occurrence. Array lengths participate
   (array lengths are immutable); loads do not (fields and elements are
   mutable). *)

open Ir.Types

(* A structural key for numberable instructions. Phis are excluded (their
   meaning depends on control flow); commutative operators are normalized
   by sorting operands. *)
let key_of (k : instr_kind) : string option =
  let commutative = function
    | Add | Mul | Band | Bor | Bxor | Eq | Ne | Andb | Orb | Xorb | Eqb -> true
    | Sub | Div | Rem | Shl | Shr | Lt | Le | Gt | Ge -> false
  in
  match k with
  | Const c -> Some (Fmt.str "c:%a" Ir.Printer.pp_const c)
  | Binop (op, a, b) ->
      let a, b = if commutative op && b < a then (b, a) else (a, b) in
      Some (Printf.sprintf "b:%s:%d:%d" (Ir.Printer.binop_name op) a b)
  | Unop (op, a) -> Some (Printf.sprintf "u:%s:%d" (Ir.Printer.unop_name op) a)
  | TypeTest { obj; cls } -> Some (Printf.sprintf "tt:%d:%d" obj cls)
  | ArrayLen a -> Some (Printf.sprintf "al:%d" a)
  | Intrinsic (i, args) when Ir.Instr.is_pure k ->
      Some
        (Printf.sprintf "i:%s:%s" (Ir.Printer.intrinsic_name i)
           (String.concat "," (List.map string_of_int args)))
  | _ -> None

let run (fn : fn) : int =
  let doms = Ir.Dominators.compute fn in
  let table : (string, vid) Hashtbl.t = Hashtbl.create 64 in
  let replaced = ref 0 in
  let rec walk (b : bid) =
    let blk = Ir.Fn.block fn b in
    let added = ref [] in
    List.iter
      (fun v ->
        if Ir.Fn.instr_live fn v then
          match key_of (Ir.Fn.kind fn v) with
          | Some key -> (
              match Hashtbl.find_opt table key with
              | Some v' when v' <> v ->
                  Ir.Fn.replace_uses fn ~old_v:v ~new_v:v';
                  Ir.Fn.delete_instr fn v;
                  incr replaced
              | Some _ -> ()
              | None ->
                  Hashtbl.add table key v;
                  added := key :: !added)
          | None -> ())
      blk.instrs;
    List.iter walk (Ir.Dominators.children doms b);
    List.iter (fun key -> Hashtbl.remove table key) !added
  in
  walk fn.entry;
  !replaced
