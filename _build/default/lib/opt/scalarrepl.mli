(** Scalar replacement of non-escaping allocations (escape-analysis lite,
    the core of Graal EE's partial escape analysis that makes cluster
    inlining pay): allocations used only as GetField/SetField receivers
    dissolve into SSA values over their fields; the allocation, every
    store and every load disappear. Runs between inlining rounds, after
    constructor calls have been inlined. *)

val escapes : Ir.Types.fn -> Ir.Types.vid -> bool

val run : Ir.Types.program -> Ir.Types.fn -> int
(** Replaces every non-escaping allocation; returns how many. *)
