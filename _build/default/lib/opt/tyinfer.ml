(* Flow-insensitive value-type inference on SSA values.

   The lattice refines static types with exactness and non-nullness, which
   is what type-check folding and devirtualization need:

       Vt_top
         |        (object types ordered by the class hierarchy)
       Vt_obj {cls; exact=false; nonnull}
         |
       Vt_obj {cls; exact=true; nonnull}
         |
       Vt_bot (unreached)

   Parameters read [fn.spec_tys], the callsite-refined parameter types that
   deep inlining trials install, so specializing a callee immediately
   sharpens every receiver derived from its parameters. *)

open Ir.Types

type vt =
  | Vt_bot
  | Vt_prim of ty                               (* Tint/Tbool/Tunit/Tstring *)
  | Vt_null
  | Vt_obj of { cls : class_id; exact : bool; nonnull : bool }
  | Vt_arr of ty
  | Vt_top

let of_ty (t : ty) : vt =
  match t with
  | Tint | Tbool | Tunit | Tstring -> Vt_prim t
  | Tarray e -> Vt_arr e
  | Tobj c when c < 0 -> Vt_null
  | Tobj c -> Vt_obj { cls = c; exact = false; nonnull = false }

let rec lca (prog : program) (a : class_id) (b : class_id) : class_id option =
  if a = b then Some a
  else if Ir.Program.is_subclass prog ~sub:a ~sup:b then Some b
  else if Ir.Program.is_subclass prog ~sub:b ~sup:a then Some a
  else
    match (Ir.Program.cls prog a).parent with
    | Some p -> lca prog p b
    | None -> None

let join (prog : program) (a : vt) (b : vt) : vt =
  match (a, b) with
  | Vt_bot, x | x, Vt_bot -> x
  | Vt_top, _ | _, Vt_top -> Vt_top
  | Vt_prim t1, Vt_prim t2 -> if t1 = t2 then a else Vt_top
  | Vt_null, Vt_null -> Vt_null
  | Vt_null, Vt_obj o | Vt_obj o, Vt_null -> Vt_obj { o with nonnull = false }
  | Vt_null, Vt_arr e | Vt_arr e, Vt_null -> Vt_arr e
  | Vt_arr e1, Vt_arr e2 -> if e1 = e2 then a else Vt_top
  | Vt_obj o1, Vt_obj o2 -> (
      match lca prog o1.cls o2.cls with
      | Some c ->
          Vt_obj
            {
              cls = c;
              exact = o1.exact && o2.exact && o1.cls = o2.cls;
              nonnull = o1.nonnull && o2.nonnull;
            }
      | None -> Vt_top)
  | _ -> Vt_top

let leq prog a b = join prog a b = b

(* Strictly more precise (used by loop peeling to decide profitability). *)
let lt prog a b = a <> b && leq prog a b

type env = (vid, vt) Hashtbl.t

let transfer (prog : program) (fn : fn) (env : env) (i : instr) : vt =
  let get v = match Hashtbl.find_opt env v with Some x -> x | None -> Vt_bot in
  match i.kind with
  | Const (Cint _) -> Vt_prim Tint
  | Const (Cbool _) -> Vt_prim Tbool
  | Const (Cstring _) -> Vt_prim Tstring
  | Const Cunit -> Vt_prim Tunit
  | Const Cnull -> Vt_null
  | Param k ->
      if k < Array.length fn.spec_tys then of_ty fn.spec_tys.(k) else Vt_top
  | Unop _ | Binop _ -> of_ty (Ir.Fn.result_ty fn i.kind)
  | Phi { inputs; _ } ->
      List.fold_left (fun acc (_, v) -> join prog acc (get v)) Vt_bot inputs
  | Call { rty; _ } -> of_ty rty
  | New c -> Vt_obj { cls = c; exact = true; nonnull = true }
  | GetField { fty; _ } -> of_ty fty
  | SetField _ -> Vt_prim Tunit
  | NewArray { ety; _ } -> Vt_arr ety
  | ArrayGet { ety; _ } -> of_ty ety
  | ArraySet _ -> Vt_prim Tunit
  | ArrayLen _ -> Vt_prim Tint
  | TypeTest _ -> Vt_prim Tbool
  | Intrinsic _ -> of_ty (Ir.Fn.result_ty fn i.kind)

(* Iterates to a fixpoint; the lattice has finite height (class hierarchy
   depth), so this terminates quickly. *)
let infer (prog : program) (fn : fn) : env =
  let env : env = Hashtbl.create 64 in
  let changed = ref true in
  while !changed do
    changed := false;
    Ir.Fn.iter_instrs
      (fun i ->
        let nv = transfer prog fn env i in
        let ov = match Hashtbl.find_opt env i.id with Some x -> x | None -> Vt_bot in
        let joined = join prog ov nv in
        if joined <> ov then begin
          Hashtbl.replace env i.id joined;
          changed := true
        end)
      fn
  done;
  env

let value_type (env : env) (v : vid) : vt =
  match Hashtbl.find_opt env v with Some x -> x | None -> Vt_top

(* The receiver class when a virtual call can be devirtualized:
   - exact receiver type: resolve on it;
   - otherwise class-hierarchy analysis: a unique concrete implementation
     below the static bound also suffices. *)
let devirt_target (prog : program) (env : env) (recv : vid) (sel : string) : meth_id option =
  match value_type env recv with
  | Vt_obj { cls; exact = true; _ } -> Ir.Program.resolve prog cls sel
  | Vt_obj { cls; exact = false; _ } -> (
      match Ir.Program.concrete_subtypes prog cls with
      | [] -> None
      | first :: rest -> (
          match Ir.Program.resolve prog first sel with
          | None -> None
          | Some m ->
              if
                List.for_all
                  (fun c -> Ir.Program.resolve prog c sel = Some m)
                  rest
              then Some m
              else None))
  | _ -> None

(* Three-valued type-test evaluation. *)
let typetest_result (prog : program) (env : env) (obj : vid) (target : class_id) :
    bool option =
  match value_type env obj with
  | Vt_null -> Some false
  | Vt_obj { cls; exact = true; nonnull = true } ->
      Some (Ir.Program.is_subclass prog ~sub:cls ~sup:target)
  | Vt_obj { cls; exact = true; nonnull = false } ->
      (* a null value fails the test, so only the negative case folds *)
      if Ir.Program.is_subclass prog ~sub:cls ~sup:target then None else Some false
  | Vt_obj { cls; exact = false; nonnull } -> (
      let possible =
        List.exists
          (fun c -> Ir.Program.is_subclass prog ~sub:c ~sup:target)
          (Ir.Program.concrete_subtypes prog cls)
      in
      let all =
        Ir.Program.concrete_subtypes prog cls <> []
        && List.for_all
             (fun c -> Ir.Program.is_subclass prog ~sub:c ~sup:target)
             (Ir.Program.concrete_subtypes prog cls)
      in
      match (possible, all, nonnull) with
      | false, _, _ -> Some false
      | _, true, true -> Some true
      | _ -> None)
  | _ -> None
