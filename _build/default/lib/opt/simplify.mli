(** CFG cleanup after transformations that rewrite terminators (branch
    pruning, inlining): unreachable-block removal with phi-edge pruning,
    trivial-phi elimination, and straight-line block merging. *)

val remove_unreachable : Ir.Types.fn -> bool
val remove_trivial_phis : Ir.Types.fn -> bool
val merge_blocks : Ir.Types.fn -> bool

val cleanup : Ir.Types.fn -> bool
(** All three, in order; true when anything changed. *)
