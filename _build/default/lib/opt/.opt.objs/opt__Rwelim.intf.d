lib/opt/rwelim.mli: Ir
