lib/opt/tyinfer.ml: Array Hashtbl Ir List
