lib/opt/simplify.ml: Hashtbl Ir List
