lib/opt/driver.ml: Canonicalize Dce Fmt Gvn Ir Licm Peel Rwelim Scalarrepl Simplify
