lib/opt/licm.mli: Ir
