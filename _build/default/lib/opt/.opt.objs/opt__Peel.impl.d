lib/opt/peel.ml: Hashtbl Ir List Simplify Tyinfer
