lib/opt/rwelim.ml: Hashtbl Ir List
