lib/opt/driver.mli: Canonicalize Format Ir
