lib/opt/canonicalize.mli: Format Ir
