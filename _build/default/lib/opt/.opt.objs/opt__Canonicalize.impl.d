lib/opt/canonicalize.ml: Char Fmt Ir List String Tyinfer
