lib/opt/scalarrepl.ml: Array Hashtbl Ir List Simplify
