lib/opt/gvn.mli: Ir
