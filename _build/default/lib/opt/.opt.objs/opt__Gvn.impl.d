lib/opt/gvn.ml: Fmt Hashtbl Ir List Printf String
