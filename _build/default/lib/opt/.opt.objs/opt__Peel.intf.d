lib/opt/peel.mli: Hashtbl Ir
