lib/opt/tyinfer.mli: Hashtbl Ir
