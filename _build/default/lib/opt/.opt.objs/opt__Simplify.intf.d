lib/opt/simplify.mli: Ir
