lib/opt/dce.ml: Hashtbl Ir List Queue
