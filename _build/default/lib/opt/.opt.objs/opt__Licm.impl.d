lib/opt/licm.ml: Hashtbl Ir List
