lib/opt/scalarrepl.mli: Ir
