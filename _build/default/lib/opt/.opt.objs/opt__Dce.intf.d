lib/opt/dce.mli: Ir
