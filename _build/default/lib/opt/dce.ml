(* Dead-code elimination: removes instructions whose results are unused and
   whose execution is unobservable (pure ops, dead loads, dead
   allocations). Uses a mark phase seeded from side-effecting instructions
   and terminator operands, so phi cycles feeding only each other die. *)

open Ir.Types

let run (fn : fn) : int =
  let marked : (vid, unit) Hashtbl.t = Hashtbl.create 64 in
  let work = Queue.create () in
  let mark v =
    if not (Hashtbl.mem marked v) then begin
      Hashtbl.replace marked v ();
      Queue.add v work
    end
  in
  Ir.Fn.iter_instrs
    (fun i -> if Ir.Instr.has_side_effect i.kind then mark i.id)
    fn;
  Ir.Fn.iter_blocks
    (fun blk ->
      match blk.term with
      | If { cond; _ } -> mark cond
      | Return v -> mark v
      | Goto _ | Unreachable -> ())
    fn;
  while not (Queue.is_empty work) do
    let v = Queue.pop work in
    if Ir.Fn.instr_live fn v then
      List.iter mark (Ir.Instr.operands (Ir.Fn.kind fn v))
  done;
  let dead = ref [] in
  Ir.Fn.iter_instrs
    (fun i -> if not (Hashtbl.mem marked i.id) then dead := i.id :: !dead)
    fn;
  List.iter (fun v -> Ir.Fn.delete_instr fn v) !dead;
  List.length !dead
