(** Dead-code elimination: removes unused removable instructions (pure
    ops, loads, allocations), seeded from side-effecting instructions and
    terminator operands so that self-sustaining phi cycles also die. Calls
    are conservatively kept. *)

val run : Ir.Types.fn -> int
(** Returns the number of instructions removed. *)
