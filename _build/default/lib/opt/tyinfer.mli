(** Value-type inference on SSA values: static types refined with
    exactness and non-nullness — the inputs of type-check folding,
    devirtualization and peeling profitability. Parameter types are read
    from [fn.spec_tys], so callsite specialization (deep inlining trials)
    sharpens everything derived from parameters. *)

open Ir.Types

type vt =
  | Vt_bot                       (** unreached *)
  | Vt_prim of ty
  | Vt_null
  | Vt_obj of { cls : class_id; exact : bool; nonnull : bool }
  | Vt_arr of ty
  | Vt_top                       (** unknown *)

val of_ty : ty -> vt
val join : program -> vt -> vt -> vt
val leq : program -> vt -> vt -> bool
val lt : program -> vt -> vt -> bool
(** Strictly more precise. *)

type env = (vid, vt) Hashtbl.t

val infer : program -> fn -> env
(** Fixpoint over all instructions (the lattice height is the class
    hierarchy depth, so this converges fast). *)

val value_type : env -> vid -> vt

val devirt_target : program -> env -> vid -> string -> meth_id option
(** The unique dispatch target of [selector] on the receiver, via an exact
    receiver type or class-hierarchy analysis; [None] when ambiguous. *)

val typetest_result : program -> env -> vid -> class_id -> bool option
(** Three-valued instance-of evaluation ([None] = unknown at compile
    time); folding to [true] additionally requires non-nullness. *)
