(* Local read/write elimination: per-block store-to-load forwarding,
   redundant-load elimination and dead-store removal for object fields,
   plus fresh-allocation default-value folding.

   The paper applies read-write elimination to the root method at the end
   of every inlining round because it "partially restores the method
   receiver type information that is lost when writing values to memory
   (and later reading the same values)" — exactly store-to-load
   forwarding: after inlining a constructor, a load of the receiver field
   forwards the stored lambda/receiver object, whose type is exact.

   Aliasing discipline (conservative, block-local):
   - keys are (base vid, slot); two different base vids may alias unless
     one of them is a fresh allocation that has not escaped;
   - a store to slot [s] through base [b] kills every (b', s) with b' ≠ b
     unless b' is fresh-and-unescaped and distinct from b;
   - any call kills everything and marks every object as escaped;
   - field loads from a fresh, unescaped, unwritten slot yield the default
     value for the field type. *)

open Ir.Types

type cell = { base : vid; slot : int }

let run (prog : program) (fn : fn) : int =
  ignore prog;
  let eliminated = ref 0 in
  Ir.Fn.iter_blocks
    (fun blk ->
      let known : (cell, vid) Hashtbl.t = Hashtbl.create 16 in
      (* fresh allocations in this block that have not escaped yet; maps the
         vid to the set of slots that have been stored *)
      let fresh : (vid, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
      let default_const (t : ty) : const option =
        match t with
        | Tint -> Some (Cint 0)
        | Tbool -> Some (Cbool false)
        | Tstring -> Some (Cstring "")
        | Tunit -> Some Cunit
        | Tarray _ | Tobj _ -> Some Cnull
      in
      let escape v =
        Hashtbl.remove fresh v
      in
      let kill_all () =
        Hashtbl.reset known;
        Hashtbl.reset fresh
      in
      let kill_slot ~(except : vid) slot =
        Hashtbl.iter
          (fun cell _ ->
            if cell.slot = slot && cell.base <> except && not (Hashtbl.mem fresh cell.base)
            then Hashtbl.remove known cell)
          (Hashtbl.copy known)
      in
      let dead_stores = ref [] in
      let last_store : (cell, vid) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun v ->
          if Ir.Fn.instr_live fn v then
            let i = Ir.Fn.instr fn v in
            match i.kind with
            | New _ -> Hashtbl.replace fresh v (Hashtbl.create 4)
            | SetField { obj; slot; value; _ } ->
                (* dead store: a previous store to the same cell with no
                   intervening load/call (calls reset [last_store]) *)
                (match Hashtbl.find_opt last_store { base = obj; slot } with
                | Some prev -> dead_stores := prev :: !dead_stores
                | None -> ());
                Hashtbl.replace last_store { base = obj; slot } v;
                Hashtbl.replace known { base = obj; slot } value;
                kill_slot ~except:obj slot;
                (match Hashtbl.find_opt fresh obj with
                | Some written -> Hashtbl.replace written slot ()
                | None -> ());
                (* storing an object INTO a field lets it escape *)
                escape value
            | GetField { obj; slot; fty; _ } -> (
                (* a load through any base may observe stores through an
                   aliasing base: keep earlier stores to this slot alive *)
                Hashtbl.iter
                  (fun (cell : cell) _ ->
                    if cell.slot = slot then Hashtbl.remove last_store cell)
                  (Hashtbl.copy last_store);
                match Hashtbl.find_opt known { base = obj; slot } with
                | Some stored ->
                    Ir.Fn.replace_uses fn ~old_v:v ~new_v:stored;
                    Ir.Fn.delete_instr fn v;
                    incr eliminated
                | None -> (
                    match Hashtbl.find_opt fresh obj with
                    | Some written when not (Hashtbl.mem written slot) -> (
                        match default_const fty with
                        | Some c ->
                            i.kind <- Const c;
                            incr eliminated
                        | None -> ())
                    | _ ->
                        (* remember the loaded value; a second load forwards *)
                        Hashtbl.replace known { base = obj; slot } v))
            | Call { args; _ } ->
                List.iter escape args;
                kill_all ();
                Hashtbl.reset last_store
            | ArraySet { value; _ } -> escape value
            | Phi { inputs; _ } -> List.iter (fun (_, pv) -> escape pv) inputs
            | NewArray _ | ArrayGet _ | ArrayLen _ | Const _ | Param _ | Unop _
            | Binop _ | TypeTest _ -> ()
            | Intrinsic _ -> ())
        blk.instrs;
      (* a value still counted fresh at block end escapes via the
         terminator or later blocks; dead stores collected above are safe
         only if the cell was overwritten in the same block before any
         call/load — which the [last_store] discipline guarantees *)
      List.iter
        (fun v ->
          if Ir.Fn.instr_live fn v then begin
            Ir.Fn.delete_instr fn v;
            incr eliminated
          end)
        !dead_stores;
      (* escaping via Return: nothing to do — freshness is block-local *)
      ignore (Ir.Fn.term fn blk.b_id))
    fn;
  !eliminated
