(** Loop-invariant code motion: hoists pure, non-trapping computations
    (including immutable array lengths) whose operands are loop-invariant
    into a freshly created preheader. The flagship case is the
    [i < arr.length] bound of every collection loop. *)

val hoistable : Ir.Types.instr_kind -> bool

val run : Ir.Types.fn -> int
(** Processes every natural loop once; returns the number of instructions
    hoisted. Idempotent (a second run hoists nothing and creates no new
    blocks). *)
