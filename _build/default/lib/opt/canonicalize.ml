(* Canonicalization: the "simple optimizations" the paper's deep inlining
   trials count and that Graal's canonicalizer performs — constant folding,
   algebraic simplification, strength reduction, branch pruning, type-check
   folding, and (type-driven) devirtualization.

   Rewrites happen in place. Replacing an instruction with a constant
   mutates its kind (uses stay valid); replacing it with an existing value
   rewrites the uses and deletes the instruction. The returned [stats]
   counts each category of applied rewrite — the inliner's N_s metric. *)

open Ir.Types

type stats = {
  mutable const_folds : int;
  mutable algebraic : int;
  mutable strength : int;
  mutable branch_prunes : int;
  mutable devirts : int;
  mutable typetest_folds : int;
}

let empty_stats () =
  { const_folds = 0; algebraic = 0; strength = 0; branch_prunes = 0; devirts = 0;
    typetest_folds = 0 }

let total (s : stats) =
  s.const_folds + s.algebraic + s.strength + s.branch_prunes + s.devirts + s.typetest_folds

let add_into ~(into : stats) (s : stats) =
  into.const_folds <- into.const_folds + s.const_folds;
  into.algebraic <- into.algebraic + s.algebraic;
  into.strength <- into.strength + s.strength;
  into.branch_prunes <- into.branch_prunes + s.branch_prunes;
  into.devirts <- into.devirts + s.devirts;
  into.typetest_folds <- into.typetest_folds + s.typetest_folds

let pp_stats ppf (s : stats) =
  Fmt.pf ppf "folds=%d algebraic=%d strength=%d branches=%d devirt=%d typetest=%d"
    s.const_folds s.algebraic s.strength s.branch_prunes s.devirts s.typetest_folds

let is_pow2 n = n > 1 && n land (n - 1) = 0

let log2 n =
  let rec go k m = if m >= n then k else go (k + 1) (m * 2) in
  go 0 1

let fold_binop (op : binop) (a : const) (b : const) : const option =
  match (op, a, b) with
  | Add, Cint x, Cint y -> Some (Cint (x + y))
  | Sub, Cint x, Cint y -> Some (Cint (x - y))
  | Mul, Cint x, Cint y -> Some (Cint (x * y))
  | Div, Cint x, Cint y when y <> 0 -> Some (Cint (x / y))
  | Rem, Cint x, Cint y when y <> 0 -> Some (Cint (x mod y))
  | Shl, Cint x, Cint y -> Some (Cint (x lsl (y land 63)))
  | Shr, Cint x, Cint y -> Some (Cint (x asr (y land 63)))
  | Band, Cint x, Cint y -> Some (Cint (x land y))
  | Bor, Cint x, Cint y -> Some (Cint (x lor y))
  | Bxor, Cint x, Cint y -> Some (Cint (x lxor y))
  | Lt, Cint x, Cint y -> Some (Cbool (x < y))
  | Le, Cint x, Cint y -> Some (Cbool (x <= y))
  | Gt, Cint x, Cint y -> Some (Cbool (x > y))
  | Ge, Cint x, Cint y -> Some (Cbool (x >= y))
  | Eq, Cint x, Cint y -> Some (Cbool (x = y))
  | Ne, Cint x, Cint y -> Some (Cbool (x <> y))
  | Eq, Cnull, Cnull -> Some (Cbool true)
  | Ne, Cnull, Cnull -> Some (Cbool false)
  | Andb, Cbool x, Cbool y -> Some (Cbool (x && y))
  | Orb, Cbool x, Cbool y -> Some (Cbool (x || y))
  | Xorb, Cbool x, Cbool y -> Some (Cbool (x <> y))
  | Eqb, Cbool x, Cbool y -> Some (Cbool (x = y))
  | _ -> None

let fold_unop (op : unop) (a : const) : const option =
  match (op, a) with
  | Neg, Cint x -> Some (Cint (-x))
  | Not, Cbool b -> Some (Cbool (not b))
  | _ -> None

let fold_intrinsic (intr : intrinsic) (args : const option list) : const option =
  match (intr, args) with
  | Istr_len, [ Some (Cstring s) ] -> Some (Cint (String.length s))
  | Istr_eq, [ Some (Cstring a); Some (Cstring b) ] -> Some (Cbool (a = b))
  | Istr_get, [ Some (Cstring s); Some (Cint i) ] when i >= 0 && i < String.length s ->
      Some (Cint (Char.code s.[i]))
  | Iabs, [ Some (Cint a) ] -> Some (Cint (abs a))
  | Imin, [ Some (Cint a); Some (Cint b) ] -> Some (Cint (min a b))
  | Imax, [ Some (Cint a); Some (Cint b) ] -> Some (Cint (max a b))
  | _ -> None

(* One canonicalization sweep; true when anything changed. *)
let run_once (prog : program) (fn : fn) (stats : stats) : bool =
  let changed = ref false in
  let env = Tyinfer.infer prog fn in
  let const_of v = match Ir.Fn.kind fn v with Const c -> Some c | _ -> None in
  let count_fold () = stats.const_folds <- stats.const_folds + 1 in
  let count_alg () = stats.algebraic <- stats.algebraic + 1 in
  let to_const (i : instr) (c : const) counter =
    i.kind <- Const c;
    counter ();
    changed := true
  in
  let to_value (i : instr) (v : vid) counter =
    Ir.Fn.replace_uses fn ~old_v:i.id ~new_v:v;
    Ir.Fn.delete_instr fn i.id;
    counter ();
    changed := true
  in
  let instrs = ref [] in
  Ir.Fn.iter_instrs (fun i -> instrs := i :: !instrs) fn;
  List.iter
    (fun (i : instr) ->
      if Ir.Fn.instr_live fn i.id then
        match i.kind with
        | Binop (op, a, b) -> (
            match (const_of a, const_of b) with
            | Some ca, Some cb -> (
                match fold_binop op ca cb with
                | Some c -> to_const i c count_fold
                | None -> ())
            | ca, cb -> (
                match (op, ca, cb) with
                | Add, Some (Cint 0), _ -> to_value i b count_alg
                | Add, _, Some (Cint 0) -> to_value i a count_alg
                | Sub, _, Some (Cint 0) -> to_value i a count_alg
                | Mul, Some (Cint 1), _ -> to_value i b count_alg
                | Mul, _, Some (Cint 1) -> to_value i a count_alg
                | (Mul, Some (Cint 0), _ | Mul, _, Some (Cint 0)) ->
                    to_const i (Cint 0) count_alg
                | Div, _, Some (Cint 1) -> to_value i a count_alg
                | (Band, Some (Cint 0), _ | Band, _, Some (Cint 0)) ->
                    to_const i (Cint 0) count_alg
                | Bor, Some (Cint 0), _ -> to_value i b count_alg
                | Bor, _, Some (Cint 0) -> to_value i a count_alg
                | Bxor, _, Some (Cint 0) -> to_value i a count_alg
                | (Shl, _, Some (Cint 0) | Shr, _, Some (Cint 0)) -> to_value i a count_alg
                | Andb, Some (Cbool true), _ -> to_value i b count_alg
                | Andb, _, Some (Cbool true) -> to_value i a count_alg
                | (Andb, Some (Cbool false), _ | Andb, _, Some (Cbool false)) ->
                    to_const i (Cbool false) count_alg
                | Orb, Some (Cbool false), _ -> to_value i b count_alg
                | Orb, _, Some (Cbool false) -> to_value i a count_alg
                | (Orb, Some (Cbool true), _ | Orb, _, Some (Cbool true)) ->
                    to_const i (Cbool true) count_alg
                | Mul, _, Some (Cint n) when is_pow2 n ->
                    (* strength reduction: x * 2^k  ->  x << k *)
                    let sh = Ir.Fn.insert_before fn ~before:i.id (Const (Cint (log2 n))) in
                    i.kind <- Binop (Shl, a, sh);
                    stats.strength <- stats.strength + 1;
                    changed := true
                | Mul, Some (Cint n), _ when is_pow2 n ->
                    let sh = Ir.Fn.insert_before fn ~before:i.id (Const (Cint (log2 n))) in
                    i.kind <- Binop (Shl, b, sh);
                    stats.strength <- stats.strength + 1;
                    changed := true
                | (Eq, _, _ | Le, _, _ | Ge, _, _ | Eqb, _, _) when a = b ->
                    (* the same SSA value compares equal to itself *)
                    to_const i (Cbool true) count_alg
                | (Ne, _, _ | Lt, _, _ | Gt, _, _ | Xorb, _, _) when a = b ->
                    to_const i (Cbool false) count_alg
                | Sub, _, _ when a = b -> to_const i (Cint 0) count_alg
                | _ -> ()))
        | Unop (op, a) -> (
            match const_of a with
            | Some ca -> (
                match fold_unop op ca with
                | Some c -> to_const i c count_fold
                | None -> ())
            | None -> (
                (* double negation *)
                match (op, Ir.Fn.kind fn a) with
                | Neg, Unop (Neg, inner) | Not, Unop (Not, inner) -> to_value i inner count_alg
                | _ -> ()))
        | Intrinsic (intr, args) -> (
            match fold_intrinsic intr (List.map const_of args) with
            | Some c -> to_const i c count_fold
            | None -> ())
        | TypeTest { obj; cls } -> (
            match Tyinfer.typetest_result prog env obj cls with
            | Some b ->
                to_const i (Cbool b) (fun () ->
                    stats.typetest_folds <- stats.typetest_folds + 1)
            | None -> ())
        | Call ({ callee = Virtual sel; args; _ } as call) -> (
            match args with
            | recv :: _ -> (
                match Tyinfer.devirt_target prog env recv sel with
                | Some m ->
                    call.callee <- Direct m;
                    stats.devirts <- stats.devirts + 1;
                    changed := true
                | None -> ())
            | [] -> ())
        | _ -> ())
    !instrs;
  (* branch pruning *)
  Ir.Fn.iter_blocks
    (fun blk ->
      match blk.term with
      | If { cond; tb; fb; _ } -> (
          if tb = fb then begin
            blk.term <- Goto tb;
            stats.branch_prunes <- stats.branch_prunes + 1;
            changed := true
          end
          else
            match const_of cond with
            | Some (Cbool b) ->
                let live, dead = if b then (tb, fb) else (fb, tb) in
                (* drop the dead edge from the target's phis right away; the
                   block itself dies in CFG cleanup if it has no other preds *)
                List.iter
                  (fun v ->
                    match Ir.Fn.kind fn v with
                    | Phi p ->
                        p.inputs <- List.filter (fun (pb, _) -> pb <> blk.b_id) p.inputs
                    | _ -> ())
                  (Ir.Fn.block fn dead).instrs;
                blk.term <- Goto live;
                stats.branch_prunes <- stats.branch_prunes + 1;
                changed := true
            | _ -> ())
      | _ -> ())
    fn;
  !changed
