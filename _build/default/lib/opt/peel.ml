(* First-iteration loop peeling.

   The paper (Section IV, "Other optimizations"): "we also apply peeling on
   a loop's first iteration if we detect that the loop contains a ϕ-node
   (i.e. a variable) whose type is more specific in that first iteration."
   After peeling, the first iteration sees the precise entry type, so
   canonicalization can devirtualize / fold type tests inside it.

   To avoid general SSA reconstruction we only peel loops with a single
   exit block whose predecessors all lie inside the loop — the shape every
   structured Sel `while` produces. The body is copied; entry edges are
   redirected into the copy; the copy's back edges continue into the
   original header; loop-defined values used after the loop get a merging
   phi in the exit block. *)

open Ir.Types

type loop_info = {
  header : bid;
  body : (bid, unit) Hashtbl.t;
  exit_block : bid;      (* unique successor outside the loop *)
  exit_preds : bid list; (* in-loop predecessors of [exit_block] *)
}

let eligible_loops (fn : fn) : loop_info list =
  let preds = Ir.Fn.preds fn in
  let loops = (Ir.Loops.compute fn).loops in
  List.filter_map
    (fun (l : Ir.Loops.loop) ->
      let exits = ref [] in
      Hashtbl.iter
        (fun b () ->
          List.iter
            (fun s -> if not (Hashtbl.mem l.body s) then exits := (b, s) :: !exits)
            (Ir.Fn.succs fn b))
        l.body;
      match List.sort_uniq compare (List.map snd !exits) with
      | [ exit_block ]
        when List.for_all
               (fun p -> Hashtbl.mem l.body p)
               (try Hashtbl.find preds exit_block with Not_found -> []) ->
          Some
            {
              header = l.header;
              body = l.body;
              exit_block;
              exit_preds = List.sort_uniq compare (List.map fst !exits);
            }
      | _ -> None)
    loops

(* Profitability per the paper: some header phi's entry-edge value type is
   strictly more precise than the phi's merged type. *)
let worth_peeling (prog : program) (fn : fn) (l : loop_info) : bool =
  let env = Tyinfer.infer prog fn in
  let hdr = Ir.Fn.block fn l.header in
  List.exists
    (fun v ->
      match Ir.Fn.kind fn v with
      | Phi { inputs; _ } ->
          let entry_inputs =
            List.filter (fun (pb, _) -> not (Hashtbl.mem l.body pb)) inputs
          in
          let entry_vt =
            List.fold_left
              (fun acc (_, pv) -> Tyinfer.join prog acc (Tyinfer.value_type env pv))
              Tyinfer.Vt_bot entry_inputs
          in
          entry_inputs <> [] && Tyinfer.lt prog entry_vt (Tyinfer.value_type env v)
      | _ -> false)
    hdr.instrs

let peel (fn : fn) (l : loop_info) : unit =
  let in_body b = Hashtbl.mem l.body b in
  let doms = Ir.Dominators.compute fn in
  let preds0 = Ir.Fn.preds fn in
  let entry_preds =
    (try Hashtbl.find preds0 l.header with Not_found -> [])
    |> List.filter (fun p -> not (in_body p))
  in
  let latches =
    (try Hashtbl.find preds0 l.header with Not_found -> []) |> List.filter in_body
  in
  (* ---- pass 1: allocate copies ---- *)
  let bmap : (bid, bid) Hashtbl.t = Hashtbl.create 8 in
  let copies : (bid, unit) Hashtbl.t = Hashtbl.create 8 in
  let vmap : (vid, vid) Hashtbl.t = Hashtbl.create 32 in
  Hashtbl.iter
    (fun b () ->
      let nb = Ir.Fn.add_block fn in
      Hashtbl.replace bmap b nb;
      Hashtbl.replace copies nb ())
    l.body;
  let mb b = match Hashtbl.find_opt bmap b with Some b' -> b' | None -> b in
  Hashtbl.iter
    (fun b () ->
      List.iter
        (fun v -> Hashtbl.replace vmap v (Ir.Fn.fresh_instr fn (Ir.Fn.kind fn v)).id)
        (Ir.Fn.block fn b).instrs)
    l.body;
  (* ---- pass 1b: collapse single-entry header phis in the copy BEFORE any
     kind is remapped, so every later [mv] sees the final mapping ---- *)
  let collapsed : (vid, unit) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun v ->
      match Ir.Fn.kind fn v with
      | Phi { inputs; _ } -> (
          let entry_inputs = List.filter (fun (pb, _) -> not (in_body pb)) inputs in
          match entry_inputs with
          | [ (_, only) ] ->
              Ir.Fn.delete_instr fn (Hashtbl.find vmap v);
              Hashtbl.replace vmap v only;
              Hashtbl.replace collapsed v ()
          | _ -> ())
      | _ -> ())
    (Ir.Fn.block fn l.header).instrs;
  let mv v = match Hashtbl.find_opt vmap v with Some v' -> v' | None -> v in
  (* ---- pass 2: fill copied kinds and terminators ---- *)
  Hashtbl.iter
    (fun b () ->
      let blk = Ir.Fn.block fn b in
      let nb = Ir.Fn.block fn (mb b) in
      nb.instrs <-
        List.filter_map
          (fun v ->
            if Hashtbl.mem collapsed v then None
            else begin
              let k = Ir.Fn.kind fn v in
              let nk =
                match k with
                | Phi { ty; inputs } when b = l.header ->
                    Phi
                      {
                        ty;
                        inputs =
                          List.filter_map
                            (fun (pb, pv) ->
                              if in_body pb then None else Some (pb, mv pv))
                            inputs;
                      }
                | Phi { ty; inputs } ->
                    Phi { ty; inputs = List.map (fun (pb, pv) -> (mb pb, mv pv)) inputs }
                | k -> Ir.Instr.map_operands mv k
              in
              (Ir.Fn.instr fn (mv v)).kind <- nk;
              Some (mv v)
            end)
          blk.instrs;
      (* a copied edge back to the header continues into the ORIGINAL loop *)
      nb.term <-
        (match blk.term with
        | Goto t -> Goto (if t = l.header then l.header else mb t)
        | If ({ tb; fb; cond; _ } as r) ->
            If
              {
                r with
                cond = mv cond;
                tb = (if tb = l.header then l.header else mb tb);
                fb = (if fb = l.header then l.header else mb fb);
              }
        | Return v -> Return (mv v)
        | Unreachable -> Unreachable))
    l.body;
  (* ---- original header phis: entry inputs are replaced by the values the
     peeled iteration produces along the copied back edges ---- *)
  List.iter
    (fun v ->
      match Ir.Fn.kind fn v with
      | Phi p ->
          let latch_inputs = List.filter (fun (pb, _) -> List.mem pb latches) p.inputs in
          let copied = List.map (fun (pb, pv) -> (mb pb, mv pv)) latch_inputs in
          p.inputs <- latch_inputs @ copied
      | _ -> ())
    (Ir.Fn.block fn l.header).instrs;
  (* ---- redirect entry edges into the copy ---- *)
  List.iter
    (fun p ->
      let blk = Ir.Fn.block fn p in
      blk.term <-
        (match blk.term with
        | Goto t -> Goto (if t = l.header then mb l.header else t)
        | If ({ tb; fb; _ } as r) ->
            If
              {
                r with
                tb = (if tb = l.header then mb l.header else tb);
                fb = (if fb = l.header then mb l.header else fb);
              }
        | t -> t))
    entry_preds;
  (* ---- exit block ---- *)
  let exit_blk = Ir.Fn.block fn l.exit_block in
  (* existing exit phis: the copied predecessors contribute copied values *)
  List.iter
    (fun v ->
      match Ir.Fn.kind fn v with
      | Phi p ->
          let extra =
            List.filter_map
              (fun (pb, pv) -> if in_body pb then Some (mb pb, mv pv) else None)
              p.inputs
          in
          p.inputs <- p.inputs @ extra
      | _ -> ())
    exit_blk.instrs;
  (* loop-defined values used after the loop: merge the two copies with a
     phi. Such a value must dominate every exit predecessor (otherwise it
     could not dominate any post-loop use). *)
  let is_copy b = Hashtbl.mem copies b in
  let outside_users (v : vid) : bool =
    let found = ref false in
    Ir.Fn.iter_blocks
      (fun blk ->
        if (not (in_body blk.b_id)) && not (is_copy blk.b_id) then begin
          List.iter
            (fun u ->
              match Ir.Fn.kind fn u with
              | Phi { inputs; _ } ->
                  if
                    List.exists
                      (fun (pb, pv) -> pv = v && (not (in_body pb)) && not (is_copy pb))
                      inputs
                  then found := true
              | k -> if List.mem v (Ir.Instr.operands k) then found := true)
            blk.instrs;
          match blk.term with
          | If { cond; _ } when cond = v -> found := true
          | Return rv when rv = v -> found := true
          | _ -> ()
        end)
      fn;
    !found
  in
  let candidates = ref [] in
  Hashtbl.iter
    (fun b () ->
      if List.for_all (fun p -> Ir.Dominators.dominates doms ~a:b ~b:p) l.exit_preds then
        List.iter
          (fun v -> if outside_users v then candidates := v :: !candidates)
          (Ir.Fn.block fn b).instrs)
    l.body;
  List.iter
    (fun v ->
      let ty = Ir.Fn.result_ty fn (Ir.Fn.kind fn v) in
      let inputs =
        List.concat_map (fun p -> [ (p, v); (mb p, mv v) ]) l.exit_preds
      in
      let phi = Ir.Fn.prepend fn l.exit_block (Phi { ty; inputs }) in
      Ir.Fn.iter_blocks
        (fun blk ->
          if (not (in_body blk.b_id)) && not (is_copy blk.b_id) then begin
            List.iter
              (fun u ->
                if u <> phi then
                  let i = Ir.Fn.instr fn u in
                  match i.kind with
                  | Phi p ->
                      p.inputs <-
                        List.map
                          (fun (pb, pv) ->
                            if pv = v && (not (in_body pb)) && not (is_copy pb) then
                              (pb, phi)
                            else (pb, pv))
                          p.inputs
                  | k ->
                      i.kind <- Ir.Instr.map_operands (fun x -> if x = v then phi else x) k)
              blk.instrs;
            match blk.term with
            | If ({ cond; _ } as r) when cond = v -> blk.term <- If { r with cond = phi }
            | Return rv when rv = v -> blk.term <- Return phi
            | _ -> ()
          end)
        fn)
    !candidates

(* Peels every profitable loop once; returns how many loops were peeled. *)
let run (prog : program) (fn : fn) : int =
  let peeled = ref 0 in
  let ls = eligible_loops fn in
  List.iter
    (fun l ->
      if Ir.Fn.block_live fn l.header && worth_peeling prog fn l then begin
        peel fn l;
        incr peeled
      end)
    ls;
  if !peeled > 0 then ignore (Simplify.cleanup fn);
  !peeled
