(* CFG cleanup: unreachable-block removal, phi pruning and trivial-phi
   elimination, and straight-line block merging. Runs after passes that
   rewrite terminators (branch pruning, inlining) to restore a minimal
   CFG, which keeps the paper's |ir| size metric honest. *)

open Ir.Types

(* Removes blocks unreachable from the entry, pruning the phi inputs of the
   survivors. Returns true when anything changed. *)
let remove_unreachable (fn : fn) : bool =
  let reachable = Ir.Fn.reachable fn in
  let changed = ref false in
  (* prune phi edges coming from dead predecessors *)
  Ir.Fn.iter_blocks
    (fun blk ->
      if Hashtbl.mem reachable blk.b_id then
        List.iter
          (fun v ->
            match Ir.Fn.kind fn v with
            | Phi p ->
                let keep = List.filter (fun (pb, _) -> Hashtbl.mem reachable pb) p.inputs in
                if List.length keep <> List.length p.inputs then begin
                  p.inputs <- keep;
                  changed := true
                end
            | _ -> ())
          blk.instrs)
    fn;
  let dead = ref [] in
  Ir.Fn.iter_blocks
    (fun blk -> if not (Hashtbl.mem reachable blk.b_id) then dead := blk.b_id :: !dead)
    fn;
  List.iter
    (fun b ->
      Ir.Fn.delete_block fn b;
      changed := true)
    !dead;
  !changed

(* Replaces phis whose inputs are all the same value (ignoring self) with
   that value. Returns true when anything changed. *)
let remove_trivial_phis (fn : fn) : bool =
  let changed = ref false in
  let progress = ref true in
  while !progress do
    progress := false;
    let phis = ref [] in
    Ir.Fn.iter_instrs
      (fun i -> match i.kind with Phi _ -> phis := i :: !phis | _ -> ())
      fn;
    List.iter
      (fun (i : instr) ->
        if Ir.Fn.instr_live fn i.id then
          match i.kind with
          | Phi { inputs; _ } -> (
              let ops =
                List.map snd inputs
                |> List.filter (fun v -> v <> i.id)
                |> List.sort_uniq compare
              in
              match ops with
              | [ v ] ->
                  Ir.Fn.replace_uses fn ~old_v:i.id ~new_v:v;
                  Ir.Fn.delete_instr fn i.id;
                  progress := true;
                  changed := true
              | _ -> ())
          | _ -> ())
      !phis
  done;
  !changed

(* Merges a block with its unique successor when that successor has no
   other predecessor. Phis in the successor are trivial in that situation
   and must have been removed first. Returns true when anything changed. *)
let merge_blocks (fn : fn) : bool =
  let changed = ref false in
  let progress = ref true in
  while !progress do
    progress := false;
    let preds = Ir.Fn.preds fn in
    let candidates = ref [] in
    Ir.Fn.iter_blocks
      (fun blk ->
        match blk.term with
        | Goto s when s <> fn.entry && s <> blk.b_id -> (
            match Hashtbl.find_opt preds s with
            | Some [ p ] when p = blk.b_id -> candidates := (blk.b_id, s) :: !candidates
            | _ -> ())
        | _ -> ())
      fn;
    (* apply non-overlapping merges; recompute preds between rounds *)
    (match !candidates with
    | (b, s) :: _ when Ir.Fn.block_live fn b && Ir.Fn.block_live fn s ->
        let blk = Ir.Fn.block fn b in
        let sblk = Ir.Fn.block fn s in
        (* any phi here must be single-input; resolve it *)
        List.iter
          (fun v ->
            match Ir.Fn.kind fn v with
            | Phi { inputs = [ (_, pv) ]; _ } ->
                Ir.Fn.replace_uses fn ~old_v:v ~new_v:pv;
                Ir.Fn.delete_instr fn v
            | Phi _ -> invalid_arg "Simplify.merge_blocks: non-trivial phi in merge target"
            | _ -> ())
          sblk.instrs;
        blk.instrs <- blk.instrs @ sblk.instrs;
        blk.term <- sblk.term;
        (* successors' phis must now name [b] as the predecessor *)
        List.iter
          (fun succ ->
            List.iter
              (fun v ->
                match Ir.Fn.kind fn v with
                | Phi p ->
                    p.inputs <-
                      List.map (fun (pb, pv) -> if pb = s then (b, pv) else (pb, pv)) p.inputs
                | _ -> ())
              (Ir.Fn.block fn succ).instrs)
          (Ir.Fn.succs_of_term sblk.term);
        sblk.instrs <- [];
        Ir.Fn.delete_block fn s;
        progress := true;
        changed := true
    | _ -> ())
  done;
  !changed

let cleanup (fn : fn) : bool =
  let a = remove_unreachable fn in
  let b = remove_trivial_phis fn in
  let c = merge_blocks fn in
  a || b || c
