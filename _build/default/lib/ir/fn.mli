(** Function bodies: construction, mutation and traversal.

    Blocks and instructions live in dense id-indexed stores; deleting an
    entity leaves a tombstone and ids are never reused within a function.
    The SSA dominance invariant is checked by {!Verify}, not here. *)

open Types

val create : fname:string -> param_tys:ty array -> rty:ty -> fn
(** A fresh function with no blocks; set [entry] after adding one. *)

(** {1 Access} *)

val instr : fn -> vid -> instr
(** @raise Invalid_argument on a dead or unknown id. *)

val kind : fn -> vid -> instr_kind

val block : fn -> bid -> block
(** @raise Invalid_argument on a dead or unknown id. *)

val block_live : fn -> bid -> bool
val instr_live : fn -> vid -> bool
val term : fn -> bid -> terminator

(** {1 Construction and mutation} *)

val add_block : fn -> bid
val fresh_instr : fn -> instr_kind -> instr

val add_block_at : fn -> bid -> unit
(** Id-preserving block creation (textual IR parser); pads intermediate
    slots with tombstones.
    @raise Invalid_argument when the id is already live. *)

val add_instr_at : fn -> vid -> instr_kind -> unit
(** Id-preserving instruction creation; the instruction is not placed in
    any block.
    @raise Invalid_argument when the id is already live. *)

val append : fn -> bid -> instr_kind -> vid
(** Appends a new instruction at the end of the block (before the
    terminator, which is stored separately). *)

val prepend : fn -> bid -> instr_kind -> vid
(** Inserts at the start of the block, after any phis — the right position
    for a new phi. *)

val insert_before : fn -> before:vid -> instr_kind -> vid
(** Inserts a new instruction immediately before [before] in its block.
    @raise Invalid_argument if [before] is not placed in any block. *)

val set_term : fn -> bid -> terminator -> unit

val delete_instr : fn -> vid -> unit
(** Removes the instruction from its block and tombstones it. Uses are not
    rewritten — callers must have replaced them. *)

val delete_block : fn -> bid -> unit
(** Tombstones the block and every instruction it contains. *)

val replace_uses : fn -> old_v:vid -> new_v:vid -> unit
(** Rewrites every use of [old_v] — instruction operands, phi inputs, If
    conditions and Return values — to [new_v]. *)

(** {1 Traversal} *)

val succs_of_term : terminator -> bid list
val succs : fn -> bid -> bid list
val iter_blocks : (block -> unit) -> fn -> unit
val iter_instrs : (instr -> unit) -> fn -> unit
val fold_blocks : ('acc -> block -> 'acc) -> 'acc -> fn -> 'acc
val block_ids : fn -> bid list

val preds : fn -> (bid, bid list) Hashtbl.t
(** Predecessor map over live blocks, recomputed from terminators. *)

val rpo : fn -> bid list
(** Reverse postorder over blocks reachable from the entry. *)

val reachable : fn -> (bid, unit) Hashtbl.t

val calls : fn -> instr list
(** Live call instructions, in block order. *)

(** {1 Metrics and copying} *)

val size : fn -> int
(** The paper's |ir| metric: live instructions plus one per block
    terminator. *)

val param_ty : fn -> int -> ty
(** The (possibly specialization-refined) type of parameter [i]. *)

val result_ty : fn -> instr_kind -> ty

val copy : fn -> fn
(** Deep copy with fresh stores; instruction and block ids (and therefore
    profile site keys) are preserved. *)
