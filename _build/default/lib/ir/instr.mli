(** Operations over individual IR instructions. *)

open Types

val operands : instr_kind -> vid list
(** The value operands of an instruction, in a stable order. *)

val map_operands : (vid -> vid) -> instr_kind -> instr_kind
(** [map_operands f k] rewrites every operand through [f], preserving
    structure. The result shares no mutable state with [k]. *)

val is_pure : instr_kind -> bool
(** Pure instructions depend only on their operands: eligible for value
    numbering. Loads are not pure (memory may change between them). *)

val is_removable : instr_kind -> bool
(** May the instruction be deleted when its result is unused? Pure
    instructions, allocations, and loads (a dead load only drops a
    potential trap). *)

val has_side_effect : instr_kind -> bool
(** [not is_removable]: calls, stores and observable intrinsics. *)

val result_ty : param_ty:(int -> ty) -> instr_kind -> ty
(** Static result type; [param_ty] supplies parameter types. *)

val is_call : instr_kind -> bool
val is_phi : instr_kind -> bool
