(** IR well-formedness checking: structural validity (live operands and
    targets, unique placement), phi shape (at block start, edges matching
    reachable predecessors), and the SSA dominance invariant. Unreachable
    blocks are ignored. *)

exception Ill_formed of string

val check : Types.fn -> unit
(** @raise Ill_formed with a description of the first violation. *)

val check_exn : Types.fn -> unit
(** Alias of {!check}. *)

val is_well_formed : Types.fn -> bool

val check_program : Types.program -> (unit, string) result
(** Checks every method body; the error names the offending method. *)
