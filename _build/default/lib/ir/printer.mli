(** Human-readable IR dumps. {!Parse.parse_fn} reads this format back, so
    [pp_fn] output round-trips. *)

open Types

val pp_ty : Format.formatter -> ty -> unit
val ty_to_string : ty -> string
val pp_const : Format.formatter -> const -> unit
val binop_name : binop -> string
val unop_name : unop -> string
val intrinsic_name : intrinsic -> string
val pp_v : Format.formatter -> vid -> unit
val pp_b : Format.formatter -> bid -> unit
val pp_site : Format.formatter -> site -> unit
val pp_callee : Format.formatter -> callee -> unit
val pp_kind : Format.formatter -> instr_kind -> unit
val pp_term : Format.formatter -> terminator -> unit
val pp_fn : Format.formatter -> fn -> unit
val fn_to_string : fn -> string
val pp_program : Format.formatter -> program -> unit
val program_to_string : program -> string
