(* Human-readable IR dumps, used by error messages, tests and the CLI's
   --dump-ir flag. *)

open Types

let rec pp_ty ppf = function
  | Tint -> Fmt.string ppf "Int"
  | Tbool -> Fmt.string ppf "Bool"
  | Tunit -> Fmt.string ppf "Unit"
  | Tstring -> Fmt.string ppf "String"
  | Tarray t -> Fmt.pf ppf "Array[%a]" pp_ty t
  | Tobj c -> Fmt.pf ppf "obj#%d" c

let ty_to_string t = Fmt.str "%a" pp_ty t

let pp_const ppf = function
  | Cint n -> Fmt.int ppf n
  | Cbool b -> Fmt.bool ppf b
  | Cstring s -> Fmt.pf ppf "%S" s
  | Cunit -> Fmt.string ppf "()"
  | Cnull -> Fmt.string ppf "null"

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | Shl -> "shl" | Shr -> "shr" | Band -> "band" | Bor -> "bor" | Bxor -> "bxor"
  | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge" | Eq -> "eq" | Ne -> "ne"
  | Andb -> "and" | Orb -> "or" | Xorb -> "xor" | Eqb -> "eqb"

let unop_name = function Neg -> "neg" | Not -> "not"

let intrinsic_name = function
  | Iprint_int -> "print_int"
  | Iprint_str -> "print_str"
  | Iprint_bool -> "print_bool"
  | Istr_len -> "str_len"
  | Istr_get -> "str_get"
  | Istr_eq -> "str_eq"
  | Iabs -> "abs"
  | Imin -> "min"
  | Imax -> "max"

let pp_v ppf v = Fmt.pf ppf "v%d" v
let pp_b ppf b = Fmt.pf ppf "b%d" b
let pp_vs = Fmt.list ~sep:Fmt.comma pp_v

let pp_site ppf { sm; sidx } = Fmt.pf ppf "@m%d.%d" sm sidx

let pp_callee ppf = function
  | Direct m -> Fmt.pf ppf "direct m%d" m
  | Virtual sel -> Fmt.pf ppf "virtual %s" sel

let pp_kind ppf = function
  | Const c -> Fmt.pf ppf "const %a" pp_const c
  | Param i -> Fmt.pf ppf "param %d" i
  | Unop (op, a) -> Fmt.pf ppf "%s %a" (unop_name op) pp_v a
  | Binop (op, a, b) -> Fmt.pf ppf "%s %a, %a" (binop_name op) pp_v a pp_v b
  | Phi { ty; inputs } ->
      Fmt.pf ppf "phi:%a [%a]" pp_ty ty
        (Fmt.list ~sep:Fmt.comma (fun ppf (b, v) -> Fmt.pf ppf "%a: %a" pp_b b pp_v v))
        inputs
  | Call { callee; args; site; rty } ->
      Fmt.pf ppf "call %a(%a) : %a %a" pp_callee callee pp_vs args pp_ty rty pp_site site
  | New c -> Fmt.pf ppf "new obj#%d" c
  | GetField { obj; slot; fname; fty } ->
      Fmt.pf ppf "getfield %a.%s[%d] : %a" pp_v obj fname slot pp_ty fty
  | SetField { obj; slot; fname; value } ->
      Fmt.pf ppf "setfield %a.%s[%d] <- %a" pp_v obj fname slot pp_v value
  | NewArray { ety; len } -> Fmt.pf ppf "newarray %a[%a]" pp_ty ety pp_v len
  | ArrayGet { arr; idx; ety } ->
      Fmt.pf ppf "arrayget %a[%a] : %a" pp_v arr pp_v idx pp_ty ety
  | ArraySet { arr; idx; value } -> Fmt.pf ppf "arrayset %a[%a] <- %a" pp_v arr pp_v idx pp_v value
  | ArrayLen a -> Fmt.pf ppf "arraylen %a" pp_v a
  | TypeTest { obj; cls } -> Fmt.pf ppf "typetest %a is obj#%d" pp_v obj cls
  | Intrinsic (i, args) -> Fmt.pf ppf "%s(%a)" (intrinsic_name i) pp_vs args

let pp_term ppf = function
  | Goto b -> Fmt.pf ppf "goto %a" pp_b b
  | If { cond; tb; fb; site } -> Fmt.pf ppf "if %a then %a else %a %a" pp_v cond pp_b tb pp_b fb pp_site site
  | Return v -> Fmt.pf ppf "return %a" pp_v v
  | Unreachable -> Fmt.string ppf "unreachable"

let pp_fn ppf (fn : fn) =
  Fmt.pf ppf "@[<v>fn %s(%a) : %a  entry=%a@,"
    fn.fname
    (Fmt.array ~sep:Fmt.comma pp_ty) fn.param_tys
    pp_ty fn.rty pp_b fn.entry;
  Fn.iter_blocks
    (fun blk ->
      Fmt.pf ppf "%a:@," pp_b blk.b_id;
      List.iter
        (fun v -> Fmt.pf ppf "  %a = %a@," pp_v v pp_kind (Fn.kind fn v))
        blk.instrs;
      Fmt.pf ppf "  %a@," pp_term blk.term)
    fn;
  Fmt.pf ppf "@]"

let fn_to_string fn = Fmt.str "%a" pp_fn fn

let pp_program ppf (p : program) =
  Support.Vec.iter
    (fun (m : meth) ->
      match m.body with
      | Some fn -> Fmt.pf ppf "; m%d = %s@.%a@." m.m_id m.m_name pp_fn fn
      | None -> Fmt.pf ppf "; m%d = %s (abstract)@." m.m_id m.m_name)
    p.meths

let program_to_string p = Fmt.str "%a" pp_program p
