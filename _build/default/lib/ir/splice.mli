(** Inline substitution at the IR level: splicing a callee body into a
    caller at a call instruction. The call's SSA id is reused as the join
    phi over the callee's returns, so no use of the call result needs
    rewriting. Parameters are replaced by the call's arguments; profile
    site keys inside the callee copy are preserved. *)

open Types

type remap = {
  vmap : (vid, vid) Hashtbl.t;  (** callee vid -> caller vid *)
  bmap : (bid, bid) Hashtbl.t;  (** callee bid -> caller bid *)
  post : bid;                   (** the join block created in the caller *)
}

val inline_call : caller:fn -> call_vid:vid -> callee:fn -> remap
(** Destroys [callee]'s independence (its reachable content is copied; the
    argument itself is not mutated, but pass a fresh copy when the original
    must stay pristine — {!Fn.copy}).
    @raise Invalid_argument if [call_vid] is not a live call in [caller],
    or on arity mismatch. *)
