(* Natural-loop discovery from dominator-identified back edges.

   A back edge is an edge b -> h where h dominates b. The loop body of h is
   everything that reaches b without passing through h. Loop nesting depth
   per block feeds static frequency estimation and the inliner's loop-aware
   priorities; headers feed first-iteration peeling. *)

open Types

type loop = {
  header : bid;
  body : (bid, unit) Hashtbl.t;   (* includes the header *)
  back_edges : bid list;          (* sources of back edges into [header] *)
}

type t = {
  loops : loop list;
  depth : (bid, int) Hashtbl.t;   (* 0 outside any loop *)
}

let compute (fn : fn) : t =
  let doms = Dominators.compute fn in
  let preds = Fn.preds fn in
  let reachable = Fn.reachable fn in
  (* back edges grouped by header *)
  let by_header : (bid, bid list) Hashtbl.t = Hashtbl.create 8 in
  Fn.iter_blocks
    (fun blk ->
      if Hashtbl.mem reachable blk.b_id then
        List.iter
          (fun s ->
            if Hashtbl.mem reachable s && Dominators.dominates doms ~a:s ~b:blk.b_id then
              let old = try Hashtbl.find by_header s with Not_found -> [] in
              Hashtbl.replace by_header s (blk.b_id :: old))
          (Fn.succs fn blk.b_id))
    fn;
  let loops =
    Hashtbl.fold
      (fun header sources acc ->
        let body = Hashtbl.create 8 in
        Hashtbl.replace body header ();
        let rec pull b =
          if not (Hashtbl.mem body b) then begin
            Hashtbl.replace body b ();
            List.iter pull (try Hashtbl.find preds b with Not_found -> [])
          end
        in
        List.iter pull sources;
        { header; body; back_edges = sources } :: acc)
      by_header []
  in
  let depth = Hashtbl.create 16 in
  Fn.iter_blocks
    (fun blk ->
      let d =
        List.fold_left
          (fun acc l -> if Hashtbl.mem l.body blk.b_id then acc + 1 else acc)
          0 loops
      in
      Hashtbl.replace depth blk.b_id d)
    fn;
  { loops; depth }

let depth t b = try Hashtbl.find t.depth b with Not_found -> 0

let is_header t b = List.exists (fun l -> l.header = b) t.loops

let loop_of_header t b = List.find_opt (fun l -> l.header = b) t.loops
