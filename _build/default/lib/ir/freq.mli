(** Relative block-frequency estimation: the basis for the inliner's
    callsite frequency f(n). Profile-driven when execution counts exist,
    otherwise a static estimate (branch probability 0.5, ×{!loop_multiplier}
    per loop-nesting level). *)

open Types

val loop_multiplier : float

val static : fn -> (bid, float) Hashtbl.t
(** Entry-relative frequency per reachable block, structural estimate. *)

val profiled : fn -> counts:(bid -> float) -> (bid, float) Hashtbl.t
(** [counts b / counts entry] per block; falls back to {!static} when the
    entry was never observed. *)

val of_instr : fn -> (bid, float) Hashtbl.t -> vid -> float
(** Frequency of the block containing the instruction (0 if unplaced). *)
