lib/ir/fn.mli: Hashtbl Types
