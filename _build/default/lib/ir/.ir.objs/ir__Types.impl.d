lib/ir/types.ml: Hashtbl Support
