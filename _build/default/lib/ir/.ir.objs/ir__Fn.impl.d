lib/ir/fn.ml: Array Hashtbl Instr List Printf Support Types
