lib/ir/instr.ml: List Types
