lib/ir/dominators.mli: Types
