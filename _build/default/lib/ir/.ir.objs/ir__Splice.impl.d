lib/ir/splice.ml: Array Fn Hashtbl Instr List Printf Types
