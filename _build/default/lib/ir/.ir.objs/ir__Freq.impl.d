lib/ir/freq.ml: Fn Hashtbl List Loops Types
