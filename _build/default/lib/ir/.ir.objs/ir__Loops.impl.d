lib/ir/loops.ml: Dominators Fn Hashtbl List Types
