lib/ir/program.mli: Types
