lib/ir/parse.mli: Types
