lib/ir/splice.mli: Hashtbl Types
