lib/ir/verify.ml: Dominators Fmt Fn Hashtbl Instr List Printf Program String Types
