lib/ir/loops.mli: Hashtbl Types
