lib/ir/dominators.ml: Fn Hashtbl List Types
