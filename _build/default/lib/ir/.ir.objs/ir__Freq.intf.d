lib/ir/freq.mli: Hashtbl Types
