lib/ir/verify.mli: Types
