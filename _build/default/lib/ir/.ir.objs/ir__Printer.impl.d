lib/ir/printer.ml: Fmt Fn List Support Types
