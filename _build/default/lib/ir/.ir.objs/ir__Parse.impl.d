lib/ir/parse.ml: Array Fmt Fn List Option Printf Scanf String Types
