lib/ir/program.ml: Array Fn Hashtbl List Printf Support Types
