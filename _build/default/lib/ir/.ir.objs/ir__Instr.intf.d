lib/ir/instr.mli: Types
