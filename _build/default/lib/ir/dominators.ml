(* Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.
   Operates on reachable blocks only. *)

open Types

type t = {
  idom : (bid, bid) Hashtbl.t;  (* immediate dominator; entry maps to itself *)
  order : bid list;             (* reverse postorder *)
  index : (bid, int) Hashtbl.t; (* rpo index *)
}

let compute (fn : fn) : t =
  let order = Fn.rpo fn in
  let index = Hashtbl.create 16 in
  List.iteri (fun i b -> Hashtbl.replace index b i) order;
  let preds = Fn.preds fn in
  let idom = Hashtbl.create 16 in
  Hashtbl.replace idom fn.entry fn.entry;
  let intersect b1 b2 =
    let rec go f1 f2 =
      if f1 = f2 then f1
      else
        let i1 = Hashtbl.find index f1 and i2 = Hashtbl.find index f2 in
        if i1 > i2 then go (Hashtbl.find idom f1) f2
        else go f1 (Hashtbl.find idom f2)
    in
    go b1 b2
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> fn.entry then begin
          let ps =
            (try Hashtbl.find preds b with Not_found -> [])
            |> List.filter (fun x -> Hashtbl.mem index x)
          in
          let processed = List.filter (fun x -> Hashtbl.mem idom x) ps in
          match processed with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if Hashtbl.find_opt idom b <> Some new_idom then begin
                Hashtbl.replace idom b new_idom;
                changed := true
              end
        end)
      order
  done;
  { idom; order; index }

let idom t b = if b = -1 then None else Hashtbl.find_opt t.idom b

(* Does [a] dominate [b]? Walks the idom chain from [b] to the entry. *)
let dominates t ~(a : bid) ~(b : bid) : bool =
  let rec up x =
    if x = a then true
    else
      match Hashtbl.find_opt t.idom x with
      | Some parent when parent <> x -> up parent
      | _ -> false
  in
  up b

(* Children in the dominator tree. *)
let children t (b : bid) : bid list =
  Hashtbl.fold
    (fun child parent acc -> if parent = b && child <> b then child :: acc else acc)
    t.idom []
  |> List.sort compare

let rpo t = t.order
