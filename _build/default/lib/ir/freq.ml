(* Relative block-frequency estimation.

   The inliner's callsite frequency f(n) (paper, Section IV) is the
   frequency of the block containing the callsite relative to one entry of
   the enclosing method. Two sources:

   - profiled: the interpreter records per-block execution counts; the
     relative frequency is count(b)/count(entry). This mirrors the JVM
     branch/backedge profile information Graal consumes.
   - static: when a method was never interpreted (e.g. discovered only via
     expansion), estimate by propagating branch probability 0.5 along
     acyclic edges and multiplying by a loop factor per nesting depth.

   Copies of a method's IR preserve block ids, so profile lookups keyed by
   (method, block) remain valid on the specialized copies the call tree
   holds. *)

open Types

let loop_multiplier = 8.0

let static (fn : fn) : (bid, float) Hashtbl.t =
  let loops = Loops.compute fn in
  let preds = Fn.preds fn in
  let order = Fn.rpo fn in
  let index = Hashtbl.create 16 in
  List.iteri (fun i b -> Hashtbl.replace index b i) order;
  (* acyclic propagation: ignore edges that go backwards in RPO *)
  let freq = Hashtbl.create 16 in
  List.iter
    (fun b ->
      let f =
        if b = fn.entry then 1.0
        else
          (try Hashtbl.find preds b with Not_found -> [])
          |> List.filter (fun p -> Hashtbl.mem index p)
          |> List.fold_left
               (fun acc p ->
                 let back = Hashtbl.find index p >= Hashtbl.find index b in
                 if back then acc
                 else
                   let pf = try Hashtbl.find freq p with Not_found -> 0.0 in
                   let prob =
                     match Fn.term fn p with
                     | If _ -> 0.5
                     | _ -> 1.0
                   in
                   acc +. (pf *. prob))
               0.0
      in
      Hashtbl.replace freq b f)
    order;
  (* amplify by loop nesting *)
  List.iter
    (fun b ->
      let d = Loops.depth loops b in
      if d > 0 then
        Hashtbl.replace freq b
          ((try Hashtbl.find freq b with Not_found -> 0.0)
          *. (loop_multiplier ** float_of_int d)))
    order;
  freq

(* [profiled fn ~counts] uses per-block execution counts when the entry has
   been observed; falls back to [static] otherwise. *)
let profiled (fn : fn) ~(counts : bid -> float) : (bid, float) Hashtbl.t =
  let entry_count = counts fn.entry in
  if entry_count <= 0.0 then static fn
  else begin
    let freq = Hashtbl.create 16 in
    Fn.iter_blocks
      (fun blk -> Hashtbl.replace freq blk.b_id (counts blk.b_id /. entry_count))
      fn;
    freq
  end

(* Convenience: frequency of the block containing instruction [v]. *)
let of_instr (fn : fn) (freqs : (bid, float) Hashtbl.t) (v : vid) : float =
  let result = ref 0.0 in
  Fn.iter_blocks
    (fun blk ->
      if List.mem v blk.instrs then
        result := (try Hashtbl.find freqs blk.b_id with Not_found -> 0.0))
    fn;
  !result
