(* IR well-formedness checker.

   Run after every transformation in tests (and behind a debug flag in the
   engine). Checks:
   - structural: operands and branch targets refer to live entities; block
     instruction lists mention only live instructions, each exactly once
     across the whole function.
   - phi shape: phis appear at the start of their block; their input edges
     exactly match the block's reachable predecessors.
   - SSA dominance: each non-phi use is dominated by its definition; a phi
     input is dominated along its incoming edge. *)

open Types

exception Ill_formed of string

let fail fmt = Fmt.kstr (fun s -> raise (Ill_formed s)) fmt

let check (fn : fn) : unit =
  if not (Fn.block_live fn fn.entry) then fail "entry block b%d is dead" fn.entry;
  (* validate all terminator targets up front: reachability and dominator
     computations below would crash on dangling edges *)
  Fn.iter_blocks
    (fun blk ->
      List.iter
        (fun s ->
          if not (Fn.block_live fn s) then
            fail "terminator of b%d targets dead block b%d" blk.b_id s)
        (Fn.succs_of_term blk.term))
    fn;
  (* def_block: vid -> bid, and uniqueness of placement *)
  let def_block = Hashtbl.create 64 in
  Fn.iter_blocks
    (fun blk ->
      List.iter
        (fun v ->
          if not (Fn.instr_live fn v) then
            fail "block b%d lists dead instruction v%d" blk.b_id v;
          if Hashtbl.mem def_block v then
            fail "instruction v%d appears in more than one block" v;
          Hashtbl.replace def_block v blk.b_id)
        blk.instrs)
    fn;
  let reachable = Fn.reachable fn in
  let preds = Fn.preds fn in
  let doms = Dominators.compute fn in
  (* instruction-position index within its block, for same-block dominance *)
  let pos = Hashtbl.create 64 in
  Fn.iter_blocks
    (fun blk -> List.iteri (fun i v -> Hashtbl.replace pos v i) blk.instrs)
    fn;
  let check_target what b =
    if not (Fn.block_live fn b) then fail "%s targets dead block b%d" what b
  in
  let value_dominates_use ~(def : vid) ~(use_block : bid) ~(use_pos : int) =
    match Hashtbl.find_opt def_block def with
    | None -> fail "use of unplaced instruction v%d" def
    | Some db ->
        if db = use_block then begin
          let dp = Hashtbl.find pos def in
          if dp >= use_pos then
            fail "v%d used at position %d of b%d before its definition at %d"
              def use_pos use_block dp
        end
        else if not (Dominators.dominates doms ~a:db ~b:use_block) then
          fail "definition of v%d in b%d does not dominate use in b%d" def db use_block
  in
  Fn.iter_blocks
    (fun blk ->
      if Hashtbl.mem reachable blk.b_id then begin
        (* phis first *)
        let seen_non_phi = ref false in
        List.iteri
          (fun i v ->
            let k = Fn.kind fn v in
            (match k with
            | Phi { inputs; _ } ->
                if blk.b_id = fn.entry then
                  fail "phi v%d in the entry block (no incoming edge on first entry)" v;
                if !seen_non_phi then
                  fail "phi v%d appears after a non-phi in b%d" v blk.b_id;
                let ps =
                  (try Hashtbl.find preds blk.b_id with Not_found -> [])
                  |> List.filter (fun p -> Hashtbl.mem reachable p)
                  |> List.sort_uniq compare
                in
                let ins = List.map fst inputs |> List.sort_uniq compare in
                if ins <> ps then
                  fail "phi v%d in b%d has edges {%s} but predecessors are {%s}"
                    v blk.b_id
                    (String.concat "," (List.map string_of_int ins))
                    (String.concat "," (List.map string_of_int ps));
                List.iter
                  (fun (pred, pv) ->
                    if not (Fn.instr_live fn pv) then
                      fail "phi v%d input v%d is dead" v pv;
                    match Hashtbl.find_opt def_block pv with
                    | None -> fail "phi v%d input v%d unplaced" v pv
                    | Some db ->
                        if
                          Hashtbl.mem reachable pred
                          && not (Dominators.dominates doms ~a:db ~b:pred)
                        then
                          fail
                            "phi v%d input v%d (defined in b%d) does not dominate edge from b%d"
                            v pv db pred)
                  inputs
            | _ ->
                seen_non_phi := true;
                List.iter
                  (fun opnd ->
                    if not (Fn.instr_live fn opnd) then
                      fail "v%d uses dead operand v%d" v opnd;
                    value_dominates_use ~def:opnd ~use_block:blk.b_id ~use_pos:i)
                  (Instr.operands k));
            ())
          blk.instrs;
        (* terminator *)
        (match blk.term with
        | Goto b -> check_target (Printf.sprintf "goto in b%d" blk.b_id) b
        | If { cond; tb; fb; _ } ->
            check_target (Printf.sprintf "if in b%d" blk.b_id) tb;
            check_target (Printf.sprintf "if in b%d" blk.b_id) fb;
            if not (Fn.instr_live fn cond) then
              fail "if in b%d uses dead condition v%d" blk.b_id cond;
            value_dominates_use ~def:cond ~use_block:blk.b_id
              ~use_pos:(List.length blk.instrs)
        | Return v ->
            if not (Fn.instr_live fn v) then
              fail "return in b%d uses dead value v%d" blk.b_id v;
            value_dominates_use ~def:v ~use_block:blk.b_id
              ~use_pos:(List.length blk.instrs)
        | Unreachable -> ())
      end)
    fn

let check_exn = check

let is_well_formed fn =
  match check fn with () -> true | exception Ill_formed _ -> false

(* Checks every method body in a program; returns the first error. *)
let check_program (p : program) : (unit, string) result =
  let error = ref None in
  Program.iter_meths
    (fun (m : meth) ->
      if !error = None then
        match m.body with
        | Some fn -> (
            try check fn
            with Ill_formed msg -> error := Some (Printf.sprintf "%s: %s" m.m_name msg))
        | None -> ())
    p;
  match !error with None -> Ok () | Some e -> Error e
