(* Operations over individual instructions. *)

open Types

let operands (k : instr_kind) : vid list =
  match k with
  | Const _ | Param _ | New _ -> []
  | Unop (_, a) -> [ a ]
  | Binop (_, a, b) -> [ a; b ]
  | Phi { inputs; _ } -> List.map snd inputs
  | Call { args; _ } -> args
  | GetField { obj; _ } -> [ obj ]
  | SetField { obj; value; _ } -> [ obj; value ]
  | NewArray { len; _ } -> [ len ]
  | ArrayGet { arr; idx; _ } -> [ arr; idx ]
  | ArraySet { arr; idx; value; _ } -> [ arr; idx; value ]
  | ArrayLen a -> [ a ]
  | TypeTest { obj; _ } -> [ obj ]
  | Intrinsic (_, args) -> args

(* Rewrites every operand through [f], preserving structure. *)
let map_operands (f : vid -> vid) (k : instr_kind) : instr_kind =
  match k with
  | Const _ | Param _ | New _ -> k
  | Unop (op, a) -> Unop (op, f a)
  | Binop (op, a, b) -> Binop (op, f a, f b)
  | Phi { ty; inputs } -> Phi { ty; inputs = List.map (fun (b, v) -> (b, f v)) inputs }
  | Call { callee; args; site; rty } -> Call { callee; args = List.map f args; site; rty }
  | GetField g -> GetField { g with obj = f g.obj }
  | SetField s -> SetField { s with obj = f s.obj; value = f s.value }
  | NewArray n -> NewArray { n with len = f n.len }
  | ArrayGet a -> ArrayGet { a with arr = f a.arr; idx = f a.idx }
  | ArraySet a -> ArraySet { arr = f a.arr; idx = f a.idx; value = f a.value }
  | ArrayLen a -> ArrayLen (f a)
  | TypeTest t -> TypeTest { t with obj = f t.obj }
  | Intrinsic (i, args) -> Intrinsic (i, List.map f args)

(* Pure instructions may be removed when unused and are eligible for value
   numbering. Loads ([GetField], [ArrayGet], [ArrayLen]) are *not* pure:
   they can trap on null/bounds and read mutable state. [New]/[NewArray]
   observe no state but have an identity; they are removable-when-unused
   but not numberable, so they get their own predicate. *)
let is_pure (k : instr_kind) : bool =
  match k with
  | Const _ | Param _ | Unop _ | Binop _ | Phi _ | TypeTest _ -> true
  | Intrinsic (i, _) -> (
      match i with
      | Istr_len | Istr_get | Istr_eq | Iabs | Imin | Imax -> true
      | Iprint_int | Iprint_str | Iprint_bool -> false)
  | Call _ | New _ | GetField _ | SetField _ | NewArray _ | ArrayGet _
  | ArraySet _ | ArrayLen _ ->
      false

(* May this instruction be deleted if its result is unused? Effect-free
   except for allocation, which is unobservable when the object is dead. *)
let is_removable (k : instr_kind) : bool =
  match k with
  | New _ | NewArray _ -> true
  | GetField _ | ArrayGet _ | ArrayLen _ ->
      (* Loads can trap (null receiver / bounds), but deleting a dead load
         only removes a potential trap, which our semantics treats as a
         program error anyway; removing them is standard and safe here. *)
      true
  | k -> is_pure k

let has_side_effect (k : instr_kind) : bool = not (is_removable k)

(* Result type of an instruction. [spec_tys] supplies parameter types;
   most kinds carry enough type information themselves. *)
let result_ty ~(param_ty : int -> ty) (k : instr_kind) : ty =
  match k with
  | Const (Cint _) -> Tint
  | Const (Cbool _) -> Tbool
  | Const (Cstring _) -> Tstring
  | Const Cunit -> Tunit
  | Const Cnull -> Tobj (-1)  (* bottom-ish object type; refined by inference *)
  | Param i -> param_ty i
  | Unop (Neg, _) -> Tint
  | Unop (Not, _) -> Tbool
  | Binop (op, _, _) -> (
      match op with
      | Add | Sub | Mul | Div | Rem | Shl | Shr | Band | Bor | Bxor -> Tint
      | Lt | Le | Gt | Ge | Eq | Ne | Andb | Orb | Xorb | Eqb -> Tbool)
  | Phi { ty; _ } -> ty
  | Call { rty; _ } -> rty
  | New c -> Tobj c
  | GetField { fty; _ } -> fty
  | SetField _ -> Tunit
  | NewArray { ety; _ } -> Tarray ety
  | ArrayGet { ety; _ } -> ety
  | ArraySet _ -> Tunit
  | ArrayLen _ -> Tint
  | TypeTest _ -> Tbool
  | Intrinsic (i, _) -> (
      match i with
      | Iprint_int | Iprint_str | Iprint_bool -> Tunit
      | Istr_len | Istr_get | Iabs | Imin | Imax -> Tint
      | Istr_eq -> Tbool)

let is_call (k : instr_kind) : bool =
  match k with Call _ -> true | _ -> false

let is_phi (k : instr_kind) : bool =
  match k with Phi _ -> true | _ -> false
