(* Inline substitution at the IR level.

   [inline_call ~caller ~call_vid ~callee] splices a copy of [callee]'s body
   into [caller] at the given call instruction:

     pre:  ... instrs before call        (original block, preds unchanged)
           goto callee_entry'
     callee blocks (fresh ids; Param i replaced by the call's i-th argument;
           every Return v becomes a goto to post)
     post: call_vid = phi [(ret_block, v); ...]   <- the call's id is REUSED
           ... instrs after the call
           original terminator

   Reusing the call's vid for the join phi means no use of the call result
   anywhere in the caller needs rewriting. Successor blocks' phi edges are
   renamed from the original block to [post] because the original
   terminator moved there.

   Returns the id remapping so the inliner can re-anchor call-tree children
   (callee-local callsite vids -> caller vids). *)

open Types

type remap = {
  vmap : (vid, vid) Hashtbl.t;  (* callee vid -> caller vid *)
  bmap : (bid, bid) Hashtbl.t;  (* callee bid -> caller bid *)
  post : bid;                   (* the join block in the caller *)
}

let inline_call ~(caller : fn) ~(call_vid : vid) ~(callee : fn) : remap =
  let call_args, call_block =
    let args = ref None and blk = ref None in
    Fn.iter_blocks
      (fun b -> if List.mem call_vid b.instrs then blk := Some b)
      caller;
    (match Fn.kind caller call_vid with
    | Call { args = a; _ } -> args := Some a
    | _ -> invalid_arg "Splice.inline_call: not a call instruction");
    match (!args, !blk) with
    | Some a, Some b -> (Array.of_list a, b)
    | _ -> invalid_arg "Splice.inline_call: call instruction not found in any block"
  in
  (* 1. Split the containing block. *)
  let post = Fn.add_block caller in
  let rec split acc = function
    | [] -> invalid_arg "Splice.inline_call: call vanished during split"
    | v :: rest when v = call_vid -> (List.rev acc, rest)
    | v :: rest -> split (v :: acc) rest
  in
  let before, after = split [] call_block.instrs in
  call_block.instrs <- before;
  let post_block = Fn.block caller post in
  post_block.instrs <- after;
  post_block.term <- call_block.term;
  (* successor phis now flow in via [post] *)
  List.iter
    (fun s ->
      let sb = Fn.block caller s in
      List.iter
        (fun v ->
          match Fn.kind caller v with
          | Phi p ->
              p.inputs <-
                List.map
                  (fun (pb, pv) -> if pb = call_block.b_id then (post, pv) else (pb, pv))
                  p.inputs
          | _ -> ())
        sb.instrs)
    (Fn.succs_of_term post_block.term);
  (* 2. Copy callee blocks and instructions (reachable only). *)
  let reachable = Fn.reachable callee in
  let bmap = Hashtbl.create 16 in
  let vmap = Hashtbl.create 64 in
  Fn.iter_blocks
    (fun b ->
      if Hashtbl.mem reachable b.b_id then
        Hashtbl.replace bmap b.b_id (Fn.add_block caller))
    callee;
  (* pass 1: allocate ids; params map directly to arguments *)
  Fn.iter_blocks
    (fun b ->
      if Hashtbl.mem reachable b.b_id then
        List.iter
          (fun v ->
            match Fn.kind callee v with
            | Param i ->
                if i >= Array.length call_args then
                  invalid_arg "Splice.inline_call: arity mismatch";
                Hashtbl.replace vmap v call_args.(i)
            | k ->
                let fresh = Fn.fresh_instr caller k (* placeholder kind *) in
                Hashtbl.replace vmap v fresh.id)
          b.instrs)
    callee;
  let mv v =
    match Hashtbl.find_opt vmap v with
    | Some v' -> v'
    | None -> invalid_arg (Printf.sprintf "Splice.inline_call: unmapped callee value v%d" v)
  in
  let mb b =
    match Hashtbl.find_opt bmap b with
    | Some b' -> b'
    | None -> invalid_arg (Printf.sprintf "Splice.inline_call: unmapped callee block b%d" b)
  in
  (* pass 2: fill kinds with remapped operands and build block contents *)
  let returns = ref [] in
  Fn.iter_blocks
    (fun b ->
      if Hashtbl.mem reachable b.b_id then begin
        let nb = Fn.block caller (mb b.b_id) in
        nb.instrs <-
          List.filter_map
            (fun v ->
              match Fn.kind callee v with
              | Param _ -> None
              | k ->
                  let nk =
                    match k with
                    | Phi { ty; inputs } ->
                        Phi
                          {
                            ty;
                            inputs =
                              List.filter_map
                                (fun (pb, pv) ->
                                  if Hashtbl.mem reachable pb then Some (mb pb, mv pv)
                                  else None)
                                inputs;
                          }
                    | k -> Instr.map_operands mv k
                  in
                  (Fn.instr caller (mv v)).kind <- nk;
                  Some (mv v))
            b.instrs;
        nb.term <-
          (match b.term with
          | Goto t -> Goto (mb t)
          | If { cond; site; tb; fb } -> If { cond = mv cond; site; tb = mb tb; fb = mb fb }
          | Return v ->
              returns := (nb.b_id, mv v) :: !returns;
              Goto post
          | Unreachable -> Unreachable)
      end)
    callee;
  (* 3. Wire control into the callee and materialize the join phi. *)
  call_block.term <- Goto (mb callee.entry);
  let rty =
    match (Fn.instr caller call_vid).kind with
    | Call { rty; _ } -> rty
    | _ -> assert false
  in
  (Fn.instr caller call_vid).kind <- Phi { ty = rty; inputs = List.rev !returns };
  post_block.instrs <- call_vid :: post_block.instrs;
  { vmap; bmap; post }
