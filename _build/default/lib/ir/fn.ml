(* Function bodies: construction, mutation and traversal.

   Invariants maintained by this module:
   - [blocks]/[instrs] are dense id-indexed stores; a [None] slot is a
     deleted entity and ids are never reused within a function.
   - Every vid in [block.instrs] refers to a live instruction.
   The SSA dominance invariant is checked separately by [Verify]. *)

open Types
module Vec = Support.Vec

let create ~fname ~param_tys ~rty =
  {
    fname;
    param_tys;
    spec_tys = Array.copy param_tys;
    rty = (rty : ty);
    entry = -1;
    blocks = Vec.create ~dummy:None;
    instrs = Vec.create ~dummy:None;
  }

let instr fn (v : vid) : instr =
  match Vec.get fn.instrs v with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Fn.instr: dead instruction v%d in %s" v fn.fname)

let kind fn v = (instr fn v).kind

let block fn (b : bid) : block =
  match Vec.get fn.blocks b with
  | Some blk -> blk
  | None -> invalid_arg (Printf.sprintf "Fn.block: dead block b%d in %s" b fn.fname)

let block_live fn b =
  b >= 0 && b < Vec.length fn.blocks && Vec.get fn.blocks b <> None

let instr_live fn v =
  v >= 0 && v < Vec.length fn.instrs && Vec.get fn.instrs v <> None

let add_block fn : bid =
  let b = Vec.length fn.blocks in
  Vec.push fn.blocks (Some { b_id = b; instrs = []; term = Unreachable });
  b

let fresh_instr fn (k : instr_kind) : instr =
  let v = Vec.length fn.instrs in
  let i = { id = v; kind = k } in
  Vec.push fn.instrs (Some i);
  i

(* Id-preserving constructors, used by the textual IR parser: intermediate
   slots are padded with tombstones. *)
let add_block_at fn (b : bid) : unit =
  while Vec.length fn.blocks <= b do
    Vec.push fn.blocks None
  done;
  if Vec.get fn.blocks b <> None then
    invalid_arg (Printf.sprintf "Fn.add_block_at: b%d already exists" b);
  Vec.set fn.blocks b (Some { b_id = b; instrs = []; term = Unreachable })

let add_instr_at fn (v : vid) (k : instr_kind) : unit =
  while Vec.length fn.instrs <= v do
    Vec.push fn.instrs None
  done;
  if Vec.get fn.instrs v <> None then
    invalid_arg (Printf.sprintf "Fn.add_instr_at: v%d already exists" v);
  Vec.set fn.instrs v (Some { id = v; kind = k })

(* Appends a new instruction at the end of [b] and returns its id. *)
let append fn (b : bid) (k : instr_kind) : vid =
  let i = fresh_instr fn k in
  let blk = block fn b in
  blk.instrs <- blk.instrs @ [ i.id ];
  i.id

(* Inserts a new instruction at the *start* of [b] (after any phis). *)
let prepend fn (b : bid) (k : instr_kind) : vid =
  let i = fresh_instr fn k in
  let blk = block fn b in
  let phis, rest =
    List.partition (fun v -> Instr.is_phi (kind fn v)) blk.instrs
  in
  blk.instrs <- phis @ (i.id :: rest);
  i.id

let set_term fn (b : bid) (t : terminator) = (block fn b).term <- t

let term fn (b : bid) = (block fn b).term

let succs_of_term = function
  | Goto b -> [ b ]
  | If { tb; fb; _ } -> [ tb; fb ]
  | Return _ | Unreachable -> []

let succs fn b = succs_of_term (term fn b)

let delete_instr fn (v : vid) =
  if instr_live fn v then begin
    Vec.iter
      (function
        | Some (blk : block) -> blk.instrs <- List.filter (fun x -> x <> v) blk.instrs
        | None -> ())
      fn.blocks;
    Vec.set fn.instrs v None
  end

let delete_block fn (b : bid) =
  if block_live fn b then begin
    let blk = block fn b in
    List.iter (fun v -> Vec.set fn.instrs v None) blk.instrs;
    Vec.set fn.blocks b None
  end

let iter_blocks f fn =
  Vec.iter (function Some blk -> f blk | None -> ()) fn.blocks

let iter_instrs f fn =
  iter_blocks (fun blk -> List.iter (fun v -> f (instr fn v)) blk.instrs) fn

let fold_blocks f acc fn =
  Vec.fold_left (fun acc s -> match s with Some blk -> f acc blk | None -> acc) acc fn.blocks

let block_ids fn = fold_blocks (fun acc blk -> blk.b_id :: acc) [] fn |> List.rev

(* Inserts a new instruction immediately before [before] in its block. *)
let insert_before fn ~(before : vid) (k : instr_kind) : vid =
  let i = fresh_instr fn k in
  let placed = ref false in
  iter_blocks
    (fun blk ->
      if (not !placed) && List.mem before blk.instrs then begin
        blk.instrs <-
          List.concat_map (fun v -> if v = before then [ i.id; v ] else [ v ]) blk.instrs;
        placed := true
      end)
    fn;
  if not !placed then
    invalid_arg (Printf.sprintf "Fn.insert_before: v%d not found in any block" before);
  i.id

(* Predecessor map, recomputed on demand. *)
let preds fn : (bid, bid list) Hashtbl.t =
  let t = Hashtbl.create 16 in
  iter_blocks (fun blk -> Hashtbl.replace t blk.b_id []) fn;
  iter_blocks
    (fun blk ->
      List.iter
        (fun s ->
          let old = try Hashtbl.find t s with Not_found -> [] in
          Hashtbl.replace t s (blk.b_id :: old))
        (succs_of_term blk.term))
    fn;
  Hashtbl.iter (fun k v -> Hashtbl.replace t k (List.rev v)) t;
  t

(* Reverse postorder over reachable blocks, entry first. *)
let rpo fn : bid list =
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec go b =
    if not (Hashtbl.mem visited b) then begin
      Hashtbl.add visited b ();
      List.iter go (succs fn b);
      order := b :: !order
    end
  in
  go fn.entry;
  !order

let reachable fn : (bid, unit) Hashtbl.t =
  let t = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.add t b ()) (rpo fn);
  t

(* Number of live instructions — the paper's |ir(n)| size metric. Block
   terminators count 1 each so that control flow is not free. *)
let size fn =
  let n = ref 0 in
  iter_blocks
    (fun blk ->
      n := !n + List.length blk.instrs + 1)
    fn;
  !n

(* Replaces every use of [old_v] with [new_v], in instruction operands and
   in terminators (If conditions and Return values). *)
let replace_uses fn ~(old_v : vid) ~(new_v : vid) =
  let subst v = if v = old_v then new_v else v in
  iter_instrs (fun i -> i.kind <- Instr.map_operands subst i.kind) fn;
  iter_blocks
    (fun blk ->
      match blk.term with
      | If ({ cond; _ } as r) when cond = old_v -> blk.term <- If { r with cond = new_v }
      | Return v when v = old_v -> blk.term <- Return new_v
      | _ -> ())
    fn

(* All live call instructions, in block order. *)
let calls fn : instr list =
  let acc = ref [] in
  iter_instrs (fun i -> if Instr.is_call i.kind then acc := i :: !acc) fn;
  List.rev !acc

let param_ty fn i =
  if i < Array.length fn.spec_tys then fn.spec_tys.(i)
  else invalid_arg "Fn.param_ty: parameter index out of range"

let result_ty fn (k : instr_kind) = Instr.result_ty ~param_ty:(param_ty fn) k

(* Deep copy with fresh tables. Instruction and block ids are preserved
   (including dead slots), so site keys and operand references stay valid. *)
let copy fn =
  {
    fname = fn.fname;
    param_tys = Array.copy fn.param_tys;
    spec_tys = Array.copy fn.spec_tys;
    rty = fn.rty;
    entry = fn.entry;
    blocks =
      (let v = Vec.create ~dummy:None in
       Vec.iter
         (fun (s : block option) ->
           Vec.push v
             (match s with
             | Some blk -> Some { blk with instrs = blk.instrs }
             | None -> None))
         fn.blocks;
       v);
    instrs =
      (let v = Vec.create ~dummy:None in
       Vec.iter
         (fun s ->
           Vec.push v
             (match s with
             | Some i -> Some { i with kind = Instr.map_operands (fun x -> x) i.kind }
             | None -> None))
         fn.instrs;
       v);
  }
