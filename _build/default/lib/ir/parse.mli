(** Textual IR parser: reads exactly what {!Printer.pp_fn} emits, so IR
    round-trips through text — for IR-level test cases, for diffing
    compiled code, and for replaying `selvm compile` dumps. Instruction and
    block ids in the text are preserved. *)

exception Ir_parse_error of string

val parse_fn : string -> Types.fn
(** @raise Ir_parse_error on malformed input. The result is structurally
    parsed, not verified — run {!Verify.check} for SSA validity. *)
