(** Natural-loop discovery from dominator-identified back edges. *)

open Types

type loop = {
  header : bid;
  body : (bid, unit) Hashtbl.t;  (** includes the header *)
  back_edges : bid list;         (** sources of back edges into [header] *)
}

type t = {
  loops : loop list;
  depth : (bid, int) Hashtbl.t;  (** nesting depth; 0 outside any loop *)
}

val compute : fn -> t
val depth : t -> bid -> int
val is_header : t -> bid -> bool
val loop_of_header : t -> bid -> loop option
