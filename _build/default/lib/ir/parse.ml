(* Textual IR parser: reads exactly what {!Printer.pp_fn} emits, so IR can
   round-trip through text — for IR-level test cases, for diffing compiled
   code, and for replaying dumps from `selvm compile`.

   The format is whitespace-insensitive apart from token boundaries (the
   printer wraps long argument lists), so parsing is token-based. Ids in
   the text are preserved exactly. *)

open Types

exception Ir_parse_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Ir_parse_error s)) fmt

(* ---- tokenizer ---- *)

type token =
  | Tword of string     (* identifiers, keywords, v3 / b2 / m4-style refs *)
  | Tint of int
  | Tstr of string      (* an OCaml-escaped string literal *)
  | Tpunct of char      (* ( ) [ ] , : . = < - # @ *)
  | Teof

let tokenize (src : string) : token list =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let is_word c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '$' || c = '\''
  in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '"' then begin
      (* OCaml-escaped string: use Scanf to decode *)
      let j = ref (!i + 1) in
      let ended = ref false in
      while (not !ended) && !j < n do
        if src.[!j] = '\\' then j := !j + 2
        else if src.[!j] = '"' then ended := true
        else incr j
      done;
      if not !ended then fail "unterminated string literal";
      let lit = String.sub src !i (!j - !i + 1) in
      let decoded = Scanf.sscanf lit "%S" (fun s -> s) in
      toks := Tstr decoded :: !toks;
      i := !j + 1
    end
    else if (c >= '0' && c <= '9') || (c = '-' && !i + 1 < n && src.[!i + 1] >= '0' && src.[!i + 1] <= '9')
    then begin
      let j = ref (!i + 1) in
      while !j < n && src.[!j] >= '0' && src.[!j] <= '9' do
        incr j
      done;
      toks := Tint (int_of_string (String.sub src !i (!j - !i))) :: !toks;
      i := !j
    end
    else if is_word c then begin
      let j = ref !i in
      while !j < n && is_word src.[!j] do
        incr j
      done;
      toks := Tword (String.sub src !i (!j - !i)) :: !toks;
      i := !j
    end
    else begin
      toks := Tpunct c :: !toks;
      incr i
    end
  done;
  List.rev (Teof :: !toks)

(* ---- parser state ---- *)

type state = { mutable toks : token list }

let peek st = match st.toks with t :: _ -> t | [] -> Teof

let next st =
  match st.toks with
  | t :: rest ->
      st.toks <- rest;
      t
  | [] -> Teof

let token_str = function
  | Tword w -> w
  | Tint n -> string_of_int n
  | Tstr s -> Printf.sprintf "%S" s
  | Tpunct c -> String.make 1 c
  | Teof -> "<eof>"

let expect_word st w =
  match next st with
  | Tword w' when w' = w -> ()
  | t -> fail "expected '%s', found '%s'" w (token_str t)

let expect_punct st c =
  match next st with
  | Tpunct c' when c' = c -> ()
  | t -> fail "expected '%c', found '%s'" c (token_str t)

let at_punct st c = match peek st with Tpunct c' -> c' = c | _ -> false

let int_tok st =
  match next st with
  | Tint n -> n
  | t -> fail "expected an integer, found '%s'" (token_str t)

(* v3 / b2 / m5 refs come out of the tokenizer as single words; negative
   site indices appear as 'm4' '.' '-7' (the '-' glued to the int). *)
let ref_tok st (prefix : char) : int =
  match next st with
  | Tword w
    when String.length w > 1
         && w.[0] = prefix
         && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub w 1 (String.length w - 1))
    -> int_of_string (String.sub w 1 (String.length w - 1))
  | t -> fail "expected a %c-reference, found '%s'" prefix (token_str t)

let vref st = ref_tok st 'v'
let bref st = ref_tok st 'b'
let mref st = ref_tok st 'm'

(* ---- grammar pieces ---- *)

(* the token constructor [Tint] shadows [Types.Tint]; qualify the type *)
let rec parse_ty st : ty =
  match next st with
  | Tword "Int" -> Types.Tint
  | Tword "Bool" -> Tbool
  | Tword "Unit" -> Tunit
  | Tword "String" -> Tstring
  | Tword "Array" ->
      expect_punct st '[';
      let t = parse_ty st in
      expect_punct st ']';
      Tarray t
  | Tword "obj" ->
      expect_punct st '#';
      (* class ids may be negative (the null type) *)
      Tobj (int_tok st)
  | t -> fail "expected a type, found '%s'" (token_str t)

let parse_vlist st : vid list =
  expect_punct st '(';
  if at_punct st ')' then begin
    expect_punct st ')';
    []
  end
  else begin
    let acc = ref [ vref st ] in
    while at_punct st ',' do
      expect_punct st ',';
      acc := vref st :: !acc
    done;
    expect_punct st ')';
    List.rev !acc
  end

let parse_site st : site =
  expect_punct st '@';
  let sm = mref st in
  expect_punct st '.';
  let sidx = int_tok st in
  { sm; sidx }

let parse_const st : const =
  match next st with
  | Tint n -> Cint n
  | Tword "true" -> Cbool true
  | Tword "false" -> Cbool false
  | Tword "null" -> Cnull
  | Tstr s -> Cstring s
  | Tpunct '(' ->
      expect_punct st ')';
      Cunit
  | t -> fail "expected a constant, found '%s'" (token_str t)

let binop_of_name = function
  | "add" -> Some Add | "sub" -> Some Sub | "mul" -> Some Mul | "div" -> Some Div
  | "rem" -> Some Rem | "shl" -> Some Shl | "shr" -> Some Shr | "band" -> Some Band
  | "bor" -> Some Bor | "bxor" -> Some Bxor | "lt" -> Some Lt | "le" -> Some Le
  | "gt" -> Some Gt | "ge" -> Some Ge | "eq" -> Some Eq | "ne" -> Some Ne
  | "and" -> Some Andb | "or" -> Some Orb | "xor" -> Some Xorb | "eqb" -> Some Eqb
  | _ -> None

let intrinsic_of_name = function
  | "print_int" -> Some Iprint_int
  | "print_str" -> Some Iprint_str
  | "print_bool" -> Some Iprint_bool
  | "str_len" -> Some Istr_len
  | "str_get" -> Some Istr_get
  | "str_eq" -> Some Istr_eq
  | "abs" -> Some Iabs
  | "min" -> Some Imin
  | "max" -> Some Imax
  | _ -> None

(* field access suffix: vN.name[slot] *)
let parse_field_ref st : vid * string * int =
  let obj = vref st in
  expect_punct st '.';
  let fname = match next st with Tword w -> w | t -> fail "field name, found '%s'" (token_str t) in
  expect_punct st '[';
  let slot = int_tok st in
  expect_punct st ']';
  (obj, fname, slot)

let parse_kind st : instr_kind =
  match next st with
  | Tword "const" -> Const (parse_const st)
  | Tword "param" -> Param (int_tok st)
  | Tword "neg" -> Unop (Neg, vref st)
  | Tword "not" -> Unop (Not, vref st)
  | Tword "phi" ->
      expect_punct st ':';
      let ty = parse_ty st in
      expect_punct st '[';
      let inputs = ref [] in
      if not (at_punct st ']') then begin
        let one () =
          let b = bref st in
          expect_punct st ':';
          let v = vref st in
          inputs := (b, v) :: !inputs
        in
        one ();
        while at_punct st ',' do
          expect_punct st ',';
          one ()
        done
      end;
      expect_punct st ']';
      Phi { ty; inputs = List.rev !inputs }
  | Tword "call" ->
      let callee =
        match next st with
        | Tword "direct" -> Direct (mref st)
        | Tword "virtual" -> (
            match next st with
            | Tword sel -> Virtual sel
            | t -> fail "selector, found '%s'" (token_str t))
        | t -> fail "'direct' or 'virtual', found '%s'" (token_str t)
      in
      let args = parse_vlist st in
      expect_punct st ':';
      let rty = parse_ty st in
      let site = parse_site st in
      Call { callee; args; site; rty }
  | Tword "new" ->
      expect_word st "obj";
      expect_punct st '#';
      New (int_tok st)
  | Tword "getfield" ->
      let obj, fname, slot = parse_field_ref st in
      expect_punct st ':';
      let fty = parse_ty st in
      GetField { obj; slot; fname; fty }
  | Tword "setfield" ->
      let obj, fname, slot = parse_field_ref st in
      expect_punct st '<';
      expect_punct st '-';
      SetField { obj; slot; fname; value = vref st }
  | Tword "newarray" ->
      let ety = parse_ty st in
      expect_punct st '[';
      let len = vref st in
      expect_punct st ']';
      NewArray { ety; len }
  | Tword "arrayget" ->
      let arr = vref st in
      expect_punct st '[';
      let idx = vref st in
      expect_punct st ']';
      expect_punct st ':';
      let ety = parse_ty st in
      ArrayGet { arr; idx; ety }
  | Tword "arrayset" ->
      let arr = vref st in
      expect_punct st '[';
      let idx = vref st in
      expect_punct st ']';
      expect_punct st '<';
      expect_punct st '-';
      ArraySet { arr; idx; value = vref st }
  | Tword "arraylen" -> ArrayLen (vref st)
  | Tword "typetest" ->
      let obj = vref st in
      expect_word st "is";
      expect_word st "obj";
      expect_punct st '#';
      TypeTest { obj; cls = int_tok st }
  | Tword w when binop_of_name w <> None ->
      let op = Option.get (binop_of_name w) in
      let a = vref st in
      expect_punct st ',';
      let b = vref st in
      Binop (op, a, b)
  | Tword w when intrinsic_of_name w <> None ->
      Intrinsic (Option.get (intrinsic_of_name w), parse_vlist st)
  | t -> fail "expected an instruction, found '%s'" (token_str t)

let parse_term st : terminator =
  match next st with
  | Tword "goto" -> Goto (bref st)
  | Tword "if" ->
      let cond = vref st in
      expect_word st "then";
      let tb = bref st in
      expect_word st "else";
      let fb = bref st in
      let site = parse_site st in
      If { cond; site; tb; fb }
  | Tword "return" -> Return (vref st)
  | Tword "unreachable" -> Unreachable
  | t -> fail "expected a terminator, found '%s'" (token_str t)

(* A v-reference word ('v12') at the head position starts an instruction;
   any other word starts a terminator. *)
let starts_instr = function
  | Tword w ->
      String.length w > 1
      && w.[0] = 'v'
      && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub w 1 (String.length w - 1))
  | _ -> false

let starts_block = function
  | Tword w ->
      String.length w > 1
      && w.[0] = 'b'
      && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub w 1 (String.length w - 1))
  | _ -> false

let parse_fn (src : string) : fn =
  let st = { toks = tokenize src } in
  expect_word st "fn";
  let fname =
    match next st with
    | Tword w ->
        (* qualified names print as 'Point' '.' 'getX' *)
        let parts = ref [ w ] in
        while at_punct st '.' do
          expect_punct st '.';
          match next st with
          | Tword w' -> parts := w' :: !parts
          | Tpunct '<' ->
              (* constructor selector '<init>' *)
              expect_word st "init";
              expect_punct st '>';
              parts := "<init>" :: !parts
          | t -> fail "name continuation, found '%s'" (token_str t)
        done;
        String.concat "." (List.rev !parts)
    | t -> fail "function name, found '%s'" (token_str t)
  in
  expect_punct st '(';
  let params = ref [] in
  if not (at_punct st ')') then begin
    params := [ parse_ty st ];
    while at_punct st ',' do
      expect_punct st ',';
      params := parse_ty st :: !params
    done
  end;
  expect_punct st ')';
  expect_punct st ':';
  let rty = parse_ty st in
  expect_word st "entry";
  expect_punct st '=';
  let entry = bref st in
  let fn = Fn.create ~fname ~param_tys:(Array.of_list (List.rev !params)) ~rty in
  fn.entry <- entry;
  (* blocks *)
  while starts_block (peek st) do
    let b = bref st in
    expect_punct st ':';
    Fn.add_block_at fn b;
    let blk = Fn.block fn b in
    let instrs = ref [] in
    while starts_instr (peek st) do
      let v = vref st in
      expect_punct st '=';
      Fn.add_instr_at fn v (parse_kind st);
      instrs := v :: !instrs
    done;
    blk.instrs <- List.rev !instrs;
    blk.term <- parse_term st
  done;
  (match peek st with
  | Teof -> ()
  | t -> fail "trailing input starting at '%s'" (token_str t));
  fn
