(** Dominator tree (Cooper–Harvey–Kennedy), over blocks reachable from the
    entry. *)

open Types

type t

val compute : fn -> t

val idom : t -> bid -> bid option
(** Immediate dominator; the entry maps to itself. [None] for unreachable
    blocks. *)

val dominates : t -> a:bid -> b:bid -> bool
(** Reflexive: [dominates ~a ~b:a] holds. *)

val children : t -> bid -> bid list
(** Children in the dominator tree, ascending. *)

val rpo : t -> bid list
(** The reverse postorder the tree was computed over. *)
