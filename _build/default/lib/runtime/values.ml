(* Runtime values of the SelVM.

   Objects and arrays are mutable OCaml records; reference equality is
   OCaml physical equality. [Vnull] is the default for object, array and
   also (by language fiat) absent values of any reference-like type. *)

open Ir.Types

type value =
  | Vint of int
  | Vbool of bool
  | Vunit
  | Vstr of string
  | Vnull
  | Vobj of obj
  | Varr of arr

and obj = { o_cls : class_id; fields : value array }

and arr = { ety : ty; elems : value array }

exception Trap of string

let trap fmt = Fmt.kstr (fun s -> raise (Trap s)) fmt

let rec default_value (t : ty) : value =
  match t with
  | Tint -> Vint 0
  | Tbool -> Vbool false
  | Tunit -> Vunit
  | Tstring -> Vstr ""
  | Tarray _ | Tobj _ -> Vnull

and alloc_obj (prog : program) (c : class_id) : value =
  let layout = (Ir.Program.cls prog c).layout in
  Vobj { o_cls = c; fields = Array.map (fun (_, t) -> default_value t) layout }

let alloc_array (ety : ty) (len : int) : value =
  if len < 0 then trap "negative array length %d" len;
  Varr { ety; elems = Array.make len (default_value ety) }

let as_int = function Vint n -> n | v -> trap "expected Int, got %s" (match v with Vbool _ -> "Bool" | Vstr _ -> "String" | Vnull -> "null" | Vobj _ -> "object" | Varr _ -> "array" | Vunit -> "Unit" | Vint _ -> assert false)
let as_bool = function Vbool b -> b | _ -> trap "expected Bool"
let as_str = function Vstr s -> s | _ -> trap "expected String"

let as_obj = function
  | Vobj o -> o
  | Vnull -> trap "null dereference"
  | _ -> trap "expected an object"

let as_arr = function
  | Varr a -> a
  | Vnull -> trap "null array dereference"
  | _ -> trap "expected an array"

(* Reference equality for heap values, structural for primitives. *)
let value_eq (a : value) (b : value) : bool =
  match (a, b) with
  | Vint x, Vint y -> x = y
  | Vbool x, Vbool y -> x = y
  | Vunit, Vunit -> true
  | Vstr x, Vstr y -> x = y
  | Vnull, Vnull -> true
  | Vobj x, Vobj y -> x == y
  | Varr x, Varr y -> x == y
  | _ -> false

let to_string = function
  | Vint n -> string_of_int n
  | Vbool b -> string_of_bool b
  | Vunit -> "()"
  | Vstr s -> s
  | Vnull -> "null"
  | Vobj o -> Printf.sprintf "<obj#%d>" o.o_cls
  | Varr a -> Printf.sprintf "<array[%d]>" (Array.length a.elems)
