(** Runtime values of the SelVM. Objects and arrays are mutable; reference
    equality is physical equality. *)

open Ir.Types

type value =
  | Vint of int
  | Vbool of bool
  | Vunit
  | Vstr of string
  | Vnull
  | Vobj of obj
  | Varr of arr

and obj = { o_cls : class_id; fields : value array }
and arr = { ety : ty; elems : value array }

exception Trap of string
(** Runtime errors: null dereference, out-of-bounds access, division by
    zero, abstract dispatch, stack/step exhaustion. *)

val trap : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** @raise Trap always. *)

val default_value : ty -> value
(** 0 / false / "" / unit / null — the value of uninitialized fields and
    array elements. *)

val alloc_obj : program -> class_id -> value
val alloc_array : ty -> int -> value
(** @raise Trap on a negative length. *)

val as_int : value -> int
(** @raise Trap when the value is not of the expected kind (likewise for
    the other projections). *)

val as_bool : value -> bool
val as_str : value -> string
val as_obj : value -> obj
val as_arr : value -> arr

val value_eq : value -> value -> bool
(** Structural for primitives, physical for objects and arrays. *)

val to_string : value -> string
