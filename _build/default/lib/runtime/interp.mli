(** The SelVM execution engine: a direct IR interpreter that doubles as the
    compiled-code executor. Interpreted frames pay the interpreter
    dispatch penalty and collect profiles; compiled frames pay only
    operation costs and do not profile — the classic two-tier contract.

    Two hooks connect the VM to a JIT engine without a dependency cycle:
    [code] looks up installed compiled code, [on_entry] fires at every
    method entry (hotness detection). *)

open Ir.Types
open Values

type mode = Interpreted | Compiled

type vm = {
  prog : program;
  mutable profiles : Profile.t;
  cost : Cost.t;
  out : Buffer.t;                          (** captured program output *)
  mutable cycles : int;                    (** the simulated clock *)
  mutable code : meth_id -> fn option;
  mutable on_entry : meth_id -> unit;
  mutable on_spec_miss : meth_id -> site -> unit;
  (** fired when compiled code reaches a typeswitch's residual virtual
      call (a synthetic site): the speculation missed *)
  mutable steps : int;
  mutable max_steps : int;
  mutable depth : int;
  max_depth : int;
}

val create : ?cost:Cost.t -> ?max_steps:int -> program -> vm

val output : vm -> string

val invoke : vm -> meth_id -> value array -> value
(** Runs a method through the tier dispatch (compiled body if installed,
    interpreter otherwise).
    @raise Trap on runtime errors. *)

val exec : vm -> mode:mode -> meth:meth_id -> fn -> value array -> value
(** Executes a specific body in a specific tier; used by [invoke] and by
    tests that want to pin the tier. *)

val run_main : vm -> value
(** @raise Trap if the program has no main or on runtime errors. *)

val run_meth : vm -> string -> value list -> value
(** Runs a method by qualified name. *)
