lib/runtime/interp.mli: Buffer Cost Ir Profile Values
