lib/runtime/values.mli: Format Ir
