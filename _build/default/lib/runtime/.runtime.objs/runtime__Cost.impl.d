lib/runtime/cost.ml: Ir
