lib/runtime/cost.mli: Ir
