lib/runtime/values.ml: Array Fmt Ir Printf
