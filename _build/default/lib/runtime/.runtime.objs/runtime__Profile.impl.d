lib/runtime/profile.ml: Buffer Hashtbl Ir List Printf String
