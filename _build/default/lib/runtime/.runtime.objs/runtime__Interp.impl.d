lib/runtime/interp.ml: Array Buffer Char Cost Hashtbl Ir List Profile String Values
