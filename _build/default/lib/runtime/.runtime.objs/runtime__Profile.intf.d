lib/runtime/profile.mli: Ir
