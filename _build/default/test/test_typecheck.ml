(* Unit tests for the type checker: acceptance, rejection with the right
   kind of error, class-table construction, and lambda lifting. *)

open Util

let accepts what src = test what (fun () -> ignore (compile src))

let rejects what needle src =
  test what (fun () ->
      let msg = compile_err src in
      if not (contains_substring ~needle msg) then
        Alcotest.failf "error %S does not mention %S" msg needle)

let tests_accept =
  [
    accepts "minimal main" "def main(): Unit = {}";
    accepts "lambda stored in array and invoked"
      {|def main(): Unit = {
          val fs = new Array[Int => Int](2);
          fs[0] = (x: Int) => x + 1;
          fs[1] = (x: Int) => x * 2;
          println(fs[0](10) + fs[1](10));
        }|};
    accepts "lambda returned from a method and composed"
      {|class Adder(k: Int) { def fn(): Int => Int = (x: Int) => x + k }
        def compose(f: Int => Int, g: Int => Int): Int => Int = (x: Int) => f(g(x))
        def main(): Unit = println(compose(new Adder(1).fn(), new Adder(2).fn())(10))|};
    accepts "lambda created inside a constructor body context"
      {|class C(seed: Int) {
          def make(): Int => Int = (x: Int) => x + seed
        }
        def main(): Unit = println(new C(5).make()(1))|};
    accepts "three-level inheritance dispatch"
      {|class A() { def m(): Int = 1 }
        class B() extends A { def m(): Int = 2 }
        class C() extends B {}
        def main(): Unit = println(new C().m())|};
    accepts "method on expression result chain"
      {|class W(v: Int) { def next(): W = new W(v + 1) def get(): Int = v }
        def main(): Unit = println(new W(0).next().next().next().get())|};
    accepts "two-argument lambda via multi-arg function type"
      {|def apply2(f: (Int, Int) => Int): Int = f(3, 4)
        def main(): Unit = println(apply2((a: Int, b: Int) => a * b))|};
    accepts "zero-argument lambda"
      {|def force(f: () => Int): Int = f()
        def main(): Unit = println(force(() => 42))|};
    accepts "abstract method used inside abstract class's concrete method"
      {|abstract class A { def m(): Int def twice(): Int = m() + m() }
        class B() extends A { def m(): Int = 3 }
        def main(): Unit = println(new B().twice())|};
    accepts "null comparison in condition"
      {|class N(next: N) { def hasNext(): Bool = next != null }
        def main(): Unit = println(new N(null).hasNext())|};
    accepts "arithmetic"
      "def f(): Int = 1 + 2 * 3 / 4 % 5 - (6 << 1) + (7 >> 2)\ndef main(): Unit = println(f())";
    accepts "bool ops" "def f(a: Bool, b: Bool): Bool = a && b || !a ^ b\ndef main(): Unit = {}";
    accepts "class with methods"
      "class P(x: Int, y: Int) { def sum(): Int = x + y }\ndef main(): Unit = println(new P(1,2).sum())";
    accepts "inheritance and override"
      {|abstract class A { def m(): Int }
        class B() extends A { def m(): Int = 1 }
        def main(): Unit = println(new B().m())|};
    accepts "parent ctor args"
      {|class A(x: Int) { def getx(): Int = x }
        class B(y: Int) extends A(y * 2) {}
        def main(): Unit = println(new B(21).getx())|};
    accepts "field declared with var"
      {|class C() { var f: Int def bump(): Int = { this.f = this.f + 1; f } }
        def main(): Unit = println(new C().bump())|};
    accepts "lambda and apply"
      "def main(): Unit = { val f = (x: Int) => x + 1; println(f(41)) }";
    accepts "lambda capturing val"
      "def main(): Unit = { val k = 10; val f = (x: Int) => x + k; println(f(1)) }";
    accepts "lambda capturing this field"
      {|class C(base: Int) { def adder(): Int => Int = (x: Int) => x + base }
        def main(): Unit = println(new C(5).adder()(2))|};
    accepts "nested lambda capture"
      {|def main(): Unit = {
          val a = 1;
          val f = (x: Int) => { val g = (y: Int) => x + y + a; g(2) };
          println(f(3))
        }|};
    accepts "null assigned to object type"
      "class C() {}\ndef main(): Unit = { var c: C = null; c = new C(); }";
    accepts "if joins related classes"
      {|abstract class A {} class B() extends A {} class C() extends A {}
        def pick(f: Bool): A = if (f) { new B() } else { new C() }
        def main(): Unit = {}|};
    accepts "arrays of objects"
      "class C() {}\ndef main(): Unit = { val a = new Array[C](3); a[0] = new C(); }";
    accepts "string operations"
      {|def main(): Unit = { val s = "ab"; println(s.length + strget(s, 0)); println(streq(s, "ab")) }|};
    accepts "reference equality on objects"
      "class C() {}\ndef main(): Unit = { val c = new C(); println(c == c) }";
    accepts "recursion" "def fib(n: Int): Int = if (n < 2) { n } else { fib(n-1) + fib(n-2) }\ndef main(): Unit = println(fib(10))";
    accepts "method call without receiver inside class"
      {|class C() { def a(): Int = 1 def b(): Int = a() + 1 }
        def main(): Unit = println(new C().b())|};
    accepts "intrinsics" "def main(): Unit = { println(abs(0-3) + min(1,2) + max(1,2)) }";
  ]

let tests_reject =
  [
    rejects "unbound variable" "unbound variable" "def main(): Unit = println(x)";
    rejects "lambda arity mismatch at apply" "argument"
      "def main(): Unit = { val f = (x: Int) => x; println(f(1, 2)) }";
    rejects "lambda wrong signature for expected type" "expected"
      {|def use(f: Int => Int): Int = f(1)
        def main(): Unit = println(use((x: Bool) => 1))|};
    rejects "array element type mismatch" "expected"
      "def main(): Unit = { val a = new Array[Int](1); a[0] = true; }";
    rejects "assigning array to scalar" "expected"
      "def main(): Unit = { var x = 1; x = new Array[Int](1); }";
    rejects "unknown selector through parent type" "no method"
      {|abstract class A {} class B() extends A { def only(): Int = 1 }
        def f(a: A): Int = a.only()
        def main(): Unit = {}|};
    rejects "ctor arity" "argument"
      "class C(x: Int) {}\ndef main(): Unit = { val c = new C(); }";
    rejects "parent ctor arity" "argument"
      "class A(x: Int) {}\nclass B() extends A {}\ndef main(): Unit = {}";
    rejects "while produces unit, not int" "expected"
      "def f(): Int = while (false) {}\ndef main(): Unit = {}";
    rejects "indexing a non-array" "indexed"
      "def main(): Unit = { val x = 1; println(x[0]) }";
    rejects "unknown parent class" "unknown parent"
      "class B() extends Nope {}\ndef main(): Unit = {}";
    rejects "unknown function" "unknown function" "def main(): Unit = foo()";
    rejects "unknown class" "unknown class" "def main(): Unit = { val c = new Nope(); }";
    rejects "unknown type" "unknown type" "def f(x: Nope): Unit = {}\ndef main(): Unit = {}";
    rejects "arity mismatch" "argument" "def f(a: Int): Int = a\ndef main(): Unit = println(f())";
    rejects "type mismatch in call" "expected"
      "def f(a: Int): Int = a\ndef main(): Unit = println(f(true))";
    rejects "assign to val" "not assignable" "def main(): Unit = { val x = 1; x = 2; }";
    rejects "condition must be bool" "expected" "def main(): Unit = { if (1) {} }";
    rejects "while condition must be bool" "expected" "def main(): Unit = { while (1) {} }";
    rejects "no main" "main" "def f(): Int = 1";
    rejects "main with params" "main" "def main(x: Int): Unit = {}";
    rejects "instantiate abstract" "abstract"
      "abstract class A {}\ndef main(): Unit = { val a = new A(); }";
    rejects "missing abstract impl" "does not implement"
      {|abstract class A { def m(): Int }
        class B() extends A {}
        def main(): Unit = {}|};
    rejects "incompatible override" "incompatible"
      {|class A() { def m(): Int = 1 }
        class B() extends A { def m(): Bool = true }
        def main(): Unit = {}|};
    rejects "duplicate class" "duplicate" "class C() {}\nclass C() {}\ndef main(): Unit = {}";
    rejects "duplicate function" "duplicate" "def f(): Int = 1\ndef f(): Int = 2\ndef main(): Unit = {}";
    rejects "inheritance cycle" "cycle"
      "class A() extends B {}\nclass B() extends A {}\ndef main(): Unit = {}";
    rejects "field shadowing parent" "shadows"
      "class A(x: Int) {}\nclass B(x: Int) extends A(x) {}\ndef main(): Unit = {}";
    rejects "mutable capture" "capture"
      "def main(): Unit = { var x = 1; val f = (y: Int) => x + y; println(f(1)) }";
    rejects "this outside class" "outside" "def main(): Unit = { val t = this; }";
    rejects "null needs annotation" "annotation" "def main(): Unit = { val x = null; }";
    rejects "cannot compare int with bool" "compare" "def main(): Unit = { println(1 == true) }";
    rejects "calling a non-function value" "cannot be called"
      "def main(): Unit = { val x = 1; println(x(2)) }";
    rejects "unrelated assignment" "expected"
      {|class A() {} class B() {}
        def main(): Unit = { var a: A = new A(); a = new B(); }|};
    rejects "print of object" "cannot print"
      "class C() {}\ndef main(): Unit = println(new C())";
    rejects "field on int" "has no field" "def main(): Unit = { val x = 1; println(x.f) }";
    rejects "method on null literal type" "has no method"
      "def main(): Unit = { println(null.m()) }";
    rejects "builtin shadowing" "shadows" "class Int() {}\ndef main(): Unit = {}";
    rejects "intrinsic shadowing" "shadows" "def print(x: Int): Unit = {}\ndef main(): Unit = {}";
  ]

(* structural checks on the produced class/method tables *)
let table_tests =
  [
    test "lambda lifted to a class with apply" (fun () ->
        let prog =
          compile "def main(): Unit = { val f = (x: Int) => x * 2; println(f(21)) }"
        in
        let lambda_classes = ref 0 in
        Ir.Program.iter_classes
          (fun (c : Ir.Types.cls) ->
            if String.length c.c_name >= 6 && String.sub c.c_name 0 6 = "Lambda" then
              incr lambda_classes)
          prog;
        Alcotest.(check int) "one lambda class" 1 !lambda_classes;
        Alcotest.(check bool) "apply exists" true
          (Hashtbl.fold
             (fun name _ acc -> acc || Filename.check_suffix name ".apply")
             prog.meth_by_name false));
    test "capture becomes a field" (fun () ->
        let prog =
          compile
            "def main(): Unit = { val k = 7; val f = (x: Int) => x + k; println(f(1)) }"
        in
        let found = ref false in
        Ir.Program.iter_classes
          (fun (c : Ir.Types.cls) ->
            if Array.exists (fun (n, _) -> n = "k") c.layout then found := true)
          prog;
        Alcotest.(check bool) "field k" true !found);
    test "vtable resolves overrides to the subclass" (fun () ->
        let prog =
          compile
            {|class A() { def m(): Int = 1 }
              class B() extends A { def m(): Int = 2 }
              def main(): Unit = println(new B().m())|}
        in
        let a = Option.get (Hashtbl.find_opt prog.meth_by_name "A.m") in
        let b = Option.get (Hashtbl.find_opt prog.meth_by_name "B.m") in
        let cls_b =
          let r = ref (-1) in
          Ir.Program.iter_classes
            (fun (c : Ir.Types.cls) -> if c.c_name = "B" then r := c.c_id)
            prog;
          !r
        in
        Alcotest.(check (option int)) "resolve on B" (Some b)
          (Ir.Program.resolve prog cls_b "m");
        Alcotest.(check bool) "distinct" true (a <> b));
    test "field slots are stable down the hierarchy" (fun () ->
        let prog =
          compile
            {|class A(x: Int) {}
              class B(y: Int) extends A(y) {}
              def main(): Unit = {}|}
        in
        let cls name =
          let r = ref (-1) in
          Ir.Program.iter_classes
            (fun (c : Ir.Types.cls) -> if c.c_name = name then r := c.c_id)
            prog;
          !r
        in
        Alcotest.(check (option int)) "x in A" (Some 0)
          (Ir.Program.field_slot prog (cls "A") "x");
        Alcotest.(check (option int)) "x in B" (Some 0)
          (Ir.Program.field_slot prog (cls "B") "x");
        Alcotest.(check (option int)) "y in B" (Some 1)
          (Ir.Program.field_slot prog (cls "B") "y"));
    test "unique concrete subtype found" (fun () ->
        let prog =
          compile
            {|abstract class M { def m(): Int }
              class D() extends M { def m(): Int = 1 }
              def main(): Unit = println(new D().m())|}
        in
        let m_cls =
          let r = ref (-1) in
          Ir.Program.iter_classes
            (fun (c : Ir.Types.cls) -> if c.c_name = "M" then r := c.c_id)
            prog;
          !r
        in
        match Ir.Program.unique_concrete_subtype prog m_cls with
        | Some d -> Alcotest.(check string) "D" "D" (Ir.Program.cls prog d).c_name
        | None -> Alcotest.fail "expected unique concrete subtype");
  ]

let () =
  Alcotest.run "typecheck"
    [ ("accepts", tests_accept); ("rejects", tests_reject); ("tables", table_tests) ]
