(* Property-based tests (qcheck): random Sel programs are generated as
   source text, then checked for the system's central invariants:

   - lowering always produces verifier-clean SSA;
   - the optimizer preserves program output and result;
   - canonicalization is idempotent;
   - the incremental inliner (and both baselines) preserve behaviour on
     profiled programs;
   - algebraic laws of the analysis tuple algebra.

   Programs are deterministic by construction: loops have constant bounds,
   divisors are non-zero literals, and all randomness comes from the
   generator's seed. *)

open QCheck

(* ---------- random program generation ---------- *)

(* Integer expressions over variables [vars] (ints, box fields [c.v] and
   safe array reads are all pre-rendered into [vars]) plus calls to helper
   functions [funs] (name, arity) and a fixed polymorphic helper. *)
let rec gen_int_expr ~vars ~funs ~depth : string Gen.t =
  let open Gen in
  let leaf =
    oneof
      [
        map string_of_int (int_range 0 9);
        (if vars = [] then return "7" else oneofl vars);
      ]
  in
  if depth = 0 then leaf
  else
    frequency
      [
        (2, leaf);
        ( 3,
          let* op = oneofl [ "+"; "-"; "*" ] in
          let* a = gen_int_expr ~vars ~funs ~depth:(depth - 1) in
          let* b = gen_int_expr ~vars ~funs ~depth:(depth - 1) in
          return (Printf.sprintf "(%s %s %s)" a op b) );
        ( 1,
          let* a = gen_int_expr ~vars ~funs ~depth:(depth - 1) in
          let* d = oneofl [ "2"; "3"; "5" ] in
          return (Printf.sprintf "(%s / %s)" a d) );
        ( 1,
          let* a = gen_int_expr ~vars ~funs ~depth:(depth - 1) in
          let* d = oneofl [ "3"; "7" ] in
          return (Printf.sprintf "(%s %% %s)" a d) );
        ( 1,
          let* c = gen_bool_expr ~vars ~funs ~depth:(depth - 1) in
          let* a = gen_int_expr ~vars ~funs ~depth:(depth - 1) in
          let* b = gen_int_expr ~vars ~funs ~depth:(depth - 1) in
          return (Printf.sprintf "(if (%s) { %s } else { %s })" c a b) );
        ( 2,
          if funs = [] then leaf
          else
            let* fname, arity = oneofl funs in
            let* args =
              list_repeat arity (gen_int_expr ~vars ~funs:[] ~depth:(depth - 1))
            in
            return (Printf.sprintf "%s(%s)" fname (String.concat ", " args)) );
        ( 1,
          (* polymorphic dispatch through the fixed prelude *)
          let* i = gen_int_expr ~vars ~funs:[] ~depth:0 in
          let* x = gen_int_expr ~vars ~funs:[] ~depth:(depth - 1) in
          return (Printf.sprintf "poly(%s, %s)" i x) );
      ]

and gen_bool_expr ~vars ~funs ~depth : string Gen.t =
  let open Gen in
  if depth = 0 then
    let* a = gen_int_expr ~vars ~funs ~depth:0 in
    let* op = oneofl [ "<"; "<="; ">"; ">="; "=="; "!=" ] in
    let* b = gen_int_expr ~vars ~funs ~depth:0 in
    return (Printf.sprintf "(%s %s %s)" a op b)
  else
    frequency
      [
        ( 3,
          let* a = gen_int_expr ~vars ~funs ~depth:(depth - 1) in
          let* op = oneofl [ "<"; "<="; ">"; "=="; "!=" ] in
          let* b = gen_int_expr ~vars ~funs ~depth:(depth - 1) in
          return (Printf.sprintf "(%s %s %s)" a op b) );
        ( 1,
          let* a = gen_bool_expr ~vars ~funs ~depth:(depth - 1) in
          let* op = oneofl [ "&&"; "||" ] in
          let* b = gen_bool_expr ~vars ~funs ~depth:(depth - 1) in
          return (Printf.sprintf "(%s %s %s)" a op b) );
        ( 1,
          let* a = gen_bool_expr ~vars ~funs ~depth:(depth - 1) in
          return (Printf.sprintf "(!%s)" a) );
      ]

(* A statement block mutating [acc], locals, heap boxes and arrays. Loops
   use fresh counters with constant bounds so every generated program
   terminates; array indices are rendered as [abs(e) % len] so they never
   trap. *)
let gen_block ~funs : string Gen.t =
  let open Gen in
  let* nstmts = int_range 1 7 in
  let rec go k vars cells arrays acc_stmts fresh =
    if k = 0 then return (List.rev acc_stmts)
    else
      let* choice = int_range 0 7 in
      match choice with
      | 0 ->
          let name = Printf.sprintf "x%d" fresh in
          let* e = gen_int_expr ~vars ~funs ~depth:2 in
          go (k - 1) (name :: vars) cells arrays
            (Printf.sprintf "var %s = %s;" name e :: acc_stmts)
            (fresh + 1)
      | 1 ->
          let* e = gen_int_expr ~vars ~funs ~depth:2 in
          go (k - 1) vars cells arrays
            (Printf.sprintf "acc = acc + (%s);" e :: acc_stmts)
            fresh
      | 2 ->
          let i = Printf.sprintf "i%d" fresh in
          let* bound = int_range 1 6 in
          let* e = gen_int_expr ~vars:(i :: vars) ~funs ~depth:2 in
          go (k - 1) vars cells arrays
            (Printf.sprintf "var %s = 0; while (%s < %d) { acc = acc + (%s); %s = %s + 1; };"
               i i bound e i i
            :: acc_stmts)
            (fresh + 1)
      | 3 ->
          let* c = gen_bool_expr ~vars ~funs ~depth:1 in
          let* e = gen_int_expr ~vars ~funs ~depth:2 in
          go (k - 1) vars cells arrays
            (Printf.sprintf "if (%s) { acc = acc + (%s) };" c e :: acc_stmts)
            fresh
      | 4 ->
          (* heap box: field reads join the int-expression pool *)
          let name = Printf.sprintf "c%d" fresh in
          let* e = gen_int_expr ~vars ~funs ~depth:1 in
          go (k - 1)
            (Printf.sprintf "%s.v" name :: vars)
            (name :: cells) arrays
            (Printf.sprintf "val %s = new Cell(%s);" name e :: acc_stmts)
            (fresh + 1)
      | 5 when cells <> [] ->
          let* cell = oneofl cells in
          let* e = gen_int_expr ~vars ~funs ~depth:2 in
          go (k - 1) vars cells arrays
            (Printf.sprintf "%s.v = %s;" cell e :: acc_stmts)
            fresh
      | 6 ->
          let name = Printf.sprintf "ar%d" fresh in
          let* len = int_range 1 8 in
          go (k - 1)
            (Printf.sprintf "%s[abs(acc) %% %d]" name len :: vars)
            cells
            ((name, len) :: arrays)
            (Printf.sprintf "val %s = new Array[Int](%d);" name len :: acc_stmts)
            (fresh + 1)
      | _ when arrays <> [] ->
          let* arr, len = oneofl arrays in
          let* idx = gen_int_expr ~vars ~funs ~depth:1 in
          let* e = gen_int_expr ~vars ~funs ~depth:2 in
          go (k - 1) vars cells arrays
            (Printf.sprintf "%s[abs(%s) %% %d] = %s;" arr idx len e :: acc_stmts)
            fresh
      | _ ->
          let* e = gen_int_expr ~vars ~funs ~depth:2 in
          go (k - 1) vars cells arrays
            (Printf.sprintf "acc = acc + (%s);" e :: acc_stmts)
            fresh
  in
  let* stmts = go nstmts [ "a"; "b"; "acc" ] [] [] [] 0 in
  return (String.concat "\n  " stmts)

let prelude =
  {|class Cell(v: Int) {}
abstract class P { def m(x: Int): Int }
class P1() extends P { def m(x: Int): Int = x + 1 }
class P2() extends P { def m(x: Int): Int = x * 2 }
class P3() extends P { def m(x: Int): Int = x - 3 }
def poly(i: Int, x: Int): Int = {
  val k = if (i % 3 == 0) { 0 } else { if (i % 3 == 1) { 1 } else { 2 } };
  var p: P = new P1();
  if (k == 1) { p = new P2() };
  if (k == 2) { p = new P3() };
  p.m(x)
}
|}

(* A full program: helpers g0..gk, a driver f, and main printing f's results
   over a few inputs (which also warms up profiles). *)
let gen_program : string Gen.t =
  let open Gen in
  let* nfuns = int_range 0 2 in
  let rec gen_funs k acc known =
    if k = 0 then return (acc, known)
    else
      let name = Printf.sprintf "g%d" (List.length known) in
      let* body = gen_int_expr ~vars:[ "a"; "b" ] ~funs:known ~depth:2 in
      gen_funs (k - 1)
        (Printf.sprintf "def %s(a: Int, b: Int): Int = %s" name body :: acc)
        ((name, 2) :: known)
  in
  let* fun_texts, funs = gen_funs nfuns [] [] in
  let* block = gen_block ~funs in
  let f =
    Printf.sprintf
      "def f(a: Int, b: Int): Int = {\n  var acc = 0;\n  %s\n  acc\n}" block
  in
  let main =
    {|def main(): Unit = {
  var i = 0;
  while (i < 6) { println(f(i, i * 2 - 3)); i = i + 1; }
}|}
  in
  return (String.concat "\n" (prelude :: List.rev fun_texts) ^ "\n" ^ f ^ "\n" ^ main)

let program_arbitrary = QCheck.make ~print:(fun s -> s) gen_program

(* ---------- properties ---------- *)

let interp_output (prog : Ir.Types.program) : string =
  let vm = Runtime.Interp.create prog in
  ignore (Runtime.Interp.run_main vm);
  Runtime.Interp.output vm

let compile_ok src =
  match Frontend.Pipeline.compile src with
  | Ok prog -> prog
  | Error e ->
      Test.fail_reportf "generated program does not compile: %s@.%s"
        (Frontend.Pipeline.error_to_string e)
        src

let prop_lowering_verifies =
  Test.make ~name:"lowering produces verifier-clean SSA" ~count:60 program_arbitrary
    (fun src ->
      let prog = compile_ok src in
      match Ir.Verify.check_program prog with
      | Ok () -> true
      | Error e -> Test.fail_reportf "verifier: %s" e)

let prop_optimizer_preserves =
  Test.make ~name:"optimizer preserves output" ~count:60 program_arbitrary (fun src ->
      let prog1 = compile_ok src in
      let before = interp_output prog1 in
      let prog2 = compile_ok src in
      Opt.Driver.prepare_program prog2;
      (match Ir.Verify.check_program prog2 with
      | Ok () -> ()
      | Error e -> Test.fail_reportf "verifier after opt: %s" e);
      let after = interp_output prog2 in
      if before <> after then
        Test.fail_reportf "output changed:@.before: %s@.after: %s" before after
      else true)

let prop_canonicalize_idempotent =
  Test.make ~name:"canonicalization is idempotent" ~count:40 program_arbitrary
    (fun src ->
      let prog = compile_ok src in
      Opt.Driver.prepare_program prog;
      let leftovers = ref 0 in
      Ir.Program.iter_meths
        (fun (m : Ir.Types.meth) ->
          match m.body with
          | Some fn ->
              let stats = Opt.Driver.simplify prog fn in
              leftovers := !leftovers + Opt.Driver.simple_opt_count stats
          | None -> ())
        prog;
      if !leftovers > 0 then
        Test.fail_reportf "second simplify still fired %d events" !leftovers
      else true)

let differential_with (compiler : Jit.Engine.compiler) (src : string) : bool =
  let prog = compile_ok src in
  Opt.Driver.prepare_program prog;
  let reference = interp_output prog in
  let vm = Runtime.Interp.create prog in
  ignore (Runtime.Interp.run_main vm);
  let cache = Hashtbl.create 8 in
  Ir.Program.iter_meths
    (fun (m : Ir.Types.meth) ->
      if m.body <> None && Runtime.Profile.invocation_count vm.profiles m.m_id >= 2 then begin
        let body = compiler prog vm.profiles m.m_id in
        (match Ir.Verify.check body with
        | () -> ()
        | exception Ir.Verify.Ill_formed msg ->
            Test.fail_reportf "compiled %s ill-formed: %s" m.m_name msg);
        Hashtbl.replace cache m.m_id body
      end)
    prog;
  let vm2 = Runtime.Interp.create prog in
  vm2.code <- (fun m -> Hashtbl.find_opt cache m);
  ignore (Runtime.Interp.run_main vm2);
  let got = Runtime.Interp.output vm2 in
  if got <> reference then
    Test.fail_reportf "compiled output differs:@.expected: %s@.got: %s" reference got
  else true

let prop_incremental_differential =
  Test.make ~name:"incremental inliner preserves behaviour" ~count:40 program_arbitrary
    (fun src ->
      differential_with
        (fun p pr m -> (Inliner.Algorithm.compile p pr Inliner.Params.default m).body)
        src)

let prop_incremental_1by1_differential =
  Test.make ~name:"1-by-1 ablation preserves behaviour" ~count:20 program_arbitrary
    (fun src ->
      differential_with
        (fun p pr m ->
          (Inliner.Algorithm.compile p pr
             (Inliner.Params.without_clustering Inliner.Params.default)
             m)
            .body)
        src)

let prop_greedy_differential =
  Test.make ~name:"greedy baseline preserves behaviour" ~count:30 program_arbitrary
    (fun src -> differential_with (fun p pr m -> Baselines.Greedy.compile p pr m) src)

let prop_c2_differential =
  Test.make ~name:"c2-like baseline preserves behaviour" ~count:30 program_arbitrary
    (fun src -> differential_with (fun p pr m -> Baselines.C2like.compile p pr m) src)

let prop_inliner_deterministic =
  Test.make ~name:"the inliner is deterministic" ~count:25 program_arbitrary (fun src ->
      let prog = compile_ok src in
      Opt.Driver.prepare_program prog;
      let vm = Runtime.Interp.create prog in
      ignore (Runtime.Interp.run_main vm);
      let m = Option.get (Ir.Program.find_meth prog "f") in
      let once () =
        Ir.Printer.fn_to_string
          (Inliner.Algorithm.compile prog vm.profiles Inliner.Params.default m)
            .Inliner.Algorithm.body
      in
      let a = once () and b = once () in
      if a <> b then Test.fail_reportf "two compilations differ:@.%s@.vs@.%s" a b
      else true)

(* ---------- random IR-level CFGs ----------

   The frontend only produces structured CFGs; these generators build
   arbitrary (including irreducible) graphs directly at the IR level to
   harden dominators, the verifier, CFG cleanup, GVN and DCE.

   Construction keeps programs total (no traps except the step budget) and
   SSA-valid by construction: non-phi operands come from values defined in
   strictly-dominating blocks or earlier in the same block; phi inputs
   come from values visible at the end of each predecessor. *)

let gen_ir_fn : Ir.Types.fn Gen.t =
  let open Gen in
  let open Ir.Types in
  let* nblocks = int_range 3 9 in
  let* seed = int_range 0 1_000_000 in
  return
    (let rng = Support.Rng.create seed in
     let fn = Ir.Fn.create ~fname:"rand" ~param_tys:[| Tint; Tint |] ~rty:Tint in
     let blocks = Array.init nblocks (fun _ -> Ir.Fn.add_block fn) in
     fn.entry <- blocks.(0);
     (* 1. random terminator structure (operands patched later) *)
     Array.iteri
       (fun i b ->
         let target () = blocks.(Support.Rng.int rng nblocks) in
         if i = nblocks - 1 then Ir.Fn.set_term fn b (Return (-1))
         else
           match Support.Rng.int rng 4 with
           | 0 -> Ir.Fn.set_term fn b (Return (-1))
           | 1 | 2 ->
               Ir.Fn.set_term fn b
                 (If { cond = -1; site = { sm = 0; sidx = i }; tb = target (); fb = target () })
           | _ -> Ir.Fn.set_term fn b (Goto (target ())))
       blocks;
     (* 2. fill non-phi instructions in dominator preorder *)
     let doms = Ir.Dominators.compute fn in
     let reachable = Ir.Fn.reachable fn in
     let params = ref [] in
     let p0 = Ir.Fn.append fn blocks.(0) (Param 0) in
     let p1 = Ir.Fn.append fn blocks.(0) (Param 1) in
     params := [ p0; p1 ];
     let defs : (Ir.Types.bid, Ir.Types.vid list) Hashtbl.t = Hashtbl.create 8 in
     let rec visible b =
       (* values defined in strict dominators *)
       match Ir.Dominators.idom doms b with
       | Some d when d <> b ->
           (try Hashtbl.find defs d with Not_found -> []) @ visible d
       | _ -> []
     in
     let int_ops = [| Add; Sub; Mul; Shl; Band; Bor; Bxor |] in
     let rec fill b =
       if Hashtbl.mem reachable b then begin
         let local = ref (if b = fn.entry then !params else []) in
         let pool () = !local @ visible b in
         let n_instrs = Support.Rng.int rng 4 in
         for _ = 1 to n_instrs do
           let pool_now = pool () in
           let pick () =
             if pool_now = [] || Support.Rng.int rng 4 = 0 then
               Ir.Fn.append fn b (Const (Cint (Support.Rng.int rng 100)))
             else Support.Rng.pick rng pool_now
           in
           let a = pick () and c = pick () in
           let op = int_ops.(Support.Rng.int rng (Array.length int_ops)) in
           local := Ir.Fn.append fn b (Binop (op, a, c)) :: !local
         done;
         Hashtbl.replace defs b !local;
         List.iter
           (fun child -> if child <> b then fill child)
           (Ir.Dominators.children doms b)
       end
     in
     fill fn.entry;
     let end_visible b = (try Hashtbl.find defs b with Not_found -> []) @ visible b in
     (* 3. phis at reachable multi-pred blocks *)
     let preds = Ir.Fn.preds fn in
     Array.iter
       (fun b ->
         if Hashtbl.mem reachable b && b <> fn.entry then
           let ps =
             (try Hashtbl.find preds b with Not_found -> [])
             |> List.filter (Hashtbl.mem reachable)
             |> List.sort_uniq compare
           in
           if List.length ps >= 2 && Support.Rng.bool rng then begin
             let fallback p =
               (* a constant placed in the predecessor always works *)
               Ir.Fn.append fn p (Const (Cint (Support.Rng.int rng 50)))
             in
             let inputs =
               List.map
                 (fun p ->
                   let pool = end_visible p in
                   if pool = [] || Support.Rng.int rng 3 = 0 then (p, fallback p)
                   else (p, Support.Rng.pick rng pool))
                 ps
             in
             let phi = Ir.Fn.prepend fn b (Phi { ty = Tint; inputs }) in
             Hashtbl.replace defs b (phi :: (try Hashtbl.find defs b with Not_found -> []))
           end)
       blocks;
     (* 4. patch terminator operands *)
     Array.iter
       (fun b ->
         if Hashtbl.mem reachable b then
           let value_for () =
             match end_visible b with
             | [] -> Ir.Fn.append fn b (Const (Cint 7))
             | pool -> Support.Rng.pick rng pool
           in
           match Ir.Fn.term fn b with
           | Return _ -> Ir.Fn.set_term fn b (Return (value_for ()))
           | If r ->
               let a = value_for () and c = value_for () in
               let cond = Ir.Fn.append fn b (Binop (Lt, a, c)) in
               Ir.Fn.set_term fn b (If { r with cond })
           | _ -> ())
       blocks;
     (* unreachable blocks still carry unpatched placeholder operands;
        passes are entitled to assume live instructions are well-formed,
        so drop those blocks entirely *)
     Array.iter
       (fun b -> if not (Hashtbl.mem reachable b) then Ir.Fn.delete_block fn b)
       blocks;
     fn)

let ir_fn_arbitrary =
  QCheck.make ~print:(fun fn -> Ir.Printer.fn_to_string fn) gen_ir_fn

(* executes with fixed arguments, classifying the outcome *)
let run_ir_fn (fn : Ir.Types.fn) : string =
  let prog = compile_ok "def main(): Unit = {}" in
  let vm = Runtime.Interp.create ~max_steps:20_000 prog in
  match
    Runtime.Interp.exec vm ~mode:Runtime.Interp.Compiled ~meth:0 fn
      [| Runtime.Values.Vint 13; Runtime.Values.Vint (-7) |]
  with
  | Runtime.Values.Vint n -> Printf.sprintf "int:%d" n
  | v -> Printf.sprintf "other:%s" (Runtime.Values.to_string v)
  | exception Runtime.Values.Trap msg ->
      if Util.contains_substring ~needle:"step budget" msg then "diverges" else "trap:" ^ msg

let prop_ir_generator_valid =
  Test.make ~name:"random CFGs verify" ~count:120 ir_fn_arbitrary (fun fn ->
      match Ir.Verify.check fn with
      | () -> true
      | exception Ir.Verify.Ill_formed msg -> Test.fail_reportf "ill-formed: %s" msg)

let preserves_outcome name transform =
  Test.make ~name ~count:80 ir_fn_arbitrary (fun fn ->
      let before = run_ir_fn fn in
      let copy = Ir.Fn.copy fn in
      transform copy;
      (match Ir.Verify.check copy with
      | () -> ()
      | exception Ir.Verify.Ill_formed msg ->
          Test.fail_reportf "ill-formed after %s: %s" name msg);
      let after = run_ir_fn copy in
      if before <> after then
        Test.fail_reportf "outcome changed: %s -> %s@.%s" before after
          (Ir.Printer.fn_to_string fn)
      else true)

let prop_simplify_random_cfg =
  let prog = lazy (compile_ok "def main(): Unit = {}") in
  preserves_outcome "Driver.simplify preserves outcomes on random CFGs" (fun fn ->
      ignore (Opt.Driver.simplify (Lazy.force prog) fn))

let prop_cleanup_random_cfg =
  preserves_outcome "Simplify.cleanup preserves outcomes on random CFGs" (fun fn ->
      ignore (Opt.Simplify.cleanup fn))

let prop_gvn_random_cfg =
  preserves_outcome "GVN preserves outcomes on random CFGs" (fun fn ->
      ignore (Opt.Gvn.run fn))

let prop_dce_random_cfg =
  preserves_outcome "DCE preserves outcomes on random CFGs" (fun fn ->
      ignore (Opt.Dce.run fn))

let prop_licm_random_cfg =
  preserves_outcome "LICM preserves outcomes on random CFGs" (fun fn ->
      ignore (Opt.Licm.run fn))

(* brute-force dominance: a dominates b iff every entry->b path hits a *)
let prop_dominators_brute_force =
  Test.make ~name:"dominators agree with brute force" ~count:120 ir_fn_arbitrary
    (fun fn ->
      let doms = Ir.Dominators.compute fn in
      let reachable_avoiding avoid =
        let seen = Hashtbl.create 8 in
        let rec go b =
          if b <> avoid && not (Hashtbl.mem seen b) then begin
            Hashtbl.add seen b ();
            List.iter go (Ir.Fn.succs fn b)
          end
        in
        if fn.entry <> avoid then go fn.entry;
        seen
      in
      let blocks = Ir.Fn.rpo fn in
      List.for_all
        (fun a ->
          let unavoidable = reachable_avoiding a in
          List.for_all
            (fun b ->
              let brute = (not (Hashtbl.mem unavoidable b)) || a = b in
              let fast = Ir.Dominators.dominates doms ~a ~b in
              if brute <> fast then
                Test.fail_reportf "dominates %d %d: brute=%b fast=%b@.%s" a b brute fast
                  (Ir.Printer.fn_to_string fn)
              else true)
            blocks)
        blocks)

(* tuple algebra laws *)
let tuple_gen =
  Gen.(pair (float_range (-50.0) 50.0) (float_range 1.0 100.0))

let prop_merge_commutative =
  Test.make ~name:"tuple merge is commutative" ~count:200
    (QCheck.make Gen.(pair tuple_gen tuple_gen))
    (fun (t1, t2) -> Inliner.Analysis.merge t1 t2 = Inliner.Analysis.merge t2 t1)

let prop_merge_associative =
  Test.make ~name:"tuple merge is associative (ratio-equal)" ~count:200
    (QCheck.make Gen.(triple tuple_gen tuple_gen tuple_gen))
    (fun (t1, t2, t3) ->
      let a = Inliner.Analysis.merge (Inliner.Analysis.merge t1 t2) t3 in
      let b = Inliner.Analysis.merge t1 (Inliner.Analysis.merge t2 t3) in
      abs_float (Inliner.Analysis.ratio a -. Inliner.Analysis.ratio b) < 1e-9)

let prop_ratio_bounds =
  Test.make ~name:"merged ratio lies between the operands' ratios" ~count:200
    (QCheck.make Gen.(pair tuple_gen tuple_gen))
    (fun (t1, t2) ->
      let r1 = Inliner.Analysis.ratio t1 and r2 = Inliner.Analysis.ratio t2 in
      let rm = Inliner.Analysis.ratio (Inliner.Analysis.merge t1 t2) in
      rm >= min r1 r2 -. 1e-9 && rm <= max r1 r2 +. 1e-9)

let () =
  Alcotest.run "properties"
    [
      ( "programs",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_lowering_verifies;
            prop_optimizer_preserves;
            prop_canonicalize_idempotent;
            prop_incremental_differential;
            prop_incremental_1by1_differential;
            prop_greedy_differential;
            prop_c2_differential;
            prop_inliner_deterministic;
          ] );
      ( "random-cfg",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_ir_generator_valid;
            prop_simplify_random_cfg;
            prop_cleanup_random_cfg;
            prop_gvn_random_cfg;
            prop_dce_random_cfg;
            prop_licm_random_cfg;
            prop_dominators_brute_force;
          ] );
      ( "tuple-algebra",
        List.map QCheck_alcotest.to_alcotest
          [ prop_merge_commutative; prop_merge_associative; prop_ratio_bounds ] );
    ]
