(* Workload-suite tests: every benchmark program compiles, produces its
   pinned output under the interpreter, and produces the *same* output
   under every JIT configuration (differential testing across inliners).
   Also sanity-checks the performance ordering the evaluation relies on. *)

open Util

let configs () =
  [
    ("interp", None);
    ("greedy", Some greedy);
    ("c2like", Some c2like);
    ("incremental", Some (incremental ()));
    ("incr-fixed", Some (incremental ~params:(Inliner.Params.with_fixed ~te:300 ~ti:600 Inliner.Params.default) ()));
    ("incr-1by1", Some (incremental ~params:(Inliner.Params.without_clustering Inliner.Params.default) ()));
    ("incr-shallow", Some (incremental ~params:(Inliner.Params.without_deep_trials Inliner.Params.default) ()));
  ]

let run_with (w : Workloads.Defs.t) (name, compiler) =
  let prog = Workloads.Registry.compile w in
  let e =
    Jit.Engine.create prog
      { name; compiler; hotness_threshold = 5; compile_cost_per_node = 50; verify = true }
  in
  let run = Jit.Harness.run_benchmark ~iters:15 e ~entry:"bench" ~label:name in
  (e, run)

let per_workload (w : Workloads.Defs.t) =
  [
    test (w.name ^ " compiles") (fun () -> ignore (Workloads.Registry.compile w));
    test (w.name ^ " interpreted output matches pinned") (fun () ->
        let prog = Workloads.Registry.compile w in
        let vm = Runtime.Interp.create prog in
        ignore (Runtime.Interp.run_main vm);
        Alcotest.(check string) "output" w.expected (Runtime.Interp.output vm));
    test (w.name ^ " identical bench results under all configs") (fun () ->
        let results =
          List.map
            (fun cfg ->
              let prog = Workloads.Registry.compile w in
              let e =
                Jit.Engine.create prog
                  { name = fst cfg; compiler = snd cfg; hotness_threshold = 3;
                    compile_cost_per_node = 50; verify = true }
              in
              let v1 = Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ] in
              for _ = 1 to 8 do
                ignore (Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ])
              done;
              let v2 = Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ] in
              (fst cfg, Runtime.Values.as_int v1, Runtime.Values.as_int v2))
            (configs ())
        in
        match results with
        | (_, ref1, ref2) :: rest ->
            List.iter
              (fun (name, v1, v2) ->
                Alcotest.(check int) (name ^ " first iter") ref1 v1;
                Alcotest.(check int) (name ^ " after compilation") ref2 v2)
              rest
        | [] -> assert false);
  ]

let suite_tests =
  [
    test "registry names are unique" (fun () ->
        let names = Workloads.Registry.names () in
        Alcotest.(check int) "unique" (List.length names)
          (List.length (List.sort_uniq compare names)));
    test "registry find" (fun () ->
        Alcotest.(check bool) "found" true (Workloads.Registry.find "gauss-mix" <> None);
        Alcotest.(check bool) "absent" true (Workloads.Registry.find "nope" = None));
    test "suite covers all three flavors" (fun () ->
        let flavors =
          List.sort_uniq compare
            (List.map (fun (w : Workloads.Defs.t) -> w.flavor) Workloads.Registry.all)
        in
        Alcotest.(check int) "3 flavors" 3 (List.length flavors));
    test "compiled peak beats interpreter on every workload" (fun () ->
        List.iter
          (fun (w : Workloads.Defs.t) ->
            let _, interp_run = run_with w ("interp", None) in
            let _, incr_run = run_with w ("incremental", Some (incremental ())) in
            if incr_run.peak_cycles >= interp_run.peak_cycles then
              Alcotest.failf "%s: compiled (%f) not faster than interpreted (%f)" w.name
                incr_run.peak_cycles interp_run.peak_cycles)
          Workloads.Registry.all);
    test "incremental inliner beats greedy on scala-flavor workloads" (fun () ->
        (* the paper's headline claim, checked in aggregate: geometric mean
           speedup over the greedy baseline on abstraction-heavy code *)
        let ratios =
          List.filter_map
            (fun (w : Workloads.Defs.t) ->
              if w.flavor = Workloads.Defs.Scala then begin
                let _, g = run_with w ("greedy", Some greedy) in
                let _, i = run_with w ("incremental", Some (incremental ())) in
                Some (g.peak_cycles /. i.peak_cycles)
              end
              else None)
            Workloads.Registry.all
        in
        let gm = Support.Stats.geomean ratios in
        if gm <= 1.05 then
          Alcotest.failf "geomean speedup over greedy only %.3f" gm);
  ]

let synth_tests =
  [
    test "generation is deterministic in the seed" (fun () ->
        let a = Workloads.Synth.source_of Workloads.Synth.default in
        let b = Workloads.Synth.source_of Workloads.Synth.default in
        Alcotest.(check string) "same source" a b;
        let c =
          Workloads.Synth.source_of { Workloads.Synth.default with seed = 2 }
        in
        Alcotest.(check bool) "different seed differs" true (a <> c));
    test "generated programs compile and run" (fun () ->
        List.iter
          (fun cfg ->
            let w = Workloads.Synth.generate cfg in
            let prog = Workloads.Registry.compile w in
            let vm = Runtime.Interp.create prog in
            ignore (Runtime.Interp.run_main vm);
            Alcotest.(check string) w.name w.expected (Runtime.Interp.output vm))
          [
            Workloads.Synth.default;
            { Workloads.Synth.default with depth = 1; fanout = 1; poly_degree = 1 };
            { Workloads.Synth.default with depth = 5; fanout = 3; seed = 9 };
            { Workloads.Synth.default with poly_degree = 6; hot_fraction = 1.0 };
          ]);
    test "deep synthetic graphs compile correctly under every inliner" (fun () ->
        let w =
          Workloads.Synth.generate
            { Workloads.Synth.default with depth = 4; fanout = 2; seed = 5 }
        in
        List.iter
          (fun (name, compiler) ->
            let prog = Workloads.Registry.compile w in
            let e =
              Jit.Engine.create prog
                { name; compiler; hotness_threshold = 3; compile_cost_per_node = 50;
                  verify = true }
            in
            for _ = 1 to 6 do
              ignore (Jit.Engine.run_meth e "bench" [ Runtime.Values.Vunit ])
            done;
            ignore (Jit.Engine.run_main e);
            Alcotest.(check bool)
              (name ^ " output ends with expected")
              true
              (contains_substring ~needle:(String.trim w.expected) (Jit.Engine.output e)))
          [
            ("incremental", Some (incremental ()));
            ("greedy", Some greedy);
            ("c2like", Some c2like);
          ]);
    test "inliner scales on a wide synthetic graph" (fun () ->
        (* a stress shape: must terminate quickly and respect the size cap *)
        let w =
          Workloads.Synth.generate
            { Workloads.Synth.default with depth = 6; fanout = 3; poly_degree = 4; seed = 3 }
        in
        let prog = Workloads.Registry.compile w in
        Opt.Driver.prepare_program prog;
        let vm = Runtime.Interp.create prog in
        ignore (Runtime.Interp.run_main vm);
        let m = Option.get (Ir.Program.find_meth prog "bench") in
        let t0 = Unix.gettimeofday () in
        let result = Inliner.Algorithm.compile prog vm.profiles Inliner.Params.default m in
        let elapsed = Unix.gettimeofday () -. t0 in
        check_verifies result.body;
        Alcotest.(check bool) "under the cap" true
          (result.stats.final_size <= Inliner.Params.default.root_size_cap + 2000);
        if elapsed > 10.0 then Alcotest.failf "compilation took %.1fs" elapsed);
  ]

let () =
  Alcotest.run "workloads"
    (("suite", suite_tests)
    :: ("synth", synth_tests)
    :: List.map (fun (w : Workloads.Defs.t) -> (w.name, per_workload w)) Workloads.Registry.all)
