(* Behavioural tests of the SelVM interpreter: language semantics, runtime
   traps, and the cycle accounting. *)

open Util

let out what src expected =
  test what (fun () -> Alcotest.(check string) what expected (output_of src))

let traps what needle src =
  test what (fun () ->
      let prog = compile src in
      let vm = Runtime.Interp.create prog in
      match Runtime.Interp.run_main vm with
      | _ -> Alcotest.fail "expected a trap"
      | exception Runtime.Values.Trap msg ->
          if not (contains_substring ~needle msg) then
            Alcotest.failf "trap %S does not mention %S" msg needle)

let semantics_tests =
  [
    out "arithmetic" "def main(): Unit = println(7 + 3 * 4 - 10 / 3 % 2)" "18\n";
    out "negative division truncates toward zero"
      "def main(): Unit = { println((0-7) / 2); println((0-7) % 2) }" "-3\n-1\n";
    out "shifts" "def main(): Unit = { println(3 << 4); println(0 - (64 >> 2)) }" "48\n-16\n";
    out "bitwise" "def main(): Unit = println((12 & 10) + (12 | 10) + (12 ^ 10))" "28\n";
    out "comparisons"
      "def main(): Unit = { println(1 < 2); println(2 <= 1); println(3 > 2); println(2 >= 3) }"
      "true\nfalse\ntrue\nfalse\n";
    out "boolean ops"
      "def main(): Unit = { println(true && false); println(true || false); println(!true) }"
      "false\ntrue\nfalse\n";
    out "string ops"
      {|def main(): Unit = { println("he" == "he"); println("a" != "b"); println("abc".length) }|}
      "true\ntrue\n3\n";
    out "strget returns character code"
      {|def main(): Unit = println(strget("A", 0))|} "65\n";
    out "unit printing is forbidden by checker, bool/int/str work"
      {|def main(): Unit = { print(1); print(" "); print(true); println("") }|} "1 true\n";
    out "object field defaults"
      {|class C() { var i: Int var b: Bool var s: String }
        def main(): Unit = { val c = new C(); println(c.i); println(c.b); println(c.s == "") }|}
      "0\nfalse\ntrue\n";
    out "array defaults and writes"
      {|def main(): Unit = {
          val a = new Array[Int](3);
          println(a[0]);
          a[1] = 5;
          println(a[1] + a.length);
        }|}
      "0\n8\n";
    out "object arrays default to null"
      {|class C() {}
        def main(): Unit = { val a = new Array[C](2); println(a[0] == null) }|}
      "true\n";
    out "reference equality distinguishes instances"
      {|class C() {}
        def main(): Unit = { val a = new C(); val b = new C(); println(a == b); println(a == a) }|}
      "false\ntrue\n";
    out "virtual dispatch picks the runtime class"
      {|abstract class A { def m(): Int }
        class B() extends A { def m(): Int = 1 }
        class C() extends A { def m(): Int = 2 }
        def call(a: A): Int = a.m()
        def main(): Unit = println(call(new B()) * 10 + call(new C()))|}
      "12\n";
    out "inherited method dispatches through the child"
      {|class A() { def m(): Int = this.base() def base(): Int = 1 }
        class B() extends A { def base(): Int = 2 }
        def main(): Unit = println(new B().m())|}
      "2\n";
    out "closures capture values"
      {|def main(): Unit = {
          val k = 100;
          val f = (x: Int) => x + k;
          println(f(1) + f(2));
        }|}
      "203\n";
    out "closures capture receiver for field access"
      {|class Counter(n: Int) {
          def incrementer(): Int => Int = (d: Int) => { this.n = this.n + d; this.n }
        }
        def main(): Unit = {
          val c = new Counter(10);
          val inc = c.incrementer();
          println(inc(5));
          println(inc(7));
          println(c.n);
        }|}
      "15\n22\n22\n";
    out "higher-order functions"
      {|def twice(f: Int => Int, x: Int): Int = f(f(x))
        def main(): Unit = println(twice((x: Int) => x * 3, 2))|}
      "18\n";
    out "recursion (fibonacci)"
      {|def fib(n: Int): Int = if (n < 2) { n } else { fib(n - 1) + fib(n - 2) }
        def main(): Unit = println(fib(15))|}
      "610\n";
    out "mutual recursion"
      {|def isEven(n: Int): Bool = if (n == 0) { true } else { isOdd(n - 1) }
        def isOdd(n: Int): Bool = if (n == 0) { false } else { isEven(n - 1) }
        def main(): Unit = println(isEven(10))|}
      "true\n";
    out "while with complex condition"
      {|def main(): Unit = {
          var i = 0;
          var stop = false;
          while (!stop && i < 100) { i = i + 2; if (i >= 10) { stop = true } }
          println(i);
        }|}
      "10\n";
    out "typetest via dispatch chain still sound"
      {|abstract class A { def tag(): Int }
        class B() extends A { def tag(): Int = 1 }
        class C() extends B { def tag(): Int = 2 }
        def main(): Unit = { val x: A = new C(); println(x.tag()) }|}
      "2\n";
  ]

let trap_tests =
  [
    traps "division by zero" "division by zero" "def main(): Unit = println(1 / 0)";
    traps "remainder by zero" "remainder" "def main(): Unit = println(1 % 0)";
    traps "array bounds (read)" "out of bounds"
      "def main(): Unit = { val a = new Array[Int](2); println(a[5]) }";
    traps "array bounds (negative)" "out of bounds"
      "def main(): Unit = { val a = new Array[Int](2); println(a[0-1]) }";
    traps "negative array length" "negative array length"
      "def main(): Unit = { val a = new Array[Int](0-3); }";
    traps "null field access" "null"
      {|class C() { var f: Int }
        def main(): Unit = { var c: C = null; println(c.f) }|};
    traps "null method call" "null"
      {|class C() { def m(): Int = 1 }
        def main(): Unit = { var c: C = null; println(c.m()) }|};
    traps "string index out of bounds" "out of bounds"
      {|def main(): Unit = println(strget("a", 3))|};
    traps "stack overflow" "stack overflow"
      "def loop(n: Int): Int = loop(n + 1)\ndef main(): Unit = println(loop(0))";
  ]

let accounting_tests =
  [
    test "cycles are monotone and deterministic" (fun () ->
        let src = "def main(): Unit = { var i = 0; while (i < 100) { i = i + 1 } }" in
        let run () =
          let vm = Runtime.Interp.create (compile src) in
          ignore (Runtime.Interp.run_main vm);
          vm.cycles
        in
        let a = run () and b = run () in
        Alcotest.(check bool) "positive" true (a > 0);
        Alcotest.(check int) "deterministic" a b);
    test "bigger work costs more cycles" (fun () ->
        let cycles n =
          let src =
            Printf.sprintf
              "def main(): Unit = { var i = 0; while (i < %d) { i = i + 1 } }" n
          in
          let vm = Runtime.Interp.create (compile src) in
          ignore (Runtime.Interp.run_main vm);
          vm.cycles
        in
        Alcotest.(check bool) "monotone" true (cycles 200 > cycles 20));
    test "virtual calls cost more than direct calls" (fun () ->
        let c = Runtime.Cost.default in
        Alcotest.(check bool) "virtual > direct" true
          (Runtime.Cost.call_overhead c ~virtual_:true ~targets:1
          > Runtime.Cost.call_overhead c ~virtual_:false ~targets:1);
        Alcotest.(check bool) "megamorphic > virtual" true
          (Runtime.Cost.call_overhead c ~virtual_:true ~targets:5
          > Runtime.Cost.call_overhead c ~virtual_:true ~targets:1));
    test "step budget traps runaway programs" (fun () ->
        let prog = compile "def main(): Unit = { var i = 0; while (i >= 0) { i = i + 1 } }" in
        let vm = Runtime.Interp.create ~max_steps:10_000 prog in
        match Runtime.Interp.run_main vm with
        | _ -> Alcotest.fail "expected step trap"
        | exception Runtime.Values.Trap msg ->
            Alcotest.(check bool) "message" true
              (contains_substring ~needle:"step budget" msg));
    test "output capture is exact" (fun () ->
        Alcotest.(check string) "out" "a1b-2true\n"
          (output_of
             {|def main(): Unit = { print("a"); print(1); print("b"); print(0-2); print(true); println("") }|}));
  ]

(* Table-driven operator coverage: every binop/unop against a reference
   OCaml implementation on edge-heavy inputs, executed through a tiny IR
   function (both tiers agree by construction — one evaluator). Also pins
   agreement between the interpreter and the constant folder. *)
let op_coverage_tests =
  let open Ir.Types in
  let inputs =
    [ (0, 0); (1, 1); (-1, 1); (7, -3); (-7, 3); (-7, -3); (1000000, 999);
      (5, 62); (-5, 62); (1 lsl 40, 3); (min_int / 4, 2); (max_int / 4, 2) ]
  in
  let int_ops =
    [ (Add, ( + )); (Sub, ( - )); (Mul, ( * ));
      (Band, ( land )); (Bor, ( lor )); (Bxor, ( lxor ));
      (Shl, fun a b -> a lsl (b land 63));
      (Shr, fun a b -> a asr (b land 63)) ]
  in
  let cmp_ops =
    [ (Lt, ( < )); (Le, ( <= )); (Gt, ( > )); (Ge, ( >= ));
      (Eq, ( = )); (Ne, ( <> )) ]
  in
  let run_binop op a b =
    let fn = Ir.Fn.create ~fname:"op" ~param_tys:[| Tint; Tint |] ~rty:Tint in
    let b0 = Ir.Fn.add_block fn in
    fn.entry <- b0;
    let p0 = Ir.Fn.append fn b0 (Param 0) in
    let p1 = Ir.Fn.append fn b0 (Param 1) in
    let r = Ir.Fn.append fn b0 (Binop (op, p0, p1)) in
    Ir.Fn.set_term fn b0 (Return r);
    let prog = compile "def main(): Unit = {}" in
    let vm = Runtime.Interp.create prog in
    Runtime.Interp.exec vm ~mode:Runtime.Interp.Compiled ~meth:0 fn
      [| Runtime.Values.Vint a; Runtime.Values.Vint b |]
  in
  [
    test "integer binops match the reference" (fun () ->
        List.iter
          (fun (op, reference) ->
            List.iter
              (fun (a, b) ->
                Alcotest.(check int)
                  (Printf.sprintf "%s %d %d" (Ir.Printer.binop_name op) a b)
                  (reference a b)
                  (Runtime.Values.as_int (run_binop op a b)))
              inputs)
          int_ops);
    test "comparisons match the reference" (fun () ->
        List.iter
          (fun (op, reference) ->
            List.iter
              (fun (a, b) ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s %d %d" (Ir.Printer.binop_name op) a b)
                  (reference a b)
                  (Runtime.Values.as_bool (run_binop op a b)))
              inputs)
          cmp_ops);
    test "division and remainder match the reference when defined" (fun () ->
        List.iter
          (fun (a, b) ->
            if b <> 0 then begin
              Alcotest.(check int)
                (Printf.sprintf "div %d %d" a b)
                (a / b)
                (Runtime.Values.as_int (run_binop Div a b));
              Alcotest.(check int)
                (Printf.sprintf "rem %d %d" a b)
                (a mod b)
                (Runtime.Values.as_int (run_binop Rem a b))
            end)
          inputs);
    test "constant folder agrees with the interpreter on every int op" (fun () ->
        List.iter
          (fun op ->
            List.iter
              (fun (a, b) ->
                match Opt.Canonicalize.fold_binop op (Cint a) (Cint b) with
                | Some (Cint folded) ->
                    Alcotest.(check int)
                      (Printf.sprintf "%s %d %d" (Ir.Printer.binop_name op) a b)
                      (Runtime.Values.as_int (run_binop op a b))
                      folded
                | Some (Cbool folded) ->
                    Alcotest.(check bool)
                      (Printf.sprintf "%s %d %d" (Ir.Printer.binop_name op) a b)
                      (Runtime.Values.as_bool (run_binop op a b))
                      folded
                | Some _ -> Alcotest.fail "unexpected constant kind"
                | None ->
                    (* only division-like ops on zero may refuse to fold *)
                    if not ((op = Div || op = Rem) && b = 0) then
                      Alcotest.failf "%s %d %d did not fold"
                        (Ir.Printer.binop_name op) a b)
              inputs)
          [ Add; Sub; Mul; Div; Rem; Shl; Shr; Band; Bor; Bxor; Lt; Le; Gt; Ge; Eq; Ne ]);
    test "boolean binops and unops" (fun () ->
        let cases = [ (true, true); (true, false); (false, true); (false, false) ] in
        let run op a b =
          let fn = Ir.Fn.create ~fname:"op" ~param_tys:[| Tbool; Tbool |] ~rty:Tbool in
          let b0 = Ir.Fn.add_block fn in
          fn.entry <- b0;
          let p0 = Ir.Fn.append fn b0 (Param 0) in
          let p1 = Ir.Fn.append fn b0 (Param 1) in
          let r = Ir.Fn.append fn b0 (Binop (op, p0, p1)) in
          Ir.Fn.set_term fn b0 (Return r);
          let prog = compile "def main(): Unit = {}" in
          let vm = Runtime.Interp.create prog in
          Runtime.Values.as_bool
            (Runtime.Interp.exec vm ~mode:Runtime.Interp.Compiled ~meth:0 fn
               [| Runtime.Values.Vbool a; Runtime.Values.Vbool b |])
        in
        List.iter
          (fun (op, reference) ->
            List.iter
              (fun (a, b) ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s %b %b" (Ir.Printer.binop_name op) a b)
                  (reference a b) (run op a b))
              cases)
          [ (Andb, ( && )); (Orb, ( || )); (Xorb, ( <> )); (Eqb, ( = )) ]);
    test "unops" (fun () ->
        List.iter
          (fun n ->
            Alcotest.(check string)
              (Printf.sprintf "neg %d" n)
              (string_of_int (-n))
              (String.trim
                 (output_of (Printf.sprintf "def main(): Unit = println(0 - (%d))" n))))
          [ 0; 5; -5; 1000000 ])
  ]

let () =
  Alcotest.run "interp"
    [
      ("semantics", semantics_tests);
      ("traps", trap_tests);
      ("accounting", accounting_tests);
      ("op-coverage", op_coverage_tests);
    ]
