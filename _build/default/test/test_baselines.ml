(* Tests for the baseline inliners (greedy open-source-Graal-like and
   C2-like): correctness under inlining, threshold behaviour, and
   monomorphic speculation. *)

open Util

let compile_baseline (compiler : Jit.Engine.compiler) (src : string) (root : string) :
    Ir.Types.fn * Ir.Types.program * Runtime.Interp.vm =
  let prog = compile src in
  Opt.Driver.prepare_program prog;
  let vm = Runtime.Interp.create prog in
  ignore (Runtime.Interp.run_main vm);
  let m = Option.get (Ir.Program.find_meth prog root) in
  let body = compiler prog vm.profiles m in
  check_verifies body;
  (body, prog, vm)

let differential (compiler : Jit.Engine.compiler) (src : string) (roots : string list) =
  let reference = output_of ~prepare:true src in
  let prog = compile src in
  Opt.Driver.prepare_program prog;
  let vm = Runtime.Interp.create prog in
  ignore (Runtime.Interp.run_main vm);
  let cache = Hashtbl.create 4 in
  List.iter
    (fun name ->
      let m = Option.get (Ir.Program.find_meth prog name) in
      let body = compiler prog vm.profiles m in
      check_verifies body;
      Hashtbl.replace cache m body)
    roots;
  let vm2 = Runtime.Interp.create prog in
  vm2.code <- (fun m -> Hashtbl.find_opt cache m);
  ignore (Runtime.Interp.run_main vm2);
  Alcotest.(check string) "differential" reference (Runtime.Interp.output vm2)

let hot_loop_src =
  {|def add1(x: Int): Int = x + 1
    def f(): Int = { var i = 0; var s = 0; while (i < 100) { s = add1(s); i = i + 1 }; s }
    def main(): Unit = println(f())|}

let mono_src =
  {|abstract class A { def m(): Int }
    class B() extends A { def m(): Int = 7 }
    class C() extends A { def m(): Int = 9 }
    def call(a: A): Int = a.m()
    def main(): Unit = {
      val b = new B();
      var i = 0;
      var s = 0;
      while (i < 50) { s = s + call(b); i = i + 1 }
      /* C exists but is never the receiver: profile is monomorphic */
      println(s)
    }|}

let greedy_tests =
  [
    test "greedy inlines the hot direct call" (fun () ->
        let body, _, _ = compile_baseline greedy hot_loop_src "f" in
        Alcotest.(check int) "no calls" 0 (count_calls body));
    test "greedy preserves behaviour" (fun () -> differential greedy hot_loop_src [ "f" ]);
    test "greedy respects the callee size cap" (fun () ->
        let params = { Baselines.Greedy.default with max_callee_size = 3 } in
        let compiler p pr m = Baselines.Greedy.compile ~params p pr m in
        let body, _, _ = compile_baseline compiler hot_loop_src "f" in
        Alcotest.(check bool) "call survives" true (count_calls body > 0));
    test "greedy respects the root size cap" (fun () ->
        let params = { Baselines.Greedy.default with max_root_size = 1 } in
        let compiler p pr m = Baselines.Greedy.compile ~params p pr m in
        let body, prog, _ = compile_baseline compiler hot_loop_src "f" in
        ignore prog;
        Alcotest.(check bool) "no growth" true (count_calls body > 0));
    test "greedy speculates monomorphic virtual calls" (fun () ->
        let body, _, _ = compile_baseline greedy mono_src "call" in
        (* the virtual call became a typeswitch whose direct call then
           inlined: only the fallback virtual call remains *)
        Alcotest.(check bool) "typetest present" true
          (count_instrs body (function Ir.Types.TypeTest _ -> true | _ -> false) >= 1);
        differential greedy mono_src [ "call" ]);
    test "greedy on all workloads is correct" (fun () ->
        List.iter
          (fun (w : Workloads.Defs.t) -> differential greedy w.source [ "bench" ])
          Workloads.Registry.all);
  ]

let c2_tests =
  [
    test "c2 inlines trivial methods at parse time" (fun () ->
        let body, _, _ = compile_baseline c2like hot_loop_src "f" in
        Alcotest.(check int) "no calls" 0 (count_calls body));
    test "c2 preserves behaviour" (fun () -> differential c2like hot_loop_src [ "f" ]);
    test "c2 trivial-size gate" (fun () ->
        let params = { Baselines.C2like.default with trivial_size = 1; max_inline_size = 1 } in
        let compiler p pr m = Baselines.C2like.compile ~params p pr m in
        let body, _, _ = compile_baseline compiler hot_loop_src "f" in
        Alcotest.(check bool) "call survives" true (count_calls body > 0));
    test "c2 speculates only above its probability bar" (fun () ->
        differential c2like mono_src [ "call" ]);
    test "c2 on all workloads is correct" (fun () ->
        List.iter
          (fun (w : Workloads.Defs.t) -> differential c2like w.source [ "bench" ])
          Workloads.Registry.all);
    test "c2 phase separation: depth grows through trivial inlining" (fun () ->
        let src =
          {|def l3(): Int = 3
            def l2(): Int = l3() + 1
            def l1(): Int = l2() + 1
            def f(): Int = l1() + 1
            def main(): Unit = println(f())|}
        in
        let body, _, _ = compile_baseline c2like src "f" in
        Alcotest.(check int) "chain fully inlined" 0 (count_calls body);
        differential c2like src [ "f" ]);
  ]

let () =
  Alcotest.run "baselines" [ ("greedy", greedy_tests); ("c2like", c2_tests) ]
