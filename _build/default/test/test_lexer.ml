(* Unit tests for the Sel lexer. *)

open Util
open Frontend.Lexer

let toks src = List.map (fun t -> t.t) (tokenize src)

let tok = Alcotest.testable (fun ppf t -> Fmt.string ppf (token_to_string t)) ( = )

let tests =
  [
    test "empty input yields EOF" (fun () ->
        Alcotest.(check (list tok)) "eof" [ EOF ] (toks ""));
    test "integers" (fun () ->
        Alcotest.(check (list tok)) "ints" [ INT 0; INT 42; INT 1234567; EOF ]
          (toks "0 42 1234567"));
    test "identifiers and keywords" (fun () ->
        Alcotest.(check (list tok))
          "mix"
          [ KW "class"; IDENT "Foo"; KW "def"; IDENT "bar"; KW "this"; EOF ]
          (toks "class Foo def bar this"));
    test "identifier with digits, underscore, dollar" (fun () ->
        Alcotest.(check (list tok)) "id" [ IDENT "a_b2$c"; EOF ] (toks "a_b2$c"));
    test "two-char operators win over one-char" (fun () ->
        Alcotest.(check (list tok))
          "ops"
          [ PUNCT "=>"; PUNCT "=="; PUNCT "!="; PUNCT "<="; PUNCT ">="; PUNCT "<<";
            PUNCT ">>"; PUNCT "&&"; PUNCT "||"; EOF ]
          (toks "=> == != <= >= << >> && ||"));
    test "adjacent = = is two tokens" (fun () ->
        Alcotest.(check (list tok)) "eq" [ PUNCT "="; PUNCT "="; EOF ] (toks "= ="));
    test "punctuation" (fun () ->
        Alcotest.(check (list tok))
          "punct"
          [ PUNCT "("; PUNCT ")"; PUNCT "{"; PUNCT "}"; PUNCT "["; PUNCT "]";
            PUNCT ","; PUNCT ";"; PUNCT ":"; PUNCT "."; EOF ]
          (toks "(){}[],;:."));
    test "string literal" (fun () ->
        Alcotest.(check (list tok)) "str" [ STRING "hello"; EOF ] (toks "\"hello\""));
    test "string escapes" (fun () ->
        Alcotest.(check (list tok))
          "esc" [ STRING "a\nb\tc\\d\"e"; EOF ]
          (toks {|"a\nb\tc\\d\"e"|}));
    test "line comment skipped" (fun () ->
        Alcotest.(check (list tok)) "comment" [ INT 1; INT 2; EOF ]
          (toks "1 // comment here\n2"));
    test "block comment skipped" (fun () ->
        Alcotest.(check (list tok)) "comment" [ INT 1; INT 2; EOF ] (toks "1 /* x */ 2"));
    test "nested block comments" (fun () ->
        Alcotest.(check (list tok)) "nested" [ INT 1; INT 2; EOF ]
          (toks "1 /* a /* b */ c */ 2"));
    test "unterminated string is an error" (fun () ->
        match tokenize "\"abc" with
        | _ -> Alcotest.fail "expected Lex_error"
        | exception Lex_error (msg, _) ->
            Alcotest.(check bool) "message" true
              (String.length msg > 0));
    test "unterminated block comment is an error" (fun () ->
        match tokenize "/* abc" with
        | _ -> Alcotest.fail "expected Lex_error"
        | exception Lex_error _ -> ());
    test "invalid escape is an error" (fun () ->
        match tokenize {|"\q"|} with
        | _ -> Alcotest.fail "expected Lex_error"
        | exception Lex_error _ -> ());
    test "unexpected character is an error" (fun () ->
        match tokenize "#" with
        | _ -> Alcotest.fail "expected Lex_error"
        | exception Lex_error _ -> ());
    test "positions track lines and columns" (fun () ->
        let ts = tokenize "a\n  b" in
        match ts with
        | [ a; b; _eof ] ->
            Alcotest.(check int) "a line" 1 a.pos.line;
            Alcotest.(check int) "a col" 1 a.pos.col;
            Alcotest.(check int) "b line" 2 b.pos.line;
            Alcotest.(check int) "b col" 3 b.pos.col
        | _ -> Alcotest.fail "token count");
    test "keywords are not identifiers" (fun () ->
        Alcotest.(check (list tok)) "kw" [ KW "while"; IDENT "whilex"; EOF ]
          (toks "while whilex"));
  ]

let () = Alcotest.run "lexer" [ ("lexer", tests) ]
