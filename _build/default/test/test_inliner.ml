(* Tests for the core contribution: the call tree, deep inlining trials,
   the expansion phase (priorities/penalties/thresholds), the clustering
   analysis, typeswitch materialization, the inline phase, and the whole
   algorithm end to end. *)

open Util
open Inliner

(* Builds a call tree for [root] after interpreting main once (so profiles
   exist), exactly as the engine would. *)
let tree_of ?(params = Params.default) (src : string) (root : string) : Calltree.t =
  let prog = compile src in
  Opt.Driver.prepare_program prog;
  let vm = Runtime.Interp.create prog in
  ignore (Runtime.Interp.run_main vm);
  let m = Option.get (Ir.Program.find_meth prog root) in
  Calltree.create prog vm.profiles params m

let compile_with ?(params = Params.default) (src : string) (root : string) :
    Inliner.Algorithm.result * Ir.Types.program * Runtime.Interp.vm =
  let prog = compile src in
  Opt.Driver.prepare_program prog;
  let vm = Runtime.Interp.create prog in
  ignore (Runtime.Interp.run_main vm);
  let m = Option.get (Ir.Program.find_meth prog root) in
  let result = Algorithm.compile prog vm.profiles params m in
  check_verifies result.body;
  (result, prog, vm)

(* Runs [entry] with the compiled body installed and compares output with
   the pure interpreter. *)
let check_differential ?(params = Params.default) (src : string) (roots : string list) :
    unit =
  let reference = output_of ~prepare:true src in
  let prog = compile src in
  Opt.Driver.prepare_program prog;
  let vm = Runtime.Interp.create prog in
  ignore (Runtime.Interp.run_main vm);
  let cache = Hashtbl.create 4 in
  List.iter
    (fun name ->
      let m = Option.get (Ir.Program.find_meth prog name) in
      let result = Algorithm.compile prog vm.profiles params m in
      check_verifies result.body;
      Hashtbl.replace cache m result.Algorithm.body)
    roots;
  let vm2 = Runtime.Interp.create prog in
  vm2.code <- (fun m -> Hashtbl.find_opt cache m);
  ignore (Runtime.Interp.run_main vm2);
  Alcotest.(check string) "differential" reference (Runtime.Interp.output vm2)

let poly_src =
  {|abstract class A { def m(): Int }
    class B() extends A { def m(): Int = 1 }
    class C() extends A { def m(): Int = 2 }
    class D() extends A { def m(): Int = 3 }
    def call(a: A): Int = a.m()
    def main(): Unit = {
      val items = new Array[A](10);
      var i = 0;
      while (i < 10) {
        if (i % 2 == 0) { items[i] = new B() }
        else { if (i % 3 == 0) { items[i] = new C() } else { items[i] = new D() } };
        i = i + 1;
      }
      var s = 0;
      i = 0;
      while (i < 10) { s = s + call(items[i]); i = i + 1; }
      println(s)
    }|}

let calltree_tests =
  [
    test "root children found with frequencies" (fun () ->
        let t =
          tree_of
            {|def g(): Int = 1
              def h(): Int = 2
              def f(): Int = { var i = 0; var s = 0; while (i < 10) { s = s + g(); i = i + 1 }; s + h() }
              def main(): Unit = println(f())|}
            "f"
        in
        Alcotest.(check int) "two children" 2 (List.length t.children);
        let freq_of target =
          List.find_map
            (fun (n : Calltree.node) ->
              match n.kind with
              | Calltree.Cutoff (Calltree.Known m)
                when (Ir.Program.meth t.prog m).m_name = target ->
                  Some n.freq
              | _ -> None)
            t.children
        in
        let gf = Option.get (freq_of "g") and hf = Option.get (freq_of "h") in
        Alcotest.(check bool) "loop call hotter" true (gf > 5.0 *. hf);
        Alcotest.(check (float 0.01)) "h once per invocation" 1.0 hf);
    test "subtree metrics on fresh tree" (fun () ->
        let t =
          tree_of "def g(): Int = 1\ndef f(): Int = g()\ndef main(): Unit = println(f())" "f"
        in
        Alcotest.(check int) "one cutoff" 1 (Calltree.tree_n_c t);
        Alcotest.(check bool) "s_ir includes root" true
          (Calltree.tree_s_ir t > Ir.Fn.size t.root_fn));
    test "expanding a direct cutoff attaches a specialized body" (fun () ->
        let t =
          tree_of
            {|def g(x: Int): Int = x * 2
              def f(): Int = g(21)
              def main(): Unit = println(f())|}
            "f"
        in
        let n = List.hd t.children in
        Alcotest.(check bool) "expanded" true (Calltree.expand_cutoff t n);
        (match n.kind with
        | Calltree.Expanded { body; _ } ->
            check_verifies body;
            (* constant argument folded inside the trial copy: x*2 -> 42 *)
            Alcotest.(check int) "body fully folded" 0
              (count_instrs body (function Ir.Types.Binop _ -> true | _ -> false))
        | _ -> Alcotest.fail "not expanded");
        Alcotest.(check bool) "n_opts counted" true
          (match n.kind with
          | Calltree.Expanded { n_opts; _ } -> n_opts > 0
          | _ -> false));
    test "expansion creates grandchildren cutoffs" (fun () ->
        let t =
          tree_of
            {|def leaf(): Int = 1
              def mid(): Int = leaf() + leaf()
              def f(): Int = mid()
              def main(): Unit = println(f())|}
            "f"
        in
        let n = List.hd t.children in
        ignore (Calltree.expand_cutoff t n);
        Alcotest.(check int) "two grandchildren" 2 (List.length n.children);
        Alcotest.(check int) "cutoff count" 2 (Calltree.tree_n_c t));
    test "virtual cutoff with profile becomes poly" (fun () ->
        let t = tree_of poly_src "call" in
        let n = List.hd t.children in
        (match n.kind with
        | Calltree.Cutoff (Calltree.Unknown sel) ->
            Alcotest.(check string) "selector" "m" sel
        | _ -> Alcotest.fail "expected unknown cutoff");
        ignore (Calltree.expand_cutoff t n);
        match n.kind with
        | Calltree.Poly _ ->
            Alcotest.(check int) "3 targets" 3 (List.length n.children);
            let probs = List.map (fun (c : Calltree.node) -> c.prob) n.children in
            List.iter
              (fun p -> Alcotest.(check bool) "prob >= 0.1" true (p >= 0.1))
              probs
        | _ -> Alcotest.fail "expected poly");
    test "virtual cutoff without profile becomes generic" (fun () ->
        let src =
          {|abstract class A { def m(): Int }
            class B() extends A { def m(): Int = 1 }
            class C() extends A { def m(): Int = 2 }
            def call(a: A): Int = a.m()
            def main(): Unit = println(0)|}
        in
        let t = tree_of src "call" in
        let n = List.hd t.children in
        Alcotest.(check bool) "no expansion" false (Calltree.expand_cutoff t n);
        match n.kind with
        | Calltree.Generic _ -> ()
        | _ -> Alcotest.fail "expected generic");
    test "recursion beyond the hard limit becomes generic" (fun () ->
        let src =
          {|def f(n: Int): Int = if (n <= 0) { 0 } else { f(n - 1) + 1 }
            def main(): Unit = println(f(30))|}
        in
        let t = tree_of src "f" in
        let rec expand_deep (n : Calltree.node) depth =
          if depth > 20 then Alcotest.fail "expansion did not hit the limit"
          else
            match n.kind with
            | Calltree.Cutoff _ ->
                ignore (Calltree.expand_cutoff t n);
                (match n.kind with
                | Calltree.Expanded _ ->
                    List.iter (fun c -> expand_deep c (depth + 1)) n.children
                | Calltree.Generic _ -> raise Exit
                | _ -> ())
            | _ -> ()
        in
        match List.iter (fun n -> expand_deep n 0) t.children with
        | () -> Alcotest.fail "expected a generic recursion stop"
        | exception Exit -> ());
    test "local benefit grows with refined args" (fun () ->
        let t =
          tree_of
            {|def g(x: Int): Int = x + 1
              def h(x: Int): Int = x + 1
              def f(y: Int): Int = g(5) + h(y)
              def main(): Unit = println(f(1))|}
            "f"
        in
        let find name =
          List.find
            (fun (n : Calltree.node) ->
              match n.kind with
              | Calltree.Cutoff (Calltree.Known m) -> (Ir.Program.meth t.prog m).m_name = name
              | _ -> false)
            t.children
        in
        let g = find "g" and h = find "h" in
        Alcotest.(check bool) "const arg = more benefit" true
          (Calltree.local_benefit t g > Calltree.local_benefit t h));
    test "refresh marks deleted callsites" (fun () ->
        let t =
          tree_of
            {|def g(): Int = 5
              def f(c: Bool): Int = if (true) { 1 } else { g() }
              def main(): Unit = println(f(true))|}
            "f"
        in
        (* prepared body already pruned the branch, so g was never a child;
           instead delete manually: simulate an optimization killing a call *)
        let t2 =
          tree_of
            {|def g(): Int = 5
              def f(): Int = g()
              def main(): Unit = println(f())|}
            "f"
        in
        ignore t;
        let n = List.hd t2.children in
        Ir.Fn.delete_instr t2.root_fn n.call_vid;
        Calltree.refresh t2;
        match n.kind with
        | Calltree.Deleted -> ()
        | _ -> Alcotest.fail "expected deleted");
  ]

let analysis_tests =
  [
    test "tuple algebra: merge adds, ratio divides" (fun () ->
        let r = Analysis.ratio (Analysis.merge (2.0, 4.0) (1.0, 2.0)) in
        Alcotest.(check (float 1e-9)) "(2+1)/(4+2)" 0.5 r);
    test "clustering absorbs children that improve the ratio" (fun () ->
        (* mid alone is worthless (it just forwards); leaf is where the
           value is — they must end up in one cluster *)
        let t =
          tree_of
            {|def leaf(x: Int): Int = x * 2 + 1
              def mid(x: Int): Int = leaf(x)
              def f(): Int = { var i = 0; var s = 0; while (i < 50) { s = s + mid(i); i = i + 1 }; s }
              def main(): Unit = println(f())|}
            "f"
        in
        Expansion.run t |> ignore;
        Analysis.run t;
        let mid = List.hd t.children in
        (match mid.kind with
        | Calltree.Expanded _ -> ()
        | _ -> Alcotest.fail "mid should be expanded");
        match mid.children with
        | [ leaf ] ->
            Alcotest.(check bool) "leaf in mid's cluster" true leaf.in_parent_cluster;
            Alcotest.(check bool) "front empty" true (mid.front = [])
        | _ -> Alcotest.fail "expected one grandchild");
    test "1-by-1 policy never merges" (fun () ->
        let t =
          tree_of
            ~params:(Params.without_clustering Params.default)
            {|def leaf(x: Int): Int = x * 2 + 1
              def mid(x: Int): Int = leaf(x)
              def f(): Int = { var i = 0; var s = 0; while (i < 50) { s = s + mid(i); i = i + 1 }; s }
              def main(): Unit = println(f())|}
            "f"
        in
        Expansion.run t |> ignore;
        Analysis.run t;
        let mid = List.hd t.children in
        match mid.children with
        | [ leaf ] -> Alcotest.(check bool) "not merged" false leaf.in_parent_cluster
        | _ -> Alcotest.fail "expected one grandchild");
    test "generic children stay out of the front" (fun () ->
        let t = tree_of poly_src "main" in
        Expansion.run t |> ignore;
        Analysis.run t;
        let rec check_node (n : Calltree.node) =
          List.iter
            (fun (m : Calltree.node) ->
              match m.kind with
              | Calltree.Generic _ | Calltree.Deleted | Calltree.Cutoff (Calltree.Unknown _)
                ->
                  Alcotest.(check bool) "not inlinable in front" false
                    (List.exists (fun (f : Calltree.node) -> f.nid = m.nid) n.front)
              | _ -> ())
            n.children;
          List.iter check_node n.children
        in
        List.iter check_node t.children);
  ]

let expansion_tests =
  [
    test "expansion prefers the hotter subtree" (fun () ->
        let t =
          tree_of
            {|def hot(x: Int): Int = x + 1
              def cold(x: Int): Int = x * 3
              def f(): Int = {
                var i = 0;
                var s = 0;
                while (i < 100) { s = s + hot(i); i = i + 1; }
                s + cold(5)
              }
              def main(): Unit = println(f())|}
            "f"
        in
        let expanded = Expansion.run t in
        Alcotest.(check bool) "expanded something" true (expanded > 0);
        let hot_expanded =
          List.exists
            (fun (n : Calltree.node) ->
              match n.kind with
              | Calltree.Expanded _ -> n.freq > 10.0
              | _ -> false)
            t.children
        in
        Alcotest.(check bool) "hot call expanded" true hot_expanded);
    test "fixed policy stops at the T_e budget" (fun () ->
        let src =
          {|def a(): Int = 1 + 2 + 3
            def b(): Int = a() + a()
            def c(): Int = b() + b()
            def f(): Int = c() + c()
            def main(): Unit = println(f())|}
        in
        let t = tree_of ~params:(Params.with_fixed ~te:1 ~ti:1000 Params.default) src "f" in
        let expanded = Expansion.run t in
        Alcotest.(check int) "budget exhausted immediately" 0 expanded);
    test "recursion penalty suppresses endless self-expansion" (fun () ->
        let src =
          {|def f(n: Int): Int = if (n <= 0) { 0 } else { f(n - 1) + 1 }
            def main(): Unit = println(f(30))|}
        in
        let t = tree_of src "f" in
        let expanded = Expansion.run t in
        (* must terminate and not blow the per-round cap *)
        Alcotest.(check bool) "bounded" true
          (expanded <= Params.default.max_expansions_per_round));
    test "priority of an expanded node is the max over children" (fun () ->
        let t =
          tree_of
            {|def leaf(): Int = 42
              def mid(): Int = leaf()
              def f(): Int = { var i = 0; var s = 0; while (i < 30) { s = s + mid(); i = i + 1 }; s }
              def main(): Unit = println(f())|}
            "f"
        in
        let mid = List.hd t.children in
        ignore (Calltree.expand_cutoff t mid);
        let leaf = List.hd mid.children in
        let pi_mid = Expansion.intrinsic_priority t mid in
        let pi_leaf = Expansion.intrinsic_priority t leaf in
        Alcotest.(check (float 1e-9)) "max rule" pi_leaf pi_mid);
  ]

let typeswitch_tests =
  [
    test "materialized typeswitch preserves behaviour" (fun () ->
        check_differential poly_src [ "call"; "main" ]);
    test "typeswitch orders specific classes first" (fun () ->
        let src =
          {|class B() { def m(): Int = 1 }
            class C() extends B { def m(): Int = 2 }
            def call(b: B): Int = b.m()
            def main(): Unit = {
              var i = 0;
              var s = 0;
              while (i < 20) {
                s = s + call(new B()) + call(new C());
                i = i + 1;
              }
              println(s)
            }|}
        in
        check_differential src [ "call" ]);
    test "megamorphic fallback stays virtual and correct" (fun () ->
        let src =
          {|abstract class A { def m(): Int }
            class B1() extends A { def m(): Int = 1 }
            class B2() extends A { def m(): Int = 2 }
            class B3() extends A { def m(): Int = 3 }
            class B4() extends A { def m(): Int = 4 }
            class B5() extends A { def m(): Int = 5 }
            def call(a: A): Int = a.m()
            def mk(i: Int): A = {
              if (i % 5 == 0) { new B1() } else {
              if (i % 5 == 1) { new B2() } else {
              if (i % 5 == 2) { new B3() } else {
              if (i % 5 == 3) { new B4() } else { new B5() } } } }
            }
            def main(): Unit = {
              var i = 0;
              var s = 0;
              while (i < 50) { s = s + call(mk(i)); i = i + 1 }
              println(s)
            }|}
        in
        check_differential src [ "call"; "main" ]);
  ]

let algorithm_tests =
  [
    test "end-to-end: compiled code is faster and correct" (fun () ->
        let src =
          {|def add1(x: Int): Int = x + 1
            def f(): Int = { var i = 0; var s = 0; while (i < 100) { s = add1(s); i = i + 1 }; s }
            def main(): Unit = println(f())|}
        in
        let result, prog, vm = compile_with src "f" in
        Alcotest.(check bool) "inlined" true (result.stats.inlined > 0);
        Alcotest.(check int) "no calls left" 0 (count_calls result.body);
        (* run both and compare cycle counts *)
        let m = Option.get (Ir.Program.find_meth prog "f") in
        let c0 = vm.cycles in
        ignore (Runtime.Interp.run_meth vm "f" [ Runtime.Values.Vunit ]);
        let interp_cycles = vm.cycles - c0 in
        let vm2 = Runtime.Interp.create prog in
        vm2.code <- (fun m' -> if m' = m then Some result.body else None);
        ignore (Runtime.Interp.run_meth vm2 "f" [ Runtime.Values.Vunit ]);
        Alcotest.(check bool) "faster" true (vm2.cycles < interp_cycles));
    test "cluster inlining beats partial inlining on foreach shape" (fun () ->
        check_differential
          (Workloads.Registry.find "foreach-poly" |> Option.get).source
          [ "bench" ]);
    test "termination on recursive root" (fun () ->
        let src =
          {|def f(n: Int): Int = if (n <= 1) { 1 } else { n * f(n - 1) }
            def main(): Unit = println(f(10))|}
        in
        let result, _, _ = compile_with src "f" in
        Alcotest.(check bool) "bounded size" true
          (result.stats.final_size < Params.default.root_size_cap);
        check_differential src [ "f" ]);
    test "root size cap is respected" (fun () ->
        let params = { Params.default with root_size_cap = 60 } in
        let src =
          {|def big(x: Int): Int = x + x * 2 + x * 3 + x * 4 + x * 5 + x * 6 + x * 7
            def f(): Int = { var i = 0; var s = 0; while (i < 40) { s = s + big(i); i = i + 1 }; s }
            def main(): Unit = println(f())|}
        in
        let result, _, _ = compile_with ~params src "f" in
        (* one round may overshoot slightly, but it must stop growing *)
        Alcotest.(check bool) "stopped near cap" true (result.stats.final_size < 400));
    test "deleted callsites survive rounds (no crash, correct code)" (fun () ->
        check_differential
          {|def g(c: Bool): Int = if (c) { 1 } else { 2 }
            def f(): Int = { var i = 0; var s = 0; while (i < 60) { s = s + g(i % 2 == 0); i = i + 1 }; s }
            def main(): Unit = println(f())|}
          [ "f" ]);
    test "all workloads compile correctly under the incremental inliner" (fun () ->
        List.iter
          (fun (w : Workloads.Defs.t) ->
            let prog = Workloads.Registry.compile w in
            Opt.Driver.prepare_program prog;
            let vm = Runtime.Interp.create prog in
            ignore (Runtime.Interp.run_main vm);
            Alcotest.(check string) (w.name ^ " interpreted") w.expected
              (Runtime.Interp.output vm);
            (* compile every method that ran hot enough, then re-run *)
            let cache = Hashtbl.create 16 in
            Ir.Program.iter_meths
              (fun (m : Ir.Types.meth) ->
                if
                  m.body <> None
                  && Runtime.Profile.invocation_count vm.profiles m.m_id >= 2
                then begin
                  let result = Algorithm.compile prog vm.profiles Params.default m.m_id in
                  (match Ir.Verify.check result.body with
                  | () -> ()
                  | exception Ir.Verify.Ill_formed msg ->
                      Alcotest.failf "%s/%s: %s" w.name m.m_name msg);
                  Hashtbl.replace cache m.m_id result.Algorithm.body
                end)
              prog;
            let vm2 = Runtime.Interp.create prog in
            vm2.code <- (fun m -> Hashtbl.find_opt cache m);
            ignore (Runtime.Interp.run_main vm2);
            Alcotest.(check string) (w.name ^ " compiled") w.expected
              (Runtime.Interp.output vm2))
          Workloads.Registry.all);
  ]

let params_tests =
  [
    test "ablation constructors flip only their toggle" (fun () ->
        let p = Params.default in
        Alcotest.(check bool) "clustering off" false
          (Params.without_clustering p).clustering;
        Alcotest.(check bool) "deep off" false (Params.without_deep_trials p).deep_trials;
        match (Params.with_fixed ~te:100 ~ti:200 p).threshold_policy with
        | Params.Fixed { te = 100; ti = 200 } -> ()
        | _ -> Alcotest.fail "fixed policy");
  ]

let math_tests =
  [
    test "recursion penalty ψ_r is zero before depth 2" (fun () ->
        let src =
          {|def f(n: Int): Int = if (n <= 0) { 0 } else { f(n - 1) + 1 }
            def main(): Unit = println(f(20))|}
        in
        let t = tree_of src "f" in
        (* the self-recursive callsite at root level: d=1, penalty 0 *)
        let n1 = List.hd t.children in
        Alcotest.(check int) "d=1" 1 (Calltree.rec_depth n1);
        Alcotest.(check (float 1e-9)) "ψ_r(d=1)=0" 0.0 (Expansion.psi_r n1);
        ignore (Calltree.expand_cutoff t n1);
        let n2 = List.hd n1.children in
        Alcotest.(check int) "d=2" 2 (Calltree.rec_depth n2);
        (* ψ_r(d=2) = max(1,f) * (2^2 - 2) = 2·max(1,f) > 0 *)
        Alcotest.(check bool) "ψ_r(d=2)>0" true (Expansion.psi_r n2 > 0.0);
        ignore (Calltree.expand_cutoff t n2);
        let n3 = List.hd n2.children in
        Alcotest.(check bool) "ψ_r grows with depth" true
          (Expansion.psi_r n3 > Expansion.psi_r n2));
    test "exploration penalty ψ grows with subtree size" (fun () ->
        let src =
          {|def big(x: Int): Int = x + x * 2 + x * 3 + x * 4 + x * 5 + x * 6 + x * 7 + x * 8 + x / 3 + x / 5
            def tiny(x: Int): Int = x
            def f(): Int = big(1) + tiny(2)
            def main(): Unit = println(f())|}
        in
        let t = tree_of src "f" in
        let find name =
          List.find
            (fun (n : Calltree.node) ->
              match n.kind with
              | Calltree.Cutoff (Calltree.Known m) -> (Ir.Program.meth t.prog m).m_name = name
              | _ -> false)
            t.children
        in
        Alcotest.(check bool) "ψ(big) > ψ(tiny)" true
          (Expansion.psi t (find "big") > Expansion.psi t (find "tiny")));
    test "ψ is relieved when few cutoffs remain" (fun () ->
        (* the b1·max(0, b2 − N_c²) term: with N_c=1 the relief is larger
           than with many cutoffs, all else equal; verify via the formula's
           components on a freshly created tree *)
        let src =
          "def g(): Int = 1\ndef f(): Int = g()\ndef main(): Unit = println(f())"
        in
        let t = tree_of src "f" in
        let n = List.hd t.children in
        let p = t.params in
        let expected =
          (p.p1 *. float_of_int (Calltree.s_ir t n))
          +. (p.p2 *. float_of_int (Calltree.s_b t n))
          -. (p.b1 *. Float.max 0.0 (p.b2 -. 1.0))
        in
        Alcotest.(check (float 1e-9)) "formula" expected (Expansion.psi t n));
    test "adaptive expansion threshold tightens with tree size" (fun () ->
        let src =
          "def g(): Int = 1\ndef f(): Int = g()\ndef main(): Unit = println(f())"
        in
        let t = tree_of src "f" in
        let n = List.hd t.children in
        Alcotest.(check bool) "passes when small" true (Expansion.may_expand t n);
        (* same node under a tree pretending to be huge: shrink r1 *)
        let t' = { t with params = { t.params with r1 = -10000.0 } } in
        Alcotest.(check bool) "fails when the tree is 'huge'" false
          (Expansion.may_expand t' n));
    test "poly node size models the typeswitch" (fun () ->
        let t = tree_of poly_src "call" in
        let n = List.hd t.children in
        ignore (Calltree.expand_cutoff t n);
        Alcotest.(check int) "2 per target" (2 * List.length n.children)
          (Calltree.node_size t n));
    test "poly children frequencies split by probability" (fun () ->
        let t = tree_of poly_src "call" in
        let n = List.hd t.children in
        let parent_freq = n.freq in
        ignore (Calltree.expand_cutoff t n);
        List.iter
          (fun (c : Calltree.node) ->
            Alcotest.(check (float 1e-6)) "freq = parent × prob" (parent_freq *. c.prob)
              c.freq)
          n.children;
        let total_prob = List.fold_left (fun a (c : Calltree.node) -> a +. c.prob) 0.0 n.children in
        Alcotest.(check bool) "probs ≤ 1" true (total_prob <= 1.0 +. 1e-9));
    test "fully merged cluster benefit telescopes to the root's B_L" (fun () ->
        (* documents the Listing-6 semantics: when every descendant merges,
           interior benefits cancel and the cluster's benefit is the top
           callsite's local benefit minus the (empty) front *)
        let src =
          {|def leaf(x: Int): Int = x + 1
            def mid(x: Int): Int = leaf(x)
            def f(): Int = { var i = 0; var s = 0; while (i < 40) { s = s + mid(i); i = i + 1 }; s }
            def main(): Unit = println(f())|}
        in
        let t = tree_of src "f" in
        ignore (Expansion.run t);
        Analysis.run t;
        let mid = List.hd t.children in
        (match mid.front with
        | [] ->
            Alcotest.(check (float 1e-6)) "telescoped"
              (Calltree.local_benefit t mid)
              (fst mid.tuple)
        | _ -> Alcotest.fail "expected an empty front"));
    test "spec signature detects constants and refined types" (fun () ->
        let src =
          {|abstract class A { def m(): Int }
            class B() extends A { def m(): Int = 1 }
            class C() extends A { def m(): Int = 2 }
            def g(a: A, k: Int): Int = a.m() + k
            def f(): Int = g(new B(), 7)
            def main(): Unit = println(f())|}
        in
        let t = tree_of src "f" in
        (* pick the call to g (the constructor call comes first in block
           order) *)
        let n =
          List.find
            (fun (n : Calltree.node) ->
              match n.kind with
              | Calltree.Cutoff (Calltree.Known m) ->
                  (Ir.Program.meth t.prog m).m_name = "g"
              | _ -> false)
            t.children
        in
        (match n.kind with
        | Calltree.Cutoff (Calltree.Known m) ->
            let declared = (Ir.Program.meth t.prog m).m_param_tys in
            let sg =
              Calltree.spec_signature t ~owner:n.owner ~call_vid:n.call_vid ~recv_cls:None
                ~declared
            in
            (* params: dummy unit (const), a (refined to B), k (const 7) *)
            (match sg.(0) with
            | Some Ir.Types.Cunit, _ -> ()
            | _ -> Alcotest.fail "unit receiver constant");
            (match sg.(1) with
            | _, Some (Ir.Types.Tobj _) -> ()
            | _ -> Alcotest.fail "receiver type refined");
            (match sg.(2) with
            | Some (Ir.Types.Cint 7), _ -> ()
            | _ -> Alcotest.fail "constant argument")
        | _ -> Alcotest.fail "expected a known cutoff"));
    test "signature_improves: gain yes, loss no, change-without-gain no" (fun () ->
        let prog =
          compile
            {|abstract class A {} class B() extends A {}
              def main(): Unit = {}|}
        in
        let cls name =
          let r = ref (-1) in
          Ir.Program.iter_classes
            (fun (c : Ir.Types.cls) -> if c.c_name = name then r := c.c_id)
            prog;
          !r
        in
        let a = Ir.Types.Tobj (cls "A") and b = Ir.Types.Tobj (cls "B") in
        let sig_ l = Array.of_list l in
        Alcotest.(check bool) "type refinement improves" true
          (Calltree.signature_improves prog
             ~old_sig:(sig_ [ (None, Some a) ])
             ~new_sig:(sig_ [ (None, Some b) ]));
        Alcotest.(check bool) "type loss does not" false
          (Calltree.signature_improves prog
             ~old_sig:(sig_ [ (None, Some b) ])
             ~new_sig:(sig_ [ (None, Some a) ]));
        Alcotest.(check bool) "new constant improves" true
          (Calltree.signature_improves prog
             ~old_sig:(sig_ [ (None, None) ])
             ~new_sig:(sig_ [ (Some (Ir.Types.Cint 1), None) ]));
        Alcotest.(check bool) "constant flip alone does not" false
          (Calltree.signature_improves prog
             ~old_sig:(sig_ [ (Some (Ir.Types.Cint 1), None) ])
             ~new_sig:(sig_ [ (Some (Ir.Types.Cint 2), None) ]));
        Alcotest.(check bool) "identical does not" false
          (Calltree.signature_improves prog
             ~old_sig:(sig_ [ (None, Some b) ])
             ~new_sig:(sig_ [ (None, Some b) ])));
  ]

let cache_tests =
  [
    test "results are identical with and without the trial cache" (fun () ->
        List.iter
          (fun wname ->
            let w = Option.get (Workloads.Registry.find wname) in
            let prog = Workloads.Registry.compile w in
            Opt.Driver.prepare_program prog;
            let vm = Runtime.Interp.create prog in
            ignore (Runtime.Interp.run_main vm);
            let cache = Inliner.Trial_cache.create () in
            Ir.Program.iter_meths
              (fun (m : Ir.Types.meth) ->
                if
                  m.body <> None
                  && Runtime.Profile.invocation_count vm.profiles m.m_id >= 2
                then begin
                  let plain = Algorithm.compile prog vm.profiles Params.default m.m_id in
                  let cached =
                    Algorithm.compile ~trial_cache:cache prog vm.profiles Params.default
                      m.m_id
                  in
                  Alcotest.(check string)
                    (wname ^ "/" ^ m.m_name)
                    (Ir.Printer.fn_to_string plain.body)
                    (Ir.Printer.fn_to_string cached.body)
                end)
              prog)
          [ "foreach-poly"; "blas-modes" ]);
    test "repeated compilations hit the cache" (fun () ->
        let w = Option.get (Workloads.Registry.find "blas-modes") in
        let prog = Workloads.Registry.compile w in
        Opt.Driver.prepare_program prog;
        let vm = Runtime.Interp.create prog in
        ignore (Runtime.Interp.run_main vm);
        let cache = Inliner.Trial_cache.create () in
        let m = Option.get (Ir.Program.find_meth prog "bench") in
        ignore (Algorithm.compile ~trial_cache:cache prog vm.profiles Params.default m);
        let hits1, _, _ = Inliner.Trial_cache.stats cache in
        ignore (Algorithm.compile ~trial_cache:cache prog vm.profiles Params.default m);
        let hits2, _, entries = Inliner.Trial_cache.stats cache in
        Alcotest.(check bool) "second compile hits" true (hits2 > hits1);
        Alcotest.(check bool) "entries populated" true (entries > 0));
    test "a cache refuses to span programs" (fun () ->
        let src = "def g(): Int = 1\ndef f(): Int = g()\ndef main(): Unit = println(f())" in
        let setup () =
          let prog = compile src in
          Opt.Driver.prepare_program prog;
          let vm = Runtime.Interp.create prog in
          ignore (Runtime.Interp.run_main vm);
          (prog, vm)
        in
        let prog1, vm1 = setup () in
        let prog2, vm2 = setup () in
        let cache = Inliner.Trial_cache.create () in
        let m1 = Option.get (Ir.Program.find_meth prog1 "f") in
        let m2 = Option.get (Ir.Program.find_meth prog2 "f") in
        ignore (Algorithm.compile ~trial_cache:cache prog1 vm1.profiles Params.default m1);
        match Algorithm.compile ~trial_cache:cache prog2 vm2.profiles Params.default m2 with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument msg ->
            Alcotest.(check bool) "message" true
              (contains_substring ~needle:"span programs" msg));
    test "cache templates are isolated from later mutation" (fun () ->
        let src =
          {|def g(x: Int): Int = x * 2 + 1
            def f(): Int = { var i = 0; var s = 0; while (i < 30) { s = s + g(i); i = i + 1 }; s }
            def main(): Unit = println(f())|}
        in
        let prog = compile src in
        Opt.Driver.prepare_program prog;
        let vm = Runtime.Interp.create prog in
        ignore (Runtime.Interp.run_main vm);
        let cache = Inliner.Trial_cache.create () in
        let m = Option.get (Ir.Program.find_meth prog "f") in
        (* compile twice: the first splices the specialized copy into the
           root (mutating it through the splice); the second must see a
           pristine template *)
        let r1 = Algorithm.compile ~trial_cache:cache prog vm.profiles Params.default m in
        let r2 = Algorithm.compile ~trial_cache:cache prog vm.profiles Params.default m in
        Alcotest.(check string) "identical"
          (Ir.Printer.fn_to_string r1.body)
          (Ir.Printer.fn_to_string r2.body));
  ]

let () =
  Alcotest.run "inliner"
    [
      ("cache", cache_tests);
      ("calltree", calltree_tests);
      ("analysis", analysis_tests);
      ("expansion", expansion_tests);
      ("typeswitch", typeswitch_tests);
      ("algorithm", algorithm_tests);
      ("params", params_tests);
      ("math", math_tests);
    ]
