(* Tests for SSA lowering: the produced IR verifies, has the expected
   shape (phis at joins and loop headers, site keys assigned), and
   evaluates correctly (behavioural checks live mostly in test_interp; a
   few here pin lowering-specific semantics like short-circuiting). *)

open Util
open Ir.Types

let fn_of src name =
  let prog = compile src in
  body_of prog name

let has_phi fn = count_instrs fn Ir.Instr.is_phi > 0

let tests =
  [
    test "every lowered method verifies" (fun () ->
        let prog =
          compile
            {|abstract class A { def m(x: Int): Int }
              class B() extends A { def m(x: Int): Int = x + 1 }
              def f(a: A, n: Int): Int = {
                var acc = 0;
                var i = 0;
                while (i < n) { acc = acc + a.m(i); i = i + 1; }
                if (acc > 100) { acc - 100 } else { acc }
              }
              def main(): Unit = println(f(new B(), 10))|}
        in
        match Ir.Verify.check_program prog with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
    test "straight-line code has no phis" (fun () ->
        let fn = fn_of "def f(a: Int): Int = a + 2 * a\ndef main(): Unit = {}" "f" in
        Alcotest.(check bool) "no phi" false (has_phi fn));
    test "loop variable becomes a phi" (fun () ->
        let fn =
          fn_of
            "def f(n: Int): Int = { var i = 0; while (i < n) { i = i + 1 }; i }\ndef main(): Unit = {}"
            "f"
        in
        Alcotest.(check bool) "phi" true (has_phi fn));
    test "if-else value becomes a phi" (fun () ->
        let fn =
          fn_of "def f(c: Bool): Int = if (c) { 1 } else { 2 }\ndef main(): Unit = {}" "f"
        in
        Alcotest.(check bool) "phi" true (has_phi fn));
    test "variable not modified in branch needs no phi" (fun () ->
        let fn =
          fn_of
            "def f(c: Bool, x: Int): Int = { if (c) { println(1) }; x }\ndef main(): Unit = {}"
            "f"
        in
        Alcotest.(check bool) "no phi" false (has_phi fn));
    test "call sites get distinct site keys" (fun () ->
        let src = "def g(): Int = 1\ndef f(): Int = g() + g() + g()\ndef main(): Unit = {}" in
        let fn = fn_of src "f" in
        let sites = ref [] in
        Ir.Fn.iter_instrs
          (fun i ->
            match i.kind with
            | Call { site; _ } -> sites := site.sidx :: !sites
            | _ -> ())
          fn;
        Alcotest.(check int) "3 calls" 3 (List.length !sites);
        Alcotest.(check int) "distinct" 3 (List.length (List.sort_uniq compare !sites)));
    test "short-circuit && skips rhs" (fun () ->
        (* rhs would trap on division by zero if evaluated *)
        let out =
          output_of
            {|def main(): Unit = {
                val x = 0;
                if (x > 0 && 10 / x > 1) { println("yes") } else { println("no") }
              }|}
        in
        Alcotest.(check string) "out" "no\n" out);
    test "short-circuit || skips rhs" (fun () ->
        let out =
          output_of
            {|def main(): Unit = {
                val x = 0;
                if (x == 0 || 10 / x > 1) { println("yes") } else { println("no") }
              }|}
        in
        Alcotest.(check string) "out" "yes\n" out);
    test "nested loops verify and run" (fun () ->
        let n =
          run_int
            {|def f(): Int = {
                var acc = 0;
                var i = 0;
                while (i < 5) {
                  var j = 0;
                  while (j < 4) { acc = acc + i * j; j = j + 1; }
                  i = i + 1;
                }
                acc
              }
              def main(): Unit = println(f())|}
            "f"
        in
        Alcotest.(check int) "result" 60 n);
    test "while condition with && lowers correctly" (fun () ->
        let n =
          run_int
            {|def f(): Int = {
                var i = 0;
                var go = true;
                while (go && i < 10) { i = i + 1; if (i == 7) { go = false } }
                i
              }
              def main(): Unit = println(f())|}
            "f"
        in
        Alcotest.(check int) "result" 7 n);
    test "block value is last expression" (fun () ->
        Alcotest.(check int) "value" 5
          (run_int "def f(): Int = { 1; 2; 5 }\ndef main(): Unit = {}" "f"));
    test "empty block is unit" (fun () ->
        ignore (compile "def f(): Unit = {}\ndef main(): Unit = f()"));
    test "constructor initializes parent before own fields" (fun () ->
        let out =
          output_of
            {|class A(x: Int) { def gx(): Int = x }
              class B(y: Int) extends A(y + 1) { def gy(): Int = y }
              def main(): Unit = {
                val b = new B(10);
                println(b.gx());
                println(b.gy());
              }|}
        in
        Alcotest.(check string) "out" "11\n10\n" out);
    test "shadowing in nested scopes" (fun () ->
        let n =
          run_int
            {|def f(): Int = {
                val x = 1;
                val y = { val x = 2; x + 10 };
                x + y
              }
              def main(): Unit = println(f())|}
            "f"
        in
        Alcotest.(check int) "result" 13 n);
    test "scopes close: inner let does not leak" (fun () ->
        ignore
          (compile_err
             "def f(): Int = { if (true) { val z = 1; z }; z }\ndef main(): Unit = {}"));
    test "params land in slots 0..n" (fun () ->
        let fn = fn_of "def f(a: Int, b: Int): Int = a + b\ndef main(): Unit = {}" "f" in
        let params = ref [] in
        Ir.Fn.iter_instrs
          (fun i -> match i.kind with Param k -> params := k :: !params | _ -> ())
          fn;
        Alcotest.(check (list int)) "params" [ 0; 1; 2 ] (List.sort compare !params));
    test "unit-returning method returns a unit constant" (fun () ->
        let fn = fn_of "def f(): Unit = { println(1) }\ndef main(): Unit = {}" "f" in
        let ok = ref false in
        Ir.Fn.iter_blocks
          (fun blk ->
            match blk.term with
            | Return v -> (
                match Ir.Fn.kind fn v with Const Cunit -> ok := true | _ -> ())
            | _ -> ())
          fn;
        Alcotest.(check bool) "returns unit" true !ok);
  ]

let () = Alcotest.run "lower" [ ("lower", tests) ]
