(* Unit tests for the Sel parser: structure of parsed declarations and
   expressions, operator precedence, and error reporting. *)

open Util
open Frontend.Ast

let parse = Frontend.Parser.parse_string

let parse_expr src =
  match parse (Printf.sprintf "def f(): Int = %s" src) with
  | [ Dfun { body; _ } ] -> body
  | _ -> Alcotest.fail "expected a single function"

let parse_err src =
  match parse src with
  | _ -> Alcotest.fail "expected a parse error"
  | exception Frontend.Parser.Parse_error (msg, _) -> msg

(* Renders the expression skeleton for easy structural assertions. *)
let rec skel (e : expr) : string =
  match e.e with
  | Eint n -> string_of_int n
  | Ebool b -> string_of_bool b
  | Estr s -> Printf.sprintf "%S" s
  | Eunit -> "()"
  | Enull -> "null"
  | Ethis -> "this"
  | Evar x -> x
  | Efield (o, f) -> Printf.sprintf "%s.%s" (skel o) f
  | Emethod (o, m, args) -> Printf.sprintf "%s.%s(%s)" (skel o) m (skels args)
  | Einvoke (f, args) -> Printf.sprintf "%s(%s)" f (skels args)
  | Eapply (f, args) -> Printf.sprintf "[%s](%s)" (skel f) (skels args)
  | Enew (c, args) -> Printf.sprintf "new %s(%s)" c (skels args)
  | Enewarr (t, n) -> Printf.sprintf "newarr[%s](%s)" (tyx_to_string t) (skel n)
  | Elambda (ps, b) ->
      Printf.sprintf "fun(%s)->%s" (String.concat "," (List.map fst ps)) (skel b)
  | Eif (c, t, None) -> Printf.sprintf "if(%s,%s)" (skel c) (skel t)
  | Eif (c, t, Some e) -> Printf.sprintf "if(%s,%s,%s)" (skel c) (skel t) (skel e)
  | Ewhile (c, b) -> Printf.sprintf "while(%s,%s)" (skel c) (skel b)
  | Eblock stmts ->
      Printf.sprintf "{%s}"
        (String.concat ";"
           (List.map
              (function
                | Sexpr e -> skel e
                | Slet { name; mutbl; init; _ } ->
                    Printf.sprintf "%s %s=%s" (if mutbl then "var" else "val") name
                      (skel init))
              stmts))
  | Eassign (Lvar x, v) -> Printf.sprintf "%s:=%s" x (skel v)
  | Eassign (Lfield (o, f), v) -> Printf.sprintf "%s.%s:=%s" (skel o) f (skel v)
  | Eassign (Lindex (a, i), v) -> Printf.sprintf "%s[%s]:=%s" (skel a) (skel i) (skel v)
  | Ebin (op, a, b) -> Printf.sprintf "(%s%s%s)" (skel a) op (skel b)
  | Eun (op, a) -> Printf.sprintf "(%s%s)" op (skel a)
  | Eindex (a, i) -> Printf.sprintf "%s[%s]" (skel a) (skel i)

and skels args = String.concat "," (List.map skel args)

let check_skel what src expected =
  Alcotest.(check string) what expected (skel (parse_expr src))

let precedence_tests =
  [
    test "mul binds tighter than add" (fun () -> check_skel "prec" "1 + 2 * 3" "(1+(2*3))");
    test "add left-assoc" (fun () -> check_skel "assoc" "1 - 2 - 3" "((1-2)-3)");
    test "comparison below arithmetic" (fun () ->
        check_skel "prec" "1 + 2 < 3 * 4" "((1+2)<(3*4))");
    test "equality below comparison" (fun () ->
        check_skel "prec" "1 < 2 == 3 < 4" "((1<2)==(3<4))");
    test "logical and below equality" (fun () ->
        check_skel "prec" "a == b && c == d" "((a==b)&&(c==d))");
    test "logical or lowest" (fun () ->
        check_skel "prec" "a && b || c && d" "((a&&b)||(c&&d))");
    test "shift between add and compare" (fun () ->
        check_skel "prec" "1 + 2 << 3 < 4" "(((1+2)<<3)<4)");
    test "bitwise and/xor/or ordering" (fun () ->
        check_skel "prec" "a & b ^ c | d" "(((a&b)^c)|d)");
    test "unary minus binds tightest" (fun () -> check_skel "prec" "-a * b" "((-a)*b)");
    test "not with and" (fun () -> check_skel "prec" "!a && b" "((!a)&&b)");
    test "parens override" (fun () -> check_skel "parens" "(1 + 2) * 3" "((1+2)*3)");
  ]

let postfix_tests =
  [
    test "field access chain" (fun () -> check_skel "chain" "a.b.c" "a.b.c");
    test "method call" (fun () -> check_skel "call" "a.m(1, 2)" "a.m(1,2)");
    test "indexing" (fun () -> check_skel "index" "a[i]" "a[i]");
    test "index of call result" (fun () -> check_skel "mix" "f(x)[1]" "f(x)[1]");
    test "call on identifier becomes invoke" (fun () ->
        check_skel "invoke" "f(1)" "f(1)");
    test "call on expression becomes apply" (fun () ->
        check_skel "apply" "a.b(1)(2)" "[a.b(1)](2)");
    test "method on new" (fun () ->
        check_skel "new" "new C(1).m()" "new C(1).m()");
  ]

let construct_tests =
  [
    test "if-else" (fun () -> check_skel "if" "if (a) 1 else 2" "if(a,1,2)");
    test "if without else" (fun () -> check_skel "if" "if (a) 1" "if(a,1)");
    test "dangling else binds to inner if" (fun () ->
        check_skel "if" "if (a) if (b) 1 else 2" "if(a,if(b,1,2))");
    test "while" (fun () -> check_skel "while" "while (a) { b }" "while(a,{b})");
    test "block with lets" (fun () ->
        check_skel "block" "{ val x = 1; var y = 2; x + y }" "{val x=1;var y=2;(x+y)}");
    test "assignment to variable" (fun () -> check_skel "assign" "{ x = 1 }" "{x:=1}");
    test "assignment to field" (fun () -> check_skel "assign" "{ a.f = 1 }" "{a.f:=1}");
    test "assignment to index" (fun () -> check_skel "assign" "{ a[0] = 1 }" "{a[0]:=1}");
    test "assignment is right-assoc through parse" (fun () ->
        check_skel "assign" "{ x = y = 1 }" "{x:=y:=1}");
    test "lambda" (fun () -> check_skel "lambda" "(x: Int) => x + 1" "fun(x)->(x+1)");
    test "zero-arg lambda" (fun () -> check_skel "lambda" "() => 1" "fun()->1");
    test "two-arg lambda" (fun () ->
        check_skel "lambda" "(a: Int, b: Int) => a" "fun(a,b)->a");
    test "lambda vs parenthesized expr" (fun () -> check_skel "paren" "(x)" "x");
    test "unit literal" (fun () -> check_skel "unit" "()" "()");
    test "new array" (fun () ->
        check_skel "newarr" "new Array[Int](10)" "newarr[Int](10)");
    test "new array of named type" (fun () ->
        check_skel "newarr" "new Array[Foo](2)" "newarr[Foo](2)");
    test "this and null" (fun () -> check_skel "lit" "this == null" "(this==null)");
  ]

let decl_tests =
  [
    test "function declaration" (fun () ->
        match parse "def f(a: Int, b: Bool): Unit = {}" with
        | [ Dfun { fname = "f"; params = [ ("a", Tx_int); ("b", Tx_bool) ]; rty = Tx_unit; _ } ]
          -> ()
        | _ -> Alcotest.fail "unexpected parse");
    test "class with ctor params and parent" (fun () ->
        match parse "class C(x: Int) extends D(x) { var f: Int def m(): Int = 1 }" with
        | [ Dclass { cname = "C"; ctor_params = [ ("x", Tx_int) ];
                     parent = Some ("D", [ _ ]); members = [ Mfield _; Mmethod _ ]; _ } ] ->
            ()
        | _ -> Alcotest.fail "unexpected parse");
    test "abstract class with abstract method" (fun () ->
        match parse "abstract class A { def m(): Int }" with
        | [ Dclass { abstract = true; members = [ Mmethod { body = None; _ } ]; _ } ] -> ()
        | _ -> Alcotest.fail "unexpected parse");
    test "function type in params" (fun () ->
        match parse "def f(g: Int => Bool): Unit = {}" with
        | [ Dfun { params = [ ("g", Tx_fun ([ Tx_int ], Tx_bool)) ]; _ } ] -> ()
        | _ -> Alcotest.fail "unexpected parse");
    test "multi-arg function type" (fun () ->
        match parse "def f(g: (Int, Int) => Int): Unit = {}" with
        | [ Dfun { params = [ ("g", Tx_fun ([ Tx_int; Tx_int ], Tx_int)) ]; _ } ] -> ()
        | _ -> Alcotest.fail "unexpected parse");
    test "array type" (fun () ->
        match parse "def f(a: Array[Array[Int]]): Unit = {}" with
        | [ Dfun { params = [ ("a", Tx_array (Tx_array Tx_int)) ]; _ } ] -> ()
        | _ -> Alcotest.fail "unexpected parse");
  ]

let error_tests =
  [
    test "missing paren" (fun () -> ignore (parse_err "def f(: Int = 1"));
    test "missing body" (fun () -> ignore (parse_err "def f(): Int ="));
    test "stray token at toplevel" (fun () -> ignore (parse_err "42"));
    test "bad assignment target" (fun () ->
        ignore (parse_err "def f(): Unit = { 1 + 2 = 3 }"));
    test "tuple type rejected" (fun () -> ignore (parse_err "def f(x: (Int, Int)): Unit = {}"));
    test "unclosed block" (fun () -> ignore (parse_err "def f(): Int = { 1"));
    test "error carries position" (fun () ->
        match Frontend.Parser.parse_string "def f(): Int = }" with
        | _ -> Alcotest.fail "expected error"
        | exception Frontend.Parser.Parse_error (_, pos) ->
            Alcotest.(check int) "line" 1 pos.line);
  ]

let () =
  Alcotest.run "parser"
    [
      ("precedence", precedence_tests);
      ("postfix", postfix_tests);
      ("constructs", construct_tests);
      ("declarations", decl_tests);
      ("errors", error_tests);
    ]
