(* Tests for the optimizer: type inference, canonicalization rewrites,
   GVN, DCE, CFG simplification, read-write elimination and loop peeling.
   Each behavioural test also re-runs the program to confirm the transform
   preserved semantics. *)

open Util
open Ir.Types

(* Compiles, remembers interpreted output, optimizes, checks the IR still
   verifies and the output is unchanged; returns the program. *)
let optimized (src : string) : Ir.Types.program =
  let before = output_of src in
  let prog = compile src in
  Opt.Driver.prepare_program prog;
  (match Ir.Verify.check_program prog with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let vm = Runtime.Interp.create prog in
  ignore (Runtime.Interp.run_main vm);
  Alcotest.(check string) "behaviour preserved" before (Runtime.Interp.output vm);
  prog

let simplify_fn prog name =
  let fn = body_of prog name in
  let stats = Opt.Driver.simplify prog fn in
  check_verifies fn;
  (fn, stats)

let tyinfer_tests =
  [
    test "new gives exact nonnull type" (fun () ->
        let prog = compile "class C() {}\ndef f(): C = new C()\ndef main(): Unit = {}" in
        let fn = body_of prog "f" in
        let env = Opt.Tyinfer.infer prog fn in
        let found = ref false in
        Ir.Fn.iter_instrs
          (fun i ->
            match i.kind with
            | New _ -> (
                match Opt.Tyinfer.value_type env i.id with
                | Opt.Tyinfer.Vt_obj { exact = true; nonnull = true; _ } -> found := true
                | _ -> Alcotest.fail "expected exact nonnull object")
            | _ -> ())
          fn;
        Alcotest.(check bool) "saw new" true !found);
    test "phi of two subclasses joins to parent" (fun () ->
        let prog =
          compile
            {|abstract class A {} class B() extends A {} class C() extends A {}
              def f(c: Bool): A = if (c) { new B() } else { new C() }
              def main(): Unit = {}|}
        in
        let fn = body_of prog "f" in
        let env = Opt.Tyinfer.infer prog fn in
        let ok = ref false in
        Ir.Fn.iter_instrs
          (fun i ->
            match i.kind with
            | Phi _ -> (
                match Opt.Tyinfer.value_type env i.id with
                | Opt.Tyinfer.Vt_obj { exact = false; nonnull = true; cls } ->
                    Alcotest.(check string) "parent" "A" (Ir.Program.cls prog cls).c_name;
                    ok := true
                | _ -> Alcotest.fail "expected inexact parent type")
            | _ -> ())
          fn;
        Alcotest.(check bool) "saw phi" true !ok);
    test "spec_tys refines parameter types for devirt" (fun () ->
        let prog =
          compile
            {|abstract class A { def m(): Int }
              class B() extends A { def m(): Int = 1 }
              class C() extends A { def m(): Int = 2 }
              def f(a: A): Int = a.m()
              def main(): Unit = println(f(new B()))|}
        in
        let fn = Ir.Fn.copy (body_of prog "f") in
        let env = Opt.Tyinfer.infer prog fn in
        let recv =
          let r = ref (-1) in
          Ir.Fn.iter_instrs (fun i -> match i.kind with Param 1 -> r := i.id | _ -> ()) fn;
          !r
        in
        Alcotest.(check (option int)) "no target with declared type" None
          (Opt.Tyinfer.devirt_target prog env recv "m");
        let b = Option.get (Hashtbl.find_opt prog.meth_by_name "B.m") in
        let cls_b = Option.get (Ir.Program.meth prog b).owner in
        fn.spec_tys.(1) <- Tobj cls_b;
        let env = Opt.Tyinfer.infer prog fn in
        Alcotest.(check (option int)) "target with refined type" (Some b)
          (Opt.Tyinfer.devirt_target prog env recv "m"));
    test "typetest folds to false on disjoint classes" (fun () ->
        let prog =
          compile
            {|class A() {} class B() {}
              def f(): A = new A()
              def main(): Unit = {}|}
        in
        let fn = body_of prog "f" in
        let env = Opt.Tyinfer.infer prog fn in
        let cls_b =
          let r = ref (-1) in
          Ir.Program.iter_classes
            (fun (c : cls) -> if c.c_name = "B" then r := c.c_id)
            prog;
          !r
        in
        let new_vid =
          let r = ref (-1) in
          Ir.Fn.iter_instrs (fun i -> match i.kind with New _ -> r := i.id | _ -> ()) fn;
          !r
        in
        Alcotest.(check (option bool)) "disjoint" (Some false)
          (Opt.Tyinfer.typetest_result prog env new_vid cls_b));
  ]

let canon_tests =
  [
    test "constant folding" (fun () ->
        let prog = optimized "def f(): Int = 2 + 3 * 4\ndef main(): Unit = println(f())" in
        let fn = body_of prog "f" in
        Alcotest.(check int) "no binops" 0
          (count_instrs fn (function Binop _ -> true | _ -> false)));
    test "algebraic identities" (fun () ->
        let prog =
          optimized
            "def f(x: Int): Int = (x + 0) * 1 + (x - x)\ndef main(): Unit = println(f(5))"
        in
        let fn = body_of prog "f" in
        Alcotest.(check int) "no arithmetic left" 0
          (count_instrs fn (function
            | Binop ((Add | Sub | Mul), _, _) -> true
            | _ -> false)));
    test "strength reduction mul to shift" (fun () ->
        let prog = optimized "def f(x: Int): Int = x * 8\ndef main(): Unit = println(f(3))" in
        let fn = body_of prog "f" in
        Alcotest.(check int) "shift" 1
          (count_instrs fn (function Binop (Shl, _, _) -> true | _ -> false));
        Alcotest.(check int) "no mul" 0
          (count_instrs fn (function Binop (Mul, _, _) -> true | _ -> false)));
    test "division by zero is not folded" (fun () ->
        let prog = compile "def f(): Int = 1 / 0\ndef main(): Unit = {}" in
        Opt.Driver.prepare_program prog;
        let fn = body_of prog "f" in
        Alcotest.(check int) "div kept" 1
          (count_instrs fn (function Binop (Div, _, _) -> true | _ -> false)));
    test "branch pruning removes the untaken branch" (fun () ->
        let prog =
          optimized
            "def f(): Int = if (1 < 2) { 10 } else { 20 }\ndef main(): Unit = println(f())"
        in
        let fn = body_of prog "f" in
        Alcotest.(check int) "single block" 1 (List.length (Ir.Fn.block_ids fn)));
    test "CHA devirtualization with unique implementation" (fun () ->
        let prog =
          optimized
            {|abstract class A { def m(): Int }
              class B() extends A { def m(): Int = 7 }
              def f(a: A): Int = a.m()
              def main(): Unit = println(f(new B()))|}
        in
        let fn = body_of prog "f" in
        Alcotest.(check int) "virtual gone" 0 (count_virtual_calls fn));
    test "no devirtualization with two implementations" (fun () ->
        let prog =
          optimized
            {|abstract class A { def m(): Int }
              class B() extends A { def m(): Int = 1 }
              class C() extends A { def m(): Int = 2 }
              def f(a: A): Int = a.m()
              def main(): Unit = println(f(new B()) + f(new C()))|}
        in
        let fn = body_of prog "f" in
        Alcotest.(check int) "still virtual" 1 (count_virtual_calls fn));
    test "devirtualization through exact local type" (fun () ->
        let prog =
          optimized
            {|abstract class A { def m(): Int }
              class B() extends A { def m(): Int = 1 }
              class C() extends A { def m(): Int = 2 }
              def f(): Int = { val b = new B(); b.m() }
              def main(): Unit = println(f())|}
        in
        let fn = body_of prog "f" in
        Alcotest.(check int) "devirted" 0 (count_virtual_calls fn));
    test "intrinsic folding" (fun () ->
        let prog =
          optimized
            {|def f(): Int = "hello".length + abs(0 - 4) + min(2, 3) + max(2, 3)
              def main(): Unit = println(f())|}
        in
        let fn = body_of prog "f" in
        Alcotest.(check int) "no intrinsics" 0
          (count_instrs fn (function Intrinsic _ -> true | _ -> false)));
    test "canonicalization counts events" (fun () ->
        let prog = compile "def f(x: Int): Int = x * 4 + (2 + 3)\ndef main(): Unit = {}" in
        let fn = body_of prog "f" in
        let stats = Opt.Driver.simplify prog fn in
        Alcotest.(check bool) "events > 0" true (Opt.Driver.simple_opt_count stats > 0));
    test "canonicalization is idempotent" (fun () ->
        let prog =
          compile
            {|def f(x: Int, c: Bool): Int = {
                var acc = x * 16 + 0;
                if (c && true) { acc = acc + 1 * x };
                acc
              }
              def main(): Unit = {}|}
        in
        let fn = body_of prog "f" in
        ignore (Opt.Driver.simplify prog fn);
        let stats2 = Opt.Driver.simplify prog fn in
        Alcotest.(check int) "no more events" 0 (Opt.Driver.simple_opt_count stats2));
    test "comparison of a value with itself folds" (fun () ->
        let prog =
          optimized "def f(x: Int): Bool = x == x\ndef main(): Unit = println(f(3))"
        in
        let fn = body_of prog "f" in
        Alcotest.(check int) "no compare" 0
          (count_instrs fn (function Binop _ -> true | _ -> false)));
  ]

let gvn_tests =
  [
    test "duplicate pure expressions collapse" (fun () ->
        let prog =
          compile "def f(a: Int, b: Int): Int = (a + b) * (a + b)\ndef main(): Unit = {}"
        in
        let fn, _ = simplify_fn prog "f" in
        Alcotest.(check int) "one add" 1
          (count_instrs fn (function Binop (Add, _, _) -> true | _ -> false)));
    test "commutative operands normalize" (fun () ->
        let prog =
          compile "def f(a: Int, b: Int): Int = (a + b) - (b + a)\ndef main(): Unit = {}"
        in
        let fn, _ = simplify_fn prog "f" in
        Alcotest.(check int) "all folded" 0
          (count_instrs fn (function Binop _ -> true | _ -> false)));
    test "array length is value-numbered" (fun () ->
        let prog =
          compile "def f(a: Array[Int]): Int = a.length + a.length\ndef main(): Unit = {}"
        in
        let fn, _ = simplify_fn prog "f" in
        Alcotest.(check int) "one arraylen" 1
          (count_instrs fn (function ArrayLen _ -> true | _ -> false)));
    test "mutable loads are not value-numbered" (fun () ->
        let src =
          {|class C(f: Int) {}
            def g(c: C): Int = { val a = c.f; c.f = a + 1; val b = c.f; a + b }
            def main(): Unit = println(g(new C(10)))|}
        in
        Alcotest.(check string) "semantics" "21\n" (output_of ~prepare:true src));
    test "value numbering respects dominance" (fun () ->
        let prog =
          compile
            {|def f(c: Bool, x: Int): Int = if (c) { x * x + 1 } else { x * x + 2 }
              def main(): Unit = {}|}
        in
        let fn, _ = simplify_fn prog "f" in
        check_verifies fn);
  ]

let dce_tests =
  [
    test "unused pure computation removed" (fun () ->
        let prog =
          compile "def f(x: Int): Int = { val dead = x * x + 1; x }\ndef main(): Unit = {}"
        in
        let fn, _ = simplify_fn prog "f" in
        Alcotest.(check int) "no mul" 0
          (count_instrs fn (function Binop (Mul, _, _) -> true | _ -> false)));
    test "unused allocation removed once its call is gone" (fun () ->
        (* DCE is conservative about calls (the constructor), so build the
           situation directly: a New with no constructor call *)
        let open Ir.Types in
        let prog = compile "class C() {}\ndef main(): Unit = {}" in
        let fn = Ir.Fn.create ~fname:"t" ~param_tys:[||] ~rty:Tint in
        let b = Ir.Fn.add_block fn in
        fn.entry <- b;
        let _dead = Ir.Fn.append fn b (New 0) in
        let c = Ir.Fn.append fn b (Const (Cint 1)) in
        Ir.Fn.set_term fn b (Return c);
        ignore (Opt.Dce.run fn);
        check_verifies fn;
        ignore prog;
        Alcotest.(check int) "no new" 0
          (count_instrs fn (function New _ -> true | _ -> false)));
    test "unused dead load removed" (fun () ->
        let prog =
          compile
            "def f(a: Array[Int]): Int = { val dead = a.length; 7 }\ndef main(): Unit = {}"
        in
        let fn, _ = simplify_fn prog "f" in
        Alcotest.(check int) "no arraylen" 0
          (count_instrs fn (function ArrayLen _ -> true | _ -> false)));
    test "prints are kept" (fun () ->
        let prog = compile "def f(): Int = { println(1); 2 }\ndef main(): Unit = {}" in
        let fn, _ = simplify_fn prog "f" in
        Alcotest.(check bool) "intrinsics kept" true
          (count_instrs fn (function Intrinsic _ -> true | _ -> false) >= 2));
    test "stores are kept" (fun () ->
        let prog =
          compile
            "class C(f: Int) {}\ndef g(c: C): Int = { c.f = 5; 1 }\ndef main(): Unit = {}"
        in
        let fn, _ = simplify_fn prog "g" in
        Alcotest.(check int) "store kept" 1
          (count_instrs fn (function SetField _ -> true | _ -> false)));
    test "phi cycles feeding only themselves die" (fun () ->
        let prog =
          compile
            {|def f(n: Int): Int = {
                var dead = 0;
                var i = 0;
                while (i < n) { dead = dead + i; i = i + 1; }
                n
              }
              def main(): Unit = {}|}
        in
        let fn, _ = simplify_fn prog "f" in
        Alcotest.(check int) "one phi left (i)" 1
          (count_instrs fn (function Phi _ -> true | _ -> false)));
  ]

let simplify_cfg_tests =
  [
    test "unreachable code eliminated after constant branch" (fun () ->
        let prog =
          compile
            "def f(): Int = if (true) { 1 } else { 1 / 0 }\ndef main(): Unit = println(f())"
        in
        Opt.Driver.prepare_program prog;
        let fn = body_of prog "f" in
        Alcotest.(check int) "single block" 1 (List.length (Ir.Fn.block_ids fn));
        Alcotest.(check int) "no div" 0
          (count_instrs fn (function Binop (Div, _, _) -> true | _ -> false)));
    test "cleanup result stays well-formed on workloads" (fun () ->
        List.iter
          (fun (w : Workloads.Defs.t) ->
            let prog = Workloads.Registry.compile w in
            Opt.Driver.prepare_program prog;
            match Ir.Verify.check_program prog with
            | Ok () -> ()
            | Error e -> Alcotest.failf "%s: %s" w.name e)
          Workloads.Registry.all);
  ]

let rwelim_tests =
  [
    test "store-to-load forwarding within a block" (fun () ->
        let src =
          {|class C(f: Int) {}
            def g(c: C): Int = { c.f = 42; c.f }
            def main(): Unit = println(g(new C(1)))|}
        in
        let prog = optimized src in
        let fn = body_of prog "g" in
        let n = Opt.Rwelim.run prog fn in
        check_verifies fn;
        Alcotest.(check bool) "eliminated something" true (n > 0);
        ignore (Opt.Driver.simplify prog fn);
        Alcotest.(check int) "no load left" 0
          (count_instrs fn (function GetField _ -> true | _ -> false));
        let vm = Runtime.Interp.create prog in
        ignore (Runtime.Interp.run_main vm);
        Alcotest.(check string) "out" "42\n" (Runtime.Interp.output vm));
    test "calls kill memory knowledge" (fun () ->
        let src =
          {|class C(f: Int) {}
            def touch(c: C): Unit = c.f = 99
            def g(c: C): Int = { c.f = 5; touch(c); c.f }
            def main(): Unit = println(g(new C(1)))|}
        in
        let prog = optimized src in
        let fn = body_of prog "g" in
        ignore (Opt.Rwelim.run prog fn);
        check_verifies fn;
        let vm = Runtime.Interp.create prog in
        ignore (Runtime.Interp.run_main vm);
        Alcotest.(check string) "out preserved" "99\n" (Runtime.Interp.output vm));
    test "aliasing store invalidates forwarding" (fun () ->
        let src =
          {|class C(f: Int) {}
            def g(a: C, b: C): Int = { a.f = 1; b.f = 2; a.f }
            def main(): Unit = { val c = new C(0); println(g(c, c)) }|}
        in
        Alcotest.(check string) "aliased" "2\n" (output_of src);
        let prog = compile src in
        let fn = body_of prog "g" in
        ignore (Opt.Rwelim.run prog fn);
        check_verifies fn;
        let vm = Runtime.Interp.create prog in
        ignore (Runtime.Interp.run_main vm);
        Alcotest.(check string) "still aliased" "2\n" (Runtime.Interp.output vm));
    test "dead store removed when overwritten" (fun () ->
        let src =
          {|class C(f: Int) {}
            def g(c: C): Int = { c.f = 1; c.f = 2; c.f }
            def main(): Unit = println(g(new C(0)))|}
        in
        let prog = optimized src in
        let fn = body_of prog "g" in
        ignore (Opt.Rwelim.run prog fn);
        check_verifies fn;
        Alcotest.(check int) "one store left" 1
          (count_instrs fn (function SetField _ -> true | _ -> false));
        let vm = Runtime.Interp.create prog in
        ignore (Runtime.Interp.run_main vm);
        Alcotest.(check string) "out" "2\n" (Runtime.Interp.output vm));
    test "store before aliasing load survives" (fun () ->
        let src =
          {|class C(f: Int) {}
            def g(a: C, b: C): Int = { a.f = 1; val x = b.f; a.f = 2; x + a.f }
            def main(): Unit = { val c = new C(0); println(g(c, c)) }|}
        in
        Alcotest.(check string) "aliased semantics" "3\n" (output_of src);
        let prog = compile src in
        let fn = body_of prog "g" in
        ignore (Opt.Rwelim.run prog fn);
        check_verifies fn;
        Alcotest.(check int) "both stores kept" 2
          (count_instrs fn (function SetField _ -> true | _ -> false));
        let vm = Runtime.Interp.create prog in
        ignore (Runtime.Interp.run_main vm);
        Alcotest.(check string) "out" "3\n" (Runtime.Interp.output vm));
  ]

let peel_tests =
  [
    test "peeling preserves semantics and SSA" (fun () ->
        let src =
          {|abstract class S { def v(): Int }
            class A() extends S { def v(): Int = 1 }
            class B() extends S { def v(): Int = 2 }
            def f(n: Int): Int = {
              var s: S = new A();
              var acc = 0;
              var i = 0;
              while (i < n) {
                acc = acc + s.v();
                s = new B();
                i = i + 1;
              }
              acc
            }
            def main(): Unit = println(f(5))|}
        in
        Alcotest.(check string) "baseline" "9\n" (output_of src);
        let prog = compile src in
        Opt.Driver.prepare_program prog;
        let fn = body_of prog "f" in
        let peeled = Opt.Peel.run prog fn in
        Alcotest.(check int) "peeled one loop" 1 peeled;
        check_verifies fn;
        let vm = Runtime.Interp.create prog in
        ignore (Runtime.Interp.run_main vm);
        Alcotest.(check string) "out" "9\n" (Runtime.Interp.output vm));
    test "peeling requires a type-improving phi" (fun () ->
        let src =
          {|def f(n: Int): Int = {
              var acc = 0;
              var i = 0;
              while (i < n) { acc = acc + i; i = i + 1; }
              acc
            }
            def main(): Unit = println(f(10))|}
        in
        let prog = compile src in
        Opt.Driver.prepare_program prog;
        let fn = body_of prog "f" in
        Alcotest.(check int) "not peeled" 0 (Opt.Peel.run prog fn));
    test "peeling then simplify devirtualizes the first iteration" (fun () ->
        let src =
          {|abstract class S { def v(): Int }
            class A() extends S { def v(): Int = 10 }
            class B() extends S { def v(): Int = 20 }
            def f(n: Int): Int = {
              var s: S = new A();
              var acc = 0;
              var i = 0;
              while (i < n) { acc = acc + s.v(); s = new B(); i = i + 1; }
              acc
            }
            def main(): Unit = println(f(4))|}
        in
        let prog = compile src in
        Opt.Driver.prepare_program prog;
        let fn = body_of prog "f" in
        let virtual_before = count_virtual_calls fn in
        ignore (Opt.Peel.run prog fn);
        ignore (Opt.Driver.simplify prog fn);
        check_verifies fn;
        let vm = Runtime.Interp.create prog in
        ignore (Runtime.Interp.run_main vm);
        Alcotest.(check string) "out" "70\n" (Runtime.Interp.output vm);
        Alcotest.(check bool) "no more virtuals than before" true
          (count_virtual_calls fn <= virtual_before));
    test "nested loop peeling stays well-formed" (fun () ->
        let src =
          {|abstract class S { def v(): Int }
            class A() extends S { def v(): Int = 1 }
            class B() extends S { def v(): Int = 3 }
            def f(n: Int): Int = {
              var acc = 0;
              var i = 0;
              var s: S = new A();
              while (i < n) {
                var j = 0;
                while (j < n) { acc = acc + s.v(); j = j + 1; }
                s = new B();
                i = i + 1;
              }
              acc
            }
            def main(): Unit = println(f(4))|}
        in
        let before = output_of src in
        let prog = compile src in
        Opt.Driver.prepare_program prog;
        let fn = body_of prog "f" in
        ignore (Opt.Peel.run prog fn);
        check_verifies fn;
        let vm = Runtime.Interp.create prog in
        ignore (Runtime.Interp.run_main vm);
        Alcotest.(check string) "out" before (Runtime.Interp.output vm));
    test "loop-carried value used after the loop gets an exit phi" (fun () ->
        let src =
          {|abstract class S { def v(): Int }
            class A() extends S { def v(): Int = 2 }
            class B() extends S { def v(): Int = 5 }
            def f(n: Int): Int = {
              var s: S = new A();
              var last = 0;
              var i = 0;
              while (i < n) { last = s.v(); s = new B(); i = i + 1; }
              last * 10
            }
            def main(): Unit = println(f(3))|}
        in
        let before = output_of src in
        Alcotest.(check string) "baseline" "50\n" before;
        let prog = compile src in
        Opt.Driver.prepare_program prog;
        let fn = body_of prog "f" in
        ignore (Opt.Peel.run prog fn);
        check_verifies fn;
        let vm = Runtime.Interp.create prog in
        ignore (Runtime.Interp.run_main vm);
        Alcotest.(check string) "out" before (Runtime.Interp.output vm));
  ]

let scalarrepl_tests =
  [
    test "straight-line allocation dissolves" (fun () ->
        (* build the post-inlining shape directly: New + stores + loads,
           no constructor call *)
        let open Ir.Types in
        let prog =
          compile "class P(a: Int, b: Int) {}\ndef main(): Unit = {}"
        in
        let fn = Ir.Fn.create ~fname:"t" ~param_tys:[| Tint |] ~rty:Tint in
        let b0 = Ir.Fn.add_block fn in
        fn.entry <- b0;
        let x = Ir.Fn.append fn b0 (Param 0) in
        let obj = Ir.Fn.append fn b0 (New 0) in
        let _ = Ir.Fn.append fn b0 (SetField { obj; slot = 0; fname = "a"; value = x }) in
        let la = Ir.Fn.append fn b0 (GetField { obj; slot = 0; fname = "a"; fty = Tint }) in
        let lb = Ir.Fn.append fn b0 (GetField { obj; slot = 1; fname = "b"; fty = Tint }) in
        let sum = Ir.Fn.append fn b0 (Binop (Add, la, lb)) in
        Ir.Fn.set_term fn b0 (Return sum);
        Alcotest.(check int) "one replaced" 1 (Opt.Scalarrepl.run prog fn);
        check_verifies fn;
        Alcotest.(check int) "no allocation" 0
          (count_instrs fn (function New _ -> true | _ -> false));
        Alcotest.(check int) "no field traffic" 0
          (count_instrs fn (function GetField _ | SetField _ -> true | _ -> false)));
    test "escaping allocations are kept" (fun () ->
        let src =
          {|class P(a: Int) {}
            def sink(p: P): Int = p.a
            def g(): Int = { val p = new P(7); sink(p) }
            def main(): Unit = println(g())|}
        in
        let prog = compile src in
        Opt.Driver.prepare_program prog;
        let fn = body_of prog "g" in
        (* the constructor call and sink call both make it escape *)
        Alcotest.(check int) "none replaced" 0 (Opt.Scalarrepl.run prog fn));
    test "box in a loop dissolves after inlining (integration)" (fun () ->
        let src =
          {|class Box(v: Int) {}
            def bench(): Int = {
              val acc = new Box(0);
              var i = 0;
              while (i < 50) { acc.v = acc.v + i; i = i + 1; }
              acc.v
            }
            def main(): Unit = println(bench())|}
        in
        let expected = output_of src in
        Alcotest.(check string) "baseline" "1225\n" expected;
        let prog = compile src in
        Opt.Driver.prepare_program prog;
        let vm = Runtime.Interp.create prog in
        ignore (Runtime.Interp.run_main vm);
        let m = Option.get (Ir.Program.find_meth prog "bench") in
        let result = Inliner.Algorithm.compile prog vm.profiles Inliner.Params.default m in
        check_verifies result.body;
        (* the ctor was inlined, then the box scalar-replaced: no New and no
           field ops remain, the loop runs on pure SSA values *)
        Alcotest.(check int) "no allocation" 0
          (count_instrs result.body (function Ir.Types.New _ -> true | _ -> false));
        let vm2 = Runtime.Interp.create prog in
        vm2.code <- (fun m' -> if m' = m then Some result.Inliner.Algorithm.body else None);
        ignore (Runtime.Interp.run_main vm2);
        Alcotest.(check string) "same output" expected (Runtime.Interp.output vm2));
    test "loop-carried field values get phis" (fun () ->
        let open Ir.Types in
        let prog = compile "class P(a: Int) {}\ndef main(): Unit = {}" in
        (* v = new P; v.a = 0; while (c) { v.a = v.a + 1 }; return v.a *)
        let fn = Ir.Fn.create ~fname:"t" ~param_tys:[| Tint |] ~rty:Tint in
        let b0 = Ir.Fn.add_block fn in
        let hdr = Ir.Fn.add_block fn in
        let body = Ir.Fn.add_block fn in
        let exit = Ir.Fn.add_block fn in
        fn.entry <- b0;
        let n = Ir.Fn.append fn b0 (Param 0) in
        let obj = Ir.Fn.append fn b0 (New 0) in
        let zero = Ir.Fn.append fn b0 (Const (Cint 0)) in
        let _ = Ir.Fn.append fn b0 (SetField { obj; slot = 0; fname = "a"; value = zero }) in
        Ir.Fn.set_term fn b0 (Goto hdr);
        let i = Ir.Fn.append fn hdr (Phi { ty = Tint; inputs = [] }) in
        let cond = Ir.Fn.append fn hdr (Binop (Lt, i, n)) in
        Ir.Fn.set_term fn hdr (If { cond; site = { sm = 0; sidx = 0 }; tb = body; fb = exit });
        let cur = Ir.Fn.append fn body (GetField { obj; slot = 0; fname = "a"; fty = Tint }) in
        let one = Ir.Fn.append fn body (Const (Cint 1)) in
        let inc = Ir.Fn.append fn body (Binop (Add, cur, one)) in
        let _ = Ir.Fn.append fn body (SetField { obj; slot = 0; fname = "a"; value = inc }) in
        let inext = Ir.Fn.append fn body (Binop (Add, i, one)) in
        Ir.Fn.set_term fn body (Goto hdr);
        (match Ir.Fn.kind fn i with
        | Phi p -> p.inputs <- [ (b0, zero); (body, inext) ]
        | _ -> assert false);
        let final = Ir.Fn.append fn exit (GetField { obj; slot = 0; fname = "a"; fty = Tint }) in
        Ir.Fn.set_term fn exit (Return final);
        check_verifies fn;
        Alcotest.(check int) "replaced" 1 (Opt.Scalarrepl.run prog fn);
        check_verifies fn;
        (* semantics: t(5) must return 5 *)
        let vm = Runtime.Interp.create prog in
        let v =
          Runtime.Interp.exec vm ~mode:Runtime.Interp.Compiled ~meth:0 fn
            [| Runtime.Values.Vint 5 |]
        in
        Alcotest.(check int) "t(5)" 5 (Runtime.Values.as_int v));
    test "self-storing object escapes" (fun () ->
        let open Ir.Types in
        let prog =
          compile "class L(next: L) {}\ndef main(): Unit = {}"
        in
        let fn = Ir.Fn.create ~fname:"t" ~param_tys:[||] ~rty:Tint in
        let b0 = Ir.Fn.add_block fn in
        fn.entry <- b0;
        let obj = Ir.Fn.append fn b0 (New 0) in
        let _ =
          Ir.Fn.append fn b0 (SetField { obj; slot = 0; fname = "next"; value = obj })
        in
        let c = Ir.Fn.append fn b0 (Const (Cint 1)) in
        Ir.Fn.set_term fn b0 (Return c);
        Alcotest.(check bool) "escapes" true (Opt.Scalarrepl.escapes fn obj);
        Alcotest.(check int) "none replaced" 0 (Opt.Scalarrepl.run prog fn);
        ignore prog);
  ]

(* Table-driven coverage of the individual algebraic rewrite rules: each
   expression must simplify to a call-free, branch-free body computing the
   same value (checked by execution). *)
let rule_tests =
  let simplifies_to_identity what expr expected_at_5 =
    test what (fun () ->
        let src =
          Printf.sprintf "def f(x: Int): Int = %s\ndef main(): Unit = println(f(5))" expr
        in
        Alcotest.(check string) "semantics before" (string_of_int expected_at_5 ^ "\n")
          (output_of src);
        let prog = compile src in
        let fn = body_of prog "f" in
        ignore (Opt.Driver.simplify prog fn);
        check_verifies fn;
        (* the residue must be at most: params + a constant + return *)
        Alcotest.(check bool)
          (what ^ ": simplified away")
          true
          (count_instrs fn (function
             | Binop _ | Unop _ -> true
             | _ -> false)
          <= 1 (* a shift may remain from strength reduction *));
        let vm = Runtime.Interp.create prog in
        ignore (Runtime.Interp.run_main vm);
        Alcotest.(check string) "semantics after" (string_of_int expected_at_5 ^ "\n")
          (Runtime.Interp.output vm))
  in
  [
    simplifies_to_identity "x + 0" "x + 0" 5;
    simplifies_to_identity "0 + x" "0 + x" 5;
    simplifies_to_identity "x - 0" "x - 0" 5;
    simplifies_to_identity "x * 1" "x * 1" 5;
    simplifies_to_identity "1 * x" "1 * x" 5;
    simplifies_to_identity "x * 0" "x * 0" 0;
    simplifies_to_identity "x / 1" "x / 1" 5;
    simplifies_to_identity "x & 0" "x & 0" 0;
    simplifies_to_identity "x | 0" "x | 0" 5;
    simplifies_to_identity "x ^ 0" "x ^ 0" 5;
    simplifies_to_identity "x << 0" "x << 0" 5;
    simplifies_to_identity "x >> 0" "x >> 0" 5;
    simplifies_to_identity "x - x" "x - x" 0;
    simplifies_to_identity "x * 16 (strength)" "x * 16" 80;
    simplifies_to_identity "16 * x (strength)" "16 * x" 80;
    test "boolean identities" (fun () ->
        let src =
          {|def f(b: Bool): Bool = (b & true) | false
            def main(): Unit = println(f(true))|}
        in
        let prog = compile src in
        let fn = body_of prog "f" in
        ignore (Opt.Driver.simplify prog fn);
        Alcotest.(check int) "no boolean ops left" 0
          (count_instrs fn (function Binop ((Andb | Orb), _, _) -> true | _ -> false));
        let vm = Runtime.Interp.create prog in
        ignore (Runtime.Interp.run_main vm);
        Alcotest.(check string) "out" "true\n" (Runtime.Interp.output vm));
    test "double negation" (fun () ->
        let src = "def f(x: Int): Int = 0 - (0 - x)\ndef main(): Unit = println(f(7))" in
        Alcotest.(check string) "out" "7\n" (output_of ~prepare:true src));
    test "self-comparisons" (fun () ->
        let src =
          {|def f(x: Int): Bool = (x == x) & (x <= x) & !(x != x) & !(x < x)
            def main(): Unit = println(f(3))|}
        in
        let prog = compile src in
        let fn = body_of prog "f" in
        ignore (Opt.Driver.simplify prog fn);
        Alcotest.(check int) "all folded" 0
          (count_instrs fn (function Binop _ -> true | _ -> false));
        let vm = Runtime.Interp.create prog in
        ignore (Runtime.Interp.run_main vm);
        Alcotest.(check string) "out" "true\n" (Runtime.Interp.output vm));
  ]

let licm_tests =
  [
    test "invariant arithmetic hoists out of the loop" (fun () ->
        let src =
          {|def f(a: Int, b: Int, n: Int): Int = {
              var i = 0;
              var s = 0;
              while (i < n) { s = s + (a * b + 3); i = i + 1; }
              s
            }
            def main(): Unit = println(f(3, 4, 10))|}
        in
        Alcotest.(check string) "baseline" "150\n" (output_of src);
        let prog = compile src in
        let fn = body_of prog "f" in
        ignore (Opt.Driver.simplify prog fn);
        let loops_before = (Ir.Loops.compute fn).loops in
        let header = (List.hd loops_before).header in
        let moved = Opt.Licm.run fn in
        check_verifies fn;
        Alcotest.(check bool) "moved something" true (moved > 0);
        (* the multiply no longer lives inside the loop *)
        let loops = Ir.Loops.compute fn in
        let mul_in_loop = ref false in
        Ir.Fn.iter_blocks
          (fun blk ->
            if Ir.Loops.depth loops blk.b_id > 0 then
              List.iter
                (fun v ->
                  match Ir.Fn.kind fn v with
                  | Binop (Mul, _, _) -> mul_in_loop := true
                  | _ -> ())
                blk.instrs)
          fn;
        ignore header;
        Alcotest.(check bool) "mul hoisted" false !mul_in_loop;
        let vm = Runtime.Interp.create prog in
        ignore (Runtime.Interp.run_main vm);
        Alcotest.(check string) "out" "150\n" (Runtime.Interp.output vm));
    test "array length hoists; array reads do not" (fun () ->
        let src =
          {|def f(a: Array[Int]): Int = {
              var i = 0;
              var s = 0;
              while (i < a.length) { s = s + a[0]; i = i + 1; }
              s
            }
            def main(): Unit = {
              val a = new Array[Int](5);
              a[0] = 2;
              println(f(a));
            }|}
        in
        let prog = compile src in
        let fn = body_of prog "f" in
        ignore (Opt.Driver.simplify prog fn);
        ignore (Opt.Licm.run fn);
        check_verifies fn;
        let loops = Ir.Loops.compute fn in
        Ir.Fn.iter_blocks
          (fun blk ->
            if Ir.Loops.depth loops blk.b_id > 0 then
              List.iter
                (fun v ->
                  match Ir.Fn.kind fn v with
                  | ArrayLen _ -> Alcotest.fail "arraylen still in loop"
                  | _ -> ())
                blk.instrs)
          fn;
        Alcotest.(check int) "arrayget stays (mutable memory)" 1
          (count_instrs fn (function ArrayGet _ -> true | _ -> false));
        let vm = Runtime.Interp.create prog in
        ignore (Runtime.Interp.run_main vm);
        Alcotest.(check string) "out" "10\n" (Runtime.Interp.output vm));
    test "trapping division never hoists" (fun () ->
        let src =
          {|def f(a: Int, d: Int, n: Int): Int = {
              var i = 0;
              var s = 0;
              while (i < n) { s = s + a / d; i = i + 1; }
              s
            }
            def main(): Unit = println(f(10, 2, 3) + f(1, 0, 0))|}
        in
        (* f(1, 0, 0): the division never executes, so no trap — hoisting
           it to the preheader would break this program *)
        Alcotest.(check string) "baseline" "15\n" (output_of src);
        let prog = compile src in
        Opt.Driver.prepare_program prog;
        let vm = Runtime.Interp.create prog in
        ignore (Runtime.Interp.run_main vm);
        Alcotest.(check string) "still no trap" "15\n" (Runtime.Interp.output vm));
    test "idempotent: second run hoists nothing and adds no blocks" (fun () ->
        let src =
          {|def f(a: Int, n: Int): Int = {
              var i = 0;
              var s = 0;
              while (i < n) { s = s + a * a; i = i + 1; }
              s
            }
            def main(): Unit = {}|}
        in
        let prog = compile src in
        let fn = body_of prog "f" in
        ignore (Opt.Driver.simplify prog fn);
        ignore (Opt.Licm.run fn);
        let blocks = List.length (Ir.Fn.block_ids fn) in
        Alcotest.(check int) "second run" 0 (Opt.Licm.run fn);
        Alcotest.(check int) "no new blocks" blocks (List.length (Ir.Fn.block_ids fn)));
    test "nested loops: inner invariant lands between the loops" (fun () ->
        let src =
          {|def f(n: Int): Int = {
              var i = 0;
              var s = 0;
              while (i < n) {
                var j = 0;
                while (j < n) { s = s + i * i; j = j + 1; }
                i = i + 1;
              }
              s
            }
            def main(): Unit = println(f(4))|}
        in
        Alcotest.(check string) "baseline" "56\n" (output_of src);
        let prog = compile src in
        let fn = body_of prog "f" in
        ignore (Opt.Driver.simplify prog fn);
        ignore (Opt.Licm.run fn);
        check_verifies fn;
        (* i*i is invariant in the inner loop but not the outer: it must
           now sit at depth exactly 1 *)
        let loops = Ir.Loops.compute fn in
        let depth_of_mul = ref (-1) in
        Ir.Fn.iter_blocks
          (fun blk ->
            List.iter
              (fun v ->
                match Ir.Fn.kind fn v with
                | Binop (Mul, _, _) -> depth_of_mul := Ir.Loops.depth loops blk.b_id
                | _ -> ())
              blk.instrs)
          fn;
        Alcotest.(check int) "depth 1" 1 !depth_of_mul;
        let vm = Runtime.Interp.create prog in
        ignore (Runtime.Interp.run_main vm);
        Alcotest.(check string) "out" "56\n" (Runtime.Interp.output vm));
  ]

let () =
  Alcotest.run "opt"
    [
      ("tyinfer", tyinfer_tests);
      ("canonicalize", canon_tests);
      ("gvn", gvn_tests);
      ("dce", dce_tests);
      ("simplify", simplify_cfg_tests);
      ("rwelim", rwelim_tests);
      ("peel", peel_tests);
      ("scalarrepl", scalarrepl_tests);
      ("licm", licm_tests);
      ("rules", rule_tests);
    ]
