test/test_jit.ml: Alcotest Hashtbl Ir Jit List Option Runtime Util
