test/test_inliner.ml: Alcotest Algorithm Analysis Array Calltree Expansion Float Hashtbl Inliner Ir List Opt Option Params Runtime Util Workloads
