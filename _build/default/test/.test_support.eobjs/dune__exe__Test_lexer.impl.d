test/test_lexer.ml: Alcotest Fmt Frontend List String Util
