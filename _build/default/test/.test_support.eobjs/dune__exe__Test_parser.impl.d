test/test_parser.ml: Alcotest Frontend List Printf String Util
