test/test_lower.ml: Alcotest Ir List Util
