test/util.ml: Alcotest Baselines Frontend Inliner Ir Jit Opt Runtime String
