test/test_typecheck.mli:
