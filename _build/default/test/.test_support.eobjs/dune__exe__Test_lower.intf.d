test/test_lower.mli:
