test/test_properties.ml: Alcotest Array Baselines Frontend Gen Hashtbl Inliner Ir Jit Lazy List Opt Option Printf QCheck QCheck_alcotest Runtime String Support Test Util
