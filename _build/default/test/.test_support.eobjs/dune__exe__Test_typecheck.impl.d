test/test_typecheck.ml: Alcotest Array Filename Hashtbl Ir Option String Util
