test/test_workloads.ml: Alcotest Inliner Ir Jit List Opt Option Runtime String Support Unix Util Workloads
