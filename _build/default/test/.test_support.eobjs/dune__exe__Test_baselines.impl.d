test/test_baselines.ml: Alcotest Baselines Hashtbl Ir Jit List Opt Option Runtime Util Workloads
