test/test_profile.ml: Alcotest Ir Jit List Opt Option Runtime Util
