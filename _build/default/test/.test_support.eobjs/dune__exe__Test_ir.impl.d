test/test_ir.ml: Alcotest Hashtbl Inliner Ir List Opt Option Runtime Util Workloads
