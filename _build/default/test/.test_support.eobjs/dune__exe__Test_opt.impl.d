test/test_opt.ml: Alcotest Array Hashtbl Inliner Ir List Opt Option Printf Runtime Util Workloads
