test/test_interp.ml: Alcotest Ir List Opt Printf Runtime String Util
