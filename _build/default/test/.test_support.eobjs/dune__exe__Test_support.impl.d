test/test_support.ml: Alcotest List Support Util
