test/test_inliner.mli:
