(* Shared helpers for the test suites. *)

let compile (src : string) : Ir.Types.program =
  match Frontend.Pipeline.compile src with
  | Ok prog -> prog
  | Error e -> Alcotest.failf "program does not compile: %s" (Frontend.Pipeline.error_to_string e)

let compile_err (src : string) : string =
  match Frontend.Pipeline.compile src with
  | Ok _ -> Alcotest.fail "expected a compile error"
  | Error e -> Frontend.Pipeline.error_to_string e

(* Runs [main] in a fresh interpreter; returns (output, result). *)
let run_main ?(prepare = false) (src : string) : string * Runtime.Values.value =
  let prog = compile src in
  if prepare then Opt.Driver.prepare_program prog;
  let vm = Runtime.Interp.create prog in
  let v = Runtime.Interp.run_main vm in
  (Runtime.Interp.output vm, v)

let output_of ?prepare src = fst (run_main ?prepare src)

(* Runs a named 0-arg function and returns its Int result. *)
let run_int ?(prepare = false) (src : string) (name : string) : int =
  let prog = compile src in
  if prepare then Opt.Driver.prepare_program prog;
  let vm = Runtime.Interp.create prog in
  match Runtime.Interp.run_meth vm name [ Runtime.Values.Vunit ] with
  | Runtime.Values.Vint n -> n
  | v -> Alcotest.failf "%s returned %s, not an Int" name (Runtime.Values.to_string v)

let body_of (prog : Ir.Types.program) (name : string) : Ir.Types.fn =
  match Ir.Program.find_meth prog name with
  | Some m -> (
      match (Ir.Program.meth prog m).body with
      | Some fn -> fn
      | None -> Alcotest.failf "method %s has no body" name)
  | None -> Alcotest.failf "no method named %s" name

let check_verifies (fn : Ir.Types.fn) =
  match Ir.Verify.check fn with
  | () -> ()
  | exception Ir.Verify.Ill_formed msg -> Alcotest.failf "IR ill-formed: %s" msg

(* Counts instructions matching a predicate. *)
let count_instrs (fn : Ir.Types.fn) (p : Ir.Types.instr_kind -> bool) : int =
  let n = ref 0 in
  Ir.Fn.iter_instrs (fun i -> if p i.kind then incr n) fn;
  !n

let count_calls fn = count_instrs fn Ir.Instr.is_call

let count_virtual_calls fn =
  count_instrs fn (function
    | Ir.Types.Call { callee = Ir.Types.Virtual _; _ } -> true
    | _ -> false)

let test name f = Alcotest.test_case name `Quick f

let contains_substring ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  n = 0
  ||
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

(* A JIT engine over [src] with the given compiler. *)
let engine ?(hotness = 5) ?(verify = true) (src : string)
    (compiler : Jit.Engine.compiler option) (name : string) : Jit.Engine.t =
  let prog = compile src in
  Jit.Engine.create prog
    { name; compiler; hotness_threshold = hotness; compile_cost_per_node = 50; verify }

let incremental ?(params = Inliner.Params.default) () : Jit.Engine.compiler =
 fun prog profiles m -> (Inliner.Algorithm.compile prog profiles params m).body

let greedy : Jit.Engine.compiler = fun p pr m -> Baselines.Greedy.compile p pr m
let c2like : Jit.Engine.compiler = fun p pr m -> Baselines.C2like.compile p pr m
