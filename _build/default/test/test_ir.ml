(* Tests for the IR layer: function/block manipulation, dominators, loop
   discovery, frequency estimation, the verifier, and inline splicing. *)

open Util
open Ir.Types

(* diamond: b0 -> b1|b2 -> b3, with a phi in b3 *)
let make_diamond () =
  let fn = Ir.Fn.create ~fname:"diamond" ~param_tys:[| Tint |] ~rty:Tint in
  let b0 = Ir.Fn.add_block fn in
  let b1 = Ir.Fn.add_block fn in
  let b2 = Ir.Fn.add_block fn in
  let b3 = Ir.Fn.add_block fn in
  fn.entry <- b0;
  let p = Ir.Fn.append fn b0 (Param 0) in
  let zero = Ir.Fn.append fn b0 (Const (Cint 0)) in
  let cond = Ir.Fn.append fn b0 (Binop (Lt, p, zero)) in
  Ir.Fn.set_term fn b0 (If { cond; site = { sm = 0; sidx = 0 }; tb = b1; fb = b2 });
  let one = Ir.Fn.append fn b1 (Const (Cint 1)) in
  Ir.Fn.set_term fn b1 (Goto b3);
  let two = Ir.Fn.append fn b2 (Const (Cint 2)) in
  Ir.Fn.set_term fn b2 (Goto b3);
  let phi = Ir.Fn.prepend fn b3 (Phi { ty = Tint; inputs = [ (b1, one); (b2, two) ] }) in
  Ir.Fn.set_term fn b3 (Return phi);
  (fn, b0, b1, b2, b3, phi)

(* loop: b0 -> b1 (header) -> b2 (body) -> b1; b1 -> b3 (exit) *)
let make_loop () =
  let fn = Ir.Fn.create ~fname:"loop" ~param_tys:[| Tint |] ~rty:Tint in
  let b0 = Ir.Fn.add_block fn in
  let b1 = Ir.Fn.add_block fn in
  let b2 = Ir.Fn.add_block fn in
  let b3 = Ir.Fn.add_block fn in
  fn.entry <- b0;
  let n = Ir.Fn.append fn b0 (Param 0) in
  let zero = Ir.Fn.append fn b0 (Const (Cint 0)) in
  Ir.Fn.set_term fn b0 (Goto b1);
  let i = Ir.Fn.append fn b1 (Phi { ty = Tint; inputs = [] }) in
  let cond = Ir.Fn.append fn b1 (Binop (Lt, i, n)) in
  Ir.Fn.set_term fn b1 (If { cond; site = { sm = 0; sidx = 0 }; tb = b2; fb = b3 });
  let one = Ir.Fn.append fn b2 (Const (Cint 1)) in
  let inc = Ir.Fn.append fn b2 (Binop (Add, i, one)) in
  Ir.Fn.set_term fn b2 (Goto b1);
  (match Ir.Fn.kind fn i with
  | Phi p -> p.inputs <- [ (b0, zero); (b2, inc) ]
  | _ -> assert false);
  Ir.Fn.set_term fn b3 (Return i);
  (fn, b0, b1, b2, b3)

let fn_tests =
  [
    test "size counts instructions and terminators" (fun () ->
        let fn, _, _, _, _, _ = make_diamond () in
        (* 6 instrs + 4 terminators *)
        Alcotest.(check int) "size" 10 (Ir.Fn.size fn));
    test "preds" (fun () ->
        let fn, b0, b1, b2, b3, _ = make_diamond () in
        let preds = Ir.Fn.preds fn in
        Alcotest.(check (list int)) "b3 preds" [ b1; b2 ]
          (List.sort compare (Hashtbl.find preds b3));
        Alcotest.(check (list int)) "b0 preds" [] (Hashtbl.find preds b0));
    test "rpo starts at entry" (fun () ->
        let fn, b0, _, _, _, _ = make_diamond () in
        Alcotest.(check int) "first" b0 (List.hd (Ir.Fn.rpo fn)));
    test "rpo covers reachable blocks exactly once" (fun () ->
        let fn, _, _, _, _, _ = make_diamond () in
        let order = Ir.Fn.rpo fn in
        Alcotest.(check int) "count" 4 (List.length order);
        Alcotest.(check int) "unique" 4 (List.length (List.sort_uniq compare order)));
    test "delete_instr removes uses from blocks" (fun () ->
        let fn, _, b1, _, _, _ = make_diamond () in
        let blk = Ir.Fn.block fn b1 in
        let v = List.hd blk.instrs in
        Ir.Fn.delete_instr fn v;
        Alcotest.(check bool) "gone" false (List.mem v (Ir.Fn.block fn b1).instrs);
        Alcotest.(check bool) "dead" false (Ir.Fn.instr_live fn v));
    test "replace_uses rewrites operands, phis and terminators" (fun () ->
        let fn, _, b1, _, b3, phi = make_diamond () in
        let one = List.hd (Ir.Fn.block fn b1).instrs in
        let fresh = Ir.Fn.append fn b1 (Const (Cint 42)) in
        Ir.Fn.replace_uses fn ~old_v:one ~new_v:fresh;
        (match Ir.Fn.kind fn phi with
        | Phi { inputs; _ } ->
            Alcotest.(check bool) "phi updated" true (List.mem_assoc b1 inputs);
            Alcotest.(check int) "phi value" fresh (List.assoc b1 inputs)
        | _ -> Alcotest.fail "not a phi");
        Ir.Fn.replace_uses fn ~old_v:phi ~new_v:fresh;
        match Ir.Fn.term fn b3 with
        | Return v -> Alcotest.(check int) "return updated" fresh v
        | _ -> Alcotest.fail "not a return");
    test "insert_before places instruction before target" (fun () ->
        let fn, b0, _, _, _, _ = make_diamond () in
        let target = List.nth (Ir.Fn.block fn b0).instrs 1 in
        let v = Ir.Fn.insert_before fn ~before:target (Const (Cint 9)) in
        let instrs = (Ir.Fn.block fn b0).instrs in
        let rec idx x = function
          | [] -> -1
          | y :: _ when y = x -> 0
          | _ :: tl -> 1 + idx x tl
        in
        Alcotest.(check bool) "before" true (idx v instrs < idx target instrs));
    test "copy is deep for mutable kinds" (fun () ->
        let fn, _, _, _, _, phi = make_diamond () in
        let copy = Ir.Fn.copy fn in
        (match Ir.Fn.kind copy phi with
        | Phi p -> p.inputs <- []
        | _ -> Alcotest.fail "not a phi");
        match Ir.Fn.kind fn phi with
        | Phi { inputs; _ } -> Alcotest.(check int) "original intact" 2 (List.length inputs)
        | _ -> Alcotest.fail "not a phi");
    test "calls lists call instructions in order" (fun () ->
        let fn = Ir.Fn.create ~fname:"c" ~param_tys:[||] ~rty:Tunit in
        let b0 = Ir.Fn.add_block fn in
        fn.entry <- b0;
        let c1 =
          Ir.Fn.append fn b0
            (Call { callee = Direct 0; args = []; site = { sm = 0; sidx = 0 }; rty = Tunit })
        in
        let c2 =
          Ir.Fn.append fn b0
            (Call { callee = Direct 1; args = []; site = { sm = 0; sidx = 1 }; rty = Tunit })
        in
        let u = Ir.Fn.append fn b0 (Const Cunit) in
        Ir.Fn.set_term fn b0 (Return u);
        Alcotest.(check (list int)) "calls" [ c1; c2 ]
          (List.map (fun (i : instr) -> i.id) (Ir.Fn.calls fn)));
  ]

let dom_tests =
  [
    test "entry dominates everything" (fun () ->
        let fn, b0, b1, b2, b3, _ = make_diamond () in
        let d = Ir.Dominators.compute fn in
        List.iter
          (fun b -> Alcotest.(check bool) "dom" true (Ir.Dominators.dominates d ~a:b0 ~b))
          [ b0; b1; b2; b3 ]);
    test "branches do not dominate the join" (fun () ->
        let fn, _, b1, b2, b3, _ = make_diamond () in
        let d = Ir.Dominators.compute fn in
        Alcotest.(check bool) "b1 !dom b3" false (Ir.Dominators.dominates d ~a:b1 ~b:b3);
        Alcotest.(check bool) "b2 !dom b3" false (Ir.Dominators.dominates d ~a:b2 ~b:b3));
    test "idom of join is the branch point" (fun () ->
        let fn, b0, _, _, b3, _ = make_diamond () in
        let d = Ir.Dominators.compute fn in
        Alcotest.(check (option int)) "idom" (Some b0) (Ir.Dominators.idom d b3));
    test "dominator children" (fun () ->
        let fn, b0, b1, b2, b3, _ = make_diamond () in
        let d = Ir.Dominators.compute fn in
        Alcotest.(check (list int)) "children of entry" [ b1; b2; b3 ]
          (Ir.Dominators.children d b0));
    test "loop header dominates body and exit" (fun () ->
        let fn, _, b1, b2, b3 = make_loop () in
        let d = Ir.Dominators.compute fn in
        Alcotest.(check bool) "body" true (Ir.Dominators.dominates d ~a:b1 ~b:b2);
        Alcotest.(check bool) "exit" true (Ir.Dominators.dominates d ~a:b1 ~b:b3));
  ]

let loop_tests =
  [
    test "natural loop discovered" (fun () ->
        let fn, _, b1, b2, _ = make_loop () in
        let loops = Ir.Loops.compute fn in
        Alcotest.(check int) "one loop" 1 (List.length loops.loops);
        let l = List.hd loops.loops in
        Alcotest.(check int) "header" b1 l.header;
        Alcotest.(check bool) "body in loop" true (Hashtbl.mem l.body b2));
    test "loop depth" (fun () ->
        let fn, b0, b1, b2, b3 = make_loop () in
        let loops = Ir.Loops.compute fn in
        Alcotest.(check int) "entry depth" 0 (Ir.Loops.depth loops b0);
        Alcotest.(check int) "header depth" 1 (Ir.Loops.depth loops b1);
        Alcotest.(check int) "body depth" 1 (Ir.Loops.depth loops b2);
        Alcotest.(check int) "exit depth" 0 (Ir.Loops.depth loops b3));
    test "diamond has no loops" (fun () ->
        let fn, _, _, _, _, _ = make_diamond () in
        Alcotest.(check int) "none" 0 (List.length (Ir.Loops.compute fn).loops));
    test "nested loops from source give depth 2" (fun () ->
        let prog =
          compile
            {|def f(n: Int): Int = {
                var acc = 0;
                var i = 0;
                while (i < n) {
                  var j = 0;
                  while (j < n) { acc = acc + 1; j = j + 1; }
                  i = i + 1;
                }
                acc
              }
              def main(): Unit = {}|}
        in
        let fn = body_of prog "f" in
        let loops = Ir.Loops.compute fn in
        let max_depth =
          Ir.Fn.fold_blocks (fun acc blk -> max acc (Ir.Loops.depth loops blk.b_id)) 0 fn
        in
        Alcotest.(check int) "two loops" 2 (List.length loops.loops);
        Alcotest.(check int) "max depth" 2 max_depth);
  ]

let freq_tests =
  [
    test "static: if branches get half the entry frequency" (fun () ->
        let fn, b0, b1, b2, b3, _ = make_diamond () in
        let f = Ir.Freq.static fn in
        Alcotest.(check (float 1e-9)) "entry" 1.0 (Hashtbl.find f b0);
        Alcotest.(check (float 1e-9)) "then" 0.5 (Hashtbl.find f b1);
        Alcotest.(check (float 1e-9)) "else" 0.5 (Hashtbl.find f b2);
        Alcotest.(check (float 1e-9)) "join" 1.0 (Hashtbl.find f b3));
    test "static: loop body amplified" (fun () ->
        let fn, _, b1, b2, _ = make_loop () in
        let f = Ir.Freq.static fn in
        Alcotest.(check bool) "header amplified" true (Hashtbl.find f b1 > 1.0);
        Alcotest.(check bool) "body amplified" true (Hashtbl.find f b2 > 1.0));
    test "profiled: uses counts relative to entry" (fun () ->
        let fn, b0, b1, b2, b3, _ = make_diamond () in
        let counts b =
          if b = b0 then 100.0
          else if b = b1 then 90.0
          else if b = b2 then 10.0
          else if b = b3 then 100.0
          else 0.0
        in
        let f = Ir.Freq.profiled fn ~counts in
        Alcotest.(check (float 1e-9)) "then" 0.9 (Hashtbl.find f b1);
        Alcotest.(check (float 1e-9)) "else" 0.1 (Hashtbl.find f b2));
    test "profiled falls back to static without entry count" (fun () ->
        let fn, _, b1, _, _, _ = make_diamond () in
        let f = Ir.Freq.profiled fn ~counts:(fun _ -> 0.0) in
        Alcotest.(check (float 1e-9)) "then static" 0.5 (Hashtbl.find f b1));
  ]

let verify_tests =
  [
    test "well-formed diamond passes" (fun () ->
        let fn, _, _, _, _, _ = make_diamond () in
        check_verifies fn);
    test "well-formed loop passes" (fun () ->
        let fn, _, _, _, _ = make_loop () in
        check_verifies fn);
    test "use before def in same block fails" (fun () ->
        let fn = Ir.Fn.create ~fname:"bad" ~param_tys:[||] ~rty:Tint in
        let b0 = Ir.Fn.add_block fn in
        fn.entry <- b0;
        let c = Ir.Fn.append fn b0 (Const (Cint 1)) in
        let add = Ir.Fn.append fn b0 (Binop (Add, c + 1, c)) in
        let _ = Ir.Fn.append fn b0 (Const (Cint 0)) in
        (* add references the NEXT instruction's id: use before def... build
           it explicitly: swap the order *)
        let blk = Ir.Fn.block fn b0 in
        blk.instrs <- [ add; c; c + 2 ];
        Ir.Fn.set_term fn b0 (Return add);
        Alcotest.(check bool) "ill-formed" false (Ir.Verify.is_well_formed fn));
    test "branch to dead block fails" (fun () ->
        let fn, _, b1, _, _, _ = make_diamond () in
        Ir.Fn.set_term fn b1 (Goto 99);
        Alcotest.(check bool) "ill-formed" false (Ir.Verify.is_well_formed fn));
    test "phi edges must match predecessors" (fun () ->
        let fn, _, b1, _, _, phi = make_diamond () in
        (match Ir.Fn.kind fn phi with
        | Phi p -> p.inputs <- List.filter (fun (pb, _) -> pb <> b1) p.inputs
        | _ -> assert false);
        Alcotest.(check bool) "ill-formed" false (Ir.Verify.is_well_formed fn));
    test "definition must dominate use across blocks" (fun () ->
        let fn, _, b1, b2, _, _ = make_diamond () in
        let one = List.hd (Ir.Fn.block fn b1).instrs in
        (* use b1's value in b2, which b1 does not dominate *)
        let v = Ir.Fn.append fn b2 (Unop (Neg, one)) in
        ignore v;
        Alcotest.(check bool) "ill-formed" false (Ir.Verify.is_well_formed fn));
    test "phi after non-phi fails" (fun () ->
        let fn, _, _, _, b3, phi = make_diamond () in
        let blk = Ir.Fn.block fn b3 in
        let c = Ir.Fn.fresh_instr fn (Const (Cint 0)) in
        blk.instrs <- [ c.id; phi ];
        Alcotest.(check bool) "ill-formed" false (Ir.Verify.is_well_formed fn));
    test "unreachable blocks are ignored" (fun () ->
        let fn, _, _, _, _, _ = make_diamond () in
        let dead = Ir.Fn.add_block fn in
        (* garbage in an unreachable block is fine *)
        ignore (Ir.Fn.append fn dead (Binop (Add, 1000, 1001)));
        Alcotest.(check bool) "ok" true (Ir.Verify.is_well_formed fn));
  ]

let splice_tests =
  [
    test "inlining a simple callee preserves behaviour" (fun () ->
        let src =
          {|def add1(x: Int): Int = x + 1
            def f(a: Int): Int = add1(a) * 2
            def main(): Unit = println(f(20))|}
        in
        let prog = compile src in
        let f = body_of prog "f" in
        let callee = body_of prog "add1" in
        let call =
          match Ir.Fn.calls f with [ c ] -> c.id | _ -> Alcotest.fail "one call"
        in
        let _ = Ir.Splice.inline_call ~caller:f ~call_vid:call ~callee:(Ir.Fn.copy callee) in
        check_verifies f;
        Alcotest.(check int) "no calls left" 0 (count_calls f);
        (* run the mutated program: f's body was modified in place *)
        let vm = Runtime.Interp.create prog in
        ignore (Runtime.Interp.run_main vm);
        Alcotest.(check string) "out" "42\n" (Runtime.Interp.output vm));
    test "inlining a callee with control flow" (fun () ->
        let src =
          {|def pick(c: Bool): Int = if (c) { 10 } else { 20 }
            def f(): Int = pick(true) + pick(false)
            def main(): Unit = println(f())|}
        in
        let prog = compile src in
        let f = body_of prog "f" in
        let callee = body_of prog "pick" in
        List.iter
          (fun (c : instr) ->
            ignore (Ir.Splice.inline_call ~caller:f ~call_vid:c.id ~callee:(Ir.Fn.copy callee)))
          (Ir.Fn.calls f);
        check_verifies f;
        let vm = Runtime.Interp.create prog in
        ignore (Runtime.Interp.run_main vm);
        Alcotest.(check string) "out" "30\n" (Runtime.Interp.output vm));
    test "inlining a callee with a loop" (fun () ->
        let src =
          {|def sum(n: Int): Int = { var i = 0; var s = 0; while (i < n) { s = s + i; i = i + 1 }; s }
            def f(): Int = sum(10)
            def main(): Unit = println(f())|}
        in
        let prog = compile src in
        let f = body_of prog "f" in
        let callee = body_of prog "sum" in
        let call = (List.hd (Ir.Fn.calls f)).id in
        let _ = Ir.Splice.inline_call ~caller:f ~call_vid:call ~callee:(Ir.Fn.copy callee) in
        check_verifies f;
        let vm = Runtime.Interp.create prog in
        ignore (Runtime.Interp.run_main vm);
        Alcotest.(check string) "out" "45\n" (Runtime.Interp.output vm));
    test "remap exposes callee callsites" (fun () ->
        let src =
          {|def g(): Int = 1
            def mid(): Int = g() + g()
            def f(): Int = mid()
            def main(): Unit = println(f())|}
        in
        let prog = compile src in
        let f = body_of prog "f" in
        let callee = body_of prog "mid" in
        let callee_copy = Ir.Fn.copy callee in
        let inner_calls = List.map (fun (i : instr) -> i.id) (Ir.Fn.calls callee_copy) in
        let call = (List.hd (Ir.Fn.calls f)).id in
        let remap = Ir.Splice.inline_call ~caller:f ~call_vid:call ~callee:callee_copy in
        List.iter
          (fun v ->
            match Hashtbl.find_opt remap.vmap v with
            | Some v' ->
                Alcotest.(check bool) "mapped call live" true (Ir.Fn.instr_live f v');
                Alcotest.(check bool) "is call" true (Ir.Instr.is_call (Ir.Fn.kind f v'))
            | None -> Alcotest.fail "inner call not mapped")
          inner_calls;
        Alcotest.(check int) "two calls now" 2 (count_calls f));
    test "call as the last instruction before the terminator" (fun () ->
        let src =
          {|def g(): Int = 7
            def f(): Int = g()
            def main(): Unit = println(f())|}
        in
        let prog = compile src in
        let f = body_of prog "f" in
        let callee = body_of prog "g" in
        let call = (List.hd (Ir.Fn.calls f)).id in
        ignore (Ir.Splice.inline_call ~caller:f ~call_vid:call ~callee:(Ir.Fn.copy callee));
        check_verifies f;
        let vm = Runtime.Interp.create prog in
        ignore (Runtime.Interp.run_main vm);
        Alcotest.(check string) "out" "7\n" (Runtime.Interp.output vm));
    test "unused call result still splices" (fun () ->
        let src =
          {|def g(): Int = { println(9); 1 }
            def f(): Int = { g(); 5 }
            def main(): Unit = println(f())|}
        in
        let prog = compile src in
        let f = body_of prog "f" in
        let callee = body_of prog "g" in
        let call = (List.hd (Ir.Fn.calls f)).id in
        ignore (Ir.Splice.inline_call ~caller:f ~call_vid:call ~callee:(Ir.Fn.copy callee));
        check_verifies f;
        let vm = Runtime.Interp.create prog in
        ignore (Runtime.Interp.run_main vm);
        Alcotest.(check string) "out" "9\n5\n" (Runtime.Interp.output vm));
    test "callee with multiple returns joins through a phi" (fun () ->
        let src =
          {|def pick(c: Bool): Int = if (c) { 11 } else { 22 }
            def f(c: Bool): Int = pick(c)
            def main(): Unit = println(f(true) + f(false))|}
        in
        let prog = compile src in
        Opt.Driver.prepare_program prog;
        let f = body_of prog "f" in
        let callee = body_of prog "pick" in
        let call = (List.hd (Ir.Fn.calls f)).id in
        ignore (Ir.Splice.inline_call ~caller:f ~call_vid:call ~callee:(Ir.Fn.copy callee));
        check_verifies f;
        (* the old call id must now be a phi *)
        Alcotest.(check bool) "phi at join" true
          (Ir.Instr.is_phi (Ir.Fn.kind f call));
        let vm = Runtime.Interp.create prog in
        ignore (Runtime.Interp.run_main vm);
        Alcotest.(check string) "out" "33\n" (Runtime.Interp.output vm));
    test "splicing into a loop body keeps loop phis valid" (fun () ->
        let src =
          {|def inc(x: Int): Int = x + 1
            def f(n: Int): Int = { var i = 0; while (i < n) { i = inc(i) }; i }
            def main(): Unit = println(f(9))|}
        in
        let prog = compile src in
        let f = body_of prog "f" in
        let callee = body_of prog "inc" in
        let call = (List.hd (Ir.Fn.calls f)).id in
        ignore (Ir.Splice.inline_call ~caller:f ~call_vid:call ~callee:(Ir.Fn.copy callee));
        check_verifies f;
        let vm = Runtime.Interp.create prog in
        ignore (Runtime.Interp.run_main vm);
        Alcotest.(check string) "out" "9\n" (Runtime.Interp.output vm));
    test "arity mismatch rejected" (fun () ->
        let src =
          {|def g(x: Int): Int = x
            def f(): Int = g(1)
            def main(): Unit = {}|}
        in
        let prog = compile src in
        let f = body_of prog "f" in
        let bad_callee = Ir.Fn.create ~fname:"bad" ~param_tys:[| Tunit; Tint; Tint; Tint |] ~rty:Tint in
        let b = Ir.Fn.add_block bad_callee in
        bad_callee.entry <- b;
        let p = Ir.Fn.append bad_callee b (Param 3) in
        Ir.Fn.set_term bad_callee b (Return p);
        let call = (List.hd (Ir.Fn.calls f)).id in
        Alcotest.check_raises "arity"
          (Invalid_argument "Splice.inline_call: arity mismatch")
          (fun () -> ignore (Ir.Splice.inline_call ~caller:f ~call_vid:call ~callee:bad_callee)));
  ]

(* print -> parse -> print must be the identity on live content *)
let roundtrip_ok (fn : fn) =
  let text = Ir.Printer.fn_to_string fn in
  let reparsed =
    try Ir.Parse.parse_fn text
    with Ir.Parse.Ir_parse_error msg ->
      Alcotest.failf "parse error: %s\nin:\n%s" msg text
  in
  let text2 = Ir.Printer.fn_to_string reparsed in
  Alcotest.(check string) "round trip" text text2;
  check_verifies reparsed

let parse_tests =
  [
    test "diamond round-trips" (fun () ->
        let fn, _, _, _, _, _ = make_diamond () in
        roundtrip_ok fn);
    test "loop round-trips" (fun () ->
        let fn, _, _, _, _ = make_loop () in
        roundtrip_ok fn);
    test "every prepared workload method round-trips" (fun () ->
        List.iter
          (fun (w : Workloads.Defs.t) ->
            let prog = Workloads.Registry.compile w in
            Opt.Driver.prepare_program prog;
            Ir.Program.iter_meths
              (fun (m : Ir.Types.meth) ->
                match m.body with
                | Some fn -> (
                    let text = Ir.Printer.fn_to_string fn in
                    match Ir.Parse.parse_fn text with
                    | reparsed ->
                        Alcotest.(check string)
                          (w.name ^ "/" ^ m.m_name)
                          text
                          (Ir.Printer.fn_to_string reparsed)
                    | exception Ir.Parse.Ir_parse_error msg ->
                        Alcotest.failf "%s/%s: %s\n%s" w.name m.m_name msg text)
                | None -> ())
              prog)
          [ Option.get (Workloads.Registry.find "foreach-poly");
            Option.get (Workloads.Registry.find "luindex-text");
            Option.get (Workloads.Registry.find "stm-bench") ]);
    test "compiled (inlined, typeswitched) code round-trips" (fun () ->
        let w = Option.get (Workloads.Registry.find "factorie-gm") in
        let prog = Workloads.Registry.compile w in
        Opt.Driver.prepare_program prog;
        let vm = Runtime.Interp.create prog in
        ignore (Runtime.Interp.run_main vm);
        let m = Option.get (Ir.Program.find_meth prog "bench") in
        let result =
          Inliner.Algorithm.compile prog vm.profiles Inliner.Params.default m
        in
        roundtrip_ok result.body);
    test "parse errors carry a message" (fun () ->
        List.iter
          (fun bad ->
            match Ir.Parse.parse_fn bad with
            | _ -> Alcotest.failf "accepted %S" bad
            | exception Ir.Parse.Ir_parse_error _ -> ())
          [
            "";
            "fn f() : Int entry=b0\nb0:\n  v0 = nonsense\n  return v0";
            "fn f() : Int entry=b0\nb0:\n  v0 = const 1";
            "fn f() : Wat entry=b0\nb0:\n  unreachable";
            "fn f() : Int entry=b0\nb0:\n  v0 = const 1\n  return v0\ngarbage";
          ]);
    test "parsed fn is executable" (fun () ->
        let text =
          "fn f(Unit, Int) : Int  entry=b0\n\
           b0:\n\
          \  v0 = param 0\n\
          \  v1 = param 1\n\
          \  v2 = const 2\n\
          \  v3 = mul v1, v2\n\
          \  return v3\n"
        in
        let fn = Ir.Parse.parse_fn text in
        check_verifies fn;
        let prog = compile "def main(): Unit = {}" in
        let vm = Runtime.Interp.create prog in
        let v =
          Runtime.Interp.exec vm ~mode:Runtime.Interp.Compiled ~meth:0 fn
            [| Runtime.Values.Vunit; Runtime.Values.Vint 21 |]
        in
        Alcotest.(check int) "f(21)" 42 (Runtime.Values.as_int v));
  ]

let () =
  Alcotest.run "ir"
    [
      ("fn", fn_tests);
      ("dominators", dom_tests);
      ("loops", loop_tests);
      ("freq", freq_tests);
      ("verify", verify_tests);
      ("splice", splice_tests);
      ("parse", parse_tests);
    ]
