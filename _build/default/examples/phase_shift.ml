(* Phase shifts — the paper's Section II "practical difficulty 1" (noisy
   estimates) — and the engine's speculation management: a typeswitch
   trained on one receiver distribution goes stale when the program's
   behaviour changes; the engine detects the misses, invalidates the code,
   re-profiles and recompiles.

     dune exec examples/phase_shift.exe *)

let source =
  {|
abstract class Codec { def decode(x: Int): Int }
class Ascii() extends Codec { def decode(x: Int): Int = x & 127 }
class Utf8() extends Codec { def decode(x: Int): Int = (x & 63) | ((x >> 2) & 1984) }

def decodeAll(c: Codec, n: Int): Int = {
  var i = 0;
  var acc = 0;
  while (i < n) { acc = acc + c.decode(i * 17); i = i + 1; }
  acc
}
def main(): Unit = println(decodeAll(new Ascii(), 10))
|}

let mk_engine ~spec_miss_threshold =
  let prog = Frontend.Pipeline.compile_exn source in
  let engine =
    Jit.Engine.create ?spec_miss_threshold prog
      {
        name = "spec-demo";
        compiler =
          Some
            (fun p pr m ->
              (Inliner.Algorithm.compile p pr Inliner.Params.default m).body);
        hotness_threshold = 4;
        compile_cost_per_node = 50;
        verify = true;
      }
  in
  let obj name =
    let cls =
      let r = ref (-1) in
      Ir.Program.iter_classes
        (fun (c : Ir.Types.cls) -> if c.c_name = name then r := c.c_id)
        prog;
      !r
    in
    Runtime.Values.alloc_obj prog cls
  in
  (engine, obj "Ascii", obj "Utf8")

let phase engine codec label k =
  let c0 = engine.Jit.Engine.vm.cycles in
  for _ = 1 to k do
    ignore
      (Jit.Engine.run_meth engine "decodeAll"
         [ Runtime.Values.Vunit; codec; Runtime.Values.Vint 200 ])
  done;
  let per = (engine.Jit.Engine.vm.cycles - c0) / k in
  Printf.printf "  %-28s %6d cycles/call   (invalidations so far: %d)\n" label per
    (List.length engine.Jit.Engine.invalidations)

let () =
  print_endline "--- speculation management ON (spec_miss_threshold = 100) ---";
  let e, ascii, utf8 = mk_engine ~spec_miss_threshold:(Some 100) in
  phase e ascii "phase 1: Ascii (training)" 20;
  phase e utf8 "phase 2: Utf8 (shift!)" 20;
  phase e utf8 "phase 2 continued" 20;
  print_endline "\n--- speculation management OFF ---";
  let e2, ascii2, utf82 = mk_engine ~spec_miss_threshold:None in
  phase e2 ascii2 "phase 1: Ascii (training)" 20;
  phase e2 utf82 "phase 2: Utf8 (shift!)" 20;
  phase e2 utf82 "phase 2 continued (stale)" 20;
  print_endline
    "\nReading: with management on, the stale Ascii speculation is thrown away\n\
     after enough typeswitch misses and decodeAll recompiles against the Utf8\n\
     profile, recovering the per-call cost; without it, every call keeps paying\n\
     the missed test plus the residual virtual dispatch.";
  ignore (ascii, utf8)
