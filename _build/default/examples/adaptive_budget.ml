(* The adaptive-threshold story (paper Figs. 6-7) in miniature: sweep fixed
   expansion budgets T_e on two workloads with opposite preferences and
   show that no single value wins both, while the adaptive policy is close
   to the per-workload best on each.

     dune exec examples/adaptive_budget.exe *)

let measure w params =
  let prog = Workloads.Registry.compile w in
  let engine =
    Jit.Engine.create prog
      {
        name = "sweep";
        compiler =
          Some (fun p pr m -> (Inliner.Algorithm.compile p pr params m).body);
        hotness_threshold = 8;
        compile_cost_per_node = 50;
        verify = false;
      }
  in
  let run = Jit.Harness.run_benchmark ~iters:30 engine ~entry:"bench" ~label:"sweep" in
  (run.peak_cycles, Jit.Engine.installed_code_size engine)

let () =
  let te_values = [ 50; 100; 300; 700 ] in
  let workloads = [ "foreach-poly"; "scalac-visitor" ] in
  Printf.printf "%-16s %12s" "workload" "adaptive";
  List.iter (fun te -> Printf.printf "%12s" (Printf.sprintf "Te=%d" te)) te_values;
  print_newline ();
  List.iter
    (fun name ->
      let w = Option.get (Workloads.Registry.find name) in
      let adaptive, _ = measure w Inliner.Params.default in
      Printf.printf "%-16s %12.0f" name adaptive;
      List.iter
        (fun te ->
          let p, _ =
            measure w (Inliner.Params.with_fixed ~te ~ti:600 Inliner.Params.default)
          in
          Printf.printf "%12.0f" p)
        te_values;
      print_newline ())
    workloads;
  print_endline
    "\nReading: each row is peak cycles (lower is better). The fixed budget that\n\
     wins on one workload is mediocre on the other; the adaptive threshold\n\
     (Eq. 8 / Eq. 12 in the paper) stays near the per-workload best without\n\
     any per-benchmark tuning."
