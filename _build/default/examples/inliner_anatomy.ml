(* Anatomy of the incremental inlining algorithm on the paper's Figure 1
   program shape: drive the expand / analyze / inline phases by hand and
   dump the call tree between them.

     dune exec examples/inliner_anatomy.exe *)

(* The motivating example from the paper, transliterated to Sel: a generic
   foreach whose length/get/apply callsites are all polymorphic, and only
   pay off when the whole cluster is inlined together. *)
let source =
  {|
abstract class IndexedSeqOptimized {
  def get(i: Int): Int
  def length(): Int
  def foreach(f: Int => Unit): Unit = {
    var i = 0;
    while (i < this.length()) { f(this.get(i)); i = i + 1; }
  }
}
class IntArray(xs: Array[Int]) extends IndexedSeqOptimized {
  def get(i: Int): Int = xs[i]
  def length(): Int = xs.length
}

class Sink() { var total: Int }

def log(xs: IndexedSeqOptimized, sink: Sink): Unit = {
  xs.foreach((x: Int) => { sink.total = sink.total + x })
}

def main(): Unit = {
  val data = new Array[Int](64);
  var i = 0;
  while (i < 64) { data[i] = i; i = i + 1; }
  val sink = new Sink();
  var round = 0;
  while (round < 10) { log(new IntArray(data), sink); round = round + 1; }
  println(sink.total);
}
|}

let dump_tree label (t : Inliner.Calltree.t) =
  Printf.printf "\n--- %s ---\n" label;
  Printf.printf "%s\n" (Fmt.str "%a" Inliner.Calltree.pp t);
  Printf.printf "aggregates: S_ir(root)=%d  cutoffs=%d  root size=%d\n"
    (Inliner.Calltree.tree_s_ir t) (Inliner.Calltree.tree_n_c t)
    (Ir.Fn.size t.root_fn)

let () =
  let prog = Frontend.Pipeline.compile_exn source in
  Opt.Driver.prepare_program prog;

  (* Profile by interpreting: branch counts, block counts, and — crucially
     for foreach's polymorphic callsites — receiver histograms. *)
  let vm = Runtime.Interp.create prog in
  ignore (Runtime.Interp.run_main vm);
  Printf.printf "interpreted warmup: output %S, %d cycles\n" (Runtime.Interp.output vm)
    vm.cycles;

  let log_m = Option.get (Ir.Program.find_meth prog "log") in
  let t = Inliner.Calltree.create prog vm.profiles Inliner.Params.default log_m in
  dump_tree "call tree after createRoot(log)" t;

  (* Phase 1: expansion — descend by priority P(n) (Eqs. 5-7), expand
     cutoffs that pass the adaptive threshold (Eq. 8). Deep inlining trials
     specialize each attached body with the callsite's argument types, so
     foreach's this.length()/this.get(i) devirtualize inside the copies. *)
  let expanded = Inliner.Expansion.run t in
  Printf.printf "\nexpansion phase: %d nodes expanded\n" expanded;
  dump_tree "call tree after expansion" t;

  (* Phase 2: cost-benefit analysis — benefit|cost tuples and callsite
     clusters (Listing 6). *)
  Inliner.Analysis.run t;
  let rec show_clusters indent (n : Inliner.Calltree.node) =
    Printf.printf "%snode v%d  tuple=%.2f|%.0f  in-parent-cluster=%b\n" indent n.call_vid
      (fst n.tuple) (snd n.tuple) n.in_parent_cluster;
    List.iter (show_clusters (indent ^ "  ")) n.children
  in
  print_endline "\nanalysis phase (benefit|cost, cluster membership):";
  List.iter (show_clusters "  ") t.children;

  (* Phase 3: inlining — best cluster first, adaptive threshold (Eq. 12). *)
  let inlined = Inliner.Inline_phase.run t in
  ignore (Opt.Driver.round_root_opts prog t.root_fn);
  Inliner.Calltree.refresh t;
  Printf.printf "\ninlining phase: %d callsites inlined\n" inlined;
  dump_tree "call tree after one full round" t;

  (* ... the algorithm alternates these phases until termination. The
     packaged driver does exactly that: *)
  let result = Inliner.Algorithm.compile prog vm.profiles Inliner.Params.default log_m in
  Printf.printf "\nfull algorithm: %s\n" (Fmt.str "%a" Inliner.Algorithm.pp_stats result.stats);
  Printf.printf "\nfinal optimized log (%d IR nodes):\n%s" (Ir.Fn.size result.body)
    (Ir.Printer.fn_to_string result.body)
