(* Compare the paper's incremental inliner against the greedy and C2-like
   baselines on a built-in workload, including warmup behaviour — a small
   interactive version of the harness's Figure 9.

     dune exec examples/compare_inliners.exe            # default workload
     dune exec examples/compare_inliners.exe stm-bench  # pick another *)

let configs : (string * Jit.Engine.compiler option) list =
  [
    ("interp", None);
    ("greedy", Some (fun p pr m -> Baselines.Greedy.compile p pr m));
    ("c2-like", Some (fun p pr m -> Baselines.C2like.compile p pr m));
    ( "incremental",
      Some
        (fun p pr m ->
          (Inliner.Algorithm.compile p pr Inliner.Params.default m).body) );
  ]

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "foreach-poly" in
  let w =
    match Workloads.Registry.find name with
    | Some w -> w
    | None ->
        Printf.eprintf "unknown workload %s; available: %s\n" name
          (String.concat ", " (Workloads.Registry.names ()));
        exit 1
  in
  Printf.printf "workload %s: %s\n\n" w.name w.description;
  let runs =
    List.map
      (fun (label, compiler) ->
        let prog = Workloads.Registry.compile w in
        let engine =
          Jit.Engine.create prog
            { name = label; compiler; hotness_threshold = 8;
              compile_cost_per_node = 50; verify = false }
        in
        let run = Jit.Harness.run_benchmark ~iters:30 engine ~entry:"bench" ~label in
        (label, engine, run))
      configs
  in
  (* warmup curves *)
  print_endline "per-iteration cycles (warmup):";
  Printf.printf "%4s" "iter";
  List.iter (fun (label, _, _) -> Printf.printf "%14s" label) runs;
  print_newline ();
  List.iter
    (fun i ->
      Printf.printf "%4d" (i + 1);
      List.iter
        (fun (_, _, (run : Jit.Harness.run)) ->
          Printf.printf "%14d" (List.nth run.iterations i).cycles)
        runs;
      print_newline ())
    [ 0; 1; 2; 4; 7; 9; 14; 19; 29 ];
  (* summary *)
  print_endline "\nsummary:";
  let _, _, (interp_run : Jit.Harness.run) = List.hd runs in
  List.iter
    (fun (label, engine, (run : Jit.Harness.run)) ->
      Printf.printf
        "  %-12s peak %10.0f cycles  (%5.2fx vs interp)   code %5d nodes in %2d \
         methods\n"
        label run.peak_cycles
        (interp_run.peak_cycles /. run.peak_cycles)
        (Jit.Engine.installed_code_size engine)
        (Jit.Engine.installed_methods engine))
    runs
