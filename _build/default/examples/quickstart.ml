(* Quickstart: compile a Sel program, run it tiered (interpret -> profile ->
   JIT-compile with the incremental inliner), and look at what the compiler
   produced.

     dune exec examples/quickstart.exe *)

let source =
  {|
abstract class Shape {
  def area(): Int
}
class Square(side: Int) extends Shape {
  def area(): Int = side * side
}
class Circle(r: Int) extends Shape {
  def area(): Int = 3 * r * r   /* pi ~ 3 in integer land */
}

def totalArea(shapes: Array[Shape]): Int = {
  var i = 0;
  var total = 0;
  while (i < shapes.length) { total = total + shapes[i].area(); i = i + 1; }
  total
}

def bench(): Int = {
  val shapes = new Array[Shape](20);
  var i = 0;
  while (i < 20) {
    if (i % 2 == 0) { shapes[i] = new Square(i + 1) } else { shapes[i] = new Circle(i) };
    i = i + 1;
  }
  totalArea(shapes)
}

def main(): Unit = println(bench())
|}

let () =
  (* 1. Source -> verified SSA IR. *)
  let prog = Frontend.Pipeline.compile_exn source in
  Printf.printf "compiled %d methods, %d classes, %d IR nodes total\n"
    (Ir.Program.num_meths prog) (Ir.Program.num_classes prog)
    (Ir.Program.total_ir_size prog);

  (* 2. A tiered engine: interpret until hot, then hand hot methods to the
     paper's incremental inlining algorithm. *)
  let engine =
    Jit.Engine.create prog
      {
        name = "incremental";
        compiler =
          Some
            (fun prog profiles m ->
              (Inliner.Algorithm.compile prog profiles Inliner.Params.default m).body);
        hotness_threshold = 5;
        compile_cost_per_node = 50;
        verify = true;
      }
  in

  (* 3. Repeat the benchmark entry; watch it speed up as compilation kicks
     in. *)
  let run = Jit.Harness.run_benchmark ~iters:15 engine ~entry:"bench" ~label:"demo" in
  print_endline "iter  cycles  compiled-methods";
  List.iter
    (fun (it : Jit.Harness.iteration) ->
      Printf.printf "%4d  %6d  %d\n" it.index it.cycles it.compiled_methods)
    run.iterations;
  Printf.printf "peak: %.0f cycles/iteration (first: %d)\n" run.peak_cycles
    (List.hd run.iterations).cycles;

  (* 4. Inspect the code the inliner produced for the hot method. *)
  match Jit.Engine.compiled_body engine "bench" with
  | Some fn ->
      Printf.printf "\ncompiled bench (%d IR nodes):\n%s" (Ir.Fn.size fn)
        (Ir.Printer.fn_to_string fn)
  | None -> print_endline "bench never got hot enough to compile"
