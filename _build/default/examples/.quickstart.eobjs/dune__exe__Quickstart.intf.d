examples/quickstart.mli:
