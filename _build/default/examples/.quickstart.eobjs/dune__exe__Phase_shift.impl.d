examples/phase_shift.ml: Frontend Inliner Ir Jit List Printf Runtime
