examples/compare_inliners.mli:
