examples/compare_inliners.ml: Array Baselines Inliner Jit List Printf String Sys Workloads
