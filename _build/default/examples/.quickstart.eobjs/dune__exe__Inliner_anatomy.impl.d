examples/inliner_anatomy.ml: Fmt Frontend Inliner Ir List Opt Option Printf Runtime
