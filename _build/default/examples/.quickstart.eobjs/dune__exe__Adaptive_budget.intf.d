examples/adaptive_budget.mli:
