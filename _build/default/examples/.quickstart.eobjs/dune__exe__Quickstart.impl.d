examples/quickstart.ml: Frontend Inliner Ir Jit List Printf
