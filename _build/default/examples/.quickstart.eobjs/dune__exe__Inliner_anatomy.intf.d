examples/inliner_anatomy.mli:
