examples/phase_shift.mli:
