examples/adaptive_budget.ml: Inliner Jit List Option Printf Workloads
