(* The SelVM command-line interface.

     selvm run prog.sel                       # run main under the JIT
     selvm run --config greedy prog.sel       # choose the inliner
     selvm run --trace events.jsonl prog.sel  # record structured JIT telemetry
     selvm bench --entry bench prog.sel       # repeat a method, report cycles
     selvm compile --method f prog.sel        # dump a method's optimized IR
     selvm events events.jsonl                # summarize a recorded trace
     selvm workloads                          # list the built-in benchmarks
     selvm run --workload gauss-mix           # run a built-in benchmark
     selvm serve --tenants "long-loop*2,gauss-mix" --cache-capacity 800
                                              # multi-tenant serving harness

   Configurations: interp (no JIT), greedy (open-source-Graal-like),
   c2 (HotSpot-C2-like), incremental (the paper's algorithm, default),
   and the ablations incremental-1by1, incremental-shallow,
   incremental-fixed. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let compiler_of_config (name : string) : (Jit.Engine.compiler option, string) result =
  let incr params : Jit.Engine.compiler =
   fun prog profiles m -> (Inliner.Algorithm.compile prog profiles params m).body
  in
  match name with
  | "interp" -> Ok None
  | "greedy" -> Ok (Some (fun p pr m -> Baselines.Greedy.compile p pr m))
  | "c2" -> Ok (Some (fun p pr m -> Baselines.C2like.compile p pr m))
  | "incremental" -> Ok (Some (incr Inliner.Params.default))
  | "incremental-1by1" ->
      Ok (Some (incr (Inliner.Params.without_clustering Inliner.Params.default)))
  | "incremental-shallow" ->
      Ok (Some (incr (Inliner.Params.without_deep_trials Inliner.Params.default)))
  | "incremental-fixed" ->
      Ok (Some (incr (Inliner.Params.with_fixed ~te:300 ~ti:600 Inliner.Params.default)))
  | other -> Error (Printf.sprintf "unknown configuration %s" other)

let load_program ~(file : string option) ~(workload : string option) :
    (Ir.Types.program * string, string) result =
  match (file, workload) with
  | Some path, None -> (
      match read_file path with
      | exception Sys_error e -> Error e
      | text -> (
          match Frontend.Pipeline.compile text with
          | Ok prog -> Ok (prog, path)
          | Error e -> Error (Frontend.Pipeline.error_to_string e)))
  | None, Some name -> (
      match Workloads.Registry.find name with
      | Some w -> Ok (Workloads.Registry.compile w, name)
      | None ->
          Error
            (Printf.sprintf "unknown workload %s (try: selvm workloads)" name))
  | Some _, Some _ -> Error "pass either a file or --workload, not both"
  | None, None -> Error "pass a .sel file or --workload NAME"

let make_engine ?compile_fuel ?(threaded = true) ?(osr = true) prog config
    hotness verify =
  match compiler_of_config config with
  | Error e -> Error e
  | Ok compiler ->
      let e =
        Jit.Engine.create ?compile_fuel ~osr prog
          {
            name = config;
            compiler;
            hotness_threshold = hotness;
            compile_cost_per_node = 50;
            verify;
          }
      in
      (* --no-threaded kill switch: drop the interpreted tier back to the
         prepared dispatch-match engine (observably transparent) *)
      if not threaded then e.vm.backend <- Runtime.Interp.Prepared;
      Ok e

let print_stats (e : Jit.Engine.t) =
  Printf.eprintf
    "-- %s: %d cycles executed, %d methods compiled (%d IR nodes installed, %d \
     compile cycles)\n"
    e.config.name e.vm.cycles
    (Jit.Engine.installed_methods e)
    (Jit.Engine.installed_code_size e)
    e.compile_cycles;
  let bs = Jit.Engine.bailout_stats e in
  if bs.failed_attempts > 0 then
    Printf.eprintf "-- bailouts: %d failed attempts over %d methods, %d blacklisted\n"
      bs.failed_attempts bs.failed_methods
      (List.length bs.blacklisted_methods);
  (match Jit.Engine.superinst_stats e with
  | [] -> ()
  | ss ->
      Printf.eprintf "-- superinstructions (%s dispatch): %d patterns, %d fused sites\n"
        (Jit.Engine.dispatch_label e)
        (List.length ss)
        (List.fold_left
           (fun a (s : Runtime.Interp.sstat) -> a + s.ss_sites)
           0 ss));
  match Support.Chaos.plan () with
  | Some p ->
      Printf.eprintf "-- chaos: seed %d rate %.2f: %d faults injected over %d rolls\n"
        p.seed p.rate p.injected p.rolls
  | None -> ()

(* ---- common options ---- *)

let file_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Sel source file.")

let workload_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "workload"; "w" ] ~docv:"NAME" ~doc:"Run a built-in workload instead of a file.")

let config_arg =
  Arg.(
    value
    & opt string "incremental"
    & info [ "config"; "c" ] ~docv:"CONFIG"
        ~doc:
          "JIT configuration: interp, greedy, c2, incremental, incremental-1by1, \
           incremental-shallow, incremental-fixed.")

let hotness_arg =
  Arg.(
    value
    & opt int 8
    & info [ "hotness" ] ~docv:"N" ~doc:"Invocations before a method compiles.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print engine statistics to stderr.")

let verify_arg =
  Arg.(value & flag & info [ "verify" ] ~doc:"Verify every compiled body (slower).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record structured JIT telemetry (compiles, installs, invalidations, \
           inliner decisions, optimizer counters) as JSONL to FILE. Events carry \
           the simulated cycle clock, so identical runs produce identical traces. \
           Summarize with `selvm events FILE`.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Record the metrics registry (counters, gauges, log2-bucketed \
           histograms: compiles, compile latency, inline depth, IC hit rates, \
           bailouts) and write it to FILE as JSON at exit. Values derive from \
           the simulated clocks, so identical runs write identical files.")

let chaos_seed_arg =
  Arg.(
    value
    & opt int 1
    & info [ "chaos-seed" ] ~docv:"N"
        ~doc:"Seed of the deterministic fault-injection plan (with --chaos-rate).")

let chaos_rate_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "chaos-rate" ] ~docv:"R"
        ~doc:
          "Inject a fault (compiler crash, verifier reject, starved compile budget, \
           invalidation storm) with probability R at each opportunity; 0 disables. \
           The same seed and rate replay the exact same fault sequence; program \
           output is unaffected — faulted methods degrade to the interpreter.")

let no_threaded_arg =
  Arg.(
    value & flag
    & info [ "no-threaded" ]
        ~doc:
          "Kill switch for the closure-threaded interpreted tier: fall back to \
           the prepared dispatch-match engine. Output, simulated cycles, steps \
           and profiles are identical either way; only wall-clock differs.")

let no_osr_arg =
  Arg.(
    value & flag
    & info [ "no-osr" ]
        ~doc:
          "Kill switch for loop-entry on-stack replacement: long-running \
           interpreted loops wait for their next invocation instead of \
           transferring into compiled code mid-invocation. Program output is \
           identical either way; only warmup latency differs. The \
           backedge-driven hotness trigger at method entry stays active.")

let timeline_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "timeline" ] ~docv:"FILE"
        ~doc:
          "Stream time-series telemetry as JSONL to FILE: one gauge snapshot \
           (tier residency, queue depth, cache occupancy, deopt/OSR/bailout \
           counters, plus the metrics registry) per tenant every \
           --timeline-interval simulated cycles, and per-turn fleet rows under \
           `selvm serve`. Samples ride the deterministic cycle clock, so \
           same-seed runs produce byte-identical timelines. Inspect with \
           `selvm top FILE`, gate with `selvm slo --check FILE`.")

let timeline_interval_arg =
  Arg.(
    value
    & opt int Obs.Timeline.default_interval
    & info [ "timeline-interval" ] ~docv:"CYCLES"
        ~doc:"Simulated cycles between timeline samples of one source.")

let compile_fuel_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "compile-fuel" ] ~docv:"N"
        ~doc:
          "Watchdog budget per compilation, in fuel checkpoints; a compilation \
           exceeding it falls back to its best completed inlining round, or bails \
           out entirely when not even one round finished.")

let fail msg =
  Printf.eprintf "selvm: %s\n" msg;
  exit 1

(* Runs [f] with a JSONL trace sink on [path] when --trace was given. The
   trace is written atomically; an unwritable path is a one-line
   diagnostic, not a backtrace. *)
let with_optional_trace (path : string option) (f : unit -> 'a) : 'a =
  match path with
  | None -> f ()
  | Some path -> (
      try Obs.Trace.with_file path f
      with Sys_error e -> fail ("cannot write --trace: " ^ e))

(* Runs [f] with the metrics registry enabled when --metrics was given,
   writing the registry as one JSON line to [path] afterwards (atomic,
   like --trace). *)
let with_optional_metrics (path : string option) (f : unit -> 'a) : 'a =
  match path with
  | None -> f ()
  | Some path ->
      Obs.Metrics.reset ();
      let v = Obs.Metrics.scoped f in
      (try
         Support.Io.write_atomic path
           (Support.Json.to_string (Obs.Metrics.to_json ()) ^ "\n")
       with Sys_error e -> fail ("cannot write --metrics: " ^ e));
      v

(* Runs [f] with a timeline sampler on [path] when --timeline was given
   (atomic, like --trace). The SLO monitors always ride along: firings
   surface as [slo_violation] trace events when tracing is on, and the
   timeline itself is what `selvm slo --check` re-examines offline. *)
let with_optional_timeline (path : string option) ~(interval : int)
    (f : Obs.Timeline.t option -> 'a) : 'a =
  match path with
  | None -> f None
  | Some path -> (
      if interval < 1 then fail "--timeline-interval must be >= 1";
      try Obs.Timeline.with_file ~interval path (fun tl -> f (Some tl))
      with Sys_error e -> fail ("cannot write --timeline: " ^ e))

(* Runs [f] under a chaos fault plan when --chaos-rate > 0. *)
let with_optional_chaos ~(seed : int) ~(rate : float) (f : unit -> 'a) : 'a =
  if rate = 0.0 then f ()
  else if not (Float.is_finite rate) || rate < 0.0 || rate > 1.0 then
    fail "--chaos-rate must be in [0, 1]"
  else Support.Chaos.scoped ~seed ~rate f

(* ---- run ---- *)

let run_cmd =
  let run file workload config hotness stats verify trace metrics chaos_seed
      chaos_rate compile_fuel no_threaded no_osr timeline timeline_interval =
    match load_program ~file ~workload with
    | Error e -> fail e
    | Ok (prog, label) -> (
        (* failures inside the trace scope are carried out as [Error] and
           reported after it closes: [exit] would not unwind the scope, and
           the trace file only renames into place when the scope exits *)
        let outcome =
          with_optional_trace trace (fun () ->
              with_optional_metrics metrics (fun () ->
                  with_optional_timeline timeline ~interval:timeline_interval
                    (fun tl ->
                      with_optional_chaos ~seed:chaos_seed ~rate:chaos_rate
                        (fun () ->
                          match
                            make_engine ?compile_fuel
                              ~threaded:(not no_threaded) ~osr:(not no_osr)
                              prog config hotness verify
                          with
                          | Error e -> Error e
                          | Ok e -> (
                              (match tl with
                              | Some tl ->
                                  let monitor =
                                    Obs.Slo.monitor Obs.Slo.default_specs
                                  in
                                  Jit.Engine.attach_timeline ~monitor e
                                    ~source:label tl
                              | None -> ());
                              match Jit.Engine.run_main e with
                              | _ ->
                                  Jit.Engine.sample_timeline ~force:true e;
                                  print_string (Jit.Engine.output e);
                                  if stats then print_stats e;
                                  if Obs.Metrics.enabled () then
                                    Jit.Engine.snapshot_metrics e;
                                  Ok ()
                              | exception Runtime.Values.Trap msg ->
                                  print_string (Jit.Engine.output e);
                                  Error ("runtime trap: " ^ msg))))))
        in
        match outcome with Ok () -> () | Error e -> fail e)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a Sel program's main under the JIT.")
    Term.(
      const run $ file_arg $ workload_arg $ config_arg $ hotness_arg $ stats_arg
      $ verify_arg $ trace_arg $ metrics_arg $ chaos_seed_arg $ chaos_rate_arg
      $ compile_fuel_arg $ no_threaded_arg $ no_osr_arg $ timeline_arg
      $ timeline_interval_arg)

(* ---- bench ---- *)

let bench_cmd =
  let entry_arg =
    Arg.(
      value & opt string "bench"
      & info [ "entry" ] ~docv:"METHOD" ~doc:"0-argument method to repeat.")
  in
  let iters_arg =
    Arg.(value & opt int 40 & info [ "iters" ] ~docv:"N" ~doc:"Iterations to run.")
  in
  let save_profiles_arg =
    Arg.(
      value & opt (some string) None
      & info [ "save-profiles" ] ~docv:"FILE"
          ~doc:"Write the collected profiles to FILE afterwards (see `compile \
                --profiles`).")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the full run (iterations, inline-cache totals, compile \
                timeline) to FILE as JSON.")
  in
  let bench file workload config hotness entry iters save_profiles json trace
      chaos_seed chaos_rate compile_fuel no_threaded no_osr =
    match load_program ~file ~workload with
    | Error e -> fail e
    | Ok (prog, label) -> (
        (* as in `run`: carry failures out of the trace scope so the
           atomic trace rename still happens before exiting *)
        let outcome =
          with_optional_trace trace (fun () ->
              with_optional_chaos ~seed:chaos_seed ~rate:chaos_rate (fun () ->
                  match
                    make_engine ?compile_fuel ~threaded:(not no_threaded)
                      ~osr:(not no_osr) prog config hotness false
                  with
                  | Error e -> Error e
                  | Ok e -> (
                      match
                        Jit.Harness.run_benchmark ~iters e ~entry
                          ~label:(label ^ "/" ^ config)
                      with
                      | exception Runtime.Values.Trap msg ->
                          Error ("runtime trap: " ^ msg)
                      | run -> (
                          Printf.printf "# %s  entry=%s config=%s\n" label entry config;
                          Printf.printf "# iter cycles compiled_methods\n";
                          List.iter
                            (fun (it : Jit.Harness.iteration) ->
                              Printf.printf "%d %d %d\n" it.index it.cycles
                                it.compiled_methods)
                            run.iterations;
                          Printf.printf
                            "# peak %.1f +- %.1f cycles; %d IR nodes installed\n"
                            run.peak_cycles run.peak_stddev run.code_size;
                          if run.pending_methods > 0 then
                            Printf.printf "# %d compilations (%d IR nodes) still pending\n"
                              run.pending_methods run.pending_code_size;
                          if run.ic_sites > 0 then
                            Printf.printf "# inline caches: %d sites, %.1f%% hit rate\n"
                              run.ic_sites
                              (100.0 *. Jit.Harness.ic_hit_rate run);
                          if run.bailed_out <> [] then
                            Printf.printf "# %d compile bailouts; blacklisted: %s\n"
                              (List.length run.bailed_out)
                              (match run.blacklisted with
                              | [] -> "none"
                              | ms -> String.concat ", " ms);
                          match
                            (match json with
                            | Some path ->
                                Support.Io.write_atomic path
                                  (Support.Json.to_string (Jit.Harness.run_json run)
                                  ^ "\n");
                                Printf.eprintf "-- run JSON written to %s\n" path
                            | None -> ());
                            match save_profiles with
                            | Some path ->
                                Support.Io.write_atomic path
                                  (Runtime.Profile.to_text e.vm.profiles);
                                Printf.eprintf "-- profiles written to %s\n" path
                            | None -> ()
                          with
                          | () -> Ok ()
                          | exception Sys_error msg ->
                              Error ("cannot write results: " ^ msg)))))
        in
        match outcome with Ok () -> () | Error e -> fail e)
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Repeat a method and report per-iteration simulated cycles.")
    Term.(
      const bench $ file_arg $ workload_arg $ config_arg $ hotness_arg $ entry_arg
      $ iters_arg $ save_profiles_arg $ json_arg $ trace_arg $ chaos_seed_arg
      $ chaos_rate_arg $ compile_fuel_arg $ no_threaded_arg $ no_osr_arg)

(* ---- compile ---- *)

let compile_cmd =
  let method_arg =
    Arg.(
      required & opt (some string) None
      & info [ "method"; "m" ] ~docv:"NAME" ~doc:"Method to compile and dump.")
  in
  let warmup_arg =
    Arg.(
      value & opt int 5
      & info [ "warmup" ] ~docv:"N" ~doc:"main() runs to collect profiles first.")
  in
  let profiles_arg =
    Arg.(
      value & opt (some string) None
      & info [ "profiles" ] ~docv:"FILE"
          ~doc:"Load profiles saved by `bench --save-profiles` (from the same \
                sources) instead of interpreting main for warmup.")
  in
  let compile file workload config meth_name warmup profiles =
    match load_program ~file ~workload with
    | Error e -> fail e
    | Ok (prog, _) -> (
        Opt.Driver.prepare_program prog;
        let vm = Runtime.Interp.create prog in
        (match profiles with
        | Some path -> (
            match read_file path with
            | exception Sys_error e -> fail e
            | text -> (
                match Runtime.Profile.of_text text with
                | loaded -> vm.profiles <- loaded
                | exception Runtime.Profile.Bad_profile msg ->
                    fail ("bad profile file: " ^ msg)))
        | None ->
            for _ = 1 to warmup do
              ignore (Runtime.Interp.run_main vm)
            done);
        match Ir.Program.find_meth prog meth_name with
        | None -> fail (Printf.sprintf "no method named %s" meth_name)
        | Some m -> (
            match compiler_of_config config with
            | Error e -> fail e
            | Ok None ->
                (* interp: show the prepared body *)
                print_string
                  (Ir.Printer.fn_to_string (Option.get (Ir.Program.meth prog m).body))
            | Ok (Some compiler) ->
                let body = compiler prog vm.profiles m in
                Printf.printf "; %s compiled with %s (%d IR nodes)\n" meth_name config
                  (Ir.Fn.size body);
                print_string (Ir.Printer.fn_to_string body)))
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Profile a program, compile one method, and dump the optimized IR.")
    Term.(
      const compile $ file_arg $ workload_arg $ config_arg $ method_arg $ warmup_arg
      $ profiles_arg)

(* ---- parse-ir ---- *)

let parse_ir_cmd =
  let file_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Textual IR dump (the format `selvm compile` prints).")
  in
  let parse_ir file =
    let text =
      match read_file file with text -> text | exception Sys_error e -> fail e
    in
    (* tolerate a leading `; comment` line from `selvm compile` output *)
    let text =
      if String.length text > 0 && text.[0] = ';' then
        match String.index_opt text '\n' with
        | Some i -> String.sub text (i + 1) (String.length text - i - 1)
        | None -> text
      else text
    in
    match Ir.Parse.parse_fn text with
    | fn -> (
        match Ir.Verify.check fn with
        | () ->
            Printf.printf "%s: well-formed, %d IR nodes, %d blocks\n" fn.fname
              (Ir.Fn.size fn)
              (List.length (Ir.Fn.block_ids fn))
        | exception Ir.Verify.Ill_formed msg ->
            fail (Printf.sprintf "parses but is ill-formed: %s" msg))
    | exception Ir.Parse.Ir_parse_error msg -> fail ("parse error: " ^ msg)
  in
  Cmd.v
    (Cmd.info "parse-ir" ~doc:"Parse and verify a textual IR dump (round-trip check).")
    Term.(const parse_ir $ file_arg)

(* ---- events ---- *)

let trace_pos_arg =
  Arg.(
    required & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"JSONL trace recorded with --trace.")

let events_cmd =
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Exit non-zero when the trace contains malformed lines (they are \
                always warned about on stderr and skipped).")
  in
  let events file strict =
    let lines =
      match read_file file with
      | text -> String.split_on_char '\n' text
      | exception Sys_error e -> fail e
    in
    let events, errors = Obs.Summary.parse_lines lines in
    List.iter
      (fun (lineno, e) ->
        Printf.eprintf "selvm: %s:%d: skipping malformed event: %s\n" file lineno e)
      errors;
    let events = List.map snd events in
    print_string (Obs.Summary.render (Obs.Summary.of_events events));
    (match Obs.Summary.split_runs events with
    | [] | [ _ ] -> ()  (* a single run reads the same as the overall summary *)
    | runs ->
        List.iteri
          (fun i (label, s) ->
            Printf.printf "\n=== run %d/%d: %s ===\n\n" (i + 1) (List.length runs)
              label;
            print_string (Obs.Summary.render s))
          runs);
    if strict && errors <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "events"
       ~doc:
         "Summarize a JSONL telemetry trace: compile timeline, installed code, \
          invalidations, inliner decisions, optimizer counters. Traces holding \
          several harness runs additionally get per-run sections.")
    Term.(const events $ trace_pos_arg $ strict_arg)

(* ---- explain ---- *)

let explain_cmd =
  let why_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "why" ] ~docv:"METHOD[:SITE]"
          ~doc:
            "Print the full decision provenance (every expansion and inlining \
             decision with its benefit/cost/penalty/threshold terms, per round) \
             for callsites targeting METHOD, optionally narrowed to the site \
             ordinal SITE.")
  in
  let explain file why =
    match Obs.Explain.of_file file with
    | Error e -> fail (Printf.sprintf "bad trace %s: %s" file e)
    | exception Sys_error e -> fail e
    | Ok comps -> (
        match why with
        | None -> print_string (Obs.Explain.render comps)
        | Some spec ->
            let meth, site =
              match String.rindex_opt spec ':' with
              | Some i -> (
                  let m = String.sub spec 0 i in
                  let s = String.sub spec (i + 1) (String.length spec - i - 1) in
                  match int_of_string_opt s with
                  | Some n -> (m, Some n)
                  | None -> (spec, None))
              | None -> (spec, None)
            in
            print_string (Obs.Explain.render_why comps ~meth ~site))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Reconstruct the inline trees from a recorded trace: per compiled \
          method, the callsite tree with each decision's benefit, cost, \
          penalty and threshold, and the round it was taken in.")
    Term.(const explain $ trace_pos_arg $ why_arg)

(* ---- report ---- *)

let report_cmd =
  let entry_arg =
    Arg.(
      value & opt string "bench"
      & info [ "entry" ] ~docv:"METHOD" ~doc:"0-argument method to repeat.")
  in
  let iters_arg =
    Arg.(value & opt int 40 & info [ "iters" ] ~docv:"N" ~doc:"Iterations to run.")
  in
  let top_arg =
    Arg.(
      value & opt int 20
      & info [ "top" ] ~docv:"N" ~doc:"Rows of the hot-method table to print.")
  in
  let folded_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded" ] ~docv:"FILE"
          ~doc:
            "Write flamegraph-ready folded stacks (one `root;...;leaf cycles` \
             line per calling context) to FILE.")
  in
  let report file workload config hotness entry iters top folded =
    match load_program ~file ~workload with
    | Error e -> fail e
    | Ok (prog, label) -> (
        match make_engine prog config hotness false with
        | Error e -> fail e
        | Ok e -> (
            let attrib = Runtime.Interp.enable_attribution e.vm in
            match
              Jit.Harness.run_benchmark ~iters e ~entry ~label:(label ^ "/" ^ config)
            with
            | exception Runtime.Values.Trap msg -> fail ("runtime trap: " ^ msg)
            | _run -> (
                let name m = (Ir.Program.meth prog m).m_name in
                let rows = Runtime.Attribution.rows attrib in
                let total_self =
                  List.fold_left
                    (fun acc (r : Runtime.Attribution.row) -> acc + r.r_self)
                    0 rows
                in
                let pct part =
                  if total_self = 0 then 0.0
                  else 100.0 *. float_of_int part /. float_of_int total_self
                in
                Printf.printf "# %s  entry=%s config=%s iters=%d\n" label entry
                  config iters;
                Printf.printf "# %d cycles attributed over %d methods\n\n" total_self
                  (List.length rows);
                Printf.printf "%-24s %12s %6s %12s %9s %7s %7s %7s %7s %7s\n" "method"
                  "self" "self%" "total" "invocs" "interp%" "prep%" "jit%" "deopts"
                  "evicts";
                List.iteri
                  (fun i (r : Runtime.Attribution.row) ->
                    if i < top then begin
                      let si, sp, sj = r.r_self_by_tier in
                      let share part =
                        if r.r_self = 0 then 0.0
                        else 100.0 *. float_of_int part /. float_of_int r.r_self
                      in
                      Printf.printf
                        "%-24s %12d %6.1f %12d %9d %7.1f %7.1f %7.1f %7d %7d\n"
                        (name r.r_meth) r.r_self (pct r.r_self) r.r_total
                        r.r_invocations (share si) (share sp) (share sj) r.r_deopts
                        r.r_evicts
                    end)
                  rows;
                if List.length rows > top then
                  Printf.printf "... (%d more methods)\n" (List.length rows - top);
                match folded with
                | None -> ()
                | Some path -> (
                    let stacks = Runtime.Attribution.folded attrib ~name in
                    match
                      Support.Io.write_atomic path
                        (String.concat "\n" stacks ^ if stacks = [] then "" else "\n")
                    with
                    | () -> Printf.eprintf "-- folded stacks written to %s\n" path
                    | exception Sys_error msg ->
                        fail ("cannot write --folded: " ^ msg)))))
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Run a workload with per-method cycle attribution and print the \
          hot-method table (self/total cycles, tier residency, invocation and \
          deopt counts); optionally emit flamegraph-ready folded stacks. \
          Deterministic: identical runs print identical reports.")
    Term.(
      const report $ file_arg $ workload_arg $ config_arg $ hotness_arg $ entry_arg
      $ iters_arg $ top_arg $ folded_arg)

(* ---- serve ---- *)

let serve_cmd =
  let tenants_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "tenants" ] ~docv:"SPEC"
          ~doc:
            "Comma-separated tenant workloads, each NAME or NAME*COUNT, e.g. \
             \"long-loop*3,gauss-mix\". Replicas get ids NAME#0, NAME#1, ...")
  in
  let solo_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "solo" ] ~docv:"ID"
          ~doc:
            "Serve only the tenant with this id (e.g. long-loop#1) while \
             keeping its fleet identity: seeds derive from the id, so the \
             tenant's output, steps and cycles are byte-identical to the full \
             fleet run — the isolation invariant the soak gate asserts.")
  in
  let iters_arg =
    Arg.(
      value & opt int 0
      & info [ "iters" ] ~docv:"N"
          ~doc:"Benchmark iterations per tenant (0: each workload's default).")
  in
  let queue_arg =
    Arg.(
      value & opt int 4
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:
            "Per-tenant compile-queue bound: hot methods enqueue prioritized \
             requests (hotness × queue age) serviced by one simulated \
             background compiler, and admission control sheds the \
             lowest-priority request past the bound. Negative: no queue — \
             compile inline at the hotness trigger.")
  in
  let cache_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-capacity" ] ~docv:"NODES"
          ~doc:
            "Per-tenant code-cache budget in IR nodes; installs past it evict \
             the lowest-retention resident code, which falls back to the \
             interpreted tier and may recompile under backoff (default: \
             unbounded).")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "compile-deadline" ] ~docv:"N"
          ~doc:
            "Per-compile deadline in fuel checkpoints; a missed deadline is a \
             contained bailout (exponential backoff, eventually blacklist).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the fleet report (per-tenant output digest, steps, cycles, \
             churn counters, queue-wait and time-to-peak percentiles) to FILE \
             as JSON; byte-identical across same-seed runs.")
  in
  let serve tenants_spec solo iters config hotness queue_cap cache_cap deadline
      trace metrics json chaos_seed chaos_rate stats timeline timeline_interval =
    if (not (Float.is_finite chaos_rate)) || chaos_rate < 0.0 || chaos_rate > 1.0
    then fail "--chaos-rate must be in [0, 1]";
    (* validate the configuration up front, not inside a tenant thunk *)
    (match compiler_of_config config with Error e -> fail e | Ok _ -> ());
    match Jit.Serve.parse_tenants tenants_spec with
    | Error e -> fail ("bad --tenants: " ^ e)
    | Ok pairs -> (
        let specs =
          List.map
            (fun (name, count) ->
              match Workloads.Registry.find name with
              | Some w -> (w, count)
              | None ->
                  fail
                    (Printf.sprintf "unknown workload %s (try: selvm workloads)"
                       name))
            pairs
        in
        let tenants =
          List.concat_map
            (fun ((w : Workloads.Defs.t), count) ->
              List.init count (fun k ->
                  {
                    Jit.Serve.tn_id = Printf.sprintf "%s#%d" w.name k;
                    tn_make =
                      (fun () ->
                        (* fresh program and fresh compiler per tenant:
                           stateful compilers must never span tenants *)
                        let compiler =
                          match compiler_of_config config with
                          | Ok c -> c
                          | Error e -> fail e
                        in
                        ( Workloads.Registry.compile w,
                          {
                            Jit.Engine.name = config;
                            compiler;
                            hotness_threshold = hotness;
                            compile_cost_per_node = 50;
                            verify = false;
                          } ));
                    tn_iters = (if iters > 0 then iters else w.iters);
                  }))
            specs
        in
        let tenants =
          match solo with
          | None -> tenants
          | Some id -> (
              match
                List.filter (fun t -> t.Jit.Serve.tn_id = id) tenants
              with
              | [] -> fail (Printf.sprintf "no tenant %s in --tenants spec" id)
              | ts -> ts)
        in
        let limits =
          {
            Jit.Serve.queue_capacity =
              (if queue_cap < 0 then None else Some queue_cap);
            queue_age_unit = 1024;
            cache_capacity = cache_cap;
            compile_deadline = deadline;
            chaos_rate;
            chaos_seed;
          }
        in
        let outcome =
          with_optional_trace trace (fun () ->
              with_optional_metrics metrics (fun () ->
                  with_optional_timeline timeline ~interval:timeline_interval
                    (fun tl ->
                      let slo =
                        Option.map
                          (fun _ -> Obs.Slo.monitor Obs.Slo.default_specs)
                          tl
                      in
                      match Jit.Serve.run ~limits ?timeline:tl ?slo tenants with
                      | exception Runtime.Values.Trap msg ->
                          Error ("runtime trap: " ^ msg)
                      | reports -> Ok reports)))
        in
        match outcome with
        | Error e -> fail e
        | Ok reports -> (
            Printf.printf
              "# serve tenants=%d config=%s queue=%s cache=%s deadline=%s \
               chaos=%.2f seed=%d\n"
              (List.length reports) config
              (if queue_cap < 0 then "-" else string_of_int queue_cap)
              (match cache_cap with Some c -> string_of_int c | None -> "-")
              (match deadline with Some d -> string_of_int d | None -> "-")
              chaos_rate chaos_seed;
            Printf.printf "%-20s %6s %12s %12s %12s %8s %6s %6s %9s %9s\n"
              "tenant" "iters" "checksum" "steps" "cycles" "installs" "evict"
              "shed" "qwait_p99" "ttp_p99";
            List.iter
              (fun (r : Jit.Serve.tenant_report) ->
                Printf.printf "%-20s %6d %12d %12d %12d %8d %6d %6d %9d %9d\n"
                  r.tr_id r.tr_iters r.tr_checksum r.tr_steps r.tr_cycles
                  r.tr_installs r.tr_evictions r.tr_sheds r.tr_queue_wait_p99
                  r.tr_ttp_p99)
              reports;
            if stats then begin
              let sum f = List.fold_left (fun a r -> a + f r) 0 reports in
              Printf.eprintf
                "-- fleet: %d installs, %d evictions, %d sheds, %d bailouts, %d \
                 blacklisted\n"
                (sum (fun (r : Jit.Serve.tenant_report) -> r.tr_installs))
                (sum (fun r -> r.tr_evictions))
                (sum (fun r -> r.tr_sheds))
                (sum (fun r -> r.tr_bailouts))
                (sum (fun r -> r.tr_blacklisted))
            end;
            match json with
            | None -> ()
            | Some path -> (
                match
                  Support.Io.write_atomic path
                    (Support.Json.to_string (Jit.Serve.report_json reports) ^ "\n")
                with
                | () -> Printf.eprintf "-- fleet report written to %s\n" path
                | exception Sys_error msg -> fail ("cannot write --json: " ^ msg))))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve N tenant workloads on per-tenant engines with bounded compile \
          queues, bounded code caches and optional deterministic fault \
          injection. Every tenant's output, steps and cycles are \
          byte-identical to its --solo run regardless of queue pressure, \
          evictions, sheds or injected faults.")
    Term.(
      const serve $ tenants_arg $ solo_arg $ iters_arg $ config_arg $ hotness_arg
      $ queue_arg $ cache_arg $ deadline_arg $ trace_arg $ metrics_arg $ json_arg
      $ chaos_seed_arg $ chaos_rate_arg $ stats_arg $ timeline_arg
      $ timeline_interval_arg)

(* ---- top ---- *)

let top_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TIMELINE"
          ~doc:"Timeline JSONL file written by --timeline.")
  in
  (* last 32 values of the series, each scaled against the series max *)
  let spark (xs : int list) : string =
    let n = List.length xs in
    let xs = if n > 32 then List.filteri (fun i _ -> i >= n - 32) xs else xs in
    let hi = max 1 (List.fold_left max 0 xs) in
    let glyphs = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                    "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                    "\xe2\x96\x87"; "\xe2\x96\x88" |] in
    String.concat "" (List.map (fun v -> glyphs.(max 0 v * 7 / hi)) xs)
  in
  let top file =
    match Obs.Timeline.rows_of_file file with
    | Error e -> fail e
    | exception Sys_error e -> fail e
    | Ok rows ->
        let samples, fleets =
          List.partition
            (fun (r : Obs.Timeline.row) -> r.r_kind = "timeline_sample")
            (List.filter
               (fun (r : Obs.Timeline.row) ->
                 r.r_kind = "timeline_sample" || r.r_kind = "timeline_fleet")
               rows)
        in
        if samples = [] then fail "no timeline_sample rows in file";
        let tenants =
          (* first-seen order *)
          List.rev
            (List.fold_left
               (fun acc (r : Obs.Timeline.row) ->
                 if List.mem r.r_source acc then acc else r.r_source :: acc)
               [] samples)
        in
        let get (r : Obs.Timeline.row) name =
          Option.value ~default:0 (Obs.Timeline.field r name)
        in
        let series s =
          List.filter (fun (r : Obs.Timeline.row) -> r.r_source = s) samples
        in
        Printf.printf "# fleet timeline: %d tenants, %d samples, %d fleet rows\n"
          (List.length tenants) (List.length samples) (List.length fleets);
        Printf.printf "%-20s %5s %12s %13s %3s %7s %6s %6s %6s  %s\n" "tenant"
          "rows" "cycles" "jit/pend/bl" "q" "cache" "shed" "evict" "deopt"
          "cache history";
        List.iter
          (fun s ->
            let rs = series s in
            let l = List.nth rs (List.length rs - 1) in
            Printf.printf "%-20s %5d %12d %5d/%3d/%3d %3d %7d %6d %6d %6d  %s\n"
              s (List.length rs) l.Obs.Timeline.r_cycles (get l "compiled")
              (get l "pending") (get l "blacklisted") (get l "queue_depth")
              (get l "cache_used") (get l "sheds") (get l "evictions")
              (get l "invalidations")
              (spark (List.map (fun r -> get r "cache_used") rs)))
          tenants;
        (match List.rev fleets with
        | [] -> ()
        | f :: _ ->
            Printf.printf
              "fleet @%d: queue_wait p50/p90/p99/max = %d/%d/%d/%d  ttp \
               p50/p90/p99/max = %d/%d/%d/%d\n"
              f.Obs.Timeline.r_cycles (get f "queue_wait_p50")
              (get f "queue_wait_p90") (get f "queue_wait_p99")
              (get f "queue_wait_max") (get f "ttp_p50") (get f "ttp_p90")
              (get f "ttp_p99") (get f "ttp_max"));
        let offenders label fieldname =
          let ranked =
            List.filter
              (fun (_, v) -> v > 0)
              (List.sort
                 (fun (ida, va) (idb, vb) ->
                   if va <> vb then compare vb va else compare ida idb)
                 (List.map
                    (fun s ->
                      let rs = series s in
                      (s, get (List.nth rs (List.length rs - 1)) fieldname))
                    tenants))
          in
          match ranked with
          | [] -> ()
          | ranked ->
              Printf.printf "  %-12s %s\n" (label ^ ":")
                (String.concat ", "
                   (List.filteri (fun i _ -> i < 3) ranked
                   |> List.map (fun (id, v) -> Printf.sprintf "%s (%d)" id v)))
        in
        print_string "worst offenders:\n";
        offenders "sheds" "sheds";
        offenders "evictions" "evictions";
        offenders "deopts" "invalidations"
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Fleet dashboard from a --timeline file: per-tenant tier mix, \
          queue/cache gauges, cache-occupancy sparklines, fleet latency \
          percentiles and worst offenders. Deterministic output.")
    Term.(const top $ file_arg)

(* ---- slo ---- *)

let slo_cmd =
  let check_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "check" ] ~docv:"TIMELINE"
          ~doc:
            "Check this timeline file and exit 1 if any monitor fired — the \
             CI gate form.")
  in
  let file_pos_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"TIMELINE"
          ~doc:"Timeline file to report on (without gating the exit status).")
  in
  let only_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "only" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated monitor subset: deopt-storm, queue-saturation, \
             cache-thrash (default: all three). A soak that deliberately \
             starves the code cache gates with --only \
             deopt-storm,queue-saturation.")
  in
  let slo check file only =
    let path, gate =
      match (check, file) with
      | Some p, None -> (p, true)
      | None, Some p -> (p, false)
      | Some _, Some _ ->
          fail "pass the timeline either positionally or via --check, not both"
      | None, None -> fail "pass a timeline file (selvm slo --check FILE)"
    in
    let specs =
      match only with
      | None -> Obs.Slo.default_specs
      | Some csv ->
          let names =
            List.filter
              (fun s -> s <> "")
              (List.map String.trim (String.split_on_char ',' csv))
          in
          if names = [] then fail "--only needs at least one monitor name";
          List.map
            (fun name ->
              match Obs.Slo.find_spec name with
              | Some s -> s
              | None ->
                  fail
                    (Printf.sprintf
                       "unknown monitor %s (have: deopt-storm, \
                        queue-saturation, cache-thrash)"
                       name))
            names
    in
    match Obs.Slo.check_file ~specs path with
    | Error e -> fail e
    | exception Sys_error e -> fail e
    | Ok [] ->
        Printf.printf "ok: no SLO violations (%d monitor%s)\n"
          (List.length specs)
          (if List.length specs = 1 then "" else "s")
    | Ok vs ->
        print_string (Obs.Slo.render vs);
        Printf.printf "%d violation%s\n" (List.length vs)
          (if List.length vs = 1 then "" else "s");
        if gate then exit 1
  in
  Cmd.v
    (Cmd.info "slo"
       ~doc:
         "Replay the SLO monitors (deopt-storm, queue-saturation, \
          cache-thrash) over a --timeline file; with --check, exit nonzero \
          on any violation.")
    Term.(const slo $ check_arg $ file_pos_arg $ only_arg)

(* ---- diff ---- *)

let diff_cmd =
  let pos_arg n docv =
    Arg.(
      required
      & pos n (some string) None
      & info [] ~docv
          ~doc:
            "Run artifact to compare: a directory holding metrics.json / \
             timeline.jsonl / trace.jsonl, or a single .json (metrics \
             export) or .jsonl (timeline or trace) file.")
  in
  let read_lines path =
    let text = read_file path in
    let lines = String.split_on_char '\n' text in
    match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
  in
  let diff a b =
    let drift = ref 0 in
    let emit n body =
      drift := !drift + n;
      if n > 0 then print_string body
    in
    let diff_metrics_files fa fb =
      match
        (Support.Json.of_string (read_file fa),
         Support.Json.of_string (read_file fb))
      with
      | Error e, _ -> fail (fa ^ ": " ^ e)
      | _, Error e -> fail (fb ^ ": " ^ e)
      | Ok ja, Ok jb ->
          let ds = Obs.Diff.diff_metrics ja jb in
          emit (List.length ds) (Obs.Diff.render_deltas "metrics" ds)
    in
    let diff_timeline_files fa fb =
      let ds = Obs.Diff.diff_lines (read_lines fa) (read_lines fb) in
      emit (List.length ds) (Obs.Diff.render_deltas "timeline" ds)
    in
    let diff_trace_files fa fb =
      match (Obs.Explain.of_file fa, Obs.Explain.of_file fb) with
      | Error e, _ -> fail (fa ^ ": " ^ e)
      | _, Error e -> fail (fb ^ ": " ^ e)
      | Ok ca, Ok cb ->
          let ds = Obs.Diff.diff_decisions ca cb in
          emit (List.length ds) (Obs.Diff.render_drift ds)
    in
    (try
       if Sys.is_directory a && Sys.is_directory b then begin
         let matched = ref 0 in
         let each name f =
           let fa = Filename.concat a name and fb = Filename.concat b name in
           match (Sys.file_exists fa, Sys.file_exists fb) with
           | true, true ->
               incr matched;
               f fa fb
           | true, false | false, true ->
               Printf.eprintf "-- %s present on one side only, skipped\n" name
           | false, false -> ()
         in
         each "metrics.json" diff_metrics_files;
         each "timeline.jsonl" diff_timeline_files;
         each "trace.jsonl" diff_trace_files;
         if !matched = 0 then
           fail
             "no common artifacts (expected metrics.json, timeline.jsonl or \
              trace.jsonl in both directories)"
       end
       else if Sys.is_directory a || Sys.is_directory b then
         fail "compare two run directories or two files, not a mix"
       else if Filename.check_suffix a ".json" then diff_metrics_files a b
       else begin
         (* JSONL stream: byte-level line diff, plus decision drift when
            the stream carries inline-decision trace events *)
         diff_timeline_files a b;
         match (Obs.Explain.of_file a, Obs.Explain.of_file b) with
         | Ok [], Ok [] -> ()
         | _ -> diff_trace_files a b
       end
     with Sys_error e -> fail e);
    if !drift = 0 then print_string "no drift\n" else exit 1
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two runs' observability artifacts — metrics exports, \
          timelines, and the inline-decision trees rebuilt from traces — \
          and report value deltas and per-callsite decision drift. Exits 1 \
          on any drift.")
    Term.(const diff $ pos_arg 0 "RUN_A" $ pos_arg 1 "RUN_B")

(* ---- workloads ---- *)

let workloads_cmd =
  let list () =
    List.iter
      (fun (w : Workloads.Defs.t) ->
        Printf.printf "%-16s %-8s %s\n" w.name
          (Workloads.Defs.flavor_to_string w.flavor)
          w.description)
      Workloads.Registry.all
  in
  Cmd.v (Cmd.info "workloads" ~doc:"List the built-in benchmark workloads.")
    Term.(const list $ const ())

(* ---- synth ---- *)

let synth_cmd =
  let int_opt name v doc = Arg.(value & opt int v & info [ name ] ~docv:"N" ~doc) in
  let depth = int_opt "depth" 3 "Call-chain depth above the dispatch layer." in
  let fanout = int_opt "fanout" 2 "Callees per layer function." in
  let poly = int_opt "poly" 3 "Concrete Op implementations." in
  let seed = int_opt "seed" 1 "Generator seed." in
  let leaf = int_opt "leaf-work" 8 "Loop trips per Op implementation." in
  let hot =
    Arg.(
      value & opt float 0.5
      & info [ "hot" ] ~docv:"F" ~doc:"Fraction of callsites inside loops.")
  in
  let run_it =
    Arg.(
      value & flag
      & info [ "bench" ]
          ~doc:"Benchmark the generated program under the chosen config instead of \
                printing its source.")
  in
  let synth depth fanout poly_degree seed leaf_work hot_fraction bench config =
    let cfg =
      { Workloads.Synth.seed; depth; fanout; poly_degree; leaf_work; hot_fraction }
    in
    if not bench then print_string (Workloads.Synth.source_of cfg)
    else begin
      let w = Workloads.Synth.generate cfg in
      let prog = Workloads.Registry.compile w in
      match make_engine prog config 8 false with
      | Error e -> fail e
      | Ok engine ->
          let run =
            Jit.Harness.run_benchmark ~iters:w.iters engine ~entry:"bench"
              ~label:(w.name ^ "/" ^ config)
          in
          Printf.printf "%s under %s: peak %.1f cycles, %d IR nodes installed\n" w.name
            config run.peak_cycles
            (Jit.Engine.installed_code_size engine)
    end
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:
         "Generate a synthetic call-graph benchmark (print its Sel source, or \
          --bench it).")
    Term.(const synth $ depth $ fanout $ poly $ seed $ leaf $ hot $ run_it $ config_arg)

let main_cmd =
  Cmd.group
    (Cmd.info "selvm" ~version:"1.0.0"
       ~doc:
         "A JIT-compiled VM for the Sel language with the CGO'19 \
          optimization-driven incremental inline-substitution algorithm.")
    [
      run_cmd; bench_cmd; compile_cmd; parse_ir_cmd; events_cmd; explain_cmd;
      report_cmd; serve_cmd; top_cmd; slo_cmd; diff_cmd; workloads_cmd;
      synth_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
