(* The inlining phase (paper, Listing 5 and Section IV "Inlining").

   A queue starts with the root's children. The cluster with the best
   benefit-to-cost ratio is repeatedly selected; if it passes the adaptive
   inlining threshold (Eq. 12) it is spliced into the root — together with
   every descendant in the same cluster — and the cluster's front (the
   descendants left out) joins the queue as new root children.

   Adaptive threshold (Eq. 12, reconstruction documented in DESIGN.md):

     ⟨tuple(n)⟩ ≥ t1 · 2^((|ir(root)| + cost(n) − t2) / tscale)

   Under the Fixed ablation policy, inlining instead proceeds best-first
   while the root stays below T_i. *)

open Calltree

let log_src = Logs.Src.create "inliner.inline" ~doc:"inlining phase decisions"

module Log = (val Logs.src_log log_src)

(* The numeric gate [can_inline] compares against, for telemetry: the
   adaptive ratio bound (Eq. 12) or the fixed root-size budget T_i
   (compared against the root size, not the ratio). *)
let threshold_value (t : t) (n : node) : float =
  match t.params.threshold_policy with
  | Params.Fixed { ti; _ } -> float_of_int ti
  | Params.Adaptive ->
      let p = t.params in
      let root_size = float_of_int (Ir.Fn.size t.root_fn) in
      let _, cost = n.tuple in
      p.t1 *. (2.0 ** ((root_size +. cost -. p.t2) /. p.tscale))

let can_inline (t : t) (n : node) : bool =
  Ir.Fn.size t.root_fn < t.params.root_size_cap
  &&
  match t.params.threshold_policy with
  | Params.Fixed _ -> float_of_int (Ir.Fn.size t.root_fn) < threshold_value t n
  | Params.Adaptive -> Analysis.ratio n.tuple >= threshold_value t n

let m_inlines = Obs.Metrics.counter "inliner.inlines"
let m_inline_depth = Obs.Metrics.histogram "inliner.inline_depth"

(* One structured telemetry record per inlining decision. Cluster members
   spliced along with their parent carry [cluster = true]: they were
   selected by the cluster analysis, not gated individually, so their
   [threshold] is informational. *)
let trace_decision (t : t) (n : node) ~(verdict : string) ~(cluster : bool) : unit =
  Obs.Trace.emit "inline_decision" (fun () ->
      Support.Json.
        [
          ("root", Int t.root_meth);
          ("nid", Int n.nid);
          ("parent", Int n.pnid);
          ("depth", Int (node_depth n));
          ("target", String n.tname);
          ("site_m", Int n.site.sm);
          ("site_idx", Int n.site.sidx);
          ("callsite", Int n.call_vid);
          ("benefit", Float (fst n.tuple));
          ("cost", Float (snd n.tuple));
          ("priority", Float (Analysis.ratio n.tuple));
          ("threshold", Float (threshold_value t n));
          ("root_size", Int (Ir.Fn.size t.root_fn));
          ("cluster", Bool cluster);
          ("verdict", String verdict);
        ])

(* Splices node [n] (anchored in the root) into the root, recursively
   splicing the members of its cluster. Returns the number of callsites
   inlined. *)
let rec inline_node (t : t) (n : node) : int =
  assert (n.owner == t.root_fn);
  let record () =
    Obs.Metrics.incr m_inlines;
    Obs.Metrics.observe m_inline_depth (node_depth n)
  in
  match n.kind with
  | Expanded { body; _ } ->
      let remap = Ir.Splice.inline_call ~caller:t.root_fn ~call_vid:n.call_vid ~callee:body in
      List.iter
        (fun (c : node) ->
          (match Hashtbl.find_opt remap.vmap c.call_vid with
          | Some v' -> c.call_vid <- v'
          | None ->
              (* the callsite was unreachable in the specialized body *)
              c.kind <- Deleted);
          c.owner <- t.root_fn)
        n.children;
      record ();
      1 + inline_cluster_children t n
  | Poly _ ->
      if Typeswitch.materialize t n then begin
        record ();
        1 + inline_cluster_children t n
      end
      else 0
  | Cutoff (Known m) -> (
      match prepared_body t m with
      | None -> 0
      | Some body ->
          let copy = Ir.Fn.copy body in
          ignore (Ir.Splice.inline_call ~caller:t.root_fn ~call_vid:n.call_vid ~callee:copy);
          (* a cutoff has no children yet; new callsites surface via the
             orphan scan in the next round *)
          record ();
          1)
  | Cutoff (Unknown _) | Generic _ | Deleted -> 0

and inline_cluster_children (t : t) (n : node) : int =
  List.fold_left
    (fun acc (c : node) ->
      if c.in_parent_cluster && Analysis.inlinable c && c.kind <> Deleted then begin
        trace_decision t c ~verdict:"inline" ~cluster:true;
        acc + inline_node t c
      end
      else acc)
    0 n.children

(* One inlining phase. Returns the number of callsites inlined into the
   root. *)
let run (t : t) : int =
  let queue = ref (List.filter Analysis.inlinable t.children) in
  let inlined = ref 0 in
  let continue_ = ref true in
  while !continue_ && !queue <> [] do
    let best =
      List.fold_left
        (fun acc m ->
          match acc with
          | None -> Some m
          | Some b -> if Analysis.ratio m.tuple > Analysis.ratio b.tuple then Some m else acc)
        None !queue
    in
    match best with
    | None -> continue_ := false
    | Some n ->
        queue := List.filter (fun m -> m.nid <> n.nid) !queue;
        Log.debug (fun m_ ->
            m_ "consider v%d tuple=%.2f|%.0f ratio=%.4f root=%d -> %s" n.call_vid
              (fst n.tuple) (snd n.tuple) (Analysis.ratio n.tuple)
              (Ir.Fn.size t.root_fn)
              (if can_inline t n then "inline" else "skip"));
        trace_decision t n
          ~verdict:(if can_inline t n then "inline" else "skip")
          ~cluster:false;
        if Ir.Fn.size t.root_fn >= t.params.root_size_cap then continue_ := false
        else if can_inline t n then begin
          let k = inline_node t n in
          inlined := !inlined + k;
          (* the cluster's front becomes direct children of the root *)
          let front = n.front in
          t.children <-
            List.filter (fun (c : node) -> c.nid <> n.nid) t.children @ front;
          queue := !queue @ List.filter Analysis.inlinable front
        end
  done;
  !inlined
