(* The partial call tree (paper, Section III-A) and deep inlining trials
   (Section IV).

   Each node represents one callsite. Node kinds follow the paper's tags:
   C (cutoff, not yet expanded), E (expanded, with an attached *specialized
   copy* of the callee IR), P (polymorphic, speculated from the receiver
   profile, one child per target), G (generic — cannot be inlined), and
   D (deleted by optimization).

   A node is *anchored* at a call instruction ([call_vid]) inside an owner
   IR: the working copy of the root method for the root's children, or the
   parent's specialized body copy otherwise. Inlining re-anchors surviving
   descendants into the root (see [Inline_phase]).

   Deep inlining trials: when a cutoff is expanded, the callsite's argument
   constants and refined argument types are propagated into the fresh
   callee copy, which is then canonicalized; the count of triggered simple
   optimizations is the paper's N_s, the count of refined arguments N_a,
   and both feed the local benefit B_L (Eq. 4). *)

open Ir.Types

type target = Known of meth_id | Unknown of string (* unresolved selector *)

type kind =
  | Cutoff of target
  | Expanded of { body : fn; n_opts : int }
  | Poly of string                     (* selector; children carry targets *)
  | Generic of string                  (* reason it cannot be inlined *)
  | Deleted

type node = {
  nid : int;
  pnid : int;                          (* parent node id; -1 for root children *)
  mutable tname : string;              (* target label: method name or selector *)
  mutable kind : kind;
  mutable call_vid : vid;
  mutable owner : fn;                  (* the IR that contains [call_vid] *)
  site : site;
  freq : float;                        (* f(n), relative to the root *)
  prob : float;                        (* dispatch probability under a Poly parent *)
  recv_cls : class_id option;          (* speculated receiver class (Poly children) *)
  ancestors : meth_id list;            (* targets on the path to the root *)
  mutable n_args_refined : int;        (* N_a *)
  mutable children : node list;
  mutable spec_sig : (const option * ty option) array;  (* last specialization *)
  (* analysis results (filled by [Analysis]) *)
  mutable tuple : float * float;       (* benefit | cost *)
  mutable in_parent_cluster : bool;
  mutable front : node list;
  (* expansion bookkeeping *)
  mutable declined : bool;             (* failed the expansion threshold this phase *)
}

type t = {
  prog : program;
  profiles : Runtime.Profile.t;
  params : Params.t;
  root_meth : meth_id;
  root_fn : fn;                        (* working copy being compiled *)
  mutable children : node list;
  mutable next_id : int;
  mutable next_syn_site : int;         (* synthetic (negative) site ids *)
  trial_cache : Trial_cache.t option;  (* cross-compilation trial memoization *)
}

let fresh_id t =
  let i = t.next_id in
  t.next_id <- i + 1;
  i

let fresh_syn_site t : site =
  t.next_syn_site <- t.next_syn_site - 1;
  { sm = t.root_meth; sidx = t.next_syn_site }

let prepared_body (t : t) (m : meth_id) : fn option = (Ir.Program.meth t.prog m).body

(* ---------- sizes and metrics ---------- *)

let default_unknown_size = 25

(* |ir(n)|: the size of what inlining this node would add. *)
let node_size (t : t) (n : node) : int =
  match n.kind with
  | Expanded { body; _ } -> Ir.Fn.size body
  | Cutoff (Known m) -> (
      match prepared_body t m with Some fn -> Ir.Fn.size fn | None -> default_unknown_size)
  | Cutoff (Unknown sel) -> (
      (* estimate from the receiver profile when available *)
      match Runtime.Profile.receiver_profile t.profiles n.site with
      | [] -> default_unknown_size
      | profile ->
          let sizes =
            List.filter_map
              (fun (c, p) ->
                match Ir.Program.resolve t.prog c sel with
                | Some m -> (
                    match prepared_body t m with
                    | Some fn -> Some (float_of_int (Ir.Fn.size fn) *. p)
                    | None -> None)
                | None -> None)
              profile
          in
          if sizes = [] then default_unknown_size
          else int_of_float (List.fold_left ( +. ) 0.0 sizes))
  | Poly _ -> 2 * max 1 (List.length n.children)  (* the typeswitch cascade *)
  | Generic _ | Deleted -> 0

let rec s_ir (t : t) (n : node) : int =
  match n.kind with
  | Deleted | Generic _ -> 0
  | _ -> node_size t n + List.fold_left (fun acc c -> acc + s_ir t c) 0 n.children

let rec s_b (t : t) (n : node) : int =
  match n.kind with
  | Deleted | Generic _ -> 0
  | Cutoff _ -> node_size t n
  | _ -> List.fold_left (fun acc c -> acc + s_b t c) 0 n.children

let rec n_c (n : node) : int =
  match n.kind with
  | Deleted | Generic _ -> 0
  | Cutoff _ -> 1
  | _ -> List.fold_left (fun acc c -> acc + n_c c) 0 n.children

(* Tree-level aggregates treat the root as an expanded node over the
   working root IR. *)
let tree_s_ir (t : t) : int =
  Ir.Fn.size t.root_fn + List.fold_left (fun acc c -> acc + s_ir t c) 0 t.children

let tree_n_c (t : t) : int = List.fold_left (fun acc c -> acc + n_c c) 0 t.children

(* B_L(n), Eq. 4 / Eq. 13. *)
let rec local_benefit (t : t) (n : node) : float =
  match n.kind with
  | Deleted | Generic _ -> 0.0
  | Cutoff _ -> n.freq *. (1.0 +. float_of_int n.n_args_refined)
  | Expanded { n_opts; _ } -> n.freq *. (1.0 +. float_of_int n_opts)
  | Poly _ ->
      List.fold_left (fun acc c -> acc +. (c.prob *. local_benefit t c)) 0.0 n.children

(* Recursion depth d(n) for Eq. 14: occurrences of the cutoff's own target
   among its ancestors. *)
let rec_depth (n : node) : int =
  match n.kind with
  | Cutoff (Known m) -> List.length (List.filter (( = ) m) n.ancestors)
  | _ -> 0

(* ---------- frequencies ---------- *)

(* Relative in-method frequency of each block of [fn], profile-driven when
   the method has been interpreted, static otherwise. *)
let block_freqs (t : t) (m : meth_id) (fn : fn) : (bid, float) Hashtbl.t =
  Ir.Freq.profiled fn ~counts:(fun b -> float_of_int (Runtime.Profile.block_count t.profiles m b))

let freq_of_call (freqs : (bid, float) Hashtbl.t) (fn : fn) (v : vid) : float =
  Ir.Freq.of_instr fn freqs v

(* ---------- deep inlining trials ---------- *)

(* Converts an inferred value type to a parameter refinement. *)
let vt_to_ty (vt : Opt.Tyinfer.vt) : ty option =
  match vt with
  | Opt.Tyinfer.Vt_obj { cls; _ } -> Some (Tobj cls)
  | Opt.Tyinfer.Vt_arr e -> Some (Tarray e)
  | Opt.Tyinfer.Vt_prim p -> Some p
  | _ -> None

let strictly_more_precise = Sigs.strictly_more_precise

(* What would this callsite specialize its callee with? Returns, per
   parameter: an optional constant and an optional refined type. *)
let spec_signature (t : t) ~(owner : fn) ~(call_vid : vid) ~(recv_cls : class_id option)
    ~(declared : ty array) : (const option * ty option) array =
  let env = Opt.Tyinfer.infer t.prog owner in
  let args =
    match Ir.Fn.kind owner call_vid with
    | Call { args; _ } -> Array.of_list args
    | _ -> invalid_arg "Calltree.spec_signature: not a call"
  in
  Array.mapi
    (fun i declared_ty ->
      if i >= Array.length args then (None, None)
      else
        let arg = args.(i) in
        let cst = match Ir.Fn.kind owner arg with Const c -> Some c | _ -> None in
        let refined =
          if i = 0 && recv_cls <> None then
            (* polymorphic speculation pins the receiver class *)
            Option.map (fun c -> Tobj c) recv_cls
          else
            match vt_to_ty (Opt.Tyinfer.value_type env arg) with
            | Some ty when strictly_more_precise t.prog ~refined:ty ~declared:declared_ty ->
                Some ty
            | _ -> None
        in
        (cst, refined))
    declared

let digest_of_signature = Sigs.digest

(* see {!Sigs.improves} *)
let signature_improves (prog : program) ~old_sig ~new_sig : bool =
  Sigs.improves prog ~old_sig ~new_sig

(* Copies the callee body and applies the specialization: constants replace
   Param instructions, refined types land in [spec_tys], and the copy is
   canonicalized. Returns (copy, N_s, N_a). *)
let specialize_uncached (t : t) ~(enabled : bool) ~(callee_body : fn)
    ~(sg : (const option * ty option) array) : fn * int * int =
  let copy = Ir.Fn.copy callee_body in
  if not enabled then begin
    let stats = Opt.Driver.simplify t.prog copy in
    (copy, Opt.Driver.simple_opt_count stats, 0)
  end
  else begin
    let n_a = ref 0 in
    Array.iteri
      (fun i (cst, refined) ->
        (match refined with
        | Some ty ->
            copy.spec_tys.(i) <- ty;
            incr n_a
        | None -> ());
        match cst with
        | Some c ->
            let had_param = ref false in
            Ir.Fn.iter_instrs
              (fun instr ->
                match instr.kind with
                | Param k when k = i ->
                    instr.kind <- Const c;
                    had_param := true
                | _ -> ())
              copy;
            if !had_param && refined = None then incr n_a
        | None -> ())
      sg;
    let stats = Opt.Driver.simplify t.prog copy in
    (copy, Opt.Driver.simple_opt_count stats, !n_a)
  end

(* Cached entry point: (callee, signature, flag) keys an immutable template
   in the per-compiler trial cache when one is installed. [callee_m] is the
   method id used for the key. *)
let specialize ?(callee_m : meth_id option) (t : t) ~(enabled : bool)
    ~(callee_body : fn) ~(sg : (const option * ty option) array) : fn * int * int =
  match (t.trial_cache, callee_m) with
  | Some cache, Some m -> (
      match Trial_cache.find cache m ~enabled ~sg with
      | Some result -> result
      | None ->
          let body, n_opts, n_a = specialize_uncached t ~enabled ~callee_body ~sg in
          Trial_cache.store cache m ~enabled ~sg ~body ~n_opts ~n_a;
          (body, n_opts, n_a))
  | _ -> specialize_uncached t ~enabled ~callee_body ~sg

(* ---------- node creation ---------- *)

let meth_name (t : t) (m : meth_id) : string = (Ir.Program.meth t.prog m).m_name

(* Display label of a target: the method name, or the selector prefixed
   with [?] while the receiver is unresolved. *)
let target_label (t : t) : target -> string = function
  | Known m -> meth_name t m
  | Unknown sel -> "?" ^ sel

(* Call-path depth of a node: 1 for direct children of the root. *)
let node_depth (n : node) : int = List.length n.ancestors

let make_node (t : t) ~pnid ~tname ~kind ~call_vid ~owner ~site ~freq ~prob ~recv_cls
    ~ancestors : node =
  {
    nid = fresh_id t;
    pnid;
    tname;
    kind;
    call_vid;
    owner;
    site;
    freq;
    prob;
    recv_cls;
    ancestors;
    n_args_refined = 0;
    children = [];
    spec_sig = [||];
    tuple = (0.0, 1.0);
    in_parent_cluster = false;
    front = [];
    declined = false;
  }

(* Creates cutoff children for every call in [body] (the specialized copy
   attached to an expanded node, or the root working IR). *)
let scan_children (t : t) ~(pnid : int) ~(owner : fn) ~(owner_meth : meth_id)
    ~(parent_freq : float) ~(ancestors : meth_id list) : node list =
  let freqs = block_freqs t owner_meth owner in
  List.map
    (fun (call : instr) ->
      match call.kind with
      | Call { callee; site; _ } ->
          let target =
            match callee with Direct m -> Known m | Virtual sel -> Unknown sel
          in
          let f = parent_freq *. freq_of_call freqs owner call.id in
          let n =
            make_node t ~pnid ~tname:(target_label t target) ~kind:(Cutoff target)
              ~call_vid:call.id ~owner ~site ~freq:f ~prob:1.0 ~recv_cls:None ~ancestors
          in
          (* a cutoff with const/refined args already has N_a > 0 *)
          (match target with
          | Known m ->
              let declared = (Ir.Program.meth t.prog m).m_param_tys in
              let sg =
                spec_signature t ~owner ~call_vid:call.id ~recv_cls:None ~declared
              in
              n.n_args_refined <-
                Array.fold_left
                  (fun acc (cst, ty) -> if cst <> None || ty <> None then acc + 1 else acc)
                  0 sg
          | Unknown _ -> ());
          n
      | _ -> assert false)
    (Ir.Fn.calls owner)

let create ?trial_cache (prog : program) (profiles : Runtime.Profile.t)
    (params : Params.t) (root_meth : meth_id) : t =
  Option.iter (fun c -> Trial_cache.bind c prog) trial_cache;
  let body =
    match (Ir.Program.meth prog root_meth).body with
    | Some fn -> fn
    | None -> invalid_arg "Calltree.create: compiling an abstract method"
  in
  let t =
    {
      prog;
      profiles;
      params;
      root_meth;
      root_fn = Ir.Fn.copy body;
      children = [];
      next_id = 0;
      next_syn_site = -1;
      trial_cache;
    }
  in
  (* the root method itself is the first link of every call path, so a
     direct self-recursive callsite already has recursion depth 1 *)
  t.children <-
    scan_children t ~pnid:(-1) ~owner:t.root_fn ~owner_meth:root_meth ~parent_freq:1.0
      ~ancestors:[ root_meth ];
  t

(* ---------- expansion of one cutoff ---------- *)

(* The paper resolves polymorphic callsites with the VM's receiver profile:
   up to [poly_max_targets] receivers, each at least [poly_min_prob]
   probable; receivers resolving to the same method are merged (Detlefs &
   Agesen). *)
let poly_targets (t : t) (n : node) (sel : string) : (class_id * meth_id * float) list =
  let profile = Runtime.Profile.receiver_profile t.profiles n.site in
  let qualified =
    List.filter (fun (_, p) -> p >= t.params.poly_min_prob) profile
    |> List.filter_map (fun (c, p) ->
           match Ir.Program.resolve t.prog c sel with
           | Some m when (Ir.Program.meth t.prog m).body <> None -> Some (c, m, p)
           | _ -> None)
  in
  (* merge classes dispatching to the same method, keep the most probable
     class as the test representative *)
  let by_meth = Hashtbl.create 4 in
  List.iter
    (fun (c, m, p) ->
      match Hashtbl.find_opt by_meth m with
      | Some (c0, p0) -> Hashtbl.replace by_meth m (c0, p0 +. p) |> fun () -> ignore c
      | None -> Hashtbl.replace by_meth m (c, p))
    qualified;
  Hashtbl.fold (fun m (c, p) acc -> (c, m, p) :: acc) by_meth []
  |> List.sort (fun (_, _, p1) (_, _, p2) -> compare p2 p1)
  |> List.filteri (fun i _ -> i < t.params.poly_max_targets)

(* Expands a cutoff in place: attaches a specialized body (Expanded), turns
   it polymorphic (Poly) or marks it Generic. Returns true if the tree
   gained an expanded or poly node. *)
let expand_cutoff (t : t) (n : node) : bool =
  match n.kind with
  | Cutoff (Known m) ->
      let depth = List.length (List.filter (( = ) m) n.ancestors) in
      if depth > t.params.rec_hard_limit then begin
        n.kind <- Generic "recursion depth limit";
        false
      end
      else (
        match prepared_body t m with
        | None ->
            n.kind <- Generic "abstract target";
            false
        | Some callee_body ->
            let declared = (Ir.Program.meth t.prog m).m_param_tys in
            let sg =
              spec_signature t ~owner:n.owner ~call_vid:n.call_vid ~recv_cls:n.recv_cls
                ~declared
            in
            let enabled =
              (* shallow-trials ablation: specialize root-level callsites
                 only (the root method is every path's first ancestor) *)
              t.params.deep_trials || List.length n.ancestors <= 1
            in
            let body, n_opts, n_a = specialize ~callee_m:m t ~enabled ~callee_body ~sg in
            n.kind <- Expanded { body; n_opts };
            n.n_args_refined <- n_a;
            n.spec_sig <- sg;
            n.children <-
              scan_children t ~pnid:n.nid ~owner:body ~owner_meth:m ~parent_freq:n.freq
                ~ancestors:(m :: n.ancestors);
            true)
  | Cutoff (Unknown sel) -> (
      match poly_targets t n sel with
      | [] ->
          n.kind <- Generic "unknown receiver";
          false
      | targets ->
          n.kind <- Poly sel;
          n.children <-
            List.map
              (fun (c, m, p) ->
                make_node t ~pnid:n.nid ~tname:(meth_name t m) ~kind:(Cutoff (Known m))
                  ~call_vid:n.call_vid ~owner:n.owner ~site:n.site ~freq:(n.freq *. p)
                  ~prob:p ~recv_cls:(Some c) ~ancestors:n.ancestors)
              targets;
          true)
  | _ -> invalid_arg "Calltree.expand_cutoff: not a cutoff"

(* ---------- per-round refresh ---------- *)

(* Re-synchronizes the tree with its owner IRs after optimization:
   - callsites deleted by branch pruning become D nodes;
   - virtual callsites devirtualized in the owner IR update their target;
   - expanded nodes whose callsite arguments got *better* since their last
     specialization are re-specialized (children rebuilt);
   - new callsites in the root IR (e.g. duplicated by loop peeling) become
     fresh cutoff children of the root. *)
let rec refresh_node (t : t) (n : node) : unit =
  if not (Ir.Fn.instr_live n.owner n.call_vid) then begin
    n.kind <- Deleted;
    n.children <- []
  end
  else begin
    (match (n.kind, Ir.Fn.kind n.owner n.call_vid) with
    | Cutoff (Unknown _), Call { callee = Direct m; _ } ->
        n.kind <- Cutoff (Known m);
        n.tname <- meth_name t m
    | Poly _, Call { callee = Direct m; _ } ->
        (* the owner IR devirtualized the site out from under the
           speculation; restart the node as a plain direct cutoff *)
        n.kind <- Cutoff (Known m);
        n.tname <- meth_name t m;
        n.children <- []
    | Expanded _, Call { callee = Direct m; _ } when t.params.deep_trials -> (
        (* re-specialize when the signature improved *)
        match prepared_body t m with
        | Some callee_body ->
            let declared = (Ir.Program.meth t.prog m).m_param_tys in
            let sg =
              spec_signature t ~owner:n.owner ~call_vid:n.call_vid ~recv_cls:n.recv_cls
                ~declared
            in
            if signature_improves t.prog ~old_sig:n.spec_sig ~new_sig:sg then begin
              let body, n_opts, n_a = specialize ~callee_m:m t ~enabled:true ~callee_body ~sg in
              n.kind <- Expanded { body; n_opts };
              n.n_args_refined <- n_a;
              n.spec_sig <- sg;
              n.children <-
                scan_children t ~pnid:n.nid ~owner:body ~owner_meth:m ~parent_freq:n.freq
                  ~ancestors:(m :: n.ancestors)
            end
        | None -> ())
    | _ -> ());
    List.iter (refresh_node t) n.children
  end

(* All nodes anchored in the root IR (root children plus poly children that
   share their parent's anchor). *)
let anchored_in_root (t : t) : (vid, unit) Hashtbl.t =
  let set = Hashtbl.create 16 in
  let rec go (n : node) =
    if n.owner == t.root_fn then Hashtbl.replace set n.call_vid ();
    List.iter go n.children
  in
  List.iter go t.children;
  set

let scan_orphans (t : t) : unit =
  let anchored = anchored_in_root t in
  let static_freqs = lazy (Ir.Freq.static t.root_fn) in
  let orphans =
    List.filter (fun (c : instr) -> not (Hashtbl.mem anchored c.id)) (Ir.Fn.calls t.root_fn)
  in
  List.iter
    (fun (call : instr) ->
      match call.kind with
      | Call { callee; site; _ } ->
          let target =
            match callee with Direct m -> Known m | Virtual sel -> Unknown sel
          in
          let f = freq_of_call (Lazy.force static_freqs) t.root_fn call.id in
          t.children <-
            make_node t ~pnid:(-1) ~tname:(target_label t target) ~kind:(Cutoff target)
              ~call_vid:call.id ~owner:t.root_fn ~site ~freq:f ~prob:1.0 ~recv_cls:None
              ~ancestors:[ t.root_meth ]
            :: t.children
      | _ -> assert false)
    orphans

let refresh (t : t) : unit =
  List.iter (refresh_node t) t.children;
  scan_orphans t

(* ---------- debugging ---------- *)

let rec pp_node (t : t) ppf (n : node) =
  let tag =
    match n.kind with
    | Cutoff _ -> "C"
    | Expanded _ -> "E"
    | Poly _ -> "P"
    | Generic _ -> "G"
    | Deleted -> "D"
  in
  Fmt.pf ppf "@[<v 2>[%s] v%d f=%.3f size=%d B=%.3f%a@]" tag n.call_vid n.freq
    (node_size t n) (local_benefit t n)
    (fun ppf children ->
      List.iter (fun c -> Fmt.pf ppf "@,%a" (pp_node t) c) children)
    n.children

let pp ppf (t : t) =
  Fmt.pf ppf "@[<v 2>root %s size=%d@,%a@]" t.root_fn.fname (Ir.Fn.size t.root_fn)
    (fun ppf cs -> List.iter (fun c -> Fmt.pf ppf "%a@," (pp_node t) c) cs)
    t.children
