(* The expansion phase (paper, Section III-B and Section IV "Expansion").

   Repeatedly descends from the root, at each expanded node choosing the
   child with the highest priority P(n), until reaching a cutoff node,
   which is then expanded if it passes the expansion threshold.

   Priorities:
     P_I(n) = B_L(n)/|ir(n)| − ψ_r(n)          for cutoffs       (Eq. 5, 14)
     P_I(n) = max over children of P_I          for expanded/poly (Eq. 5)
     P(n)   = P_I(n) − ψ(n)                                      (Eq. 6)
     ψ(n)   = p1·S_ir(n) + p2·S_b(n) − b1·max(0, b2 − N_c(n)²)   (Eq. 7)

   Expansion threshold (adaptive, Eq. 8):
     B_L(n)/|ir(n)| ≥ e^((S_ir(root) − r1)/r2)
   or, under the Fixed ablation policy, expansion continues while the total
   call-tree size stays under T_e. *)

open Calltree

let neg_inf = neg_infinity

(* ψ_r(n), Eq. 14: pressure against monopolizing exploration with
   recursion. d(n)=1 (first recursive occurrence) is free. *)
let psi_r (n : node) : float =
  let d = rec_depth n in
  max 1.0 n.freq *. max 0.0 ((2.0 ** float_of_int d) -. 2.0)

(* ψ(n), Eq. 7. *)
let psi (t : t) (n : node) : float =
  let p = t.params in
  let ncn = float_of_int (n_c n) in
  (p.p1 *. float_of_int (s_ir t n))
  +. (p.p2 *. float_of_int (s_b t n))
  -. (p.b1 *. max 0.0 (p.b2 -. (ncn *. ncn)))

(* Does the subtree contain a cutoff still worth visiting this phase? *)
let rec has_candidate (n : node) : bool =
  match n.kind with
  | Cutoff _ -> not n.declined
  | Expanded _ | Poly _ -> List.exists has_candidate n.children
  | Generic _ | Deleted -> false

let rec intrinsic_priority (t : t) (n : node) : float =
  match n.kind with
  | Cutoff _ ->
      let size = max 1 (node_size t n) in
      (local_benefit t n /. float_of_int size) -. psi_r n
  | Expanded _ | Poly _ ->
      List.fold_left
        (fun acc c -> if has_candidate c then max acc (intrinsic_priority t c) else acc)
        neg_inf n.children
  | Generic _ | Deleted -> neg_inf

let priority (t : t) (n : node) : float = intrinsic_priority t n -. psi t n

(* Walks from the root to the most promising cutoff. *)
let rec descend (t : t) (n : node) : node option =
  match n.kind with
  | Cutoff _ -> if n.declined then None else Some n
  | Expanded _ | Poly _ -> (
      let candidates = List.filter has_candidate n.children in
      match candidates with
      | [] -> None
      | _ ->
          let best =
            List.fold_left
              (fun acc c ->
                match acc with
                | None -> Some c
                | Some b -> if priority t c > priority t b then Some c else acc)
              None candidates
          in
          Option.bind best (descend t))
  | Generic _ | Deleted -> None

let best_cutoff (t : t) : node option =
  let candidates = List.filter has_candidate t.children in
  match candidates with
  | [] -> None
  | _ ->
      let best =
        List.fold_left
          (fun acc c ->
            match acc with
            | None -> Some c
            | Some b -> if priority t c > priority t b then Some c else acc)
          None candidates
      in
      Option.bind best (descend t)

(* The expansion threshold for one cutoff. *)
let may_expand (t : t) (n : node) : bool =
  match t.params.threshold_policy with
  | Params.Fixed { te; _ } -> tree_s_ir t < te
  | Params.Adaptive ->
      let p = t.params in
      let size = max 1 (node_size t n) in
      let relative_benefit = local_benefit t n /. float_of_int size in
      relative_benefit >= exp ((float_of_int (tree_s_ir t) -. p.r1) /. p.r2)

(* The numeric gate [may_expand] compares against, for telemetry: the
   adaptive relative-benefit bound (Eq. 8) or the fixed tree-size budget
   T_e (compared against [tree_size], not the benefit). *)
let threshold_value (t : t) : float =
  match t.params.threshold_policy with
  | Params.Fixed { te; _ } -> float_of_int te
  | Params.Adaptive -> exp ((float_of_int (tree_s_ir t) -. t.params.r1) /. t.params.r2)

let m_expansions = Obs.Metrics.counter "inliner.expansions"

(* One structured telemetry record per expansion-threshold decision:
   which cutoff was at the head of the exploration, at what benefit, cost,
   penalty and priority, and whether it was expanded or declined. The
   node/parent ids and target label let [Obs.Explain] rebuild the tree. *)
let trace_decision (t : t) (n : node) ~(verdict : string) : unit =
  Obs.Trace.emit "expand_decision" (fun () ->
      Support.Json.
        [
          ("root", Int t.root_meth);
          ("nid", Int n.nid);
          ("parent", Int n.pnid);
          ("depth", Int (node_depth n));
          ("target", String n.tname);
          ("site_m", Int n.site.sm);
          ("site_idx", Int n.site.sidx);
          ("callsite", Int n.call_vid);
          ("benefit", Float (local_benefit t n));
          ("cost", Int (node_size t n));
          ("penalty", Float (psi t n));
          ("priority", Float (priority t n));
          ("threshold", Float (threshold_value t));
          ("tree_size", Int (tree_s_ir t));
          ("verdict", String verdict);
        ])

(* One expansion phase. Returns the number of nodes expanded. *)
let run (t : t) : int =
  let rec clear (n : node) =
    n.declined <- false;
    List.iter clear n.children
  in
  List.iter clear t.children;
  let expanded = ref 0 in
  let continue_ = ref true in
  while !continue_ && !expanded < t.params.max_expansions_per_round do
    (* watchdog checkpoint: between expansions the tree and the root IR
       are consistent, so a fuel abort here is clean *)
    Support.Fuel.spend 1;
    match best_cutoff t with
    | None -> continue_ := false
    | Some n ->
        if may_expand t n then begin
          trace_decision t n ~verdict:"expand";
          if expand_cutoff t n then begin
            incr expanded;
            Obs.Metrics.incr m_expansions
          end
          (* Generic outcomes make no progress but also leave no cutoff *)
        end
        else begin
          trace_decision t n ~verdict:"decline";
          match t.params.threshold_policy with
          | Params.Fixed _ ->
              (* the budget is global: once exceeded, the phase is over *)
              continue_ := false
          | Params.Adaptive -> n.declined <- true
        end
  done;
  !expanded
