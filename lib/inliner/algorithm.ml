(* The top-level incremental inlining algorithm (paper, Listing 1):

     root = createRoot(μ)
     while !detectTermination(root):
       expand(root); analyze(root); inline(root)

   plus the per-round root optimizations of Section IV: canonicalization,
   read-write elimination and first-iteration loop peeling on the root
   method, followed by a call-tree refresh (deleted callsites, devirtualized
   targets, re-specialization, new callsites from peeling).

   Termination (paper): no cutoff nodes left, or no change during the last
   round, or the root IR size exceeding the cap. *)

type stats = {
  mutable rounds : int;
  mutable expanded : int;
  mutable inlined : int;
  mutable initial_size : int;
  mutable final_size : int;
  mutable opt_events : int;
}

let pp_stats ppf (s : stats) =
  Fmt.pf ppf "rounds=%d expanded=%d inlined=%d size %d->%d opts=%d" s.rounds s.expanded
    s.inlined s.initial_size s.final_size s.opt_events

type result = { body : Ir.Types.fn; stats : stats }

let log_src = Logs.Src.create "inliner" ~doc:"incremental inliner"

module Log = (val Logs.src_log log_src)

let m_rounds = Obs.Metrics.histogram "inliner.rounds_per_compile"

(* Compiles [root_meth]: returns the optimized root body with callees
   inlined per the algorithm. The method's interpreter body is left
   untouched; the caller installs the result in the code cache. *)
let compile ?trial_cache (prog : Ir.Types.program) (profiles : Runtime.Profile.t)
    (params : Params.t) (root_meth : Ir.Types.meth_id) : result =
  let t = Calltree.create ?trial_cache prog profiles params root_meth in
  let stats =
    {
      rounds = 0;
      expanded = 0;
      inlined = 0;
      initial_size = Ir.Fn.size t.root_fn;
      final_size = 0;
      opt_events = 0;
    }
  in
  (* Compile watchdog: under an ambient [Support.Fuel] budget, snapshot
     the root after every completed round. A fuel abort mid-round
     (checkpoints sit in [Expansion.run] and [Opt.Driver]) then falls
     back to the last completed round's body — the best result the
     budget paid for. If not even the first round finished, there is no
     useful body and [Fuel.Exhausted] escapes to the engine's bailout
     path. Snapshots cost one [Ir.Fn.copy] per round and only exist when
     a budget is installed. *)
  let watchdog = Support.Fuel.enabled () in
  let best : (Ir.Types.fn * int * int * int * int) option ref = ref None in
  let changed = ref true in
  (try
     while
       !changed
       && stats.rounds < params.max_rounds
       && Ir.Fn.size t.root_fn < params.root_size_cap
     do
       Support.Fuel.spend 1;
       stats.rounds <- stats.rounds + 1;
       let expanded = Expansion.run t in
       Analysis.run t;
       let inlined = Inline_phase.run t in
       let opt_stats =
         Opt.Driver.round_root_opts ~rwelim:params.opt_rwelim ~scalar:params.opt_scalar
           ~licm:params.opt_licm ~peel:params.opt_peel prog t.root_fn
       in
       stats.expanded <- stats.expanded + expanded;
       stats.inlined <- stats.inlined + inlined;
       stats.opt_events <- stats.opt_events + Opt.Driver.simple_opt_count opt_stats;
       Calltree.refresh t;
       Log.debug (fun m ->
           m "round %d: expanded=%d inlined=%d root_size=%d cutoffs=%d" stats.rounds
             expanded inlined (Ir.Fn.size t.root_fn) (Calltree.tree_n_c t));
       Obs.Trace.emit "inline_round" (fun () ->
           Support.Json.
             [
               ("root", Int root_meth);
               ("round", Int stats.rounds);
               ("expanded", Int expanded);
               ("inlined", Int inlined);
               ("root_size", Int (Ir.Fn.size t.root_fn));
               ("cutoffs", Int (Calltree.tree_n_c t));
             ]);
       changed := expanded > 0 || inlined > 0;
       if watchdog then
         best :=
           Some
             ( Ir.Fn.copy t.root_fn,
               stats.rounds,
               stats.expanded,
               stats.inlined,
               stats.opt_events )
     done;
     stats.final_size <- Ir.Fn.size t.root_fn;
     Obs.Metrics.observe m_rounds stats.rounds;
     { body = t.root_fn; stats }
   with Support.Fuel.Exhausted -> (
     match !best with
     | None -> raise Support.Fuel.Exhausted
     | Some (body, rounds, expanded, inlined, opt_events) ->
         stats.rounds <- rounds;
         stats.expanded <- expanded;
         stats.inlined <- inlined;
         stats.opt_events <- opt_events;
         stats.final_size <- Ir.Fn.size body;
         Obs.Trace.emit "inline_round" (fun () ->
             Support.Json.
               [
                 ("root", Int root_meth);
                 ("round", Int rounds);
                 ("fuel_abort", Bool true);
                 ("root_size", Int (Ir.Fn.size body));
               ]);
         Obs.Metrics.observe m_rounds rounds;
         { body; stats }))
