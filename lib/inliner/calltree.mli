(** The partial call tree (paper, Section III-A) and deep inlining trials
    (Section IV).

    Nodes carry the paper's kind tags — C (cutoff), E (expanded, holding a
    callsite-specialized copy of the callee IR), P (polymorphic,
    speculated from the receiver profile), G (generic / not inlinable),
    D (deleted by optimization) — plus the metrics the heuristics consume:
    relative frequency f(n), refined-argument count N_a, triggered-
    optimization count N_s, and subtree size aggregates. *)

open Ir.Types

type target = Known of meth_id | Unknown of string

type kind =
  | Cutoff of target
  | Expanded of { body : fn; n_opts : int }
  | Poly of string
  | Generic of string
  | Deleted

type node = {
  nid : int;
  pnid : int;                     (** parent node id; -1 for root children *)
  mutable tname : string;         (** target label: method name or [?selector] *)
  mutable kind : kind;
  mutable call_vid : vid;         (** the callsite within [owner] *)
  mutable owner : fn;
  site : site;
  freq : float;                   (** f(n), relative to the root *)
  prob : float;                   (** dispatch probability under a Poly parent *)
  recv_cls : class_id option;     (** speculated receiver (Poly children) *)
  ancestors : meth_id list;       (** call-path targets, for recursion depth *)
  mutable n_args_refined : int;
  mutable children : node list;
  mutable spec_sig : (const option * ty option) array;
  mutable tuple : float * float;  (** benefit|cost, set by {!Analysis} *)
  mutable in_parent_cluster : bool;
  mutable front : node list;
  mutable declined : bool;        (** failed the expansion threshold this phase *)
}

type t = {
  prog : program;
  profiles : Runtime.Profile.t;
  params : Params.t;
  root_meth : meth_id;
  root_fn : fn;                   (** the working copy being compiled *)
  mutable children : node list;
  mutable next_id : int;
  mutable next_syn_site : int;
  trial_cache : Trial_cache.t option;
}

val create :
  ?trial_cache:Trial_cache.t -> program -> Runtime.Profile.t -> Params.t -> meth_id -> t
(** Copies the method's prepared body and scans its callsites into cutoff
    children with profile-driven frequencies. An installed [trial_cache]
    memoizes specialization results across compilations of the same
    program. *)

val fresh_syn_site : t -> site
(** A synthetic (negative) site key for compiler-introduced control flow;
    never re-speculated and never profiled. *)

val meth_name : t -> meth_id -> string

val target_label : t -> target -> string
(** The method name, or the selector prefixed with [?] while unresolved. *)

val node_depth : node -> int
(** Call-path depth: 1 for direct children of the root. *)

(** {1 Metrics} *)

val node_size : t -> node -> int
(** |ir(n)|: the size inlining this node would add. *)

val s_ir : t -> node -> int
val s_b : t -> node -> int
val n_c : node -> int
val tree_s_ir : t -> int
val tree_n_c : t -> int

val local_benefit : t -> node -> float
(** B_L(n), Eq. 4 (cutoff/expanded) and Eq. 13 (poly). *)

val rec_depth : node -> int
(** d(n) for the recursion penalty ψ_r (Eq. 14). *)

(** {1 Deep inlining trials} *)

val spec_signature :
  t -> owner:fn -> call_vid:vid -> recv_cls:class_id option -> declared:ty array ->
  (const option * ty option) array
(** Per-parameter (constant, refined type) a callsite would specialize its
    callee with. *)

val digest_of_signature : (const option * ty option) array -> string

val signature_improves :
  program -> old_sig:(const option * ty option) array ->
  new_sig:(const option * ty option) array -> bool
(** Strictly better information: some parameter gained a constant or a
    more precise type, and none lost one. Guards re-specialization so
    oscillating signatures do not discard subtree exploration. *)

val specialize :
  ?callee_m:meth_id -> t -> enabled:bool -> callee_body:fn ->
  sg:(const option * ty option) array -> fn * int * int
(** Fresh copy with the specialization applied and canonicalized; returns
    (copy, N_s, N_a). With [enabled:false] the copy is merely simplified —
    the shallow-trials ablation. [callee_m] keys the trial cache when one
    is installed. *)

(** {1 Tree evolution} *)

val expand_cutoff : t -> node -> bool
(** Expands in place: Known targets attach a specialized body and scan
    children; Unknown selectors consult the receiver profile to become
    Poly (≤ [poly_max_targets] targets with probability ≥ [poly_min_prob])
    or Generic; recursion past the hard limit becomes Generic. True iff
    the tree gained an Expanded or Poly node. *)

val poly_targets : t -> node -> string -> (class_id * meth_id * float) list

val refresh : t -> unit
(** Re-synchronizes with the owner IRs after a round: deleted callsites
    become D, devirtualized sites update their target, expanded nodes with
    improved argument signatures re-specialize (deep trials only), and new
    root callsites (e.g. duplicated by peeling) join as fresh cutoffs. *)

val prepared_body : t -> meth_id -> fn option

(** {1 Debugging} *)

val pp_node : t -> Format.formatter -> node -> unit
val pp : Format.formatter -> t -> unit
