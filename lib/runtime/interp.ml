(* The SelVM execution engine: runs method bodies in either tier and
   doubles as the "compiled code" executor.

   The same evaluator runs both tiers; the [mode] controls (a) the
   per-instruction dispatch penalty from the cost model and (b) whether
   profiles are collected — interpreted code profiles (like the HotSpot
   interpreter / C1), compiled code does not (like C2/Graal code).

   Two execution backends implement identical observable semantics:

   - [Prepared] (default): bodies are translated once into dense
     [Prepared.code] objects — flat register frames, edge-resolved phis,
     pre-decoded instructions — and cached per (method, tier). This is the
     production path; per-step work is a handful of array reads.
   - [Reference]: the original direct IR walker, kept as the executable
     specification the differential suite checks the prepared engine
     against (test/test_differential.ml).

   Prepared-cache coherence: entries are keyed by method and tier and
   remembered together with the physical [fn] they were translated from; a
   lookup that sees a different body (the JIT installed or replaced code)
   re-prepares. [Jit.Engine] additionally calls [invalidate_code] on every
   install and deoptimization, which drops the stale entries eagerly and
   bumps [code_epoch] — the version counter tests observe.

   Two hooks connect the VM to the JIT engine without a dependency cycle:
   [code] looks up installed compiled code for a method, and [on_entry]
   fires at every method entry so the engine can detect hotness and
   trigger compilation. *)

open Ir.Types
open Values

type mode = Interpreted | Compiled

type backend = Threaded | Prepared | Reference

(* On-stack replacement. The engine (not the runtime) owns the policy;
   the backends only provide checkpoints at loop headers:

   - Enter (interpreted frames): once a block's execution counter crosses
     [vm.osr_threshold], the backend consults [vm.on_osr]. [Osr_enter]
     hands back a transfer: the target method is the extracted loop
     continuation ([Ir.Osr]), and the vid arrays are the frame mapping —
     the backend reads exactly those slots (live-ins, then the
     loop-carried phi values current after this header's phi moves), in
     order, as the continuation's arguments. The transfer is one-way: the
     continuation's result is the activation's result.
   - Exit (compiled frames): each activation snapshots [vm.deopt_epoch];
     when an invalidation bumps it, the frame consults [vm.on_osr_exit]
     at the next loop header and either keeps running ([Exit_stay] —
     still-current code re-snapshots, [Exit_watch] keeps probing) or
     transfers into an interpreted continuation of the stale body
     ([Exit_to], same frame-mapping contract). *)
type osr_transfer = {
  osr_target : meth_id;
  osr_live_ins : vid array;
  osr_phis : vid array;
}

type osr_verdict = Osr_no | Osr_wait | Osr_enter of osr_transfer
type osr_exit_verdict = Exit_stay | Exit_watch | Exit_to of osr_transfer

(* Threaded-tier activation state: the only values a handler closure
   cannot capture at lowering time (they are per-call, the closures are
   per-method). Everything else — operand registers, static costs, bound
   profile cells, jump targets as pc indices — lives in the closure
   environments. *)
type tstate = {
  t_frame : value array;
  t_args : value array;
  mutable t_ret : value;
  mutable t_depoch : int;
      (* the deopt epoch this activation last validated against *)
}

type thandler = tstate -> unit
(* A handler executes one pre-decoded instruction (or one fused
   superinstruction) and tail-calls the next handler directly — the
   classic direct-threading transition, with OCaml's guaranteed tail-call
   elimination standing in for computed goto. A method-return handler
   simply returns, unwinding the whole (frameless) chain. *)

type tcode = {
  t_handlers : thandler array;
  t_entry : int;
  t_nregs : int;
  t_fname : string;
  t_stage : int;  (* 0 = lowered cold (no fusion), 1 = fusion planned *)
}

(* A cache entry remembers the physical body it was translated from plus
   the profile (identity and generation) its baked counter cells and IC
   receiver cells point into: a body replacement, a profile swap or a
   [Profile.clear] each invalidate the entry at the next lookup. The
   threaded lowering of the same [pcode] is cached alongside it (sharing
   its profile-cell holders and inline caches) and is re-derived when the
   method crosses the fusion threshold. *)
type prepared_entry = {
  src : fn;
  prof : Profile.t;
  gen : int;
  pcode : Prepared.code;
  mutable tcode : tcode option;
}

(* Accumulated counters of inline caches whose code object was dropped
   (install/invalidate/replace), keyed by site so repeated recompilations
   of a method fold into one row. *)
type ic_stat = {
  st_site : site;
  st_selector : string;
  mutable st_hits : int;
  mutable st_misses : int;
  mutable st_mega : int;
}

(* Accumulated mining results of one superinstruction pattern, summed
   over every threaded lowering this VM performed. *)
type sstat = {
  ss_pattern : string;
  mutable ss_sites : int;   (* fused sites emitted *)
  mutable ss_weight : int;  (* summed hotness of the owning blocks *)
}

type vm = {
  prog : program;
  mutable profiles : Profile.t;
  cost : Cost.t;
  out : Buffer.t;
  mutable cycles : int;          (* simulated execution clock *)
  mutable code : meth_id -> fn option;
  mutable on_entry : meth_id -> unit;
  (* fired when compiled code reaches the residual virtual call of a
     typeswitch (a synthetic site): the speculation missed *)
  mutable on_spec_miss : meth_id -> site -> unit;
  (* --- on-stack replacement (policy lives in [Jit.Engine]) --- *)
  mutable osr_threshold : int;
      (* block count at which an interpreted frame consults [on_osr];
         [max_int] (the default) disables the enter checkpoints *)
  mutable on_osr : meth_id -> bid -> osr_verdict;
  mutable osr_headers : meth_id -> fn -> bid -> bool;
      (* lowering-time filter: which blocks get checkpoint guards in the
         threaded tier (loop headers only, so straight-line code and
         non-header blocks pay nothing per entry) *)
  mutable deopt_epoch : int;
      (* bumped by the engine on every invalidation while OSR is armed;
         compiled frames re-validate at loop headers when it moved *)
  mutable osr_exit_armed : bool;
      (* whether compiled threaded lowerings get OSR-exit guards *)
  mutable on_osr_exit : meth_id -> fn -> bid -> osr_exit_verdict;
  mutable on_osr_abort : meth_id -> unit;
      (* a trap is unwinding out of an entered OSR continuation *)
  mutable steps : int;
  mutable max_steps : int;
  mutable depth : int;
  max_depth : int;
  mutable backend : backend;
  (* prepared-code cache, a dense array indexed by meth_id * 2 + tier —
     this lookup sits on every single method invocation, so it is a
     bounds-checked array read, not a hash probe *)
  mutable prepared_cache : prepared_entry option array;
  mutable code_epoch : int;      (* bumped by every [invalidate_code] *)
  mutable ic_enabled : bool;     (* inline caches on virtual dispatch *)
  ic_retired : (site, ic_stat) Hashtbl.t;
      (* counters of ICs retired with their code objects *)
  mutable attrib : Attribution.t option;
      (* per-method cycle attribution; None (default) costs nothing *)
  mutable fusion : Prepared.fusion_config;
      (* superinstruction thresholds for the threaded tier *)
  superinst : (string, sstat) Hashtbl.t;
      (* mined pattern table, accumulated across threaded lowerings *)
}

let create ?(cost = Cost.default) ?(max_steps = 500_000_000)
    ?(backend = Threaded) (prog : program) : vm =
  {
    prog;
    profiles = Profile.create ();
    cost;
    out = Buffer.create 256;
    cycles = 0;
    code = (fun _ -> None);
    on_entry = (fun _ -> ());
    on_spec_miss = (fun _ _ -> ());
    osr_threshold = max_int;
    on_osr = (fun _ _ -> Osr_no);
    osr_headers = (fun _ _ _ -> false);
    deopt_epoch = 0;
    osr_exit_armed = false;
    on_osr_exit = (fun _ _ _ -> Exit_stay);
    on_osr_abort = (fun _ -> ());
    steps = 0;
    max_steps;
    depth = 0;
    max_depth = 10_000;
    backend;
    prepared_cache = Array.make (max 16 (2 * Ir.Program.num_meths prog)) None;
    code_epoch = 0;
    ic_enabled = true;
    ic_retired = Hashtbl.create 16;
    attrib = None;
    fusion = Prepared.default_fusion;
    superinst = Hashtbl.create 16;
  }

let output vm = Buffer.contents vm.out

let enable_attribution (vm : vm) : Attribution.t =
  match vm.attrib with
  | Some a -> a
  | None ->
      let a = Attribution.create () in
      vm.attrib <- Some a;
      a

let record_deopt (vm : vm) (m : meth_id) : unit =
  match vm.attrib with Some a -> Attribution.record_deopt a m | None -> ()

let record_evict (vm : vm) (m : meth_id) : unit =
  match vm.attrib with Some a -> Attribution.record_evict a m | None -> ()

let charge vm n = vm.cycles <- vm.cycles + n

let cache_key (m : meth_id) (mode : mode) : int =
  (m * 2) + match mode with Interpreted -> 0 | Compiled -> 1

let cache_slot (vm : vm) (key : int) : prepared_entry option =
  let c = vm.prepared_cache in
  if key < Array.length c then Array.unsafe_get c key else None

(* Methods can be added after the VM was created (tests do); the dense
   cache grows on demand. *)
let cache_set (vm : vm) (key : int) (e : prepared_entry option) : unit =
  let n = Array.length vm.prepared_cache in
  if key >= n then begin
    let c' = Array.make (max (key + 1) (2 * n)) None in
    Array.blit vm.prepared_cache 0 c' 0 n;
    vm.prepared_cache <- c'
  end;
  vm.prepared_cache.(key) <- e

(* Folds a dropped code object's IC counters into [vm.ic_retired] so
   install/invalidate cannot erase the dispatch statistics, then zeroes
   them (a second retirement of the same object is a no-op). Methods
   without virtual call sites have no ICs and skip retirement outright. *)
let retire_ics (vm : vm) (pcode : Prepared.code) : unit =
  if Array.length pcode.ics > 0 then
  Array.iter
    (fun (ic : Ic.t) ->
      if Ic.dispatches ic > 0 then begin
        let st =
          match Hashtbl.find_opt vm.ic_retired ic.ic_site with
          | Some st -> st
          | None ->
              let st =
                { st_site = ic.ic_site; st_selector = ic.selector;
                  st_hits = 0; st_misses = 0; st_mega = 0 }
              in
              Hashtbl.replace vm.ic_retired ic.ic_site st;
              st
        in
        st.st_hits <- st.st_hits + ic.hits;
        st.st_misses <- st.st_misses + ic.misses;
        st.st_mega <- st.st_mega + ic.mega;
        Ic.reset_stats ic
      end)
    pcode.ics

let invalidate_code (vm : vm) (m : meth_id) : unit =
  let drop key =
    match cache_slot vm key with
    | Some e ->
        retire_ics vm e.pcode;
        cache_set vm key None
    | None -> ()
  in
  drop (cache_key m Interpreted);
  drop (cache_key m Compiled);
  vm.code_epoch <- vm.code_epoch + 1

(* Cache lookup guarded by physical identity of the source body (even if
   an install slipped past [invalidate_code], a replaced body can never
   execute stale prepared code) and by profile identity + generation (a
   swapped or cleared profile invalidates the baked counter cells). *)
let entry_for (vm : vm) ~(mode : mode) (m : meth_id) (fn : fn) : prepared_entry =
  let key = cache_key m mode in
  match cache_slot vm key with
  | Some e
    when e.src == fn && e.prof == vm.profiles
         && e.gen = Profile.generation vm.profiles ->
      e
  | stale ->
      (match stale with Some e -> retire_ics vm e.pcode | None -> ());
      let pcode = Prepared.prepare ~cost:vm.cost vm.prog fn in
      let e =
        { src = fn; prof = vm.profiles;
          gen = Profile.generation vm.profiles; pcode; tcode = None }
      in
      cache_set vm key (Some e);
      e

let prepared_for (vm : vm) ~(mode : mode) (m : meth_id) (fn : fn) : Prepared.code =
  (entry_for vm ~mode m fn).pcode

(* ---------- superinstruction bookkeeping ---------- *)

let note_superinst (vm : vm) (pattern : string) ~(sites : int) ~(weight : int) :
    unit =
  match Hashtbl.find_opt vm.superinst pattern with
  | Some s ->
      s.ss_sites <- s.ss_sites + sites;
      s.ss_weight <- s.ss_weight + weight
  | None ->
      Hashtbl.replace vm.superinst pattern
        { ss_pattern = pattern; ss_sites = sites; ss_weight = weight }

(* The mined pattern table, sorted by pattern — a deterministic function
   of the program, workload and thresholds (counts accumulate over every
   threaded lowering, including re-lowerings after invalidation). *)
let superinst_stats (vm : vm) : sstat list =
  Hashtbl.fold (fun _ s acc -> s :: acc) vm.superinst []
  |> List.sort (fun a b -> compare a.ss_pattern b.ss_pattern)

(* Lowering stage wanted for a method right now: fused once the method is
   warm. Installed compiled code is hot by construction and always fuses
   (it does not profile, so invocation counters have stopped moving). *)
let stage_for (vm : vm) ~(mode : mode) (m : meth_id) : int =
  match mode with
  | Compiled -> 1
  | Interpreted ->
      if Profile.invocation_count vm.profiles m >= vm.fusion.fuse_invocations
      then 1
      else 0

(* Shared Vbool results (structurally compared everywhere, so interning
   is unobservable); saves an allocation per comparison in the threaded
   tier. *)
let vtrue = Vbool true
let vfalse = Vbool false
let vbool b = if b then vtrue else vfalse

(* Per-site IC statistics: live caches plus retired counters, merged by
   site, ordered by (method, site ordinal). A site can contribute from
   several live code objects once inlining copies it into other methods'
   compiled bodies. *)
let ic_stats (vm : vm) : ic_stat list =
  let acc = Hashtbl.create 16 in
  let fold site selector h m g =
    if h + m + g > 0 then
      match Hashtbl.find_opt acc site with
      | Some st ->
          st.st_hits <- st.st_hits + h;
          st.st_misses <- st.st_misses + m;
          st.st_mega <- st.st_mega + g
      | None ->
          Hashtbl.replace acc site
            { st_site = site; st_selector = selector;
              st_hits = h; st_misses = m; st_mega = g }
  in
  Hashtbl.iter
    (fun site (st : ic_stat) ->
      fold site st.st_selector st.st_hits st.st_misses st.st_mega)
    vm.ic_retired;
  Array.iter
    (function
      | Some (e : prepared_entry) ->
          Array.iter
            (fun (ic : Ic.t) ->
              fold ic.ic_site ic.selector ic.hits ic.misses ic.mega)
            e.pcode.ics
      | None -> ())
    vm.prepared_cache;
  Hashtbl.fold (fun _ st acc -> st :: acc) acc []
  |> List.sort (fun a b ->
         compare (a.st_site.sm, a.st_site.sidx) (b.st_site.sm, b.st_site.sidx))

let eval_binop (op : binop) (a : value) (b : value) : value =
  match op with
  | Add -> Vint (as_int a + as_int b)
  | Sub -> Vint (as_int a - as_int b)
  | Mul -> Vint (as_int a * as_int b)
  | Div ->
      let d = as_int b in
      if d = 0 then trap "division by zero" else Vint (as_int a / d)
  | Rem ->
      let d = as_int b in
      if d = 0 then trap "remainder by zero" else Vint (as_int a mod d)
  | Shl -> Vint (as_int a lsl (as_int b land 63))
  | Shr -> Vint (as_int a asr (as_int b land 63))
  | Band -> Vint (as_int a land as_int b)
  | Bor -> Vint (as_int a lor as_int b)
  | Bxor -> Vint (as_int a lxor as_int b)
  | Lt -> Vbool (as_int a < as_int b)
  | Le -> Vbool (as_int a <= as_int b)
  | Gt -> Vbool (as_int a > as_int b)
  | Ge -> Vbool (as_int a >= as_int b)
  | Eq -> Vbool (value_eq a b)
  | Ne -> Vbool (not (value_eq a b))
  | Andb -> Vbool (as_bool a && as_bool b)
  | Orb -> Vbool (as_bool a || as_bool b)
  | Xorb -> Vbool (as_bool a <> as_bool b)
  | Eqb -> Vbool (as_bool a = as_bool b)

let eval_unop (op : unop) (a : value) : value =
  match op with Neg -> Vint (-as_int a) | Not -> Vbool (not (as_bool a))

let rec invoke (vm : vm) (m : meth_id) (args : value array) : value =
  vm.on_entry m;
  match vm.code m with
  | Some cfn -> (
      match vm.attrib with
      | None -> exec_installed vm m cfn args
      | Some a ->
          (* enter/leave bracket the activation by hand (no closures, no
             Fun.protect): this sits on the invocation path, and the
             disabled path must stay one option check *)
          Attribution.enter a ~meth:m ~tier:Attribution.Jit ~now:vm.cycles;
          (match exec_installed vm m cfn args with
          | v ->
              Attribution.leave a ~now:vm.cycles;
              v
          | exception e ->
              Attribution.leave a ~now:vm.cycles;
              raise e))
  | None -> (
      let mm = Ir.Program.meth vm.prog m in
      match mm.body with
      | None -> trap "abstract method %s invoked" mm.m_name
      | Some fn -> (
          Profile.record_invocation vm.profiles m;
          match vm.attrib with
          | None -> exec_interp vm m fn args
          | Some a ->
              let tier =
                match vm.backend with
                | Reference -> Attribution.Interp
                (* the threaded tier is the prepared representation with a
                   different dispatch strategy; attribution buckets agree *)
                | Prepared | Threaded -> Attribution.Prepared
              in
              Attribution.enter a ~meth:m ~tier ~now:vm.cycles;
              (match exec_interp vm m fn args with
              | v ->
                  Attribution.leave a ~now:vm.cycles;
                  v
              | exception e ->
                  Attribution.leave a ~now:vm.cycles;
                  raise e)))

(* One-way OSR transfer: charge like a direct call, marshal the frame
   mapping (live-ins, then the loop-carried phi values) out of the
   running frame via [read] and invoke the continuation method; its
   result IS the original activation's result. [abort] wraps
   enter-transfers so the engine can observe a trap unwinding out of the
   continuation (it emits an osr_exit with reason "trap") before the
   exception propagates further. *)
and osr_call (vm : vm) ?(abort = false) (tr : osr_transfer)
    (read : vid -> value) : value =
  charge vm (Cost.call_overhead vm.cost ~virtual_:false ~targets:1);
  let n = Array.length tr.osr_live_ins in
  let np = Array.length tr.osr_phis in
  let cargs = Array.make (n + np) Vunit in
  for i = 0 to n - 1 do
    cargs.(i) <- read tr.osr_live_ins.(i)
  done;
  for i = 0 to np - 1 do
    cargs.(n + i) <- read tr.osr_phis.(i)
  done;
  if abort then (
    try invoke vm tr.osr_target cargs
    with e ->
      vm.on_osr_abort tr.osr_target;
      raise e)
  else invoke vm tr.osr_target cargs

and exec_installed (vm : vm) (m : meth_id) (cfn : fn) (args : value array) : value =
  match vm.backend with
  | Reference -> exec_ref vm ~mode:Compiled ~meth:m cfn args
  | Prepared ->
      exec_code vm ~mode:Compiled ~meth:m ~src:cfn
        (prepared_for vm ~mode:Compiled m cfn) args
  | Threaded -> exec_threaded vm (threaded_for vm ~mode:Compiled m cfn) args

and exec_interp (vm : vm) (m : meth_id) (fn : fn) (args : value array) : value =
  match vm.backend with
  | Reference -> exec_ref vm ~mode:Interpreted ~meth:m fn args
  | Prepared ->
      exec_code vm ~mode:Interpreted ~meth:m ~src:fn
        (prepared_for vm ~mode:Interpreted m fn) args
  | Threaded -> exec_threaded vm (threaded_for vm ~mode:Interpreted m fn) args

and exec (vm : vm) ~(mode : mode) ~(meth : meth_id) (fn : fn) (args : value array) :
    value =
  match vm.backend with
  | Reference -> exec_ref vm ~mode ~meth fn args
  | Prepared ->
      (* one-shot bodies (tests pinning a tier on a synthetic fn) are
         prepared per call; cached paths go through [invoke] *)
      exec_code vm ~mode ~meth ~src:fn
        (Prepared.prepare ~cost:vm.cost vm.prog fn) args
  | Threaded ->
      let pcode = Prepared.prepare ~cost:vm.cost vm.prog fn in
      let t =
        lower_threaded vm ~mode ~meth ~src:fn pcode
          ~stage:(stage_for vm ~mode meth)
      in
      exec_threaded vm t args

(* Cached threaded code for a method: shares the prepared-cache entry
   (and hence the pcode's profile-cell holders and inline caches) and is
   re-lowered when the wanted fusion stage changes — i.e. once, when the
   invocation counter crosses [fusion.fuse_invocations]. *)
and threaded_for (vm : vm) ~(mode : mode) (m : meth_id) (fn : fn) : tcode =
  let entry = entry_for vm ~mode m fn in
  match entry.tcode with
  (* stage 1 is terminal — no need to consult the invocation counter
     again on the hot invocation path *)
  | Some t when t.t_stage = 1 -> t
  | cached -> (
      let stage = stage_for vm ~mode m in
      match cached with
      | Some t when t.t_stage = stage -> t
      | _ ->
          let t = lower_threaded vm ~mode ~meth:m ~src:fn entry.pcode ~stage in
          entry.tcode <- Some t;
          t)

(* ---------- prepared backend ---------- *)

and exec_code (vm : vm) ~(mode : mode) ~(meth : meth_id) ~(src : fn)
    (code : Prepared.code) (args : value array) : value =
  vm.depth <- vm.depth + 1;
  if vm.depth > vm.max_depth then trap "call stack overflow in %s" code.fname;
  let dispatch =
    match mode with
    | Interpreted -> vm.cost.interp_dispatch
    | Compiled -> vm.cost.compiled_dispatch
  in
  let profiling = mode = Interpreted in
  let phi_cost = dispatch + vm.cost.phi in
  let frame = Array.make code.nregs Vunit in
  let blocks = code.blocks in
  (* OSR: compiled activations re-validate against the engine at loop
     headers only after an invalidation moved the deopt epoch *)
  let depoch = ref vm.deopt_epoch in
  let rec run (bi : int) (edge : int) : value =
    let b : Prepared.pblock = blocks.(bi) in
    (* blocks count as steps too: an instruction-free cycle (possible after
       aggressive DCE) must still exhaust the step budget *)
    vm.steps <- vm.steps + 1;
    if vm.steps > vm.max_steps then trap "step budget exceeded";
    if profiling then begin
      (* slot-indexed profiling: the counter cell is bound into the code
         object on first record, making every later record one increment *)
      match b.prof.cell with
      | Some c -> incr c
      | None ->
          let c = Profile.block_cell vm.profiles meth b.src_bid in
          b.prof.cell <- Some c;
          incr c
    end;
    (* phis evaluate simultaneously with respect to the incoming edge *)
    let nphis = Array.length b.phi_dests in
    if nphis > 0 then begin
      let srcs, prev =
        if edge < 0 then (Array.make nphis (-1), -1)
        else (b.phi_srcs.(edge), b.pred_bids.(edge))
      in
      if nphis = 1 then begin
        vm.steps <- vm.steps + 1;
        charge vm phi_cost;
        let s = srcs.(0) in
        if s < 0 then
          trap "internal: phi v%d has no input for edge b%d" b.phi_vids.(0) prev;
        frame.(b.phi_dests.(0)) <- frame.(s)
      end
      else begin
        let tmp = Array.make nphis Vunit in
        for i = 0 to nphis - 1 do
          vm.steps <- vm.steps + 1;
          charge vm phi_cost;
          let s = srcs.(i) in
          if s < 0 then
            trap "internal: phi v%d has no input for edge b%d" b.phi_vids.(i) prev;
          tmp.(i) <- frame.(s)
        done;
        for i = 0 to nphis - 1 do
          frame.(b.phi_dests.(i)) <- tmp.(i)
        done
      end
    end;
    (* OSR checkpoints sit after the phi moves, so the loop-carried slots
       hold the current iteration's values when a transfer reads them *)
    if profiling then
      if
        (not b.osr_skip)
        && (match b.prof.cell with
           | Some c -> !c >= vm.osr_threshold
           | None -> false)
      then (
        match vm.on_osr meth b.src_bid with
        | Osr_no ->
            b.osr_skip <- true;
            finish b
        | Osr_wait -> finish b
        | Osr_enter tr -> osr_call vm ~abort:true tr (fun v -> frame.(v)))
      else finish b
    else if vm.deopt_epoch <> !depoch then (
      match vm.on_osr_exit meth src b.src_bid with
      | Exit_stay ->
          depoch := vm.deopt_epoch;
          finish b
      | Exit_watch -> finish b
      | Exit_to tr -> osr_call vm tr (fun v -> frame.(v)))
    else finish b
  and finish (b : Prepared.pblock) : value =
    let body = b.body in
    for i = 0 to Array.length body - 1 do
      let pi = body.(i) in
      vm.steps <- vm.steps + 1;
      if vm.steps > vm.max_steps then trap "step budget exceeded";
      charge vm (dispatch + pi.static_cost);
      let result =
        match pi.op with
        | Pconst v -> v
        | Pparam k ->
            if k >= Array.length args then trap "internal: missing argument %d" k
            else args.(k)
        | Punop (op, a) -> eval_unop op frame.(a)
        | Pbinop (op, a, b) -> eval_binop op frame.(a) frame.(b)
        | Pcall { callee; cargs; site; ic } ->
            let n = Array.length cargs in
            let vals = Array.make n Vunit in
            for j = 0 to n - 1 do
              vals.(j) <- frame.(cargs.(j))
            done;
            do_call vm ?ic ~profiling ~meth ~callee ~site vals
        | Pnew { cls; defaults } ->
            Vobj { o_cls = cls; fields = Array.copy defaults }
        | Pgetfield { obj; slot; fname } -> (
            let o = as_obj frame.(obj) in
            if slot >= Array.length o.fields then
              trap "internal: bad field slot for %s" fname
            else o.fields.(slot))
        | Psetfield { obj; slot; fname; value } ->
            let o = as_obj frame.(obj) in
            if slot >= Array.length o.fields then
              trap "internal: bad field slot for %s" fname;
            o.fields.(slot) <- frame.(value);
            Vunit
        | Pnewarray { ety; len } ->
            let n = as_int frame.(len) in
            charge vm (Cost.alloc_fields_cost vm.cost n);
            alloc_array ety n
        | Parrayget { arr; idx } ->
            let a = as_arr frame.(arr) in
            let i = as_int frame.(idx) in
            if i < 0 || i >= Array.length a.elems then
              trap "array index %d out of bounds" i;
            a.elems.(i)
        | Parrayset { arr; idx; value } ->
            let a = as_arr frame.(arr) in
            let i = as_int frame.(idx) in
            if i < 0 || i >= Array.length a.elems then
              trap "array index %d out of bounds" i;
            a.elems.(i) <- frame.(value);
            Vunit
        | Parraylen a -> Vint (Array.length (as_arr frame.(a)).elems)
        | Ptypetest { obj; cls } -> (
            match frame.(obj) with
            | Vobj o -> Vbool (Ir.Program.is_subclass vm.prog ~sub:o.o_cls ~sup:cls)
            | Vnull -> Vbool false
            | _ -> trap "typetest on a non-object")
        | Pintrinsic (intr, ia) -> (
            let a k = frame.(ia.(k)) in
            match intr with
            | Iprint_int ->
                Buffer.add_string vm.out (string_of_int (as_int (a 0)));
                Vunit
            | Iprint_bool ->
                Buffer.add_string vm.out (string_of_bool (as_bool (a 0)));
                Vunit
            | Iprint_str ->
                Buffer.add_string vm.out (as_str (a 0));
                Vunit
            | Istr_len -> Vint (String.length (as_str (a 0)))
            | Istr_get ->
                let s = as_str (a 0) and i = as_int (a 1) in
                if i < 0 || i >= String.length s then
                  trap "string index %d out of bounds" i;
                Vint (Char.code s.[i])
            | Istr_eq -> Vbool (as_str (a 0) = as_str (a 1))
            | Iabs -> Vint (abs (as_int (a 0)))
            | Imin -> Vint (min (as_int (a 0)) (as_int (a 1)))
            | Imax -> Vint (max (as_int (a 0)) (as_int (a 1))))
      in
      frame.(pi.dest) <- result
    done;
    charge vm b.term_cost;
    match b.term with
    | Preturn r -> frame.(r)
    | Pgoto { target; edge } -> run target edge
    | Pif { cond; site; tb; tedge; fb; fedge; bprof } ->
        let taken = as_bool frame.(cond) in
        if profiling then
          (match bprof.brec with
          | Some br -> Profile.brec_record br ~taken
          | None ->
              let br = Profile.branch_cell vm.profiles site in
              bprof.brec <- Some br;
              Profile.brec_record br ~taken);
        if taken then run tb tedge else run fb fedge
    | Punreachable -> trap "reached an unreachable block in %s" code.fname
    | Pdead b' ->
        invalid_arg (Printf.sprintf "Fn.block: dead block b%d in %s" b' code.fname)
  in
  let result = run code.entry (-1) in
  vm.depth <- vm.depth - 1;
  result

(* ---------- threaded backend: closures instead of a dispatch match ----

   [lower_threaded] turns a [Prepared.code] into a flat array of handler
   closures indexed by pc — one per block prologue, body segment and
   terminator. Each handler performs its instruction and tail-calls the
   successor handler directly (direct threading: control never returns
   to a dispatch loop mid-method), with [exec_code]'s per-step
   [match pi.op], operand-field loads and cost additions all paid once
   at lowering: operands, the summed dispatch+static cost, the bound
   profile holders and jump-target handlers live in the closure
   environments. A handler is bookkeeping ∘ effect ∘ goto-next, where
   the effect ([op_effect]) is the instruction's bare semantic action.

   Superinstructions go one step further: a fused segment's handler
   ([fused_handler], the Deegen-style combinator) strings the
   constituents' *effect* closures behind a single batched
   step/budget/cycle preamble that charges [Cost.fused_cost] — one
   budget check and two counter updates for the whole run instead of one
   per op.

   Observable equivalence: no fusable op can call out, profile or
   otherwise observe the counters mid-segment ([Prepared.fusable]
   excludes calls), so batching is invisible on the non-trapping path —
   the totals at every call, profile record and method exit are
   bit-identical to [exec_code] and [exec_ref]. On the trapping paths
   the handler re-aligns the counters to exactly the stepwise state
   before re-raising, and a step budget that would die mid-segment is
   replayed stepwise so the trap lands on the precise constituent. The
   differential suite pins all of this. *)

and lower_threaded (vm : vm) ~(mode : mode) ~(meth : meth_id) ~(src : fn)
    (pcode : Prepared.code) ~(stage : int) : tcode =
  let cfg = vm.fusion in
  let profiling = mode = Interpreted in
  let plan =
    if stage = 0 then Prepared.trivial_plan pcode
    else begin
      let hotness =
        match mode with
        | Compiled ->
            (* compiled code does not profile; treat every block as
               exactly threshold-hot so optimized bodies fuse throughout *)
            fun (_ : Prepared.pblock) -> cfg.Prepared.min_block_count
        | Interpreted ->
            let hot : (int, int) Hashtbl.t = Hashtbl.create 16 in
            List.iter
              (fun (b, c) -> Hashtbl.replace hot b c)
              (Profile.hot_blocks vm.profiles meth
                 ~threshold:cfg.Prepared.min_block_count);
            fun (b : Prepared.pblock) -> (
              match Hashtbl.find_opt hot b.Prepared.src_bid with
              | Some c -> c
              | None -> 0)
      in
      let plan = Prepared.plan_fusion cfg ~hotness pcode in
      List.iter
        (fun (p, sites, weight) -> note_superinst vm p ~sites ~weight)
        plan.Prepared.fp_patterns;
      plan
    end
  in
  let dispatch =
    match mode with
    | Interpreted -> vm.cost.interp_dispatch
    | Compiled -> vm.cost.compiled_dispatch
  in
  let phi_cost = dispatch + vm.cost.phi in
  let blocks = pcode.blocks in
  let nb = Array.length blocks in
  (* pc layout per block: one prologue per incoming edge when the block
     has phis (the parallel move is specialized per edge), a single
     shared prologue otherwise; then one pc per body segment; then the
     terminator. The entry block gets an extra prologue for the edgeless
     initial entry when it has phis (reaching a phi with no input is the
     same internal error the other backends report). *)
  let npcs = ref 0 in
  let alloc k =
    let p = !npcs in
    npcs := p + k;
    p
  in
  let prologue_base = Array.make nb 0 in
  let entry_prologue = ref (-1) in
  let seg_base = Array.make nb 0 in
  let term_pc = Array.make nb 0 in
  Array.iteri
    (fun bi (b : Prepared.pblock) ->
      let nphis = Array.length b.phi_dests in
      let nedges = Array.length b.pred_bids in
      prologue_base.(bi) <- alloc (if nphis = 0 then 1 else max nedges 1);
      if bi = pcode.entry && nphis > 0 then entry_prologue := alloc 1;
      seg_base.(bi) <- alloc (Array.length plan.Prepared.fp_segments.(bi));
      term_pc.(bi) <- alloc 1)
    blocks;
  let pc_of_edge (target : int) (edge : int) : int =
    let tb = blocks.(target) in
    if Array.length tb.phi_dests = 0 || Array.length tb.pred_bids = 0 then
      prologue_base.(target)
    else prologue_base.(target) + edge
  in
  let entry_pc =
    if !entry_prologue >= 0 then !entry_prologue
    else prologue_base.(pcode.entry)
  in
  let handlers : thandler array = Array.make !npcs (fun _ -> ()) in
  (* one pre-decoded op -> its bare semantic action on the frame, no
     bookkeeping, no dispatch. The int/int binop fast paths fold the
     operator match into the closure; anything else falls back to
     [eval_binop], which reproduces the reference trap behavior
     exactly. *)
  let op_effect (pi : Prepared.pinstr) : tstate -> unit =
    let dest = pi.dest in
    match pi.op with
    | Pconst v -> fun st -> Array.unsafe_set st.t_frame dest v
    | Pparam k ->
        fun st ->
          let args = st.t_args in
          if k >= Array.length args then trap "internal: missing argument %d" k;
          Array.unsafe_set st.t_frame dest (Array.unsafe_get args k)
    | Punop (Neg, a) ->
        fun st ->
          let f = st.t_frame in
          Array.unsafe_set f dest (Vint (-as_int (Array.unsafe_get f a)))
    | Punop (Not, a) ->
        fun st ->
          let f = st.t_frame in
          Array.unsafe_set f dest (vbool (not (as_bool (Array.unsafe_get f a))))
    | Pbinop (op, a, b) -> (
        match op with
        | Add ->
            fun st ->
              let f = st.t_frame in
              (match (Array.unsafe_get f a, Array.unsafe_get f b) with
              | Vint x, Vint y -> Array.unsafe_set f dest (Vint (x + y))
              | va, vb -> Array.unsafe_set f dest (eval_binop Add va vb))
        | Sub ->
            fun st ->
              let f = st.t_frame in
              (match (Array.unsafe_get f a, Array.unsafe_get f b) with
              | Vint x, Vint y -> Array.unsafe_set f dest (Vint (x - y))
              | va, vb -> Array.unsafe_set f dest (eval_binop Sub va vb))
        | Mul ->
            fun st ->
              let f = st.t_frame in
              (match (Array.unsafe_get f a, Array.unsafe_get f b) with
              | Vint x, Vint y -> Array.unsafe_set f dest (Vint (x * y))
              | va, vb -> Array.unsafe_set f dest (eval_binop Mul va vb))
        | Div ->
            fun st ->
              let f = st.t_frame in
              (match (Array.unsafe_get f a, Array.unsafe_get f b) with
              | Vint x, Vint y ->
                  if y = 0 then trap "division by zero"
                  else Array.unsafe_set f dest (Vint (x / y))
              | va, vb -> Array.unsafe_set f dest (eval_binop Div va vb))
        | Rem ->
            fun st ->
              let f = st.t_frame in
              (match (Array.unsafe_get f a, Array.unsafe_get f b) with
              | Vint x, Vint y ->
                  if y = 0 then trap "remainder by zero"
                  else Array.unsafe_set f dest (Vint (x mod y))
              | va, vb -> Array.unsafe_set f dest (eval_binop Rem va vb))
        | Lt ->
            fun st ->
              let f = st.t_frame in
              (match (Array.unsafe_get f a, Array.unsafe_get f b) with
              | Vint x, Vint y -> Array.unsafe_set f dest (vbool (x < y))
              | va, vb -> Array.unsafe_set f dest (eval_binop Lt va vb))
        | Le ->
            fun st ->
              let f = st.t_frame in
              (match (Array.unsafe_get f a, Array.unsafe_get f b) with
              | Vint x, Vint y -> Array.unsafe_set f dest (vbool (x <= y))
              | va, vb -> Array.unsafe_set f dest (eval_binop Le va vb))
        | Gt ->
            fun st ->
              let f = st.t_frame in
              (match (Array.unsafe_get f a, Array.unsafe_get f b) with
              | Vint x, Vint y -> Array.unsafe_set f dest (vbool (x > y))
              | va, vb -> Array.unsafe_set f dest (eval_binop Gt va vb))
        | Ge ->
            fun st ->
              let f = st.t_frame in
              (match (Array.unsafe_get f a, Array.unsafe_get f b) with
              | Vint x, Vint y -> Array.unsafe_set f dest (vbool (x >= y))
              | va, vb -> Array.unsafe_set f dest (eval_binop Ge va vb))
        | Eq ->
            fun st ->
              let f = st.t_frame in
              Array.unsafe_set f dest
                (vbool (value_eq (Array.unsafe_get f a) (Array.unsafe_get f b)))
        | Ne ->
            fun st ->
              let f = st.t_frame in
              Array.unsafe_set f dest
                (vbool
                   (not (value_eq (Array.unsafe_get f a) (Array.unsafe_get f b))))
        | (Shl | Shr | Band | Bor | Bxor | Andb | Orb | Xorb | Eqb) as op ->
            fun st ->
              let f = st.t_frame in
              Array.unsafe_set f dest
                (eval_binop op (Array.unsafe_get f a) (Array.unsafe_get f b)))
    | Pcall { callee; cargs; site; ic } ->
        let n = Array.length cargs in
        fun st ->
          let f = st.t_frame in
          let vals = Array.make n Vunit in
          for j = 0 to n - 1 do
            Array.unsafe_set vals j
              (Array.unsafe_get f (Array.unsafe_get cargs j))
          done;
          Array.unsafe_set f dest
            (do_call vm ?ic ~profiling ~meth ~callee ~site vals)
    | Pnew { cls; defaults } ->
        fun st ->
          Array.unsafe_set st.t_frame dest
            (Vobj { o_cls = cls; fields = Array.copy defaults })
    | Pgetfield { obj; slot; fname } ->
        fun st ->
          let f = st.t_frame in
          let o = as_obj (Array.unsafe_get f obj) in
          if slot >= Array.length o.fields then
            trap "internal: bad field slot for %s" fname;
          Array.unsafe_set f dest o.fields.(slot)
    | Psetfield { obj; slot; fname; value } ->
        fun st ->
          let f = st.t_frame in
          let o = as_obj (Array.unsafe_get f obj) in
          if slot >= Array.length o.fields then
            trap "internal: bad field slot for %s" fname;
          o.fields.(slot) <- Array.unsafe_get f value;
          Array.unsafe_set f dest Vunit
    | Pnewarray { ety; len } ->
        fun st ->
          let f = st.t_frame in
          let n = as_int (Array.unsafe_get f len) in
          vm.cycles <- vm.cycles + Cost.alloc_fields_cost vm.cost n;
          Array.unsafe_set f dest (alloc_array ety n)
    | Parrayget { arr; idx } ->
        fun st ->
          let f = st.t_frame in
          let a = as_arr (Array.unsafe_get f arr) in
          let i = as_int (Array.unsafe_get f idx) in
          if i < 0 || i >= Array.length a.elems then
            trap "array index %d out of bounds" i;
          Array.unsafe_set f dest (Array.unsafe_get a.elems i)
    | Parrayset { arr; idx; value } ->
        fun st ->
          let f = st.t_frame in
          let a = as_arr (Array.unsafe_get f arr) in
          let i = as_int (Array.unsafe_get f idx) in
          if i < 0 || i >= Array.length a.elems then
            trap "array index %d out of bounds" i;
          Array.unsafe_set a.elems i (Array.unsafe_get f value);
          Array.unsafe_set f dest Vunit
    | Parraylen a ->
        fun st ->
          let f = st.t_frame in
          Array.unsafe_set f dest
            (Vint (Array.length (as_arr (Array.unsafe_get f a)).elems))
    | Ptypetest { obj; cls } ->
        fun st ->
          let f = st.t_frame in
          (match Array.unsafe_get f obj with
          | Vobj o ->
              Array.unsafe_set f dest
                (vbool (Ir.Program.is_subclass vm.prog ~sub:o.o_cls ~sup:cls))
          | Vnull -> Array.unsafe_set f dest vfalse
          | _ -> trap "typetest on a non-object")
    | Pintrinsic (intr, ia) ->
        fun st ->
          let f = st.t_frame in
          let a k = f.(ia.(k)) in
          let result =
            match intr with
            | Iprint_int ->
                Buffer.add_string vm.out (string_of_int (as_int (a 0)));
                Vunit
            | Iprint_bool ->
                Buffer.add_string vm.out (string_of_bool (as_bool (a 0)));
                Vunit
            | Iprint_str ->
                Buffer.add_string vm.out (as_str (a 0));
                Vunit
            | Istr_len -> Vint (String.length (as_str (a 0)))
            | Istr_get ->
                let s = as_str (a 0) and i = as_int (a 1) in
                if i < 0 || i >= String.length s then
                  trap "string index %d out of bounds" i;
                Vint (Char.code s.[i])
            | Istr_eq -> vbool (as_str (a 0) = as_str (a 1))
            | Iabs -> Vint (abs (as_int (a 0)))
            | Imin -> Vint (min (as_int (a 0)) (as_int (a 1)))
            | Imax -> Vint (max (as_int (a 0)) (as_int (a 1)))
          in
          Array.unsafe_set f dest result
  in
  (* a singleton handler: step, budget check, charge, effect, fall
     through to the successor handler (a tail call — the dispatch loop
     is entered once per activation, not once per op). Straight-line
     successors are wired bottom-up, so [nexth] is the successor closure
     itself, not an index. *)
  let op_handler ~(nexth : thandler) (pi : Prepared.pinstr) : thandler =
    let c = dispatch + pi.static_cost in
    let eff = op_effect pi in
    fun st ->
      vm.steps <- vm.steps + 1;
      if vm.steps > vm.max_steps then trap "step budget exceeded";
      vm.cycles <- vm.cycles + c;
      eff st;
      nexth st
  in
  (* the Deegen-style superinstruction builder: the fused handler is
     composed from the constituents' effect closures — never hand-written
     per pattern — behind one batched step/budget/cycle preamble that
     charges [Cost.fused_cost] for the whole run. Nothing inside a
     fusable run can observe the counters ([Prepared.fusable] excludes
     calls, and profiling happens at block entries and branches), so the
     only places the batching could show are the trapping paths, which
     re-align the counters to the exact stepwise state: a budget that
     would die mid-segment is replayed stepwise so the trap fires on the
     precise constituent, and an effect trap un-charges the constituents
     that never ran before re-raising. *)
  let fused_handler ~(nexth : thandler) (pis : Prepared.pinstr array) : thandler =
    let n = Array.length pis in
    let effs = Array.map op_effect pis in
    let costs =
      Array.map (fun (pi : Prepared.pinstr) -> dispatch + pi.static_cost) pis
    in
    let total =
      Cost.fused_cost ~dispatch
        (Array.to_list
           (Array.map (fun (pi : Prepared.pinstr) -> pi.static_cost) pis))
    in
    (* prefix.(j): what the stepwise engines have charged after the
       first j constituents (static parts only — dynamic charges, e.g.
       allocation, always go straight to [vm.cycles]) *)
    let prefix = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      prefix.(i + 1) <- prefix.(i) + costs.(i)
    done;
    fun st ->
      if vm.steps + n > vm.max_steps then begin
        (* the step budget dies inside this segment: replay stepwise *)
        let i = ref 0 in
        while !i < n do
          vm.steps <- vm.steps + 1;
          if vm.steps > vm.max_steps then trap "step budget exceeded";
          vm.cycles <- vm.cycles + costs.(!i);
          effs.(!i) st;
          incr i
        done;
        nexth st
      end
      else begin
        vm.steps <- vm.steps + n;
        vm.cycles <- vm.cycles + total;
        let i = ref 0 in
        (try
           while !i < n do
             (Array.unsafe_get effs !i) st;
             incr i
           done
         with e ->
           (* constituent !i trapped: un-charge the ones that never ran
              (their dynamic charges never happened either) *)
           vm.steps <- vm.steps - (n - !i - 1);
           vm.cycles <- vm.cycles - (total - prefix.(!i + 1));
           raise e);
        nexth st
      end
  in
  (* block-entry prologue: the block step/budget tick, the profiling
     tier's lazily-bound block-counter tick, then the phi parallel move
     specialized for one incoming edge *)
  let prologue_handler (b : Prepared.pblock) ~(edge : int) ~(nexth : thandler) :
      thandler =
    let holder = b.prof in
    let src_bid = b.src_bid in
    let nphis = Array.length b.phi_dests in
    let tick_block () =
      vm.steps <- vm.steps + 1;
      if vm.steps > vm.max_steps then trap "step budget exceeded";
      if profiling then
        match holder.cell with
        | Some c -> incr c
        | None ->
            let c = Profile.block_cell vm.profiles meth src_bid in
            holder.cell <- Some c;
            incr c
    in
    (* the common no-phi prologues inline the tick — they run once per
       block entry, squarely on the hot path *)
    if nphis = 0 then
      if profiling then fun st ->
        vm.steps <- vm.steps + 1;
        if vm.steps > vm.max_steps then trap "step budget exceeded";
        (match holder.cell with
        | Some c -> incr c
        | None ->
            let c = Profile.block_cell vm.profiles meth src_bid in
            holder.cell <- Some c;
            incr c);
        nexth st
      else fun st ->
        vm.steps <- vm.steps + 1;
        if vm.steps > vm.max_steps then trap "step budget exceeded";
        nexth st
    else begin
      let srcs, prev =
        if edge < 0 then (Array.make nphis (-1), -1)
        else (b.phi_srcs.(edge), b.pred_bids.(edge))
      in
      let dests = b.phi_dests in
      let clean = Array.for_all (fun s -> s >= 0) srcs in
      if clean && nphis = 1 then begin
        let d0 = dests.(0) and s0 = srcs.(0) in
        fun st ->
          tick_block ();
          vm.steps <- vm.steps + 1;
          vm.cycles <- vm.cycles + phi_cost;
          let f = st.t_frame in
          Array.unsafe_set f d0 (Array.unsafe_get f s0);
          nexth st
      end
      else if clean then begin
        (* simultaneous assignment through a scratch row; sharing the
           scratch across activations is safe — nothing re-enters this
           code object mid-move *)
        let tmp = Array.make nphis Vunit in
        fun st ->
          tick_block ();
          vm.steps <- vm.steps + nphis;
          vm.cycles <- vm.cycles + (nphis * phi_cost);
          let f = st.t_frame in
          for i = 0 to nphis - 1 do
            Array.unsafe_set tmp i
              (Array.unsafe_get f (Array.unsafe_get srcs i))
          done;
          for i = 0 to nphis - 1 do
            Array.unsafe_set f (Array.unsafe_get dests i)
              (Array.unsafe_get tmp i)
          done;
          nexth st
      end
      else
        (* a phi with no input for this edge (the edgeless initial entry,
           or ill-formed SSA): replicate the stepwise trap *)
        let vids = b.phi_vids in
        fun st ->
          tick_block ();
          let f = st.t_frame in
          let tmp = Array.make nphis Vunit in
          for i = 0 to nphis - 1 do
            vm.steps <- vm.steps + 1;
            vm.cycles <- vm.cycles + phi_cost;
            let s = srcs.(i) in
            if s < 0 then
              trap "internal: phi v%d has no input for edge b%d" vids.(i) prev;
            tmp.(i) <- f.(s)
          done;
          for i = 0 to nphis - 1 do
            f.(dests.(i)) <- tmp.(i)
          done;
          nexth st
    end
  in
  (* OSR checkpoint guards, spliced between a block's prologue and its
     first body segment — but only for loop headers (the [osr_headers]
     hook), so every other block's wiring is untouched. A transfer stores
     the continuation's result in [t_ret] and does not call the next
     handler: the tail-call chain simply unwinds to [exec_threaded]. *)
  let enter_guard (b : Prepared.pblock) ~(nexth : thandler) : thandler =
    let holder = b.prof in
    fun st ->
      match holder.cell with
      | Some c when (not b.osr_skip) && !c >= vm.osr_threshold -> (
          match vm.on_osr meth b.src_bid with
          | Osr_no ->
              b.osr_skip <- true;
              nexth st
          | Osr_wait -> nexth st
          | Osr_enter tr ->
              let f = st.t_frame in
              st.t_ret <- osr_call vm ~abort:true tr (fun v -> f.(v)))
      | _ -> nexth st
  in
  let exit_guard (b : Prepared.pblock) ~(nexth : thandler) : thandler =
    fun st ->
      if vm.deopt_epoch <> st.t_depoch then (
        match vm.on_osr_exit meth src b.src_bid with
        | Exit_stay ->
            st.t_depoch <- vm.deopt_epoch;
            nexth st
        | Exit_watch -> nexth st
        | Exit_to tr ->
            let f = st.t_frame in
            st.t_ret <- osr_call vm tr (fun v -> f.(v)))
      else nexth st
  in
  let term_handler (b : Prepared.pblock) : thandler =
    let tc = b.term_cost in
    match b.term with
    | Preturn r ->
        fun st ->
          vm.cycles <- vm.cycles + tc;
          st.t_ret <- Array.unsafe_get st.t_frame r
    | Pgoto { target; edge } ->
        let next = pc_of_edge target edge in
        fun st ->
          vm.cycles <- vm.cycles + tc;
          (Array.unsafe_get handlers next) st
    | Pif { cond; site; tb; tedge; fb; fedge; bprof } ->
        let tpc = pc_of_edge tb tedge and fpc = pc_of_edge fb fedge in
        if profiling then fun st ->
          vm.cycles <- vm.cycles + tc;
          let taken = as_bool (Array.unsafe_get st.t_frame cond) in
          (match bprof.brec with
          | Some br -> Profile.brec_record br ~taken
          | None ->
              let br = Profile.branch_cell vm.profiles site in
              bprof.brec <- Some br;
              Profile.brec_record br ~taken);
          if taken then (Array.unsafe_get handlers tpc) st
          else (Array.unsafe_get handlers fpc) st
        else fun st ->
          vm.cycles <- vm.cycles + tc;
          if as_bool (Array.unsafe_get st.t_frame cond) then
            (Array.unsafe_get handlers tpc) st
          else (Array.unsafe_get handlers fpc) st
    | Punreachable ->
        fun _st ->
          vm.cycles <- vm.cycles + tc;
          trap "reached an unreachable block in %s" pcode.fname
    | Pdead b' ->
        fun _st ->
          vm.cycles <- vm.cycles + tc;
          invalid_arg
            (Printf.sprintf "Fn.block: dead block b%d in %s" b' pcode.fname)
  in
  (* wire each block bottom-up — terminator, then body segments in
     reverse, then the prologues — so every straight-line transition
     captures its successor closure directly; only branch targets (and
     call returns) go back through the pc-indexed array *)
  Array.iteri
    (fun bi (b : Prepared.pblock) ->
      let segs = plan.Prepared.fp_segments.(bi) in
      let nsegs = Array.length segs in
      let first = if nsegs = 0 then term_pc.(bi) else seg_base.(bi) in
      handlers.(term_pc.(bi)) <- term_handler b;
      for si = nsegs - 1 downto 0 do
        let seg = segs.(si) in
        let nexth =
          handlers.(if si = nsegs - 1 then term_pc.(bi) else seg_base.(bi) + si + 1)
        in
        handlers.(seg_base.(bi) + si) <-
          (if seg.Prepared.seg_len = 1 then
             op_handler ~nexth b.body.(seg.Prepared.seg_start)
           else
             fused_handler ~nexth
               (Array.sub b.body seg.Prepared.seg_start seg.Prepared.seg_len))
      done;
      let firsth = handlers.(first) in
      let firsth =
        if profiling then
          if vm.osr_threshold < max_int && vm.osr_headers meth src b.src_bid
          then enter_guard b ~nexth:firsth
          else firsth
        else if vm.osr_exit_armed && vm.osr_headers meth src b.src_bid then
          exit_guard b ~nexth:firsth
        else firsth
      in
      let nphis = Array.length b.phi_dests in
      let nedges = Array.length b.pred_bids in
      if nphis = 0 || nedges = 0 then
        handlers.(prologue_base.(bi)) <-
          prologue_handler b ~edge:(-1) ~nexth:firsth
      else
        for e = 0 to nedges - 1 do
          handlers.(prologue_base.(bi) + e) <-
            prologue_handler b ~edge:e ~nexth:firsth
        done;
      if bi = pcode.entry && nphis > 0 then
        handlers.(!entry_prologue) <-
          prologue_handler b ~edge:(-1) ~nexth:firsth)
    blocks;
  {
    t_handlers = handlers;
    t_entry = entry_pc;
    t_nregs = pcode.nregs;
    t_fname = pcode.fname;
    t_stage = stage;
  }

and exec_threaded (vm : vm) (t : tcode) (args : value array) : value =
  vm.depth <- vm.depth + 1;
  if vm.depth > vm.max_depth then trap "call stack overflow in %s" t.t_fname;
  let st =
    { t_frame = Array.make t.t_nregs Vunit; t_args = args; t_ret = Vunit;
      t_depoch = vm.deopt_epoch }
  in
  (* one entry into the handler chain; every transition inside is a tail
     call, and the return handler's plain return unwinds it *)
  (Array.unsafe_get t.t_handlers t.t_entry) st;
  vm.depth <- vm.depth - 1;
  st.t_ret

(* ---------- reference backend: the direct IR walker ---------- *)

and exec_ref (vm : vm) ~(mode : mode) ~(meth : meth_id) (fn : fn) (args : value array) :
    value =
  vm.depth <- vm.depth + 1;
  if vm.depth > vm.max_depth then trap "call stack overflow in %s" fn.fname;
  let dispatch =
    match mode with
    | Interpreted -> vm.cost.interp_dispatch
    | Compiled -> vm.cost.compiled_dispatch
  in
  let profiling = mode = Interpreted in
  let env : (vid, value) Hashtbl.t = Hashtbl.create 64 in
  let get v =
    match Hashtbl.find_opt env v with
    | Some value -> value
    | None -> trap "internal: use of unevaluated v%d in %s" v fn.fname
  in
  let eval_instr (i : instr) : unit =
    vm.steps <- vm.steps + 1;
    if vm.steps > vm.max_steps then trap "step budget exceeded";
    charge vm (dispatch + Cost.instr_cost vm.cost i.kind);
    let result =
      match i.kind with
      | Const (Cint n) -> Vint n
      | Const (Cbool b) -> Vbool b
      | Const (Cstring s) -> Vstr s
      | Const Cunit -> Vunit
      | Const Cnull -> Vnull
      | Param k ->
          if k >= Array.length args then trap "internal: missing argument %d" k
          else args.(k)
      | Unop (op, a) -> eval_unop op (get a)
      | Binop (op, a, b) -> eval_binop op (get a) (get b)
      | Phi _ -> assert false (* phis are evaluated by the block driver *)
      | Call { callee; args = cargs; site; _ } ->
          do_call vm ~profiling ~meth ~callee ~site
            (Array.of_list (List.map get cargs))
      | New c ->
          charge vm (Cost.alloc_fields_cost vm.cost (Array.length (Ir.Program.cls vm.prog c).layout));
          alloc_obj vm.prog c
      | GetField { obj; slot; fname; _ } -> (
          let o = as_obj (get obj) in
          if slot >= Array.length o.fields then trap "internal: bad field slot for %s" fname
          else o.fields.(slot))
      | SetField { obj; slot; fname; value } ->
          let o = as_obj (get obj) in
          if slot >= Array.length o.fields then trap "internal: bad field slot for %s" fname;
          o.fields.(slot) <- get value;
          Vunit
      | NewArray { ety; len } ->
          let n = as_int (get len) in
          charge vm (Cost.alloc_fields_cost vm.cost n);
          alloc_array ety n
      | ArrayGet { arr; idx; _ } ->
          let a = as_arr (get arr) in
          let i = as_int (get idx) in
          if i < 0 || i >= Array.length a.elems then trap "array index %d out of bounds" i;
          a.elems.(i)
      | ArraySet { arr; idx; value } ->
          let a = as_arr (get arr) in
          let i = as_int (get idx) in
          if i < 0 || i >= Array.length a.elems then trap "array index %d out of bounds" i;
          a.elems.(i) <- get value;
          Vunit
      | ArrayLen a -> Vint (Array.length (as_arr (get a)).elems)
      | TypeTest { obj; cls } -> (
          match get obj with
          | Vobj o -> Vbool (Ir.Program.is_subclass vm.prog ~sub:o.o_cls ~sup:cls)
          | Vnull -> Vbool false
          | _ -> trap "typetest on a non-object")
      | Intrinsic (intr, iargs) -> (
          let a k = get (List.nth iargs k) in
          match intr with
          | Iprint_int -> Buffer.add_string vm.out (string_of_int (as_int (a 0))); Vunit
          | Iprint_bool -> Buffer.add_string vm.out (string_of_bool (as_bool (a 0))); Vunit
          | Iprint_str -> Buffer.add_string vm.out (as_str (a 0)); Vunit
          | Istr_len -> Vint (String.length (as_str (a 0)))
          | Istr_get ->
              let s = as_str (a 0) and i = as_int (a 1) in
              if i < 0 || i >= String.length s then trap "string index %d out of bounds" i;
              Vint (Char.code s.[i])
          | Istr_eq -> Vbool (as_str (a 0) = as_str (a 1))
          | Iabs -> Vint (abs (as_int (a 0)))
          | Imin -> Vint (min (as_int (a 0)) (as_int (a 1)))
          | Imax -> Vint (max (as_int (a 0)) (as_int (a 1))))
    in
    Hashtbl.replace env i.id result
  in
  (* OSR: compiled activations re-validate against the engine at loop
     headers only after an invalidation moved the deopt epoch *)
  let depoch = ref vm.deopt_epoch in
  let rec run (prev : bid) (b : bid) : value =
    (* blocks count as steps too: an instruction-free cycle (possible after
       aggressive DCE) must still exhaust the step budget *)
    vm.steps <- vm.steps + 1;
    if vm.steps > vm.max_steps then trap "step budget exceeded";
    if profiling then Profile.record_block vm.profiles meth b;
    let blk = Ir.Fn.block fn b in
    (* phis evaluate simultaneously with respect to the incoming edge *)
    let rec eval_phis = function
      | v :: rest -> (
          match Ir.Fn.kind fn v with
          | Phi { inputs; _ } ->
              vm.steps <- vm.steps + 1;
              charge vm (dispatch + vm.cost.phi);
              let value =
                match List.assoc_opt prev inputs with
                | Some pv -> get pv
                | None -> trap "internal: phi v%d has no input for edge b%d" v prev
              in
              (v, value) :: eval_phis rest
          | _ -> [])
      | [] -> []
    in
    let phi_values = eval_phis blk.instrs in
    List.iter (fun (v, value) -> Hashtbl.replace env v value) phi_values;
    (* OSR checkpoints sit after the phi moves, so the loop-carried values
       are current when a transfer reads them *)
    if profiling then
      if
        vm.osr_threshold < max_int
        && Profile.block_count vm.profiles meth b >= vm.osr_threshold
      then (
        match vm.on_osr meth b with
        | Osr_no | Osr_wait -> finish b blk
        | Osr_enter tr -> osr_call vm ~abort:true tr get)
      else finish b blk
    else if vm.deopt_epoch <> !depoch then (
      match vm.on_osr_exit meth fn b with
      | Exit_stay ->
          depoch := vm.deopt_epoch;
          finish b blk
      | Exit_watch -> finish b blk
      | Exit_to tr -> osr_call vm tr get)
    else finish b blk
  and finish (b : bid) (blk : block) : value =
    let non_phis =
      List.filter (fun v -> not (Ir.Instr.is_phi (Ir.Fn.kind fn v))) blk.instrs
    in
    List.iter (fun v -> eval_instr (Ir.Fn.instr fn v)) non_phis;
    charge vm (Cost.term_cost vm.cost blk.term);
    match blk.term with
    | Goto b' -> run b b'
    | If { cond; site; tb; fb } ->
        let taken = as_bool (get cond) in
        if profiling then Profile.record_branch vm.profiles site ~taken;
        run b (if taken then tb else fb)
    | Return v -> get v
    | Unreachable -> trap "reached an unreachable block in %s" fn.fname
  in
  let result = run (-1) fn.entry in
  vm.depth <- vm.depth - 1;
  result

and do_call (vm : vm) ?ic ~profiling ~(meth : meth_id) ~(callee : callee)
    ~(site : site) (args : value array) : value =
  match callee with
  | Direct m ->
      charge vm (Cost.call_overhead vm.cost ~virtual_:false ~targets:1);
      invoke vm m args
  | Virtual sel -> (
      if Array.length args = 0 then trap "virtual call with no receiver";
      let o = as_obj args.(0) in
      match ic with
      | Some ic when vm.ic_enabled -> (
          (* synthetic sites are typeswitch fallbacks: reaching one in
             compiled code means the speculation missed — an IC-cached
             dispatch must report it exactly like the slow path does *)
          if (not profiling) && site.sidx < 0 then vm.on_spec_miss meth site;
          match Ic.probe ic o.o_cls with
          | Some e ->
              (* cached: the scan resolved the target. The entry's count
                 cell aliases the profile's receiver-histogram cell, so
                 recording the receiver is one increment. *)
              ic.hits <- ic.hits + 1;
              if profiling then incr e.e_count;
              let observed = Profile.receiver_count vm.profiles site in
              charge vm
                (Cost.call_overhead vm.cost ~virtual_:true ~targets:(max observed 1));
              invoke vm e.e_target args
          | None -> (
              Ic.note_miss ic;
              let cell =
                if profiling then begin
                  let c =
                    Profile.rsite_cell (Profile.receiver_site vm.profiles site) o.o_cls
                  in
                  incr c;
                  Some c
                end
                else
                  (* non-profiling tiers never create profile entries; an
                     existing cell is still shared so a later profiled hit
                     through this entry counts into the real histogram *)
                  Option.bind
                    (Profile.find_receiver_site vm.profiles site)
                    (fun rs -> Profile.find_rsite_cell rs o.o_cls)
              in
              let observed = Profile.receiver_count vm.profiles site in
              charge vm
                (Cost.call_overhead vm.cost ~virtual_:true ~targets:(max observed 1));
              match Ir.Program.resolve vm.prog o.o_cls sel with
              | Some m ->
                  Ic.add ic
                    { e_cls = o.o_cls; e_target = m;
                      e_count = (match cell with Some c -> c | None -> ref 0) };
                  invoke vm m args
              | None ->
                  trap "class %s does not understand %s"
                    (Ir.Program.cls vm.prog o.o_cls).c_name sel))
      | _ -> (
          if profiling then Profile.record_receiver vm.profiles site o.o_cls;
          (* synthetic sites are typeswitch fallbacks: reaching one in compiled
             code means the speculation missed *)
          if (not profiling) && site.sidx < 0 then vm.on_spec_miss meth site;
          let observed = Profile.receiver_count vm.profiles site in
          charge vm (Cost.call_overhead vm.cost ~virtual_:true ~targets:(max observed 1));
          match Ir.Program.resolve vm.prog o.o_cls sel with
          | Some m -> invoke vm m args
          | None ->
              trap "class %s does not understand %s"
                (Ir.Program.cls vm.prog o.o_cls).c_name sel))

(* Runs a program's [main]; returns its result value. *)
let run_main (vm : vm) : value =
  if vm.prog.main < 0 then trap "program has no main";
  invoke vm vm.prog.main [| Vunit |]

(* Convenience for tests: run an arbitrary method by name. *)
let run_meth (vm : vm) (name : string) (args : value list) : value =
  match Ir.Program.find_meth vm.prog name with
  | Some m -> invoke vm m (Array.of_list args)
  | None -> trap "no method named %s" name
