(* The SelVM execution engine: runs method bodies in either tier and
   doubles as the "compiled code" executor.

   The same evaluator runs both tiers; the [mode] controls (a) the
   per-instruction dispatch penalty from the cost model and (b) whether
   profiles are collected — interpreted code profiles (like the HotSpot
   interpreter / C1), compiled code does not (like C2/Graal code).

   Two execution backends implement identical observable semantics:

   - [Prepared] (default): bodies are translated once into dense
     [Prepared.code] objects — flat register frames, edge-resolved phis,
     pre-decoded instructions — and cached per (method, tier). This is the
     production path; per-step work is a handful of array reads.
   - [Reference]: the original direct IR walker, kept as the executable
     specification the differential suite checks the prepared engine
     against (test/test_differential.ml).

   Prepared-cache coherence: entries are keyed by method and tier and
   remembered together with the physical [fn] they were translated from; a
   lookup that sees a different body (the JIT installed or replaced code)
   re-prepares. [Jit.Engine] additionally calls [invalidate_code] on every
   install and deoptimization, which drops the stale entries eagerly and
   bumps [code_epoch] — the version counter tests observe.

   Two hooks connect the VM to the JIT engine without a dependency cycle:
   [code] looks up installed compiled code for a method, and [on_entry]
   fires at every method entry so the engine can detect hotness and
   trigger compilation. *)

open Ir.Types
open Values

type mode = Interpreted | Compiled

type backend = Prepared | Reference

(* A cache entry remembers the physical body it was translated from plus
   the profile (identity and generation) its baked counter cells and IC
   receiver cells point into: a body replacement, a profile swap or a
   [Profile.clear] each invalidate the entry at the next lookup. *)
type prepared_entry = {
  src : fn;
  prof : Profile.t;
  gen : int;
  pcode : Prepared.code;
}

(* Accumulated counters of inline caches whose code object was dropped
   (install/invalidate/replace), keyed by site so repeated recompilations
   of a method fold into one row. *)
type ic_stat = {
  st_site : site;
  st_selector : string;
  mutable st_hits : int;
  mutable st_misses : int;
  mutable st_mega : int;
}

type vm = {
  prog : program;
  mutable profiles : Profile.t;
  cost : Cost.t;
  out : Buffer.t;
  mutable cycles : int;          (* simulated execution clock *)
  mutable code : meth_id -> fn option;
  mutable on_entry : meth_id -> unit;
  (* fired when compiled code reaches the residual virtual call of a
     typeswitch (a synthetic site): the speculation missed *)
  mutable on_spec_miss : meth_id -> site -> unit;
  mutable steps : int;
  mutable max_steps : int;
  mutable depth : int;
  max_depth : int;
  mutable backend : backend;
  (* prepared-code cache, keyed by meth_id * 2 + tier *)
  prepared_cache : (int, prepared_entry) Hashtbl.t;
  mutable code_epoch : int;      (* bumped by every [invalidate_code] *)
  mutable ic_enabled : bool;     (* inline caches on virtual dispatch *)
  ic_retired : (site, ic_stat) Hashtbl.t;
      (* counters of ICs retired with their code objects *)
  mutable attrib : Attribution.t option;
      (* per-method cycle attribution; None (default) costs nothing *)
}

let create ?(cost = Cost.default) ?(max_steps = 500_000_000)
    ?(backend = Prepared) (prog : program) : vm =
  {
    prog;
    profiles = Profile.create ();
    cost;
    out = Buffer.create 256;
    cycles = 0;
    code = (fun _ -> None);
    on_entry = (fun _ -> ());
    on_spec_miss = (fun _ _ -> ());
    steps = 0;
    max_steps;
    depth = 0;
    max_depth = 10_000;
    backend;
    prepared_cache = Hashtbl.create 64;
    code_epoch = 0;
    ic_enabled = true;
    ic_retired = Hashtbl.create 16;
    attrib = None;
  }

let output vm = Buffer.contents vm.out

let enable_attribution (vm : vm) : Attribution.t =
  match vm.attrib with
  | Some a -> a
  | None ->
      let a = Attribution.create () in
      vm.attrib <- Some a;
      a

let record_deopt (vm : vm) (m : meth_id) : unit =
  match vm.attrib with Some a -> Attribution.record_deopt a m | None -> ()

let charge vm n = vm.cycles <- vm.cycles + n

let cache_key (m : meth_id) (mode : mode) : int =
  (m * 2) + match mode with Interpreted -> 0 | Compiled -> 1

(* Folds a dropped code object's IC counters into [vm.ic_retired] so
   install/invalidate cannot erase the dispatch statistics, then zeroes
   them (a second retirement of the same object is a no-op). *)
let retire_ics (vm : vm) (pcode : Prepared.code) : unit =
  Array.iter
    (fun (ic : Ic.t) ->
      if Ic.dispatches ic > 0 then begin
        let st =
          match Hashtbl.find_opt vm.ic_retired ic.ic_site with
          | Some st -> st
          | None ->
              let st =
                { st_site = ic.ic_site; st_selector = ic.selector;
                  st_hits = 0; st_misses = 0; st_mega = 0 }
              in
              Hashtbl.replace vm.ic_retired ic.ic_site st;
              st
        in
        st.st_hits <- st.st_hits + ic.hits;
        st.st_misses <- st.st_misses + ic.misses;
        st.st_mega <- st.st_mega + ic.mega;
        Ic.reset_stats ic
      end)
    pcode.ics

let invalidate_code (vm : vm) (m : meth_id) : unit =
  let drop key =
    match Hashtbl.find_opt vm.prepared_cache key with
    | Some e ->
        retire_ics vm e.pcode;
        Hashtbl.remove vm.prepared_cache key
    | None -> ()
  in
  drop (cache_key m Interpreted);
  drop (cache_key m Compiled);
  vm.code_epoch <- vm.code_epoch + 1

(* Cache lookup guarded by physical identity of the source body (even if
   an install slipped past [invalidate_code], a replaced body can never
   execute stale prepared code) and by profile identity + generation (a
   swapped or cleared profile invalidates the baked counter cells). *)
let prepared_for (vm : vm) ~(mode : mode) (m : meth_id) (fn : fn) : Prepared.code =
  let key = cache_key m mode in
  match Hashtbl.find_opt vm.prepared_cache key with
  | Some e
    when e.src == fn && e.prof == vm.profiles
         && e.gen = Profile.generation vm.profiles ->
      e.pcode
  | stale ->
      (match stale with Some e -> retire_ics vm e.pcode | None -> ());
      let pcode = Prepared.prepare ~cost:vm.cost vm.prog fn in
      Hashtbl.replace vm.prepared_cache key
        { src = fn; prof = vm.profiles;
          gen = Profile.generation vm.profiles; pcode };
      pcode

(* Per-site IC statistics: live caches plus retired counters, merged by
   site, ordered by (method, site ordinal). A site can contribute from
   several live code objects once inlining copies it into other methods'
   compiled bodies. *)
let ic_stats (vm : vm) : ic_stat list =
  let acc = Hashtbl.create 16 in
  let fold site selector h m g =
    if h + m + g > 0 then
      match Hashtbl.find_opt acc site with
      | Some st ->
          st.st_hits <- st.st_hits + h;
          st.st_misses <- st.st_misses + m;
          st.st_mega <- st.st_mega + g
      | None ->
          Hashtbl.replace acc site
            { st_site = site; st_selector = selector;
              st_hits = h; st_misses = m; st_mega = g }
  in
  Hashtbl.iter
    (fun site (st : ic_stat) ->
      fold site st.st_selector st.st_hits st.st_misses st.st_mega)
    vm.ic_retired;
  Hashtbl.iter
    (fun _ (e : prepared_entry) ->
      Array.iter
        (fun (ic : Ic.t) -> fold ic.ic_site ic.selector ic.hits ic.misses ic.mega)
        e.pcode.ics)
    vm.prepared_cache;
  Hashtbl.fold (fun _ st acc -> st :: acc) acc []
  |> List.sort (fun a b ->
         compare (a.st_site.sm, a.st_site.sidx) (b.st_site.sm, b.st_site.sidx))

let eval_binop (op : binop) (a : value) (b : value) : value =
  match op with
  | Add -> Vint (as_int a + as_int b)
  | Sub -> Vint (as_int a - as_int b)
  | Mul -> Vint (as_int a * as_int b)
  | Div ->
      let d = as_int b in
      if d = 0 then trap "division by zero" else Vint (as_int a / d)
  | Rem ->
      let d = as_int b in
      if d = 0 then trap "remainder by zero" else Vint (as_int a mod d)
  | Shl -> Vint (as_int a lsl (as_int b land 63))
  | Shr -> Vint (as_int a asr (as_int b land 63))
  | Band -> Vint (as_int a land as_int b)
  | Bor -> Vint (as_int a lor as_int b)
  | Bxor -> Vint (as_int a lxor as_int b)
  | Lt -> Vbool (as_int a < as_int b)
  | Le -> Vbool (as_int a <= as_int b)
  | Gt -> Vbool (as_int a > as_int b)
  | Ge -> Vbool (as_int a >= as_int b)
  | Eq -> Vbool (value_eq a b)
  | Ne -> Vbool (not (value_eq a b))
  | Andb -> Vbool (as_bool a && as_bool b)
  | Orb -> Vbool (as_bool a || as_bool b)
  | Xorb -> Vbool (as_bool a <> as_bool b)
  | Eqb -> Vbool (as_bool a = as_bool b)

let eval_unop (op : unop) (a : value) : value =
  match op with Neg -> Vint (-as_int a) | Not -> Vbool (not (as_bool a))

let rec invoke (vm : vm) (m : meth_id) (args : value array) : value =
  vm.on_entry m;
  match vm.code m with
  | Some cfn -> (
      match vm.attrib with
      | None -> exec_installed vm m cfn args
      | Some a ->
          (* enter/leave bracket the activation by hand (no closures, no
             Fun.protect): this sits on the invocation path, and the
             disabled path must stay one option check *)
          Attribution.enter a ~meth:m ~tier:Attribution.Jit ~now:vm.cycles;
          (match exec_installed vm m cfn args with
          | v ->
              Attribution.leave a ~now:vm.cycles;
              v
          | exception e ->
              Attribution.leave a ~now:vm.cycles;
              raise e))
  | None -> (
      let mm = Ir.Program.meth vm.prog m in
      match mm.body with
      | None -> trap "abstract method %s invoked" mm.m_name
      | Some fn -> (
          Profile.record_invocation vm.profiles m;
          match vm.attrib with
          | None -> exec_interp vm m fn args
          | Some a ->
              let tier =
                match vm.backend with
                | Reference -> Attribution.Interp
                | Prepared -> Attribution.Prepared
              in
              Attribution.enter a ~meth:m ~tier ~now:vm.cycles;
              (match exec_interp vm m fn args with
              | v ->
                  Attribution.leave a ~now:vm.cycles;
                  v
              | exception e ->
                  Attribution.leave a ~now:vm.cycles;
                  raise e)))

and exec_installed (vm : vm) (m : meth_id) (cfn : fn) (args : value array) : value =
  match vm.backend with
  | Reference -> exec_ref vm ~mode:Compiled ~meth:m cfn args
  | Prepared ->
      exec_code vm ~mode:Compiled ~meth:m (prepared_for vm ~mode:Compiled m cfn) args

and exec_interp (vm : vm) (m : meth_id) (fn : fn) (args : value array) : value =
  match vm.backend with
  | Reference -> exec_ref vm ~mode:Interpreted ~meth:m fn args
  | Prepared ->
      exec_code vm ~mode:Interpreted ~meth:m (prepared_for vm ~mode:Interpreted m fn) args

and exec (vm : vm) ~(mode : mode) ~(meth : meth_id) (fn : fn) (args : value array) :
    value =
  match vm.backend with
  | Reference -> exec_ref vm ~mode ~meth fn args
  | Prepared ->
      (* one-shot bodies (tests pinning a tier on a synthetic fn) are
         prepared per call; cached paths go through [invoke] *)
      exec_code vm ~mode ~meth (Prepared.prepare ~cost:vm.cost vm.prog fn) args

(* ---------- prepared backend ---------- *)

and exec_code (vm : vm) ~(mode : mode) ~(meth : meth_id) (code : Prepared.code)
    (args : value array) : value =
  vm.depth <- vm.depth + 1;
  if vm.depth > vm.max_depth then trap "call stack overflow in %s" code.fname;
  let dispatch =
    match mode with
    | Interpreted -> vm.cost.interp_dispatch
    | Compiled -> vm.cost.compiled_dispatch
  in
  let profiling = mode = Interpreted in
  let phi_cost = dispatch + vm.cost.phi in
  let frame = Array.make code.nregs Vunit in
  let blocks = code.blocks in
  let rec run (bi : int) (edge : int) : value =
    let b : Prepared.pblock = blocks.(bi) in
    (* blocks count as steps too: an instruction-free cycle (possible after
       aggressive DCE) must still exhaust the step budget *)
    vm.steps <- vm.steps + 1;
    if vm.steps > vm.max_steps then trap "step budget exceeded";
    if profiling then begin
      (* slot-indexed profiling: the counter cell is bound into the code
         object on first record, making every later record one increment *)
      match b.prof.cell with
      | Some c -> incr c
      | None ->
          let c = Profile.block_cell vm.profiles meth b.src_bid in
          b.prof.cell <- Some c;
          incr c
    end;
    (* phis evaluate simultaneously with respect to the incoming edge *)
    let nphis = Array.length b.phi_dests in
    if nphis > 0 then begin
      let srcs, prev =
        if edge < 0 then (Array.make nphis (-1), -1)
        else (b.phi_srcs.(edge), b.pred_bids.(edge))
      in
      if nphis = 1 then begin
        vm.steps <- vm.steps + 1;
        charge vm phi_cost;
        let s = srcs.(0) in
        if s < 0 then
          trap "internal: phi v%d has no input for edge b%d" b.phi_vids.(0) prev;
        frame.(b.phi_dests.(0)) <- frame.(s)
      end
      else begin
        let tmp = Array.make nphis Vunit in
        for i = 0 to nphis - 1 do
          vm.steps <- vm.steps + 1;
          charge vm phi_cost;
          let s = srcs.(i) in
          if s < 0 then
            trap "internal: phi v%d has no input for edge b%d" b.phi_vids.(i) prev;
          tmp.(i) <- frame.(s)
        done;
        for i = 0 to nphis - 1 do
          frame.(b.phi_dests.(i)) <- tmp.(i)
        done
      end
    end;
    let body = b.body in
    for i = 0 to Array.length body - 1 do
      let pi = body.(i) in
      vm.steps <- vm.steps + 1;
      if vm.steps > vm.max_steps then trap "step budget exceeded";
      charge vm (dispatch + pi.static_cost);
      let result =
        match pi.op with
        | Pconst v -> v
        | Pparam k ->
            if k >= Array.length args then trap "internal: missing argument %d" k
            else args.(k)
        | Punop (op, a) -> eval_unop op frame.(a)
        | Pbinop (op, a, b) -> eval_binop op frame.(a) frame.(b)
        | Pcall { callee; cargs; site; ic } ->
            let n = Array.length cargs in
            let vals = Array.make n Vunit in
            for j = 0 to n - 1 do
              vals.(j) <- frame.(cargs.(j))
            done;
            do_call vm ?ic ~profiling ~meth ~callee ~site vals
        | Pnew { cls; defaults } ->
            Vobj { o_cls = cls; fields = Array.copy defaults }
        | Pgetfield { obj; slot; fname } -> (
            let o = as_obj frame.(obj) in
            if slot >= Array.length o.fields then
              trap "internal: bad field slot for %s" fname
            else o.fields.(slot))
        | Psetfield { obj; slot; fname; value } ->
            let o = as_obj frame.(obj) in
            if slot >= Array.length o.fields then
              trap "internal: bad field slot for %s" fname;
            o.fields.(slot) <- frame.(value);
            Vunit
        | Pnewarray { ety; len } ->
            let n = as_int frame.(len) in
            charge vm (Cost.alloc_fields_cost vm.cost n);
            alloc_array ety n
        | Parrayget { arr; idx } ->
            let a = as_arr frame.(arr) in
            let i = as_int frame.(idx) in
            if i < 0 || i >= Array.length a.elems then
              trap "array index %d out of bounds" i;
            a.elems.(i)
        | Parrayset { arr; idx; value } ->
            let a = as_arr frame.(arr) in
            let i = as_int frame.(idx) in
            if i < 0 || i >= Array.length a.elems then
              trap "array index %d out of bounds" i;
            a.elems.(i) <- frame.(value);
            Vunit
        | Parraylen a -> Vint (Array.length (as_arr frame.(a)).elems)
        | Ptypetest { obj; cls } -> (
            match frame.(obj) with
            | Vobj o -> Vbool (Ir.Program.is_subclass vm.prog ~sub:o.o_cls ~sup:cls)
            | Vnull -> Vbool false
            | _ -> trap "typetest on a non-object")
        | Pintrinsic (intr, ia) -> (
            let a k = frame.(ia.(k)) in
            match intr with
            | Iprint_int ->
                Buffer.add_string vm.out (string_of_int (as_int (a 0)));
                Vunit
            | Iprint_bool ->
                Buffer.add_string vm.out (string_of_bool (as_bool (a 0)));
                Vunit
            | Iprint_str ->
                Buffer.add_string vm.out (as_str (a 0));
                Vunit
            | Istr_len -> Vint (String.length (as_str (a 0)))
            | Istr_get ->
                let s = as_str (a 0) and i = as_int (a 1) in
                if i < 0 || i >= String.length s then
                  trap "string index %d out of bounds" i;
                Vint (Char.code s.[i])
            | Istr_eq -> Vbool (as_str (a 0) = as_str (a 1))
            | Iabs -> Vint (abs (as_int (a 0)))
            | Imin -> Vint (min (as_int (a 0)) (as_int (a 1)))
            | Imax -> Vint (max (as_int (a 0)) (as_int (a 1))))
      in
      frame.(pi.dest) <- result
    done;
    charge vm b.term_cost;
    match b.term with
    | Preturn r -> frame.(r)
    | Pgoto { target; edge } -> run target edge
    | Pif { cond; site; tb; tedge; fb; fedge; bprof } ->
        let taken = as_bool frame.(cond) in
        if profiling then
          (match bprof.brec with
          | Some br -> Profile.brec_record br ~taken
          | None ->
              let br = Profile.branch_cell vm.profiles site in
              bprof.brec <- Some br;
              Profile.brec_record br ~taken);
        if taken then run tb tedge else run fb fedge
    | Punreachable -> trap "reached an unreachable block in %s" code.fname
    | Pdead b' ->
        invalid_arg (Printf.sprintf "Fn.block: dead block b%d in %s" b' code.fname)
  in
  let result = run code.entry (-1) in
  vm.depth <- vm.depth - 1;
  result

(* ---------- reference backend: the direct IR walker ---------- *)

and exec_ref (vm : vm) ~(mode : mode) ~(meth : meth_id) (fn : fn) (args : value array) :
    value =
  vm.depth <- vm.depth + 1;
  if vm.depth > vm.max_depth then trap "call stack overflow in %s" fn.fname;
  let dispatch =
    match mode with
    | Interpreted -> vm.cost.interp_dispatch
    | Compiled -> vm.cost.compiled_dispatch
  in
  let profiling = mode = Interpreted in
  let env : (vid, value) Hashtbl.t = Hashtbl.create 64 in
  let get v =
    match Hashtbl.find_opt env v with
    | Some value -> value
    | None -> trap "internal: use of unevaluated v%d in %s" v fn.fname
  in
  let eval_instr (i : instr) : unit =
    vm.steps <- vm.steps + 1;
    if vm.steps > vm.max_steps then trap "step budget exceeded";
    charge vm (dispatch + Cost.instr_cost vm.cost i.kind);
    let result =
      match i.kind with
      | Const (Cint n) -> Vint n
      | Const (Cbool b) -> Vbool b
      | Const (Cstring s) -> Vstr s
      | Const Cunit -> Vunit
      | Const Cnull -> Vnull
      | Param k ->
          if k >= Array.length args then trap "internal: missing argument %d" k
          else args.(k)
      | Unop (op, a) -> eval_unop op (get a)
      | Binop (op, a, b) -> eval_binop op (get a) (get b)
      | Phi _ -> assert false (* phis are evaluated by the block driver *)
      | Call { callee; args = cargs; site; _ } ->
          do_call vm ~profiling ~meth ~callee ~site
            (Array.of_list (List.map get cargs))
      | New c ->
          charge vm (Cost.alloc_fields_cost vm.cost (Array.length (Ir.Program.cls vm.prog c).layout));
          alloc_obj vm.prog c
      | GetField { obj; slot; fname; _ } -> (
          let o = as_obj (get obj) in
          if slot >= Array.length o.fields then trap "internal: bad field slot for %s" fname
          else o.fields.(slot))
      | SetField { obj; slot; fname; value } ->
          let o = as_obj (get obj) in
          if slot >= Array.length o.fields then trap "internal: bad field slot for %s" fname;
          o.fields.(slot) <- get value;
          Vunit
      | NewArray { ety; len } ->
          let n = as_int (get len) in
          charge vm (Cost.alloc_fields_cost vm.cost n);
          alloc_array ety n
      | ArrayGet { arr; idx; _ } ->
          let a = as_arr (get arr) in
          let i = as_int (get idx) in
          if i < 0 || i >= Array.length a.elems then trap "array index %d out of bounds" i;
          a.elems.(i)
      | ArraySet { arr; idx; value } ->
          let a = as_arr (get arr) in
          let i = as_int (get idx) in
          if i < 0 || i >= Array.length a.elems then trap "array index %d out of bounds" i;
          a.elems.(i) <- get value;
          Vunit
      | ArrayLen a -> Vint (Array.length (as_arr (get a)).elems)
      | TypeTest { obj; cls } -> (
          match get obj with
          | Vobj o -> Vbool (Ir.Program.is_subclass vm.prog ~sub:o.o_cls ~sup:cls)
          | Vnull -> Vbool false
          | _ -> trap "typetest on a non-object")
      | Intrinsic (intr, iargs) -> (
          let a k = get (List.nth iargs k) in
          match intr with
          | Iprint_int -> Buffer.add_string vm.out (string_of_int (as_int (a 0))); Vunit
          | Iprint_bool -> Buffer.add_string vm.out (string_of_bool (as_bool (a 0))); Vunit
          | Iprint_str -> Buffer.add_string vm.out (as_str (a 0)); Vunit
          | Istr_len -> Vint (String.length (as_str (a 0)))
          | Istr_get ->
              let s = as_str (a 0) and i = as_int (a 1) in
              if i < 0 || i >= String.length s then trap "string index %d out of bounds" i;
              Vint (Char.code s.[i])
          | Istr_eq -> Vbool (as_str (a 0) = as_str (a 1))
          | Iabs -> Vint (abs (as_int (a 0)))
          | Imin -> Vint (min (as_int (a 0)) (as_int (a 1)))
          | Imax -> Vint (max (as_int (a 0)) (as_int (a 1))))
    in
    Hashtbl.replace env i.id result
  in
  let rec run (prev : bid) (b : bid) : value =
    (* blocks count as steps too: an instruction-free cycle (possible after
       aggressive DCE) must still exhaust the step budget *)
    vm.steps <- vm.steps + 1;
    if vm.steps > vm.max_steps then trap "step budget exceeded";
    if profiling then Profile.record_block vm.profiles meth b;
    let blk = Ir.Fn.block fn b in
    (* phis evaluate simultaneously with respect to the incoming edge *)
    let rec eval_phis = function
      | v :: rest -> (
          match Ir.Fn.kind fn v with
          | Phi { inputs; _ } ->
              vm.steps <- vm.steps + 1;
              charge vm (dispatch + vm.cost.phi);
              let value =
                match List.assoc_opt prev inputs with
                | Some pv -> get pv
                | None -> trap "internal: phi v%d has no input for edge b%d" v prev
              in
              (v, value) :: eval_phis rest
          | _ -> [])
      | [] -> []
    in
    let phi_values = eval_phis blk.instrs in
    List.iter (fun (v, value) -> Hashtbl.replace env v value) phi_values;
    let non_phis =
      List.filter (fun v -> not (Ir.Instr.is_phi (Ir.Fn.kind fn v))) blk.instrs
    in
    List.iter (fun v -> eval_instr (Ir.Fn.instr fn v)) non_phis;
    charge vm (Cost.term_cost vm.cost blk.term);
    match blk.term with
    | Goto b' -> run b b'
    | If { cond; site; tb; fb } ->
        let taken = as_bool (get cond) in
        if profiling then Profile.record_branch vm.profiles site ~taken;
        run b (if taken then tb else fb)
    | Return v -> get v
    | Unreachable -> trap "reached an unreachable block in %s" fn.fname
  in
  let result = run (-1) fn.entry in
  vm.depth <- vm.depth - 1;
  result

and do_call (vm : vm) ?ic ~profiling ~(meth : meth_id) ~(callee : callee)
    ~(site : site) (args : value array) : value =
  match callee with
  | Direct m ->
      charge vm (Cost.call_overhead vm.cost ~virtual_:false ~targets:1);
      invoke vm m args
  | Virtual sel -> (
      if Array.length args = 0 then trap "virtual call with no receiver";
      let o = as_obj args.(0) in
      match ic with
      | Some ic when vm.ic_enabled -> (
          (* synthetic sites are typeswitch fallbacks: reaching one in
             compiled code means the speculation missed — an IC-cached
             dispatch must report it exactly like the slow path does *)
          if (not profiling) && site.sidx < 0 then vm.on_spec_miss meth site;
          match Ic.probe ic o.o_cls with
          | Some e ->
              (* cached: the scan resolved the target. The entry's count
                 cell aliases the profile's receiver-histogram cell, so
                 recording the receiver is one increment. *)
              ic.hits <- ic.hits + 1;
              if profiling then incr e.e_count;
              let observed = Profile.receiver_count vm.profiles site in
              charge vm
                (Cost.call_overhead vm.cost ~virtual_:true ~targets:(max observed 1));
              invoke vm e.e_target args
          | None -> (
              Ic.note_miss ic;
              let cell =
                if profiling then begin
                  let c =
                    Profile.rsite_cell (Profile.receiver_site vm.profiles site) o.o_cls
                  in
                  incr c;
                  Some c
                end
                else
                  (* non-profiling tiers never create profile entries; an
                     existing cell is still shared so a later profiled hit
                     through this entry counts into the real histogram *)
                  Option.bind
                    (Profile.find_receiver_site vm.profiles site)
                    (fun rs -> Profile.find_rsite_cell rs o.o_cls)
              in
              let observed = Profile.receiver_count vm.profiles site in
              charge vm
                (Cost.call_overhead vm.cost ~virtual_:true ~targets:(max observed 1));
              match Ir.Program.resolve vm.prog o.o_cls sel with
              | Some m ->
                  Ic.add ic
                    { e_cls = o.o_cls; e_target = m;
                      e_count = (match cell with Some c -> c | None -> ref 0) };
                  invoke vm m args
              | None ->
                  trap "class %s does not understand %s"
                    (Ir.Program.cls vm.prog o.o_cls).c_name sel))
      | _ -> (
          if profiling then Profile.record_receiver vm.profiles site o.o_cls;
          (* synthetic sites are typeswitch fallbacks: reaching one in compiled
             code means the speculation missed *)
          if (not profiling) && site.sidx < 0 then vm.on_spec_miss meth site;
          let observed = Profile.receiver_count vm.profiles site in
          charge vm (Cost.call_overhead vm.cost ~virtual_:true ~targets:(max observed 1));
          match Ir.Program.resolve vm.prog o.o_cls sel with
          | Some m -> invoke vm m args
          | None ->
              trap "class %s does not understand %s"
                (Ir.Program.cls vm.prog o.o_cls).c_name sel))

(* Runs a program's [main]; returns its result value. *)
let run_main (vm : vm) : value =
  if vm.prog.main < 0 then trap "program has no main";
  invoke vm vm.prog.main [| Vunit |]

(* Convenience for tests: run an arbitrary method by name. *)
let run_meth (vm : vm) (name : string) (args : value list) : value =
  match Ir.Program.find_meth vm.prog name with
  | Some m -> invoke vm m (Array.of_list args)
  | None -> trap "no method named %s" name
